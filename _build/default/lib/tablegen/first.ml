open Import

type t = {
  n_terms : int;  (* real terminals; eof = n_terms *)
  first_sets : bool array array;  (* nonterm -> terminal bitmap *)
  follow_sets : bool array array;  (* nonterm -> terminal+eof bitmap *)
}

let eof t = t.n_terms

let compute (g : Grammar.t) =
  let nt = Symtab.n_terms g.symtab in
  let nn = Symtab.n_nonterms g.symtab in
  let first_sets = Array.init nn (fun _ -> Array.make nt false) in
  let changed = ref true in
  (* FIRST: no nullable symbols, so only the leading rhs symbol counts *)
  while !changed do
    changed := false;
    Array.iter
      (fun (p : Grammar.production) ->
        let dst = first_sets.(p.lhs) in
        match p.rhs.(0) with
        | Symtab.T a ->
          if not dst.(a) then begin
            dst.(a) <- true;
            changed := true
          end
        | Symtab.N b ->
          Array.iteri
            (fun a v ->
              if v && not dst.(a) then begin
                dst.(a) <- true;
                changed := true
              end)
            first_sets.(b))
      g.prods
  done;
  let follow_sets = Array.init nn (fun _ -> Array.make (nt + 1) false) in
  follow_sets.(g.start).(nt) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (p : Grammar.production) ->
        let len = Array.length p.rhs in
        Array.iteri
          (fun i sym ->
            match sym with
            | Symtab.T _ -> ()
            | Symtab.N b ->
              let dst = follow_sets.(b) in
              let add a =
                if not dst.(a) then begin
                  dst.(a) <- true;
                  changed := true
                end
              in
              if i + 1 < len then
                match p.rhs.(i + 1) with
                | Symtab.T a -> add a
                | Symtab.N c ->
                  Array.iteri (fun a v -> if v then add a) first_sets.(c)
              else
                Array.iteri (fun a v -> if v then add a) follow_sets.(p.lhs))
          p.rhs)
      g.prods
  done;
  { n_terms = nt; first_sets; follow_sets }

let to_list bitmap =
  let acc = ref [] in
  for i = Array.length bitmap - 1 downto 0 do
    if bitmap.(i) then acc := i :: !acc
  done;
  !acc

let first t n = to_list t.first_sets.(n)
let follow t n = to_list t.follow_sets.(n)
let mem_first t n a = a < t.n_terms && t.first_sets.(n).(a)
let mem_follow t n a = t.follow_sets.(n).(a)

let first_of_sym t = function
  | Symtab.T a -> [ a ]
  | Symtab.N n -> first t n
