open Import

type t = {
  grammar : Grammar.t;
  n_states : int;
  kernels : int array array;
  term_moves : (int * int) list array;
  nonterm_moves : (int * int) list array;
}

let max_rhs = 63
let item ~pid ~dot = (pid lsl 6) lor dot
let item_pid code = code lsr 6
let item_dot code = code land 63

let augmented_pid (g : Grammar.t) = Grammar.n_productions g

let prod_len (g : Grammar.t) pid =
  if pid = augmented_pid g then 1 else Array.length g.prods.(pid).rhs

let reductions t s =
  let g = t.grammar in
  Array.to_list t.kernels.(s)
  |> List.filter_map (fun code ->
         let pid = item_pid code in
         if item_dot code = prod_len g pid then Some pid else None)

let pp_item (g : Grammar.t) ppf code =
  let pid = item_pid code in
  let dot = item_dot code in
  if pid = augmented_pid g then
    Fmt.pf ppf "%s' <- %s%s%s"
      (Symtab.nonterm_name g.symtab g.start)
      (if dot = 0 then ". " else "")
      (Symtab.nonterm_name g.symtab g.start)
      (if dot = 1 then " ." else "")
  else begin
    let p = g.prods.(pid) in
    Fmt.pf ppf "%s <-" (Symtab.nonterm_name g.symtab p.lhs);
    Array.iteri
      (fun i sym ->
        if i = dot then Fmt.pf ppf " .";
        Fmt.pf ppf " %s" (Symtab.name g.symtab sym))
      p.rhs;
    if dot = Array.length p.rhs then Fmt.pf ppf " ."
  end

let pp_state t ppf s =
  Fmt.pf ppf "state %d:" s;
  Array.iter (fun code -> Fmt.pf ppf "@\n  %a" (pp_item t.grammar) code) t.kernels.(s)
