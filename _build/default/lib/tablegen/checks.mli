open Import

(** Static safety checks on grammars and tables.

    The paper's table generator "contains algorithms to ensure that the
    pattern matcher will not get into a looping configuration, where
    non-terminal chain rules are cyclically reduced", and "checks if
    there is some input for which the pattern matcher will perform an
    error action, also called a syntactic block" (section 3.2). *)

(** Cycles among chain productions (each cycle as a list of non-terminal
    names, e.g. [["reg.l"; "rval.l"]] if both [rval.l <- reg.l] and
    [reg.l <- rval.l] are chain productions).  A cycle whose productions
    all have {!Action.Chain} actions would let the matcher reduce
    forever without progress; a cycle through an emitting production is
    reported separately because reductions are state-directed and such
    cycles are never actually followed. *)
type chain_report = {
  silent_cycles : string list list;
  emitting_cycles : string list list;
}

val chains : Grammar.t -> chain_report

(** Potential syntactic blocks.

    In prefix-linearised input every token begins a subtree, so every
    dot position in every kernel item is the start of some operand.
    Which terminals may legally begin that operand is a property of the
    {e tree language}: it depends on the parent operator above the
    position and the child index (e.g. the first child of [Assign.l]
    must be an lvalue tree; the children of [Plus.l] are long trees).
    A state {e blocks} on terminal [a] if [a] may legally start the
    operand at one of the state's dot positions but the state has no
    action on [a] (paper sections 3.2, 6.2.2).

    [arity] gives the number of children each terminal has in the
    linearised tree (e.g. 2 for [Plus.l], 0 for [Const.l], 4 for a
    branch token followed by comparison, two operands and a label).
    [starts ~parent ~child] lists the terminals that can begin the
    subtree at child position [child] of operator [parent]
    ([~parent:None] is the root position).  Both are supplied by the
    target description. *)
type block = { state : int; terminal : string; items : string list }

val blocks :
  Tables.t ->
  arity:(string -> int) ->
  starts:(parent:string option -> child:int -> string list) ->
  block list

val pp_block : block Fmt.t
