open Import

(** Textbook LR(0) construction, kept deliberately simple: item sets as
    sorted association lists, closures recomputed from scratch for every
    state, and state lookup by linear scan over full closed sets.

    This is the baseline for the paper's table-construction experiment
    (section 9: "over two memory-intensive hours of VAX CPU time", later
    reduced to ten minutes by better algorithms).  It produces exactly
    the same automaton — including state numbering — as {!Lr0.build};
    the test suite checks that. *)

val build : Grammar.t -> Automaton.t
