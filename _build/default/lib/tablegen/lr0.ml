open Import

(* For every non-terminal [n], the set of non-terminals whose productions
   belong to the closure of an item with the dot before [n]: the
   reflexive-transitive closure of "first rhs symbol is a non-terminal". *)
let closure_nonterms (g : Grammar.t) =
  let nn = Symtab.n_nonterms g.symtab in
  let direct = Array.make nn [] in
  for n = 0 to nn - 1 do
    let succs = ref [] in
    Array.iter
      (fun pid ->
        match (Grammar.production g pid).rhs.(0) with
        | Symtab.N m -> succs := m :: !succs
        | Symtab.T _ -> ())
      g.by_lhs.(n);
    direct.(n) <- !succs
  done;
  let closure = Array.init nn (fun _ -> Array.make nn false) in
  for n = 0 to nn - 1 do
    let set = closure.(n) in
    let rec visit m =
      if not set.(m) then begin
        set.(m) <- true;
        List.iter visit direct.(m)
      end
    in
    visit n
  done;
  closure

let build (g : Grammar.t) : Automaton.t =
  let nt = Symtab.n_terms g.symtab in
  let nn = Symtab.n_nonterms g.symtab in
  let aug = Automaton.augmented_pid g in
  if (Grammar.stats g).max_rhs > Automaton.max_rhs then
    invalid_arg "Lr0.build: right-hand side too long for item packing";
  let cl_nts = closure_nonterms g in
  (* symbol at the dot of an item, or None when the item is complete *)
  let sym_at pid dot =
    if pid = aug then
      if dot = 0 then Some (Symtab.N g.start) else None
    else
      let rhs = (Grammar.production g pid).rhs in
      if dot < Array.length rhs then Some rhs.(dot) else None
  in
  let symcode = function Symtab.T a -> a | Symtab.N n -> nt + n in
  let states : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
  let kernels = ref [] (* reversed *) in
  let n_states = ref 0 in
  let term_moves = Hashtbl.create 1024 in
  let nonterm_moves = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let intern_state kernel =
    match Hashtbl.find_opt states kernel with
    | Some id -> id
    | None ->
      let id = !n_states in
      incr n_states;
      Hashtbl.replace states kernel id;
      kernels := kernel :: !kernels;
      Queue.add (id, kernel) queue;
      id
  in
  let _ = intern_state [| Automaton.item ~pid:aug ~dot:0 |] in
  let moves = Hashtbl.create 64 in
  while not (Queue.is_empty queue) do
    let id, kernel = Queue.pop queue in
    Hashtbl.reset moves;
    let add_move sym code =
      let key = symcode sym in
      let prev = try Hashtbl.find moves key with Not_found -> [] in
      Hashtbl.replace moves key (code :: prev)
    in
    (* closure non-terminals of this state *)
    let cl = Array.make nn false in
    let mark n =
      Array.iteri (fun m v -> if v then cl.(m) <- true) cl_nts.(n)
    in
    Array.iter
      (fun code ->
        let pid = Automaton.item_pid code in
        let dot = Automaton.item_dot code in
        match sym_at pid dot with
        | None -> ()
        | Some sym ->
          add_move sym (Automaton.item ~pid ~dot:(dot + 1));
          (match sym with Symtab.N n -> mark n | Symtab.T _ -> ()))
      kernel;
    for n = 0 to nn - 1 do
      if cl.(n) then
        Array.iter
          (fun pid ->
            let sym = (Grammar.production g pid).rhs.(0) in
            add_move sym (Automaton.item ~pid ~dot:1))
          g.by_lhs.(n)
    done;
    (* deterministic order: ascending symbol code *)
    let keys =
      Hashtbl.fold (fun k _ acc -> k :: acc) moves [] |> List.sort Int.compare
    in
    let tmoves = ref [] and ntmoves = ref [] in
    List.iter
      (fun key ->
        let items = Hashtbl.find moves key in
        let kernel' =
          List.sort_uniq Int.compare items |> Array.of_list
        in
        let target = intern_state kernel' in
        if key < nt then tmoves := (key, target) :: !tmoves
        else ntmoves := (key - nt, target) :: !ntmoves)
      keys;
    Hashtbl.replace term_moves id (List.rev !tmoves);
    Hashtbl.replace nonterm_moves id (List.rev !ntmoves)
  done;
  let n = !n_states in
  let kernel_arr = Array.of_list (List.rev !kernels) in
  {
    Automaton.grammar = g;
    n_states = n;
    kernels = kernel_arr;
    term_moves =
      Array.init n (fun s -> try Hashtbl.find term_moves s with Not_found -> []);
    nonterm_moves =
      Array.init n (fun s ->
          try Hashtbl.find nonterm_moves s with Not_found -> []);
  }
