(** Comb-compressed parse tables.

    The CGGWS the paper started from "produced tables that were too
    large" and its matcher "spent too much time … unpacking cumbersome
    tables" (section 2); table size is a recurring concern (sections 6.4
    and 9).  This module measures the tradeoff: the sparse action/goto
    matrices are packed by the classic row-displacement (comb)
    technique — each state's row is slid over a single value array until
    its non-error entries fall into free slots, with an owner check
    array making lookups safe.

    LR rows are dominated by reduce entries, so before packing, each
    state's most frequent reduce becomes its {e default action} (the
    classic yacc-style transformation): only shifts, accepts and
    minority reduces are stored as exceptions.  As in every parser that
    does this, error entries in a defaulted row answer with the default
    reduce — harmless here because reductions consume no input and the
    error resurfaces at the next shift; the pattern matcher proper keeps
    using the dense tables.

    Lookup stays O(1); {!stats} reports the achieved compression. *)

type t

val pack : Tables.t -> t

(** O(1) decoded lookups; equal to the dense table's entries except
    that error cells of a state with a default reduction return that
    reduction (see above). *)
val action : t -> int -> int -> Tables.action

(** The state's default reduction, if any. *)
val default_of : t -> int -> Tables.action option

val goto : t -> int -> int -> int

type stats = {
  states : int;
  dense_cells : int;  (** action + goto cells in the dense tables *)
  packed_cells : int;  (** slots used by the packed arrays *)
  dense_bytes : int;  (** at one word per cell *)
  packed_bytes : int;
  ratio : float;  (** packed / dense *)
}

val stats : t -> stats
val pp_stats : stats Fmt.t

(** Serialise to / from a file (the tables are built once per target
    machine, as in the paper, and shipped with the compiler). *)
val save : t -> string -> unit

val load : Gg_grammar.Grammar.t -> string -> t
