open Import

(** Optimised LR(0) automaton construction.

    This is the "ten minutes" constructor of the paper's section 9:
    packed integer items, hashed kernel lookup, and per-non-terminal
    closure sets precomputed once, instead of recomputing closures per
    state (see {!Naive} for the deliberately slow baseline). *)

val build : Grammar.t -> Automaton.t

(** For each non-terminal [n], a boolean map over non-terminals: the
    reflexive-transitive set of non-terminals whose productions enter
    the closure of an item with the dot before [n]. *)
val closure_nonterms : Grammar.t -> bool array array
