lib/tablegen/first.mli: Grammar Import Symtab
