lib/tablegen/automaton.mli: Fmt Grammar Import
