lib/tablegen/automaton.ml: Array Fmt Grammar Import List Symtab
