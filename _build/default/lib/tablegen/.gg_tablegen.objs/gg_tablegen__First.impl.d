lib/tablegen/first.ml: Array Grammar Import Symtab
