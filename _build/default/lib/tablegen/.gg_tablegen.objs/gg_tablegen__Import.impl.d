lib/tablegen/import.ml: Gg_grammar
