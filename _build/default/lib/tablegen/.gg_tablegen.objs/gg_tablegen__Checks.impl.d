lib/tablegen/checks.ml: Action Array Automaton Fmt Grammar Hashtbl Import List Symtab Tables
