lib/tablegen/tables.ml: Array Automaton First Fmt Grammar Import Int List Lr0 Symtab
