lib/tablegen/naive.mli: Automaton Grammar Import
