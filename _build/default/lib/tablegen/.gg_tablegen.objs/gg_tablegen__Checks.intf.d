lib/tablegen/checks.mli: Fmt Grammar Import Tables
