lib/tablegen/lr0.ml: Array Automaton Grammar Hashtbl Import Int List Queue Symtab
