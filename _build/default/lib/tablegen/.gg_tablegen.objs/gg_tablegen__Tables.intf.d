lib/tablegen/tables.mli: Automaton First Fmt Grammar Import
