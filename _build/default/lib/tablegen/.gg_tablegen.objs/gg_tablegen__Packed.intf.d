lib/tablegen/packed.mli: Fmt Gg_grammar Tables
