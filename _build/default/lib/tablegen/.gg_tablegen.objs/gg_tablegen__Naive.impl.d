lib/tablegen/naive.ml: Array Automaton Grammar Import Int List Queue Symtab
