lib/tablegen/packed.ml: Array Fmt Grammar Hashtbl Import List Marshal String Symtab Tables
