lib/tablegen/lr0.mli: Automaton Grammar Import
