open Import

(** FIRST and FOLLOW sets for a machine description grammar.

    Machine grammars have no empty right-hand sides (a production always
    matches at least one tree node), which rules out nullable symbols
    and keeps the computation a plain fixed point.

    Terminals are indexed [0 .. n_terms - 1]; the virtual end-of-tree
    marker {!eof} gets index [n_terms]. *)

type t

val compute : Grammar.t -> t

(** Index of the end-of-input marker. *)
val eof : t -> int

(** [first t n] — terminals that can begin a string derived from
    non-terminal [n]. *)
val first : t -> int -> int list

(** [follow t n] — terminals (including {!eof}) that can follow
    non-terminal [n] in a sentential form. *)
val follow : t -> int -> int list

val mem_first : t -> int -> int -> bool
val mem_follow : t -> int -> int -> bool

(** [first_of_sym t sym] — FIRST of a single grammar symbol. *)
val first_of_sym : t -> Symtab.sym -> int list
