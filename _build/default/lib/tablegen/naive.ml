open Import

(* An item is (pid, dot); a state is the *closed* item set as a sorted
   list.  Everything below is lists and structural equality, on purpose. *)

let sym_at (g : Grammar.t) aug (pid, dot) =
  if pid = aug then if dot = 0 then Some (Symtab.N g.start) else None
  else
    let rhs = (Grammar.production g pid).rhs in
    if dot < Array.length rhs then Some rhs.(dot) else None

let closure (g : Grammar.t) aug items =
  let rec fixpoint items =
    let additions =
      List.concat_map
        (fun it ->
          match sym_at g aug it with
          | Some (Symtab.N n) ->
            Array.to_list g.by_lhs.(n)
            |> List.filter_map (fun pid ->
                   if List.mem (pid, 0) items then None else Some (pid, 0))
          | Some (Symtab.T _) | None -> [])
        items
    in
    match List.sort_uniq compare additions with
    | [] -> items
    | adds -> fixpoint (List.sort_uniq compare (adds @ items))
  in
  fixpoint (List.sort_uniq compare items)

let goto (g : Grammar.t) aug items sym =
  List.filter_map
    (fun ((pid, dot) as it) ->
      match sym_at g aug it with
      | Some s when Symtab.sym_equal s sym -> Some (pid, dot + 1)
      | Some _ | None -> None)
    items
  |> closure g aug

let build (g : Grammar.t) : Automaton.t =
  let nt = Symtab.n_terms g.symtab in
  let nn = Symtab.n_nonterms g.symtab in
  let aug = Automaton.augmented_pid g in
  let sym_of_code code =
    if code < nt then Symtab.T code else Symtab.N (code - nt)
  in
  let states = ref [] (* (closed item set, id), reversed *) in
  let n_states = ref 0 in
  let queue = Queue.create () in
  let tmoves = ref [] and ntmoves = ref [] in
  let intern set =
    match List.assoc_opt set !states with
    | Some id -> id
    | None ->
      let id = !n_states in
      incr n_states;
      states := (set, id) :: !states;
      Queue.add (id, set) queue;
      id
  in
  let _ = intern (closure g aug [ (aug, 0) ]) in
  while not (Queue.is_empty queue) do
    let id, set = Queue.pop queue in
    let ts = ref [] and nts = ref [] in
    for code = 0 to nt + nn - 1 do
      let sym = sym_of_code code in
      match goto g aug set sym with
      | [] -> ()
      | next ->
        let target = intern next in
        if code < nt then ts := (code, target) :: !ts
        else nts := (code - nt, target) :: !nts
    done;
    tmoves := (id, List.rev !ts) :: !tmoves;
    ntmoves := (id, List.rev !nts) :: !ntmoves
  done;
  let n = !n_states in
  (* Reduce each closed set to its kernel for the shared representation. *)
  let kernel_of set =
    List.filter_map
      (fun (pid, dot) ->
        if dot > 0 || pid = aug then
          Some (Automaton.item ~pid ~dot)
        else None)
      set
    |> List.sort_uniq Int.compare |> Array.of_list
  in
  let kernels = Array.make n [||] in
  List.iter (fun (set, id) -> kernels.(id) <- kernel_of set) !states;
  let to_arr assoc =
    let a = Array.make n [] in
    List.iter (fun (id, moves) -> a.(id) <- moves) assoc;
    a
  in
  {
    Automaton.grammar = g;
    n_states = n;
    kernels;
    term_moves = to_arr !tmoves;
    nonterm_moves = to_arr !ntmoves;
  }
