(* Short aliases for modules used throughout this library. *)
module Grammar = Gg_grammar.Grammar
module Symtab = Gg_grammar.Symtab
module Action = Gg_grammar.Action
