open Import

type chain_report = {
  silent_cycles : string list list;
  emitting_cycles : string list list;
}

let chains (g : Grammar.t) =
  let nn = Symtab.n_nonterms g.symtab in
  (* edges (a, b, silent) for chain production a <- b *)
  let edges = Array.make nn [] in
  Array.iter
    (fun (p : Grammar.production) ->
      if Grammar.is_chain p then
        match p.rhs.(0) with
        | Symtab.N b ->
          let silent = match p.action with Action.Chain -> true | _ -> false in
          edges.(p.lhs) <- (b, silent) :: edges.(p.lhs)
        | Symtab.T _ -> assert false)
    g.prods;
  (* Find elementary cycles by DFS from each node, restricted to nodes
     >= root so each cycle is reported once.  Chain graphs are tiny. *)
  let silent_cycles = ref [] and emitting_cycles = ref [] in
  for root = 0 to nn - 1 do
    let rec dfs path_silent path n =
      List.iter
        (fun (m, silent) ->
          if m = root then begin
            let names =
              List.rev_map (Symtab.nonterm_name g.symtab) (n :: path)
            in
            if path_silent && silent then
              silent_cycles := names :: !silent_cycles
            else emitting_cycles := names :: !emitting_cycles
          end
          else if m > root && not (List.mem m (n :: path)) then
            dfs (path_silent && silent) (n :: path) m)
        edges.(n)
    in
    dfs true [] root
  done;
  { silent_cycles = !silent_cycles; emitting_cycles = !emitting_cycles }

type block = { state : int; terminal : string; items : string list }

(* The tree position of the dot in a production: walk the already-
   consumed rhs symbols, maintaining a stack of (operator, children
   still missing).  A non-terminal or a leaf terminal completes one
   child of the innermost open operator. *)
let dot_position (g : Grammar.t) ~arity pid dot =
  let aug = Automaton.augmented_pid g in
  let rhs =
    if pid = aug then [| Symtab.N g.start |]
    else (Grammar.production g pid).rhs
  in
  if dot >= Array.length rhs then None (* complete item: no position *)
  else begin
    let stack = ref [] in
    let complete_child () =
      let rec pop () =
        match !stack with
        | [] -> () (* completed the whole pattern prefix: dot at end *)
        | (op, k, total) :: rest ->
          if k = 1 then begin
            stack := rest;
            pop ()
          end
          else stack := (op, k - 1, total) :: rest
      in
      pop ()
    in
    for i = 0 to dot - 1 do
      (* operator-class non-terminals may themselves be operators of
         non-zero arity (the paper's factored operator classes) *)
      let name = Symtab.name g.symtab rhs.(i) in
      let k = match rhs.(i) with Symtab.T _ -> arity name | Symtab.N _ -> arity name in
      if k = 0 then complete_child () else stack := (name, k, k) :: !stack
    done;
    match !stack with
    | [] -> Some (None, 0) (* root position (dot = 0) *)
    | (op, k, total) :: _ -> Some (Some op, total - k)
  end

let blocks (tables : Tables.t) ~arity ~starts =
  let auto = tables.automaton in
  let g = auto.grammar in
  let result = ref [] in
  for s = 0 to auto.n_states - 1 do
    let state_items () =
      Array.to_list auto.kernels.(s)
      |> List.map (Fmt.str "%a" (Automaton.pp_item g))
    in
    let required = Hashtbl.create 16 in
    let missing = Hashtbl.create 4 in
    Array.iter
      (fun code ->
        let pid = Automaton.item_pid code in
        let dot = Automaton.item_dot code in
        match dot_position g ~arity pid dot with
        | None -> ()
        | Some (parent, child) ->
          List.iter
            (fun name ->
              match Symtab.find g.symtab name with
              | Some (Symtab.T a) -> Hashtbl.replace required a ()
              | Some (Symtab.N _) -> ()
              | None ->
                (* a legal input terminal the grammar never mentions at
                   all: blocks wherever it is required *)
                Hashtbl.replace missing name ())
            (starts ~parent ~child))
      auto.kernels.(s);
    Hashtbl.iter
      (fun a () ->
        if tables.action.(s).(a) = Tables.Error then
          result :=
            { state = s;
              terminal = Symtab.term_name g.symtab a;
              items = state_items () }
            :: !result)
      required;
    Hashtbl.iter
      (fun name () ->
        result := { state = s; terminal = name; items = state_items () } :: !result)
      missing
  done;
  List.sort compare !result

let pp_block ppf b =
  Fmt.pf ppf "state %d blocks on %s:@\n  %a" b.state b.terminal
    Fmt.(list ~sep:(any "@\n  ") string)
    b.items
