open Import

(** The LR(0) characteristic automaton of a machine grammar.

    Items are packed into integers ([production id lsl 6 | dot]); kernel
    item arrays are sorted, so state identity is array equality.  The
    augmented production [S' -> start] has id [n_productions] and is
    never stored in the grammar itself. *)

type t = {
  grammar : Grammar.t;
  n_states : int;
  kernels : int array array;
  term_moves : (int * int) list array;
      (** per state: (terminal, target) transitions *)
  nonterm_moves : (int * int) list array;
      (** per state: (non-terminal, target) transitions *)
}

val item : pid:int -> dot:int -> int
val item_pid : int -> int
val item_dot : int -> int

(** Maximum supported right-hand-side length (packing limit). *)
val max_rhs : int

(** Id of the augmented start production for this grammar. *)
val augmented_pid : Grammar.t -> int

(** Completed (reducible) items of a state's kernel: production ids. *)
val reductions : t -> int -> int list

val pp_item : Grammar.t -> int Fmt.t
val pp_state : t -> int Fmt.t
