lib/transform/transform.mli: Dtype Import Phase1c Tree
