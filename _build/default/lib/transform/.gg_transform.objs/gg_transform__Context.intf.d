lib/transform/context.mli: Dtype Import Label Tree
