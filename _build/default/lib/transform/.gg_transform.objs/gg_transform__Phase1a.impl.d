lib/transform/phase1a.ml: Context Dtype Import List Op Regconv Tree
