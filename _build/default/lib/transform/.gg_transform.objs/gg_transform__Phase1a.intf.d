lib/transform/phase1a.mli: Context Import Tree
