lib/transform/phase1b.ml: Dtype Import Int64 List Op Tree
