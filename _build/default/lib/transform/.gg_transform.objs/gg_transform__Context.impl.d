lib/transform/context.ml: Dtype Import Label List Tree
