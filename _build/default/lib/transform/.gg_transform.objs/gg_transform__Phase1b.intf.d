lib/transform/phase1b.mli: Import Tree
