lib/transform/transform.ml: Context Dtype Import List Phase1a Phase1b Phase1c Tree
