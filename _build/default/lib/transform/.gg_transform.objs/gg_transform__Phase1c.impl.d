lib/transform/phase1c.ml: Context Import List Op Option Phase1b Tree
