lib/transform/phase1c.mli: Context Import Tree
