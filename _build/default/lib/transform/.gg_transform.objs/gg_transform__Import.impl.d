lib/transform/import.ml: Gg_ir
