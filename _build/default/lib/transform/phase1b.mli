open Import

(** Phase 1b — operator expansion and commutativity-ordered operands
    (paper section 5.1.2).

    Pure bottom-up rewrites that reduce the number of patterns the
    machine grammar needs, especially the address-shaped ones:
    - left shift by a small constant becomes multiplication by the
      corresponding power of two (which the addressing hardware can
      fold);
    - subtraction of a constant becomes addition of its negation;
    - constant operands of [Plus] and [Mul] are forced to be the left
      child, and [Addr (Name _)] operands of [Plus] likewise (matching
      the displacement productions);
    - [Addr (Indir e)] collapses to [e] and [Indir (Addr lv)] to [lv];
    - additions of zero and multiplications by one disappear. *)

val rewrite_tree : Tree.t -> Tree.t

val run : Tree.stmt list -> Tree.stmt list

(** Subtrees the addressing-mode productions expect on the left of
    [Plus]/[Mul] (constants and symbol addresses); Phase 1c leaves them
    in place when reordering operands. *)
val address_shaped : Tree.t -> bool
