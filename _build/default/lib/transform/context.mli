open Import

(** Shared state of the tree-rewriting phases: fresh labels and fresh
    compiler temporaries.

    The paper's first phase has its own register manager for the
    temporaries its rewrites introduce (section 5.1.1) and flags this as
    a tradeoff to reevaluate; we store phase-1 results in memory
    temporaries instead, which removes the duplicated register manager
    at the cost of a load (see DESIGN.md). *)

type t

(** [create func] scans [func] for the largest label and temporary id
    already in use so fresh ones never collide. *)
val create : Tree.func -> t

val fresh_label : t -> Label.t

(** [fresh_temp t ty] allocates a new temporary and returns its leaf. *)
val fresh_temp : t -> Dtype.t -> Tree.t

(** Types of all temporaries allocated through this context (including
    ids observed in the original function), for the code generator's
    frame allocation. *)
val temp_types : t -> (int * Dtype.t) list
