(* Short aliases for modules used throughout this library. *)
module Dtype = Gg_ir.Dtype
module Op = Gg_ir.Op
module Tree = Gg_ir.Tree
module Label = Gg_ir.Label
module Regconv = Gg_ir.Regconv
module Termname = Gg_ir.Termname
