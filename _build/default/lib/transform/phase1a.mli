open Import

(** Phase 1a — explicit control flow (paper section 5.1.1).

    Rewrites every statement so that:
    - short-circuit operators ([Land]/[Lor]/[Lnot]) become explicit
      tests and conditional branches;
    - selection operators ([Select]) become branches around assignments
      to a compiler temporary;
    - comparisons used as values ([Relval]) are built by test/jump/
      assign sequences (the VAX has no instruction that constructs a
      truth value);
    - embedded function calls are replaced by compiler temporaries, the
      call itself becoming an argument-push sequence plus [Scall]
      preceding the expression tree.

    After this phase, [Tree.check ~after_phase1:true] holds for every
    tree in the body. *)

val run : Context.t -> Tree.stmt list -> Tree.stmt list

(** Lower one expression: returns the prelude statements and the clean
    tree (exposed for unit tests). *)
val lower_value : Context.t -> Tree.t -> Tree.stmt list * Tree.t
