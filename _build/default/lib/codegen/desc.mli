open Import

(** Semantic descriptors — the attribute values carried on the pattern
    matcher's stack (paper section 5.2: "each encapsulating reduction
    condenses the semantic attributes of the pattern into a signature
    associated with the left-hand-side non-terminal"). *)

type t = {
  mutable operand : Mode.t;
      (** mutable so the register manager can redirect a descriptor to
          its spill temporary (a "virtual register") *)
  ty : Dtype.t;
  mutable owned : int list;
      (** allocatable registers that die when this descriptor is
          consumed *)
}

(** Values on the matcher stack: shifted terminals carry their tree
    node, reductions carry descriptors, completed statements carry
    nothing. *)
type sval = Node of Tree.t | D of t | Done

val make : ?owned:int list -> Dtype.t -> Mode.t -> t

(** Projections that fail loudly on grammar/semantics mismatches. *)
val node : sval -> Tree.t

val desc : sval -> t
val pp : t Fmt.t
