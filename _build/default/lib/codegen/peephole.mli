open Import

(** A small peephole optimizer over emitted instruction lists.

    The paper discusses pairing the table-driven code generator with "a
    peephole optimizer with data flow analysis" as an alternative home
    for autoincrement and condition-code improvements (section 6.1) and
    notes that many of the idiom recogniser's choices "could instead be
    made by a more general peephole optimizer".  This is a window-based
    version of that idea:

    - a jump to the immediately following label disappears;
    - a conditional branch over an unconditional jump inverts
      ([jeql L1; jbr L2; L1:] becomes [jneq L2; L1:]);
    - a move whose source and destination are the same location
      disappears, as does the second move of an [x -> y; y -> x] pair;
    - a test whose operand was just computed by a condition-code-setting
      instruction disappears (the code generator already avoids these
      for register results; this pass catches the memory-destination
      cases and everything the PCC backend emits);
    - labels that no branch references are dropped.

    All rewrites are local and need no liveness information, so the pass
    is safe on any instruction list. *)

type stats = {
  removed_jumps : int;
  inverted_branches : int;
  removed_moves : int;
  removed_tests : int;
  removed_labels : int;
}

val empty_stats : stats
val add_stats : stats -> stats -> stats

(** Optimise one function body to a fixed point (bounded). *)
val optimize : Insn.t list -> Insn.t list * stats

val pp_stats : stats Fmt.t
