open Import

type stats = {
  removed_jumps : int;
  inverted_branches : int;
  removed_moves : int;
  removed_tests : int;
  removed_labels : int;
}

let empty_stats =
  {
    removed_jumps = 0;
    inverted_branches = 0;
    removed_moves = 0;
    removed_tests = 0;
    removed_labels = 0;
  }

let add_stats a b =
  {
    removed_jumps = a.removed_jumps + b.removed_jumps;
    inverted_branches = a.inverted_branches + b.inverted_branches;
    removed_moves = a.removed_moves + b.removed_moves;
    removed_tests = a.removed_tests + b.removed_tests;
    removed_labels = a.removed_labels + b.removed_labels;
  }

let invert = function
  | "jeql" -> Some "jneq"
  | "jneq" -> Some "jeql"
  | "jlss" -> Some "jgeq"
  | "jgeq" -> Some "jlss"
  | "jgtr" -> Some "jleq"
  | "jleq" -> Some "jgtr"
  | "jlssu" -> Some "jgequ"
  | "jgequ" -> Some "jlssu"
  | "jgtru" -> Some "jlequ"
  | "jlequ" -> Some "jgtru"
  | _ -> None

let has_prefix p m =
  String.length m >= String.length p && String.sub m 0 (String.length p) = p

let is_mov m = has_prefix "mov" m && not (has_prefix "mova" m)

(* instructions whose condition codes reflect the value written to their
   last operand *)
let result_sets_cc m =
  List.exists
    (fun p -> has_prefix p m)
    [ "mov"; "add"; "sub"; "mul"; "div"; "bis"; "xor"; "mneg"; "mcom"; "cvt";
      "inc"; "dec"; "clr"; "ashl" ]
  && not (has_prefix "mova" m)

let has_auto (m : Mode.t) =
  match m with Mode.Mem { auto = Some _; _ } -> true | _ -> false

let last_operand ops = List.nth_opt ops (List.length ops - 1)

(* removing an instruction right before a conditional branch would
   change the condition codes the branch observes *)
let rec next_is_cond_branch = function
  | Insn.Comment _ :: rest -> next_is_cond_branch rest
  | Insn.Branch (cc, _) :: _ -> cc <> "jbr"
  | _ -> false

let rec next_label = function
  | Insn.Comment _ :: rest -> next_label rest
  | Insn.Lab l :: _ -> Some l
  | _ -> None

let referenced_labels insns =
  List.filter_map
    (function Insn.Branch (_, l) -> Some l | _ -> None)
    insns
  |> List.sort_uniq Int.compare

let one_pass insns =
  let stats = ref empty_stats in
  let bump f = stats := f !stats in
  let referenced = referenced_labels insns in
  let rec go = function
    | [] -> []
    (* jump to the next label *)
    | Insn.Branch ("jbr", l) :: rest when next_label rest = Some l ->
      bump (fun s -> { s with removed_jumps = s.removed_jumps + 1 });
      go rest
    (* conditional branch over an unconditional jump *)
    | Insn.Branch (cc, l1) :: Insn.Branch ("jbr", l2) :: rest
      when next_label rest = Some l1 && invert cc <> None ->
      bump (fun s -> { s with inverted_branches = s.inverted_branches + 1 });
      Insn.Branch (Option.get (invert cc), l2) :: go rest
    (* mov to itself *)
    | Insn.Insn (m, [ a; b ]) :: rest
      when is_mov m && Mode.equal a b && (not (has_auto a))
           && not (next_is_cond_branch rest) ->
      bump (fun s -> { s with removed_moves = s.removed_moves + 1 });
      go rest
    (* x -> y; y -> x: the second move is dead *)
    | Insn.Insn (m1, [ a; b ]) :: Insn.Insn (m2, [ b'; a' ]) :: rest
      when is_mov m1 && m1 = m2 && Mode.equal a a' && Mode.equal b b'
           && (not (has_auto a)) && (not (has_auto b))
           && not (next_is_cond_branch rest) ->
      bump (fun s -> { s with removed_moves = s.removed_moves + 1 });
      Insn.Insn (m1, [ a; b ]) :: go rest
    (* test of a value just computed *)
    | Insn.Insn (m, ops) :: Insn.Insn (t, [ x ]) :: rest
      when has_prefix "tst" t && result_sets_cc m
           && (match last_operand ops with
              | Some dst -> Mode.equal dst x && not (has_auto x)
              | None -> false) ->
      bump (fun s -> { s with removed_tests = s.removed_tests + 1 });
      go (Insn.Insn (m, ops) :: rest)
    (* unreferenced labels *)
    | Insn.Lab l :: rest when not (List.mem l referenced) ->
      bump (fun s -> { s with removed_labels = s.removed_labels + 1 });
      go rest
    | i :: rest -> i :: go rest
  in
  let out = go insns in
  (out, !stats)

let optimize insns =
  let rec fixpoint n insns acc =
    if n = 0 then (insns, acc)
    else
      let insns', stats = one_pass insns in
      if stats = empty_stats then (insns', acc)
      else fixpoint (n - 1) insns' (add_stats acc stats)
  in
  fixpoint 8 insns empty_stats

let pp_stats ppf s =
  Fmt.pf ppf
    "%d jumps, %d inverted branches, %d moves, %d tests, %d labels removed"
    s.removed_jumps s.inverted_branches s.removed_moves s.removed_tests
    s.removed_labels
