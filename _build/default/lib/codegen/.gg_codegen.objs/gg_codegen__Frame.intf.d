lib/codegen/frame.mli: Dtype Import Mode
