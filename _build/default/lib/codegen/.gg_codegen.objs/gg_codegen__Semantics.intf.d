lib/codegen/semantics.mli: Desc Frame Grammar Import Insn Matcher Regmgr
