lib/codegen/semantics.ml: Action Array Desc Dtype Fmt Frame Grammar Import Insn Insn_table Int64 Lazy List Matcher Mode Op Option Regconv Regmgr String Symtab Termname Tree
