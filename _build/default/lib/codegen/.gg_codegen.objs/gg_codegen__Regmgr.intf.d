lib/codegen/regmgr.mli: Desc Dtype Frame Import Insn
