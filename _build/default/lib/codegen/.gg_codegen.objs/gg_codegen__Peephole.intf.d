lib/codegen/peephole.mli: Fmt Import Insn
