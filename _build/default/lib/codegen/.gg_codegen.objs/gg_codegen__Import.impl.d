lib/codegen/import.ml: Gg_grammar Gg_ir Gg_matcher Gg_tablegen Gg_transform Gg_vax
