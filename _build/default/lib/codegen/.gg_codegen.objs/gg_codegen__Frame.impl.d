lib/codegen/frame.ml: Dtype Hashtbl Import Int64 List Mode Regconv
