lib/codegen/peephole.ml: Fmt Import Insn Int List Mode Option String
