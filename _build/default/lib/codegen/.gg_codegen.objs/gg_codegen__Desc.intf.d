lib/codegen/desc.mli: Dtype Fmt Import Mode Tree
