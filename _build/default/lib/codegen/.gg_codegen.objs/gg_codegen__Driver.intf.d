lib/codegen/driver.mli: Grammar_def Import Insn Lazy Matcher Tables Transform Tree
