lib/codegen/desc.ml: Dtype Fmt Import Mode Tree
