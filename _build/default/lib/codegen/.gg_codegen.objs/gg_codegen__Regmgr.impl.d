lib/codegen/regmgr.ml: Array Desc Dtype Fmt Frame Import Insn List Mode Regconv
