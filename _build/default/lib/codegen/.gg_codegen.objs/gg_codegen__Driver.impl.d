lib/codegen/driver.ml: Buffer Desc Dtype Fmt Frame Grammar_def Import Insn Lazy List Matcher Peephole Regconv Regmgr Semantics Tables Transform Tree
