open Import

type t = {
  mutable next : int;  (* positive: bytes below fp already used *)
  temp_offsets : (int, int) Hashtbl.t;
}

let align n a = (n + a - 1) / a * a

let create ~locals_size ~temps =
  let t = { next = locals_size; temp_offsets = Hashtbl.create 16 } in
  List.iter
    (fun (id, ty) ->
      let size = Dtype.size ty in
      t.next <- align t.next size + size;
      Hashtbl.replace t.temp_offsets id t.next)
    temps;
  t

let temp_mode t id ty =
  match Hashtbl.find_opt t.temp_offsets id with
  | Some off -> Mode.mem_disp (Int64.of_int (-off)) Regconv.fp
  | None ->
    (* a temporary that appeared in the trees but was not declared:
       allocate it on first sight *)
    let size = Dtype.size ty in
    t.next <- align t.next size + size;
    Hashtbl.replace t.temp_offsets id t.next;
    Mode.mem_disp (Int64.of_int (-t.next)) Regconv.fp

let alloc_virtual t ty =
  let size = Dtype.size ty in
  t.next <- align t.next size + size;
  Mode.mem_disp (Int64.of_int (-t.next)) Regconv.fp

let size t = align t.next 4
