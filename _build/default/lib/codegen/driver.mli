open Import

(** The complete Graham-Glanville code generator: transform, match,
    select, allocate, print (paper Fig. 2).

    The table-driven backend replaces PCC's second pass: it consumes the
    same IR forests as {!Gg_pcc} and produces VAX assembly text plus the
    structured instruction lists the benchmarks analyse. *)

type options = {
  grammar : Grammar_def.options;
  transform : Transform.options;
  idioms : bool;  (** run the idiom recogniser (section 5.3.2) *)
  peephole : bool;
      (** run the peephole pass over the emitted code (the section 6.1
          alternative organisation); off by default, as in the paper *)
}

val default_options : options

(** Parse tables for the given options; building them is expensive, so
    build once and reuse (callers share {!default_tables}). *)
val build_tables : Grammar_def.options -> Tables.t

val default_tables : Tables.t Lazy.t

type compiled_func = {
  cf_name : string;
  cf_insns : Insn.t list;  (** body, without prologue/epilogue *)
  cf_frame_size : int;
}

type output = {
  assembly : string;  (** complete assembler file *)
  funcs : compiled_func list;
  program : Tree.program;
}

(** Compile one function (already transformed trees are not required:
    the driver runs Phase 1 itself). *)
val compile_func : ?options:options -> Tables.t -> Tree.func -> compiled_func

val compile_program : ?options:options -> ?tables:Tables.t -> Tree.program -> output

(** Compile a single statement tree against the default tables and
    return the instructions — convenient for tests and examples. *)
val compile_tree : ?options:options -> ?tables:Tables.t -> Tree.t -> Insn.t list

(** Like {!compile_tree} but also returns the matcher trace (for the
    paper's Appendix example). *)
val compile_tree_traced :
  ?options:options ->
  ?tables:Tables.t ->
  Tree.t ->
  Insn.t list * Matcher.step list

(** Total static cycles / line counts over an output (code-quality
    metrics for the benchmarks). *)
val total_cycles : output -> int

val total_lines : output -> int
