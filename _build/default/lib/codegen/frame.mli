open Import

(** Stack-frame slot allocation.

    Locals occupy the bytes just below the frame pointer (the front end
    assigns their offsets); compiler temporaries from Phase 1 and the
    register manager's spill slots ("virtual registers", paper section
    5.3.3) are allocated below them. *)

type t

val create : locals_size:int -> temps:(int * Dtype.t) list -> t

(** Addressing mode of a Phase-1 temporary, e.g. [-12(fp)]. *)
val temp_mode : t -> int -> Dtype.t -> Mode.t

(** A fresh spill slot. *)
val alloc_virtual : t -> Dtype.t -> Mode.t

(** Total frame size in bytes (for the function prologue); grows as
    virtual registers are allocated. *)
val size : t -> int
