open Import

(** The semantic actions of the code generator: what happens at each
    reduction of the pattern matcher (paper sections 5.2-5.4).

    Reductions with [Mode] actions condense the matched phrase into an
    operand descriptor; [Emit] actions select an instruction from the
    instruction table, run the idiom recogniser (binding idioms, range
    idioms, pseudo-instruction expansion — section 5.3.2), call the
    register manager, and append assembly to the output buffer. *)

type t

(** [create ~idioms ~reserved frame] — [idioms:false] disables the
    idiom recogniser (the paper notes it is optional: correct but worse
    code results); [reserved] registers hold register variables and are
    withheld from the register manager. *)
val create : ?idioms:bool -> ?reserved:int list -> Frame.t -> t

(** Matcher callbacks bound to this state and grammar. *)
val callbacks : t -> Grammar.t -> Desc.sval Matcher.callbacks

(** Instructions emitted so far, in order. *)
val output : t -> Insn.t list

(** Append an instruction directly (used by the driver for labels,
    jumps, calls and returns). *)
val emit : t -> Insn.t -> unit

val regmgr : t -> Regmgr.t
