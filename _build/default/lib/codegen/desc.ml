open Import

type t = { mutable operand : Mode.t; ty : Dtype.t; mutable owned : int list }

type sval = Node of Tree.t | D of t | Done

let make ?(owned = []) ty operand = { operand; ty; owned }

let node = function
  | Node t -> t
  | D _ | Done ->
    invalid_arg "Desc.node: expected a shifted terminal on the stack"

let desc = function
  | D d -> d
  | Node t ->
    Fmt.invalid_arg "Desc.desc: expected a descriptor, got node %s"
      (Tree.to_string t)
  | Done -> invalid_arg "Desc.desc: expected a descriptor, got a statement"

let pp ppf d =
  Fmt.pf ppf "<%s:%a%a>" (Dtype.suffix d.ty) Mode.pp d.operand
    Fmt.(
      if d.owned = [] then nop
      else fun ppf () -> Fmt.pf ppf " owns %a" (Fmt.list Fmt.int) d.owned)
    ()
