open Import

(** The comparison baseline: a hand-written, PCC-style second pass.

    This backend plays the role the portable C compiler's second pass
    plays in the paper's experiment (section 8): a recursive ad hoc tree
    matcher with hand-coded addressing-mode cases, Sethi-Ullman operand
    ordering decided during generation, and a simple register counter.
    It shares the register conventions, frame layout, instruction
    assembly and cost model with the table-driven backend so that
    compile-time, code-size and code-quality comparisons measure only
    the instruction-selection technique.

    Differences from the table-driven backend, chosen to reflect PCC's
    character: no scaled-index or symbol-displacement addressing
    patterns (index arithmetic is done with explicit multiplies and
    adds), no autoincrement recognition, and no two-address binding
    idioms beyond the inc/dec/clr/tst specials. *)

type compiled_func = {
  cf_name : string;
  cf_insns : Insn.t list;
  cf_frame_size : int;
}

type output = {
  assembly : string;
  funcs : compiled_func list;
  program : Tree.program;
}

(** [peephole] applies {!Gg_codegen.Peephole} to the output (off by
    default, like the 1982 PCC second pass). *)
val reserved_registers : Tree.func -> int list

val compile_func : ?peephole:bool -> Tree.func -> compiled_func

val compile_program : ?peephole:bool -> Tree.program -> output
val compile_tree : Tree.t -> Insn.t list

val total_cycles : output -> int
val total_lines : output -> int
