lib/pcc/pcc.ml: Buffer Dtype Fmt Frame Gg_codegen Import Insn Int Int64 List Mode Op Option Phase1c Regconv Transform Tree
