lib/pcc/pcc.mli: Import Insn Tree
