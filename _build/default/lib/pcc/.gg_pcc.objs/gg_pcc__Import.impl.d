lib/pcc/import.ml: Gg_codegen Gg_ir Gg_transform Gg_vax
