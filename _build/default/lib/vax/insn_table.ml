open Import

type entry = {
  print : string;
  nops : int;
  binding : bool;
  commutes : bool;
  range : string option;
}

type cluster = entry list

let range_matches key operand =
  match (key, Mode.immediate operand) with
  | "$one", Some 1L -> true
  | "$zero", Some 0L -> true
  | _, _ -> false

(* The range idioms proper: "implemented by functions written in C;
   these functions follow a relatively straightforward coding style"
   (section 5.3.2).  Given the idiom key, the type suffix and the
   remaining source operand, return the replacement one-operand
   mnemonic. *)
let range_apply key sfx operand =
  match (key, Mode.immediate operand) with
  | "$add", Some 1L -> Some ("inc" ^ sfx)
  | "$add", Some (-1L) -> Some ("dec" ^ sfx)
  | "$sub", Some 1L -> Some ("dec" ^ sfx)
  | "$sub", Some (-1L) -> Some ("inc" ^ sfx)
  | "$mov", Some 0L -> Some ("clr" ^ sfx)
  | "$cmp", Some 0L -> Some ("tst" ^ sfx)
  | _, _ -> None

let entry ?(binding = false) ?(commutes = false) ?range print nops =
  { print; nops; binding; commutes; range }

(* Split "add.l" into ("add", Long). *)
let parse_key key =
  match String.rindex_opt key '.' with
  | None -> None
  | Some i ->
    let op = String.sub key 0 i in
    let sfx = String.sub key (i + 1) (String.length key - i - 1) in
    (match Dtype.of_suffix sfx with
    | Some ty -> Some (op, ty, sfx)
    | None ->
      (* conversion keys carry two suffix letters, e.g. "cvt.bl" *)
      if op = "cvt" && String.length sfx = 2 then
        match
          ( Dtype.of_suffix (String.make 1 sfx.[0]),
            Dtype.of_suffix (String.make 1 sfx.[1]) )
        with
        | Some _, Some to_ -> Some ("cvt", to_, sfx)
        | _ -> None
      else None)

let pseudo_keys = [ "mod"; "udiv"; "umod"; "and"; "lsh"; "rsh"; "push_wide" ]

let is_pseudo key =
  match parse_key key with
  | Some (op, _, _) -> List.mem op pseudo_keys
  | None -> false

let cluster_of op ty sfx : cluster option =
  let is_int = Dtype.is_integer ty in
  match op with
  | "add" ->
    Some
      (entry ~binding:true ~commutes:true ("add" ^ sfx ^ "3") 3
      ::
      (if is_int then
         [ entry ~range:"$add" ("add" ^ sfx ^ "2") 2; entry ("inc" ^ sfx) 1 ]
       else [ entry ("add" ^ sfx ^ "2") 2 ]))
  | "sub" ->
    (* subl3 sub,min,dif computes min - sub: sources arrive as
       (minuend, subtrahend) and the emitter swaps them into VAX order *)
    Some
      (entry ~binding:true ("sub" ^ sfx ^ "3") 3
      ::
      (if is_int then
         [ entry ~range:"$sub" ("sub" ^ sfx ^ "2") 2; entry ("dec" ^ sfx) 1 ]
       else [ entry ("sub" ^ sfx ^ "2") 2 ]))
  | "mul" ->
    Some
      [
        entry ~binding:true ~commutes:true ("mul" ^ sfx ^ "3") 3;
        entry ("mul" ^ sfx ^ "2") 2;
      ]
  | "div" ->
    Some
      [
        entry ~binding:true ("div" ^ sfx ^ "3") 3; entry ("div" ^ sfx ^ "2") 2;
      ]
  | "or" when is_int ->
    Some
      [
        entry ~binding:true ~commutes:true ("bis" ^ sfx ^ "3") 3;
        entry ("bis" ^ sfx ^ "2") 2;
      ]
  | "xor" when is_int ->
    Some
      [
        entry ~binding:true ~commutes:true ("xor" ^ sfx ^ "3") 3;
        entry ("xor" ^ sfx ^ "2") 2;
      ]
  | "and" when is_int ->
    (* pseudo: expanded to bic with a complemented mask *)
    Some [ entry ("_and" ^ sfx) 3 ]
  | "mod" when is_int -> Some [ entry ("_mod" ^ sfx) 3 ]
  | "udiv" when is_int -> Some [ entry ("_udiv" ^ sfx) 3 ]
  | "umod" when is_int -> Some [ entry ("_umod" ^ sfx) 3 ]
  | "lsh" when ty = Dtype.Long -> Some [ entry "_lshl" 3 ]
  | "rsh" when ty = Dtype.Long -> Some [ entry "_rshl" 3 ]
  | "neg" -> Some [ entry ("mneg" ^ sfx) 2 ]
  | "com" when is_int -> Some [ entry ("mcom" ^ sfx) 2 ]
  | "mov" | "mov_r" ->
    Some
      (entry ~range:"$mov" ("mov" ^ sfx) 2 :: [ entry ("clr" ^ sfx) 1 ])
  | "cvt" -> Some [ entry ("cvt" ^ sfx) 2 ]
  | "mova" -> Some [ entry ("mova" ^ sfx) 2 ]
  | "push" when ty = Dtype.Long -> Some [ entry "pushl" 1 ]
  | "push" when ty = Dtype.Dbl -> Some [ entry "_pushd" 1 ]
  | "cmpbr" ->
    Some
      (entry ~range:"$cmp" ("cmp" ^ sfx) 2 :: [ entry ("tst" ^ sfx) 1 ])
  | "tstbr" | "tstbr_reg" -> Some [ entry ("tst" ^ sfx) 1 ]
  | "ccbr" -> Some []
  | _ -> None

let find key =
  match parse_key key with
  | None -> None
  | Some (op, ty, sfx) -> cluster_of op ty sfx

let find_exn key =
  match find key with
  | Some c -> c
  | None -> Fmt.invalid_arg "Insn_table.find_exn: unknown cluster %s" key

let known_keys () =
  let ints = [ "b"; "w"; "l" ] in
  let all = [ "b"; "w"; "l"; "f"; "d" ] in
  let keys = ref [] in
  let add op sfxs = List.iter (fun s -> keys := (op ^ "." ^ s) :: !keys) sfxs in
  add "add" all;
  add "sub" all;
  add "mul" all;
  add "div" all;
  add "or" ints;
  add "xor" ints;
  add "and" ints;
  add "mod" ints;
  add "udiv" [ "l" ];
  add "umod" [ "l" ];
  add "lsh" [ "l" ];
  add "rsh" [ "l" ];
  add "neg" all;
  add "com" ints;
  add "mov" all;
  add "mov_r" all;
  add "mova" all;
  add "push" [ "l"; "d" ];
  add "cmpbr" all;
  add "tstbr" ints;
  add "tstbr_reg" ints;
  add "ccbr" ints;
  (* conversions: all ordered pairs over b w l f d *)
  List.iter
    (fun f ->
      List.iter (fun t -> if f <> t then keys := ("cvt." ^ f ^ t) :: !keys) all)
    all;
  List.rev !keys
