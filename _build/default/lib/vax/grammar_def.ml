open Import

type options = {
  int_types : Dtype.t list;
  float_types : Dtype.t list;
  reverse_ops : bool;
  overfactored : bool;
  with_bridges : bool;
  condition_code_fix : bool;
}

let default =
  {
    int_types = [ Dtype.Byte; Dtype.Word; Dtype.Long ];
    float_types = [ Dtype.Flt; Dtype.Dbl ];
    reverse_ops = true;
    overfactored = false;
    with_bridges = true;
    condition_code_fix = true;
  }

(* The instruction-table cluster key for a binary operator. *)
let cluster_of_binop op =
  match Op.unreverse op with
  | Op.Plus -> "add"
  | Op.Minus -> "sub"
  | Op.Mul -> "mul"
  | Op.Div -> "div"
  | Op.Mod -> "mod"
  | Op.And -> "and"
  | Op.Or -> "or"
  | Op.Xor -> "xor"
  | Op.Lsh -> "lsh"
  | Op.Rsh -> "rsh"
  | Op.Udiv -> "udiv"
  | Op.Umod -> "umod"
  | Op.Rminus | Op.Rdiv | Op.Rmod | Op.Rlsh | Op.Rrsh -> assert false

let schemas o =
  let all = o.int_types @ o.float_types in
  let ints = o.int_types in
  let flts = o.float_types in
  let acc = ref [] in
  let push s = acc := s :: !acc in
  let typed ?note tys lhs rhs action = push (Schema.typed ?note tys lhs rhs action) in
  let literal ?note lhs rhs action = push (Schema.literal ?note lhs rhs action) in
  let pairs ?note ps lhs rhs action = push (Schema.pairs ?note ps lhs rhs action) in

  (* ---- operand encapsulation (addressing-mode leaves) ---- *)
  typed ints "imm.$t" [ "Const.$t" ] (Action.Mode "imm") ~note:"immediate";
  (* the special constants double as ordinary immediates (bridge
     productions for section 6.3's syntax-for-semantics tokens) *)
  List.iter
    (fun k -> typed ints "imm.$t" [ k ^ ".$t" ] (Action.Mode "imm") ~note:"immediate")
    [ "Zero"; "One"; "Two"; "Four"; "Eight" ];
  (* a narrow constant is usable directly as a wider immediate (the
     paper's Appendix relies on this: Const.b 27 under a long add) *)
  pairs
    [ (Dtype.Byte, Dtype.Word); (Dtype.Byte, Dtype.Long);
      (Dtype.Word, Dtype.Long) ]
    "imm.$t" [ "Const.$f" ] (Action.Mode "imm") ~note:"widened immediate";
  typed flts "rval.$t" [ "Fconst.$t" ] (Action.Mode "fimm") ~note:"float literal";
  typed all "mem.$t" [ "Name.$t" ] (Action.Mode "name") ~note:"a";
  typed all "mem.$t" [ "Temp.$t" ] (Action.Mode "temp") ~note:"T(fp)";
  typed all "mem.$t" [ "Autoinc.$t" ] (Action.Mode "autoinc") ~note:"(rn)+";
  typed all "mem.$t" [ "Autodec.$t" ] (Action.Mode "autodec") ~note:"-(rn)";
  typed all "mem.$t" [ "Indir.$t"; "ea.$t" ] (Action.Mode "indir") ~note:"*ea";
  typed all "reg.$t" [ "Dreg.$t" ] (Action.Mode "dreg") ~note:"rn (no code)";

  (* ---- effective addresses ---- *)
  typed all "ea.$t" [ "reg.l" ] (Action.Mode "deferred") ~note:"(rn)";
  typed all "ea.$t" [ "Const.l" ] (Action.Mode "absolute") ~note:"n";
  typed all "ea.$t"
    [ "Plus.l"; "Const.l"; "reg.l" ]
    (Action.Mode "disp") ~note:"d(rn)";
  List.iter
    (fun k ->
      typed all "ea.$t"
        [ "Plus.l"; k ^ ".l"; "reg.l" ]
        (Action.Mode "disp") ~note:"d(rn), special-constant d")
    [ "One"; "Two"; "Four"; "Eight" ];
  typed all "ea.$t"
    [ "Plus.l"; "Addr.$t"; "Name.$t"; "reg.l" ]
    (Action.Mode "symdisp") ~note:"a(rn)";
  typed all "ea.$t"
    [ "Plus.l"; "reg.l"; "Mul.l"; "$c.l"; "reg.l" ]
    (Action.Mode "index") ~note:"(rn)[rx]";
  typed all "ea.$t"
    [ "Plus.l"; "Const.l"; "Plus.l"; "reg.l"; "Mul.l"; "$c.l"; "reg.l" ]
    (Action.Mode "dispindex") ~note:"d(rn)[rx]";
  (* displacements that happen to be 1/2/4/8 arrive as special-constant
     tokens (section 6.3), so the indexed patterns need variants *)
  List.iter
    (fun k ->
      typed all "ea.$t"
        [ "Plus.l"; k ^ ".l"; "Plus.l"; "reg.l"; "Mul.l"; "$c.l"; "reg.l" ]
        (Action.Mode "dispindex") ~note:"d(rn)[rx], special-constant d")
    [ "One"; "Two"; "Four"; "Eight" ];
  typed all "ea.$t"
    [ "Plus.l"; "Addr.$t"; "Name.$t"; "Mul.l"; "$c.l"; "reg.l" ]
    (Action.Mode "symindex") ~note:"a[rx]";
  (* byte indexing needs no scale multiply *)
  literal "ea.b" [ "Plus.l"; "reg.l"; "reg.l" ] (Action.Mode "index")
    ~note:"(rn)[rx], byte";
  literal "ea.b"
    [ "Plus.l"; "Const.l"; "Plus.l"; "reg.l"; "reg.l" ]
    (Action.Mode "dispindex") ~note:"d(rn)[rx], byte";
  (* a byte a[rx] is the same shape as the symdisp production above, so
     it needs no production of its own *)

  (* ---- bridge productions (sections 6.2.2, 6.3) ---- *)
  if o.with_bridges then begin
    typed all "ea.$t"
      [ "Plus.l"; "reg.l"; "Mul.l"; "rval.l"; "rval.l" ]
      (Action.Emit "bridge_ixmul")
      ~note:"mul into a register, then (rsum)";
    typed all "ea.$t"
      [ "Plus.l"; "Const.l"; "Plus.l"; "reg.l"; "Mul.l"; "rval.l"; "rval.l" ]
      (Action.Emit "bridge_dxmul")
      ~note:"mul into a register, then d(rsum)";
    List.iter
      (fun k ->
        typed all "ea.$t"
          [ "Plus.l"; k ^ ".l"; "Plus.l"; "reg.l"; "Mul.l"; "rval.l";
            "rval.l" ]
          (Action.Emit "bridge_dxmul")
          ~note:"mul into a register, then d(rsum); special-constant d")
      [ "One"; "Two"; "Four"; "Eight" ];
    typed all "ea.$t"
      [ "Plus.l"; "Addr.$t"; "Name.$t"; "Mul.l"; "rval.l"; "rval.l" ]
      (Action.Emit "bridge_symmul")
      ~note:"mul into a register, then a(rt)"
  end;

  (* ---- binary operator instructions ---- *)
  let emit_binop_schemas ty_class binops =
    List.iter
      (fun op ->
        let op_t = Op.binop_name op ^ ".$t" in
        let key = Action.Emit (cluster_of_binop op ^ ".$t") in
        if Op.is_reverse op then begin
          if o.reverse_ops then begin
            typed ty_class "reg.$t" [ op_t; "rval.$t"; "rval.$t" ] key
              ~note:"reverse operand order";
            typed ty_class "stmt"
              [ "Rassign.$t"; op_t; "rval.$t"; "rval.$t"; "lval.$t" ]
              key ~note:"reverse, memory destination";
            typed ty_class "stmt"
              [ "Assign.$t"; "lval.$t"; op_t; "rval.$t"; "rval.$t" ]
              key ~note:"reverse source, plain destination"
          end
        end
        else begin
          typed ty_class "reg.$t" [ op_t; "rval.$t"; "rval.$t" ] key
            ~note:"three-address, register destination";
          typed ty_class "stmt"
            [ "Assign.$t"; "lval.$t"; op_t; "rval.$t"; "rval.$t" ]
            key ~note:"three-address, memory destination"
        end)
      binops
  in
  (* operators available at every integer type *)
  let int_common =
    [ Op.Plus; Op.Minus; Op.Mul; Op.Div; Op.Mod; Op.And; Op.Or; Op.Xor ]
    @ if o.reverse_ops then [ Op.Rminus; Op.Rdiv; Op.Rmod ] else []
  in
  let int_common =
    if o.overfactored then
      (* the over-factoring ablation moves Plus/Mul/Or/Xor into the
         binop class below *)
      List.filter
        (fun op -> not (List.mem op [ Op.Plus; Op.Mul; Op.Or; Op.Xor ]))
        int_common
    else int_common
  in
  emit_binop_schemas ints int_common;
  (* long-only operators (PCC promotes shift/unsigned operands) *)
  let long_only =
    [ Op.Lsh; Op.Rsh; Op.Udiv; Op.Umod ]
    @ if o.reverse_ops then [ Op.Rlsh; Op.Rrsh ] else []
  in
  emit_binop_schemas [ Dtype.Long ] long_only;
  emit_binop_schemas flts
    ([ Op.Plus; Op.Minus; Op.Mul; Op.Div ]
    @ if o.reverse_ops then [ Op.Rminus; Op.Rdiv ] else []);

  if o.overfactored then begin
    (* section 6.2.1: an operator-class non-terminal covering the
       commutative operators — including, wrongly, Plus and Mul, which
       also occur as secondary operators inside addressing modes *)
    List.iter
      (fun op ->
        typed ints ("binop.$t")
          [ Op.binop_name op ^ ".$t" ]
          Action.Chain ~note:"operator class")
      [ Op.Plus; Op.Mul; Op.Or; Op.Xor ];
    typed ints "reg.$t" [ "binop.$t"; "rval.$t"; "rval.$t" ]
      (Action.Emit "class.$t") ~note:"over-factored operator class";
    typed ints "stmt"
      [ "Assign.$t"; "lval.$t"; "binop.$t"; "rval.$t"; "rval.$t" ]
      (Action.Emit "class.$t") ~note:"over-factored operator class"
  end;

  (* ---- unary operator instructions ---- *)
  typed all "reg.$t" [ "Neg.$t"; "rval.$t" ] (Action.Emit "neg.$t")
    ~note:"mneg s,r";
  typed all "stmt" [ "Assign.$t"; "lval.$t"; "Neg.$t"; "rval.$t" ]
    (Action.Emit "neg.$t") ~note:"mneg s,d";
  typed ints "reg.$t" [ "Com.$t"; "rval.$t" ] (Action.Emit "com.$t")
    ~note:"mcom s,r";
  typed ints "stmt" [ "Assign.$t"; "lval.$t"; "Com.$t"; "rval.$t" ]
    (Action.Emit "com.$t") ~note:"mcom s,d";

  (* ---- moves, loads, chains ---- *)
  typed all "stmt" [ "Assign.$t"; "lval.$t"; "rval.$t" ]
    (Action.Emit "mov.$t") ~note:"mov s,d";
  if o.reverse_ops then
    typed all "stmt" [ "Rassign.$t"; "rval.$t"; "lval.$t" ]
      (Action.Emit "mov_r.$t") ~note:"mov s,d (source first)";
  typed all "reg.$t" [ "rval.$t" ] (Action.Emit "mov.$t") ~note:"load";
  typed ints "rval.$t" [ "imm.$t" ] Action.Chain;
  typed all "rval.$t" [ "mem.$t" ] Action.Chain;
  typed all "rval.$t" [ "reg.$t" ] Action.Chain;
  typed all "lval.$t" [ "mem.$t" ] Action.Chain;
  typed all "lval.$t" [ "Dreg.$t" ] (Action.Mode "dreg");

  (* ---- conversions (the cross-product sub-grammar of section 6.4) ---- *)
  let pairs_list =
    List.concat_map
      (fun from ->
        List.filter_map
          (fun to_ -> if Dtype.equal from to_ then None else Some (from, to_))
          all)
      all
  in
  pairs pairs_list "reg.$t" [ "Cvt.$f$t"; "rval.$f" ]
    (Action.Emit "cvt.$f$t") ~note:"cvt s,r";
  pairs pairs_list "stmt" [ "Assign.$t"; "lval.$t"; "Cvt.$f$t"; "rval.$f" ]
    (Action.Emit "cvt.$f$t") ~note:"cvt s,d";

  (* ---- comparison and branch (section 6.1's condition-code story) ---- *)
  typed all "stmt" [ "Cbranch"; "Cmp.$t"; "rval.$t"; "rval.$t"; "Label" ]
    (Action.Emit "cmpbr.$t") ~note:"cmp a,b; jCC L";
  typed ints "stmt" [ "Cbranch"; "Cmp.$t"; "rval.$t"; "Zero.$t"; "Label" ]
    (Action.Emit "tstbr.$t") ~note:"tst a; jCC L";
  typed ints "stmt" [ "Cbranch"; "Cmp.$t"; "reg.$t"; "Zero.$t"; "Label" ]
    (Action.Emit "ccbr.$t")
    ~note:"jCC L (condition codes set by the reg computation)";
  if o.condition_code_fix then
    typed ints "stmt" [ "Cbranch"; "Cmp.$t"; "Dreg.$t"; "Zero.$t"; "Label" ]
      (Action.Emit "tstbr_reg.$t")
      ~note:"tst rn; jCC L (chain reg <- Dreg emits no code)";

  (* ---- argument pushes and address-of ---- *)
  literal "stmt" [ "Arg.l"; "rval.l" ] (Action.Emit "push.l") ~note:"pushl s";
  if List.mem Dtype.Dbl flts then
    literal "stmt" [ "Arg.d"; "rval.d" ] (Action.Emit "push.d")
      ~note:"movd s,-(sp)";
  typed all "reg.l" [ "Addr.$t"; "Name.$t" ] (Action.Emit "mova.$t")
    ~note:"mova a,r";
  typed all "reg.l" [ "Addr.$t"; "Temp.$t" ] (Action.Emit "mova.$t")
    ~note:"mova T(fp),r";
  typed all "reg.l" [ "Addr.$t"; "Indir.$t"; "ea.$t" ]
    (Action.Emit "mova.$t") ~note:"mova ea,r";

  List.rev !acc

let grammar o = Grammar.make_exn ~start:"stmt" (Schema.expand_all (schemas o))

let default_grammar = lazy (grammar default)

let treelang o =
  let tl =
    Treelang.description ~int_types:o.int_types ~float_types:o.float_types
      ~reverse_ops:o.reverse_ops ()
  in
  if not o.overfactored then tl
  else begin
    (* the operator-class non-terminal of the over-factored variant acts
       as an arity-2 operator in item positions *)
    let is_class name =
      String.length name > 6 && String.sub name 0 6 = "binop."
    in
    {
      tl with
      Treelang.arity =
        (fun name -> if is_class name then 2 else tl.Treelang.arity name);
      starts =
        (fun ~parent ~child ->
          match parent with
          | Some name when is_class name -> (
            match Dtype.of_suffix (String.sub name 6 (String.length name - 6)) with
            | Some ty -> tl.Treelang.value_starts ty
            | None -> [])
          | _ -> tl.Treelang.starts ~parent ~child);
    }
  end
