lib/vax/mode.ml: Float Fmt Import Int Int64 Option Regconv
