lib/vax/treelang.ml: Dtype Import List Op String Termname
