lib/vax/mode.mli: Fmt
