lib/vax/grammar_def.ml: Action Dtype Grammar Import List Op Schema String Treelang
