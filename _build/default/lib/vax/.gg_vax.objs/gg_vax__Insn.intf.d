lib/vax/insn.mli: Fmt Import Label Mode
