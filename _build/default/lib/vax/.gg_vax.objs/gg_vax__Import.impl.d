lib/vax/import.ml: Gg_grammar Gg_ir
