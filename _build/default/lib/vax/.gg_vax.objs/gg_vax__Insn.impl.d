lib/vax/insn.ml: Fmt Import Label List Mode String
