lib/vax/treelang.mli: Dtype Import Op
