lib/vax/insn_table.mli: Mode
