lib/vax/insn_table.ml: Dtype Fmt Import List Mode String
