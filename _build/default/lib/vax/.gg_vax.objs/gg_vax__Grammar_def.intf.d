lib/vax/grammar_def.mli: Dtype Grammar Import Lazy Schema Treelang
