open Import

(** The VAX machine description grammar.

    The description is written as generic schemas and type-replicated
    (paper section 6.4).  It is {e factored} (paper section 4): address
    computations are encapsulated by the [ea.t] non-terminals, operand
    classes by [rval.t]/[lval.t]/[mem.t]/[imm.t], and values in
    registers by [reg.t].  The sentential symbol is [stmt].

    Options reproduce the paper's design alternatives:
    - [reverse_ops] adds patterns for the reverse operators introduced
      by evaluation ordering (section 5.1.3, quantified in the
      reverse-ops ablation benchmark);
    - [overfactored] groups [Plus] and [Mul] into an operator-class
      non-terminal together with [Or]/[Xor], reproducing the
      over-factoring mistake of section 6.2.1;
    - [with_bridges] includes the bridge productions that remove the
      syntactic blocks in the long addressing-mode patterns (sections
      6.2.2 and 6.3) — disable to observe the blocks. *)

type options = {
  int_types : Dtype.t list;
  float_types : Dtype.t list;
  reverse_ops : bool;
  overfactored : bool;
  with_bridges : bool;
  condition_code_fix : bool;
      (** include the [Branch Cmp Dreg Zero Label] production that
          section 6.2.1 adds to repair the over-factored condition-code
          assumption; disabling it reproduces the original bug (a branch
          on stale condition codes) *)
}

val default : options

(** The generic (pre-replication) schemas; their count is the paper's
    "458 productions before type replication" statistic. *)
val schemas : options -> Schema.t list

(** The replicated grammar. *)
val grammar : options -> Grammar.t

(** [grammar default], built once. *)
val default_grammar : Grammar.t Lazy.t

(** Tree-language description matching [options] (for the block
    checker). *)
val treelang : options -> Treelang.t
