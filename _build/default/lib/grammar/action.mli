(** Semantic action tags attached to productions.

    The paper distinguishes three roles for productions in a factored
    grammar: encapsulating phrases (addressing modes), emitting
    instructions, and glue (section 4).  The tag names a semantic
    routine; the code generator maps names to behaviour (the paper's
    hand-written C routines reached through the [R(n)] interface,
    section 6.4). *)

type t =
  | Chain  (** glue / condense: the descriptor passes through unchanged *)
  | Mode of string
      (** encapsulate the matched phrase into an addressing-mode
          descriptor built by the named builder *)
  | Emit of string
      (** emit instruction(s) by looking up the named cluster in the
          instruction table (paper Fig. 3) *)
  | Start  (** the augmented start production *)

val equal : t -> t -> bool

(** The embedded name, if any. *)
val payload : t -> string option

(** Apply a substitution to the embedded name (used by type
    replication). *)
val map_payload : (string -> string) -> t -> t

val pp : t Fmt.t
