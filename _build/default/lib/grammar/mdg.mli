open Import

(** Textual machine-description format (".mdg").

    The paper's machine descriptions are text files processed by a
    macro preprocessor before table construction (section 6.4).  This
    module is that surface syntax: generic productions with named
    replication classes, expanded by {!Schema}.

    Format, line oriented; [#] starts a comment:

    {v
    %start stmt
    %class I = b w l          # a named set of type suffixes
    %class Y = b w l f d

    # lhs <- rhs ...  [action]  %over CLASS | %pairs C1 C2   ; note
    imm.$t  <- Const.$t                     [mode imm]  %over I  ; $n
    reg.$t  <- Plus.$t rval.$t rval.$t      [emit add.$t] %over I
    reg.$t  <- Cvt.$f$t rval.$f             [emit cvt.$f$t] %pairs Y Y
    rval.l  <- reg.l                        [chain]
    v}

    Actions: [[chain]], [[mode NAME]], [[emit NAME]].
    [%over C] replicates the production once per suffix in class [C]
    (binding [$t] and the scale variable [$c]); [%pairs A B] replicates
    over all ordered pairs of distinct suffixes (binding [$f] and
    [$t]). *)

type t = {
  start : string;
  classes : (string * Dtype.t list) list;
  schemas : Schema.t list;
}

exception Mdg_error of int * string  (** line, message *)

val parse : string -> t

(** Render back to the textual format; [parse (print t)] yields an
    equivalent description. *)
val print : t -> string

(** Expand and build the grammar. *)
val to_grammar : t -> Grammar.t

(** Convenience: wrap a schema list (e.g. from
    {!Gg_vax.Grammar_def.schemas}) as a description for printing.
    Classes are synthesised from the type sets found in the schemas. *)
val of_schemas : start:string -> Schema.t list -> t
