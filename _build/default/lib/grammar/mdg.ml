open Import

type t = {
  start : string;
  classes : (string * Dtype.t list) list;
  schemas : Schema.t list;
}

exception Mdg_error of int * string

let error line fmt = Fmt.kstr (fun s -> raise (Mdg_error (line, s))) fmt

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let suffixes_of line words =
  List.map
    (fun w ->
      match Dtype.of_suffix w with
      | Some ty -> ty
      | None -> error line "unknown type suffix %s" w)
    words

(* split "... [action] ..." into before, action-words, after *)
let extract_bracketed line s =
  match (String.index_opt s '[', String.index_opt s ']') with
  | Some i, Some j when i < j ->
    ( String.sub s 0 i,
      split_ws (String.sub s (i + 1) (j - i - 1)),
      String.sub s (j + 1) (String.length s - j - 1) )
  | _ -> error line "production needs an [action]"

let parse_action line = function
  | [ "chain" ] -> Action.Chain
  | [ "mode"; name ] -> Action.Mode name
  | [ "emit"; name ] -> Action.Emit name
  | ws -> error line "bad action [%s]" (String.concat " " ws)

let parse text =
  let lines = String.split_on_char '\n' text in
  let start = ref None in
  let classes = ref [] in
  let schemas = ref [] in
  let class_named line name =
    match List.assoc_opt name !classes with
    | Some tys -> tys
    | None -> error line "unknown class %s" name
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let s = String.trim s in
      if s = "" then ()
      else if String.length s > 6 && String.sub s 0 6 = "%start" then
        start := Some (String.trim (String.sub s 6 (String.length s - 6)))
      else if String.length s > 6 && String.sub s 0 6 = "%class" then begin
        match String.index_opt s '=' with
        | None -> error line "bad %%class: missing ="
        | Some j ->
          let name =
            String.trim (String.sub s 6 (j - 6))
          in
          let tys =
            suffixes_of line (split_ws (String.sub s (j + 1) (String.length s - j - 1)))
          in
          classes := (name, tys) :: !classes
      end
      else begin
        (* a production line: lhs <- rhs [action] (%over C | %pairs A B)? (; note)? *)
        let s, note =
          match String.index_opt s ';' with
          | Some j ->
            ( String.sub s 0 j,
              String.trim (String.sub s (j + 1) (String.length s - j - 1)) )
          | None -> (s, "")
        in
        let before, action_words, after = extract_bracketed line s in
        let action = parse_action line action_words in
        let over =
          match split_ws after with
          | [] -> Schema.Literal
          | [ "%over"; c ] -> Schema.Types (class_named line c)
          | [ "%pairs"; a; b ] ->
            let ca = class_named line a and cb = class_named line b in
            Schema.Pairs
              (List.concat_map
                 (fun x ->
                   List.filter_map
                     (fun y ->
                       if Dtype.equal x y then None else Some (x, y))
                     cb)
                 ca)
          | ws -> error line "unexpected trailing tokens: %s" (String.concat " " ws)
        in
        match split_ws before with
        | lhs :: "<-" :: rhs when rhs <> [] ->
          schemas := { Schema.lhs; rhs; action; note; over } :: !schemas
        | _ -> error line "expected: lhs <- rhs ... [action]"
      end)
    lines;
  match !start with
  | None -> error 0 "missing %%start declaration"
  | Some start ->
    { start; classes = List.rev !classes; schemas = List.rev !schemas }

(* -- printing ----------------------------------------------------------------- *)

let class_name_of classes tys =
  List.find_map
    (fun (name, ctys) -> if ctys = tys then Some name else None)
    classes

let print t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Fmt.str "%%start %s\n" t.start);
  List.iter
    (fun (name, tys) ->
      Buffer.add_string buf
        (Fmt.str "%%class %s = %s\n" name
           (String.concat " " (List.map Dtype.suffix tys))))
    t.classes;
  Buffer.add_char buf '\n';
  List.iter
    (fun (sch : Schema.t) ->
      let action =
        match sch.Schema.action with
        | Action.Chain -> "[chain]"
        | Action.Mode m -> Fmt.str "[mode %s]" m
        | Action.Emit e -> Fmt.str "[emit %s]" e
        | Action.Start -> "[chain]"
      in
      let over =
        match sch.Schema.over with
        | Schema.Literal -> ""
        | Schema.Types tys -> (
          match class_name_of t.classes tys with
          | Some name -> Fmt.str " %%over %s" name
          | None ->
            Fmt.str " %%over %s"
              (String.concat "" (List.map Dtype.suffix tys)))
        | Schema.Pairs ps -> (
          (* recover the class pair when the expansion is a full cross
             product of two known classes *)
          let firsts = List.sort_uniq compare (List.map fst ps) in
          let seconds = List.sort_uniq compare (List.map snd ps) in
          match (class_name_of t.classes firsts, class_name_of t.classes seconds) with
          | Some a, Some b -> Fmt.str " %%pairs %s %s" a b
          | _ -> " %pairs ? ?")
      in
      let note = if sch.Schema.note = "" then "" else " ; " ^ sch.Schema.note in
      Buffer.add_string buf
        (Fmt.str "%s <- %s %s%s%s\n" sch.Schema.lhs
           (String.concat " " sch.Schema.rhs)
           action over note))
    t.schemas;
  Buffer.contents buf

let to_grammar t =
  Grammar.make_exn ~start:t.start (Schema.expand_all t.schemas)

let of_schemas ~start schemas =
  (* synthesise class names for each distinct type set *)
  let counter = ref 0 in
  let classes = ref [] in
  let class_for tys =
    match class_name_of !classes tys with
    | Some _ -> ()
    | None ->
      incr counter;
      classes := !classes @ [ (Fmt.str "C%d" !counter, tys) ]
  in
  List.iter
    (fun (sch : Schema.t) ->
      match sch.Schema.over with
      | Schema.Literal -> ()
      | Schema.Types tys -> class_for tys
      | Schema.Pairs ps ->
        class_for (List.sort_uniq compare (List.map fst ps));
        class_for (List.sort_uniq compare (List.map snd ps)))
    schemas;
  { start; classes = !classes; schemas }
