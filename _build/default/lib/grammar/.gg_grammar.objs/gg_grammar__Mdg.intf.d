lib/grammar/mdg.mli: Dtype Grammar Import Schema
