lib/grammar/import.ml: Gg_ir
