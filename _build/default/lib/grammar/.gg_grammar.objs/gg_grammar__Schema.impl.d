lib/grammar/schema.ml: Action Buffer Dtype Fmt Grammar Import List String
