lib/grammar/mdg.ml: Action Buffer Dtype Fmt Grammar Import List Schema String
