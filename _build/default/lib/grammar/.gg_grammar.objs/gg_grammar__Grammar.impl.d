lib/grammar/grammar.ml: Action Array Fmt Fun Hashtbl List Seq String Symtab
