lib/grammar/symtab.ml: Array Fmt Hashtbl Int String
