lib/grammar/action.ml: Fmt String
