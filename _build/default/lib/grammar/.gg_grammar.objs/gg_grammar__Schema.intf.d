lib/grammar/schema.mli: Action Dtype Grammar Import
