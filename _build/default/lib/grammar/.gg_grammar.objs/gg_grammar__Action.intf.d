lib/grammar/action.mli: Fmt
