lib/grammar/grammar.mli: Action Fmt Symtab
