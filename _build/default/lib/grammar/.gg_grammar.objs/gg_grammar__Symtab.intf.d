lib/grammar/symtab.mli: Fmt
