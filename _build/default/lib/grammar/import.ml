(* Short aliases for the IR modules used throughout this library. *)
module Dtype = Gg_ir.Dtype
module Op = Gg_ir.Op
module Tree = Gg_ir.Tree
module Termname = Gg_ir.Termname
