type t = Chain | Mode of string | Emit of string | Start

let equal a b =
  match (a, b) with
  | Chain, Chain | Start, Start -> true
  | Mode x, Mode y | Emit x, Emit y -> String.equal x y
  | (Chain | Mode _ | Emit _ | Start), _ -> false

let payload = function
  | Chain | Start -> None
  | Mode s | Emit s -> Some s

let map_payload f = function
  | Chain -> Chain
  | Start -> Start
  | Mode s -> Mode (f s)
  | Emit s -> Emit (f s)

let pp ppf = function
  | Chain -> Fmt.string ppf "chain"
  | Start -> Fmt.string ppf "start"
  | Mode s -> Fmt.pf ppf "mode:%s" s
  | Emit s -> Fmt.pf ppf "emit:%s" s
