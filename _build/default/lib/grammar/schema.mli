open Import

(** Generic production schemas and type replication.

    The paper writes the VAX description as {e generic} productions and
    uses a macro preprocessor to replicate each one per machine data
    type, growing 458 generic productions to 1073 (section 6.4).  This
    module is the structured equivalent of that preprocessor.

    Substitution variables inside symbol names, action payloads and
    notes:
    - ["$t"] — the one-letter suffix of the replication type;
    - ["$c"] — the special-constant token that scales an index by the
      type's size: [One], [Two], [Four] or [Eight] (section 6.3);
    - for pairwise (conversion) schemas, ["$f"] and ["$t"] are the
      source and destination type suffixes. *)

type over =
  | Literal  (** no replication: the schema is a single production *)
  | Types of Dtype.t list  (** one production per type *)
  | Pairs of (Dtype.t * Dtype.t) list
      (** one production per (from, to) pair — the conversion
          sub-grammar cross product the paper built by hand *)

type t = {
  lhs : string;
  rhs : string list;
  action : Action.t;
  note : string;
  over : over;
}

val literal : ?note:string -> string -> string list -> Action.t -> t
val typed : ?note:string -> Dtype.t list -> string -> string list -> Action.t -> t

val pairs :
  ?note:string -> (Dtype.t * Dtype.t) list -> string -> string list -> Action.t -> t

(** Expand one schema to concrete production specs. *)
val expand : t -> Grammar.spec list

(** Expand a schema list in order (the grammar source order). *)
val expand_all : t list -> Grammar.spec list

(** The scale token base name for a type's size, e.g. [Long] ->
    ["Four"]. *)
val scale_token : Dtype.t -> string

(** Expose the raw substitution for tests: [subst ~vars s] replaces each
    ["$k"] for [(k, v)] in [vars] by [v]. *)
val subst : vars:(char * string) list -> string -> string
