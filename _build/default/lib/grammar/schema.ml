open Import

type over =
  | Literal
  | Types of Dtype.t list
  | Pairs of (Dtype.t * Dtype.t) list

type t = {
  lhs : string;
  rhs : string list;
  action : Action.t;
  note : string;
  over : over;
}

let literal ?(note = "") lhs rhs action = { lhs; rhs; action; note; over = Literal }

let typed ?(note = "") types lhs rhs action =
  { lhs; rhs; action; note; over = Types types }

let pairs ?(note = "") ps lhs rhs action =
  { lhs; rhs; action; note; over = Pairs ps }

let scale_token ty =
  match Dtype.size ty with
  | 1 -> "One"
  | 2 -> "Two"
  | 4 -> "Four"
  | 8 -> "Eight"
  | _ -> assert false

let subst ~vars s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '$' && i + 1 < n then begin
        (match List.assoc_opt s.[i + 1] vars with
        | Some v -> Buffer.add_string buf v
        | None ->
          Fmt.invalid_arg "Schema.subst: unknown variable $%c in %S" s.[i + 1] s);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let expand_with vars sch : Grammar.spec =
  let f = subst ~vars in
  (f sch.lhs, List.map f sch.rhs, Action.map_payload f sch.action, f sch.note)

let expand sch =
  match sch.over with
  | Literal -> [ expand_with [] sch ]
  | Types tys ->
    List.map
      (fun ty ->
        expand_with [ ('t', Dtype.suffix ty); ('c', scale_token ty) ] sch)
      tys
  | Pairs ps ->
    List.map
      (fun (from, to_) ->
        expand_with [ ('f', Dtype.suffix from); ('t', Dtype.suffix to_) ] sch)
      ps

let expand_all schemas = List.concat_map expand schemas
