open Import

(** The instruction pattern matcher: a table-driven shift/reduce parser
    invoked once per expression tree (paper section 3.3).

    The matcher is generic in the semantic values ['a] carried on the
    parse stack — the code generator instantiates them with operand
    descriptors.  Each shift turns a token into a value; each reduction
    condenses the right-hand-side values into one left-hand-side value
    (paper section 5.2).  When the tables left a reduce/reduce tie to
    semantics, [choose] picks the production dynamically. *)

type 'a callbacks = {
  on_shift : Termname.token -> 'a;
  on_reduce : Grammar.production -> 'a array -> 'a;
  choose : Grammar.production array -> 'a array list -> int;
      (** [choose candidates argss] returns the index of the production
          to reduce by; [argss] are the would-be argument arrays, in
          candidate order.  Only called for genuine ties. *)
}

(** One parser action, for tracing (the paper's Appendix prints this
    sequence for [a := 27 + b]). *)
type step =
  | Sshift of string  (** terminal shifted *)
  | Sreduce of int  (** production id reduced *)
  | Saccept

type error = {
  at : int;  (** index of the offending token, or input length for eof *)
  token : string;  (** terminal name, or ["<eof>"] *)
  state : int;
  expected : string list;  (** terminals with actions in that state *)
}

exception Reject of error

type 'a outcome = { value : 'a; trace : step list }

(** [run tables callbacks tokens] parses one linearised tree.  Returns
    the semantic value of the start symbol.  Raises {!Reject} on a
    syntactic block — which, per the paper, indicates a bug in the
    machine description, not in the program being compiled. *)
val run :
  ?trace:bool -> Tables.t -> 'a callbacks -> Termname.token list -> 'a outcome

(** Run against comb-packed tables ({!Gg_tablegen.Packed}): identical
    behaviour on grammatical input; ungrammatical input may perform some
    default reductions before failing, as in any parser with default
    actions. *)
val run_packed :
  ?trace:bool ->
  Gg_tablegen.Packed.t ->
  grammar:Grammar.t ->
  'a callbacks ->
  Termname.token list ->
  'a outcome

(** Linearise a tree and run the matcher over it. *)
val run_tree :
  ?trace:bool ->
  ?special_constants:bool ->
  Tables.t ->
  'a callbacks ->
  Tree.t ->
  'a outcome

val pp_step : Grammar.t -> step Fmt.t
val pp_trace : Grammar.t -> step list Fmt.t
val pp_error : error Fmt.t
