lib/matcher/matcher.ml: Array Fmt Fun Gg_tablegen Grammar Import List Symtab Tables Termname
