lib/matcher/matcher.mli: Fmt Gg_tablegen Grammar Import Tables Termname Tree
