lib/matcher/import.ml: Gg_grammar Gg_ir Gg_tablegen
