(* Short aliases for modules used throughout this library. *)
module Grammar = Gg_grammar.Grammar
module Symtab = Gg_grammar.Symtab
module Action = Gg_grammar.Action
module Tables = Gg_tablegen.Tables
module Termname = Gg_ir.Termname
module Tree = Gg_ir.Tree
