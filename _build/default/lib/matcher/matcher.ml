open Import

type 'a callbacks = {
  on_shift : Termname.token -> 'a;
  on_reduce : Grammar.production -> 'a array -> 'a;
  choose : Grammar.production array -> 'a array list -> int;
}

type step = Sshift of string | Sreduce of int | Saccept

type error = {
  at : int;
  token : string;
  state : int;
  expected : string list;
}

exception Reject of error

type 'a outcome = { value : 'a; trace : step list }

(* the generic driver, abstracted over table access so both the dense
   and the packed representations can drive it *)
let run_with ?(trace = false) ~(g : Grammar.t) ~eof
    ~(action : int -> int -> Tables.action) ~(goto : int -> int -> int)
    ~(expected : int -> int list) cb tokens =
  let tokens = Array.of_list tokens in
  let n = Array.length tokens in
  (* the value slot of the bottom entry is never read *)
  let stack = ref [] in
  let state = ref 0 in
  let steps = ref [] in
  let record s = if trace then steps := s :: !steps in
  let term_id i =
    if i >= n then eof
    else
      let name = tokens.(i).Termname.term in
      match Symtab.find g.symtab name with
      | Some (Symtab.T a) -> a
      | Some (Symtab.N _) | None ->
        raise
          (Reject
             {
               at = i;
               token = name;
               state = !state;
               expected = [];
             })
  in
  let expected_names s =
    List.filter_map
      (fun a ->
        if a = eof then Some "<eof>" else Some (Symtab.term_name g.symtab a))
      (expected s)
  in
  let reject i a =
    raise
      (Reject
         {
           at = i;
           token = (if a = eof then "<eof>" else Symtab.term_name g.symtab a);
           state = !state;
           expected = expected_names !state;
         })
  in
  (* A grammar bug (a chain-rule loop the table generator failed to
     catch, paper section 3.2) could make the matcher reduce forever
     without consuming input; bound the total number of actions. *)
  let budget = ref ((64 * n) + 1024) in
  let rec loop i =
    decr budget;
    if !budget < 0 then
      raise
        (Reject
           {
             at = min i (n - 1) |> max 0;
             token = "<looping>";
             state = !state;
             expected = expected_names !state;
           });
    let a = term_id i in
    match action !state a with
    | Tables.Shift s' ->
      record (Sshift tokens.(i).Termname.term);
      stack := (!state, cb.on_shift tokens.(i)) :: !stack;
      state := s';
      loop (i + 1)
    | Tables.Reduce candidates ->
      let pop_args len =
        (* returns (args, remaining stack, exposed state) *)
        let rec go k acc st =
          if k = 0 then (acc, st)
          else
            match st with
            | (s, v) :: rest -> go (k - 1) ((s, v) :: acc) rest
            | [] -> assert false
        in
        let popped, rest = go len [] !stack in
        (Array.of_list (List.map snd popped), popped, rest)
      in
      let pid =
        if Array.length candidates = 1 then candidates.(0)
        else begin
          (* a genuine tie: all candidates have equal rhs length *)
          let prods = Array.map (Grammar.production g) candidates in
          let len = Array.length prods.(0).rhs in
          let args, _, _ = pop_args len in
          let idx = cb.choose prods [ args ] in
          candidates.(idx)
        end
      in
      let p = Grammar.production g pid in
      let len = Array.length p.rhs in
      let args, popped, rest = pop_args len in
      let exposed =
        match popped with (s, _) :: _ -> s | [] -> assert false
      in
      record (Sreduce pid);
      let v = cb.on_reduce p args in
      let target = goto exposed p.Grammar.lhs in
      if target < 0 then reject i a;
      stack := (exposed, v) :: rest;
      state := target;
      loop i
    | Tables.Accept -> (
      record Saccept;
      match !stack with
      | [ (_, v) ] -> v
      | _ -> assert false)
    | Tables.Error -> reject i a
  in
  let value = loop 0 in
  { value; trace = List.rev !steps }

let run ?trace (tables : Tables.t) cb tokens =
  run_with ?trace
    ~g:(Tables.grammar tables)
    ~eof:(Tables.eof tables)
    ~action:(fun s a -> tables.Tables.action.(s).(a))
    ~goto:(fun s n -> tables.Tables.goto_.(s).(n))
    ~expected:(Tables.expected tables)
    cb tokens

let run_packed ?trace (packed : Gg_tablegen.Packed.t) ~grammar cb tokens =
  let g : Grammar.t = grammar in
  let eof = Symtab.n_terms g.Grammar.symtab in
  run_with ?trace ~g ~eof
    ~action:(Gg_tablegen.Packed.action packed)
    ~goto:(Gg_tablegen.Packed.goto packed)
    ~expected:(fun s ->
      List.filter
        (fun a -> Gg_tablegen.Packed.action packed s a <> Tables.Error)
        (List.init (eof + 1) Fun.id))
    cb tokens

let run_tree ?trace ?special_constants tables cb tree =
  run ?trace tables cb (Termname.linearize ?special_constants tree)

let pp_step g ppf = function
  | Sshift name -> Fmt.pf ppf "shift  %s" name
  | Sreduce pid ->
    Fmt.pf ppf "reduce %a" (Grammar.pp_production g) (Grammar.production g pid)
  | Saccept -> Fmt.string ppf "accept"

let pp_trace g ppf steps =
  Fmt.(list ~sep:(any "@\n") (pp_step g)) ppf steps

let pp_error ppf e =
  Fmt.pf ppf
    "syntactic block at token %d (%s) in state %d; expected one of: %a" e.at
    e.token e.state
    Fmt.(list ~sep:comma string)
    e.expected
