lib/vaxsim/machine.ml: Array Asmparse Buffer Bytes Char Dtype Fmt Hashtbl Import Insn Int32 Int64 Interp Label List Mode Regconv String Tree
