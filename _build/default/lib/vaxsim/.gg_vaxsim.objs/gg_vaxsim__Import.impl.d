lib/vaxsim/import.ml: Gg_ir Gg_vax
