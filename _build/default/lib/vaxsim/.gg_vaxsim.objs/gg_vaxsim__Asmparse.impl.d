lib/vaxsim/asmparse.ml: Fmt Import Insn Int64 Label List Mode Regconv String
