lib/vaxsim/machine.mli: Asmparse Dtype Import Interp
