lib/vaxsim/asmparse.mli: Import Insn Label Mode
