type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

exception Lex_error of int * string

let keywords =
  [
    "char"; "short"; "int"; "long"; "unsigned"; "float"; "double"; "void";
    "if"; "else"; "while"; "do"; "for"; "return"; "break"; "continue";
    "register";
  ]

(* longest first so that the scan below can match greedily *)
let puncts =
  [
    "<<="; ">>="; "=="; "!="; "<="; ">="; "&&"; "||"; "++"; "--"; "+="; "-=";
    "*="; "/="; "%="; "&="; "|="; "^="; "<<"; ">>"; "+"; "-"; "*"; "/"; "%";
    "&"; "|"; "^"; "~"; "!"; "<"; ">"; "="; "("; ")"; "{"; "}"; "["; "]";
    ";"; ","; "?"; ":";
  ]

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable tok : token;
  mutable tok_line : int;
}

let error t fmt = Fmt.kstr (fun s -> raise (Lex_error (t.line, s))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let rec skip_ws t =
  if t.pos < String.length t.src then
    match t.src.[t.pos] with
    | ' ' | '\t' | '\r' ->
      t.pos <- t.pos + 1;
      skip_ws t
    | '\n' ->
      t.pos <- t.pos + 1;
      t.line <- t.line + 1;
      skip_ws t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      let rec close i =
        if i + 1 >= String.length t.src then error t "unterminated comment"
        else if t.src.[i] = '*' && t.src.[i + 1] = '/' then i + 2
        else begin
          if t.src.[i] = '\n' then t.line <- t.line + 1;
          close (i + 1)
        end
      in
      t.pos <- close (t.pos + 2);
      skip_ws t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
        t.pos <- t.pos + 1
      done;
      skip_ws t
    | _ -> ()

let scan t =
  skip_ws t;
  t.tok_line <- t.line;
  if t.pos >= String.length t.src then EOF
  else
    let c = t.src.[t.pos] in
    if is_digit c then begin
      let start = t.pos in
      while t.pos < String.length t.src && is_digit t.src.[t.pos] do
        t.pos <- t.pos + 1
      done;
      (* hexadecimal *)
      if
        t.pos < String.length t.src
        && (t.src.[t.pos] = 'x' || t.src.[t.pos] = 'X')
        && t.pos = start + 1
        && t.src.[start] = '0'
      then begin
        t.pos <- t.pos + 1;
        let hstart = t.pos in
        while
          t.pos < String.length t.src
          && (is_digit t.src.[t.pos]
             || (Char.lowercase_ascii t.src.[t.pos] >= 'a'
                && Char.lowercase_ascii t.src.[t.pos] <= 'f'))
        do
          t.pos <- t.pos + 1
        done;
        if hstart = t.pos then error t "bad hex literal";
        INT (Int64.of_string ("0x" ^ String.sub t.src hstart (t.pos - hstart)))
      end
      else if t.pos < String.length t.src && t.src.[t.pos] = '.' then begin
        t.pos <- t.pos + 1;
        while t.pos < String.length t.src && is_digit t.src.[t.pos] do
          t.pos <- t.pos + 1
        done;
        FLOAT (float_of_string (String.sub t.src start (t.pos - start)))
      end
      else INT (Int64.of_string (String.sub t.src start (t.pos - start)))
    end
    else if is_alpha c then begin
      let start = t.pos in
      while
        t.pos < String.length t.src
        && (is_alpha t.src.[t.pos] || is_digit t.src.[t.pos])
      do
        t.pos <- t.pos + 1
      done;
      let word = String.sub t.src start (t.pos - start) in
      if List.mem word keywords then KW word else IDENT word
    end
    else begin
      match
        List.find_opt
          (fun p ->
            let n = String.length p in
            t.pos + n <= String.length t.src && String.sub t.src t.pos n = p)
          puncts
      with
      | Some p ->
        t.pos <- t.pos + String.length p;
        PUNCT p
      | None -> error t "unexpected character %c" c
    end

let create src =
  let t = { src; pos = 0; line = 1; tok = EOF; tok_line = 1 } in
  t.tok <- scan t;
  t

let peek t = t.tok

let next t =
  let tok = t.tok in
  t.tok <- scan t;
  tok

let line t = t.tok_line

let pp_token ppf = function
  | INT n -> Fmt.pf ppf "%Ld" n
  | FLOAT f -> Fmt.pf ppf "%g" f
  | IDENT s -> Fmt.string ppf s
  | KW s -> Fmt.string ppf s
  | PUNCT s -> Fmt.pf ppf "'%s'" s
  | EOF -> Fmt.string ppf "<eof>"
