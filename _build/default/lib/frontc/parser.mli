(** Recursive-descent parser for the mini-C language. *)

exception Parse_error of int * string  (** line, message *)

val parse_program : string -> Ast.program

(** Parse a single expression (for tests). *)
val parse_expr : string -> Ast.expr
