lib/frontc/corpus.ml: Ast Fmt Int64 List
