lib/frontc/import.ml: Gg_ir
