lib/frontc/sema.mli: Ast Dtype Import Tree
