lib/frontc/ast.mli: Fmt
