lib/frontc/parser.mli: Ast
