lib/frontc/corpus.mli: Ast
