lib/frontc/lexer.ml: Char Fmt Int64 List String
