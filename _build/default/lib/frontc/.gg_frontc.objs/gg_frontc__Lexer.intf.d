lib/frontc/lexer.mli: Fmt
