lib/frontc/ast.ml: Fmt
