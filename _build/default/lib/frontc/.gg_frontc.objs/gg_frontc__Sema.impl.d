lib/frontc/sema.ml: Ast Dtype Fmt Hashtbl Import Int64 Label List Op Parser Regconv Tree
