lib/frontc/parser.ml: Ast Fmt Int64 Lexer List Option String
