open Import

(** Type checking and lowering from mini-C to the IR.

    Plays the role of PCC's first pass: produces a forest of typed
    expression trees with generic operators.  Follows classic (K&R) C
    semantics: char/short promote to int in expressions, float promotes
    to double, float parameters are passed as doubles, arithmetic on
    unsigned ints selects the unsigned operators and comparisons.

    Expressions may still contain short-circuit operators, selections,
    comparison values, embedded assignments and calls — eliminating
    those is the code generator's Phase 1a, exactly as in the paper. *)

exception Semantic_error of string

(** Lower a checked program. *)
val lower_program : Ast.program -> Tree.program

(** Convenience: parse and lower C source. *)
val compile : string -> Tree.program

(** The IR type of a C type as stored in memory. *)
val dtype_of_cty : Ast.cty -> Dtype.t

val sizeof : Ast.cty -> int
