(** Hand-written lexer for the mini-C language. *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string  (** keyword *)
  | PUNCT of string  (** operator or punctuation, longest-match *)
  | EOF

exception Lex_error of int * string  (** line, message *)

type t

val create : string -> t

(** Current token (EOF at end). *)
val peek : t -> token

(** Advance and return the token just consumed. *)
val next : t -> token

(** Line number of the current token, for error messages. *)
val line : t -> int

val pp_token : token Fmt.t
