(** Reference interpreter for IR programs.

    The interpreter executes the same forests that the code generators
    consume, over a flat byte-addressable memory with a VAX-like calling
    convention (arguments via [ap], locals below [fp]).  It is the
    oracle for differential testing: a compiled program run under
    {!Gg_vaxsim} must leave the same observable state (return value,
    global variables, [print] output) as the interpreter.

    Arithmetic semantics (shared with the simulator): all integer
    operations are performed at the operator's data type with two's
    complement wrapping; division truncates toward zero; the remainder
    takes the sign of the dividend; shift counts are taken modulo 64;
    division or modulus by zero raises {!Runtime_error}. *)

type value = VInt of int64 | VFloat of float

exception Runtime_error of string

type outcome = {
  return_value : value;
  globals : (string * value) list;
      (** final values of scalar globals, in declaration order *)
  output : string list;  (** lines produced by the [print] builtin *)
  steps : int;  (** statements executed, for loop-bound diagnostics *)
}

(** [run ?max_steps program ~entry args] interprets [program] starting
    at function [entry].  Raises {!Runtime_error} on dynamic errors
    (missing function/label, division by zero, step budget exceeded,
    out-of-range memory access). *)
val run :
  ?max_steps:int -> Tree.program -> entry:string -> value list -> outcome

(** [eval_tree t] evaluates a closed expression tree (no memory
    references other than temporaries, no calls); handy for unit tests
    of pure arithmetic. *)
val eval_tree : Tree.t -> value

val pp_value : value Fmt.t
val value_equal : value -> value -> bool
