(** Generic operators of the intermediate representation.

    These are the node labels of the expression trees handed to the code
    generator (paper Fig. 1), i.e. the terminal alphabet of the machine
    description grammar before type replication.

    The [R]-prefixed binary operators are the {e reverse} operators
    introduced by the evaluation-ordering phase (paper section 5.1.3):
    [Rminus a b] computes [b - a] but evaluates [a] first.  Commutative
    operators need no reverse form. *)

type binop =
  | Plus
  | Minus
  | Mul
  | Div
  | Mod
  | And   (** bitwise and *)
  | Or    (** bitwise or *)
  | Xor
  | Lsh   (** left shift *)
  | Rsh   (** arithmetic right shift *)
  | Udiv  (** unsigned division — a pseudo-instruction on the VAX,
              expanded to a library call by the idiom recogniser *)
  | Umod  (** unsigned modulus, likewise *)
  | Rminus
  | Rdiv
  | Rmod
  | Rlsh
  | Rrsh

type unop =
  | Neg  (** arithmetic negation *)
  | Com  (** bitwise complement *)

type relop = Eq | Ne | Lt | Le | Gt | Ge

val binop_name : binop -> string
val unop_name : unop -> string
val relop_name : relop -> string

val binop_commutative : binop -> bool

(** [reverse_binop op] is the reverse form of a non-commutative [op]
    ([Minus] -> [Rminus], ...); [None] for commutative or
    already-reversed operators. *)
val reverse_binop : binop -> binop option

(** [unreverse op] undoes {!reverse_binop}: [Rminus] -> [Minus], other
    operators unchanged. *)
val unreverse : binop -> binop

val is_reverse : binop -> bool

(** Negation of a comparison, used when rewriting conditional branches:
    [negate_relop Lt = Ge]. *)
val negate_relop : relop -> relop

(** [swap_relop r] is the relation that holds for [(b, a)] exactly when
    [r] holds for [(a, b)]: [swap_relop Lt = Gt]. *)
val swap_relop : relop -> relop

(** VAX condition-branch mnemonic suffix for a (signed) relation:
    [Eq] -> ["eql"], [Lt] -> ["lss"], ... *)
val relop_vax : relop -> string

(** Unsigned variant: [Lt] -> ["lssu"], equality unchanged. *)
val relop_vax_unsigned : relop -> string

val eval_relop : relop -> int64 -> int64 -> bool

val all_binops : binop list
val all_unops : unop list
val all_relops : relop list

val pp_binop : binop Fmt.t
val pp_unop : unop Fmt.t
val pp_relop : relop Fmt.t
