(** A generator of random typed IR programs for differential testing
    and grammar-coverage measurement.

    The mini-C corpus only exercises Long arithmetic (C promotes), so
    the byte/word instruction patterns and the conversion cross-product
    of the machine grammar (paper section 6.4) are reached only through
    memory accesses.  This generator builds IR directly: arithmetic at
    every integer width, float/double arithmetic, and conversions
    between all of them — trap-free by construction, deterministic per
    seed. *)

(** The scalar globals every generated program uses (one per type). *)
val globals : (string * Dtype.t * int) list

(** [program ~seed ~stmts] — a [main] of [stmts] random assignments
    followed by a checksum return. *)
val program : seed:int -> stmts:int -> Tree.program
