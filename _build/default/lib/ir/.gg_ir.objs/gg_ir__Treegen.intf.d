lib/ir/treegen.mli: Dtype Tree
