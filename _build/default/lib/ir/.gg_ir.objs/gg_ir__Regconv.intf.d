lib/ir/regconv.mli:
