lib/ir/tree.ml: Dtype Float Fmt Int Int64 Label List Op String
