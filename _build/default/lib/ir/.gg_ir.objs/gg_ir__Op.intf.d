lib/ir/op.mli: Fmt
