lib/ir/label.ml: Fmt Int
