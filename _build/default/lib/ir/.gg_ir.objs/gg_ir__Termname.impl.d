lib/ir/termname.ml: Dtype Fmt Int64 List Op Tree
