lib/ir/interp.ml: Array Buffer Bytes Char Dtype Float Fmt Hashtbl Int32 Int64 Label List Op Regconv String Tree
