lib/ir/treegen.ml: Dtype Int64 List Op Regconv Tree
