lib/ir/regconv.ml: String
