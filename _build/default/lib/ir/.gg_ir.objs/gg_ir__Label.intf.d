lib/ir/label.mli: Fmt
