lib/ir/tree.mli: Dtype Fmt Label Op
