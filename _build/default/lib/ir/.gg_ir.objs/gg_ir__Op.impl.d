lib/ir/op.ml: Fmt Int64
