lib/ir/interp.mli: Fmt Tree
