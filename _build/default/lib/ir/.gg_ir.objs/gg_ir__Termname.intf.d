lib/ir/termname.mli: Dtype Fmt Op Tree
