(* A generator of random *typed IR programs* for differential testing.

   The mini-C corpus only exercises Long arithmetic (C promotes), so the
   byte/word instruction patterns and the conversion cross-product of
   the machine grammar (section 6.4) are reached only through memory
   accesses.  This generator builds IR directly: arithmetic at every
   integer width, float/double arithmetic, and conversions between all
   of them — all trap-free by construction. *)

type rng = { mutable s : int64 }

let rng seed = { s = Int64.of_int ((seed * 69069) lor 1) }

let next r =
  let x = r.s in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.s <- x;
  Int64.to_int (Int64.logand x 0x3fffffffL)

let pick r xs = List.nth xs (next r mod List.length xs)
let range r lo hi = lo + (next r mod (hi - lo + 1))

let int_types = [ Dtype.Byte; Dtype.Word; Dtype.Long ]
let float_types = [ Dtype.Flt; Dtype.Dbl ]
let all_types = int_types @ float_types

let global_of ty =
  match ty with
  | Dtype.Byte -> "gb"
  | Dtype.Word -> "gw"
  | Dtype.Long -> "gl"
  | Dtype.Flt -> "gf"
  | Dtype.Dbl -> "gd"
  | Dtype.Quad -> assert false

let globals =
  List.map (fun ty -> (global_of ty, ty, Dtype.size ty)) all_types

(* a value of [ty], depth-bounded, trap-free *)
let rec value r ty depth : Tree.t =
  if depth <= 0 then leaf r ty
  else if Dtype.is_float ty then
    match next r mod 6 with
    | 0 | 1 ->
      Tree.Binop
        (pick r [ Op.Plus; Op.Minus; Op.Mul ], ty, value r ty (depth - 1),
         value r ty (depth - 1))
    | 2 ->
      (* conversion in from any other type *)
      let from = pick r (List.filter (fun t -> t <> ty) all_types) in
      Tree.Conv (ty, from, value r from (depth - 1))
    | 3 -> Tree.Unop (Op.Neg, ty, value r ty (depth - 1))
    | _ -> leaf r ty
  else
    match next r mod 10 with
    | 0 | 1 | 2 ->
      Tree.Binop
        (pick r [ Op.Plus; Op.Minus; Op.Mul; Op.And; Op.Or; Op.Xor ], ty,
         value r ty (depth - 1), value r ty (depth - 1))
    | 3 ->
      (* division by a non-zero constant *)
      Tree.Binop
        (pick r [ Op.Div; Op.Mod ], ty, value r ty (depth - 1),
         Tree.const ty (Int64.of_int (range r 1 13)))
    | 4 ->
      let from =
        pick r (List.filter (fun t -> t <> ty) int_types)
      in
      Tree.Conv (ty, from, value r from (depth - 1))
    | 5 when ty = Dtype.Long ->
      (* float to int conversions only at long, with a bounded operand
         so truncation semantics, not range overflow, is what we test *)
      let from = pick r float_types in
      Tree.Conv
        (ty, from,
         Tree.Binop (Op.Mul, from, leaf r from, Tree.Fconst (from, 0.125)))
    | 6 -> Tree.Unop (pick r [ Op.Neg; Op.Com ], ty, value r ty (depth - 1))
    | 7 when ty = Dtype.Long ->
      Tree.Binop
        (pick r [ Op.Lsh; Op.Rsh ], ty, value r ty (depth - 1),
         Tree.const ty (Int64.of_int (range r 0 7)))
    | _ -> leaf r ty

and leaf r ty : Tree.t =
  if Dtype.is_float ty then
    match next r mod 2 with
    | 0 -> Tree.Fconst (ty, float_of_int (range r (-40) 40) /. 8.)
    | _ -> Tree.Name (ty, global_of ty)
  else
    match next r mod 3 with
    | 0 -> Tree.const ty (Int64.of_int (range r (-100) 100))
    | 1 -> Tree.Name (ty, global_of ty)
    | _ ->
      (* a read of a differently-typed global, converted *)
      let from = pick r (List.filter (fun t -> t <> ty) int_types) in
      Tree.Conv (ty, from, Tree.Name (from, global_of from))

let statement r : Tree.stmt =
  let ty = pick r all_types in
  Tree.Stree
    (Tree.Assign (ty, Tree.Name (ty, global_of ty), value r ty (range r 1 4)))

let program ~seed ~stmts : Tree.program =
  let r = rng seed in
  let body =
    List.init stmts (fun _ -> statement r)
    @ [
        (* checksum: fold the integer globals into the return value *)
        Tree.Stree
          (Tree.Assign
             ( Dtype.Long,
               Tree.Dreg (Dtype.Long, Regconv.r0),
               Tree.Binop
                 ( Op.And,
                   Dtype.Long,
                   Tree.Binop
                     ( Op.Plus,
                       Dtype.Long,
                       Tree.Conv (Dtype.Long, Dtype.Byte, Tree.Name (Dtype.Byte, "gb")),
                       Tree.Binop
                         ( Op.Xor,
                           Dtype.Long,
                           Tree.Conv (Dtype.Long, Dtype.Word, Tree.Name (Dtype.Word, "gw")),
                           Tree.Name (Dtype.Long, "gl") ) ),
                   Tree.Const (Dtype.Long, 0xffffL) ) ));
        Tree.Sret;
      ]
  in
  {
    Tree.globals;
    funcs =
      [
        {
          Tree.fname = "main";
          formals = [];
          ret_type = Dtype.Long;
          locals_size = 0;
          body;
        };
      ];
  }
