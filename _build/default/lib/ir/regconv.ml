let r0 = 0
let r1 = 1
let ap = 12
let fp = 13
let sp = 14
let pc = 15

let allocatable = [ 6; 7; 8; 9; 10; 11 ]
let dedicated = [ 6; 7; 8; 9; 10; 11; ap; fp; sp ]

let name r =
  match r with
  | 12 -> "ap"
  | 13 -> "fp"
  | 14 -> "sp"
  | 15 -> "pc"
  | _ -> "r" ^ string_of_int r

let of_name = function
  | "ap" -> Some ap
  | "fp" -> Some fp
  | "sp" -> Some sp
  | "pc" -> Some pc
  | s ->
    if String.length s >= 2 && s.[0] = 'r' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n when n >= 0 && n <= 15 -> Some n
      | _ -> None
    else None
