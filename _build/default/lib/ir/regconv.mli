(** Register-numbering conventions shared by the IR, both code
    generators, and the simulator.

    These mirror PCC's conventions for the VAX (paper section 5.3.3):
    r0/r1 carry function results, r0-r5 are scratch across calls,
    r6-r11 are allocatable/register-variable registers, and ap/fp/sp/pc
    are the VAX dedicated registers. *)

val r0 : int

val r1 : int

(** Argument pointer, r12. *)
val ap : int

(** Frame pointer, r13. *)
val fp : int

(** Stack pointer, r14. *)
val sp : int

(** Program counter, r15. *)
val pc : int

(** Registers the register manager may allocate, in allocation order
    (r6 .. r11 under PCC conventions; r0-r5 are reserved for results,
    temporaries of pseudo-instructions and actual parameters). *)
val allocatable : int list

(** Dedicated registers that may appear as [Dreg] leaves in incoming
    trees (register variables plus ap/fp/sp). *)
val dedicated : int list

(** Assembler name, e.g. 13 -> ["fp"], 3 -> ["r3"]. *)
val name : int -> string

val of_name : string -> int option
