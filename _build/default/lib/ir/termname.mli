(** Names of the grammar terminal symbols derived from IR trees.

    The machine description grammar and the tree lineariser must agree
    exactly on how each tree node spells as a terminal symbol; this
    module is that contract.  Names follow the paper's convention of a
    type-suffixed operator, e.g. [Plus.l], [Const.b], [Cvt.bl]
    (sections 3.1 and 6.4), with the special constants 0/1/2/4/8 given
    their own terminals [Zero.t] ... [Eight.t] (section 6.3). *)

val binop : Op.binop -> Dtype.t -> string
val unop : Op.unop -> Dtype.t -> string
val assign : Dtype.t -> string
val rassign : Dtype.t -> string
val indir : Dtype.t -> string
val name_ : Dtype.t -> string
val temp : Dtype.t -> string
val dreg : Dtype.t -> string
val autoinc : Dtype.t -> string
val autodec : Dtype.t -> string
val const : Dtype.t -> string
val fconst : Dtype.t -> string

(** [addr ty] where [ty] is the type of the lvalue whose address is
    taken. *)
val addr : Dtype.t -> string

(** [cvt ~from ~to_], e.g. [cvt ~from:Byte ~to_:Long = "Cvt.bl"]. *)
val cvt : from:Dtype.t -> to_:Dtype.t -> string

val cbranch : string
val cmp : Dtype.t -> string
val label : string
val arg : Dtype.t -> string

(** [special_const ty n] is the dedicated terminal for the special
    constants, e.g. [special_const Long 4L = Some "Four.l"]. *)
val special_const : Dtype.t -> int64 -> string option

(** A token of the linearised input: terminal name plus the tree node it
    came from (the node is the token's semantic value). *)
type token = { term : string; node : Tree.t }

(** Prefix linearisation of a tree (paper section 3.1 / Appendix).  When
    [special_constants] is true (the default), constants 0/1/2/4/8 are
    emitted as their dedicated terminals. *)
val linearize : ?special_constants:bool -> Tree.t -> token list

val pp_token : token Fmt.t
