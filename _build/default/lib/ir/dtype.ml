type t = Byte | Word | Long | Quad | Flt | Dbl

type signedness = Signed | Unsigned

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let size = function
  | Byte -> 1
  | Word -> 2
  | Long | Flt -> 4
  | Quad | Dbl -> 8

let suffix = function
  | Byte -> "b"
  | Word -> "w"
  | Long -> "l"
  | Quad -> "q"
  | Flt -> "f"
  | Dbl -> "d"

let of_suffix = function
  | "b" -> Some Byte
  | "w" -> Some Word
  | "l" -> Some Long
  | "q" -> Some Quad
  | "f" -> Some Flt
  | "d" -> Some Dbl
  | _ -> None

let name = function
  | Byte -> "byte"
  | Word -> "word"
  | Long -> "long"
  | Quad -> "quad"
  | Flt -> "float"
  | Dbl -> "double"

let is_integer = function Byte | Word | Long | Quad -> true | Flt | Dbl -> false
let is_float t = not (is_integer t)

let integers = [ Byte; Word; Long; Quad ]
let floats = [ Flt; Dbl ]
let all = integers @ floats

let widest a b =
  assert (is_integer a && is_integer b);
  if size a >= size b then a else b

let pp ppf t = Fmt.string ppf (name t)
