(** Assembly labels for control flow. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int

(** A generator of fresh labels.  Each front end / transformation pass
    owns one so that label numbering is deterministic per compilation. *)
type gen

val gen : ?first:int -> unit -> gen
val fresh : gen -> t

(** Printable assembly form, e.g. ["L7"]. *)
val name : t -> string

val pp : t Fmt.t
