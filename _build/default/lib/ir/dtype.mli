(** Machine data types of the VAX target, as seen by the intermediate
    representation.

    The paper encodes the data type of every operator and operand in the
    symbol alphabet of the machine grammar ("syntax for semantics",
    paper section 6.4).  This module is the single source of truth for
    the type alphabet: the one-letter suffixes used in replicated symbol
    names ([Plus.l], [Const.b], ...) come from {!suffix}. *)

type t =
  | Byte   (** 8-bit integer *)
  | Word   (** 16-bit integer *)
  | Long   (** 32-bit integer; also the type of pointers *)
  | Quad   (** 64-bit integer *)
  | Flt    (** 32-bit float (VAX F_floating) *)
  | Dbl    (** 64-bit float (VAX D_floating) *)

type signedness = Signed | Unsigned

val equal : t -> t -> bool
val compare : t -> t -> int

(** Size of a value of this type in bytes. *)
val size : t -> int

(** One-letter suffix used in replicated grammar symbols: [b w l q f d]. *)
val suffix : t -> string

(** Inverse of {!suffix}; [None] for unknown suffixes. *)
val of_suffix : string -> t option

(** Full VAX name, e.g. [Long] -> ["long"]. *)
val name : t -> string

val is_integer : t -> bool
val is_float : t -> bool

(** All types, in increasing size order (integers first). *)
val all : t list

(** The integer types [b w l q], the replication class the paper
    calls "Y". *)
val integers : t list

val floats : t list

(** Widest of two integer types (usual arithmetic conversion target). *)
val widest : t -> t -> t

val pp : t Fmt.t
