type binop =
  | Plus
  | Minus
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Lsh
  | Rsh
  | Udiv
  | Umod
  | Rminus
  | Rdiv
  | Rmod
  | Rlsh
  | Rrsh

type unop = Neg | Com

type relop = Eq | Ne | Lt | Le | Gt | Ge

let binop_name = function
  | Plus -> "Plus"
  | Minus -> "Minus"
  | Mul -> "Mul"
  | Div -> "Div"
  | Mod -> "Mod"
  | And -> "And"
  | Or -> "Or"
  | Xor -> "Xor"
  | Lsh -> "Lsh"
  | Rsh -> "Rsh"
  | Udiv -> "Udiv"
  | Umod -> "Umod"
  | Rminus -> "Rminus"
  | Rdiv -> "Rdiv"
  | Rmod -> "Rmod"
  | Rlsh -> "Rlsh"
  | Rrsh -> "Rrsh"

let unop_name = function Neg -> "Neg" | Com -> "Com"

let relop_name = function
  | Eq -> "Eq"
  | Ne -> "Ne"
  | Lt -> "Lt"
  | Le -> "Le"
  | Gt -> "Gt"
  | Ge -> "Ge"

let binop_commutative = function
  | Plus | Mul | And | Or | Xor -> true
  | Minus | Div | Mod | Lsh | Rsh | Udiv | Umod | Rminus | Rdiv | Rmod | Rlsh
  | Rrsh ->
    false

let reverse_binop = function
  | Minus -> Some Rminus
  | Div -> Some Rdiv
  | Mod -> Some Rmod
  | Lsh -> Some Rlsh
  | Rsh -> Some Rrsh
  | Plus | Mul | And | Or | Xor | Udiv | Umod | Rminus | Rdiv | Rmod | Rlsh
  | Rrsh ->
    None

let unreverse = function
  | Rminus -> Minus
  | Rdiv -> Div
  | Rmod -> Mod
  | Rlsh -> Lsh
  | Rrsh -> Rsh
  | (Plus | Minus | Mul | Div | Mod | And | Or | Xor | Lsh | Rsh | Udiv | Umod)
    as op ->
    op

let is_reverse = function
  | Rminus | Rdiv | Rmod | Rlsh | Rrsh -> true
  | Plus | Minus | Mul | Div | Mod | And | Or | Xor | Lsh | Rsh | Udiv | Umod ->
    false

let negate_relop = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let swap_relop = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let relop_vax = function
  | Eq -> "eql"
  | Ne -> "neq"
  | Lt -> "lss"
  | Le -> "leq"
  | Gt -> "gtr"
  | Ge -> "geq"

let relop_vax_unsigned = function
  | Eq -> "eql"
  | Ne -> "neq"
  | Lt -> "lssu"
  | Le -> "lequ"
  | Gt -> "gtru"
  | Ge -> "gequ"

let eval_relop r a b =
  match r with
  | Eq -> Int64.equal a b
  | Ne -> not (Int64.equal a b)
  | Lt -> Int64.compare a b < 0
  | Le -> Int64.compare a b <= 0
  | Gt -> Int64.compare a b > 0
  | Ge -> Int64.compare a b >= 0

let all_binops =
  [ Plus; Minus; Mul; Div; Mod; And; Or; Xor; Lsh; Rsh; Udiv; Umod; Rminus;
    Rdiv; Rmod; Rlsh; Rrsh ]

let all_unops = [ Neg; Com ]
let all_relops = [ Eq; Ne; Lt; Le; Gt; Ge ]

let pp_binop ppf op = Fmt.string ppf (binop_name op)
let pp_unop ppf op = Fmt.string ppf (unop_name op)
let pp_relop ppf op = Fmt.string ppf (relop_name op)
