type t = int

let equal = Int.equal
let compare = Int.compare

type gen = int ref

let gen ?(first = 1) () = ref first

let fresh g =
  let l = !g in
  incr g;
  l

let name l = "L" ^ string_of_int l
let pp ppf l = Fmt.string ppf (name l)
