let typed base ty = base ^ "." ^ Dtype.suffix ty

let binop op ty = typed (Op.binop_name op) ty
let unop op ty = typed (Op.unop_name op) ty
let assign ty = typed "Assign" ty
let rassign ty = typed "Rassign" ty
let indir ty = typed "Indir" ty
let name_ ty = typed "Name" ty
let temp ty = typed "Temp" ty
let dreg ty = typed "Dreg" ty
let autoinc ty = typed "Autoinc" ty
let autodec ty = typed "Autodec" ty
let const ty = typed "Const" ty
let fconst ty = typed "Fconst" ty
let addr ty = typed "Addr" ty
let cvt ~from ~to_ = "Cvt." ^ Dtype.suffix from ^ Dtype.suffix to_
let cbranch = "Cbranch"
let cmp ty = typed "Cmp" ty
let label = "Label"
let arg ty = typed "Arg" ty

let special_const ty n =
  if Dtype.is_float ty then None
  else
    match Int64.to_int n with
    | 0 -> Some (typed "Zero" ty)
    | 1 -> Some (typed "One" ty)
    | 2 -> Some (typed "Two" ty)
    | 4 -> Some (typed "Four" ty)
    | 8 -> Some (typed "Eight" ty)
    | _ -> None

type token = { term : string; node : Tree.t }

let linearize ?(special_constants = true) tree =
  let buf = ref [] in
  let emit term node = buf := { term; node } :: !buf in
  let rec go (t : Tree.t) =
    (match t with
    | Const (ty, n) -> (
      match if special_constants then special_const ty n else None with
      | Some s -> emit s t
      | None -> emit (const ty) t)
    | Fconst (ty, _) -> emit (fconst ty) t
    | Name (ty, _) -> emit (name_ ty) t
    | Temp (ty, _) -> emit (temp ty) t
    | Dreg (ty, _) -> emit (dreg ty) t
    | Autoinc (ty, _) -> emit (autoinc ty) t
    | Autodec (ty, _) -> emit (autodec ty) t
    | Indir (ty, _) -> emit (indir ty) t
    | Addr e -> emit (addr (Tree.dtype e)) t
    | Unop (op, ty, _) -> emit (unop op ty) t
    | Binop (op, ty, _, _) -> emit (binop op ty) t
    | Conv (to_, from, _) -> emit (cvt ~from ~to_) t
    | Assign (ty, _, _) -> emit (assign ty) t
    | Rassign (ty, _, _) -> emit (rassign ty) t
    | Cbranch (_, _, ty, _, _, _) ->
      emit cbranch t;
      emit (cmp ty) t
    | Call _ ->
      invalid_arg "Termname.linearize: Call trees are lowered before matching"
    | Land _ | Lor _ | Lnot _ | Select _ | Relval _ ->
      invalid_arg
        "Termname.linearize: short-circuit/selection operators are rewritten \
         by Phase 1a before matching"
    | Arg (ty, _) -> emit (arg ty) t);
    List.iter go (Tree.children t);
    match t with Cbranch _ -> emit label t | _ -> ()
  in
  go tree;
  List.rev !buf

let pp_token ppf { term; node = _ } = Fmt.string ppf term
