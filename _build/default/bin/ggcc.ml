(* ggcc — the mini-C compiler driver.

   Compiles mini-C source to VAX assembly with either the table-driven
   Graham-Glanville backend (the paper's contribution) or the PCC-style
   baseline, and can run the result under the VAX simulator. *)

open Cmdliner
module Driver = Gg_codegen.Driver
module Pcc = Gg_pcc.Pcc
module Sema = Gg_frontc.Sema
module Machine = Gg_vaxsim.Machine
module Interp = Gg_ir.Interp
module Tree = Gg_ir.Tree

type backend = Gg | Pcc_backend

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_source backend ~idioms ~peephole src =
  let prog = Sema.compile src in
  match backend with
  | Gg ->
    let options = { Driver.default_options with Driver.idioms; peephole } in
    ((Driver.compile_program ~options prog).Driver.assembly, prog)
  | Pcc_backend -> ((Pcc.compile_program ~peephole prog).Pcc.assembly, prog)

let handle_errors f =
  try f () with
  | Gg_frontc.Lexer.Lex_error (line, m) ->
    Fmt.epr "lexical error, line %d: %s@." line m;
    exit 1
  | Gg_frontc.Parser.Parse_error (line, m) ->
    Fmt.epr "syntax error, line %d: %s@." line m;
    exit 1
  | Sema.Semantic_error m ->
    Fmt.epr "error: %s@." m;
    exit 1
  | Gg_matcher.Matcher.Reject e ->
    Fmt.epr "code generator: %a@." Gg_matcher.Matcher.pp_error e;
    exit 2

let compile_cmd path backend idioms peephole output run args =
  handle_errors (fun () ->
      let asm, prog =
        compile_source backend ~idioms ~peephole (read_file path)
      in
      (match output with
      | Some out ->
        let oc = open_out out in
        output_string oc asm;
        close_out oc
      | None -> if not run then print_string asm);
      if run then begin
        let args = List.map (fun n -> Interp.VInt (Int64.of_int n)) args in
        let out =
          Machine.run_text ~global_types:prog.Tree.globals asm ~entry:"main"
            args
        in
        List.iter print_endline out.Machine.output;
        Fmt.pr "exit: %a   (%d instructions, %d cycles)@." Interp.pp_value
          out.Machine.return_value out.Machine.insns_executed
          out.Machine.cycles
      end)

let interp_cmd path args =
  handle_errors (fun () ->
      let prog = Sema.compile (read_file path) in
      let args = List.map (fun n -> Interp.VInt (Int64.of_int n)) args in
      let out = Interp.run prog ~entry:"main" args in
      List.iter print_endline out.Interp.output;
      Fmt.pr "exit: %a@." Interp.pp_value out.Interp.return_value)

let trace_cmd path =
  handle_errors (fun () ->
      let prog = Sema.compile (read_file path) in
      let tables = Lazy.force Driver.default_tables in
      let g = Gg_tablegen.Tables.grammar tables in
      List.iter
        (fun (f : Tree.func) ->
          Fmt.pr "=== %s ===@." f.Tree.fname;
          let tr = Gg_transform.Transform.run f in
          let sem =
            Gg_codegen.Semantics.create
              (Gg_codegen.Frame.create ~locals_size:f.Tree.locals_size
                 ~temps:tr.Gg_transform.Transform.temps)
          in
          let cb = Gg_codegen.Semantics.callbacks sem g in
          List.iter
            (fun s ->
              match s with
              | Tree.Stree t ->
                Fmt.pr "@.tree: %a@." Tree.pp t;
                let outcome = Gg_matcher.Matcher.run_tree ~trace:true tables cb t in
                Fmt.pr "%a@."
                  (Gg_matcher.Matcher.pp_trace g)
                  outcome.Gg_matcher.Matcher.trace
              | _ -> ())
            tr.Gg_transform.Transform.func.Tree.body)
        prog.Tree.funcs)

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("gg", Gg); ("pcc", Pcc_backend) ]) Gg
    & info [ "b"; "backend" ] ~doc:"Backend: table-driven (gg) or PCC-style (pcc).")

let idioms_arg =
  Arg.(
    value & opt bool true
    & info [ "idioms" ] ~doc:"Run the idiom recogniser (gg backend).")

let peephole_arg =
  Arg.(
    value & flag
    & info [ "peephole" ] ~doc:"Run the peephole optimizer on the output.")

let output_arg =
  Arg.(
    value & opt (some string) None & info [ "o" ] ~doc:"Write assembly to a file.")

let run_arg =
  Arg.(value & flag & info [ "r"; "run" ] ~doc:"Execute under the simulator.")

let args_arg =
  Arg.(value & opt (list int) [] & info [ "args" ] ~doc:"Integer arguments to main.")

let () =
  let compile =
    Cmd.v
      (Cmd.info "compile" ~doc:"Compile mini-C to VAX assembly.")
      Term.(
        const compile_cmd $ path_arg $ backend_arg $ idioms_arg $ peephole_arg
        $ output_arg $ run_arg $ args_arg)
  in
  let interp =
    Cmd.v
      (Cmd.info "interp" ~doc:"Run a program under the IR interpreter.")
      Term.(const interp_cmd $ path_arg $ args_arg)
  in
  let trace =
    Cmd.v
      (Cmd.info "trace" ~doc:"Show the pattern matcher's shift/reduce actions.")
      Term.(const trace_cmd $ path_arg)
  in
  let info =
    Cmd.info "ggcc"
      ~doc:"Mini-C compiler with a table-driven VAX code generator"
  in
  exit (Cmd.eval (Cmd.group info ~default:Term.(const compile_cmd $ path_arg $ backend_arg $ idioms_arg $ peephole_arg $ output_arg $ run_arg $ args_arg) [ compile; interp; trace ]))
