(* Quickstart: compile a mini-C program with the table-driven code
   generator and run it under the VAX simulator.

     dune exec examples/quickstart.exe *)

let source =
  {|
int squares[10];
int total;

int main() {
  int i;
  total = 0;
  for (i = 0; i < 10; i++) squares[i] = i * i;
  for (i = 0; i < 10; i++) total += squares[i];
  print(total);
  return total;
}
|}

let () =
  (* front end: mini-C source -> typed IR forest (the paper's "first
     pass" interface) *)
  let program = Gg_frontc.Sema.compile source in

  (* back end: Phase 1 tree transformation, table-driven pattern
     matching, instruction selection with idioms, register management,
     assembly output *)
  let compiled = Gg_codegen.Driver.compile_program program in
  print_string "--- generated VAX assembly ---\n";
  print_string compiled.Gg_codegen.Driver.assembly;

  (* validation: execute the assembly and compare with the reference
     interpreter *)
  let simulated =
    Gg_vaxsim.Machine.run_text compiled.Gg_codegen.Driver.assembly
      ~global_types:program.Gg_ir.Tree.globals ~entry:"main" []
  in
  let interpreted = Gg_ir.Interp.run program ~entry:"main" [] in
  Fmt.pr "--- execution ---@.";
  Fmt.pr "simulator:   returned %a, printed %a@." Gg_ir.Interp.pp_value
    simulated.Gg_vaxsim.Machine.return_value
    Fmt.(Dump.list string)
    simulated.Gg_vaxsim.Machine.output;
  Fmt.pr "interpreter: returned %a, printed %a@." Gg_ir.Interp.pp_value
    interpreted.Gg_ir.Interp.return_value
    Fmt.(Dump.list string)
    interpreted.Gg_ir.Interp.output;
  Fmt.pr "agreement:   %b@."
    (Gg_ir.Interp.value_equal simulated.Gg_vaxsim.Machine.return_value
       interpreted.Gg_ir.Interp.return_value)
