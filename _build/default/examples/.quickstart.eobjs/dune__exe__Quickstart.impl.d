examples/quickstart.ml: Dump Fmt Gg_codegen Gg_frontc Gg_ir Gg_vaxsim
