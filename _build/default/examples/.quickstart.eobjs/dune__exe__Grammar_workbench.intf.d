examples/grammar_workbench.mli:
