examples/validation.mli:
