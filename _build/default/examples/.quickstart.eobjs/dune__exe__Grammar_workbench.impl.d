examples/grammar_workbench.ml: Fmt Gg_codegen Gg_frontc Gg_grammar Gg_ir Gg_tablegen Gg_vax Gg_vaxsim List
