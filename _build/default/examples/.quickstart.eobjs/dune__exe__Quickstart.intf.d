examples/quickstart.mli:
