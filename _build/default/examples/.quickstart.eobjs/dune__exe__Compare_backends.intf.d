examples/compare_backends.mli:
