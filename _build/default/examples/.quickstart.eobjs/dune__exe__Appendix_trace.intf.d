examples/appendix_trace.mli:
