examples/validation.ml: Fmt Gg_codegen Gg_frontc Gg_ir Gg_pcc Gg_vaxsim Interp List Tree
