examples/appendix_trace.ml: Dtype Fmt Gg_codegen Gg_ir Gg_matcher Gg_tablegen Gg_vax Lazy List Op Regconv Termname Tree
