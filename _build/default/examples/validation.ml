(* The validation-suite experiment (paper section 8: "our code generator
   produces code that passes validation suites"): run the fixed
   benchmark programs and a batch of random programs through the full
   differential harness — IR interpreter vs both compiled backends under
   the simulator — and report a pass/fail table.

     dune exec examples/validation.exe *)

open Gg_ir
module Driver = Gg_codegen.Driver
module Pcc = Gg_pcc.Pcc
module Machine = Gg_vaxsim.Machine

let agree (i : Interp.outcome) (s : Machine.outcome) =
  Interp.value_equal s.Machine.return_value i.Interp.return_value
  && s.Machine.output = i.Interp.output
  && List.length s.Machine.globals = List.length i.Interp.globals
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> n1 = n2 && Interp.value_equal v1 v2)
       s.Machine.globals i.Interp.globals

let validate name prog =
  let reference = Interp.run ~max_steps:10_000_000 prog ~entry:"main" [] in
  let check asm =
    agree reference
      (Machine.run_text ~max_steps:40_000_000 asm
         ~global_types:prog.Tree.globals ~entry:"main" [])
  in
  let gg_ok = check (Driver.compile_program prog).Driver.assembly in
  let pcc_ok = check (Pcc.compile_program prog).Pcc.assembly in
  Fmt.pr "  %-16s table-driven %s   pcc %s@." name
    (if gg_ok then "PASS" else "FAIL")
    (if pcc_ok then "PASS" else "FAIL");
  gg_ok && pcc_ok

let () =
  Fmt.pr "fixed validation programs:@.";
  let ok1 =
    List.for_all
      (fun (name, src) -> validate name (Gg_frontc.Sema.compile src))
      Gg_frontc.Corpus.fixed_programs
  in
  Fmt.pr "random programs (30 seeds):@.";
  let ok2 = ref true in
  for seed = 1 to 30 do
    let prog =
      Gg_frontc.Sema.lower_program
        (Gg_frontc.Corpus.program ~seed ~functions:3 ~stmts_per_function:10)
    in
    if not (validate (Fmt.str "random-%02d" seed) prog) then ok2 := false
  done;
  Fmt.pr "@.validation %s@." (if ok1 && !ok2 then "PASSED" else "FAILED");
  if not (ok1 && !ok2) then exit 1
