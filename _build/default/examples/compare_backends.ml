(* The paper's experiment in miniature: compile the same programs with
   the table-driven backend and the PCC-style baseline and compare the
   code side by side, plus size and (simulated) cycle measurements.

     dune exec examples/compare_backends.exe *)

module Driver = Gg_codegen.Driver
module Pcc = Gg_pcc.Pcc
module Machine = Gg_vaxsim.Machine

let source =
  {|
int a[8];
int key;
int hits;

int main() {
  int i;
  for (i = 0; i < 8; i++) a[i] = (i * 5 + 2) % 7;
  key = 2;
  hits = 0;
  for (i = 0; i < 8; i++) if (a[i] == key) hits++;
  print(hits);
  return hits;
}
|}

let () =
  let program = Gg_frontc.Sema.compile source in
  let gg = Driver.compile_program program in
  let pcc = Pcc.compile_program program in
  Fmt.pr "=== table-driven backend (the paper's) ===@.%s@."
    gg.Driver.assembly;
  Fmt.pr "=== PCC-style baseline ===@.%s@." pcc.Pcc.assembly;
  let run asm =
    Machine.run_text asm ~global_types:program.Gg_ir.Tree.globals
      ~entry:"main" []
  in
  let og = run gg.Driver.assembly in
  let op = run pcc.Pcc.assembly in
  Fmt.pr "=== comparison (paper section 8) ===@.";
  Fmt.pr "                      table-driven   PCC-style@.";
  Fmt.pr "lines of assembly:    %12d   %9d@." (Driver.total_lines gg)
    (Pcc.total_lines pcc);
  Fmt.pr "static cycles:        %12d   %9d@." (Driver.total_cycles gg)
    (Pcc.total_cycles pcc);
  Fmt.pr "dynamic instructions: %12d   %9d@." og.Machine.insns_executed
    op.Machine.insns_executed;
  Fmt.pr "dynamic cycles:       %12d   %9d@." og.Machine.cycles
    op.Machine.cycles;
  Fmt.pr "results agree:        %b (both returned %a)@."
    (Gg_ir.Interp.value_equal og.Machine.return_value op.Machine.return_value)
    Gg_ir.Interp.pp_value og.Machine.return_value
