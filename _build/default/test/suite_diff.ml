(* The differential harness: every program is executed three ways —
   reference interpreter on the IR, the table-driven backend's output
   under the VAX simulator, and the PCC-style backend's output under
   the simulator — and all observables (return value, final scalar
   globals, print output) must agree.

   This is the reproduction of the paper's correctness claim ("our code
   generator produces code that passes validation suites", section 8),
   with the simulator standing in for the hardware. *)

open Gg_ir
module Driver = Gg_codegen.Driver
module Pcc = Gg_pcc.Pcc
module Machine = Gg_vaxsim.Machine

let observations_match (i : Interp.outcome) (s : Machine.outcome) =
  Interp.value_equal s.Machine.return_value i.Interp.return_value
  && s.Machine.output = i.Interp.output
  && List.length s.Machine.globals = List.length i.Interp.globals
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> n1 = n2 && Interp.value_equal v1 v2)
       s.Machine.globals i.Interp.globals

let check_program ?(options = Driver.default_options) name prog =
  let reference =
    try Interp.run ~max_steps:10_000_000 prog ~entry:"main" []
    with Interp.Runtime_error m -> Alcotest.failf "%s: interpreter: %s" name m
  in
  let run_backend bname assembly =
    let out =
      try
        Machine.run_text ~max_steps:40_000_000 assembly
          ~global_types:prog.Tree.globals ~entry:"main" []
      with
      | Machine.Sim_error m -> Alcotest.failf "%s/%s: simulator: %s" name bname m
      | Gg_vaxsim.Asmparse.Parse_error (l, m) ->
        Alcotest.failf "%s/%s: asm parse error line %d: %s" name bname l m
    in
    if not (observations_match reference out) then
      Alcotest.failf "%s/%s: observable state differs (ret %a vs %a)" name
        bname Interp.pp_value out.Machine.return_value Interp.pp_value
        reference.Interp.return_value
  in
  run_backend "gg" (Driver.compile_program ~options prog).Driver.assembly;
  run_backend "pcc" (Pcc.compile_program prog).Pcc.assembly

let test_fixed_programs () =
  List.iter
    (fun (name, src) -> check_program name (Gg_frontc.Sema.compile src))
    Gg_frontc.Corpus.fixed_programs

let random_prog seed =
  Gg_frontc.Sema.lower_program
    (Gg_frontc.Corpus.program ~seed ~functions:3 ~stmts_per_function:10)

let test_random_corpus () =
  for seed = 1 to 40 do
    check_program (Fmt.str "random-%d" seed) (random_prog seed)
  done

let test_random_corpus_no_idioms () =
  (* "the idiom recogniser is optional in the sense that if it were
     omitted, correct code would still be generated" (section 5.3.2) *)
  let options = { Driver.default_options with Driver.idioms = false } in
  for seed = 41 to 55 do
    check_program ~options (Fmt.str "noidiom-%d" seed) (random_prog seed)
  done

let test_random_corpus_no_reverse_ops () =
  (* the reverse-operator machinery off: grammar without R* patterns and
     ordering phase forbidden to swap non-commutative operands *)
  let gopts = { Gg_vax.Grammar_def.default with Gg_vax.Grammar_def.reverse_ops = false } in
  let options =
    {
      Driver.grammar = gopts;
      transform =
        { Gg_transform.Transform.default_options with
          Gg_transform.Transform.reverse_ops = false };
      idioms = true;
      peephole = false;
    }
  in
  let tables = Driver.build_tables gopts in
  for seed = 56 to 65 do
    let prog = random_prog seed in
    let name = Fmt.str "norev-%d" seed in
    let reference = Interp.run ~max_steps:10_000_000 prog ~entry:"main" [] in
    let out =
      Machine.run_text ~max_steps:40_000_000
        (Driver.compile_program ~options ~tables prog).Driver.assembly
        ~global_types:prog.Tree.globals ~entry:"main" []
    in
    if not (observations_match reference out) then
      Alcotest.failf "%s: observable state differs" name
  done

let test_random_corpus_with_peephole () =
  (* the section 6.1 alternative organisation: peephole on both
     backends, still observationally equal to the interpreter *)
  let options = { Driver.default_options with Driver.peephole = true } in
  for seed = 80 to 95 do
    let prog = random_prog seed in
    let name = Fmt.str "peephole-%d" seed in
    let reference = Interp.run ~max_steps:10_000_000 prog ~entry:"main" [] in
    let check asm =
      observations_match reference
        (Machine.run_text ~max_steps:40_000_000 asm
           ~global_types:prog.Tree.globals ~entry:"main" [])
    in
    if not (check (Driver.compile_program ~options prog).Driver.assembly) then
      Alcotest.failf "%s: gg+peephole differs" name;
    if not (check (Pcc.compile_program ~peephole:true prog).Pcc.assembly) then
      Alcotest.failf "%s: pcc+peephole differs" name
  done

let test_typed_tree_corpus () =
  (* direct IR programs with byte/word/float arithmetic and the full
     conversion cross product — paths C's promotion rules never take *)
  for seed = 1 to 60 do
    check_program (Fmt.str "typed-%d" seed) (Gg_ir.Treegen.program ~seed ~stmts:25)
  done

let test_larger_programs () =
  for seed = 70 to 73 do
    check_program
      (Fmt.str "large-%d" seed)
      (Gg_frontc.Sema.lower_program
         (Gg_frontc.Corpus.program ~seed ~functions:6 ~stmts_per_function:25))
  done

let suite =
  [
    Alcotest.test_case "fixed programs, both backends" `Quick
      test_fixed_programs;
    Alcotest.test_case "random corpus, both backends" `Slow test_random_corpus;
    Alcotest.test_case "random corpus without idioms" `Slow
      test_random_corpus_no_idioms;
    Alcotest.test_case "random corpus without reverse ops" `Slow
      test_random_corpus_no_reverse_ops;
    Alcotest.test_case "typed tree corpus (byte/word/float paths)" `Slow
      test_typed_tree_corpus;
    Alcotest.test_case "random corpus with peephole" `Slow
      test_random_corpus_with_peephole;
    Alcotest.test_case "larger programs" `Slow test_larger_programs;
  ]
