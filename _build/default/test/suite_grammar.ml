(* Unit tests for the grammar library: symbol interning, schemas /
   type replication, grammar construction and well-formedness. *)

open Gg_grammar
module Dtype = Gg_ir.Dtype

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* -- Symtab --------------------------------------------------------------- *)

let test_symtab_classification () =
  let t = Symtab.create () in
  (match Symtab.intern t "Plus.l" with
  | Symtab.T 0 -> ()
  | _ -> Alcotest.fail "first terminal should get index 0");
  (match Symtab.intern t "reg.l" with
  | Symtab.N 0 -> ()
  | _ -> Alcotest.fail "first nonterminal should get index 0");
  (* idempotent interning *)
  (match Symtab.intern t "Plus.l" with
  | Symtab.T 0 -> ()
  | _ -> Alcotest.fail "re-interning changed the id");
  check_int "terms" 1 (Symtab.n_terms t);
  check_int "nonterms" 1 (Symtab.n_nonterms t);
  check_str "name back" "Plus.l" (Symtab.name t (Symtab.T 0))

let test_symtab_find () =
  let t = Symtab.create () in
  ignore (Symtab.intern t "Const.b");
  (match Symtab.find t "Const.b" with
  | Some (Symtab.T _) -> ()
  | _ -> Alcotest.fail "find failed");
  match Symtab.find t "missing" with
  | None -> ()
  | Some _ -> Alcotest.fail "found a symbol never interned"

(* -- Schema --------------------------------------------------------------- *)

let test_subst () =
  check_str "simple" "Plus.l"
    (Schema.subst ~vars:[ ('t', "l") ] "Plus.$t");
  check_str "two vars" "Cvt.bl"
    (Schema.subst ~vars:[ ('f', "b"); ('t', "l") ] "Cvt.$f$t");
  check_str "scale" "Four.l"
    (Schema.subst ~vars:[ ('c', "Four") ] "$c.l");
  match Schema.subst ~vars:[] "$z" with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "unknown variable accepted: %s" s

let test_scale_tokens () =
  check_str "byte" "One" (Schema.scale_token Dtype.Byte);
  check_str "word" "Two" (Schema.scale_token Dtype.Word);
  check_str "long" "Four" (Schema.scale_token Dtype.Long);
  check_str "dbl" "Eight" (Schema.scale_token Dtype.Dbl)

let test_typed_expansion () =
  let sch =
    Schema.typed
      [ Dtype.Byte; Dtype.Word; Dtype.Long ]
      "reg.$t"
      [ "Plus.$t"; "rval.$t"; "rval.$t" ]
      (Action.Emit "add.$t")
  in
  let specs = Schema.expand sch in
  check_int "three copies" 3 (List.length specs);
  match specs with
  | (lhs, rhs, action, _) :: _ ->
    check_str "lhs" "reg.b" lhs;
    Alcotest.(check (list string)) "rhs" [ "Plus.b"; "rval.b"; "rval.b" ] rhs;
    (match action with
    | Action.Emit "add.b" -> ()
    | a -> Alcotest.failf "wrong action %a" Action.pp a)
  | [] -> Alcotest.fail "no expansion"

let test_pairs_expansion () =
  let sch =
    Schema.pairs
      [ (Dtype.Byte, Dtype.Long); (Dtype.Word, Dtype.Long) ]
      "reg.$t" [ "Cvt.$f$t"; "rval.$f" ] (Action.Emit "cvt.$f$t")
  in
  match Schema.expand sch with
  | [ (l1, r1, _, _); (l2, r2, _, _) ] ->
    check_str "lhs 1" "reg.l" l1;
    Alcotest.(check (list string)) "rhs 1" [ "Cvt.bl"; "rval.b" ] r1;
    check_str "lhs 2" "reg.l" l2;
    Alcotest.(check (list string)) "rhs 2" [ "Cvt.wl"; "rval.w" ] r2
  | _ -> Alcotest.fail "wrong expansion count"

let test_scale_substitution_in_rhs () =
  let sch =
    Schema.typed [ Dtype.Long ] "dx.$t"
      [ "Plus.l"; "Const.l"; "reg.l"; "Mul.l"; "$c.l"; "reg.l" ]
      (Action.Mode "dx")
  in
  match Schema.expand sch with
  | [ (_, rhs, _, _) ] ->
    Alcotest.(check (list string)) "scale token"
      [ "Plus.l"; "Const.l"; "reg.l"; "Mul.l"; "Four.l"; "reg.l" ]
      rhs
  | _ -> Alcotest.fail "wrong expansion count"

(* -- Grammar -------------------------------------------------------------- *)

let test_toy_grammar_stats () =
  let s = Grammar.stats Toy.grammar in
  check_int "productions" (List.length Toy.specs) s.Grammar.productions;
  check_int "chains" 5 s.Grammar.chain_productions;
  check_int "longest rhs" 5 s.Grammar.max_rhs

let test_rejects_empty_rhs () =
  match Grammar.make ~start:"s" [ ("s", [], Action.Chain, "") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted empty rhs"

let test_rejects_terminal_lhs () =
  match Grammar.make ~start:"s" [ ("Splat", [ "s" ], Action.Chain, "") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted terminal lhs"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_rejects_undefined_nonterminal () =
  match
    Grammar.make ~start:"s" [ ("s", [ "ghost" ], Action.Chain, "") ]
  with
  | Error msg ->
    Alcotest.(check bool) "mentions ghost" true (contains msg "ghost")
  | Ok _ -> Alcotest.fail "accepted undefined nonterminal"

let test_rejects_duplicates () =
  match
    Grammar.make ~start:"s"
      [
        ("s", [ "X" ], Action.Chain, "");
        ("s", [ "X" ], Action.Emit "dup", "");
      ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted duplicate production"

let test_check_unreachable () =
  let g =
    Grammar.make_exn ~start:"s"
      [
        ("s", [ "X" ], Action.Chain, "");
        ("island", [ "Y" ], Action.Chain, "");
      ]
  in
  let report = Grammar.check g in
  Alcotest.(check (list string)) "unreachable" [ "island" ]
    report.Grammar.unreachable;
  Alcotest.(check (list string)) "unproductive" [] report.Grammar.unproductive

let test_check_unproductive () =
  let g =
    Grammar.make_exn ~start:"s"
      [
        ("s", [ "X" ], Action.Chain, "");
        ("s", [ "loop" ], Action.Chain, "");
        ("loop", [ "loop"; "X" ], Action.Chain, "");
      ]
  in
  let report = Grammar.check g in
  Alcotest.(check (list string)) "unproductive" [ "loop" ]
    report.Grammar.unproductive

(* -- Mdg text format ------------------------------------------------------- *)

let sample_mdg =
  {|
%start stmt
%class I = b w l

# a tiny description
imm.$t <- Const.$t [mode imm] %over I ; immediate
rval.$t <- imm.$t [chain] %over I
reg.$t <- Plus.$t rval.$t rval.$t [emit add.$t] %over I
reg.$t <- Cvt.$f$t rval.$f [emit cvt.$f$t] %pairs I I
rval.$t <- reg.$t [chain] %over I
stmt <- Assign.l lval.l rval.l [emit mov.l]
lval.l <- Name.l [mode name]
|}

let test_mdg_parse () =
  let mdg = Mdg.parse sample_mdg in
  check_str "start" "stmt" mdg.Mdg.start;
  check_int "one class" 1 (List.length mdg.Mdg.classes);
  check_int "schemas" 7 (List.length mdg.Mdg.schemas);
  let g = Mdg.to_grammar mdg in
  (* 3 imm + 3 rval-chain + 3 add + 6 cvt pairs + 3 reg-chain + 2 literals *)
  check_int "expanded productions" 20 (Grammar.stats g).Grammar.productions

let test_mdg_errors () =
  let expect_line n src =
    match Mdg.parse src with
    | exception Mdg.Mdg_error (l, _) -> check_int "error line" n l
    | _ -> Alcotest.fail "bad description accepted"
  in
  expect_line 0 "x <- Y [chain]
";
  (* missing %start *)
  expect_line 2 "%start s
s <- X
";
  (* missing action *)
  expect_line 2 "%start s
s <- X [emit e] %over NOPE
"

let test_mdg_roundtrip_vax () =
  (* print the full VAX description and re-parse it: the grammars must
     be identical production for production *)
  let schemas = Gg_vax.Grammar_def.schemas Gg_vax.Grammar_def.default in
  let printed = Mdg.print (Mdg.of_schemas ~start:"stmt" schemas) in
  let reparsed = Mdg.to_grammar (Mdg.parse printed) in
  let original = Gg_vax.Grammar_def.grammar Gg_vax.Grammar_def.default in
  check_int "same production count"
    (Grammar.n_productions original)
    (Grammar.n_productions reparsed);
  for i = 0 to Grammar.n_productions original - 1 do
    let po = Grammar.production original i in
    let pr = Grammar.production reparsed i in
    check_str
      (Fmt.str "production %d" i)
      (Fmt.str "%a" (Grammar.pp_production original) po)
      (Fmt.str "%a" (Grammar.pp_production reparsed) pr)
  done

let suite =
  [
    Alcotest.test_case "symtab classification" `Quick test_symtab_classification;
    Alcotest.test_case "symtab find" `Quick test_symtab_find;
    Alcotest.test_case "subst" `Quick test_subst;
    Alcotest.test_case "scale tokens" `Quick test_scale_tokens;
    Alcotest.test_case "typed expansion" `Quick test_typed_expansion;
    Alcotest.test_case "pairs expansion" `Quick test_pairs_expansion;
    Alcotest.test_case "scale substitution in rhs" `Quick
      test_scale_substitution_in_rhs;
    Alcotest.test_case "toy grammar stats" `Quick test_toy_grammar_stats;
    Alcotest.test_case "rejects empty rhs" `Quick test_rejects_empty_rhs;
    Alcotest.test_case "rejects terminal lhs" `Quick test_rejects_terminal_lhs;
    Alcotest.test_case "rejects undefined nonterminal" `Quick
      test_rejects_undefined_nonterminal;
    Alcotest.test_case "rejects duplicates" `Quick test_rejects_duplicates;
    Alcotest.test_case "unreachable nonterminal reported" `Quick
      test_check_unreachable;
    Alcotest.test_case "unproductive nonterminal reported" `Quick
      test_check_unproductive;
    Alcotest.test_case "mdg parse" `Quick test_mdg_parse;
    Alcotest.test_case "mdg errors" `Quick test_mdg_errors;
    Alcotest.test_case "mdg roundtrip of the VAX description" `Quick
      test_mdg_roundtrip_vax;
  ]
