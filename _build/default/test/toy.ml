(* A small machine-description grammar shared by the tablegen and
   matcher tests.  It is a single-type (long) slice of the VAX grammar
   with the shapes that matter: chain productions, a memory-destination
   add (so maximal munch has something longer to prefer), and a
   register-register fallback. *)

module Grammar = Gg_grammar.Grammar
module Action = Gg_grammar.Action

let specs : Grammar.spec list =
  [
    ("stmt", [ "Assign.l"; "lval.l"; "rval.l" ], Action.Emit "mov.l", "movl s,d");
    ( "stmt",
      [ "Assign.l"; "lval.l"; "Plus.l"; "rval.l"; "rval.l" ],
      Action.Emit "add.l",
      "addl3 a,b,d" );
    ("lval.l", [ "mem.l" ], Action.Chain, "");
    ("lval.l", [ "Dreg.l" ], Action.Mode "dreg", "");
    ("mem.l", [ "Name.l" ], Action.Mode "name", "");
    ("imm.l", [ "Const.l" ], Action.Mode "imm", "");
    ("rval.l", [ "imm.l" ], Action.Chain, "");
    ("rval.l", [ "mem.l" ], Action.Chain, "");
    ("rval.l", [ "reg.l" ], Action.Chain, "");
    ("reg.l", [ "Dreg.l" ], Action.Mode "dreg", "");
    ("reg.l", [ "rval.l" ], Action.Emit "mov.l", "movl s,r");
    ("reg.l", [ "Plus.l"; "rval.l"; "rval.l" ], Action.Emit "add.l", "addl3 a,b,r");
    ("reg.l", [ "Mul.l"; "rval.l"; "rval.l" ], Action.Emit "mul.l", "mull3 a,b,r");
  ]

let grammar = Grammar.make_exn ~start:"stmt" specs

(* a = c + b, all longs and globals *)
let assign_tree =
  let open Gg_ir in
  Tree.Assign
    ( Dtype.Long,
      Tree.Name (Dtype.Long, "a"),
      Tree.Binop
        ( Op.Plus,
          Dtype.Long,
          Tree.Name (Dtype.Long, "c"),
          Tree.Name (Dtype.Long, "b") ) )

(* a = (c * 3) + (b * 5) *)
let nested_tree =
  let open Gg_ir in
  let mul x k =
    Tree.Binop
      (Op.Mul, Dtype.Long, Tree.Name (Dtype.Long, x), Tree.Const (Dtype.Long, k))
  in
  Tree.Assign
    ( Dtype.Long,
      Tree.Name (Dtype.Long, "a"),
      Tree.Binop (Op.Plus, Dtype.Long, mul "c" 3L, mul "b" 5L) )

(* Semantic values for matcher tests: a printable trace of what each
   reduction produced. *)
let string_callbacks emitted =
  {
    Gg_matcher.Matcher.on_shift =
      (fun tok ->
        match tok.Gg_ir.Termname.node with
        | Gg_ir.Tree.Name (_, n) -> n
        | Gg_ir.Tree.Const (_, k) -> Fmt.str "$%Ld" k
        | Gg_ir.Tree.Dreg (_, r) -> Fmt.str "r%d" r
        | _ -> "_");
    on_reduce =
      (fun p args ->
        match p.Grammar.action with
        | Action.Chain -> (match args with [| v |] -> v | _ -> assert false)
        | Action.Mode _ -> args.(0)
        | Action.Start -> args.(0)
        | Action.Emit key ->
          let operands =
            Array.to_list args
            |> List.filter (fun s -> s <> "_")
            |> String.concat ","
          in
          let operands = if operands = "" then "?" else operands in
          let insn = Fmt.str "%s %s" key operands in
          emitted := insn :: !emitted;
          Fmt.str "t%d" (List.length !emitted));
    choose = (fun _ _ -> 0);
  }
