(* Tests for the VAX target description: addressing-mode formatting,
   the instruction cost model, the Fig. 3 instruction table, and the
   machine grammar (statistics, checks, ablations). *)

open Gg_ir
open Gg_vax
module Tables = Gg_tablegen.Tables
module Checks = Gg_tablegen.Checks

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* -- Mode ------------------------------------------------------------------- *)

let test_mode_assembly () =
  check_str "register" "r6" (Mode.assembly (Mode.reg 6));
  check_str "fp" "fp" (Mode.assembly (Mode.reg Regconv.fp));
  check_str "immediate" "$42" (Mode.assembly (Mode.imm 42L));
  check_str "negative immediate" "$-1" (Mode.assembly (Mode.imm (-1L)));
  check_str "float literal" "$0f1.5" (Mode.assembly (Mode.Fimm 1.5));
  check_str "symbol" "a" (Mode.assembly (Mode.mem_sym "a"));
  check_str "displacement" "-4(fp)" (Mode.assembly (Mode.mem_disp (-4L) Regconv.fp));
  check_str "sym+disp" "a+8(r6)" (Mode.assembly (Mode.mem_disp ~sym:"a" 8L 6));
  check_str "deferred" "(r7)" (Mode.assembly (Mode.mem_deferred 7));
  check_str "autoincrement" "(r6)+" (Mode.assembly (Mode.autoinc 6));
  check_str "autodecrement" "-(sp)" (Mode.assembly (Mode.autodec Regconv.sp));
  check_str "indexed" "8(r6)[r7]"
    (Mode.assembly (Mode.with_index (Mode.mem_disp 8L 6) 7));
  check_str "symbol indexed" "arr[r9]"
    (Mode.assembly (Mode.with_index (Mode.mem_sym "arr") 9))

let test_mode_registers () =
  Alcotest.(check (list int)) "indexed regs" [ 6; 7 ]
    (Mode.registers (Mode.with_index (Mode.mem_disp 8L 6) 7));
  Alcotest.(check (list int)) "immediate none" [] (Mode.registers (Mode.imm 1L))

let test_mode_predicates () =
  check_bool "reg" true (Mode.is_register (Mode.reg 3));
  check_bool "imm" true (Mode.is_immediate (Mode.imm 0L));
  check_bool "mem" true (Mode.is_memory (Mode.mem_sym "x"));
  Alcotest.(check (option int64)) "immediate value" (Some 7L)
    (Mode.immediate (Mode.imm 7L))

let test_mode_with_index_errors () =
  (match Mode.with_index (Mode.autoinc 6) 7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "indexed an auto mode");
  match Mode.with_index (Mode.reg 6) 7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "indexed a register"

(* -- Insn ------------------------------------------------------------------- *)

let test_insn_assembly () =
  check_str "three operand" "\taddl3\t$1,b,r6"
    (Insn.assembly (Insn.insn "addl3" [ Mode.imm 1L; Mode.mem_sym "b"; Mode.reg 6 ]));
  check_str "branch" "\tjneq\tL4" (Insn.assembly (Insn.Branch ("jneq", 4)));
  check_str "call" "\tcalls\t$2,fib" (Insn.assembly (Insn.Call ("fib", 2)));
  check_str "label" "L9:" (Insn.assembly (Insn.Lab 9));
  check_str "ret" "\tret" (Insn.assembly Insn.Ret)

let test_insn_cycles_ordering () =
  let cost m = Insn.cycles (Insn.insn m [ Mode.reg 1; Mode.reg 2 ]) in
  check_bool "mul > add" true (cost "mull2" > cost "addl2");
  check_bool "div > mul" true (cost "divl2" > cost "mull2");
  check_bool "mov cheap" true (cost "movl" <= cost "addl2");
  check_bool "memory costs more" true
    (Insn.cycles (Insn.insn "addl2" [ Mode.mem_sym "a"; Mode.reg 1 ])
    > Insn.cycles (Insn.insn "addl2" [ Mode.reg 2; Mode.reg 1 ]))

let test_insn_count_lines () =
  check_int "comments free" 2
    (Insn.count_lines
       [ Insn.Comment "x"; Insn.Ret; Insn.Lab 1; Insn.Comment "y" ])

(* -- Insn_table (Fig. 3) ------------------------------------------------------ *)

let test_fig3_add_long_cluster () =
  (* the paper's example: addl3 / addl2 / incl *)
  match Insn_table.find_exn "add.l" with
  | [ r3; r2; r1 ] ->
    check_str "addl3" "addl3" r3.Insn_table.print;
    check_int "3 operands" 3 r3.Insn_table.nops;
    check_bool "binding" true r3.Insn_table.binding;
    check_bool "commutes" true r3.Insn_table.commutes;
    check_str "addl2" "addl2" r2.Insn_table.print;
    Alcotest.(check (option string)) "range" (Some "$add") r2.Insn_table.range;
    check_str "incl" "incl" r1.Insn_table.print;
    check_int "1 operand" 1 r1.Insn_table.nops
  | _ -> Alcotest.fail "wrong cluster shape"

let test_sub_does_not_commute () =
  match Insn_table.find_exn "sub.l" with
  | r3 :: _ ->
    check_bool "binding" true r3.Insn_table.binding;
    check_bool "no commute" false r3.Insn_table.commutes
  | _ -> Alcotest.fail "no cluster"

let test_float_add_has_no_inc () =
  match Insn_table.find_exn "add.d" with
  | [ _; r2 ] -> Alcotest.(check (option string)) "no range" None r2.Insn_table.range
  | _ -> Alcotest.fail "wrong float cluster shape"

let test_mov_cluster_clr () =
  match Insn_table.find_exn "mov.b" with
  | [ mv; clr ] ->
    check_str "movb" "movb" mv.Insn_table.print;
    Alcotest.(check (option string)) "zero range" (Some "$mov")
      mv.Insn_table.range;
    check_str "clrb" "clrb" clr.Insn_table.print
  | _ -> Alcotest.fail "wrong mov cluster"

let test_range_predicates () =
  check_bool "$one matches 1" true (Insn_table.range_matches "$one" (Mode.imm 1L));
  check_bool "$one rejects 2" false (Insn_table.range_matches "$one" (Mode.imm 2L));
  Alcotest.(check (option string)) "add 1 -> incl" (Some "incl")
    (Insn_table.range_apply "$add" "l" (Mode.imm 1L));
  Alcotest.(check (option string)) "add -1 -> decl" (Some "decl")
    (Insn_table.range_apply "$add" "l" (Mode.imm (-1L)));
  Alcotest.(check (option string)) "mov 0 -> clrb" (Some "clrb")
    (Insn_table.range_apply "$mov" "b" (Mode.imm 0L));
  Alcotest.(check (option string)) "cmp 0 -> tstw" (Some "tstw")
    (Insn_table.range_apply "$cmp" "w" (Mode.imm 0L));
  Alcotest.(check (option string)) "no idiom" None
    (Insn_table.range_apply "$add" "l" (Mode.reg 0))

let test_pseudo_classification () =
  check_bool "mod pseudo" true (Insn_table.is_pseudo "mod.l");
  check_bool "udiv pseudo" true (Insn_table.is_pseudo "udiv.l");
  check_bool "add not" false (Insn_table.is_pseudo "add.l");
  check_bool "cvt not" false (Insn_table.is_pseudo "cvt.bl")

let test_all_known_keys_resolve () =
  List.iter
    (fun key ->
      match Insn_table.find key with
      | Some _ -> ()
      | None -> Alcotest.failf "key %s does not resolve" key)
    (Insn_table.known_keys ())

(* -- Grammar_def --------------------------------------------------------------- *)

let test_default_grammar_builds () =
  let g = Lazy.force Grammar_def.default_grammar in
  let s = Gg_grammar.Grammar.stats g in
  check_bool "hundreds of productions" true (s.Gg_grammar.Grammar.productions > 300);
  check_bool "many terminals" true (s.Gg_grammar.Grammar.terminals > 100);
  (* well-formed: nothing unreachable or unproductive *)
  let report = Gg_grammar.Grammar.check g in
  Alcotest.(check (list string)) "reachable" [] report.Gg_grammar.Grammar.unreachable;
  Alcotest.(check (list string)) "productive" [] report.Gg_grammar.Grammar.unproductive

let test_replication_growth () =
  let o = Grammar_def.default in
  let generic = List.length (Grammar_def.schemas o) in
  let replicated =
    (Gg_grammar.Grammar.stats (Grammar_def.grammar o)).Gg_grammar.Grammar.productions
  in
  (* the paper reports 458 -> 1073 (x2.3); our subset grows similarly *)
  check_bool "replication multiplies productions" true
    (replicated > 2 * generic)

let test_no_silent_chain_cycles () =
  let report = Checks.chains (Lazy.force Grammar_def.default_grammar) in
  Alcotest.(check (list (list string))) "no silent cycles" []
    report.Checks.silent_cycles

let test_no_blocks_with_bridges () =
  let o = Grammar_def.default in
  let t = Tables.build (Grammar_def.grammar o) in
  let tl = Grammar_def.treelang o in
  check_int "no blocks" 0
    (List.length
       (Checks.blocks t ~arity:tl.Treelang.arity ~starts:tl.Treelang.starts))

let test_blocks_without_bridges () =
  let o = { Grammar_def.default with Grammar_def.with_bridges = false } in
  let t = Tables.build (Grammar_def.grammar o) in
  let tl = Grammar_def.treelang o in
  check_bool "blocks appear" true
    (Checks.blocks t ~arity:tl.Treelang.arity ~starts:tl.Treelang.starts <> [])

let test_reverse_ops_growth () =
  (* the reverse-operator ablation of section 5.1.3 *)
  let with_r = Grammar_def.grammar Grammar_def.default in
  let without_r =
    Grammar_def.grammar { Grammar_def.default with Grammar_def.reverse_ops = false }
  in
  let p_with = (Gg_grammar.Grammar.stats with_r).Gg_grammar.Grammar.productions in
  let p_without = (Gg_grammar.Grammar.stats without_r).Gg_grammar.Grammar.productions in
  check_bool "grammar grows" true (p_with > p_without);
  let s_with = (Tables.stats (Tables.build with_r)).Tables.states in
  let s_without = (Tables.stats (Tables.build without_r)).Tables.states in
  check_bool "tables grow" true (s_with > s_without)

let test_overfactored_variant_builds () =
  let o = { Grammar_def.default with Grammar_def.overfactored = true } in
  let t = Tables.build (Grammar_def.grammar o) in
  check_bool "builds" true (Tables.n_states t > 0)

(* -- Treelang -------------------------------------------------------------------- *)

let test_treelang_arities () =
  let tl = Grammar_def.treelang Grammar_def.default in
  check_int "Plus.l" 2 (tl.Treelang.arity "Plus.l");
  check_int "Indir.b" 1 (tl.Treelang.arity "Indir.b");
  check_int "Cmp.l" 3 (tl.Treelang.arity "Cmp.l");
  check_int "Cbranch" 1 (tl.Treelang.arity "Cbranch");
  check_int "Const.l" 0 (tl.Treelang.arity "Const.l")

let test_treelang_starts () =
  let tl = Grammar_def.treelang Grammar_def.default in
  let root = tl.Treelang.starts ~parent:None ~child:0 in
  check_bool "Assign.l starts a statement" true (List.mem "Assign.l" root);
  check_bool "Cbranch starts a statement" true (List.mem "Cbranch" root);
  let assign_dst = tl.Treelang.starts ~parent:(Some "Assign.l") ~child:0 in
  check_bool "destination accepts Name.l" true (List.mem "Name.l" assign_dst);
  check_bool "destination rejects Const.l" false (List.mem "Const.l" assign_dst);
  let plus_child = tl.Treelang.starts ~parent:(Some "Plus.b") ~child:1 in
  check_bool "byte operand accepts Const.b" true (List.mem "Const.b" plus_child);
  check_bool "byte operand accepts conversions in" true
    (List.mem "Cvt.lb" plus_child)

let suite =
  [
    Alcotest.test_case "mode assembly" `Quick test_mode_assembly;
    Alcotest.test_case "mode registers" `Quick test_mode_registers;
    Alcotest.test_case "mode predicates" `Quick test_mode_predicates;
    Alcotest.test_case "with_index errors" `Quick test_mode_with_index_errors;
    Alcotest.test_case "insn assembly" `Quick test_insn_assembly;
    Alcotest.test_case "cost model ordering" `Quick test_insn_cycles_ordering;
    Alcotest.test_case "count_lines skips comments" `Quick
      test_insn_count_lines;
    Alcotest.test_case "Fig.3 add.l cluster" `Quick test_fig3_add_long_cluster;
    Alcotest.test_case "sub does not commute" `Quick test_sub_does_not_commute;
    Alcotest.test_case "float add has no inc" `Quick test_float_add_has_no_inc;
    Alcotest.test_case "mov cluster clr idiom" `Quick test_mov_cluster_clr;
    Alcotest.test_case "range predicates" `Quick test_range_predicates;
    Alcotest.test_case "pseudo classification" `Quick
      test_pseudo_classification;
    Alcotest.test_case "all known keys resolve" `Quick
      test_all_known_keys_resolve;
    Alcotest.test_case "default grammar builds" `Quick
      test_default_grammar_builds;
    Alcotest.test_case "replication growth" `Quick test_replication_growth;
    Alcotest.test_case "no silent chain cycles" `Quick
      test_no_silent_chain_cycles;
    Alcotest.test_case "no blocks with bridges" `Quick
      test_no_blocks_with_bridges;
    Alcotest.test_case "blocks without bridges" `Quick
      test_blocks_without_bridges;
    Alcotest.test_case "reverse-ops growth" `Quick test_reverse_ops_growth;
    Alcotest.test_case "overfactored variant builds" `Quick
      test_overfactored_variant_builds;
    Alcotest.test_case "treelang arities" `Quick test_treelang_arities;
    Alcotest.test_case "treelang starts" `Quick test_treelang_starts;
  ]
