(* Tests for the shift/reduce pattern matcher: parses of linearised
   trees against the toy grammar, maximal munch behaviour, traces, and
   error reporting. *)

open Gg_tablegen
open Gg_matcher
module Tree = Gg_ir.Tree
module Dtype = Gg_ir.Dtype
module Op = Gg_ir.Op
module Termname = Gg_ir.Termname

let tables = lazy (Tables.build Toy.grammar)

let run_tree tree =
  let emitted = ref [] in
  let cb = Toy.string_callbacks emitted in
  let outcome = Matcher.run_tree ~trace:true (Lazy.force tables) cb tree in
  (List.rev !emitted, outcome)

let test_simple_assign () =
  let insns, _ = run_tree Toy.assign_tree in
  (* maximal munch must pick the five-symbol memory-destination add, so
     exactly one instruction comes out *)
  Alcotest.(check (list string)) "single addl3" [ "add.l a,c,b" ] insns

let test_nested_expression () =
  let insns, _ = run_tree Toy.nested_tree in
  Alcotest.(check int) "three instructions" 3 (List.length insns);
  (* the two multiplies must be emitted before the final add *)
  (match insns with
  | [ m1; m2; a ] ->
    Alcotest.(check bool) "mul first" true
      (String.length m1 >= 5 && String.sub m1 0 5 = "mul.l");
    Alcotest.(check bool) "mul second" true
      (String.length m2 >= 5 && String.sub m2 0 5 = "mul.l");
    Alcotest.(check bool) "add last" true
      (String.length a >= 5 && String.sub a 0 5 = "add.l")
  | _ -> Alcotest.fail "wrong shape")

let test_trace_shape () =
  let _, outcome = run_tree Toy.assign_tree in
  let shifts =
    List.filter (function Matcher.Sshift _ -> true | _ -> false)
      outcome.Matcher.trace
  in
  (* one shift per input token: Assign Name Plus Name Name *)
  Alcotest.(check int) "five shifts" 5 (List.length shifts);
  match List.rev outcome.Matcher.trace with
  | Matcher.Saccept :: _ -> ()
  | _ -> Alcotest.fail "trace does not end in accept"

let test_register_assign_uses_dreg_lval () =
  (* r6 = b: lval comes from the Dreg production *)
  let tree =
    Tree.Assign
      (Dtype.Long, Tree.Dreg (Dtype.Long, 6), Tree.Name (Dtype.Long, "b"))
  in
  let insns, _ = run_tree tree in
  Alcotest.(check (list string)) "mov into register" [ "mov.l r6,b" ] insns

let test_reject_unknown_terminal () =
  (* bytes are not in the toy grammar at all *)
  let tree =
    Tree.Assign
      (Dtype.Byte, Tree.Name (Dtype.Byte, "a"), Tree.Const (Dtype.Byte, 1L))
  in
  let emitted = ref [] in
  let cb = Toy.string_callbacks emitted in
  match Matcher.run_tree (Lazy.force tables) cb tree with
  | exception Matcher.Reject _ -> ()
  | _ -> Alcotest.fail "byte tree accepted by long-only grammar"

let test_reject_reports_state_and_expected () =
  (* Const.l where a statement must start *)
  let tokens =
    [ { Termname.term = "Const.l"; node = Tree.Const (Dtype.Long, 1L) } ]
  in
  let emitted = ref [] in
  let cb = Toy.string_callbacks emitted in
  match Matcher.run (Lazy.force tables) cb tokens with
  | exception Matcher.Reject e ->
    Alcotest.(check int) "at token 0" 0 e.Matcher.at;
    Alcotest.(check (list string)) "expected assign" [ "Assign.l" ]
      e.Matcher.expected
  | _ -> Alcotest.fail "statement-position constant accepted"

let test_reject_on_truncated_input () =
  let tokens =
    [
      { Termname.term = "Assign.l"; node = Toy.assign_tree };
      { Termname.term = "Name.l"; node = Tree.Name (Dtype.Long, "a") };
    ]
  in
  let emitted = ref [] in
  let cb = Toy.string_callbacks emitted in
  match Matcher.run (Lazy.force tables) cb tokens with
  | exception Matcher.Reject e ->
    Alcotest.(check string) "eof token" "<eof>" e.Matcher.token
  | _ -> Alcotest.fail "truncated input accepted"

(* Parse many random long-typed trees: none should block, and the number
   of emitted instructions is bounded by the number of operators. *)
let random_long_tree =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Tree.Name (Dtype.Long, Fmt.str "g%d" (abs n mod 5))) int;
        map (fun n -> Tree.Const (Dtype.Long, Int64.of_int (n mod 100))) int;
        return (Tree.Dreg (Dtype.Long, 6));
      ]
  in
  let node self n =
    if n <= 1 then leaf
    else
      frequency
        [
          (1, leaf);
          ( 3,
            map2
              (fun op (a, b) -> Tree.Binop (op, Dtype.Long, a, b))
              (oneofl [ Op.Plus; Op.Mul ])
              (pair (self (n / 2)) (self (n / 2))) );
        ]
  in
  let tree = sized_size (int_range 1 40) (fix node) in
  map
    (fun e -> Tree.Assign (Dtype.Long, Tree.Name (Dtype.Long, "a"), e))
    tree

let count_ops tree =
  Tree.fold
    (fun acc t -> match t with Tree.Binop _ | Tree.Assign _ -> acc + 1 | _ -> acc)
    0 tree

let prop_random_trees_parse =
  QCheck.Test.make ~name:"random long trees all parse" ~count:200
    (QCheck.make random_long_tree)
    (fun tree ->
      let emitted = ref [] in
      let cb = Toy.string_callbacks emitted in
      let _ =
        Matcher.run_tree ~special_constants:false (Lazy.force tables) cb tree
      in
      List.length !emitted <= count_ops tree)

let prop_linear_time =
  QCheck.Test.make ~name:"trace length is linear in tree size" ~count:100
    (QCheck.make random_long_tree)
    (fun tree ->
      let emitted = ref [] in
      let cb = Toy.string_callbacks emitted in
      let outcome =
        Matcher.run_tree ~trace:true ~special_constants:false
          (Lazy.force tables) cb tree
      in
      (* each token is shifted once and every reduction consumes stack:
         total steps are bounded by a small multiple of the input *)
      List.length outcome.Matcher.trace <= 4 * Tree.size tree + 2)

let test_packed_tables_drive_matcher () =
  (* the comb-packed tables must produce identical emitted sequences *)
  let dense = Lazy.force tables in
  let packed = Gg_tablegen.Packed.pack dense in
  let run_one drive tree =
    let emitted = ref [] in
    let cb = Toy.string_callbacks emitted in
    let _ = drive cb tree in
    List.rev !emitted
  in
  List.iter
    (fun tree ->
      let via_dense = run_one (fun cb t -> Matcher.run_tree dense cb t) tree in
      let via_packed =
        run_one
          (fun cb t ->
            Matcher.run_packed packed ~grammar:Toy.grammar cb
              (Termname.linearize t))
          tree
      in
      Alcotest.(check (list string)) "same code" via_dense via_packed)
    [ Toy.assign_tree; Toy.nested_tree ]

let prop_packed_equals_dense =
  QCheck.Test.make ~name:"packed tables emit the same code" ~count:100
    (QCheck.make random_long_tree)
    (fun tree ->
      let dense = Lazy.force tables in
      let packed = Gg_tablegen.Packed.pack dense in
      let run_one drive =
        let emitted = ref [] in
        let cb = Toy.string_callbacks emitted in
        let _ = drive cb in
        List.rev !emitted
      in
      run_one (fun cb ->
          Matcher.run_tree ~special_constants:false dense cb tree)
      = run_one (fun cb ->
            Matcher.run_packed packed ~grammar:Toy.grammar cb
              (Termname.linearize ~special_constants:false tree)))

let suite =
  [
    Alcotest.test_case "simple assign uses widest pattern" `Quick
      test_simple_assign;
    Alcotest.test_case "nested expression order" `Quick test_nested_expression;
    Alcotest.test_case "trace shape" `Quick test_trace_shape;
    Alcotest.test_case "register destination" `Quick
      test_register_assign_uses_dreg_lval;
    Alcotest.test_case "unknown terminal rejected" `Quick
      test_reject_unknown_terminal;
    Alcotest.test_case "reject reports expected set" `Quick
      test_reject_reports_state_and_expected;
    Alcotest.test_case "truncated input rejected" `Quick
      test_reject_on_truncated_input;
    QCheck_alcotest.to_alcotest prop_random_trees_parse;
    QCheck_alcotest.to_alcotest prop_linear_time;
    Alcotest.test_case "packed tables drive the matcher" `Quick
      test_packed_tables_drive_matcher;
    QCheck_alcotest.to_alcotest prop_packed_equals_dense;
  ]
