(* Unit tests for the IR: data types, operators, trees, linearisation,
   and the reference interpreter. *)

open Gg_ir

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let i64 = Alcotest.testable (fun ppf -> Fmt.pf ppf "%Ld") Int64.equal

(* -- Dtype -------------------------------------------------------------- *)

let test_dtype_sizes () =
  check_int "byte" 1 (Dtype.size Dtype.Byte);
  check_int "word" 2 (Dtype.size Dtype.Word);
  check_int "long" 4 (Dtype.size Dtype.Long);
  check_int "quad" 8 (Dtype.size Dtype.Quad);
  check_int "flt" 4 (Dtype.size Dtype.Flt);
  check_int "dbl" 8 (Dtype.size Dtype.Dbl)

let test_dtype_suffix_roundtrip () =
  List.iter
    (fun ty ->
      match Dtype.of_suffix (Dtype.suffix ty) with
      | Some ty' -> check_bool (Dtype.name ty) true (Dtype.equal ty ty')
      | None -> Alcotest.failf "suffix of %s did not round-trip" (Dtype.name ty))
    Dtype.all;
  Alcotest.(check (option reject)) "unknown suffix" None (Dtype.of_suffix "z")

let test_dtype_widest () =
  check_bool "w vs l" true
    (Dtype.equal Dtype.Long (Dtype.widest Dtype.Word Dtype.Long));
  check_bool "b vs b" true
    (Dtype.equal Dtype.Byte (Dtype.widest Dtype.Byte Dtype.Byte))

(* -- Op ------------------------------------------------------------------ *)

let test_reverse_binops () =
  List.iter
    (fun op ->
      match Op.reverse_binop op with
      | Some rop ->
        check_bool "reverse is reverse" true (Op.is_reverse rop);
        check_bool "unreverse undoes" true (Op.unreverse rop = op)
      | None ->
        check_bool "commutative or unreversible" true
          (Op.binop_commutative op || Op.is_reverse op
          || op = Op.Udiv || op = Op.Umod))
    Op.all_binops

let test_relop_negate_involution () =
  List.iter
    (fun r ->
      check_bool "negate twice" true (Op.negate_relop (Op.negate_relop r) = r);
      check_bool "swap twice" true (Op.swap_relop (Op.swap_relop r) = r))
    Op.all_relops

let test_relop_semantics () =
  check_bool "negate complements" true
    (List.for_all
       (fun r ->
         List.for_all
           (fun (a, b) ->
             Op.eval_relop r a b <> Op.eval_relop (Op.negate_relop r) a b)
           [ (1L, 2L); (2L, 1L); (3L, 3L) ])
       Op.all_relops);
  check_bool "swap mirrors" true
    (List.for_all
       (fun r ->
         List.for_all
           (fun (a, b) -> Op.eval_relop r a b = Op.eval_relop (Op.swap_relop r) b a)
           [ (1L, 2L); (2L, 1L); (3L, 3L) ])
       Op.all_relops)

(* -- Tree ---------------------------------------------------------------- *)

let test_wrap () =
  Alcotest.check i64 "byte wraps" (-1L) (Tree.wrap Dtype.Byte 255L);
  Alcotest.check i64 "byte small" 27L (Tree.wrap Dtype.Byte 27L);
  Alcotest.check i64 "word wraps" (-32768L) (Tree.wrap Dtype.Word 32768L);
  Alcotest.check i64 "long wraps" (-2147483648L) (Tree.wrap Dtype.Long 2147483648L);
  Alcotest.check i64 "quad id" Int64.min_int (Tree.wrap Dtype.Quad Int64.min_int)

let appendix_tree =
  (* the paper's Appendix: a := 27 + b with a long global and b a byte
     local at the frame pointer *)
  Tree.Assign
    ( Dtype.Long,
      Tree.Name (Dtype.Long, "a"),
      Tree.Binop
        ( Op.Plus,
          Dtype.Long,
          Tree.Const (Dtype.Byte, 27L),
          Tree.Conv
            ( Dtype.Long,
              Dtype.Byte,
              Tree.Indir
                ( Dtype.Byte,
                  Tree.Binop
                    ( Op.Plus,
                      Dtype.Long,
                      Tree.Const (Dtype.Long, -4L),
                      Tree.Dreg (Dtype.Long, Regconv.fp) ) ) ) ) )

let test_tree_size () =
  check_int "appendix tree nodes" 9 (Tree.size appendix_tree);
  check_int "leaf" 1 (Tree.size (Tree.Const (Dtype.Long, 0L)))

let test_tree_dtype () =
  check_bool "assign type" true (Tree.dtype appendix_tree = Dtype.Long);
  check_bool "addr type" true
    (Tree.dtype (Tree.Addr (Tree.Name (Dtype.Byte, "x"))) = Dtype.Long)

let test_tree_check_accepts () =
  match Tree.check appendix_tree with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "check rejected appendix tree: %s" msg

let test_tree_check_rejects_bad_assign () =
  let bad =
    Tree.Assign
      (Dtype.Long, Tree.Const (Dtype.Long, 1L), Tree.Const (Dtype.Long, 2L))
  in
  match Tree.check bad with
  | Ok () -> Alcotest.fail "accepted assignment to a constant"
  | Error _ -> ()

let test_tree_check_rejects_embedded_call () =
  let bad =
    Tree.Binop
      ( Op.Plus,
        Dtype.Long,
        Tree.Call (Dtype.Long, "f", []),
        Tree.Const (Dtype.Long, 1L) )
  in
  (match Tree.check ~after_phase1:true bad with
  | Ok () -> Alcotest.fail "accepted embedded call after phase 1"
  | Error _ -> ());
  match Tree.check ~after_phase1:false bad with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "rejected embedded call before phase 1: %s" msg

let test_map_bottom_up () =
  let t =
    Tree.Binop
      (Op.Plus, Dtype.Long, Tree.Const (Dtype.Long, 1L), Tree.Const (Dtype.Long, 2L))
  in
  let doubled =
    Tree.map_bottom_up
      (function
        | Tree.Const (ty, n) -> Tree.Const (ty, Int64.mul 2L n)
        | other -> other)
      t
  in
  match doubled with
  | Tree.Binop (_, _, Tree.Const (_, 2L), Tree.Const (_, 4L)) -> ()
  | _ -> Alcotest.fail "map_bottom_up did not rewrite leaves"

(* -- Termname / linearisation ------------------------------------------- *)

let test_linearize_names () =
  let tokens = Termname.linearize appendix_tree in
  let names = List.map (fun { Termname.term; _ } -> term) tokens in
  Alcotest.(check (list string)) "appendix linearisation"
    [
      "Assign.l"; "Name.l"; "Plus.l"; "Const.b"; "Cvt.bl"; "Indir.b"; "Plus.l";
      "Const.l"; "Dreg.l";
    ]
    names

let test_linearize_special_constants () =
  let t =
    Tree.Binop
      (Op.Mul, Dtype.Long, Tree.Const (Dtype.Long, 4L), Tree.Dreg (Dtype.Long, 6))
  in
  let names sc =
    List.map
      (fun { Termname.term; _ } -> term)
      (Termname.linearize ~special_constants:sc t)
  in
  Alcotest.(check (list string)) "with" [ "Mul.l"; "Four.l"; "Dreg.l" ] (names true);
  Alcotest.(check (list string)) "without" [ "Mul.l"; "Const.l"; "Dreg.l" ]
    (names false)

let test_linearize_cbranch () =
  let t =
    Tree.Cbranch
      ( Op.Lt,
        Dtype.Signed,
        Dtype.Long,
        Tree.Name (Dtype.Long, "x"),
        Tree.Const (Dtype.Long, 0L),
        7 )
  in
  let names =
    List.map (fun { Termname.term; _ } -> term) (Termname.linearize t)
  in
  Alcotest.(check (list string)) "cbranch shape"
    [ "Cbranch"; "Cmp.l"; "Name.l"; "Zero.l"; "Label" ]
    names

(* -- Interp --------------------------------------------------------------- *)

let value =
  Alcotest.testable Interp.pp_value Interp.value_equal

let test_eval_arith () =
  let open Tree in
  let t ty op a b = Binop (op, ty, Const (ty, a), Const (ty, b)) in
  Alcotest.check value "add" (Interp.VInt 5L)
    (Interp.eval_tree (t Dtype.Long Op.Plus 2L 3L));
  Alcotest.check value "byte overflow wraps" (Interp.VInt (-126L))
    (Interp.eval_tree (t Dtype.Byte Op.Plus 100L 30L));
  Alcotest.check value "div truncates toward zero" (Interp.VInt (-2L))
    (Interp.eval_tree (t Dtype.Long Op.Div (-7L) 3L));
  Alcotest.check value "mod sign of dividend" (Interp.VInt (-1L))
    (Interp.eval_tree (t Dtype.Long Op.Mod (-7L) 3L));
  Alcotest.check value "rminus reverses" (Interp.VInt 1L)
    (Interp.eval_tree (t Dtype.Long Op.Rminus 2L 3L));
  Alcotest.check value "udiv on byte" (Interp.VInt 127L)
    (Interp.eval_tree (t Dtype.Byte Op.Udiv (-2L) 2L))

let test_eval_division_by_zero () =
  let t =
    Tree.Binop
      (Op.Div, Dtype.Long, Tree.Const (Dtype.Long, 1L), Tree.Const (Dtype.Long, 0L))
  in
  match Interp.eval_tree t with
  | exception Interp.Runtime_error _ -> ()
  | v -> Alcotest.failf "expected error, got %a" Interp.pp_value v

let test_eval_conv () =
  Alcotest.check value "l->b truncates" (Interp.VInt 1L)
    (Interp.eval_tree
       (Tree.Conv (Dtype.Byte, Dtype.Long, Tree.Const (Dtype.Long, 257L))));
  Alcotest.check value "int->float" (Interp.VFloat 5.0)
    (Interp.eval_tree
       (Tree.Conv (Dtype.Dbl, Dtype.Long, Tree.Const (Dtype.Long, 5L))));
  Alcotest.check value "float->int truncates" (Interp.VInt (-2L))
    (Interp.eval_tree
       (Tree.Conv (Dtype.Long, Dtype.Dbl, Tree.Fconst (Dtype.Dbl, -2.7))))

(* a program: int g; int main() { g = 0; for i in 1..5: g += i; return g } *)
let sum_program =
  let open Tree in
  let lg = Label.gen () in
  let l_loop = Label.fresh lg in
  let l_done = Label.fresh lg in
  let i = Name (Dtype.Long, "i") in
  let g = Name (Dtype.Long, "g") in
  {
    globals = [ ("g", Dtype.Long, 4); ("i", Dtype.Long, 4) ];
    funcs =
      [
        {
          fname = "main";
          formals = [];
          ret_type = Dtype.Long;
          locals_size = 0;
          body =
            [
              Stree (Assign (Dtype.Long, g, Const (Dtype.Long, 0L)));
              Stree (Assign (Dtype.Long, i, Const (Dtype.Long, 1L)));
              Slabel l_loop;
              Stree
                (Cbranch (Op.Gt, Dtype.Signed, Dtype.Long, i,
                          Const (Dtype.Long, 5L), l_done));
              Stree (Assign (Dtype.Long, g, Binop (Op.Plus, Dtype.Long, g, i)));
              Stree (Assign (Dtype.Long, i, Binop (Op.Plus, Dtype.Long, i,
                                                   Const (Dtype.Long, 1L))));
              Sjump l_loop;
              Slabel l_done;
              Stree (Assign (Dtype.Long, Dreg (Dtype.Long, Regconv.r0), g));
              Sret;
            ];
        };
      ];
  }

let test_run_loop_program () =
  let outcome = Interp.run sum_program ~entry:"main" [] in
  Alcotest.check value "1+..+5" (Interp.VInt 15L) outcome.Interp.return_value;
  match List.assoc_opt "g" outcome.Interp.globals with
  | Some v -> Alcotest.check value "global g" (Interp.VInt 15L) v
  | None -> Alcotest.fail "global g not reported"

(* recursion: fact(n) *)
let fact_program =
  let open Tree in
  let lg = Label.gen () in
  let l_base = Label.fresh lg in
  let n = Indir (Dtype.Long, Binop (Op.Plus, Dtype.Long, Const (Dtype.Long, 4L),
                                    Dreg (Dtype.Long, Regconv.ap))) in
  {
    globals = [];
    funcs =
      [
        {
          fname = "fact";
          formals = [ ("n", Dtype.Long) ];
          ret_type = Dtype.Long;
          locals_size = 0;
          body =
            [
              Stree
                (Cbranch (Op.Le, Dtype.Signed, Dtype.Long, n,
                          Const (Dtype.Long, 1L), l_base));
              Stree
                (Assign
                   ( Dtype.Long,
                     Dreg (Dtype.Long, Regconv.r0),
                     Binop
                       ( Op.Mul,
                         Dtype.Long,
                         n,
                         Call
                           ( Dtype.Long,
                             "fact",
                             [ Binop (Op.Minus, Dtype.Long, n,
                                      Const (Dtype.Long, 1L)) ] ) ) ));
              Sret;
              Slabel l_base;
              Stree (Assign (Dtype.Long, Dreg (Dtype.Long, Regconv.r0),
                             Const (Dtype.Long, 1L)));
              Sret;
            ];
        };
      ];
  }

let test_run_recursion () =
  let outcome = Interp.run fact_program ~entry:"fact" [ Interp.VInt 6L ] in
  Alcotest.check value "6!" (Interp.VInt 720L) outcome.Interp.return_value

let test_run_print_output () =
  let open Tree in
  let program =
    {
      globals = [];
      funcs =
        [
          {
            fname = "main";
            formals = [];
            ret_type = Dtype.Long;
            locals_size = 0;
            body =
              [
                Stree (Call (Dtype.Long, "print", [ Const (Dtype.Long, 42L) ]));
                Stree (Call (Dtype.Long, "print", [ Const (Dtype.Long, -1L) ]));
                Stree (Assign (Dtype.Long, Dreg (Dtype.Long, Regconv.r0),
                               Const (Dtype.Long, 0L)));
                Sret;
              ];
          };
        ];
    }
  in
  let outcome = Interp.run program ~entry:"main" [] in
  Alcotest.(check (list string)) "print lines" [ "42"; "-1" ]
    outcome.Interp.output

let test_step_budget () =
  let open Tree in
  let lg = Label.gen () in
  let l = Label.fresh lg in
  let program =
    {
      globals = [];
      funcs =
        [
          {
            fname = "main";
            formals = [];
            ret_type = Dtype.Long;
            locals_size = 0;
            body = [ Slabel l; Sjump l ];
          };
        ];
    }
  in
  match Interp.run ~max_steps:1000 program ~entry:"main" [] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "infinite loop not caught"

let test_autoinc_side_effect () =
  (* r6 points at memory; *(r6++) reads and advances *)
  let open Tree in
  let program =
    {
      globals = [ ("a", Dtype.Long, 8); ("s", Dtype.Long, 4) ];
      funcs =
        [
          {
            fname = "main";
            formals = [];
            ret_type = Dtype.Long;
            locals_size = 0;
            body =
              [
                (* a[0] = 7; a[1] = 9; r6 = &a[0]; s = *(r6++) + *(r6++) *)
                Stree (Assign (Dtype.Long,
                               Indir (Dtype.Long, Addr (Name (Dtype.Long, "a"))),
                               Const (Dtype.Long, 7L)));
                Stree (Assign (Dtype.Long,
                               Indir (Dtype.Long,
                                      Binop (Op.Plus, Dtype.Long,
                                             Const (Dtype.Long, 4L),
                                             Addr (Name (Dtype.Long, "a")))),
                               Const (Dtype.Long, 9L)));
                Stree (Assign (Dtype.Long, Dreg (Dtype.Long, 6),
                               Addr (Name (Dtype.Long, "a"))));
                Stree (Assign (Dtype.Long, Name (Dtype.Long, "s"),
                               Binop (Op.Plus, Dtype.Long,
                                      Autoinc (Dtype.Long, 6),
                                      Autoinc (Dtype.Long, 6))));
                Stree (Assign (Dtype.Long, Dreg (Dtype.Long, Regconv.r0),
                               Name (Dtype.Long, "s")));
                Sret;
              ];
          };
        ];
    }
  in
  let outcome = Interp.run program ~entry:"main" [] in
  Alcotest.check value "7+9" (Interp.VInt 16L) outcome.Interp.return_value

let suite =
  [
    Alcotest.test_case "dtype sizes" `Quick test_dtype_sizes;
    Alcotest.test_case "dtype suffix roundtrip" `Quick test_dtype_suffix_roundtrip;
    Alcotest.test_case "dtype widest" `Quick test_dtype_widest;
    Alcotest.test_case "reverse binops" `Quick test_reverse_binops;
    Alcotest.test_case "relop negate/swap involutions" `Quick
      test_relop_negate_involution;
    Alcotest.test_case "relop semantics" `Quick test_relop_semantics;
    Alcotest.test_case "wrap" `Quick test_wrap;
    Alcotest.test_case "tree size" `Quick test_tree_size;
    Alcotest.test_case "tree dtype" `Quick test_tree_dtype;
    Alcotest.test_case "check accepts appendix tree" `Quick
      test_tree_check_accepts;
    Alcotest.test_case "check rejects bad assign" `Quick
      test_tree_check_rejects_bad_assign;
    Alcotest.test_case "check rejects embedded call" `Quick
      test_tree_check_rejects_embedded_call;
    Alcotest.test_case "map_bottom_up" `Quick test_map_bottom_up;
    Alcotest.test_case "linearize appendix" `Quick test_linearize_names;
    Alcotest.test_case "linearize special constants" `Quick
      test_linearize_special_constants;
    Alcotest.test_case "linearize cbranch" `Quick test_linearize_cbranch;
    Alcotest.test_case "eval arithmetic" `Quick test_eval_arith;
    Alcotest.test_case "eval division by zero" `Quick
      test_eval_division_by_zero;
    Alcotest.test_case "eval conversions" `Quick test_eval_conv;
    Alcotest.test_case "run loop program" `Quick test_run_loop_program;
    Alcotest.test_case "run recursion" `Quick test_run_recursion;
    Alcotest.test_case "print output" `Quick test_run_print_output;
    Alcotest.test_case "step budget" `Quick test_step_budget;
    Alcotest.test_case "autoincrement side effect" `Quick
      test_autoinc_side_effect;
  ]
