(* Tests for the Phase 1 tree transformations (paper section 5.1):
   explicit control flow, operator expansion / commutativity ordering,
   evaluation ordering, and semantic preservation of each phase under
   the reference interpreter. *)

open Gg_ir
open Gg_transform
module T = Tree

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lconst n = T.Const (Dtype.Long, n)
let name s = T.Name (Dtype.Long, s)

let func_of body =
  {
    T.fname = "t";
    formals = [];
    ret_type = Dtype.Long;
    locals_size = 0;
    body;
  }

let run_phase1a body =
  let f = func_of body in
  let ctx = Context.create f in
  Phase1a.run ctx body

(* -- Phase 1a: structure --------------------------------------------------- *)

let assert_clean_after_1a body =
  List.iter
    (fun s ->
      match s with
      | T.Stree t -> (
        match T.check ~after_phase1:true t with
        | Ok () -> ()
        | Error m -> Alcotest.failf "dirty tree after 1a: %s (%a)" m T.pp t)
      | _ -> ())
    body

let test_1a_extracts_embedded_call () =
  let tree =
    T.Assign
      ( Dtype.Long,
        name "x",
        T.Binop (Op.Plus, Dtype.Long, name "y",
                 T.Call (Dtype.Long, "f", [ lconst 1L ])) )
  in
  let out = run_phase1a [ T.Stree tree ] in
  assert_clean_after_1a out;
  check_bool "has an Scall" true
    (List.exists (function T.Scall ("f", 1, _) -> true | _ -> false) out);
  check_bool "has an Arg push" true
    (List.exists
       (function T.Stree (T.Arg (Dtype.Long, _)) -> true | _ -> false)
       out)

let test_1a_call_statement () =
  let out = run_phase1a [ T.Stree (T.Call (Dtype.Long, "f", [ lconst 7L ])) ] in
  assert_clean_after_1a out;
  (* result discarded: no temp assignment from r0 *)
  check_bool "no r0 copy" true
    (not
       (List.exists
          (function
            | T.Stree (T.Assign (_, T.Temp _, T.Dreg _)) -> true
            | _ -> false)
          out))

let test_1a_args_pushed_right_to_left () =
  let out =
    run_phase1a
      [ T.Stree (T.Call (Dtype.Long, "f", [ lconst 1L; lconst 2L ])) ]
  in
  let args =
    List.filter_map
      (function
        | T.Stree (T.Arg (_, T.Const (_, n))) -> Some n
        | _ -> None)
      out
  in
  Alcotest.(check (list int64)) "second argument pushed first" [ 2L; 1L ] args

let test_1a_relval_becomes_branches () =
  let tree =
    T.Assign
      (Dtype.Long, name "x",
       T.Relval (Op.Lt, Dtype.Signed, Dtype.Long, name "a", name "b"))
  in
  let out = run_phase1a [ T.Stree tree ] in
  assert_clean_after_1a out;
  check_bool "has a conditional branch" true
    (List.exists
       (function T.Stree (T.Cbranch _) -> true | _ -> false)
       out);
  check_bool "has labels" true
    (List.exists (function T.Slabel _ -> true | _ -> false) out)

let test_1a_land_shortcircuit_structure () =
  (* if (a && b) goto L: the second test must be reachable only when the
     first succeeds *)
  let tree =
    T.Cbranch
      (Op.Ne, Dtype.Signed, Dtype.Long,
       T.Land (name "a", name "b"), lconst 0L, 99)
  in
  let out = run_phase1a [ T.Stree tree ] in
  let branches =
    List.filter_map
      (function T.Stree (T.Cbranch (r, _, _, _, _, l)) -> Some (r, l) | _ -> None)
      out
  in
  check_int "two branches" 2 (List.length branches);
  (* the a-test skips past the b-test on failure, so its target is not
     the && target *)
  (match branches with
  | [ (r1, l1); (r2, l2) ] ->
    check_bool "first test inverted" true (r1 = Op.Eq);
    check_bool "second targets 99" true (r2 = Op.Ne && l2 = 99);
    check_bool "first skips" true (l1 <> 99)
  | _ -> Alcotest.fail "unexpected branch shape")

let test_1a_nested_assign_extracted () =
  (* x = (y = 5) + 1 *)
  let tree =
    T.Assign
      (Dtype.Long, name "x",
       T.Binop (Op.Plus, Dtype.Long,
                T.Assign (Dtype.Long, name "y", lconst 5L), lconst 1L))
  in
  let out = run_phase1a [ T.Stree tree ] in
  assert_clean_after_1a out;
  check_int "three statements" 3 (List.length out)

(* -- Phase 1a: semantics (interpreter agreement) --------------------------- *)

let globals = [ ("a", Dtype.Long, 4); ("b", Dtype.Long, 4); ("x", Dtype.Long, 4);
                ("y", Dtype.Long, 4) ]

let run_with_body body =
  let prog =
    { T.globals; funcs = [ { (func_of body) with T.fname = "main" } ] }
  in
  Interp.run prog ~entry:"main" []

let seed_globals =
  [
    T.Stree (T.Assign (Dtype.Long, name "a", lconst 6L));
    T.Stree (T.Assign (Dtype.Long, name "b", lconst 2L));
  ]

let test_phase_semantics_preserved () =
  (* a selection of trees with rich control flow, run before and after
     each transformation pipeline *)
  let exprs =
    [
      T.Land (name "a", name "b");
      T.Lor (T.Lnot (name "a"), name "b");
      T.Select (Dtype.Long, T.Relval (Op.Gt, Dtype.Signed, Dtype.Long, name "a", name "b"),
                T.Binop (Op.Mul, Dtype.Long, name "a", lconst 3L),
                T.Binop (Op.Plus, Dtype.Long, name "b", lconst 1L));
      T.Binop (Op.Minus, Dtype.Long, name "a", lconst 5L);
      T.Binop (Op.Lsh, Dtype.Long, name "a", lconst 3L);
      T.Binop (Op.Plus, Dtype.Long, name "a",
               T.Binop (Op.Mul, Dtype.Long, name "b",
                        T.Binop (Op.Plus, Dtype.Long, name "a", name "b")));
    ]
  in
  List.iter
    (fun e ->
      let body =
        seed_globals
        @ [
            T.Stree (T.Assign (Dtype.Long, name "x", e));
            T.Stree (T.Assign (Dtype.Long, T.Dreg (Dtype.Long, Regconv.r0), name "x"));
            T.Sret;
          ]
      in
      let before = run_with_body body in
      let f = func_of body in
      let tr = Transform.run f in
      let after = run_with_body tr.Transform.func.T.body in
      Alcotest.check
        (Alcotest.testable Interp.pp_value Interp.value_equal)
        (Fmt.str "%a" T.pp e) before.Interp.return_value
        after.Interp.return_value)
    exprs

(* -- Phase 1b -------------------------------------------------------------- *)

let test_1b_shift_to_multiply () =
  let t = T.Binop (Op.Lsh, Dtype.Long, name "a", lconst 3L) in
  match Phase1b.rewrite_tree t with
  | T.Binop (Op.Mul, _, T.Const (_, 8L), T.Name _) -> ()
  | other -> Alcotest.failf "got %a" T.pp other

let test_1b_sub_const_to_add () =
  let t = T.Binop (Op.Minus, Dtype.Long, name "a", lconst 5L) in
  match Phase1b.rewrite_tree t with
  | T.Binop (Op.Plus, _, T.Const (_, -5L), T.Name _) -> ()
  | other -> Alcotest.failf "got %a" T.pp other

let test_1b_const_to_left () =
  let t = T.Binop (Op.Plus, Dtype.Long, name "a", lconst 7L) in
  match Phase1b.rewrite_tree t with
  | T.Binop (Op.Plus, _, T.Const (_, 7L), T.Name _) -> ()
  | other -> Alcotest.failf "got %a" T.pp other

let test_1b_addr_name_to_left () =
  let t =
    T.Binop (Op.Plus, Dtype.Long, name "i", T.Addr (T.Name (Dtype.Long, "arr")))
  in
  match Phase1b.rewrite_tree t with
  | T.Binop (Op.Plus, _, T.Addr _, T.Name _) -> ()
  | other -> Alcotest.failf "got %a" T.pp other

let test_1b_addr_indir_collapses () =
  let t = T.Addr (T.Indir (Dtype.Long, name "p")) in
  match Phase1b.rewrite_tree t with
  | T.Name (Dtype.Long, "p") -> ()
  | other -> Alcotest.failf "got %a" T.pp other

let test_1b_identities () =
  let z = T.Binop (Op.Plus, Dtype.Long, name "a", lconst 0L) in
  (match Phase1b.rewrite_tree z with
  | T.Name _ -> ()
  | other -> Alcotest.failf "plus zero: %a" T.pp other);
  let one = T.Binop (Op.Mul, Dtype.Long, lconst 1L, name "a") in
  match Phase1b.rewrite_tree one with
  | T.Name _ -> ()
  | other -> Alcotest.failf "times one: %a" T.pp other

let test_1b_semantics_preserved_random () =
  (* random integer trees: 1b rewriting never changes the value *)
  let gen =
    let open QCheck.Gen in
    let leaf =
      oneof
        [
          map (fun n -> lconst (Int64.of_int (n mod 50))) int;
          return (name "a");
          return (name "b");
        ]
    in
    let node self n =
      if n = 0 then leaf
      else
        oneof
          [
            leaf;
            map2
              (fun op (a, b) -> T.Binop (op, Dtype.Long, a, b))
              (oneofl [ Op.Plus; Op.Minus; Op.Mul; Op.Lsh; Op.And; Op.Xor ])
              (pair (self (n / 2)) (self (n / 2)));
          ]
    in
    sized_size (QCheck.Gen.int_range 0 20) (fix node)
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"1b preserves value" ~count:300 (QCheck.make gen)
       (fun e ->
         let run e =
           let body =
             seed_globals
             @ [
                 T.Stree (T.Assign (Dtype.Long, T.Dreg (Dtype.Long, Regconv.r0), e));
                 T.Sret;
               ]
           in
           (run_with_body body).Interp.return_value
         in
         Interp.value_equal (run e) (run (Phase1b.rewrite_tree e))))

(* -- Phase 1c -------------------------------------------------------------- *)

let test_1c_swaps_heavier_right () =
  (* left is itself a computation (not a leaf) but lighter than right *)
  let light = T.Binop (Op.Mul, Dtype.Long, name "a", name "b") in
  let heavy =
    T.Binop (Op.Mul, Dtype.Long,
             T.Binop (Op.Plus, Dtype.Long, name "a", name "b"),
             T.Binop (Op.Plus, Dtype.Long, name "b", name "a"))
  in
  let t = T.Binop (Op.Plus, Dtype.Long, light, heavy) in
  let stats = Phase1c.fresh_stats () in
  let f = func_of [ T.Stree (T.Assign (Dtype.Long, name "x", t)) ] in
  let ctx = Context.create f in
  let out = Phase1c.run ~stats ctx f.T.body in
  check_int "one commutative swap" 1 stats.Phase1c.swapped_commutative;
  match out with
  | [ T.Stree (T.Assign (_, _, T.Binop (Op.Plus, _, T.Binop (Op.Mul, _, T.Binop _, _), _))) ] ->
    ()
  | _ -> Alcotest.fail "operands not swapped"

let test_1c_leaf_left_not_swapped () =
  (* a leaf left operand is already free: no swap *)
  let heavy = T.Binop (Op.Mul, Dtype.Long, name "a", name "b") in
  let t = T.Binop (Op.Plus, Dtype.Long, name "a", heavy) in
  let stats = Phase1c.fresh_stats () in
  let f = func_of [ T.Stree (T.Assign (Dtype.Long, name "x", t)) ] in
  let ctx = Context.create f in
  let _ = Phase1c.run ~stats ctx f.T.body in
  check_int "no swaps" 0 stats.Phase1c.swapped_commutative

let test_1c_reverse_operator_introduced () =
  let heavy =
    T.Binop (Op.Plus, Dtype.Long, T.Binop (Op.Plus, Dtype.Long, name "a", name "b"), name "a")
  in
  let t = T.Binop (Op.Minus, Dtype.Long,
                   T.Binop (Op.Plus, Dtype.Long, name "a", name "b"), heavy) in
  let stats = Phase1c.fresh_stats () in
  let f = func_of [ T.Stree (T.Assign (Dtype.Long, name "x", t)) ] in
  let ctx = Context.create f in
  let out = Phase1c.run ~stats ctx f.T.body in
  check_int "one reverse swap" 1 stats.Phase1c.swapped_reverse;
  match out with
  | [ T.Stree (T.Assign (_, _, T.Binop (Op.Rminus, _, _, _))) ] -> ()
  | _ -> Alcotest.fail "Rminus not introduced"

let test_1c_no_reverse_when_disabled () =
  let heavy =
    T.Binop (Op.Plus, Dtype.Long, T.Binop (Op.Plus, Dtype.Long, name "a", name "b"), name "a")
  in
  let t = T.Binop (Op.Minus, Dtype.Long,
                   T.Binop (Op.Plus, Dtype.Long, name "a", name "b"), heavy) in
  let stats = Phase1c.fresh_stats () in
  let f = func_of [ T.Stree (T.Assign (Dtype.Long, name "x", t)) ] in
  let ctx = Context.create f in
  let _ = Phase1c.run ~reverse_ops:false ~stats ctx f.T.body in
  check_int "no reverse swaps" 0 stats.Phase1c.swapped_reverse

let test_1c_leaves_address_shapes () =
  (* Plus (Const, big) must not swap: the displacement patterns need the
     constant on the left *)
  let t =
    T.Binop (Op.Plus, Dtype.Long, lconst 4L,
             T.Binop (Op.Mul, Dtype.Long, name "a", name "b"))
  in
  let stats = Phase1c.fresh_stats () in
  let f = func_of [ T.Stree (T.Assign (Dtype.Long, name "x", t)) ] in
  let ctx = Context.create f in
  let out = Phase1c.run ~stats ctx f.T.body in
  match out with
  | [ T.Stree (T.Assign (_, _, T.Binop (Op.Plus, _, T.Const (_, 4L), _))) ] ->
    ()
  | _ -> Alcotest.fail "constant moved off the left"

let test_1c_register_need () =
  check_int "leaf" 0 (Phase1c.register_need (name "a"));
  check_int "binop of leaves" 1
    (Phase1c.register_need (T.Binop (Op.Plus, Dtype.Long, name "a", name "b")));
  let balanced d =
    let rec go n =
      if n = 0 then name "a"
      else T.Binop (Op.Plus, Dtype.Long, go (n - 1), go (n - 1))
    in
    go d
  in
  check_int "balanced depth 3" 3 (Phase1c.register_need (balanced 3))

let test_1c_spill_guard_splits () =
  let stats = Phase1c.fresh_stats () in
  let rec balanced n =
    if n = 0 then T.Binop (Op.Div, Dtype.Long, name "a", name "b")
    else T.Binop (Op.Plus, Dtype.Long, balanced (n - 1), balanced (n - 1))
  in
  let t = T.Assign (Dtype.Long, name "x", balanced 6) in
  let f = func_of [ T.Stree t ] in
  let ctx = Context.create f in
  let out = Phase1c.run ~stats ctx [ T.Stree t ] in
  check_bool "splits happened" true (stats.Phase1c.spill_splits > 0);
  List.iter
    (fun s ->
      match s with
      | T.Stree tr ->
        check_bool "all trees within register budget" true
          (Phase1c.register_need tr <= 5)
      | _ -> ())
    out

let suite =
  [
    Alcotest.test_case "1a extracts embedded calls" `Quick
      test_1a_extracts_embedded_call;
    Alcotest.test_case "1a bare call statement" `Quick test_1a_call_statement;
    Alcotest.test_case "1a pushes args right to left" `Quick
      test_1a_args_pushed_right_to_left;
    Alcotest.test_case "1a lowers comparison values" `Quick
      test_1a_relval_becomes_branches;
    Alcotest.test_case "1a short-circuit branch structure" `Quick
      test_1a_land_shortcircuit_structure;
    Alcotest.test_case "1a extracts nested assignment" `Quick
      test_1a_nested_assign_extracted;
    Alcotest.test_case "transforms preserve semantics" `Quick
      test_phase_semantics_preserved;
    Alcotest.test_case "1b shift to multiply" `Quick test_1b_shift_to_multiply;
    Alcotest.test_case "1b subtract-const to add" `Quick
      test_1b_sub_const_to_add;
    Alcotest.test_case "1b constant to left" `Quick test_1b_const_to_left;
    Alcotest.test_case "1b symbol address to left" `Quick
      test_1b_addr_name_to_left;
    Alcotest.test_case "1b Addr/Indir collapse" `Quick
      test_1b_addr_indir_collapses;
    Alcotest.test_case "1b identities" `Quick test_1b_identities;
    Alcotest.test_case "1b preserves value (random)" `Quick
      test_1b_semantics_preserved_random;
    Alcotest.test_case "1c swaps heavier right operand" `Quick
      test_1c_swaps_heavier_right;
    Alcotest.test_case "1c leaf left not swapped" `Quick
      test_1c_leaf_left_not_swapped;
    Alcotest.test_case "1c introduces reverse operators" `Quick
      test_1c_reverse_operator_introduced;
    Alcotest.test_case "1c respects reverse_ops:false" `Quick
      test_1c_no_reverse_when_disabled;
    Alcotest.test_case "1c keeps address shapes" `Quick
      test_1c_leaves_address_shapes;
    Alcotest.test_case "1c register need" `Quick test_1c_register_need;
    Alcotest.test_case "1c spill guard splits" `Quick
      test_1c_spill_guard_splits;
  ]
