test/suite_regmgr.ml: Alcotest Desc Dtype Frame Gg_codegen Gg_ir Gg_vax Int64 List Regmgr
