test/suite_vaxsim.ml: Alcotest Asmparse Dtype Gg_ir Gg_vax Gg_vaxsim Int64 Interp List Machine QCheck QCheck_alcotest
