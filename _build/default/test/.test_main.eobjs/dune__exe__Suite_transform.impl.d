test/suite_transform.ml: Alcotest Context Dtype Fmt Gg_ir Gg_transform Int64 Interp List Op Phase1a Phase1b Phase1c QCheck Regconv Transform Tree
