test/suite_vax.ml: Alcotest Gg_grammar Gg_ir Gg_tablegen Gg_vax Grammar_def Insn Insn_table Lazy List Mode Regconv Treelang
