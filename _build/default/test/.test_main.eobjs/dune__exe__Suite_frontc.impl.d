test/suite_frontc.ml: Alcotest Ast Corpus Dtype Fmt Gg_frontc Gg_ir Interp Lexer List Op Parser Sema Tree
