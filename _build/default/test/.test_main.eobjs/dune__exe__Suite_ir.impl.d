test/suite_ir.ml: Alcotest Dtype Fmt Gg_ir Int64 Interp Label List Op Regconv Termname Tree
