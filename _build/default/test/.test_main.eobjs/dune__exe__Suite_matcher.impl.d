test/suite_matcher.ml: Alcotest Fmt Gg_ir Gg_matcher Gg_tablegen Int64 Lazy List Matcher QCheck QCheck_alcotest String Tables Toy
