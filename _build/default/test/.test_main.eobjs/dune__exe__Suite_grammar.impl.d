test/suite_grammar.ml: Action Alcotest Fmt Gg_grammar Gg_ir Gg_vax Grammar List Mdg Schema String Symtab Toy
