test/suite_codegen.ml: Alcotest Dtype Fmt Gg_codegen Gg_frontc Gg_ir Gg_matcher Gg_tablegen Gg_vax Gg_vaxsim Int Int64 Lazy List Op Regconv String Tree
