test/suite_pcc.ml: Alcotest Dtype Fmt Gg_codegen Gg_frontc Gg_ir Gg_pcc Gg_vax List Op String Tree
