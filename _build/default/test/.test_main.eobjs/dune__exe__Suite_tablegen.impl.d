test/suite_tablegen.ml: Action Alcotest Array Automaton Checks Filename First Fmt Gg_grammar Gg_ir Gg_tablegen Gg_vax Grammar Lazy List Lr0 Naive Packed String Symtab Sys Tables Toy
