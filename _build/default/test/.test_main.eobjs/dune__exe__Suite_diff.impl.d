test/suite_diff.ml: Alcotest Fmt Gg_codegen Gg_frontc Gg_ir Gg_pcc Gg_transform Gg_vax Gg_vaxsim Interp List Tree
