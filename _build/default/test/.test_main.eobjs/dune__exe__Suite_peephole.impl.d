test/suite_peephole.ml: Alcotest Gg_codegen Gg_vax List Peephole String
