test/toy.ml: Array Dtype Fmt Gg_grammar Gg_ir Gg_matcher List Op String Tree
