(* Differential tests for the packed (production) table representation:
   the full replicated VAX grammar corpus through dense and packed
   tables must produce identical values, traces and Reject errors; plus
   round-trip save/load, stale-grammar rejection, and the cache. *)

open Gg_grammar
open Gg_tablegen
open Gg_matcher
module Tree = Gg_ir.Tree
module Termname = Gg_ir.Termname
module Transform = Gg_transform.Transform
module Grammar_def = Gg_vax.Grammar_def
module Driver = Gg_codegen.Driver
module Sema = Gg_frontc.Sema
module Corpus = Gg_frontc.Corpus

let vax_grammar = lazy (Grammar_def.grammar Grammar_def.default)
let dense = lazy (Tables.build (Lazy.force vax_grammar))
let packed = lazy (Packed.pack (Lazy.force dense))
let dense_engine = lazy (Matcher.engine (Lazy.force dense))

let packed_engine =
  lazy
    (Matcher.packed_engine ~grammar:(Lazy.force vax_grammar)
       (Lazy.force packed))

let null_cb : unit Matcher.callbacks =
  {
    Matcher.on_shift = (fun _ -> ());
    on_reduce = (fun _ _ -> ());
    choose = (fun _ _ -> 0);
  }

(* every matcher-ready statement tree of a compiled program *)
let stmt_trees prog =
  List.concat_map
    (fun (f : Tree.func) ->
      let tr = Transform.run f in
      List.filter_map
        (function Tree.Stree t -> Some t | _ -> None)
        tr.Transform.func.Tree.body)
    prog.Tree.funcs

let corpus_trees =
  lazy
    (let fixed =
       List.concat_map
         (fun (_, src) -> stmt_trees (Sema.compile src))
         Corpus.fixed_programs
     in
     let random =
       List.concat_map
         (fun seed ->
           stmt_trees
             (Sema.lower_program
                (Corpus.program ~seed ~functions:2 ~stmts_per_function:8)))
         [ 1; 2; 3; 4; 5 ]
     in
     (* the typed-tree corpus reaches byte/word/float and conversion
        productions that C's promotion rules bypass *)
     let typed =
       List.concat_map
         (fun seed -> stmt_trees (Gg_ir.Treegen.program ~seed ~stmts:12))
         [ 1; 2; 3; 4; 5; 6; 7; 8 ]
     in
     fixed @ random @ typed)

let run_outcome engine tokens =
  match Matcher.run_engine ~trace:true engine null_cb tokens with
  | outcome -> Ok outcome.Matcher.trace
  | exception Matcher.Reject e -> Error e

let check_same_outcome what tokens =
  let d = run_outcome (Lazy.force dense_engine) tokens in
  let p = run_outcome (Lazy.force packed_engine) tokens in
  match (d, p) with
  | Ok dt, Ok pt ->
    if dt <> pt then Alcotest.failf "%s: traces differ" what
  | Error de, Error pe ->
    if de.Matcher.at <> pe.Matcher.at then
      Alcotest.failf "%s: error position differs (dense %d, packed %d)" what
        de.Matcher.at pe.Matcher.at;
    if de.Matcher.token <> pe.Matcher.token then
      Alcotest.failf "%s: error token differs (dense %s, packed %s)" what
        de.Matcher.token pe.Matcher.token;
    if de.Matcher.state <> pe.Matcher.state then
      Alcotest.failf "%s: error state differs (dense %d, packed %d)" what
        de.Matcher.state pe.Matcher.state;
    if de.Matcher.expected <> pe.Matcher.expected then
      Alcotest.failf "%s: expected sets differ (dense %a, packed %a)" what
        Fmt.(Dump.list string)
        de.Matcher.expected
        Fmt.(Dump.list string)
        pe.Matcher.expected
  | Ok _, Error pe ->
    Alcotest.failf "%s: packed rejected (%a) where dense accepted" what
      Matcher.pp_error pe
  | Error de, Ok _ ->
    Alcotest.failf "%s: dense rejected (%a) where packed accepted" what
      Matcher.pp_error de

(* -- action-function parity on the full VAX tables ------------------------- *)

let test_vax_action_parity () =
  let t = Lazy.force dense in
  let p = Lazy.force packed in
  let g = Lazy.force vax_grammar in
  let nt = Symtab.n_terms g.Grammar.symtab in
  let nn = Symtab.n_nonterms g.Grammar.symtab in
  for s = 0 to Tables.n_states t - 1 do
    for a = 0 to nt do
      if t.Tables.action.(s).(a) <> Packed.action p s a then
        Alcotest.failf "action (%d, %d) differs" s a
    done;
    if Tables.expected t s <> Packed.expected p s then
      Alcotest.failf "expected set of state %d differs" s;
    for n = 0 to nn - 1 do
      if t.Tables.goto_.(s).(n) <> Packed.goto p s n then
        Alcotest.failf "goto (%d, %d) differs" s n
    done
  done

(* -- the corpus: identical traces on every statement tree ------------------ *)

let test_corpus_traces () =
  let trees = Lazy.force corpus_trees in
  Alcotest.(check bool) "corpus is non-trivial" true (List.length trees > 100);
  List.iteri
    (fun i tree ->
      check_same_outcome (Fmt.str "tree %d" i) (Termname.linearize tree))
    trees

(* -- identical generated code through the full driver ---------------------- *)

let test_fixed_programs_same_assembly () =
  List.iter
    (fun (name, src) ->
      let prog = Sema.compile src in
      let via_dense =
        (Driver.compile_program
           ~tables:(Driver.of_engine ~backend:Gg_codegen.Backend.vax
                      (Lazy.force dense_engine))
           prog)
          .Driver.assembly
      in
      let via_packed =
        (Driver.compile_program
           ~tables:(Driver.of_engine ~backend:Gg_codegen.Backend.vax
                      (Lazy.force packed_engine))
           prog)
          .Driver.assembly
      in
      Alcotest.(check string) (Fmt.str "%s assembly" name) via_dense via_packed)
    Corpus.fixed_programs

(* -- error parity on broken inputs ----------------------------------------- *)

let broken_inputs () =
  (* truncations and corruptions of real linearisations: dense and
     packed must report the same syntactic block at the same token with
     the same expected set *)
  let trees = Lazy.force corpus_trees in
  let some_trees = List.filteri (fun i _ -> i mod 7 = 0) trees in
  List.concat_map
    (fun tree ->
      let tokens = Termname.linearize tree in
      let n = List.length tokens in
      let take k = List.filteri (fun i _ -> i < k) tokens in
      let swap k =
        (* duplicate the first token into position k: usually illegal *)
        List.mapi (fun i t -> if i = k then List.hd tokens else t) tokens
      in
      [ take (n / 2); take (n - 1); swap (n / 2); swap (n - 1) ])
    some_trees

let test_error_parity () =
  List.iteri
    (fun i tokens -> check_same_outcome (Fmt.str "broken input %d" i) tokens)
    (broken_inputs ())

(* -- save / load round trip ------------------------------------------------- *)

let test_vax_save_load_roundtrip () =
  let g = Lazy.force vax_grammar in
  let p = Lazy.force packed in
  let path = Filename.temp_file "ggcg" ".tbl" in
  Packed.save p path;
  let loaded = Packed.load g path in
  Sys.remove path;
  let t = Lazy.force dense in
  let nt = Symtab.n_terms g.Grammar.symtab in
  for s = 0 to Tables.n_states t - 1 do
    for a = 0 to nt do
      if Packed.action p s a <> Packed.action loaded s a then
        Alcotest.failf "loaded action (%d, %d) differs" s a
    done
  done;
  Alcotest.(check string) "digest survives" (Packed.digest p)
    (Packed.digest loaded)

let test_stale_grammar_rejected () =
  (* edit the grammar without changing any symbol counts: the old
     save-format validated only n_terms/n_nonterms and loaded wrong
     instructions silently; v2 must reject on the digest *)
  let edited =
    List.map
      (fun (lhs, rhs, action, note) ->
        if note = "addl3 a,b,d" then (lhs, rhs, action, "subl3 a,b,d")
        else (lhs, rhs, action, note))
      Toy.specs
  in
  let g = Toy.grammar in
  let g' = Grammar.make_exn ~start:"stmt" edited in
  Alcotest.(check bool)
    "same symbol counts" true
    (Symtab.n_terms g.Grammar.symtab = Symtab.n_terms g'.Grammar.symtab
    && Symtab.n_nonterms g.Grammar.symtab = Symtab.n_nonterms g'.Grammar.symtab);
  Alcotest.(check bool)
    "digests differ" true
    (Grammar.digest g <> Grammar.digest g');
  let p = Packed.pack (Tables.build g) in
  let path = Filename.temp_file "ggcg" ".tbl" in
  Packed.save p path;
  (match Packed.load g' path with
  | exception Failure msg ->
    Alcotest.(check bool)
      (Fmt.str "stale message names both digests: %s" msg)
      true
      (let has d =
         let n = String.length msg and k = String.length d in
         let rec go i = i + k <= n && (String.sub msg i k = d || go (i + 1)) in
         go 0
       in
       has (Grammar.digest g) && has (Grammar.digest g'))
  | _ -> Alcotest.fail "stale tables accepted");
  (* the unedited grammar still loads *)
  ignore (Packed.load g path);
  Sys.remove path

let test_corrupt_file_rejected () =
  let path = Filename.temp_file "ggcg" ".tbl" in
  let oc = open_out_bin path in
  output_string oc "ggcg-tables-v1 old junk";
  close_out oc;
  (match Packed.load Toy.grammar path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "v1/garbage file accepted");
  let oc = open_out_bin path in
  output_string oc "ggcg-tables-v2truncated";
  close_out oc;
  (match Packed.load Toy.grammar path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "truncated file accepted");
  Sys.remove path

(* -- the cache -------------------------------------------------------------- *)

let test_cache_miss_then_hit () =
  let dir = Filename.temp_file "ggcg-cache" "" in
  Sys.remove dir;
  let g = Toy.grammar in
  Alcotest.(check bool) "cold cache" true (Cache.load ~dir g = None);
  let p1 = Cache.load_or_build ~dir g in
  Alcotest.(check bool) "file created" true (Sys.file_exists (Cache.path ~dir g));
  (match Cache.load ~dir g with
  | None -> Alcotest.fail "warm cache missed"
  | Some p2 ->
    Alcotest.(check string) "same digest" (Packed.digest p1) (Packed.digest p2));
  (* an edited grammar misses (different digest -> different file) *)
  let edited =
    ("stmt", [ "Assign.l"; "lval.l"; "Mul.l"; "rval.l"; "rval.l" ],
     Gg_grammar.Action.Emit "mul.l", "mull3 a,b,d")
    :: Toy.specs
  in
  let g' = Grammar.make_exn ~start:"stmt" edited in
  Alcotest.(check bool) "edited grammar misses" true (Cache.load ~dir g' = None);
  (* cleanup *)
  Sys.remove (Cache.path ~dir g);
  Sys.rmdir dir

let test_cache_target_keys () =
  (* the retargeting regression: the same grammar cached for two
     targets must use distinct keys — a stale vax table must never be
     served for a risc request — and clear-stale must respect every
     target's live entry *)
  let dir = Filename.temp_file "ggcg-cache" "" in
  Sys.remove dir;
  let g = Toy.grammar in
  let vax_path = Cache.path ~dir ~target:"vax" g in
  let risc_path = Cache.path ~dir ~target:"risc" g in
  Alcotest.(check bool) "distinct files per target" false (vax_path = risc_path);
  let p = Cache.load_or_build ~dir ~target:"vax" g in
  Alcotest.(check bool) "vax entry on disk" true (Sys.file_exists vax_path);
  Alcotest.(check bool) "vax entry never serves a risc request" true
    (Cache.load ~dir ~target:"risc" g = None);
  ignore (Cache.store ~dir ~target:"risc" g p : bool);
  (match Cache.load ~dir ~target:"risc" g with
  | None -> Alcotest.fail "risc entry missed after store"
  | Some p2 ->
    Alcotest.(check string) "same digest" (Packed.digest p) (Packed.digest p2));
  (* both targets live: a clear pass removes nothing *)
  let removed = Cache.clear_stale ~dir [ ("vax", g); ("risc", g) ] in
  Alcotest.(check int) "both live entries kept" 0 (List.length removed);
  (* only vax live: the risc entry is stale and evicted, vax kept *)
  let removed = Cache.clear_stale ~dir [ ("vax", g) ] in
  Alcotest.(check bool) "risc entry evicted" true
    (List.exists (fun (f, _) -> f = risc_path) removed);
  Alcotest.(check bool) "vax entry kept" true (Sys.file_exists vax_path);
  Alcotest.(check bool) "risc entry gone" false (Sys.file_exists risc_path);
  Sys.remove vax_path;
  Sys.rmdir dir

let suite =
  [
    Alcotest.test_case "VAX action/goto/expected parity" `Quick
      test_vax_action_parity;
    Alcotest.test_case "corpus traces identical" `Slow test_corpus_traces;
    Alcotest.test_case "fixed programs compile identically" `Slow
      test_fixed_programs_same_assembly;
    Alcotest.test_case "error parity on broken inputs" `Slow test_error_parity;
    Alcotest.test_case "VAX save/load round trip" `Quick
      test_vax_save_load_roundtrip;
    Alcotest.test_case "stale grammar rejected on load" `Quick
      test_stale_grammar_rejected;
    Alcotest.test_case "corrupt and v1 files rejected" `Quick
      test_corrupt_file_rejected;
    Alcotest.test_case "cache: miss, store, hit, edited-grammar miss" `Quick
      test_cache_miss_then_hit;
    Alcotest.test_case "cache: per-target keys never collide" `Quick
      test_cache_target_keys;
  ]
