(* Tests for the mini-C front end: lexer, parser, semantic checks, and
   the shapes of the lowered IR (they must match what the machine
   grammar's patterns expect). *)

open Gg_ir
open Gg_frontc
module T = Tree

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let value = Alcotest.testable Interp.pp_value Interp.value_equal

(* -- lexer ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let lx = Lexer.create "int x = 0x1f + 2.5; // comment\nif(x){}" in
  let rec drain acc =
    match Lexer.next lx with
    | Lexer.EOF -> List.rev acc
    | t -> drain (t :: acc)
  in
  match drain [] with
  | Lexer.KW "int" :: Lexer.IDENT "x" :: Lexer.PUNCT "=" :: Lexer.INT 31L
    :: Lexer.PUNCT "+" :: Lexer.FLOAT 2.5 :: Lexer.PUNCT ";" :: Lexer.KW "if"
    :: _ ->
    ()
  | ts -> Alcotest.failf "unexpected tokens: %a" Fmt.(list ~sep:sp Lexer.pp_token) ts

let test_lexer_longest_match () =
  let lx = Lexer.create "a <<= b << c <= d" in
  let rec puncts acc =
    match Lexer.next lx with
    | Lexer.EOF -> List.rev acc
    | Lexer.PUNCT p -> puncts (p :: acc)
    | _ -> puncts acc
  in
  Alcotest.(check (list string)) "operators" [ "<<="; "<<"; "<=" ] (puncts [])

let test_lexer_error () =
  match Lexer.create "int @" with
  | exception Lexer.Lex_error (1, _) -> ()
  | lx -> (
    match Lexer.next lx with
    | exception Lexer.Lex_error (1, _) -> ()
    | _ -> (
      match Lexer.next lx with
      | exception Lexer.Lex_error (1, _) -> ()
      | _ -> Alcotest.fail "@ accepted"))

(* -- parser ----------------------------------------------------------------- *)

let test_parser_precedence () =
  match Parser.parse_expr "1 + 2 * 3" with
  | Ast.Ebin (Ast.Badd, Ast.Eint 1L, Ast.Ebin (Ast.Bmul, Ast.Eint 2L, Ast.Eint 3L)) ->
    ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parser_assoc_right_assign () =
  match Parser.parse_expr "a = b = 1" with
  | Ast.Eassign (Ast.Evar "a", Ast.Eassign (Ast.Evar "b", Ast.Eint 1L)) -> ()
  | _ -> Alcotest.fail "assignment associativity wrong"

let test_parser_ternary_and_logic () =
  match Parser.parse_expr "a && b ? !c : d || e" with
  | Ast.Econd (Ast.Ebin (Ast.Bland, _, _), Ast.Eun (Ast.Unot, _),
               Ast.Ebin (Ast.Blor, _, _)) ->
    ()
  | _ -> Alcotest.fail "ternary shape wrong"

let test_parser_postfix_chain () =
  match Parser.parse_expr "a[i]++" with
  | Ast.Epostincr (true, Ast.Eindex (Ast.Evar "a", Ast.Evar "i")) -> ()
  | _ -> Alcotest.fail "postfix chain wrong"

let test_parser_cast () =
  match Parser.parse_expr "(double) x" with
  | Ast.Ecast (Ast.Tdouble, Ast.Evar "x") -> ()
  | _ -> Alcotest.fail "cast not parsed"

let test_parser_program_shapes () =
  let p =
    Parser.parse_program
      "int g; char buf[10];\nint f(int a, double d) { int x; x = a; return x; }"
  in
  match p with
  | [ Ast.Dglobal ("g", Ast.Tint);
      Ast.Dglobal ("buf", Ast.Tarray (Ast.Tchar, 10));
      Ast.Dfunc f ] ->
    check_int "params" 2 (List.length f.Ast.params);
    check_int "locals" 1 (List.length f.Ast.locals);
    (* the parser interleaves Sline provenance markers with the
       statements proper: both statements sit on source line 2 *)
    let marks, stmts =
      List.partition (function Ast.Sline _ -> true | _ -> false) f.Ast.body
    in
    check_int "stmts" 2 (List.length stmts);
    List.iter
      (function Ast.Sline n -> check_int "line mark" 2 n | _ -> ())
      marks
  | _ -> Alcotest.fail "program shape wrong"

let test_parser_error_reports_line () =
  match Parser.parse_program "int f() {\n  return 1 +;\n}" with
  | exception Parser.Parse_error (2, _) -> ()
  | exception Parser.Parse_error (n, _) -> Alcotest.failf "wrong line %d" n
  | _ -> Alcotest.fail "junk accepted"

(* -- sema / lowering ---------------------------------------------------------- *)

let lower src = Sema.compile src

let main_body src =
  let p = lower src in
  (List.find (fun (f : T.func) -> f.T.fname = "main") p.T.funcs).T.body

let test_sema_local_addressing () =
  (* locals must lower to Indir (Plus Const Dreg-fp), the Appendix shape *)
  let body = main_body "int main() { int x; x = 5; return x; }" in
  check_bool "fp-relative store" true
    (List.exists
       (function
         | T.Stree
             (T.Assign
                (_, T.Indir (_, T.Binop (Op.Plus, _, T.Const _, T.Dreg (_, 13))),
                 _)) ->
           true
         | _ -> false)
       body)

let test_sema_param_addressing () =
  let p = lower "int f(int a) { return a; }" in
  let f = List.hd p.T.funcs in
  check_bool "ap-relative load" true
    (List.exists
       (function
         | T.Stree
             (T.Assign
                (_, T.Dreg _,
                 T.Indir (_, T.Binop (Op.Plus, _, T.Const (_, 4L), T.Dreg (_, 12))))) ->
           true
         | _ -> false)
       f.T.body)

let test_sema_array_shape () =
  (* global array indexing must produce the symindex pattern shape:
     Plus (Addr Name) (Mul Const idx) *)
  let body = main_body "int arr[8]; int main() { int i; i = 2; return arr[i]; }" in
  check_bool "symbolic index shape" true
    (List.exists
       (function
         | T.Stree
             (T.Assign
                (_, T.Dreg _,
                 T.Indir
                   (_, T.Binop (Op.Plus, _, T.Addr (T.Name _),
                                T.Binop (Op.Mul, _, T.Const (_, 4L), _))))) ->
           true
         | _ -> false)
       body)

let test_sema_char_promotion () =
  (* char arithmetic promotes to long with conversions *)
  let body = main_body "char c; int main() { return c + 1; }" in
  check_bool "conversion inserted" true
    (List.exists
       (function
         | T.Stree t ->
           T.fold
             (fun acc n ->
               acc
               || match n with T.Conv (Dtype.Long, Dtype.Byte, _) -> true | _ -> false)
             false t
         | _ -> false)
       body)

let test_sema_unsigned_ops () =
  let body = main_body "unsigned u; int main() { u = u / 3; return 0; }" in
  check_bool "unsigned division operator" true
    (List.exists
       (function
         | T.Stree t ->
           T.fold
             (fun acc n ->
               acc || match n with T.Binop (Op.Udiv, _, _, _) -> true | _ -> false)
             false t
         | _ -> false)
       body)

let test_sema_errors () =
  let expect_error src =
    match lower src with
    | exception Sema.Semantic_error _ -> ()
    | _ -> Alcotest.failf "accepted: %s" src
  in
  expect_error "int main() { return x; }";
  expect_error "int main() { return f(1); }";
  expect_error "int a; int main() { return *a; }";
  expect_error "int main() { 1 = 2; return 0; }";
  expect_error "int arr[4]; int main() { arr = 0; return 0; }";
  expect_error "int main() { break; return 0; }"

(* -- end-to-end under the interpreter ------------------------------------------ *)

let run_main ?(args = []) src = Interp.run (lower src) ~entry:"main" args

let test_exec_controlflow () =
  let out =
    run_main
      {|
int main() {
  int i; int s; s = 0;
  for (i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; }
  do { s++; } while (s < 26);
  while (s > 20) { s -= 2; if (s == 22) break; }
  return s;
}
|}
  in
  (* sum of odds < 10 = 25; do-loop to 26; while: 24, 22 break *)
  Alcotest.check value "control flow" (Interp.VInt 22L) out.Interp.return_value

let test_exec_short_circuit_effects () =
  let out =
    run_main
      {|
int calls;
int bump() { calls++; return 1; }
int main() {
  calls = 0;
  if (0 && bump()) calls += 100;
  if (1 || bump()) calls += 10;
  if (1 && bump()) calls += 1;
  return calls;
}
|}
  in
  (* bump called once: 10 + 1 + 1 = 12 *)
  Alcotest.check value "short circuit" (Interp.VInt 12L) out.Interp.return_value

let test_exec_pointers () =
  let out =
    run_main
      {|
int a[4];
int main() {
  int *p; int s; int i;
  for (i = 0; i < 4; i++) a[i] = i + 1;
  p = &a[1];
  s = *p + p[1] + *(p + 2);
  return s;
}
|}
  in
  Alcotest.check value "pointer arithmetic" (Interp.VInt 9L) out.Interp.return_value

let test_exec_float_mix () =
  let out =
    run_main
      {|
double d; float f;
int main() {
  int i;
  f = 0.5;
  d = 0.0;
  for (i = 0; i < 4; i++) d = d + f * i;
  return (int) (d * 2.0);
}
|}
  in
  (* d = 0.5*(0+1+2+3) = 3.0; return 6 *)
  Alcotest.check value "float mix" (Interp.VInt 6L) out.Interp.return_value

let test_exec_postincr_value () =
  let out =
    run_main
      {|
int main() {
  int i; int a; int b;
  i = 5;
  a = i++;
  b = ++i;
  return a * 100 + b * 10 + i;
}
|}
  in
  (* a=5, b=7, i=7 *)
  Alcotest.check value "incr values" (Interp.VInt 577L) out.Interp.return_value

let test_exec_compound_assign () =
  let out =
    run_main
      {|
int main() {
  int x;
  x = 10;
  x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x <<= 3; x |= 1; x ^= 2; x &= 30;
  return x;
}
|}
  in
  (* 10+5=15-3=12*2=24/4=6%4=2<<3=16|1=17^2=19&30=18 *)
  Alcotest.check value "compound ops" (Interp.VInt 18L) out.Interp.return_value

let test_exec_args () =
  let out =
    run_main ~args:[ Interp.VInt 6L; Interp.VInt 7L ]
      "int main(int a, int b) { return a * b; }"
  in
  Alcotest.check value "6*7" (Interp.VInt 42L) out.Interp.return_value

let test_register_variable_lowering () =
  let p = lower "int main() { register int r; r = 5; return r + 1; }" in
  let f = List.hd p.T.funcs in
  check_bool "Dreg leaf appears" true
    (List.exists
       (function
         | T.Stree t ->
           T.fold
             (fun acc n ->
               acc || match n with T.Dreg (_, 11) -> true | _ -> false)
             false t
         | _ -> false)
       f.T.body);
  (* register is only a hint: doubles fall back to the frame *)
  let p2 = lower "int main() { register double d; d = 1.0; return (int) d; }" in
  let f2 = List.hd p2.T.funcs in
  check_bool "double register var falls back to memory" true
    (f2.T.locals_size >= 8)

let test_register_autoincrement_lowering () =
  let body =
    main_body
      "int a[4]; int main() { register int *p; int s; p = &a[0]; s = *p++; \
       return s; }"
  in
  check_bool "Autoinc node generated" true
    (List.exists
       (function
         | T.Stree t ->
           T.fold
             (fun acc n -> acc || match n with T.Autoinc _ -> true | _ -> false)
             false t
         | _ -> false)
       body)

let test_address_of_register_rejected () =
  match lower "int main() { register int r; return (int) &r; }" with
  | exception Sema.Semantic_error _ -> ()
  | _ -> Alcotest.fail "address of register variable accepted"

let test_corpus_generation_deterministic () =
  let p1 = Corpus.program ~seed:3 ~functions:2 ~stmts_per_function:8 in
  let p2 = Corpus.program ~seed:3 ~functions:2 ~stmts_per_function:8 in
  check_bool "same program for same seed" true (p1 = p2);
  let p3 = Corpus.program ~seed:4 ~functions:2 ~stmts_per_function:8 in
  check_bool "different seed differs" true (p1 <> p3)

let test_corpus_programs_terminate () =
  for seed = 200 to 210 do
    let prog =
      Sema.lower_program (Corpus.program ~seed ~functions:2 ~stmts_per_function:8)
    in
    match Interp.run ~max_steps:2_000_000 prog ~entry:"main" [] with
    | _ -> ()
    | exception Interp.Runtime_error m ->
      Alcotest.failf "seed %d: %s" seed m
  done

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer longest match" `Quick test_lexer_longest_match;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "assignment right-assoc" `Quick
      test_parser_assoc_right_assign;
    Alcotest.test_case "ternary and logic" `Quick test_parser_ternary_and_logic;
    Alcotest.test_case "postfix chain" `Quick test_parser_postfix_chain;
    Alcotest.test_case "cast" `Quick test_parser_cast;
    Alcotest.test_case "program shapes" `Quick test_parser_program_shapes;
    Alcotest.test_case "parse error line" `Quick test_parser_error_reports_line;
    Alcotest.test_case "local addressing shape" `Quick
      test_sema_local_addressing;
    Alcotest.test_case "param addressing shape" `Quick
      test_sema_param_addressing;
    Alcotest.test_case "array indexing shape" `Quick test_sema_array_shape;
    Alcotest.test_case "char promotion" `Quick test_sema_char_promotion;
    Alcotest.test_case "unsigned operators" `Quick test_sema_unsigned_ops;
    Alcotest.test_case "semantic errors" `Quick test_sema_errors;
    Alcotest.test_case "control flow" `Quick test_exec_controlflow;
    Alcotest.test_case "short-circuit side effects" `Quick
      test_exec_short_circuit_effects;
    Alcotest.test_case "pointers" `Quick test_exec_pointers;
    Alcotest.test_case "float arithmetic" `Quick test_exec_float_mix;
    Alcotest.test_case "post/pre increment values" `Quick
      test_exec_postincr_value;
    Alcotest.test_case "compound assignment" `Quick test_exec_compound_assign;
    Alcotest.test_case "main with arguments" `Quick test_exec_args;
    Alcotest.test_case "register variable lowering" `Quick
      test_register_variable_lowering;
    Alcotest.test_case "register autoincrement lowering" `Quick
      test_register_autoincrement_lowering;
    Alcotest.test_case "address of register rejected" `Quick
      test_address_of_register_rejected;
    Alcotest.test_case "corpus deterministic" `Quick
      test_corpus_generation_deterministic;
    Alcotest.test_case "corpus terminates" `Quick
      test_corpus_programs_terminate;
  ]
