(* The differential harness: every program is executed three ways —
   reference interpreter on the IR, the table-driven backend's output
   under the VAX simulator, and the PCC-style backend's output under
   the simulator — and all observables (return value, final scalar
   globals, print output) must agree.

   This is the reproduction of the paper's correctness claim ("our code
   generator produces code that passes validation suites", section 8),
   with the simulator standing in for the hardware. *)

open Gg_ir
module Driver = Gg_codegen.Driver
module Pcc = Gg_pcc.Pcc
module Machine = Gg_vaxsim.Machine
module Oracle = Gg_fuzz.Oracle

(* one comparison for all observables; on mismatch the message names
   the differing observable (a global by name, the return value, or
   the print output) instead of an opaque boolean *)
let check_observations name bname ~reference out =
  match Oracle.compare_observations ~reference out with
  | Ok () -> ()
  | Error detail -> Alcotest.failf "%s/%s: %s" name bname detail

let check_program ?(options = Driver.default_options) name prog =
  let reference =
    try Interp.run ~max_steps:10_000_000 prog ~entry:"main" []
    with Interp.Runtime_error m -> Alcotest.failf "%s: interpreter: %s" name m
  in
  let run_backend bname assembly =
    let out =
      try
        Machine.run_text ~max_steps:40_000_000 assembly
          ~global_types:prog.Tree.globals ~entry:"main" []
      with
      | Machine.Sim_error m -> Alcotest.failf "%s/%s: simulator: %s" name bname m
      | Gg_vaxsim.Asmparse.Parse_error (l, m) ->
        Alcotest.failf "%s/%s: asm parse error line %d: %s" name bname l m
    in
    check_observations name bname ~reference out
  in
  run_backend "gg" (Driver.compile_program ~options prog).Driver.assembly;
  run_backend "pcc" (Pcc.compile_program prog).Pcc.assembly

let test_fixed_programs () =
  List.iter
    (fun (name, src) -> check_program name (Gg_frontc.Sema.compile src))
    Gg_frontc.Corpus.fixed_programs

let random_prog seed =
  Gg_frontc.Sema.lower_program
    (Gg_frontc.Corpus.program ~seed ~functions:3 ~stmts_per_function:10)

let test_random_corpus () =
  for seed = 1 to 40 do
    check_program (Fmt.str "random-%d" seed) (random_prog seed)
  done

let test_random_corpus_no_idioms () =
  (* "the idiom recogniser is optional in the sense that if it were
     omitted, correct code would still be generated" (section 5.3.2) *)
  let options = { Driver.default_options with Driver.idioms = false } in
  for seed = 41 to 55 do
    check_program ~options (Fmt.str "noidiom-%d" seed) (random_prog seed)
  done

let test_random_corpus_no_reverse_ops () =
  (* the reverse-operator machinery off: grammar without R* patterns and
     ordering phase forbidden to swap non-commutative operands *)
  let gopts = { Gg_vax.Grammar_def.default with Gg_vax.Grammar_def.reverse_ops = false } in
  let options =
    {
      Driver.default_options with
      Driver.grammar = gopts;
      transform =
        { Gg_transform.Transform.default_options with
          Gg_transform.Transform.reverse_ops = false };
    }
  in
  let tables = Driver.build_tables gopts in
  for seed = 56 to 65 do
    let prog = random_prog seed in
    let name = Fmt.str "norev-%d" seed in
    let reference = Interp.run ~max_steps:10_000_000 prog ~entry:"main" [] in
    let out =
      Machine.run_text ~max_steps:40_000_000
        (Driver.compile_program ~options ~tables prog).Driver.assembly
        ~global_types:prog.Tree.globals ~entry:"main" []
    in
    check_observations name "gg" ~reference out
  done

let test_random_corpus_with_peephole () =
  (* the section 6.1 alternative organisation: peephole on both
     backends, still observationally equal to the interpreter *)
  let options = { Driver.default_options with Driver.peephole = true } in
  for seed = 80 to 95 do
    let prog = random_prog seed in
    let name = Fmt.str "peephole-%d" seed in
    let reference = Interp.run ~max_steps:10_000_000 prog ~entry:"main" [] in
    let check bname asm =
      check_observations name bname ~reference
        (Machine.run_text ~max_steps:40_000_000 asm
           ~global_types:prog.Tree.globals ~entry:"main" [])
    in
    check "gg+peephole" (Driver.compile_program ~options prog).Driver.assembly;
    check "pcc+peephole" (Pcc.compile_program ~peephole:true prog).Pcc.assembly
  done

let test_typed_tree_corpus () =
  (* direct IR programs with byte/word/float arithmetic and the full
     conversion cross product — paths C's promotion rules never take *)
  for seed = 1 to 60 do
    check_program (Fmt.str "typed-%d" seed) (Gg_ir.Treegen.program ~seed ~stmts:25)
  done

let test_larger_programs () =
  for seed = 70 to 73 do
    check_program
      (Fmt.str "large-%d" seed)
      (Gg_frontc.Sema.lower_program
         (Gg_frontc.Corpus.program ~seed ~functions:6 ~stmts_per_function:25))
  done

(* -- arithmetic edge cases ------------------------------------------------ *)

(* hand-built IR programs aimed at the corners where two's-complement,
   shift and float->int semantics are easiest to get wrong; the
   three-way oracle pins interpreter and simulator to the same answer *)

let edge_globals =
  [
    ("gb", Dtype.Byte, 1);
    ("gw", Dtype.Word, 2);
    ("gl", Dtype.Long, 4);
    ("gl2", Dtype.Long, 4);
    ("gd", Dtype.Dbl, 8);
  ]

let edge_program stmts =
  {
    Tree.globals = edge_globals;
    funcs =
      [
        {
          Tree.fname = "main";
          formals = [];
          ret_type = Dtype.Long;
          locals_size = 0;
          body =
            stmts
            @ [
                Tree.Stree
                  (Tree.Assign
                     ( Dtype.Long,
                       Tree.Dreg (Dtype.Long, Regconv.r0),
                       Tree.const Dtype.Long 0L ));
                Tree.Sret;
              ];
        };
      ];
  }

let g ty name = Tree.Name (ty, name)
let k ty n = Tree.const ty n
let assign ty name e = Tree.Stree (Tree.Assign (ty, g ty name, e))
let binop op ty a b = Tree.Binop (op, ty, a, b)

let interp_globals prog =
  (Interp.run ~max_steps:1_000_000 prog ~entry:"main" []).Interp.globals

let check_global prog name expect =
  match List.assoc_opt name (interp_globals prog) with
  | Some (Interp.VInt v) -> Alcotest.(check int64) name expect v
  | Some (Interp.VFloat _) -> Alcotest.failf "%s: float where int expected" name
  | None -> Alcotest.failf "global %s missing" name

let test_edge_div_overflow () =
  (* most-negative / -1 overflows two's complement at every width; both
     executions must wrap identically rather than trap or disagree *)
  List.iter
    (fun (name, ty, gname, minv) ->
      (* the dividend flows through a global so neither backend can
         constant-fold the division away *)
      let prog =
        edge_program
          [
            assign ty gname (k ty minv);
            assign ty gname (binop Op.Div ty (g ty gname) (k ty (-1L)));
          ]
      in
      check_global prog gname minv;
      check_program name prog)
    [
      ("divmin-byte", Dtype.Byte, "gb", -128L);
      ("divmin-word", Dtype.Word, "gw", -32768L);
      ("divmin-long", Dtype.Long, "gl", -2147483648L);
    ]

let test_edge_remainder_sign () =
  (* truncated division: the remainder takes the sign of the dividend *)
  List.iter
    (fun (name, a, b, expect) ->
      let prog =
        edge_program
          [
            assign Dtype.Long "gl" (k Dtype.Long a);
            assign Dtype.Long "gl"
              (binop Op.Mod Dtype.Long (g Dtype.Long "gl") (k Dtype.Long b));
          ]
      in
      check_global prog "gl" expect;
      check_program name prog)
    [
      ("rem-neg-pos", -7L, 3L, -1L);
      ("rem-pos-neg", 7L, -3L, 1L);
      ("rem-neg-neg", -7L, -3L, -1L);
      ("rem-min-minus1", -2147483648L, -1L, 0L);
    ]

let test_edge_shift_counts () =
  (* counts at and beyond the operand width (but within the simulator's
     64-bit datapath); includes arithmetic right shifts of negatives *)
  let cases =
    [
      ("lsh-31", Op.Lsh, 1L, 31L);
      ("lsh-32", Op.Lsh, 1L, 32L);
      ("lsh-33", Op.Lsh, -1L, 33L);
      ("lsh-63", Op.Lsh, 5L, 63L);
      ("rsh-31", Op.Rsh, -2147483648L, 31L);
      ("rsh-32", Op.Rsh, -1L, 32L);
      ("rsh-63", Op.Rsh, -2147483648L, 63L);
    ]
  in
  List.iter
    (fun (name, op, x, c) ->
      let prog =
        edge_program
          [
            assign Dtype.Long "gl" (k Dtype.Long x);
            assign Dtype.Long "gl"
              (binop op Dtype.Long (g Dtype.Long "gl") (k Dtype.Long c));
          ]
      in
      check_program name prog)
    cases;
  (* byte-width operand shifted by counts >= 8: the value wraps to the
     byte on every store but the shift itself happens at full width *)
  List.iter
    (fun (name, x, c) ->
      let prog =
        edge_program
          [
            assign Dtype.Byte "gb" (k Dtype.Byte x);
            assign Dtype.Byte "gb"
              (binop Op.Lsh Dtype.Byte (g Dtype.Byte "gb") (k Dtype.Byte c));
          ]
      in
      check_program name prog)
    [ ("byte-lsh-8", 3L, 8L); ("byte-lsh-9", -1L, 9L) ]

let test_edge_float_to_int () =
  (* VAX cvt truncates toward zero; out-of-range and NaN inputs must
     still give the same (wrapped) bit pattern in both executions *)
  let conv_case name f dst_ty dst =
    let prog =
      edge_program
        [
          assign Dtype.Dbl "gd" (Tree.Fconst (Dtype.Dbl, f));
          assign dst_ty dst (Tree.Conv (dst_ty, Dtype.Dbl, g Dtype.Dbl "gd"));
        ]
    in
    check_program name prog
  in
  conv_case "cvt-frac" 2.75 Dtype.Long "gl";
  conv_case "cvt-neg-frac" (-2.75) Dtype.Long "gl";
  conv_case "cvt-out-of-range" 1e18 Dtype.Long "gl";
  conv_case "cvt-neg-out-of-range" (-1e18) Dtype.Long "gl";
  conv_case "cvt-word-wrap" 123456.0 Dtype.Word "gw";
  (* NaN produced at run time (0/0) so no backend can fold it *)
  let nan_prog =
    edge_program
      [
        assign Dtype.Dbl "gd"
          (binop Op.Div Dtype.Dbl
             (Tree.Fconst (Dtype.Dbl, 0.0))
             (Tree.Fconst (Dtype.Dbl, 0.0)));
        assign Dtype.Long "gl" (Tree.Conv (Dtype.Long, Dtype.Dbl, g Dtype.Dbl "gd"));
      ]
  in
  check_program "cvt-nan" nan_prog

let suite =
  [
    Alcotest.test_case "fixed programs, both backends" `Quick
      test_fixed_programs;
    Alcotest.test_case "edge: min_int / -1 at every width" `Quick
      test_edge_div_overflow;
    Alcotest.test_case "edge: remainder sign" `Quick test_edge_remainder_sign;
    Alcotest.test_case "edge: shift counts at/beyond width" `Quick
      test_edge_shift_counts;
    Alcotest.test_case "edge: float->int truncation, overflow, NaN" `Quick
      test_edge_float_to_int;
    Alcotest.test_case "random corpus, both backends" `Slow test_random_corpus;
    Alcotest.test_case "random corpus without idioms" `Slow
      test_random_corpus_no_idioms;
    Alcotest.test_case "random corpus without reverse ops" `Slow
      test_random_corpus_no_reverse_ops;
    Alcotest.test_case "typed tree corpus (byte/word/float paths)" `Slow
      test_typed_tree_corpus;
    Alcotest.test_case "random corpus with peephole" `Slow
      test_random_corpus_with_peephole;
    Alcotest.test_case "larger programs" `Slow test_larger_programs;
  ]
