(* The per-op differential matrix: every operator constructor in
   Gg_ir.Op — all_binops, all_unops, all_relops — times every type it
   is defined on, one minimal program each, checked through the
   cross-backend oracle (reference interpreter vs every registered
   target's packed tables under that target's simulator).

   The table is enumerated from Op's own lists rather than hand-written
   cases, so adding an operator without a machine-description rule for
   some backend fails here by name instead of surfacing as a fuzz
   divergence.  This is the dsc shape: one generic op table, generated
   tests per op, per-backend implementations under test. *)

open Gg_ir
module Oracle = Gg_fuzz.Oracle
module Targets = Gg_targets.Targets

(* one engine per target: the packed default tables, shared process-wide *)
let engines =
  lazy (List.map (fun t -> Oracle.packed_engine_for t) Targets.all)

let check name prog =
  match Oracle.check ~pcc:false ~engines:(Lazy.force engines) prog with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "%s: %a" name Oracle.pp_failure f
  | exception Oracle.Invalid m ->
    Alcotest.failf "%s: invalid generated program: %s" name m

(* -- the one-op program ---------------------------------------------------- *)

let int_types = [ Dtype.Byte; Dtype.Word; Dtype.Long ]
let float_types = [ Dtype.Flt; Dtype.Dbl ]
let all_types = int_types @ float_types

(* three globals per type: the two operands and the result *)
let global ty role = role ^ Dtype.suffix ty

let globals =
  List.concat_map
    (fun ty ->
      List.map (fun role -> (global ty role, ty, Dtype.size ty)) [ "a"; "b"; "r" ])
    all_types

let g ty role = Tree.Name (ty, global ty role)

let program stmts =
  {
    Tree.globals;
    funcs =
      [
        {
          Tree.fname = "main";
          formals = [];
          ret_type = Dtype.Long;
          locals_size = 0;
          body =
            stmts
            @ [
                Tree.Stree
                  (Tree.Assign
                     ( Dtype.Long,
                       Tree.Dreg (Dtype.Long, Regconv.r0),
                       Tree.const Dtype.Long 0L ));
                Tree.Sret;
              ];
        };
      ];
  }

let set ty role v = Tree.Stree (Tree.Assign (ty, g ty role, v))
let iconst ty n = Tree.const ty n
let fconst ty f = Tree.Fconst (ty, f)

(* operand pairs: total for every operator (no zero divisors; shift
   counts exercise the negative/over-width conventions, which the IR
   defines for every count) *)
let int_pairs = [ (-7L, 3L); (13L, 5L); (-1L, 2L) ]
let float_pairs = [ (2.5, -0.75); (-3.25, 0.5) ]

(* -- binops ----------------------------------------------------------------- *)

let float_binops = [ Op.Plus; Op.Minus; Op.Rminus; Op.Mul; Op.Div; Op.Rdiv ]

(* shifts and unsigned div/mod follow the PCC promotion convention:
   both machine descriptions define them at Long only *)
let long_only = [ Op.Lsh; Op.Rsh; Op.Udiv; Op.Umod; Op.Rlsh; Op.Rrsh ]

(* a shift count outside [0, width) is undefined in the source language
   (as in C), and the backends genuinely diverge there — VAX ashl
   shifts the other way on a negative count — so the shift pairs keep
   the count in range in either operand position (the reversed forms
   take it from the left) *)
let shifts = [ Op.Lsh; Op.Rsh; Op.Rlsh; Op.Rrsh ]
let shift_pairs = [ (7L, 3L); (13L, 5L); (1L, 31L) ]

let check_binop op =
  List.iter
    (fun ty ->
      List.iter
        (fun (a, b) ->
          check
            (Fmt.str "%s.%s(%Ld,%Ld)" (Op.binop_name op) (Dtype.suffix ty) a b)
            (program
               [
                 set ty "a" (iconst ty a);
                 set ty "b" (iconst ty b);
                 set ty "r" (Tree.Binop (op, ty, g ty "a", g ty "b"));
               ]))
        (if List.mem op shifts then shift_pairs else int_pairs))
    (if List.mem op long_only then [ Dtype.Long ] else int_types);
  if List.mem op float_binops then
    List.iter
      (fun ty ->
        List.iter
          (fun (a, b) ->
            check
              (Fmt.str "%s.%s(%g,%g)" (Op.binop_name op) (Dtype.suffix ty) a b)
              (program
                 [
                   set ty "a" (fconst ty a);
                   set ty "b" (fconst ty b);
                   set ty "r" (Tree.Binop (op, ty, g ty "a", g ty "b"));
                 ]))
          float_pairs)
      float_types

(* -- unops ------------------------------------------------------------------ *)

let check_unop op =
  let types =
    match op with Op.Neg -> all_types | Op.Com -> int_types
  in
  List.iter
    (fun ty ->
      let operand, value =
        if Dtype.is_float ty then (fconst ty (-2.5), "-2.5")
        else (iconst ty (-7L), "-7")
      in
      check
        (Fmt.str "%s.%s(%s)" (Op.unop_name op) (Dtype.suffix ty) value)
        (program
           [
             set ty "a" operand;
             set ty "r" (Tree.Unop (op, ty, g ty "a"));
           ]))
    types

(* -- relops ----------------------------------------------------------------- *)

(* a Relval in value position; phase 1a lowers it to the Cbranch both
   backends' branch rules implement, so this exercises the full
   compare-and-branch path of each machine description.  (-1, 1) is the
   pair where signed and unsigned comparison disagree. *)
let check_relop rel =
  List.iter
    (fun sg ->
      List.iter
        (fun ty ->
          List.iter
            (fun (a, b) ->
              check
                (Fmt.str "%s.%s.%s(%Ld,%Ld)" (Op.relop_name rel)
                   (match sg with
                   | Dtype.Signed -> "s"
                   | Dtype.Unsigned -> "u")
                   (Dtype.suffix ty) a b)
                (program
                   [
                     set ty "a" (iconst ty a);
                     set ty "b" (iconst ty b);
                     set Dtype.Long "r"
                       (Tree.Relval (rel, sg, ty, g ty "a", g ty "b"));
                   ]))
            [ (-1L, 1L); (1L, -1L); (3L, 3L) ])
        int_types)
    [ Dtype.Signed; Dtype.Unsigned ];
  List.iter
    (fun ty ->
      List.iter
        (fun (a, b) ->
          check
            (Fmt.str "%s.%s(%g,%g)" (Op.relop_name rel) (Dtype.suffix ty) a b)
            (program
               [
                 set ty "a" (fconst ty a);
                 set ty "b" (fconst ty b);
                 set Dtype.Long "r"
                   (Tree.Relval (rel, Dtype.Signed, ty, g ty "a", g ty "b"));
               ]))
        [ (2.5, -0.75); (1.5, 1.5) ])
    float_types

(* -- the suite, generated from Op's own lists ------------------------------- *)

let suite =
  List.map
    (fun op ->
      Alcotest.test_case
        (Fmt.str "binop %s on every type" (Op.binop_name op))
        `Quick
        (fun () -> check_binop op))
    Op.all_binops
  @ List.map
      (fun op ->
        Alcotest.test_case
          (Fmt.str "unop %s on every type" (Op.unop_name op))
          `Quick
          (fun () -> check_unop op))
      Op.all_unops
  @ List.map
      (fun rel ->
        Alcotest.test_case
          (Fmt.str "relop %s signed/unsigned on every type" (Op.relop_name rel))
          `Quick
          (fun () -> check_relop rel))
      Op.all_relops
