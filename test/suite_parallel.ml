(* The multi-domain batch compiler and the optimised matcher loop:
   Parallel.map ordering and exception semantics, byte-identical
   assembly at every -j on the fixed corpus and on fuzzed programs,
   optimised-vs-reference matcher parity (property-based, including
   rejects), and profile-counter/coverage exactness under domains. *)

module Tree = Gg_ir.Tree
module Dtype = Gg_ir.Dtype
module Termname = Gg_ir.Termname
module Treegen = Gg_ir.Treegen
module Tables = Gg_tablegen.Tables
module Matcher = Gg_matcher.Matcher
module Parallel = Gg_codegen.Parallel
module Driver = Gg_codegen.Driver
module Sema = Gg_frontc.Sema
module Corpus = Gg_frontc.Corpus
module Profile = Gg_profile.Profile

let tables = Driver.default_tables

(* -- Parallel.map ----------------------------------------------------------- *)

let test_map_preserves_order () =
  let xs = List.init 100 Fun.id in
  let want = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Fmt.str "jobs=%d" jobs)
        want
        (Parallel.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 8; 100 ]

let test_map_edge_cases () =
  Alcotest.(check (list int)) "empty input" [] (Parallel.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Parallel.map ~jobs:4 succ [ 1 ]);
  Alcotest.(check (list int))
    "more jobs than items" [ 2; 3 ]
    (Parallel.map ~jobs:16 succ [ 1; 2 ])

exception Boom of int

let test_map_reraises_earliest_failure () =
  (* several inputs fail; the exception surfaced must be the one of the
     earliest failing input, independent of scheduling *)
  let f x = if x mod 3 = 0 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs f (List.init 20 (fun i -> i + 1)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
        Alcotest.(check int) (Fmt.str "jobs=%d" jobs) 3 x)
    [ 1; 2; 4 ]

let test_map_exception_by_last_item () =
  (* the failure arriving last in every schedule: all other items have
     already succeeded when it raises, so the join path (not the fast
     path) must surface it *)
  let n = 20 in
  let f x = if x = n - 1 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs f (List.init n Fun.id) with
      | _ -> Alcotest.fail "expected Boom from the last item"
      | exception Boom x ->
        Alcotest.(check int) (Fmt.str "jobs=%d" jobs) (n - 1) x)
    [ 1; 2; 4; 32 ]

let test_map_leaves_no_live_domains () =
  (* pool shutdown must be complete on every exit path: normal return,
     empty input, and exceptional return *)
  let check_zero what =
    Alcotest.(check int) (what ^ ": live domains after") 0
      (Parallel.live_domains ())
  in
  ignore (Parallel.map ~jobs:8 succ (List.init 50 Fun.id));
  check_zero "normal map";
  ignore (Parallel.map ~jobs:8 succ []);
  check_zero "zero items";
  ignore (Parallel.map ~jobs:16 succ [ 1; 2; 3 ]);
  check_zero "jobs > items";
  (match Parallel.map ~jobs:4 (fun _ -> raise (Boom 0)) [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom _ -> ());
  check_zero "failing map"

let test_spawn_pool_runs_and_joins () =
  let hits = Array.make 4 0 in
  let pool =
    Parallel.spawn_pool ~domains:4 (fun i -> hits.(i) <- hits.(i) + 1)
  in
  Parallel.join_pool pool;
  Alcotest.(check (list int)) "every member ran once" [ 1; 1; 1; 1 ]
    (Array.to_list hits);
  Alcotest.(check int) "no live domains after join" 0
    (Parallel.live_domains ());
  (* a member crash surfaces at join, after every member has been
     joined (no abandoned domains) *)
  let pool =
    Parallel.spawn_pool ~domains:3 (fun i -> if i = 1 then raise (Boom i))
  in
  (match Parallel.join_pool pool with
  | () -> Alcotest.fail "expected Boom from member 1"
  | exception Boom i -> Alcotest.(check int) "failing member" 1 i);
  Alcotest.(check int) "no live domains after failed join" 0
    (Parallel.live_domains ())

(* -- the persistent pool under forced oversubscription ----------------------- *)

(* On a small box the production clamp makes every [~jobs] sequential
   (that is the -j fix); [~oversubscribe:true] lifts the clamp so these
   tests push real multi-domain batches through the shared pool no
   matter where they run. *)

let test_oversubscribed_map () =
  let xs = List.init 200 Fun.id in
  let want = List.map (fun x -> (x * 3) + 1) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Fmt.str "oversubscribed jobs=%d" jobs)
        want
        (Parallel.map ~oversubscribe:true ~jobs (fun x -> (x * 3) + 1) xs))
    [ 2; 4; 8 ];
  Alcotest.(check int) "workers parked, none live" 0 (Parallel.live_domains ())

let test_pool_reuse_and_shutdown () =
  (* the pool persists across batches (that is the point of it), parks
     between them, and respawns lazily after an explicit shutdown *)
  for _ = 1 to 5 do
    ignore (Parallel.map ~oversubscribe:true ~jobs:4 succ (List.init 40 Fun.id))
  done;
  Alcotest.(check int) "parked workers are not live" 0
    (Parallel.live_domains ());
  Parallel.shutdown ();
  Parallel.shutdown () (* idempotent *);
  Alcotest.(check (list int)) "map after shutdown respawns the pool"
    [ 2; 3; 4 ]
    (Parallel.map ~oversubscribe:true ~jobs:3 succ [ 1; 2; 3 ]);
  Parallel.shutdown ()

let test_nested_map_runs_inline () =
  (* a map issued while the pool is busy with the enclosing batch must
     fall back to the sequential path with identical results *)
  let want =
    List.init 8 (fun i -> List.init 10 (fun j -> (i * 10) + j + 1))
  in
  let got =
    Parallel.map ~oversubscribe:true ~jobs:4
      (fun i ->
        Parallel.map ~oversubscribe:true ~jobs:4 succ
          (List.init 10 (fun j -> (i * 10) + j)))
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list (list int))) "nested map results" want got;
  Alcotest.(check int) "no live domains after" 0 (Parallel.live_domains ())

(* -- assembly determinism ---------------------------------------------------- *)

let compile ~jobs prog =
  (Driver.compile_program ~tables:(Lazy.force tables) ~jobs prog)
    .Driver.assembly

let test_fixed_corpus_identical () =
  List.iter
    (fun (name, src) ->
      let prog = Sema.compile src in
      let a1 = compile ~jobs:1 prog in
      List.iter
        (fun j ->
          Alcotest.(check string) (Fmt.str "%s -j%d" name j) a1
            (compile ~jobs:j prog))
        [ 2; 4 ])
    Corpus.fixed_programs

let test_fuzzed_programs_identical () =
  for seed = 0 to 49 do
    let prog = Treegen.control_program ~seed Treegen.default_config in
    if compile ~jobs:1 prog <> compile ~jobs:4 prog then
      Alcotest.failf "seed %d: -j4 assembly differs from -j1" seed
  done

(* -- optimised loop vs the pre-optimisation reference ------------------------ *)

let toy_engine = lazy (Matcher.engine (Tables.build Toy.grammar))

(* everything observable: the final value, the full trace, the emitted
   instructions, and on a reject every field of the error.  The one
   sanctioned difference is the loop backstop: the optimised loop
   budgets reductions while the reference budgets every action, so on a
   runaway chain-rule loop both reject with "<looping>" but may stop at
   different points of the cycle — normalise those to a canonical
   error. *)
let outcome_of runner tokens =
  let emitted = ref [] in
  let cb = Toy.string_callbacks emitted in
  match runner (Lazy.force toy_engine) cb tokens with
  | (o : string Matcher.outcome) ->
    Ok (o.Matcher.value, o.Matcher.trace, List.rev !emitted)
  | exception Matcher.Reject { token = "<looping>"; _ } ->
    Error (-1, "<looping>", -1, [])
  | exception Matcher.Reject e ->
    Error (e.Matcher.at, e.Matcher.token, e.Matcher.state, e.Matcher.expected)

let optimised e cb t = Matcher.run_engine ~trace:true e cb t
let reference e cb t = Matcher.run_engine_reference ~trace:true e cb t

let prop_parity_on_random_trees =
  QCheck.Test.make ~name:"optimised = reference loop on random trees"
    ~count:200
    (QCheck.make Suite_matcher.random_long_tree)
    (fun tree ->
      let tokens = Termname.linearize ~special_constants:false tree in
      outcome_of optimised tokens = outcome_of reference tokens)

let random_token_stream =
  (* arbitrary streams, most of them syntactically blocked and some
     containing names outside the grammar: the loops must agree on the
     reject position, state and expected set too *)
  let open QCheck.Gen in
  let name =
    oneofl
      [
        "Assign.l"; "Plus.l"; "Mul.l"; "Name.l"; "Const.l"; "Dreg.l";
        "lval.l" (* a non-terminal name: never a valid lookahead *);
        "Bogus.q" (* unknown terminal *);
      ]
  in
  list_size (int_range 0 12)
    (map
       (fun term -> { Termname.term; node = Tree.Const (Dtype.Long, 0L) })
       name)

let prop_parity_on_random_token_streams =
  QCheck.Test.make ~name:"optimised = reference loop on random token streams"
    ~count:500
    (QCheck.make
       ~print:(fun ts ->
         String.concat " " (List.map (fun t -> t.Termname.term) ts))
       random_token_stream)
    (fun tokens -> outcome_of optimised tokens = outcome_of reference tokens)

(* -- profiling exactness under parallelism ----------------------------------- *)

let snap (c : Profile.counters) =
  (c.Profile.shifts, c.Profile.reduces, c.Profile.semantic_choices,
   c.Profile.matcher_runs)

let test_counters_exact_under_parallelism () =
  let prog = Treegen.control_program ~seed:11 Treegen.default_config in
  let totals jobs =
    Profile.reset ();
    ignore (compile ~jobs prog);
    snap (Profile.totals ())
  in
  let show (a, b, c, d) = Fmt.str "(%d,%d,%d,%d)" a b c d in
  let s1 = totals 1 in
  let s4 = totals 4 in
  let s8 = totals 8 in
  Profile.reset ();
  let (a, b, c, _) = s1 in
  Alcotest.(check bool) "counters were recorded" true (a > 0 && b > 0 && c >= 0);
  if s4 <> s1 || s8 <> s1 then
    Alcotest.failf "merged counters drift: j1 %s, j4 %s, j8 %s" (show s1)
      (show s4) (show s8)

let test_parity_and_telemetry_through_pool () =
  (* byte parity and counter exactness through the real pool: the
     production clamp would serialise every -j on a 1-core box, so
     force genuine multi-domain batches with ~oversubscribe *)
  let compile_over ~jobs prog =
    (Driver.compile_program ~tables:(Lazy.force tables) ~oversubscribe:true
       ~jobs prog)
      .Driver.assembly
  in
  let prog = Treegen.control_program ~seed:23 Treegen.default_config in
  let run jobs =
    Profile.reset ();
    let asm = compile_over ~jobs prog in
    (asm, snap (Profile.totals ()))
  in
  let asm1, s1 = run 1 in
  let (a, b, _, _) = s1 in
  Alcotest.(check bool) "counters were recorded" true (a > 0 && b > 0);
  List.iter
    (fun jobs ->
      let asm, s = run jobs in
      Alcotest.(check string) (Fmt.str "-j%d assembly = -j1" jobs) asm1 asm;
      if s <> s1 then
        Alcotest.failf "-j%d merged counters differ from -j1" jobs)
    [ 2; 4; 8 ];
  Profile.reset ();
  Parallel.shutdown ()

let test_coverage_exact_under_parallelism () =
  let prog = Treegen.control_program ~seed:17 Treegen.default_config in
  let counts jobs =
    Profile.coverage_enabled := true;
    Profile.reset_coverage ();
    ignore (compile ~jobs prog);
    let c = Profile.production_counts () in
    Profile.coverage_enabled := false;
    c
  in
  let c1 = counts 1 in
  Alcotest.(check bool) "coverage is non-empty" true (c1 <> []);
  Alcotest.(check bool) "j4 coverage = j1" true (counts 4 = c1)

let suite =
  [
    Alcotest.test_case "Parallel.map preserves input order" `Quick
      test_map_preserves_order;
    Alcotest.test_case "Parallel.map edge cases" `Quick test_map_edge_cases;
    Alcotest.test_case "Parallel.map re-raises the earliest failure" `Quick
      test_map_reraises_earliest_failure;
    Alcotest.test_case "Parallel.map exception raised by the last item" `Quick
      test_map_exception_by_last_item;
    Alcotest.test_case "Parallel.map leaves no live domains" `Quick
      test_map_leaves_no_live_domains;
    Alcotest.test_case "spawn_pool/join_pool lifecycle" `Quick
      test_spawn_pool_runs_and_joins;
    Alcotest.test_case "oversubscribed map forces real domains" `Quick
      test_oversubscribed_map;
    Alcotest.test_case "pool persists, shuts down, respawns" `Quick
      test_pool_reuse_and_shutdown;
    Alcotest.test_case "nested map falls back to inline" `Quick
      test_nested_map_runs_inline;
    Alcotest.test_case "byte parity + exact counters through the pool" `Quick
      test_parity_and_telemetry_through_pool;
    Alcotest.test_case "fixed corpus: -j2/-j4 assembly = -j1" `Slow
      test_fixed_corpus_identical;
    Alcotest.test_case "50 fuzzed programs: -j4 assembly = -j1" `Slow
      test_fuzzed_programs_identical;
    QCheck_alcotest.to_alcotest prop_parity_on_random_trees;
    QCheck_alcotest.to_alcotest prop_parity_on_random_token_streams;
    Alcotest.test_case "profile counters exact under -j" `Quick
      test_counters_exact_under_parallelism;
    Alcotest.test_case "production coverage exact under -j" `Quick
      test_coverage_exact_under_parallelism;
  ]
