(* Tests for the PCC-style baseline backend: golden selections showing
   its ad hoc matcher at work, and the characteristics that distinguish
   it from the table-driven backend (no scaled-index modes, but the
   inc/dec/clr/tst specials PCC did have). *)

open Gg_ir
module Pcc = Gg_pcc.Pcc
module Insn = Gg_ir.Insn
module T = Tree

let nm s = T.Name (Dtype.Long, s)
let c n = T.Const (Dtype.Long, n)

let asm_of tree =
  List.map (fun i -> String.trim (Insn.assembly i)) (Pcc.compile_tree tree)

let check_asm name expected tree =
  Alcotest.(check (list string)) name expected (asm_of tree)

let test_direct_add () =
  check_asm "addl3 into memory" [ "addl3\t$17,b,a" ]
    (T.Assign (Dtype.Long, nm "a", T.Binop (Op.Plus, Dtype.Long, c 17L, nm "b")))

let test_inc_special () =
  check_asm "incl" [ "incl\ta" ]
    (T.Assign (Dtype.Long, nm "a", T.Binop (Op.Plus, Dtype.Long, nm "a", c 1L)))

let test_clr_special () =
  check_asm "clrl" [ "clrl\ta" ] (T.Assign (Dtype.Long, nm "a", c 0L))

let test_no_scaled_index () =
  (* where the table-driven backend produces arr[rx], PCC multiplies *)
  let tree =
    T.Assign (Dtype.Long, nm "x",
      T.Indir (Dtype.Long,
        T.Binop (Op.Plus, Dtype.Long, T.Addr (nm "arr"),
                 T.Binop (Op.Mul, Dtype.Long, c 4L, nm "i"))))
  in
  let asm = asm_of tree in
  Alcotest.(check bool) "no [rx] operand" true
    (List.for_all (fun line -> not (String.contains line '[')) asm);
  Alcotest.(check bool) "explicit multiply" true
    (List.exists
       (fun line -> String.length line > 4 && String.sub line 0 4 = "mull")
       asm)

let test_tst_special () =
  check_asm "tstl" [ "tstl\ta"; "jneq\tL7" ]
    (T.Cbranch (Op.Ne, Dtype.Signed, Dtype.Long, nm "a", c 0L, 7))

let test_su_ordering () =
  (* the heavier right operand is evaluated first *)
  let heavy =
    T.Binop (Op.Mul, Dtype.Long, T.Binop (Op.Plus, Dtype.Long, nm "a", nm "b"),
             T.Binop (Op.Plus, Dtype.Long, nm "c", nm "d"))
  in
  let tree = T.Assign (Dtype.Long, nm "x",
               T.Binop (Op.Minus, Dtype.Long,
                        T.Binop (Op.Plus, Dtype.Long, nm "a", nm "b"), heavy))
  in
  let asm = asm_of tree in
  (* first instruction belongs to the heavy (multiply) side *)
  Alcotest.(check bool) "compiles" true (List.length asm >= 3);
  Alcotest.(check bool) "result correct shape" true
    (List.exists
       (fun l -> String.length l >= 4 && String.sub l 0 4 = "subl")
       asm)

let test_register_leak_guard () =
  (* compile a whole random function; the backend asserts balance *)
  for seed = 300 to 305 do
    let prog =
      Gg_frontc.Sema.lower_program
        (Gg_frontc.Corpus.program ~seed ~functions:2 ~stmts_per_function:8)
    in
    ignore (Pcc.compile_program prog)
  done

let test_code_size_comparable () =
  (* the paper's Table: 11385 (GG) vs 11309 (PCC) lines — near parity.
     Check both backends stay within 25% of each other on the corpus. *)
  let prog =
    Gg_frontc.Sema.lower_program
      (Gg_frontc.Corpus.program ~seed:9 ~functions:4 ~stmts_per_function:15)
  in
  let gg = Gg_codegen.Driver.total_lines (Gg_codegen.Driver.compile_program prog) in
  let pcc = Pcc.total_lines (Pcc.compile_program prog) in
  Alcotest.(check bool)
    (Fmt.str "sizes comparable (gg=%d pcc=%d)" gg pcc)
    true
    (float_of_int (abs (gg - pcc)) /. float_of_int pcc < 0.25)

let suite =
  [
    Alcotest.test_case "direct add into memory" `Quick test_direct_add;
    Alcotest.test_case "inc special" `Quick test_inc_special;
    Alcotest.test_case "clr special" `Quick test_clr_special;
    Alcotest.test_case "no scaled index modes" `Quick test_no_scaled_index;
    Alcotest.test_case "tst special" `Quick test_tst_special;
    Alcotest.test_case "Sethi-Ullman ordering" `Quick test_su_ordering;
    Alcotest.test_case "no register leaks" `Quick test_register_leak_guard;
    Alcotest.test_case "code size comparable to GG" `Quick
      test_code_size_comparable;
  ]
