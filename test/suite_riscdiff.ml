(* The cross-backend differential harness for the RISC target: every
   program is executed by the reference interpreter on the IR and by
   the RISC simulator on the table-driven RISC backend's output, and
   all observables (return value, final scalar globals, print output)
   must agree.

   This is the paper's retargeting claim made executable: the same
   table constructor and matcher, driven by a different machine
   description, must produce code with identical observable
   behaviour. *)

open Gg_ir
module Driver = Gg_codegen.Driver
module Machine = Gg_riscsim.Machine
module Oracle = Gg_fuzz.Oracle

let risc_tables =
  lazy
    (Driver.build_tables ~backend:Gg_risc.Target.backend
       Gg_risc.Grammar_def.default)

let check_observations name ~reference out =
  match Oracle.compare_observations ~reference out with
  | Ok () -> ()
  | Error detail -> Alcotest.failf "%s/risc: %s" name detail

let check_program ?(options = Driver.default_options) name prog =
  let reference =
    try Interp.run ~max_steps:10_000_000 prog ~entry:"main" []
    with Interp.Runtime_error m -> Alcotest.failf "%s: interpreter: %s" name m
  in
  let assembly =
    (Driver.compile_program ~options ~tables:(Lazy.force risc_tables) prog)
      .Driver.assembly
  in
  let out =
    try
      Machine.run_text ~max_steps:40_000_000 assembly
        ~global_types:prog.Tree.globals ~entry:"main" []
    with
    | Machine.Sim_error m -> Alcotest.failf "%s/risc: simulator: %s" name m
    | Gg_riscsim.Asmparse.Parse_error (l, m) ->
      Alcotest.failf "%s/risc: asm parse error line %d: %s" name l m
  in
  check_observations name ~reference out

let test_fixed_programs () =
  List.iter
    (fun (name, src) -> check_program name (Gg_frontc.Sema.compile src))
    Gg_frontc.Corpus.fixed_programs

let random_prog seed =
  Gg_frontc.Sema.lower_program
    (Gg_frontc.Corpus.program ~seed ~functions:3 ~stmts_per_function:10)

let test_random_corpus () =
  for seed = 1 to 40 do
    check_program (Fmt.str "random-%d" seed) (random_prog seed)
  done

let test_random_corpus_no_idioms () =
  let options = { Driver.default_options with Driver.idioms = false } in
  for seed = 41 to 55 do
    check_program ~options (Fmt.str "noidiom-%d" seed) (random_prog seed)
  done

let test_typed_tree_corpus () =
  (* byte/word/float arithmetic and the full conversion cross product —
     exactly the corpus that exercises every typed emit rule *)
  for seed = 1 to 60 do
    check_program (Fmt.str "typed-%d" seed) (Gg_ir.Treegen.program ~seed ~stmts:25)
  done

let test_larger_programs () =
  for seed = 70 to 73 do
    check_program
      (Fmt.str "large-%d" seed)
      (Gg_frontc.Sema.lower_program
         (Gg_frontc.Corpus.program ~seed ~functions:6 ~stmts_per_function:25))
  done

(* -- arithmetic edge cases (mirrors suite_diff, under the RISC) ----------- *)

let edge_globals =
  [
    ("gb", Dtype.Byte, 1);
    ("gw", Dtype.Word, 2);
    ("gl", Dtype.Long, 4);
    ("gd", Dtype.Dbl, 8);
  ]

let edge_program stmts =
  {
    Tree.globals = edge_globals;
    funcs =
      [
        {
          Tree.fname = "main";
          formals = [];
          ret_type = Dtype.Long;
          locals_size = 0;
          body =
            stmts
            @ [
                Tree.Stree
                  (Tree.Assign
                     ( Dtype.Long,
                       Tree.Dreg (Dtype.Long, Regconv.r0),
                       Tree.const Dtype.Long 0L ));
                Tree.Sret;
              ];
        };
      ];
  }

let g ty name = Tree.Name (ty, name)
let k ty n = Tree.const ty n
let assign ty name e = Tree.Stree (Tree.Assign (ty, g ty name, e))
let binop op ty a b = Tree.Binop (op, ty, a, b)

let test_edge_div_overflow () =
  List.iter
    (fun (name, ty, gname, minv) ->
      check_program name
        (edge_program
           [
             assign ty gname (k ty minv);
             assign ty gname (binop Op.Div ty (g ty gname) (k ty (-1L)));
           ]))
    [
      ("divmin-byte", Dtype.Byte, "gb", -128L);
      ("divmin-word", Dtype.Word, "gw", -32768L);
      ("divmin-long", Dtype.Long, "gl", -2147483648L);
    ]

let test_edge_remainder_sign () =
  List.iter
    (fun (name, a, b) ->
      check_program name
        (edge_program
           [
             assign Dtype.Long "gl" (k Dtype.Long a);
             assign Dtype.Long "gl"
               (binop Op.Mod Dtype.Long (g Dtype.Long "gl") (k Dtype.Long b));
           ]))
    [
      ("rem-neg-pos", -7L, 3L);
      ("rem-pos-neg", 7L, -3L);
      ("rem-neg-neg", -7L, -3L);
      ("rem-min-minus1", -2147483648L, -1L);
    ]

let test_edge_shift_counts () =
  List.iter
    (fun (name, op, x, c) ->
      check_program name
        (edge_program
           [
             assign Dtype.Long "gl" (k Dtype.Long x);
             assign Dtype.Long "gl"
               (binop op Dtype.Long (g Dtype.Long "gl") (k Dtype.Long c));
           ]))
    [
      ("lsh-31", Op.Lsh, 1L, 31L);
      ("lsh-32", Op.Lsh, 1L, 32L);
      ("lsh-63", Op.Lsh, 5L, 63L);
      ("rsh-31", Op.Rsh, -2147483648L, 31L);
      ("rsh-32", Op.Rsh, -1L, 32L);
      ("rsh-63", Op.Rsh, -2147483648L, 63L);
    ]

let test_edge_unsigned_div () =
  (* Udiv/Umod are the one place the two targets diverge structurally:
     the VAX calls __udivl/__umodl support routines, the RISC has real
     divul/remul instructions — both must match the interpreter *)
  List.iter
    (fun (name, op, a, b) ->
      check_program name
        (edge_program
           [
             assign Dtype.Long "gl" (k Dtype.Long a);
             assign Dtype.Long "gl"
               (binop op Dtype.Long (g Dtype.Long "gl") (k Dtype.Long b));
           ]))
    [
      ("udiv-big", Op.Udiv, -1L, 7L);
      ("udiv-msb", Op.Udiv, -2147483648L, 2L);
      ("umod-big", Op.Umod, -1L, 10L);
      ("umod-msb", Op.Umod, -2L, 3L);
    ]

let test_edge_float_to_int () =
  let conv_case name f dst_ty dst =
    check_program name
      (edge_program
         [
           assign Dtype.Dbl "gd" (Tree.Fconst (Dtype.Dbl, f));
           assign dst_ty dst (Tree.Conv (dst_ty, Dtype.Dbl, g Dtype.Dbl "gd"));
         ])
  in
  conv_case "cvt-frac" 2.75 Dtype.Long "gl";
  conv_case "cvt-neg-frac" (-2.75) Dtype.Long "gl";
  conv_case "cvt-word-wrap" 123456.0 Dtype.Word "gw"

let suite =
  [
    Alcotest.test_case "fixed programs under the RISC" `Quick
      test_fixed_programs;
    Alcotest.test_case "edge: min_int / -1 at every width" `Quick
      test_edge_div_overflow;
    Alcotest.test_case "edge: remainder sign" `Quick test_edge_remainder_sign;
    Alcotest.test_case "edge: shift counts at/beyond width" `Quick
      test_edge_shift_counts;
    Alcotest.test_case "edge: unsigned divide and remainder" `Quick
      test_edge_unsigned_div;
    Alcotest.test_case "edge: float->int truncation" `Quick
      test_edge_float_to_int;
    Alcotest.test_case "random corpus under the RISC" `Slow test_random_corpus;
    Alcotest.test_case "random corpus without idioms" `Slow
      test_random_corpus_no_idioms;
    Alcotest.test_case "typed tree corpus (byte/word/float paths)" `Slow
      test_typed_tree_corpus;
    Alcotest.test_case "larger programs" `Slow test_larger_programs;
  ]
