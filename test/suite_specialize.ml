(* Differential tests for profile-guided table specialization: for any
   profile — observed, empty, uniform or adversarial — the specialized
   table must decode cell-for-cell like the dense one, drive the
   matcher to identical traces and rejects, and compile the corpus to
   byte-identical assembly on both targets.  Plus the v3 save format,
   the (grammar, profile)-keyed cache entries, and the hot/cold probe
   counters. *)

open Gg_grammar
open Gg_tablegen
open Gg_matcher
open Gg_specialize
module Tree = Gg_ir.Tree
module Transform = Gg_transform.Transform
module Grammar_def = Gg_vax.Grammar_def
module Driver = Gg_codegen.Driver
module Backend = Gg_codegen.Backend
module Targets = Gg_targets.Targets
module Sema = Gg_frontc.Sema
module Corpus = Gg_frontc.Corpus
module Profile = Gg_profile.Profile
module Metrics = Gg_profile.Metrics

let vax_grammar = lazy (Grammar_def.grammar Grammar_def.default)
let dense = lazy (Tables.build (Lazy.force vax_grammar))
let packed = lazy (Packed.pack (Lazy.force dense))
let dense_engine = lazy (Matcher.engine (Lazy.force dense))

let null_cb : unit Matcher.callbacks =
  {
    Matcher.on_shift = (fun _ -> ());
    on_reduce = (fun _ _ -> ());
    choose = (fun _ _ -> 0);
  }

let stmt_trees prog =
  List.concat_map
    (fun (f : Tree.func) ->
      let tr = Transform.run f in
      List.filter_map
        (function Tree.Stree t -> Some t | _ -> None)
        tr.Transform.func.Tree.body)
    prog.Tree.funcs

let corpus_trees =
  lazy
    (List.concat_map
       (fun (_, src) -> stmt_trees (Sema.compile src))
       Corpus.fixed_programs
    @ List.concat_map
        (fun seed ->
          stmt_trees
            (Sema.lower_program
               (Corpus.program ~seed ~functions:2 ~stmts_per_function:8)))
        [ 1; 2; 3 ])

let corpus_tokens =
  lazy
    (List.map
       (fun t -> Gg_ir.Termname.linearize t)
       (Lazy.force corpus_trees))

(* the observed profile: what the corpus itself fires *)
let observed_profile =
  lazy
    (let saved = !Profile.coverage_enabled in
     Profile.coverage_enabled := true;
     Profile.reset_coverage ();
     List.iter
       (fun toks ->
         ignore
           (Matcher.run_engine (Lazy.force dense_engine) null_cb toks
             : unit Matcher.outcome))
       (Lazy.force corpus_tokens);
     let counts = Profile.production_counts () in
     Profile.reset_coverage ();
     Profile.coverage_enabled := saved;
     Heat.of_counts counts)

let specialized profile =
  Specialize.build ~profile (Lazy.force dense)

let spec_hot = lazy (specialized (Lazy.force observed_profile))

let spec_engine spec =
  Specialize.engine ~grammar:(Lazy.force vax_grammar) spec

let run_outcome engine tokens =
  match Matcher.run_engine ~trace:true engine null_cb tokens with
  | outcome -> Ok outcome.Matcher.trace
  | exception Matcher.Reject e -> Error e

let check_same_traces what spec =
  let se = spec_engine spec in
  List.iteri
    (fun i tokens ->
      let d = run_outcome (Lazy.force dense_engine) tokens in
      let s = run_outcome se tokens in
      match (d, s) with
      | Ok dt, Ok st ->
        if dt <> st then Alcotest.failf "%s: tree %d: traces differ" what i
      | Error de, Error se ->
        if
          de.Matcher.at <> se.Matcher.at
          || de.Matcher.state <> se.Matcher.state
          || de.Matcher.expected <> se.Matcher.expected
        then Alcotest.failf "%s: tree %d: rejects differ" what i
      | Ok _, Error e ->
        Alcotest.failf "%s: tree %d: specialized rejected (%a)" what i
          Matcher.pp_error e
      | Error _, Ok _ ->
        Alcotest.failf "%s: tree %d: specialized accepted a reject" what i)
    (Lazy.force corpus_tokens)

let test_verify_observed () =
  match Specialize.verify (Lazy.force spec_hot) (Lazy.force dense) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verify: %s" m

let test_traces_observed () =
  check_same_traces "observed profile" (Lazy.force spec_hot)

let test_traces_empty_profile () =
  (* no heat at all: the degenerate all-hot layout must still be exact *)
  let spec = specialized Heat.empty in
  (match Specialize.verify spec (Lazy.force dense) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verify(empty): %s" m);
  check_same_traces "empty profile" spec

let test_traces_uniform_profile () =
  let g = Lazy.force vax_grammar in
  let uniform =
    Heat.of_counts (List.init (Grammar.n_productions g) (fun id -> (id, 1)))
  in
  let spec = specialized uniform in
  (match Specialize.verify spec (Lazy.force dense) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verify(uniform): %s" m);
  check_same_traces "uniform profile" spec

(* specialization must be exact for ANY profile: random ids (including
   ids no grammar has), huge counts, duplicates — the profile may only
   steer layout, never meaning *)
let test_qcheck_adversarial_profiles () =
  let gen =
    QCheck.list_of_size (QCheck.Gen.int_range 0 40)
      (QCheck.pair (QCheck.int_range 0 5000) (QCheck.int_range (-5) 1_000_000))
  in
  let some_trees =
    match Lazy.force corpus_tokens with
    | a :: b :: c :: _ -> [ a; b; c ]
    | ts -> ts
  in
  let prop raw =
    let profile = Heat.of_counts raw in
    let spec = specialized profile in
    (match Specialize.verify spec (Lazy.force dense) with
    | Ok () -> ()
    | Error m -> QCheck.Test.fail_reportf "verify: %s" m);
    let se = spec_engine spec in
    List.for_all
      (fun tokens ->
        run_outcome (Lazy.force dense_engine) tokens = run_outcome se tokens)
      some_trees
  in
  let test =
    QCheck.Test.make ~name:"adversarial profiles stay exact" ~count:25 gen
      prop
  in
  QCheck.Test.check_exn test

(* dense vs packed vs specialized action traces, plus byte-identical
   assembly, across the fuzz corpus on both targets — the tentpole's
   end-to-end differential *)
let fuzz_seeds = List.init 201 (fun s -> s)

let test_fuzz_assembly_parity () =
  List.iter
    (fun target ->
      let profile = Targets.heat_profile target in
      let baseline = Targets.default_tables target in
      let spec_tables =
        Targets.specialized_tables ~use_cache:false ~profile target
      in
      List.iter
        (fun seed ->
          let prog =
            Sema.lower_program
              (Corpus.program ~seed ~functions:2 ~stmts_per_function:8)
          in
          let asm tables =
            (Driver.compile_program ~tables prog).Driver.assembly
          in
          if asm baseline <> asm spec_tables then
            Alcotest.failf "%s: seed %d: assembly differs"
              (Targets.name target) seed)
        fuzz_seeds)
    Targets.all

let test_spec_bytes_not_larger () =
  (* the resident-footprint gate: specialization may never cost bytes *)
  List.iter
    (fun target ->
      let b = Targets.backend_of target in
      let g = Lazy.force b.Backend.default_grammar in
      let dense = Tables.build g in
      let packed = Packed.pack dense in
      let profile = Targets.heat_profile target in
      let spec = Specialize.build ~profile dense in
      let pb = (Packed.stats packed).Packed.packed_bytes in
      let sb = (Specialize.stats spec).Specialize.spec_bytes in
      if sb > pb then
        Alcotest.failf "%s: specialized %d bytes > baseline %d bytes"
          (Targets.name target) sb pb)
    Targets.all

let test_stats_shape () =
  let s = Specialize.stats (Lazy.force spec_hot) in
  Alcotest.(check bool) "some states hot" true (s.Specialize.hot_states > 0);
  Alcotest.(check bool)
    "not every state hot" true
    (s.Specialize.hot_states < s.Specialize.states);
  Alcotest.(check bool)
    "cold entries exist" true
    (s.Specialize.cold_entries > 0)

let test_probe_counters () =
  let was = !Metrics.enabled in
  Metrics.enabled := true;
  Metrics.reset ();
  let se = spec_engine (Lazy.force spec_hot) in
  List.iter
    (fun tokens ->
      ignore (Matcher.run_engine se null_cb tokens : unit Matcher.outcome))
    (Lazy.force corpus_tokens);
  let counters = Metrics.named_counters () in
  Metrics.enabled := was;
  let get n = try List.assoc n counters with Not_found -> 0 in
  let hot = get "matcher.probe_hits_hot" in
  let cold = get "matcher.probe_hits_cold" in
  if hot = 0 then Alcotest.fail "no hot probes recorded";
  (* the profile was collected from this very corpus: the hot partition
     must dominate its own probes *)
  if hot <= cold then
    Alcotest.failf "hot probes (%d) do not dominate cold (%d)" hot cold

let test_heat_canonical () =
  let a = Heat.of_counts [ (3, 5); (1, 2); (3, 1) ] in
  let b = Heat.of_counts [ (1, 2); (3, 6) ] in
  Alcotest.(check string) "digest merges duplicates" (Heat.digest a)
    (Heat.digest b);
  Alcotest.(check int) "total" 8 a.Heat.total;
  let c = Heat.of_counts [ (1, 2); (3, 6); (7, 0); (9, -4); (-1, 3) ] in
  Alcotest.(check string) "non-positive and negative-id entries dropped"
    (Heat.digest a) (Heat.digest c);
  (* round trip through the JSON document *)
  let p = Lazy.force observed_profile in
  let p' = Heat.parse (Heat.to_json_string p) in
  Alcotest.(check string) "json round trip" (Heat.digest p) (Heat.digest p');
  Alcotest.(check string) "byte-deterministic rendering"
    (Heat.to_json_string p)
    (Heat.to_json_string p')

let test_save_load () =
  let g = Lazy.force vax_grammar in
  let spec = Lazy.force spec_hot in
  let path = Filename.temp_file "spec-tables" ".tbl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Specialize.save spec path;
  let loaded = Specialize.load ~profile:(Lazy.force observed_profile) g path in
  (match Specialize.verify loaded (Lazy.force dense) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verify after load: %s" m);
  Alcotest.(check string) "profile digest survives"
    (Specialize.profile_digest spec)
    (Specialize.profile_digest loaded);
  (* a v2 (baseline packed) file must be refused *)
  Packed.save (Lazy.force packed) path;
  (match Specialize.load g path with
  | _ -> Alcotest.fail "loaded a v2 file as v3"
  | exception Failure _ -> ());
  (* and a stale-profile load must be refused when a profile is pinned *)
  Specialize.save spec path;
  match Specialize.load ~profile:Heat.empty g path with
  | _ -> Alcotest.fail "loaded despite profile digest mismatch"
  | exception Failure _ -> ()

let with_temp_cache_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "ggcg-spec-test-%d" (Unix.getpid ()))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let test_cache_roundtrip () =
  with_temp_cache_dir @@ fun dir ->
  let g = Lazy.force vax_grammar in
  let profile = Lazy.force observed_profile in
  let spec = Lazy.force spec_hot in
  Alcotest.(check bool) "store" true
    (Specialize.cache_store ~dir ~target:"vax" g spec);
  (match Specialize.cache_load ~dir ~target:"vax" ~profile g with
  | Some t ->
    Alcotest.(check string) "profile digest" (Heat.digest profile)
      (Specialize.profile_digest t)
  | None -> Alcotest.fail "cache miss after store");
  (* a different profile misses: the digest is part of the key *)
  match Specialize.cache_load ~dir ~target:"vax" ~profile:Heat.empty g with
  | Some _ -> Alcotest.fail "hit with the wrong profile"
  | None -> ()

let test_cache_listing_and_eviction () =
  with_temp_cache_dir @@ fun dir ->
  let g = Lazy.force vax_grammar in
  let profile = Lazy.force observed_profile in
  let spec = Lazy.force spec_hot in
  let packed = Lazy.force packed in
  ignore (Cache.store ~dir ~target:"vax" g packed : bool);
  ignore (Specialize.cache_store ~dir ~target:"vax" g spec : bool);
  (* listing tells baseline and specialized entries apart *)
  let entries = Cache.list ~dir () in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let spec_entries =
    List.filter (fun e -> e.Cache.e_profile_digest <> None) entries
  in
  (match spec_entries with
  | [ e ] ->
    Alcotest.(check (option string))
      "profile digest listed"
      (Some (Heat.digest profile))
      e.Cache.e_profile_digest;
    Alcotest.(check bool) "bytes measured" true (e.Cache.e_bytes > 0)
  | _ -> Alcotest.fail "expected exactly one specialized entry");
  let live = [ ("vax", g) ] in
  (* live grammar, no declared profiles: the specialized entry stays *)
  let removed = Cache.clear_stale ~dir live in
  Alcotest.(check int) "nothing stale yet" 0 (List.length removed);
  (* live grammar but a different live profile: evicted *)
  let removed =
    Cache.clear_stale ~dir ~live_profiles:[ Heat.digest Heat.empty ] live
  in
  Alcotest.(check int) "stale profile evicted" 1 (List.length removed);
  (* stale grammar: a fresh specialized entry goes too *)
  ignore (Specialize.cache_store ~dir ~target:"vax" g spec : bool);
  let removed = Cache.clear_stale ~dir [] in
  Alcotest.(check int) "stale grammar evicts everything" 2
    (List.length removed)

let suite =
  [
    Alcotest.test_case "verify: observed profile" `Quick test_verify_observed;
    Alcotest.test_case "traces: observed profile" `Quick test_traces_observed;
    Alcotest.test_case "traces: empty profile" `Quick test_traces_empty_profile;
    Alcotest.test_case "traces: uniform profile" `Quick
      test_traces_uniform_profile;
    Alcotest.test_case "qcheck: adversarial profiles" `Slow
      test_qcheck_adversarial_profiles;
    Alcotest.test_case "fuzz corpus: assembly parity, both targets" `Slow
      test_fuzz_assembly_parity;
    Alcotest.test_case "specialized bytes <= baseline" `Quick
      test_spec_bytes_not_larger;
    Alcotest.test_case "stats shape" `Quick test_stats_shape;
    Alcotest.test_case "hot/cold probe counters" `Quick test_probe_counters;
    Alcotest.test_case "heat profile canonicalisation" `Quick
      test_heat_canonical;
    Alcotest.test_case "v3 save/load validation" `Quick test_save_load;
    Alcotest.test_case "cache round trip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache listing and eviction" `Quick
      test_cache_listing_and_eviction;
  ]
