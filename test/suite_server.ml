(* The compile server: wire-protocol round-trips, framing over real
   socketpairs, the bounded queue's blocking/backpressure/drain
   semantics, and end-to-end daemon behaviour — byte parity with
   direct compilation on the fixed corpus and 50 rendered fuzzed
   programs, the exception barrier, deadlines, backpressure, and
   graceful shutdown leaving no live domains. *)

module Protocol = Gg_server.Protocol
module Framing = Gg_server.Framing
module Squeue = Gg_server.Squeue
module Server = Gg_server.Server
module Client = Gg_server.Client
module Admin = Gg_server.Admin
module Flight = Gg_server.Flight
module Slog = Gg_server.Slog
module Json = Gg_profile.Json
module Trace = Gg_profile.Trace
module Metrics = Gg_profile.Metrics
module Parallel = Gg_codegen.Parallel
module Driver = Gg_codegen.Driver
module Backend = Gg_codegen.Backend
module Targets = Gg_targets.Targets
module Sema = Gg_frontc.Sema
module Corpus = Gg_frontc.Corpus

let tables = lazy (Lazy.force Driver.default_tables)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "ggcg-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(workers = 2) ?(queue_capacity = 16) ?(flight_capacity = 64)
    ?crash_dump ?logger f =
  let socket = fresh_socket () in
  let config =
    {
      (Server.default_config ~socket_path:socket) with
      Server.workers;
      queue_capacity;
      read_timeout_s = 2.;
      flight_capacity;
      crash_dump;
      logger =
        (match logger with Some l -> l | None -> Slog.null);
    }
  in
  let t = Server.start ~config ~tables:Targets.default_tables () in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f socket t)

(* -- protocol ---------------------------------------------------------------- *)

let test_request_roundtrip () =
  let reqs =
    [
      Protocol.request "int main() { return 0; }";
      Protocol.request ~request_id:"" "int main() { return 0; }";
      Protocol.request ~request_id:"r1234-deadbeef-0001"
        "int main() { return 0; }";
      Protocol.request ~request_id:(String.make Protocol.max_request_id 'i')
        "int main() { return 0; }";
      Protocol.request ~target:Backend.Risc "int main() { return 0; }";
      Protocol.request ~target:Backend.Risc ~regalloc:Gg_codegen.Driver.Color
        "int main() { return 0; }";
      Protocol.request ~backend:Protocol.Pcc ~idioms:false ~peephole:true
        ~explain:true ~jobs:7 ~deadline_ms:1234 ~fail_inject:true ~sleep_ms:9
        "";
      Protocol.request (String.make 100_000 'x');
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "decode inverts encode" true
        (Protocol.decode_request (Protocol.encode_request r) = r))
    reqs

let test_request_ids () =
  (* the constructor defaults to a fresh id and truncates long ones *)
  let a = Protocol.request "int x;" and b = Protocol.request "int x;" in
  Alcotest.(check bool) "default ids are non-empty" true
    (a.Protocol.request_id <> "");
  Alcotest.(check bool) "default ids are distinct" true
    (a.Protocol.request_id <> b.Protocol.request_id);
  Alcotest.(check bool) "default ids fit the wire" true
    (String.length a.Protocol.request_id <= Protocol.max_request_id);
  let long = Protocol.request ~request_id:(String.make 300 'x') "int x;" in
  Alcotest.(check int) "an oversized id is truncated" Protocol.max_request_id
    (String.length long.Protocol.request_id);
  Alcotest.(check bool) "a truncated id still round-trips" true
    (Protocol.decode_request (Protocol.encode_request long) = long)

let test_old_versions_rejected () =
  (* v2/v3 frames (and any other version byte) must fail decode — the
     daemon answers Bad_request instead of misparsing the old layout *)
  let whole = Protocol.encode_request (Protocol.request "int x;") in
  List.iter
    (fun v ->
      let b = Bytes.of_string whole in
      Bytes.set b 1 (Char.chr v);
      match Protocol.decode_request (Bytes.to_string b) with
      | _ -> Alcotest.failf "accepted a version-%d frame" v
      | exception Protocol.Protocol_error m ->
        Alcotest.(check bool) "the error names the version" true
          (contains ~sub:(string_of_int v) m))
    [ 0; 1; 2; 3; 5; 255 ]

let test_response_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "decode inverts encode" true
        (Protocol.decode_response (Protocol.encode_response r) = r))
    [
      Protocol.Asm "  movl r0, r1\n";
      Protocol.Asm "";
      Protocol.Error (Protocol.Lex, "lexical error, line 3: bad char");
      Protocol.Error (Protocol.Parse, "syntax error, line 1: x");
      Protocol.Error (Protocol.Semantic, "undefined variable x");
      Protocol.Error (Protocol.Reject, "blocked");
      Protocol.Error (Protocol.Internal, "Stack_overflow");
      Protocol.Error (Protocol.Bad_request, "truncated");
      Protocol.Retry_after 50;
      Protocol.Timeout;
    ]

let test_decode_rejects_garbage () =
  let bad s =
    match Protocol.decode_request s with
    | _ -> Alcotest.failf "accepted %S" s
    | exception Protocol.Protocol_error _ -> ()
  in
  bad "";
  bad "x";
  bad "QQQQQQQQ";
  (* a valid request truncated at every prefix length must never
     decode (and never raise anything but Protocol_error) *)
  let whole = Protocol.encode_request (Protocol.request "int x;") in
  for n = 0 to String.length whole - 1 do
    bad (String.sub whole 0 n)
  done;
  match Protocol.decode_response "R" with
  | _ -> Alcotest.fail "accepted a truncated response"
  | exception Protocol.Protocol_error _ -> ()

(* -- protocol properties ----------------------------------------------------- *)

(* random well-formed requests: both backends, both targets, both
   allocators — except the Pcc/Risc and Pcc/Color pairings, which fail
   decode by design, so the generator never produces them *)
let request_gen =
  let open QCheck.Gen in
  oneofl [ Protocol.Gg; Protocol.Pcc ] >>= fun backend ->
  (if backend = Protocol.Pcc then return Backend.Vax
   else oneofl [ Backend.Vax; Backend.Risc ])
  >>= fun target ->
  (if backend = Protocol.Pcc then return Gg_codegen.Driver.Stack
   else oneofl [ Gg_codegen.Driver.Stack; Gg_codegen.Driver.Color ])
  >>= fun regalloc ->
  quad bool bool bool (int_range 1 64)
  >>= fun (idioms, peephole, explain, jobs) ->
  triple bool (int_range 0 1_000_000) (int_range 0 60_000)
  >>= fun (fail_inject, deadline_ms, sleep_ms) ->
  string_size (int_range 0 Protocol.max_request_id) >>= fun request_id ->
  string_size (int_range 0 2_000) >>= fun source ->
  return
    (Protocol.request ~request_id ~backend ~target ~regalloc ~idioms ~peephole
       ~explain ~jobs ~deadline_ms ~fail_inject ~sleep_ms source)

let response_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun s -> Protocol.Asm s) (string_size (int_range 0 2_000));
      map2
        (fun k m -> Protocol.Error (k, m))
        (oneofl
           [
             Protocol.Lex;
             Protocol.Parse;
             Protocol.Semantic;
             Protocol.Reject;
             Protocol.Internal;
             Protocol.Bad_request;
           ])
        (string_size (int_range 0 200));
      map (fun n -> Protocol.Retry_after n) (int_range 0 100_000);
      return Protocol.Timeout;
    ]

let prop_request_roundtrip =
  QCheck.Test.make ~name:"random requests survive encode/decode" ~count:300
    (QCheck.make request_gen)
    (fun r -> Protocol.decode_request (Protocol.encode_request r) = r)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"random responses survive encode/decode" ~count:300
    (QCheck.make response_gen)
    (fun r -> Protocol.decode_response (Protocol.encode_response r) = r)

(* a mutated frame may still decode (a flipped bit inside the source
   text is a different valid request), but the only exception the
   decoders may ever raise is Protocol_error — anything else would
   escape the daemon's Bad_request answer and kill the worker *)
let prop_request_mutation =
  QCheck.Test.make
    ~name:"byte-mutated request frames never escape Protocol_error" ~count:500
    (QCheck.make
       QCheck.Gen.(triple request_gen (int_range 0 max_int) (int_range 0 255)))
    (fun (r, pos, byte) ->
      let b = Bytes.of_string (Protocol.encode_request r) in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      match Protocol.decode_request (Bytes.to_string b) with
      | (_ : Protocol.request) -> true
      | exception Protocol.Protocol_error _ -> true)

let prop_response_mutation =
  QCheck.Test.make
    ~name:"byte-mutated response frames never escape Protocol_error" ~count:500
    (QCheck.make
       QCheck.Gen.(triple response_gen (int_range 0 max_int) (int_range 0 255)))
    (fun (r, pos, byte) ->
      let b = Bytes.of_string (Protocol.encode_response r) in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      match Protocol.decode_response (Bytes.to_string b) with
      | (_ : Protocol.response) -> true
      | exception Protocol.Protocol_error _ -> true)

(* -- framing ----------------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () -> f a b)

let test_framing_roundtrip () =
  with_socketpair @@ fun a b ->
  let payloads = [ ""; "x"; String.make 70_000 'p' ] in
  List.iter (Framing.write_frame a) payloads;
  List.iter
    (fun want ->
      match Framing.read_frame b with
      | Some got -> Alcotest.(check int) "frame length" (String.length want)
          (String.length got)
      | None -> Alcotest.fail "unexpected EOF")
    payloads;
  Unix.close a;
  Alcotest.(check bool) "clean EOF is None" true (Framing.read_frame b = None)

let test_framing_mid_frame_eof () =
  with_socketpair @@ fun a b ->
  (* a length prefix promising 100 bytes, then only 3 and EOF *)
  let buf = Bytes.create 7 in
  Bytes.set_int32_be buf 0 100l;
  Bytes.blit_string "abc" 0 buf 4 3;
  ignore (Unix.write a buf 0 7);
  Unix.close a;
  match Framing.read_frame b with
  | _ -> Alcotest.fail "mid-frame EOF must not decode"
  | exception Protocol.Protocol_error _ -> ()

let test_framing_oversized () =
  with_socketpair @@ fun a b ->
  let buf = Bytes.create 4 in
  Bytes.set_int32_be buf 0 (Int32.of_int (Protocol.max_frame + 1));
  ignore (Unix.write a buf 0 4);
  match Framing.read_frame b with
  | _ -> Alcotest.fail "oversized frame must not decode"
  | exception Protocol.Protocol_error _ -> ()

(* -- the bounded queue ------------------------------------------------------- *)

let test_squeue_bounds_and_drain () =
  let q = Squeue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Squeue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Squeue.try_push q 2);
  Alcotest.(check bool) "push to a full queue fails" false (Squeue.try_push q 3);
  Alcotest.(check int) "length" 2 (Squeue.length q);
  Squeue.close q;
  Alcotest.(check bool) "push after close fails" false (Squeue.try_push q 4);
  (* drain-after-close: the backlog is still served, in order *)
  Alcotest.(check (option int)) "drains 1" (Some 1) (Squeue.pop q);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Squeue.pop q);
  Alcotest.(check (option int)) "then None" None (Squeue.pop q);
  Alcotest.(check (option int)) "None forever" None (Squeue.pop q)

let test_squeue_blocking_pop_across_domains () =
  let q = Squeue.create ~capacity:4 in
  let got = Atomic.make 0 in
  let consumers =
    Parallel.spawn_pool ~domains:3 (fun _ ->
        let rec loop () =
          match Squeue.pop q with
          | Some n ->
            ignore (Atomic.fetch_and_add got n);
            loop ()
          | None -> ()
        in
        loop ())
  in
  let pushed = ref 0 in
  for i = 1 to 100 do
    (* producers must tolerate transient fullness *)
    while not (Squeue.try_push q i) do
      Domain.cpu_relax ()
    done;
    pushed := !pushed + i
  done;
  Squeue.close q;
  Parallel.join_pool consumers;
  Alcotest.(check int) "every pushed item was popped exactly once" !pushed
    (Atomic.get got)

(* -- end-to-end -------------------------------------------------------------- *)

let direct_compile src =
  (Driver.compile_program ~tables:(Lazy.force tables) (Sema.compile src))
    .Driver.assembly

let expect_asm = function
  | Protocol.Asm a -> a
  | Protocol.Error (k, m) ->
    Alcotest.failf "error response %a: %s" Protocol.pp_error_kind k m
  | Protocol.Retry_after _ -> Alcotest.fail "unexpected Retry_after"
  | Protocol.Timeout -> Alcotest.fail "unexpected Timeout"

let test_e2e_parity_fixed_corpus () =
  with_server @@ fun socket _t ->
  List.iter
    (fun (name, src) ->
      let served = expect_asm (Client.compile ~socket (Protocol.request src)) in
      if served <> direct_compile src then
        Alcotest.failf "%s: served assembly differs from direct" name)
    Corpus.fixed_programs

let test_e2e_parity_fuzzed () =
  with_server @@ fun socket _t ->
  for seed = 1 to 50 do
    let src = Corpus.random_source ~seed ~functions:2 ~stmts_per_function:6 in
    let served = expect_asm (Client.compile ~socket (Protocol.request src)) in
    if served <> direct_compile src then
      Alcotest.failf "seed %d: served assembly differs from direct" seed
  done

let test_e2e_risc_target () =
  (* a --target risc request is served from the RISC tables — byte
     parity with a direct RISC compile — and an interleaved vax request
     still gets vax assembly: the per-target resolver never
     cross-serves *)
  with_server @@ fun socket _t ->
  List.iter
    (fun (name, src) ->
      let served =
        expect_asm
          (Client.compile ~socket (Protocol.request ~target:Backend.Risc src))
      in
      let direct =
        (Driver.compile_program
           ~tables:(Targets.default_tables Backend.Risc)
           (Sema.compile src))
          .Driver.assembly
      in
      if served <> direct then
        Alcotest.failf "%s: served risc assembly differs from direct" name;
      let vax = expect_asm (Client.compile ~socket (Protocol.request src)) in
      if vax <> direct_compile src then
        Alcotest.failf "%s: vax assembly wrong after a risc request" name)
    (List.filteri (fun i _ -> i < 3) Corpus.fixed_programs)

let test_e2e_pcc_risc_bad_request () =
  (* the pcc baseline emits VAX assembly only: a hand-built Pcc/Risc
     frame must come back Bad_request, never compiled against the wrong
     machine *)
  with_server @@ fun socket _t ->
  let frame =
    Protocol.encode_request
      (Protocol.request ~backend:Protocol.Pcc ~target:Backend.Risc
         "int main() { return 0; }")
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Framing.write_frame fd frame;
  match Framing.read_frame fd with
  | Some payload -> (
    match Protocol.decode_response payload with
    | Protocol.Error (Protocol.Bad_request, _) -> ()
    | _ -> Alcotest.fail "expected Bad_request for a Pcc/Risc frame")
  | None -> Alcotest.fail "no response to a Pcc/Risc frame"

let test_e2e_error_parity () =
  with_server @@ fun socket _t ->
  let expect src kind =
    match Client.compile ~socket (Protocol.request src) with
    | Protocol.Error (k, _) when k = kind -> ()
    | r ->
      Alcotest.failf "expected %a, got %s" Protocol.pp_error_kind kind
        (match r with
        | Protocol.Asm _ -> "Asm"
        | Protocol.Error (k, m) -> Fmt.str "Error(%a,%s)" Protocol.pp_error_kind k m
        | Protocol.Retry_after _ -> "Retry_after"
        | Protocol.Timeout -> "Timeout")
  in
  expect "int main() { return $; }" Protocol.Lex;
  expect "int main() { return; } }" Protocol.Parse;
  expect "int main() { return nope; }" Protocol.Semantic

let test_e2e_crash_barrier_keeps_serving () =
  with_server @@ fun socket t ->
  let src = "int main() { return 7; }" in
  (* a compile that crashes inside codegen becomes an Internal error
     response... *)
  (match Client.compile ~socket (Protocol.request ~fail_inject:true src) with
  | Protocol.Error (Protocol.Internal, m) ->
    Alcotest.(check bool) "the injected message survives" true
      (contains ~sub:"fail_inject" m)
  | _ -> Alcotest.fail "expected an Internal error response");
  (* ...and the daemon keeps serving on the same socket *)
  let served = expect_asm (Client.compile ~socket (Protocol.request src)) in
  Alcotest.(check string) "still byte-identical after the crash"
    (direct_compile src) served;
  Alcotest.(check bool) "both requests were counted" true (Server.served t >= 2)

let test_e2e_deadline_timeout () =
  with_server @@ fun socket _t ->
  match
    Client.compile ~socket
      (Protocol.request ~sleep_ms:300 ~deadline_ms:50 "int main() { return 0; }")
  with
  | Protocol.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout"

let test_e2e_malformed_frame () =
  with_server @@ fun socket _t ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Framing.write_frame fd "this is not a request";
  match Framing.read_frame fd with
  | Some payload -> (
    match Protocol.decode_response payload with
    | Protocol.Error (Protocol.Bad_request, _) -> ()
    | _ -> Alcotest.fail "expected Bad_request")
  | None -> Alcotest.fail "no response to a malformed frame"

let test_e2e_backpressure () =
  (* one worker and a capacity-1 queue: a slow request (the sleep_ms
     hook) pins the worker, a silent connection fills the queue, and a
     burst of further connects must all see Retry_after from the accept
     thread while the worker is still busy *)
  with_server ~workers:1 ~queue_capacity:1 @@ fun socket _t ->
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    fd
  in
  let holder = connect () in
  Framing.write_frame holder
    (Protocol.encode_request
       (Protocol.request ~sleep_ms:2_000 "int main() { return 0; }"));
  Unix.sleepf 0.2 (* the worker pops the holder and starts sleeping *);
  let filler = connect () in
  Unix.sleepf 0.2 (* the filler is enqueued: the queue is now full *);
  let rejected = ref 0 in
  let extras =
    List.init 8 (fun _ ->
        let fd = connect () in
        (match Framing.read_frame fd with
        | Some payload -> (
          match Protocol.decode_response payload with
          | Protocol.Retry_after ms when ms > 0 -> incr rejected
          | _ -> ())
        | None | (exception Unix.Unix_error _) -> ());
        fd)
  in
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    (holder :: filler :: extras);
  Alcotest.(check int)
    (Fmt.str "every burst connect was rejected (%d of 8)" !rejected)
    8 !rejected

let test_retry_exhaustion () =
  (* a persistently full queue: Client.compile must back off, retry the
     configured number of times reporting each wait through on_retry,
     and then raise — the caller never sees Retry_after as an answer *)
  with_server ~workers:1 ~queue_capacity:1 @@ fun socket _t ->
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    fd
  in
  let holder = connect () in
  Framing.write_frame holder
    (Protocol.encode_request
       (Protocol.request ~sleep_ms:2_000 "int main() { return 0; }"));
  Unix.sleepf 0.2 (* the worker pops the holder and starts sleeping *);
  let filler = connect () in
  Unix.sleepf 0.2 (* the filler is enqueued: the queue is now full *);
  let events = ref [] in
  (match
     Client.compile ~retries:2
       ~on_retry:(fun ~attempt ~wait_ms ->
         events := (attempt, wait_ms) :: !events)
       ~socket
       (Protocol.request "int main() { return 1; }")
   with
  | _ -> Alcotest.fail "expected Server_error on retry exhaustion"
  | exception Client.Server_error m ->
    Alcotest.(check bool) "message counts the attempts" true
      (contains ~sub:"gave up after 3 attempts" m);
    Alcotest.(check bool) "message totals the backoff" true
      (contains ~sub:"ms of backoff" m));
  Alcotest.(check int) "on_retry fired once per sleep" 2 (List.length !events);
  List.iter
    (fun (attempt, wait_ms) ->
      Alcotest.(check bool)
        (Fmt.str "attempt %d wait within the cap" attempt)
        true
        (wait_ms >= 1 && wait_ms <= 2_000))
    !events;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ holder; filler ]

(* -- the ops plane: flight recorder, slog, admin, request ids ---------------- *)

let test_flight_wraparound () =
  let r = Flight.create 4 in
  let entry i =
    {
      Flight.fe_id = Fmt.str "req-%d" i;
      fe_bytes = i;
      fe_target = "vax";
      fe_regalloc = "stack";
      fe_outcome = "ok";
      fe_queue_wait_us = 1;
      fe_latency_us = 10 * i;
      fe_worker = 0;
      fe_ts = float_of_int i;
    }
  in
  Alcotest.(check (list string)) "empty ring" []
    (List.map (fun e -> e.Flight.fe_id) (Flight.entries r));
  for i = 1 to 10 do
    Flight.record r (entry i)
  done;
  Alcotest.(check int) "capacity" 4 (Flight.capacity r);
  Alcotest.(check int) "recorded counts every entry" 10 (Flight.recorded r);
  Alcotest.(check (list string)) "ring keeps the last N, oldest first"
    [ "req-7"; "req-8"; "req-9"; "req-10" ]
    (List.map (fun e -> e.Flight.fe_id) (Flight.entries r));
  (* the dump is one valid JSON document that names every retained id *)
  let doc = Json.parse (Flight.to_json r) in
  let ids =
    match Option.bind (Json.member "entries" doc) Json.to_list with
    | Some es ->
      List.filter_map
        (fun e -> Option.bind (Json.member "id" e) Json.to_str)
        es
    | None -> Alcotest.fail "flight dump has no entries array"
  in
  Alcotest.(check (list string)) "dump ids in ring order"
    [ "req-7"; "req-8"; "req-9"; "req-10" ]
    ids;
  Alcotest.(check (option int)) "dump records the total"
    (Some 10)
    (Option.bind (Json.member "recorded" doc) Json.to_int)

let test_flight_concurrent_records () =
  (* 4 domains hammer a small ring while the main thread reads it: no
     crash, every read entry internally consistent, and the final count
     is exact *)
  let r = Flight.create 8 in
  let per_domain = 500 in
  let pool =
    Parallel.spawn_pool ~domains:4 (fun d ->
        for i = 1 to per_domain do
          Flight.record r
            {
              Flight.fe_id = Fmt.str "d%d-%d" d i;
              fe_bytes = i;
              fe_target = "vax";
              fe_regalloc = "stack";
              fe_outcome = "ok";
              fe_queue_wait_us = 0;
              fe_latency_us = i;
              fe_worker = d;
              fe_ts = 0.;
            }
        done)
  in
  for _ = 1 to 200 do
    List.iter
      (fun e ->
        if not (contains ~sub:"-" e.Flight.fe_id) then
          Alcotest.failf "torn entry id %S" e.Flight.fe_id)
      (Flight.entries r)
  done;
  Parallel.join_pool pool;
  Alcotest.(check int) "every record counted" (4 * per_domain)
    (Flight.recorded r);
  Alcotest.(check int) "ring holds capacity entries" 8
    (List.length (Flight.entries r))

let test_slog_structure_and_levels () =
  let lines = ref [] in
  let logger = Slog.create ~level:Slog.Info (fun l -> lines := l :: !lines) in
  Slog.debug logger ~event:"dropped" [];
  Slog.info logger ~event:"request.done"
    [
      Slog.str "request_id" "r-1";
      Slog.int "latency_us" 1234;
      Slog.str "tricky" "a\"b\nc";
    ];
  Slog.warn logger ~event:"request.slow" [ Slog.int "slow_ms" 500 ];
  let lines = List.rev !lines in
  Alcotest.(check int) "debug below the level is dropped" 2
    (List.length lines);
  List.iter
    (fun line ->
      let j =
        try Json.parse line
        with Json.Parse_error m -> Alcotest.failf "bad log line %S: %s" line m
      in
      Alcotest.(check bool) "every record has a ts" true
        (Json.member "ts" j <> None);
      Alcotest.(check bool) "every record has a level" true
        (Json.member "level" j <> None))
    lines;
  let first = Json.parse (List.nth lines 0) in
  Alcotest.(check (option string)) "event field" (Some "request.done")
    (Option.bind (Json.member "event" first) Json.to_str);
  Alcotest.(check (option string)) "request id field" (Some "r-1")
    (Option.bind (Json.member "request_id" first) Json.to_str);
  Alcotest.(check (option int)) "int field" (Some 1234)
    (Option.bind (Json.member "latency_us" first) Json.to_int);
  Alcotest.(check (option string)) "escaping survives the round-trip"
    (Some "a\"b\nc")
    (Option.bind (Json.member "tricky" first) Json.to_str);
  Alcotest.(check (option string)) "level names match" (Some "warn")
    (Option.bind (Json.member "level" (Json.parse (List.nth lines 1))) Json.to_str)

(* one admin conversation, exactly what `mdgtool top` and the CI smoke
   job do: connect, one command line, read the reply to EOF *)
let admin_query sock cmd =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let line = cmd ^ "\n" in
  ignore (Unix.write_substring fd line 0 (String.length line) : int);
  let b = Buffer.create 1024 in
  let buf = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b buf 0 n;
      drain ()
  in
  drain ();
  Buffer.contents b

let test_admin_endpoint () =
  with_server @@ fun socket server ->
  let admin_sock = fresh_socket () in
  let admin =
    Admin.start ~socket_path:admin_sock
      ~handle:(Admin.default_handler ~server ~drain:ignore)
  in
  Fun.protect ~finally:(fun () -> Admin.stop admin)
  @@ fun () ->
  let requests_total () =
    let stats = Json.parse (admin_query admin_sock "stats") in
    Option.bind (Json.member "counters" stats)
      (Json.member "server.requests_total")
    |> fun o ->
    Option.value ~default:(-1) (Option.bind o Json.to_int)
  in
  let before = requests_total () in
  Alcotest.(check bool) "stats parses and has the counter" true (before >= 0);
  ignore
    (expect_asm (Client.compile ~socket (Protocol.request "int main() { return 5; }")));
  Alcotest.(check int) "the counter moved by exactly one request"
    (before + 1) (requests_total ());
  (* live stats are the very document the shutdown sidecar writes *)
  Alcotest.(check string) "admin stats = Metrics.to_json"
    (Metrics.to_json ())
    (admin_query admin_sock "stats");
  let health = Json.parse (admin_query admin_sock "health") in
  Alcotest.(check (option string)) "health status" (Some "ok")
    (Option.bind (Json.member "status" health) Json.to_str);
  Alcotest.(check bool) "health counts served requests" true
    (Option.bind (Json.member "served" health) Json.to_int = Some (Server.served server));
  (* the prometheus exposition names the counter with its value *)
  let prom = admin_query admin_sock "metrics" in
  Alcotest.(check bool) "prometheus TYPE line present" true
    (contains ~sub:"# TYPE ggcg_server_requests_total counter" prom);
  (* the flight command answers the live ring *)
  let flight = Json.parse (admin_query admin_sock "flight") in
  Alcotest.(check bool) "flight has at least the one request" true
    (match Option.bind (Json.member "entries" flight) Json.to_list with
    | Some es -> List.length es >= 1
    | None -> false);
  (* unknown commands answer an error object, not a hangup *)
  let err = Json.parse (admin_query admin_sock "bogus") in
  Alcotest.(check bool) "unknown command names itself" true
    (match Option.bind (Json.member "error" err) Json.to_str with
    | Some m -> contains ~sub:"bogus" m
    | None -> false)

let test_admin_drain_invokes_callback () =
  with_server @@ fun _socket server ->
  let admin_sock = fresh_socket () in
  let drained = Atomic.make false in
  let admin =
    Admin.start ~socket_path:admin_sock
      ~handle:
        (Admin.default_handler ~server ~drain:(fun () ->
             Atomic.set drained true))
  in
  Fun.protect ~finally:(fun () -> Admin.stop admin)
  @@ fun () ->
  let reply = Json.parse (admin_query admin_sock "drain") in
  Alcotest.(check (option string)) "drain acknowledges" (Some "draining")
    (Option.bind (Json.member "status" reply) Json.to_str);
  Alcotest.(check bool) "the drain callback fired" true (Atomic.get drained)

let wait_for_file ?(timeout_s = 5.) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if Sys.file_exists path then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let test_crash_barrier_dumps_flight () =
  let dump = fresh_socket () ^ ".flight.json" in
  with_server ~crash_dump:dump @@ fun socket _t ->
  let id = "crash-correlate-me" in
  (match
     Client.compile ~socket
       (Protocol.request ~request_id:id ~fail_inject:true "int main() { return 0; }")
   with
  | Protocol.Error (Protocol.Internal, _) -> ()
  | _ -> Alcotest.fail "expected an Internal error response");
  Alcotest.(check bool) "the crash produced a dump" true (wait_for_file dump);
  Fun.protect ~finally:(fun () -> try Sys.remove dump with Sys_error _ -> ())
  @@ fun () ->
  (* the dump may still be re-written by the worker; parse with retry *)
  let doc =
    let rec parse tries =
      match Json.parse_file dump with
      | j -> j
      | exception Json.Parse_error _ when tries > 0 ->
        Unix.sleepf 0.05;
        parse (tries - 1)
    in
    parse 20
  in
  let entries =
    Option.value ~default:[]
      (Option.bind (Json.member "entries" doc) Json.to_list)
  in
  let crashing =
    List.find_opt
      (fun e -> Option.bind (Json.member "id" e) Json.to_str = Some id)
      entries
  in
  match crashing with
  | None -> Alcotest.failf "dump does not contain the crashing request %s" id
  | Some e ->
    Alcotest.(check (option string)) "the entry records the internal outcome"
      (Some "internal")
      (Option.bind (Json.member "outcome" e) Json.to_str)

let test_request_id_threads_through_spans () =
  (* the one id must appear on the server's request span and on every
     client-side span — that is what trace-merge correlates on *)
  Trace.enabled := true;
  Trace.reset ();
  Fun.protect ~finally:(fun () ->
      Trace.enabled := false;
      Trace.reset ())
  @@ fun () ->
  let id = "trace-correlate-me" in
  (with_server
  @@ fun socket _t ->
  ignore
    (expect_asm
       (Client.compile ~socket
          (Protocol.request ~request_id:id "int main() { return 0; }"))));
  let tagged name =
    List.exists
      (fun (e : Trace.event) ->
        e.Trace.ev_name = name
        && List.mem_assoc "request_id" e.Trace.ev_args
        && List.assoc "request_id" e.Trace.ev_args = id)
      (Trace.events ())
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span carries the id") true (tagged name))
    [ "request"; "client.connect"; "client.write"; "client.await" ];
  (* and the exported document renders the args *)
  Alcotest.(check bool) "exported trace carries the id" true
    (contains ~sub:id (Trace.export ()))

let test_e2e_old_version_bad_request () =
  (* a well-formed v3 frame against a v4 daemon: answered Bad_request,
     the daemon keeps serving *)
  with_server @@ fun socket _t ->
  let frame =
    let b = Bytes.of_string (Protocol.encode_request (Protocol.request "int x;")) in
    Bytes.set b 1 '\003';
    Bytes.to_string b
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Framing.write_frame fd frame;
  (match Framing.read_frame fd with
  | Some payload -> (
    match Protocol.decode_response payload with
    | Protocol.Error (Protocol.Bad_request, m) ->
      Alcotest.(check bool) "the answer names the version" true
        (contains ~sub:"version" m)
    | _ -> Alcotest.fail "expected Bad_request for a v3 frame")
  | None -> Alcotest.fail "no response to a v3 frame");
  let src = "int main() { return 9; }" in
  Alcotest.(check string) "still serving v4 after the v3 frame"
    (direct_compile src)
    (expect_asm (Client.compile ~socket (Protocol.request src)))

(* -- spawn on demand --------------------------------------------------------- *)

let ggccd_path () =
  (* tests run from _build/default/test; the daemon sits next door *)
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "ggccd.exe"))

let test_concurrent_double_ensure () =
  (* two --spawn clients race to start a daemon on the same fresh
     socket: both must succeed — one child wins the socket, the
     loser's exit is treated as the race it is, not a failure — and
     every child this process forked must be reapable (no zombies) *)
  let ggccd = ggccd_path () in
  Alcotest.(check bool) (Fmt.str "daemon binary %s exists" ggccd) true
    (Sys.file_exists ggccd);
  (* prewarm the on-disk table cache in a private directory the
     children inherit, so daemon startup is cache-load fast *)
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "ggcg-test-cache-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir cache_dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Unix.putenv "GGCG_CACHE_DIR" cache_dir;
  ignore
    (Driver.cached_tables ~dir:cache_dir Driver.default_options.Driver.grammar);
  let socket = fresh_socket () in
  let results = Array.make 2 (Error "unset") in
  let callers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            results.(i) <-
              (match Client.ensure ~ggccd ~wait_s:30. ~socket ~spawn:true () with
              | pid -> Ok pid
              | exception Client.Server_error m -> Error m)))
  in
  List.iter Domain.join callers;
  let pids =
    Array.to_list results
    |> List.filter_map (function Ok (Some pid) -> Some pid | _ -> None)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun pid ->
          try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
        pids;
      List.iter
        (fun pid ->
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        pids)
  @@ fun () ->
  Array.iter
    (function
      | Ok _ -> ()
      | Error m -> Alcotest.failf "a racing ensure failed: %s" m)
    results;
  Alcotest.(check bool) "at least one caller owns the serving daemon" true
    (pids <> []);
  (* the survivor really serves, byte-identical to direct compilation *)
  let src = "int main() { return 42; }" in
  Alcotest.(check string) "the race winner compiles correctly"
    (direct_compile src)
    (expect_asm (Client.compile ~socket (Protocol.request src)));
  (* a third ensure against the live socket spawns nothing *)
  Alcotest.(check bool) "ensure on a live socket spawns nothing" true
    (Client.ensure ~ggccd ~socket ~spawn:true () = None)

let test_sigquit_flight_dump () =
  (* the real daemon: SIGQUIT must produce a well-formed flight dump
     naming the served request, and the daemon must keep serving *)
  let ggccd = ggccd_path () in
  let socket = fresh_socket () in
  let dump = socket ^ ".flight.json" in
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process ggccd
      [| ggccd; "--socket"; socket; "--flight-dump"; dump; "--workers"; "2" |]
      null_in null_out null_out
  in
  Unix.close null_in;
  Unix.close null_out;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ dump; socket ])
  @@ fun () ->
  let deadline = Unix.gettimeofday () +. 30. in
  let rec wait_alive () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "daemon did not start serving"
      else begin
        Unix.sleepf 0.1;
        wait_alive ()
      end
  in
  wait_alive ();
  let id = "sigquit-correlate-me" in
  ignore
    (expect_asm
       (Client.compile ~socket
          (Protocol.request ~request_id:id "int main() { return 0; }")));
  Unix.kill pid Sys.sigquit;
  Alcotest.(check bool) "SIGQUIT produced the dump" true (wait_for_file dump);
  let doc =
    let rec parse tries =
      match Json.parse_file dump with
      | j -> j
      | exception (Json.Parse_error _ | Sys_error _) when tries > 0 ->
        Unix.sleepf 0.05;
        parse (tries - 1)
    in
    parse 20
  in
  let ids =
    Option.value ~default:[]
      (Option.bind (Json.member "entries" doc) Json.to_list)
    |> List.filter_map (fun e -> Option.bind (Json.member "id" e) Json.to_str)
  in
  Alcotest.(check bool) "the dump names the served request" true
    (List.mem id ids);
  (* still serving after the dump *)
  let src = "int main() { return 4; }" in
  Alcotest.(check string) "daemon survives SIGQUIT"
    (direct_compile src)
    (expect_asm (Client.compile ~socket (Protocol.request src)))

let test_e2e_graceful_stop () =
  let socket = fresh_socket () in
  let config =
    { (Server.default_config ~socket_path:socket) with Server.workers = 2 }
  in
  let t = Server.start ~config ~tables:(fun _ -> Lazy.force tables) () in
  let src = "int main() { return 3; }" in
  ignore (expect_asm (Client.compile ~socket (Protocol.request src)));
  Server.stop t;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket);
  Alcotest.(check int) "no live worker domains" 0 (Parallel.live_domains ());
  Server.stop t (* idempotent *);
  match Client.compile ~socket (Protocol.request src) with
  | _ -> Alcotest.fail "a stopped server must not answer"
  | exception Client.Server_error _ -> ()

let test_start_refuses_live_socket () =
  with_server @@ fun socket _t ->
  let config = Server.default_config ~socket_path:socket in
  match Server.start ~config ~tables:(fun _ -> Lazy.force tables) () with
  | t2 ->
    Server.stop t2;
    Alcotest.fail "second server bound a live socket"
  | exception Failure m ->
    Alcotest.(check bool) "message names the socket" true
      (contains ~sub:socket m)

let suite =
  [
    Alcotest.test_case "protocol: request round-trip" `Quick
      test_request_roundtrip;
    Alcotest.test_case "protocol: response round-trip" `Quick
      test_response_roundtrip;
    Alcotest.test_case "protocol: garbage and truncations rejected" `Quick
      test_decode_rejects_garbage;
    Alcotest.test_case "protocol: request ids default, dedupe, truncate" `Quick
      test_request_ids;
    Alcotest.test_case "protocol: v0-v3 and future versions rejected" `Quick
      test_old_versions_rejected;
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_response_roundtrip;
    QCheck_alcotest.to_alcotest prop_request_mutation;
    QCheck_alcotest.to_alcotest prop_response_mutation;
    Alcotest.test_case "framing: round-trip and clean EOF" `Quick
      test_framing_roundtrip;
    Alcotest.test_case "framing: mid-frame EOF is an error" `Quick
      test_framing_mid_frame_eof;
    Alcotest.test_case "framing: oversized frame is an error" `Quick
      test_framing_oversized;
    Alcotest.test_case "squeue: bounds, close, drain-after-close" `Quick
      test_squeue_bounds_and_drain;
    Alcotest.test_case "squeue: MPMC across domains" `Quick
      test_squeue_blocking_pop_across_domains;
    Alcotest.test_case "e2e: byte parity on the fixed corpus" `Slow
      test_e2e_parity_fixed_corpus;
    Alcotest.test_case "e2e: byte parity on 50 fuzzed programs" `Slow
      test_e2e_parity_fuzzed;
    Alcotest.test_case "e2e: risc target served from risc tables" `Quick
      test_e2e_risc_target;
    Alcotest.test_case "e2e: Pcc/Risc frame answered Bad_request" `Quick
      test_e2e_pcc_risc_bad_request;
    Alcotest.test_case "e2e: frontend errors come back typed" `Quick
      test_e2e_error_parity;
    Alcotest.test_case "e2e: crash inside codegen, daemon keeps serving" `Quick
      test_e2e_crash_barrier_keeps_serving;
    Alcotest.test_case "e2e: deadline produces Timeout" `Quick
      test_e2e_deadline_timeout;
    Alcotest.test_case "e2e: malformed frame answered Bad_request" `Quick
      test_e2e_malformed_frame;
    Alcotest.test_case "e2e: full queue answers Retry_after" `Quick
      test_e2e_backpressure;
    Alcotest.test_case "client: retry exhaustion raises, backoff capped" `Quick
      test_retry_exhaustion;
    Alcotest.test_case "flight: ring wrap-around keeps the last N" `Quick
      test_flight_wraparound;
    Alcotest.test_case "flight: lock-free under 4 recording domains" `Quick
      test_flight_concurrent_records;
    Alcotest.test_case "slog: JSON lines, levels, escaping" `Quick
      test_slog_structure_and_levels;
    Alcotest.test_case "admin: stats/health/metrics/flight over the socket"
      `Quick test_admin_endpoint;
    Alcotest.test_case "admin: drain invokes the shutdown callback" `Quick
      test_admin_drain_invokes_callback;
    Alcotest.test_case "flight: crash barrier dumps the crashing id" `Quick
      test_crash_barrier_dumps_flight;
    Alcotest.test_case "trace: request id rides client and server spans"
      `Quick test_request_id_threads_through_spans;
    Alcotest.test_case "e2e: v3 frame answered Bad_request, v4 still served"
      `Quick test_e2e_old_version_bad_request;
    Alcotest.test_case "e2e: SIGQUIT dumps the flight recorder" `Slow
      test_sigquit_flight_dump;
    Alcotest.test_case "client: concurrent double-ensure both succeed" `Slow
      test_concurrent_double_ensure;
    Alcotest.test_case "e2e: graceful stop, idempotent, no live domains" `Quick
      test_e2e_graceful_stop;
    Alcotest.test_case "start refuses a socket with a live server" `Quick
      test_start_refuses_live_socket;
  ]
