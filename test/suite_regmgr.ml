(* Direct unit tests for the register manager (paper section 5.3.3):
   stack discipline, source reclamation, pinning, spilling to virtual
   registers, and descriptor redirection. *)

open Gg_ir
open Gg_codegen
module Insn = Gg_ir.Insn
module Mode = Gg_ir.Mode

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let setup ?reserved () =
  let out = ref [] in
  let frame = Frame.create ~locals_size:0 ~temps:[] in
  let regs = Regmgr.create ?reserved ~emit:(fun i -> out := i :: !out) frame in
  (regs, frame, out)

let reg_of (d : Desc.t) =
  match d.Desc.operand with
  | Mode.Reg r -> r
  | m -> Alcotest.failf "expected a register, got %s" (Mode.assembly m)

let test_allocation_order () =
  let regs, _, _ = setup () in
  let d1 = Regmgr.alloc regs Dtype.Long in
  let d2 = Regmgr.alloc regs Dtype.Long in
  check_int "first r6" 6 (reg_of d1);
  check_int "then r7" 7 (reg_of d2);
  check_int "two in use" 2 (Regmgr.in_use regs)

let test_release_and_reuse () =
  let regs, _, _ = setup () in
  let d1 = Regmgr.alloc regs Dtype.Long in
  let r1 = reg_of d1 in
  Regmgr.release regs d1;
  check_int "freed" 0 (Regmgr.in_use regs);
  (* the most recently freed register is reused first (the paper's
     reclaim-from-sources behaviour) *)
  let d2 = Regmgr.alloc regs Dtype.Long in
  check_int "reclaimed" r1 (reg_of d2)

let test_pair_allocation () =
  let regs, _, _ = setup () in
  let d = Regmgr.alloc regs Dtype.Dbl in
  let r = reg_of d in
  Alcotest.(check (list int)) "owns both halves" [ r; r + 1 ] d.Desc.owned;
  (* the next single must avoid both halves *)
  let d2 = Regmgr.alloc regs Dtype.Long in
  check_bool "no overlap" true (reg_of d2 <> r && reg_of d2 <> r + 1)

let test_spill_bottom_of_stack () =
  let regs, _, out = setup () in
  let first = Regmgr.alloc regs Dtype.Long in
  let first_reg = reg_of first in
  (* exhaust the bank *)
  let rest = List.init 5 (fun _ -> Regmgr.alloc regs Dtype.Long) in
  check_int "bank full" 6 (Regmgr.in_use regs);
  (* the 7th allocation spills the oldest (bottom of the stack) *)
  let d7 = Regmgr.alloc regs Dtype.Long in
  check_int "spill reuses the bottom register" first_reg (reg_of d7);
  (* the spilled descriptor was redirected to a frame slot *)
  check_bool "redirected to memory" true (Mode.is_memory first.Desc.operand);
  Alcotest.(check (list int)) "ownership dropped" [] first.Desc.owned;
  (* and a spill store was emitted *)
  check_bool "spill store emitted" true
    (List.exists
       (function
         | Insn.Insn ("movl", [ Mode.Reg r; m ]) ->
           r = first_reg && Mode.is_memory m
         | _ -> false)
       !out);
  ignore rest

let test_pinned_never_spilled () =
  let regs, _, _ = setup () in
  let base = Regmgr.alloc regs Dtype.Long in
  let br = reg_of base in
  (* compose a memory operand owning the base register: it gets pinned *)
  let mem =
    Regmgr.compose regs
      (Desc.make ~owned:base.Desc.owned Dtype.Long (Mode.mem_deferred br))
  in
  (* exhaust and force spills: the pinned register must survive *)
  let others = List.init 5 (fun _ -> Regmgr.alloc regs Dtype.Long) in
  let extra = Regmgr.alloc regs Dtype.Long in
  check_bool "pinned register not taken" true (reg_of extra <> br);
  check_bool "operand intact" true
    (Mode.equal mem.Desc.operand (Mode.mem_deferred br));
  ignore others

let test_as_register_loads_memory () =
  let regs, _, out = setup () in
  let d = Desc.make Dtype.Long (Mode.mem_sym "a") in
  let rd = Regmgr.as_register regs d in
  check_bool "now a register" true (Mode.is_register rd.Desc.operand);
  check_bool "load emitted" true
    (List.exists
       (function
         | Insn.Insn ("movl", [ m; Mode.Reg _ ]) -> Mode.is_memory m
         | _ -> false)
       !out)

let test_reserved_excluded () =
  let regs, _, _ = setup ~reserved:[ 6; 7 ] () in
  let d = Regmgr.alloc regs Dtype.Long in
  check_bool "skips reserved" true (reg_of d <> 6 && reg_of d <> 7)

let test_assert_clean () =
  let regs, _, _ = setup () in
  let d = Regmgr.alloc regs Dtype.Long in
  (match Regmgr.assert_clean regs with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "leak not detected");
  Regmgr.release regs d;
  Regmgr.assert_clean regs

(* -- Frame ------------------------------------------------------------------- *)

let test_frame_layout () =
  let f = Frame.create ~locals_size:8 ~temps:[ (0, Dtype.Long); (1, Dtype.Dbl) ] in
  (* temp 0 lands just below the locals, aligned *)
  (match Frame.temp_mode f 0 Dtype.Long with
  | Mode.Mem { disp = -12L; base = Some 13; _ } -> ()
  | m -> Alcotest.failf "temp 0 at %s" (Mode.assembly m));
  (* the double is 8-aligned *)
  (match Frame.temp_mode f 1 Dtype.Dbl with
  | Mode.Mem { disp; _ } -> check_bool "8-aligned" true (Int64.rem disp 8L = 0L)
  | m -> Alcotest.failf "temp 1 at %s" (Mode.assembly m));
  let before = Frame.size f in
  let _slot = Frame.alloc_virtual f Dtype.Long in
  check_bool "frame grows" true (Frame.size f > before)

let test_frame_lazy_temp () =
  let f = Frame.create ~locals_size:0 ~temps:[] in
  (* an undeclared temporary gets a slot on first sight *)
  let m1 = Frame.temp_mode f 42 Dtype.Word in
  let m2 = Frame.temp_mode f 42 Dtype.Word in
  check_bool "stable slot" true (Mode.equal m1 m2)

let suite =
  [
    Alcotest.test_case "allocation order" `Quick test_allocation_order;
    Alcotest.test_case "release and reuse" `Quick test_release_and_reuse;
    Alcotest.test_case "pair allocation" `Quick test_pair_allocation;
    Alcotest.test_case "spill bottom of stack" `Quick
      test_spill_bottom_of_stack;
    Alcotest.test_case "pinned registers never spilled" `Quick
      test_pinned_never_spilled;
    Alcotest.test_case "as_register loads memory" `Quick
      test_as_register_loads_memory;
    Alcotest.test_case "reserved registers excluded" `Quick
      test_reserved_excluded;
    Alcotest.test_case "between-statements invariant" `Quick test_assert_clean;
    Alcotest.test_case "frame layout" `Quick test_frame_layout;
    Alcotest.test_case "frame lazy temporaries" `Quick test_frame_lazy_temp;
  ]
