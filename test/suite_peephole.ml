(* Unit tests for the peephole optimizer (the paper's section 6.1
   alternative organisation). *)

open Gg_codegen
module Insn = Gg_ir.Insn
module Mode = Gg_ir.Mode

let check_int = Alcotest.(check int)

let asm insns = List.map (fun i -> String.trim (Insn.assembly i)) insns

let check name expected input =
  let out, _ = Peephole.optimize input in
  Alcotest.(check (list string)) name expected (asm out)

let r n = Mode.reg n
let sym s = Mode.mem_sym s

let test_jump_to_next () =
  (* the jump goes, and then the now-unreferenced label goes too *)
  check "jbr to next label removed" [ "ret" ]
    [ Insn.Branch ("jbr", 1); Insn.Lab 1; Insn.Ret ];
  (* a referenced label survives *)
  check "referenced label stays" [ "L1:"; "jneq\tL1"; "ret" ]
    [ Insn.Lab 1; Insn.Branch ("jneq", 1); Insn.Ret ]

let test_branch_over_jump () =
  (* jeql L1; jbr L2; L1: inverts to jneq L2; L1 then becomes
     unreferenced and the label pass removes it *)
  let out, stats =
    Peephole.optimize
      [ Insn.Branch ("jeql", 1); Insn.Branch ("jbr", 2); Insn.Lab 1;
        Insn.Lab 2; Insn.Ret ]
  in
  check_int "one inversion" 1 stats.Peephole.inverted_branches;
  Alcotest.(check (list string)) "final form"
    [ "jneq\tL2"; "L2:"; "ret" ]
    (asm out)

let test_self_move () =
  check "mov x,x removed" [ "ret" ]
    [ Insn.insn "movl" [ sym "a"; sym "a" ]; Insn.Ret ]

let test_move_roundtrip () =
  check "second move dead"
    [ "movl\ta,r6"; "ret" ]
    [ Insn.insn "movl" [ sym "a"; r 6 ]; Insn.insn "movl" [ r 6; sym "a" ];
      Insn.Ret ]

let test_move_kept_before_branch () =
  (* removing it would change the condition codes the branch sees *)
  check "kept"
    [ "movl\ta,a"; "jeql\tL1"; "L1:" ]
    [ Insn.insn "movl" [ sym "a"; sym "a" ]; Insn.Branch ("jeql", 1);
      Insn.Lab 1 ]

let test_redundant_test () =
  check "tst after computation removed"
    [ "addl3\ta,b,x"; "jneq\tL1"; "L1:" ]
    [ Insn.insn "addl3" [ sym "a"; sym "b"; sym "x" ];
      Insn.insn "tstl" [ sym "x" ]; Insn.Branch ("jneq", 1); Insn.Lab 1 ]

let test_test_kept_when_different_operand () =
  check "tst of another location kept"
    [ "addl3\ta,b,x"; "tstl\ty"; "jneq\tL1"; "L1:" ]
    [ Insn.insn "addl3" [ sym "a"; sym "b"; sym "x" ];
      Insn.insn "tstl" [ sym "y" ]; Insn.Branch ("jneq", 1); Insn.Lab 1 ]

let test_unreferenced_labels () =
  check "labels dropped"
    [ "jneq\tL3"; "movl\ta,b"; "L3:"; "ret" ]
    [ Insn.Lab 1; Insn.Branch ("jneq", 3);
      Insn.insn "movl" [ sym "a"; sym "b" ]; Insn.Lab 2; Insn.Lab 3; Insn.Ret ]

let test_autoinc_never_removed () =
  (* (r6)+ has a side effect even in a silly-looking move *)
  check "auto operand kept"
    [ "movl\t(r6)+,(r6)+" ]
    [ Insn.insn "movl" [ Mode.autoinc 6; Mode.autoinc 6 ] ]

let test_fixpoint_cascade () =
  (* removing a jump exposes an unreferenced label, which then goes too *)
  let out, _ =
    Peephole.optimize
      [ Insn.Branch ("jbr", 5); Insn.Lab 5; Insn.Ret ]
  in
  Alcotest.(check (list string)) "both removed" [ "ret" ] (asm out)

let test_peephole_preserves_fuzzed_observables () =
  (* control-flow fuzzer programs are much denser in branches and
     labels than the fixed corpus, so they stress exactly the windows
     the optimizer rewrites; with peephole on, both backends must stay
     observationally equal to the interpreter *)
  let options =
    { Gg_codegen.Driver.default_options with Gg_codegen.Driver.peephole = true }
  in
  let engines = [ Gg_fuzz.Oracle.packed_engine () ] in
  for seed = 1000 to 1019 do
    let prog =
      Gg_ir.Treegen.control_program ~seed Gg_ir.Treegen.default_config
    in
    match Gg_fuzz.Oracle.check ~options ~engines prog with
    | Ok _ -> ()
    | Error f ->
      Alcotest.failf "seed %d: %a" seed Gg_fuzz.Oracle.pp_failure f
    | exception Gg_fuzz.Oracle.Invalid m ->
      Alcotest.failf "seed %d: generator produced invalid program: %s" seed m
  done

let suite =
  [
    Alcotest.test_case "jump to next label" `Quick test_jump_to_next;
    Alcotest.test_case "branch over jump" `Quick test_branch_over_jump;
    Alcotest.test_case "self move" `Quick test_self_move;
    Alcotest.test_case "move roundtrip" `Quick test_move_roundtrip;
    Alcotest.test_case "move kept before branch" `Quick
      test_move_kept_before_branch;
    Alcotest.test_case "redundant test" `Quick test_redundant_test;
    Alcotest.test_case "unrelated test kept" `Quick
      test_test_kept_when_different_operand;
    Alcotest.test_case "unreferenced labels" `Quick test_unreferenced_labels;
    Alcotest.test_case "autoincrement kept" `Quick test_autoinc_never_removed;
    Alcotest.test_case "fixpoint cascade" `Quick test_fixpoint_cascade;
    Alcotest.test_case "peephole preserves observables on fuzzed programs"
      `Slow test_peephole_preserves_fuzzed_observables;
  ]
