(* The fuzzing subsystem itself: determinism and well-formedness of the
   control-flow generator, packed-vs-dense parity on fuzzed trees
   (property-based), the greedy shrinker, production-coverage
   accounting, and a small oracle campaign. *)

module Tree = Gg_ir.Tree
module Dtype = Gg_ir.Dtype
module Treegen = Gg_ir.Treegen
module Termname = Gg_ir.Termname
module Transform = Gg_transform.Transform
module Matcher = Gg_matcher.Matcher
module Tables = Gg_tablegen.Tables
module Packed = Gg_tablegen.Packed
module Oracle = Gg_fuzz.Oracle
module Shrink = Gg_fuzz.Shrink
module Coverage = Gg_fuzz.Coverage
module Campaign = Gg_fuzz.Campaign
module Driver = Gg_codegen.Driver

let cfg = Treegen.default_config

(* -- generator ------------------------------------------------------------- *)

let test_determinism () =
  for seed = 0 to 20 do
    let a = Treegen.control_program ~seed cfg in
    let b = Treegen.control_program ~seed cfg in
    if a <> b then Alcotest.failf "seed %d: two generations differ" seed
  done;
  let distinct =
    List.sort_uniq compare
      (List.init 20 (fun seed -> Treegen.control_program ~seed cfg))
  in
  Alcotest.(check bool) "different seeds give different programs" true
    (List.length distinct > 15)

let test_well_formed () =
  for seed = 0 to 50 do
    let prog = Treegen.control_program ~seed cfg in
    List.iter
      (fun (f : Tree.func) ->
        List.iter
          (function
            | Tree.Stree t -> (
              match Tree.check t with
              | Ok () -> ()
              | Error m ->
                Alcotest.failf "seed %d, %s: ill-formed tree: %s" seed
                  f.Tree.fname m)
            | _ -> ())
          f.Tree.body)
      prog.Tree.funcs
  done

let test_uses_control_flow () =
  (* the point of the generator: programs must actually contain
     branches, loops, calls and short-circuit operators *)
  let seen_cbranch = ref 0
  and seen_call = ref 0
  and seen_logical = ref 0 in
  let rec walk t =
    (match t with
    | Tree.Cbranch _ -> incr seen_cbranch
    | Tree.Call _ -> incr seen_call
    | Tree.Land _ | Tree.Lor _ | Tree.Lnot _ | Tree.Relval _ | Tree.Select _ ->
      incr seen_logical
    | _ -> ());
    List.iter walk (Tree.children t)
  in
  for seed = 0 to 30 do
    let prog = Treegen.control_program ~seed cfg in
    List.iter
      (fun (f : Tree.func) ->
        List.iter
          (function Tree.Stree t -> walk t | _ -> ())
          f.Tree.body)
      prog.Tree.funcs
  done;
  Alcotest.(check bool) "branches generated" true (!seen_cbranch > 30);
  Alcotest.(check bool) "calls generated" true (!seen_call > 10);
  Alcotest.(check bool) "logical operators generated" true (!seen_logical > 30)

(* -- packed vs dense on fuzzed trees (property-based) ----------------------- *)

let vax_grammar = lazy (Oracle.default_grammar ())
let dense_tables = lazy (Tables.build (Lazy.force vax_grammar))
let dense_engine = lazy (Matcher.engine (Lazy.force dense_tables))

let packed_engine =
  lazy
    (Matcher.packed_engine ~grammar:(Lazy.force vax_grammar)
       (Packed.pack (Lazy.force dense_tables)))

let null_cb : unit Matcher.callbacks =
  {
    Matcher.on_shift = (fun _ -> ());
    on_reduce = (fun _ _ -> ());
    choose = (fun _ _ -> 0);
  }

(* matcher-ready statement trees of one fuzzed program *)
let fuzzed_trees seed =
  let prog = Treegen.control_program ~seed cfg in
  List.concat_map
    (fun (f : Tree.func) ->
      let tr = Transform.run f in
      List.filter_map
        (function Tree.Stree t -> Some t | _ -> None)
        tr.Transform.func.Tree.body)
    prog.Tree.funcs

let trace_of engine tokens =
  match Matcher.run_engine ~trace:true engine null_cb tokens with
  | outcome -> Ok outcome.Matcher.trace
  | exception Matcher.Reject e -> Error (e.Matcher.at, e.Matcher.token)

let prop_packed_equals_dense_on_fuzzed =
  QCheck.Test.make ~name:"packed = dense on fuzzed control-flow trees"
    ~count:60
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      List.for_all
        (fun tree ->
          let tokens = Termname.linearize tree in
          (* cell-for-cell: the full shift/reduce traces, not just the
             final assembly, must coincide *)
          trace_of (Lazy.force dense_engine) tokens
          = trace_of (Lazy.force packed_engine) tokens)
        (fuzzed_trees seed))

(* -- shrinker --------------------------------------------------------------- *)

let test_shrink_synthetic () =
  (* predicate: "some statement multiplies by the global gx0"; the
     shrinker must cut an 80+-statement program down to a hand-sized
     reproducer while the predicate keeps holding *)
  let rec tree_has_mul t =
    (match t with
    | Tree.Binop (Gg_ir.Op.Mul, _, _, _) -> true
    | _ -> false)
    || List.exists tree_has_mul (Tree.children t)
  in
  let has_mul prog =
    List.exists
      (fun (f : Tree.func) ->
        List.exists
          (function Tree.Stree t -> tree_has_mul t | _ -> false)
          f.Tree.body)
      prog.Tree.funcs
  in
  let seed = 7 in
  let prog = Treegen.control_program ~seed cfg in
  Alcotest.(check bool) "seed program satisfies the predicate" true
    (has_mul prog);
  let shrunk, stats = Shrink.run ~check:(Shrink.valid_and has_mul) prog in
  Alcotest.(check bool) "still satisfies the predicate" true (has_mul shrunk);
  Alcotest.(check bool)
    (Fmt.str "shrunk to a hand-sized reproducer (%d -> %d statements)"
       stats.Shrink.stmts_before stats.Shrink.stmts_after)
    true
    (stats.Shrink.stmts_after <= 5);
  Alcotest.(check bool) "shrunk program still runs" true
    (match Gg_ir.Interp.run ~max_steps:1_000_000 shrunk ~entry:"main" [] with
    | (_ : Gg_ir.Interp.outcome) -> true
    | exception Gg_ir.Interp.Runtime_error _ -> false)

(* -- coverage --------------------------------------------------------------- *)

let test_coverage_accounting () =
  let tables = Lazy.force Driver.default_tables in
  let compile seed =
    ignore
      (Driver.compile_program ~tables (Treegen.control_program ~seed cfg))
  in
  let (), fired1 = Coverage.with_fired (fun () -> compile 1) in
  Alcotest.(check bool) "a compile fires productions" true
    (List.length fired1 > 10);
  (* recording off: nothing accumulates *)
  let counts_before = Gg_profile.Profile.production_counts () in
  compile 2;
  Alcotest.(check bool) "disabled recording adds nothing" true
    (Gg_profile.Profile.production_counts () = counts_before)

let test_fuzz_beats_baseline_coverage () =
  (* the acceptance criterion: the control-flow fuzzer must fire
     strictly more productions than the fixed corpus plus the
     straight-line generator *)
  let tables = Lazy.force Driver.default_tables in
  let baseline = Coverage.baseline tables in
  let (), fired =
    Coverage.with_fired (fun () ->
        for seed = 0 to 40 do
          ignore
            (Driver.compile_program ~tables (Treegen.control_program ~seed cfg))
        done)
  in
  let module S = Set.Make (Int) in
  let extra = S.diff (S.of_list fired) (S.of_list baseline) in
  Alcotest.(check bool)
    (Fmt.str "fuzzer fires %d productions the baseline never does"
       (S.cardinal extra))
    true
    (S.cardinal extra > 0)

(* -- a small oracle campaign ------------------------------------------------ *)

let test_mini_campaign () =
  let campaign_cfg =
    {
      Campaign.default_config with
      Campaign.seed_lo = 0;
      seed_hi = 25;
      corpus_dir = "";
    }
  in
  let r = Campaign.run campaign_cfg in
  Alcotest.(check int) "all seeds produced programs" 26 r.Campaign.programs;
  (match r.Campaign.divergences with
  | [] -> ()
  | d :: _ ->
    Alcotest.failf "seed %d: %a" d.Campaign.seed Oracle.pp_failure
      d.Campaign.failure);
  Alcotest.(check bool) "coverage was recorded" true
    (List.length r.Campaign.fired > 100)

(* -- dumps ------------------------------------------------------------------ *)

let test_dump_roundtrip () =
  let prog = Treegen.control_program ~seed:3 cfg in
  let dir = Filename.temp_file "ggfuzz" "" in
  Sys.remove dir;
  let path = Gg_fuzz.Dump.save ~dir ~name:"t" prog in
  let loaded = Gg_fuzz.Dump.load_ir path in
  Alcotest.(check bool) "ir round-trips" true (prog = loaded);
  Alcotest.(check bool) "ocaml dump written" true
    (Sys.file_exists (Filename.concat dir "t.ml"));
  Sys.remove path;
  Sys.remove (Filename.concat dir "t.ml");
  Sys.rmdir dir

let suite =
  [
    Alcotest.test_case "generator is deterministic per seed" `Quick
      test_determinism;
    Alcotest.test_case "generated trees are well-formed" `Quick
      test_well_formed;
    Alcotest.test_case "generator exercises control flow" `Quick
      test_uses_control_flow;
    QCheck_alcotest.to_alcotest prop_packed_equals_dense_on_fuzzed;
    Alcotest.test_case "shrinker reaches a hand-sized reproducer" `Quick
      test_shrink_synthetic;
    Alcotest.test_case "coverage accounting on/off" `Quick
      test_coverage_accounting;
    Alcotest.test_case "fuzzer beats baseline coverage" `Slow
      test_fuzz_beats_baseline_coverage;
    Alcotest.test_case "mini oracle campaign, both engines" `Slow
      test_mini_campaign;
    Alcotest.test_case "dump round-trip" `Quick test_dump_roundtrip;
  ]
