(* The graph-coloring register allocator: def/use and liveness units on
   hand-built instruction streams, interference and move handling,
   coalescing and self-move deletion, spilling under pressure, and
   stack-vs-color differential properties (QCheck) on both targets. *)

open Gg_ir
module Backend = Gg_codegen.Backend
module Liveness = Gg_codegen.Liveness
module Interference = Gg_codegen.Interference
module Color = Gg_codegen.Color
module Regmgr = Gg_codegen.Regmgr
module Frame = Gg_codegen.Frame
module Driver = Gg_codegen.Driver
module Targets = Gg_targets.Targets
module Oracle = Gg_fuzz.Oracle
module Treegen = Gg_ir.Treegen
module Sema = Gg_frontc.Sema

let vax_ra = Backend.vax.Backend.regalloc
let vbase = 64
let v k = vbase + k
let sorted = List.sort compare

let du insn =
  let d, u = Liveness.insn_def_use vax_ra insn in
  (sorted d, sorted u)

let il = Alcotest.(list int)

(* -- def/use classification ------------------------------------------------ *)

let test_def_use () =
  Alcotest.(check (pair il il))
    "movl writes its destination"
    ([ 2 ], [ 1 ])
    (du (Insn.Insn ("movl", [ Mode.Reg 1; Mode.Reg 2 ])));
  Alcotest.(check (pair il il))
    "addl2 reads and writes its destination"
    ([ 2 ], [ 1; 2 ])
    (du (Insn.Insn ("addl2", [ Mode.Reg 1; Mode.Reg 2 ])));
  Alcotest.(check (pair il il))
    "cmpl defines nothing"
    ([], [ 1; 2 ])
    (du (Insn.Insn ("cmpl", [ Mode.Reg 1; Mode.Reg 2 ])));
  Alcotest.(check (pair il il))
    "incl reads and writes"
    ([ 3 ], [ 3 ])
    (du (Insn.Insn ("incl", [ Mode.Reg 3 ])));
  Alcotest.(check (pair il il))
    "memory base and index registers are uses"
    ([ 2 ], [ 1; 3 ])
    (du
       (Insn.Insn
          ("movl", [ Mode.with_index (Mode.mem_disp 4L 1) 3; Mode.Reg 2 ])));
  Alcotest.(check (pair il il))
    "autoincrement base is also a def"
    ([ 1; 2 ], [ 1 ])
    (du (Insn.Insn ("movl", [ Mode.autoinc 1; Mode.Reg 2 ])));
  Alcotest.(check (pair il il))
    "call defines the result registers"
    ([ 0; 1 ], [])
    (du (Insn.Call ("f", 0)));
  Alcotest.(check (pair il il))
    "ret reads r0"
    ([], [ 0 ])
    (du Insn.Ret)

(* -- liveness and interference on hand-built streams ----------------------- *)

let analyze ?(nvregs = 2) insns =
  Liveness.analyze ~ra:vax_ra
    ~is_jump:(String.equal "jbr")
    ~vbase ~nvregs (Array.of_list insns)

let build ?(nvregs = 2) insns =
  Interference.build ~move_mnemonics:[ "movl" ] ~heat:[] ~prov:[||]
    (analyze ~nvregs insns)

let test_liveness_straight_line () =
  let lv =
    analyze
      [
        Insn.Insn ("movl", [ Mode.imm 1L; Mode.Reg (v 0) ]);
        Insn.Insn ("movl", [ Mode.imm 2L; Mode.Reg (v 1) ]);
        Insn.Insn ("addl2", [ Mode.Reg (v 0); Mode.Reg (v 1) ]);
        Insn.Insn ("movl", [ Mode.Reg (v 1); Mode.Reg 0 ]);
        Insn.Ret;
      ]
  in
  Alcotest.(check int) "one basic block" 1 (Array.length lv.Liveness.blocks);
  Alcotest.(check bool)
    "nothing live out of the exit block" false
    (Liveness.Bits.get lv.Liveness.live_out.(0) (Liveness.node_of lv (v 0)))

let test_interference_edges () =
  let g =
    build
      [
        Insn.Insn ("movl", [ Mode.imm 1L; Mode.Reg (v 0) ]);
        Insn.Insn ("movl", [ Mode.imm 2L; Mode.Reg (v 1) ]);
        Insn.Insn ("addl2", [ Mode.Reg (v 0); Mode.Reg (v 1) ]);
        Insn.Insn ("movl", [ Mode.Reg (v 1); Mode.Reg 0 ]);
        Insn.Ret;
      ]
  in
  Alcotest.(check bool)
    "simultaneously live vregs interfere" true
    (Interference.interferes g 0 1);
  Alcotest.(check int)
    "the copy to r0 is the only move" 1
    (List.length g.Interference.moves)

let test_move_does_not_interfere () =
  let g =
    build
      [
        Insn.Insn ("movl", [ Mode.imm 1L; Mode.Reg (v 0) ]);
        Insn.Insn ("movl", [ Mode.Reg (v 0); Mode.Reg (v 1) ]);
        Insn.Insn ("movl", [ Mode.Reg (v 1); Mode.Reg 0 ]);
        Insn.Ret;
      ]
  in
  Alcotest.(check bool)
    "a move's ends do not interfere" false
    (Interference.interferes g 0 1);
  Alcotest.(check int) "both moves recorded" 2 (List.length g.Interference.moves)

let test_loop_depth () =
  let l = Label.fresh (Label.gen ()) in
  let lv =
    analyze ~nvregs:1
      [
        Insn.Insn ("movl", [ Mode.imm 0L; Mode.Reg (v 0) ]);
        Insn.Lab l;
        Insn.Insn ("addl2", [ Mode.imm 1L; Mode.Reg (v 0) ]);
        Insn.Branch ("jneq", l);
        Insn.Insn ("movl", [ Mode.Reg (v 0); Mode.Reg 0 ]);
        Insn.Ret;
      ]
  in
  Alcotest.(check int) "preheader is outside the loop" 0 (Liveness.depth_at lv 0);
  Alcotest.(check int) "loop body has depth 1" 1 (Liveness.depth_at lv 2);
  Alcotest.(check int) "loop exit is outside again" 0 (Liveness.depth_at lv 4)

(* -- the colorer on hand-built streams ------------------------------------- *)

let vinfo n =
  {
    Regmgr.vs_base = vbase;
    vs_types = Array.make n Dtype.Long;
    vs_kinds = Array.make n Regmgr.Vsingle;
    vs_prov = Array.make n (0, []);
  }

let color ?(nvregs = 2) insns =
  Color.run ~backend:Backend.vax ~bank:Backend.vax.Backend.alloc_regs
    ~frame:(Frame.create ~locals_size:0 ~temps:[])
    ~vinfo:(vinfo nvregs) ~heat:[] ~prov:[] insns

let no_virtuals insns =
  List.for_all
    (fun i ->
      match i with
      | Insn.Insn (_, ops) ->
        List.for_all
          (fun o -> List.for_all (fun r -> r < vbase) (Mode.registers o))
          ops
      | _ -> true)
    insns

let test_coalesce_deletes_move_chain () =
  let out, _, st =
    color
      [
        Insn.Insn ("movl", [ Mode.imm 1L; Mode.Reg (v 0) ]);
        Insn.Insn ("movl", [ Mode.Reg (v 0); Mode.Reg (v 1) ]);
        Insn.Insn ("movl", [ Mode.Reg (v 1); Mode.Reg 0 ]);
        Insn.Ret;
      ]
  in
  Alcotest.(check bool) "no virtual register survives" true (no_virtuals out);
  Alcotest.(check int)
    "the whole copy chain collapses into r0" 2 st.Color.self_moves_deleted;
  Alcotest.(check int) "nothing spilled" 0 st.Color.spilled_ranges;
  Alcotest.(check int)
    "only the constant load and the return remain" 2 (List.length out)

let test_cc_protected_move_survives () =
  (* the self-move's condition codes feed the conditional branch, so
     deleting it would change the branch decision *)
  let l = Label.fresh (Label.gen ()) in
  let out, _, _ =
    color
      [
        Insn.Insn ("movl", [ Mode.imm 1L; Mode.Reg (v 0) ]);
        Insn.Insn ("movl", [ Mode.Reg (v 0); Mode.Reg (v 1) ]);
        Insn.Branch ("jneq", l);
        Insn.Lab l;
        Insn.Insn ("movl", [ Mode.Reg (v 1); Mode.Reg 0 ]);
        Insn.Ret;
      ]
  in
  let moves_left =
    List.length
      (List.filter
         (function Insn.Insn ("movl", [ Mode.Reg _; Mode.Reg _ ]) -> true | _ -> false)
         out)
  in
  Alcotest.(check bool) "the cc-setting move is kept" true (moves_left >= 1)

let test_spill_under_pressure () =
  (* eight simultaneously live longs against a six-register bank *)
  let n = 8 in
  let defs =
    List.init n (fun k ->
        Insn.Insn ("movl", [ Mode.imm (Int64.of_int k); Mode.Reg (v k) ]))
  in
  let uses =
    List.init (n - 1) (fun k ->
        Insn.Insn ("addl2", [ Mode.Reg (v k); Mode.Reg (v (n - 1)) ]))
  in
  let out, _, st =
    color ~nvregs:n
      (defs @ uses
      @ [ Insn.Insn ("movl", [ Mode.Reg (v (n - 1)); Mode.Reg 0 ]); Insn.Ret ])
  in
  Alcotest.(check bool) "no virtual register survives" true (no_virtuals out);
  Alcotest.(check bool)
    "pressure forces at least one spilled range" true
    (st.Color.spilled_ranges >= 1);
  Alcotest.(check bool)
    "spilling takes extra rounds" true (st.Color.rounds >= 2)

let test_spill_provenance_marks () =
  (* twelve live longs against the RISC's ten-register bank: the
     colorer must emit reloads/stores, and each one must carry the
     spilled value's provenance plus a "reload"/"spill" marker *)
  let n = 12 in
  let vi =
    {
      Regmgr.vs_base = vbase;
      vs_types = Array.make n Dtype.Long;
      vs_kinds = Array.make n Regmgr.Vsingle;
      vs_prov = Array.init n (fun k -> (100 + k, [ k ]));
    }
  in
  let defs =
    List.init n (fun k ->
        Insn.Insn ("lil", [ Mode.imm (Int64.of_int k); Mode.Reg (v k) ]))
  in
  let uses =
    List.init (n - 1) (fun k ->
        Insn.Insn
          ( "addl",
            [ Mode.Reg (v k); Mode.Reg (v (n - 1)); Mode.Reg (v (n - 1)) ] ))
  in
  let insns =
    defs @ uses
    @ [ Insn.Insn ("mvl", [ Mode.Reg (v (n - 1)); Mode.Reg 0 ]); Insn.Ret ]
  in
  let prov = List.mapi (fun i _ -> (i + 1, [ 0 ], "")) insns in
  let out, outp, st =
    Color.run ~backend:Gg_risc.Target.backend
      ~bank:Gg_risc.Target.backend.Backend.alloc_regs
      ~frame:(Frame.create ~locals_size:0 ~temps:[])
      ~vinfo:vi ~heat:[] ~prov insns
  in
  Alcotest.(check int)
    "provenance tracks the rewritten stream" (List.length out)
    (List.length outp);
  Alcotest.(check bool)
    "pressure emits reloads" true
    (st.Color.spill_reloads > 0);
  let marked m = List.filter (fun (_, _, mk) -> mk = m) outp in
  Alcotest.(check bool)
    "every reload carries the spilled value's line and productions" true
    (List.for_all
       (fun (line, pids, _) -> line >= 100 && pids <> [])
       (marked "reload"));
  Alcotest.(check int)
    "one marked instruction per counted reload" st.Color.spill_reloads
    (List.length (marked "reload"));
  Alcotest.(check int)
    "one marked instruction per counted spill store" st.Color.spill_stores
    (List.length (marked "spill"))

(* -- heat-file parsing ------------------------------------------------------ *)

let test_parse_heat () =
  Alcotest.(check (list (pair int int)))
    "mdgtool heat --json round-trips"
    [ (3, 41); (7, 1) ]
    (Color.parse_heat
       "{\n  \"total\": 42,\n  \"productions\": [\n    {\"id\": 3, \"count\": \
        41},\n    {\"id\": 7, \"count\": 1}\n  ]\n}");
  Alcotest.(check (list (pair int int))) "empty input" [] (Color.parse_heat "")

(* -- whole-compiler differential checks ------------------------------------ *)

(* a spill-heavy source: a deep double expression under a register
   loop counter (the stack allocator spills this on the VAX) *)
let pressure_src =
  "double a; double b; double c; double d;\n\
   double e; double f; double g; double h; double r;\n\
   int main() {\n\
  \  register int i;\n\
  \  int n;\n\
  \  n = 0;\n\
  \  a = 1.5; b = 2.5; c = 3.25; d = 0.5;\n\
  \  e = 1.25; f = 2.0; g = 0.75; h = 1.0;\n\
  \  for (i = 0; i < 10; i = i + 1) {\n\
  \    r = (a * b + c * d) * (e * f + g * h) + (a * c - b * d) * (e * g - f \
   * h);\n\
  \    n = n + (int) r;\n\
  \  }\n\
  \  return n;\n\
   }\n"

let compile_and_run ~target ~regalloc ~jobs prog =
  let tables = Targets.default_tables target in
  let options = { Driver.default_options with Driver.regalloc } in
  let out = Driver.compile_program ~options ~tables ~jobs prog in
  let sim =
    Targets.run_text ~target out.Driver.assembly
      ~global_types:prog.Tree.globals ~entry:"main" []
  in
  (out.Driver.assembly, sim)

let test_pressure_program_agrees () =
  let prog = Sema.compile pressure_src in
  List.iter
    (fun target ->
      let _, stack =
        compile_and_run ~target ~regalloc:Driver.Stack ~jobs:1 prog
      in
      let _, colored =
        compile_and_run ~target ~regalloc:Driver.Color ~jobs:1 prog
      in
      Alcotest.(check bool)
        (Targets.name target ^ ": same return value")
        true
        (Interp.value_equal stack.Simout.return_value
           colored.Simout.return_value);
      Alcotest.(check bool)
        (Targets.name target ^ ": color is never slower")
        true
        (colored.Simout.cycles <= stack.Simout.cycles))
    Targets.all

let test_byte_determinism_across_jobs () =
  let prog =
    Treegen.control_program ~seed:7
      { Treegen.default_config with Treegen.functions = 3 }
  in
  List.iter
    (fun target ->
      let asm1, _ = compile_and_run ~target ~regalloc:Driver.Color ~jobs:1 prog
      and asm4, _ =
        compile_and_run ~target ~regalloc:Driver.Color ~jobs:4 prog
      in
      Alcotest.(check string)
        (Targets.name target ^ ": -j4 output byte-identical to -j1")
        asm1 asm4)
    Targets.all

let test_spill_metrics_exact_across_jobs () =
  let prog = Sema.compile pressure_src in
  let spills_at jobs =
    Gg_profile.Metrics.enabled := true;
    Gg_profile.Metrics.reset ();
    ignore
      (Driver.compile_program
         ~options:{ Driver.default_options with Driver.regalloc = Driver.Color }
         ~tables:(Targets.default_tables Backend.Vax)
         ~jobs prog);
    let counters = Gg_profile.Metrics.named_counters () in
    Gg_profile.Metrics.reset ();
    Gg_profile.Metrics.enabled := false;
    Option.value (List.assoc_opt "codegen.spills_total" counters) ~default:0
  in
  let s1 = spills_at 1 in
  Alcotest.(check bool) "the pressure program spills on the VAX" true (s1 > 0);
  Alcotest.(check int) "spill counter exact under -j4" s1 (spills_at 4)

(* one stack and one color engine per target: any observable
   disagreement between the allocators fails through the shared
   interpreter reference *)
let engines =
  lazy
    (List.concat_map
       (fun t -> [ Oracle.packed_engine_for t; Oracle.color_engine_for t ])
       Targets.all)

let prop_stack_color_parity =
  QCheck.Test.make ~name:"stack and color agree on all observables (QCheck)"
    ~count:25
    QCheck.(make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let prog = Treegen.control_program ~seed Treegen.default_config in
      match Oracle.check ~pcc:false ~engines:(Lazy.force engines) prog with
      | Ok _ -> true
      | Error f ->
        QCheck.Test.fail_reportf "seed %d: %a" seed Oracle.pp_failure f
      | exception Oracle.Invalid _ -> QCheck.assume_fail ())

let suite =
  [
    Alcotest.test_case "def/use: VAX operand classification" `Quick test_def_use;
    Alcotest.test_case "liveness: straight-line block structure" `Quick
      test_liveness_straight_line;
    Alcotest.test_case "interference: live ranges conflict" `Quick
      test_interference_edges;
    Alcotest.test_case "interference: moves do not conflict" `Quick
      test_move_does_not_interfere;
    Alcotest.test_case "liveness: natural-loop depths" `Quick test_loop_depth;
    Alcotest.test_case "color: coalescing deletes the copy chain" `Quick
      test_coalesce_deletes_move_chain;
    Alcotest.test_case "color: cc-feeding self-move survives" `Quick
      test_cc_protected_move_survives;
    Alcotest.test_case "color: spills under register pressure" `Quick
      test_spill_under_pressure;
    Alcotest.test_case "color: spill code carries provenance marks" `Quick
      test_spill_provenance_marks;
    Alcotest.test_case "heat: JSON parser" `Quick test_parse_heat;
    Alcotest.test_case "e2e: spill-heavy program agrees, color not slower"
      `Quick test_pressure_program_agrees;
    Alcotest.test_case "e2e: colored output byte-identical under -j" `Quick
      test_byte_determinism_across_jobs;
    Alcotest.test_case "metrics: spill counters exact under -j" `Quick
      test_spill_metrics_exact_across_jobs;
    QCheck_alcotest.to_alcotest ~long:false prop_stack_color_parity;
  ]
