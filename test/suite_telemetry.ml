(* The telemetry subsystem: trace spans (balance, JSON well-formedness,
   agreement with the Profile timers), metric histograms (identities
   against the Profile counters, exactness and reset under a Parallel
   pool), instruction provenance (--explain), and the report guards. *)

module Tree = Gg_ir.Tree
module Insn = Gg_ir.Insn
module Driver = Gg_codegen.Driver
module Semantics = Gg_codegen.Semantics
module Sema = Gg_frontc.Sema
module Corpus = Gg_frontc.Corpus
module Profile = Gg_profile.Profile
module Trace = Gg_profile.Trace
module Metrics = Gg_profile.Metrics

let tables = Driver.default_tables

(* each fixed program declares its own globals/main, so lower them
   separately and compile them in sequence *)
let corpus_programs =
  lazy (List.map (fun (_, src) -> Sema.compile src) Corpus.fixed_programs)

let all_off () =
  Profile.enabled := false;
  Profile.provenance_enabled := false;
  Trace.enabled := false;
  Metrics.enabled := false;
  Profile.reset ();
  Trace.reset ();
  Metrics.reset ()

let compile ?(jobs = 1) prog =
  Driver.compile_program ~tables:(Lazy.force tables) ~jobs prog

let compile_corpus ?(jobs = 1) () =
  List.map (fun p -> compile ~jobs p) (Lazy.force corpus_programs)

(* -- a minimal JSON validator ------------------------------------------------ *)

exception Bad_json of string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad_json (Fmt.str "%s at offset %d" m !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Fmt.str "expected %c" c)
  in
  let literal w =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then pos := !pos + String.length w
    else fail ("expected " ^ w)
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    let digits () =
      let d = ref 0 in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          incr d;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if !d = 0 then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage"

let check_json name s =
  match validate_json s with
  | () -> ()
  | exception Bad_json m -> Alcotest.failf "%s: invalid JSON: %s" name m

(* -- satellite (a): report never divides by a zero timed total --------------- *)

let test_report_no_nan_on_empty () =
  all_off ();
  Profile.enabled := true;
  (* counters but no timers: the share column must print 0%, not nan *)
  let c = Profile.counters () in
  c.Profile.matcher_runs <- c.Profile.matcher_runs + 1;
  let text = Fmt.str "%a" Profile.report () in
  all_off ();
  Alcotest.(check bool) "report is non-empty" true (String.length text > 0);
  let lower = String.lowercase_ascii text in
  let contains sub =
    let ls = String.length sub and ln = String.length lower in
    let rec go i = i + ls <= ln && (String.sub lower i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no nan in report" false (contains "nan");
  Alcotest.(check bool) "no inf in report" false (contains "inf")

(* -- trace spans ------------------------------------------------------------- *)

let with_trace ?(jobs = 4) () =
  all_off ();
  Profile.enabled := true;
  Trace.enabled := true;
  ignore (compile_corpus ~jobs ())

let test_trace_json_well_formed () =
  with_trace ();
  let doc = Trace.export () in
  all_off ();
  check_json "trace export" doc

let test_trace_spans_balanced () =
  with_trace ();
  let events = Trace.events () in
  all_off ();
  Alcotest.(check bool) "events recorded" true (events <> []);
  (* per track, B/E edges nest like parentheses and end balanced *)
  let tracks = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      let stack =
        match Hashtbl.find_opt tracks e.Trace.ev_track with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.add tracks e.Trace.ev_track s;
          s
      in
      match e.Trace.ev_ph with
      | Trace.B -> stack := e.Trace.ev_name :: !stack
      | Trace.E -> (
        match !stack with
        | top :: rest when top = e.Trace.ev_name -> stack := rest
        | top :: _ ->
          Alcotest.failf "track %d: end of %S inside %S" e.Trace.ev_track
            e.Trace.ev_name top
        | [] ->
          Alcotest.failf "track %d: end of %S with no open span"
            e.Trace.ev_track e.Trace.ev_name))
    events;
  Hashtbl.iter
    (fun track stack ->
      if !stack <> [] then
        Alcotest.failf "track %d: %d unclosed span(s)" track
          (List.length !stack))
    tracks;
  (* timestamps are monotone within each track *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      (match Hashtbl.find_opt last e.Trace.ev_track with
      | Some t when e.Trace.ev_ts < t -. 1e-6 ->
        Alcotest.failf "track %d: time goes backwards" e.Trace.ev_track
      | _ -> ());
      Hashtbl.replace last e.Trace.ev_track e.Trace.ev_ts)
    events

let test_trace_agrees_with_profile () =
  with_trace ();
  let agree name =
    let timer = Profile.seconds name in
    let spans = Trace.span_seconds name in
    Alcotest.(check bool) (name ^ " was timed") true (timer > 0.);
    (* Trace.phase nests the span directly inside the timer over the
       same clock, so the two totals track within 5% (the span also
       pays the trace-record edges; allow an absolute floor for
       micro-second phases) *)
    let diff = Float.abs (timer -. spans) in
    if diff > 0.05 *. timer +. 50e-6 then
      Alcotest.failf "%s: timer %.6fs vs spans %.6fs" name timer spans
  in
  agree "phase2.match";
  agree "phase1.transform";
  all_off ()

(* -- metric histograms ------------------------------------------------------- *)

let with_metrics ?(jobs = 1) () =
  all_off ();
  Metrics.enabled := true;
  ignore (compile_corpus ~jobs ())

let test_histograms_match_counters () =
  with_metrics ();
  let totals = Profile.totals () in
  let funcs =
    List.fold_left
      (fun a p -> a + List.length p.Tree.funcs)
      0
      (Lazy.force corpus_programs)
  in
  let reds_count = Metrics.count Metrics.tree_reductions in
  let reds_sum = Metrics.sum Metrics.tree_reductions in
  let match_count = Metrics.count Metrics.tree_match_us in
  let hw_count = Metrics.count Metrics.stack_high_water in
  let ipf_count = Metrics.count Metrics.insns_per_func in
  all_off ();
  Alcotest.(check int)
    "tree_reductions count = matcher runs" totals.Profile.matcher_runs
    reds_count;
  Alcotest.(check int)
    "tree_reductions sum = total reduces" totals.Profile.reduces reds_sum;
  Alcotest.(check int)
    "tree_match_us count = matcher runs" totals.Profile.matcher_runs
    match_count;
  Alcotest.(check int)
    "stack_high_water count = matcher runs" totals.Profile.matcher_runs
    hw_count;
  Alcotest.(check int) "insns_per_func count = functions" funcs ipf_count

let test_buckets_sum_to_count () =
  with_metrics ();
  let hs = Metrics.all () in
  let rows =
    List.map
      (fun h ->
        ( Metrics.name h,
          Metrics.count h,
          List.fold_left (fun a (_, c) -> a + c) 0 (Metrics.buckets h) ))
      hs
  in
  all_off ();
  Alcotest.(check bool) "histograms registered" true (List.length rows >= 4);
  List.iter
    (fun (name, count, bucket_sum) ->
      Alcotest.(check int) (name ^ ": buckets sum to count") count bucket_sum)
    rows

let test_metrics_exact_under_parallelism () =
  let snapshot jobs =
    all_off ();
    Metrics.enabled := true;
    ignore (compile_corpus ~jobs ());
    let r =
      List.map
        (fun h -> (Metrics.name h, Metrics.count h, Metrics.buckets h))
        [ Metrics.tree_reductions; Metrics.stack_high_water;
          Metrics.insns_per_func ]
    in
    all_off ();
    r
  in
  (* tree_match_us is wall time, hence not deterministic across -j: the
     deterministic histograms must merge to identical shards *)
  let s1 = snapshot 1 in
  let s4 = snapshot 4 in
  let s8 = snapshot 8 in
  Alcotest.(check bool) "j4 histograms = j1" true (s4 = s1);
  Alcotest.(check bool) "j8 histograms = j1" true (s8 = s1)

let test_metrics_reset () =
  with_metrics ();
  Metrics.reset ();
  let counts = List.map Metrics.count (Metrics.all ()) in
  let named = Metrics.named_counters () in
  all_off ();
  List.iter (fun c -> Alcotest.(check int) "count after reset" 0 c) counts;
  Alcotest.(check bool)
    "no live named counters after reset" true
    (List.for_all (fun (_, v) -> v = 0) named)

let test_metrics_json_well_formed () =
  with_metrics ();
  Profile.enabled := true;
  let doc = Metrics.to_json () in
  all_off ();
  check_json "metrics sidecar" doc

(* -- instruction provenance (--explain) -------------------------------------- *)

let test_explain_provenance () =
  all_off ();
  Profile.provenance_enabled := true;
  let outs = compile_corpus () in
  Profile.provenance_enabled := false;
  List.iter
    (fun (cf : Driver.compiled_func) ->
      Alcotest.(check int)
        (cf.Driver.cf_name ^ ": provenance parallel to instructions")
        (List.length cf.Driver.cf_insns)
        (List.length cf.Driver.cf_prov);
      List.iter2
        (fun insn (_line, pids, _mark) ->
          match insn with
          | Insn.Insn _ ->
            if pids = [] then
              Alcotest.failf "%s: instruction %s carries no production ids"
                cf.Driver.cf_name (Insn.assembly insn)
          | _ -> ())
        cf.Driver.cf_insns cf.Driver.cf_prov)
    (List.concat_map (fun o -> o.Driver.funcs) outs);
  (* and the rendering carries the annotations *)
  let listing =
    String.concat "" (List.map (Driver.render_explained (Lazy.force tables)) outs)
  in
  let contains sub =
    let ls = String.length sub and ln = String.length listing in
    let rec go i =
      i + ls <= ln && (String.sub listing i ls = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "listing has provenance comments" true
    (contains "\t# L")

let test_provenance_off_is_empty () =
  all_off ();
  let outs = compile_corpus () in
  List.iter
    (fun (cf : Driver.compiled_func) ->
      Alcotest.(check int)
        (cf.Driver.cf_name ^ ": no provenance when disabled")
        0
        (List.length cf.Driver.cf_prov))
    (List.concat_map (fun o -> o.Driver.funcs) outs)

(* -- assembly parity --------------------------------------------------------- *)

let test_assembly_unchanged_by_telemetry () =
  all_off ();
  let asm outs = String.concat "" (List.map (fun o -> o.Driver.assembly) outs) in
  let plain = asm (compile_corpus ()) in
  Profile.enabled := true;
  Trace.enabled := true;
  Metrics.enabled := true;
  Profile.provenance_enabled := true;
  let instrumented = asm (compile_corpus ~jobs:4 ()) in
  all_off ();
  Profile.provenance_enabled := false;
  Alcotest.(check string)
    "telemetry does not change the code" plain instrumented

let suite =
  [
    Alcotest.test_case "profile report: 0%%, not nan, on empty timers" `Quick
      test_report_no_nan_on_empty;
    Alcotest.test_case "trace export is well-formed JSON" `Quick
      test_trace_json_well_formed;
    Alcotest.test_case "trace spans balance and nest per track" `Quick
      test_trace_spans_balanced;
    Alcotest.test_case "trace span durations agree with Profile.seconds"
      `Quick test_trace_agrees_with_profile;
    Alcotest.test_case "histogram counts/sums match Profile counters" `Quick
      test_histograms_match_counters;
    Alcotest.test_case "histogram buckets sum to count" `Quick
      test_buckets_sum_to_count;
    Alcotest.test_case "histograms exact under -j" `Quick
      test_metrics_exact_under_parallelism;
    Alcotest.test_case "Metrics.reset clears every shard" `Quick
      test_metrics_reset;
    Alcotest.test_case "metrics sidecar is well-formed JSON" `Quick
      test_metrics_json_well_formed;
    Alcotest.test_case "--explain: every instruction carries production ids"
      `Quick test_explain_provenance;
    Alcotest.test_case "provenance is empty when disabled" `Quick
      test_provenance_off_is_empty;
    Alcotest.test_case "assembly identical with telemetry on" `Quick
      test_assembly_unchanged_by_telemetry;
  ]
