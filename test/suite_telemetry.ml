(* The telemetry subsystem: trace spans (balance, JSON well-formedness,
   agreement with the Profile timers), metric histograms (identities
   against the Profile counters, exactness and reset under a Parallel
   pool), instruction provenance (--explain), and the report guards. *)

module Tree = Gg_ir.Tree
module Insn = Gg_ir.Insn
module Driver = Gg_codegen.Driver
module Semantics = Gg_codegen.Semantics
module Sema = Gg_frontc.Sema
module Corpus = Gg_frontc.Corpus
module Profile = Gg_profile.Profile
module Trace = Gg_profile.Trace
module Metrics = Gg_profile.Metrics

let tables = Driver.default_tables

(* each fixed program declares its own globals/main, so lower them
   separately and compile them in sequence *)
let corpus_programs =
  lazy (List.map (fun (_, src) -> Sema.compile src) Corpus.fixed_programs)

let all_off () =
  Profile.enabled := false;
  Profile.provenance_enabled := false;
  Trace.enabled := false;
  Metrics.enabled := false;
  Profile.reset ();
  Trace.reset ();
  Metrics.reset ()

let compile ?(jobs = 1) prog =
  Driver.compile_program ~tables:(Lazy.force tables) ~jobs prog

let compile_corpus ?(jobs = 1) () =
  List.map (fun p -> compile ~jobs p) (Lazy.force corpus_programs)

(* -- a minimal JSON validator ------------------------------------------------ *)

exception Bad_json of string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad_json (Fmt.str "%s at offset %d" m !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Fmt.str "expected %c" c)
  in
  let literal w =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then pos := !pos + String.length w
    else fail ("expected " ^ w)
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    let digits () =
      let d = ref 0 in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          incr d;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if !d = 0 then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage"

let check_json name s =
  match validate_json s with
  | () -> ()
  | exception Bad_json m -> Alcotest.failf "%s: invalid JSON: %s" name m

(* -- satellite (a): report never divides by a zero timed total --------------- *)

let test_report_no_nan_on_empty () =
  all_off ();
  Profile.enabled := true;
  (* counters but no timers: the share column must print 0%, not nan *)
  let c = Profile.counters () in
  c.Profile.matcher_runs <- c.Profile.matcher_runs + 1;
  let text = Fmt.str "%a" Profile.report () in
  all_off ();
  Alcotest.(check bool) "report is non-empty" true (String.length text > 0);
  let lower = String.lowercase_ascii text in
  let contains sub =
    let ls = String.length sub and ln = String.length lower in
    let rec go i = i + ls <= ln && (String.sub lower i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no nan in report" false (contains "nan");
  Alcotest.(check bool) "no inf in report" false (contains "inf")

(* -- trace spans ------------------------------------------------------------- *)

let with_trace ?(jobs = 4) () =
  all_off ();
  Profile.enabled := true;
  Trace.enabled := true;
  ignore (compile_corpus ~jobs ())

let test_trace_json_well_formed () =
  with_trace ();
  let doc = Trace.export () in
  all_off ();
  check_json "trace export" doc

let test_trace_spans_balanced () =
  with_trace ();
  let events = Trace.events () in
  all_off ();
  Alcotest.(check bool) "events recorded" true (events <> []);
  (* per track, B/E edges nest like parentheses and end balanced *)
  let tracks = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      let stack =
        match Hashtbl.find_opt tracks e.Trace.ev_track with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.add tracks e.Trace.ev_track s;
          s
      in
      match e.Trace.ev_ph with
      | Trace.B -> stack := e.Trace.ev_name :: !stack
      | Trace.E -> (
        match !stack with
        | top :: rest when top = e.Trace.ev_name -> stack := rest
        | top :: _ ->
          Alcotest.failf "track %d: end of %S inside %S" e.Trace.ev_track
            e.Trace.ev_name top
        | [] ->
          Alcotest.failf "track %d: end of %S with no open span"
            e.Trace.ev_track e.Trace.ev_name))
    events;
  Hashtbl.iter
    (fun track stack ->
      if !stack <> [] then
        Alcotest.failf "track %d: %d unclosed span(s)" track
          (List.length !stack))
    tracks;
  (* timestamps are monotone within each track *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      (match Hashtbl.find_opt last e.Trace.ev_track with
      | Some t when e.Trace.ev_ts < t -. 1e-6 ->
        Alcotest.failf "track %d: time goes backwards" e.Trace.ev_track
      | _ -> ());
      Hashtbl.replace last e.Trace.ev_track e.Trace.ev_ts)
    events

let test_trace_agrees_with_profile () =
  with_trace ();
  let agree name =
    let timer = Profile.seconds name in
    let spans = Trace.span_seconds name in
    Alcotest.(check bool) (name ^ " was timed") true (timer > 0.);
    (* Trace.phase nests the span directly inside the timer over the
       same clock, so the two totals track within 5% (the span also
       pays the trace-record edges; allow an absolute floor for
       micro-second phases) *)
    let diff = Float.abs (timer -. spans) in
    if diff > 0.05 *. timer +. 50e-6 then
      Alcotest.failf "%s: timer %.6fs vs spans %.6fs" name timer spans
  in
  agree "phase2.match";
  agree "phase1.transform";
  all_off ()

(* -- metric histograms ------------------------------------------------------- *)

let with_metrics ?(jobs = 1) () =
  all_off ();
  Metrics.enabled := true;
  ignore (compile_corpus ~jobs ())

let test_histograms_match_counters () =
  with_metrics ();
  let totals = Profile.totals () in
  let funcs =
    List.fold_left
      (fun a p -> a + List.length p.Tree.funcs)
      0
      (Lazy.force corpus_programs)
  in
  let reds_count = Metrics.count Metrics.tree_reductions in
  let reds_sum = Metrics.sum Metrics.tree_reductions in
  let match_count = Metrics.count Metrics.tree_match_us in
  let hw_count = Metrics.count Metrics.stack_high_water in
  let ipf_count = Metrics.count Metrics.insns_per_func in
  all_off ();
  Alcotest.(check int)
    "tree_reductions count = matcher runs" totals.Profile.matcher_runs
    reds_count;
  Alcotest.(check int)
    "tree_reductions sum = total reduces" totals.Profile.reduces reds_sum;
  Alcotest.(check int)
    "tree_match_us count = matcher runs" totals.Profile.matcher_runs
    match_count;
  Alcotest.(check int)
    "stack_high_water count = matcher runs" totals.Profile.matcher_runs
    hw_count;
  Alcotest.(check int) "insns_per_func count = functions" funcs ipf_count

let test_buckets_sum_to_count () =
  with_metrics ();
  let hs = Metrics.all () in
  let rows =
    List.map
      (fun h ->
        ( Metrics.name h,
          Metrics.count h,
          List.fold_left (fun a (_, c) -> a + c) 0 (Metrics.buckets h) ))
      hs
  in
  all_off ();
  Alcotest.(check bool) "histograms registered" true (List.length rows >= 4);
  List.iter
    (fun (name, count, bucket_sum) ->
      Alcotest.(check int) (name ^ ": buckets sum to count") count bucket_sum)
    rows

let test_metrics_exact_under_parallelism () =
  let snapshot jobs =
    all_off ();
    Metrics.enabled := true;
    ignore (compile_corpus ~jobs ());
    let r =
      List.map
        (fun h -> (Metrics.name h, Metrics.count h, Metrics.buckets h))
        [ Metrics.tree_reductions; Metrics.stack_high_water;
          Metrics.insns_per_func ]
    in
    all_off ();
    r
  in
  (* tree_match_us is wall time, hence not deterministic across -j: the
     deterministic histograms must merge to identical shards *)
  let s1 = snapshot 1 in
  let s4 = snapshot 4 in
  let s8 = snapshot 8 in
  Alcotest.(check bool) "j4 histograms = j1" true (s4 = s1);
  Alcotest.(check bool) "j8 histograms = j1" true (s8 = s1)

let test_metrics_reset () =
  with_metrics ();
  Metrics.reset ();
  let counts = List.map Metrics.count (Metrics.all ()) in
  let named = Metrics.named_counters () in
  all_off ();
  List.iter (fun c -> Alcotest.(check int) "count after reset" 0 c) counts;
  Alcotest.(check bool)
    "no live named counters after reset" true
    (List.for_all (fun (_, v) -> v = 0) named)

let test_metrics_json_well_formed () =
  with_metrics ();
  Profile.enabled := true;
  let doc = Metrics.to_json () in
  all_off ();
  check_json "metrics sidecar" doc

(* -- quantiles, snapshots, expositions (the ops plane's read API) ------------ *)

module Json = Gg_profile.Json

let test_quantile_properties () =
  all_off ();
  Metrics.enabled := true;
  let h = Metrics.queue_wait_us in
  Alcotest.(check (float 0.)) "empty histogram quantile is 0" 0.
    (Metrics.quantile h 0.99);
  for v = 1 to 1000 do
    Metrics.observe h v
  done;
  let q50 = Metrics.quantile h 0.50
  and q90 = Metrics.quantile h 0.90
  and q99 = Metrics.quantile h 0.99
  and q100 = Metrics.quantile h 1.0 in
  all_off ();
  Alcotest.(check bool) "quantiles are positive" true (q50 > 0.);
  Alcotest.(check bool) "quantiles are monotone in q" true
    (q50 <= q90 && q90 <= q99 && q99 <= q100);
  Alcotest.(check bool) "no quantile exceeds the observed max" true
    (q100 <= 1000.);
  (* uniform 1..1000: linear interpolation inside fixed buckets keeps
     the estimates within a coarse band of the true quantiles *)
  Alcotest.(check bool)
    (Fmt.str "p50 %.1f within [250, 750]" q50)
    true
    (q50 >= 250. && q50 <= 750.);
  Alcotest.(check bool) (Fmt.str "p99 %.1f >= p50" q99) true (q99 >= q50)

let test_quantile_deterministic () =
  (* same observations -> byte-identical quantiles, whether read live
     or at shutdown: this is what lets the admin stats document match
     the sidecar exactly *)
  all_off ();
  Metrics.enabled := true;
  List.iter (Metrics.observe Metrics.request_latency_us)
    [ 3; 14; 159; 2653; 58979; 323846; 2643383 ];
  let a = Metrics.quantile Metrics.request_latency_us 0.99 in
  let b = Metrics.quantile Metrics.request_latency_us 0.99 in
  all_off ();
  Alcotest.(check (float 0.)) "two reads agree exactly" a b

let test_snapshot_exact_under_parallelism () =
  (* the deterministic instruments must snapshot identically at -j1 and
     -j4 once the domains have joined — same counts, same buckets, same
     quantiles *)
  let deterministic =
    [
      "matcher.reductions_per_tree";
      "matcher.stack_high_water";
      "codegen.insns_per_func";
    ]
  in
  let take jobs =
    all_off ();
    Metrics.enabled := true;
    Profile.enabled := true;
    ignore (compile_corpus ~jobs ());
    let snap = Metrics.snapshot () in
    all_off ();
    ( List.filter
        (fun (k, _) -> String.length k > 8 && String.sub k 0 8 = "matcher.")
        snap.Metrics.v_counters,
      List.filter
        (fun hv -> List.mem hv.Metrics.hv_name deterministic)
        snap.Metrics.v_histograms )
  in
  let c1, h1 = take 1 in
  let c4, h4 = take 4 in
  Alcotest.(check bool) "matcher counters equal at -j4" true (c1 = c4);
  Alcotest.(check int) "all deterministic histograms found" 3 (List.length h1);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.Metrics.hv_name b.Metrics.hv_name;
      Alcotest.(check int) (a.Metrics.hv_name ^ " count") a.Metrics.hv_count
        b.Metrics.hv_count;
      Alcotest.(check bool) (a.Metrics.hv_name ^ " buckets") true
        (a.Metrics.hv_buckets = b.Metrics.hv_buckets);
      Alcotest.(check (float 0.)) (a.Metrics.hv_name ^ " p50") a.Metrics.hv_p50
        b.Metrics.hv_p50;
      Alcotest.(check (float 0.)) (a.Metrics.hv_name ^ " p99") a.Metrics.hv_p99
        b.Metrics.hv_p99)
    h1 h4

let test_snapshot_safe_under_concurrent_observers () =
  (* snapshots taken while 4 domains are still observing: never a
     crash, and successive snapshots are monotone (shard counters only
     grow) *)
  all_off ();
  Metrics.enabled := true;
  let stop = Atomic.make false in
  let pool =
    Gg_codegen.Parallel.spawn_pool ~domains:4 (fun _ ->
        while not (Atomic.get stop) do
          Metrics.observe Metrics.queue_wait_us 17;
          Metrics.incr "concurrent.test"
        done)
  in
  let count hv_name snap =
    match
      List.find_opt
        (fun hv -> hv.Metrics.hv_name = hv_name)
        snap.Metrics.v_histograms
    with
    | Some hv -> hv.Metrics.hv_count
    | None -> Alcotest.failf "histogram %s missing from snapshot" hv_name
  in
  let last = ref 0 in
  for _ = 1 to 50 do
    let snap = Metrics.snapshot () in
    let c = count "server.queue_wait_us" snap in
    if c < !last then
      Alcotest.failf "snapshot went backwards: %d after %d" c !last;
    last := c
  done;
  Atomic.set stop true;
  Gg_codegen.Parallel.join_pool pool;
  (* quiescent now: the final snapshot is exact and internally
     consistent — buckets sum to the count, the named counter matches *)
  let snap = Metrics.snapshot () in
  let hv =
    List.find
      (fun hv -> hv.Metrics.hv_name = "server.queue_wait_us")
      snap.Metrics.v_histograms
  in
  all_off ();
  Alcotest.(check int) "buckets sum to count" hv.Metrics.hv_count
    (List.fold_left (fun a (_, c) -> a + c) 0 hv.Metrics.hv_buckets);
  Alcotest.(check bool) "the named counter landed" true
    (List.assoc_opt "concurrent.test" snap.Metrics.v_counters = Some hv.Metrics.hv_count)

let test_json_sidecar_has_quantiles () =
  with_metrics ();
  let doc = Metrics.to_json () in
  all_off ();
  let j = Json.parse doc in
  let histos =
    Option.value ~default:[]
      (Option.bind (Json.member "histograms" j) Json.to_list)
  in
  Alcotest.(check bool) "histograms present" true (histos <> []);
  List.iter
    (fun h ->
      let name =
        Option.value ~default:"?" (Option.bind (Json.member "name" h) Json.to_str)
      in
      let p50 = Option.bind (Json.member "p50" h) Json.to_float in
      let p99 = Option.bind (Json.member "p99" h) Json.to_float in
      match (p50, p99) with
      | Some p50, Some p99 ->
        Alcotest.(check bool) (name ^ ": p50 <= p99") true (p50 <= p99)
      | _ -> Alcotest.failf "%s: missing p50/p99" name)
    histos

let test_prometheus_exposition () =
  with_metrics ();
  let doc = Metrics.to_prometheus () in
  all_off ();
  let lines = String.split_on_char '\n' doc in
  Alcotest.(check bool) "counters are typed" true
    (List.mem "# TYPE ggcg_matcher_runs counter" lines);
  Alcotest.(check bool) "histograms are typed" true
    (List.mem "# TYPE ggcg_matcher_reductions_per_tree histogram" lines);
  (* per histogram: cumulative buckets end at +Inf == _count *)
  let value_of prefix =
    List.filter_map
      (fun l ->
        if
          String.length l > String.length prefix
          && String.sub l 0 (String.length prefix) = prefix
        then
          int_of_string_opt
            (String.trim
               (String.sub l (String.length prefix)
                  (String.length l - String.length prefix)))
        else None)
      lines
  in
  (match value_of "ggcg_matcher_reductions_per_tree_bucket{le=\"+Inf\"} " with
  | [ inf ] -> (
    match value_of "ggcg_matcher_reductions_per_tree_count " with
    | [ count ] ->
      Alcotest.(check int) "+Inf bucket equals _count" count inf
    | other -> Alcotest.failf "%d _count lines" (List.length other))
  | other -> Alcotest.failf "%d +Inf bucket lines" (List.length other));
  (* cumulative bucket counts never decrease *)
  let buckets =
    List.filter_map
      (fun l ->
        let p = "ggcg_matcher_reductions_per_tree_bucket{le=" in
        if String.length l > String.length p && String.sub l 0 (String.length p) = p
        then
          match String.rindex_opt l ' ' with
          | Some i ->
            int_of_string_opt
              (String.sub l (i + 1) (String.length l - i - 1))
          | None -> None
        else None)
      lines
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets are monotone" true (monotone buckets)

let test_atomic_write_leaves_no_tmp () =
  all_off ();
  Metrics.enabled := true;
  Profile.enabled := true;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "ggcg-test-metrics-%d.json" (Unix.getpid ()))
  in
  Metrics.write_json_atomic path;
  Fun.protect ~finally:(fun () ->
      all_off ();
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  check_json "atomic snapshot" (In_channel.with_open_text path In_channel.input_all);
  (* the temp sibling is renamed away, never left behind *)
  let dir = Filename.dirname path and base = Filename.basename path in
  let leftovers =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f ->
           String.length f > String.length base
           && String.sub f 0 (String.length base) = base)
  in
  Alcotest.(check (list string)) "no tmp leftovers" [] leftovers

(* -- the Json reader the ops tools are built on ------------------------------- *)

let test_json_parser_roundtrips () =
  let cases =
    [
      "null";
      "true";
      "[1,2.5,-3,\"x\"]";
      "{\"a\":{\"b\":[]},\"c\":\"\\u0041\\n\"}";
      "{\"nested\":[{\"deep\":[[[1]]]}]}";
    ]
  in
  List.iter
    (fun s ->
      let j = Json.parse s in
      let j' = Json.parse (Json.to_string j) in
      Alcotest.(check bool) (s ^ " survives print/reparse") true (j = j'))
    cases;
  (* member order and accessors *)
  let j = Json.parse "{\"b\": 2, \"a\": 1}" in
  Alcotest.(check (option int)) "member lookup" (Some 1)
    (Option.bind (Json.member "a" j) Json.to_int);
  Alcotest.(check string) "order preserved" "{\"b\":2,\"a\":1}" (Json.to_string j)

let test_json_parser_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Json.Parse_error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

(* -- instruction provenance (--explain) -------------------------------------- *)

let test_explain_provenance () =
  all_off ();
  Profile.provenance_enabled := true;
  let outs = compile_corpus () in
  Profile.provenance_enabled := false;
  List.iter
    (fun (cf : Driver.compiled_func) ->
      Alcotest.(check int)
        (cf.Driver.cf_name ^ ": provenance parallel to instructions")
        (List.length cf.Driver.cf_insns)
        (List.length cf.Driver.cf_prov);
      List.iter2
        (fun insn (_line, pids, _mark) ->
          match insn with
          | Insn.Insn _ ->
            if pids = [] then
              Alcotest.failf "%s: instruction %s carries no production ids"
                cf.Driver.cf_name (Insn.assembly insn)
          | _ -> ())
        cf.Driver.cf_insns cf.Driver.cf_prov)
    (List.concat_map (fun o -> o.Driver.funcs) outs);
  (* and the rendering carries the annotations *)
  let listing =
    String.concat "" (List.map (Driver.render_explained (Lazy.force tables)) outs)
  in
  let contains sub =
    let ls = String.length sub and ln = String.length listing in
    let rec go i =
      i + ls <= ln && (String.sub listing i ls = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "listing has provenance comments" true
    (contains "\t# L")

let test_provenance_off_is_empty () =
  all_off ();
  let outs = compile_corpus () in
  List.iter
    (fun (cf : Driver.compiled_func) ->
      Alcotest.(check int)
        (cf.Driver.cf_name ^ ": no provenance when disabled")
        0
        (List.length cf.Driver.cf_prov))
    (List.concat_map (fun o -> o.Driver.funcs) outs)

(* -- assembly parity --------------------------------------------------------- *)

let test_assembly_unchanged_by_telemetry () =
  all_off ();
  let asm outs = String.concat "" (List.map (fun o -> o.Driver.assembly) outs) in
  let plain = asm (compile_corpus ()) in
  Profile.enabled := true;
  Trace.enabled := true;
  Metrics.enabled := true;
  Profile.provenance_enabled := true;
  let instrumented = asm (compile_corpus ~jobs:4 ()) in
  all_off ();
  Profile.provenance_enabled := false;
  Alcotest.(check string)
    "telemetry does not change the code" plain instrumented

let suite =
  [
    Alcotest.test_case "profile report: 0%%, not nan, on empty timers" `Quick
      test_report_no_nan_on_empty;
    Alcotest.test_case "trace export is well-formed JSON" `Quick
      test_trace_json_well_formed;
    Alcotest.test_case "trace spans balance and nest per track" `Quick
      test_trace_spans_balanced;
    Alcotest.test_case "trace span durations agree with Profile.seconds"
      `Quick test_trace_agrees_with_profile;
    Alcotest.test_case "histogram counts/sums match Profile counters" `Quick
      test_histograms_match_counters;
    Alcotest.test_case "histogram buckets sum to count" `Quick
      test_buckets_sum_to_count;
    Alcotest.test_case "histograms exact under -j" `Quick
      test_metrics_exact_under_parallelism;
    Alcotest.test_case "Metrics.reset clears every shard" `Quick
      test_metrics_reset;
    Alcotest.test_case "metrics sidecar is well-formed JSON" `Quick
      test_metrics_json_well_formed;
    Alcotest.test_case "quantile: empty, monotone, bounded" `Quick
      test_quantile_properties;
    Alcotest.test_case "quantile estimates are deterministic" `Quick
      test_quantile_deterministic;
    Alcotest.test_case "Metrics.snapshot exact at -j4" `Quick
      test_snapshot_exact_under_parallelism;
    Alcotest.test_case "Metrics.snapshot safe under concurrent observers"
      `Quick test_snapshot_safe_under_concurrent_observers;
    Alcotest.test_case "metrics sidecar carries p50/p99" `Quick
      test_json_sidecar_has_quantiles;
    Alcotest.test_case "prometheus exposition is well-formed" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "write_json_atomic leaves no tmp file" `Quick
      test_atomic_write_leaves_no_tmp;
    Alcotest.test_case "Json parser round-trips" `Quick
      test_json_parser_roundtrips;
    Alcotest.test_case "Json parser rejects malformed input" `Quick
      test_json_parser_rejects;
    Alcotest.test_case "--explain: every instruction carries production ids"
      `Quick test_explain_provenance;
    Alcotest.test_case "provenance is empty when disabled" `Quick
      test_provenance_off_is_empty;
    Alcotest.test_case "assembly identical with telemetry on" `Quick
      test_assembly_unchanged_by_telemetry;
  ]
