(* Golden tests for the table-driven code generator: instruction
   selection, idiom recognition (Fig. 3 walkthrough), addressing modes,
   bridges, branches, register management, and the Appendix trace. *)

open Gg_ir
module Driver = Gg_codegen.Driver
module Matcher = Gg_matcher.Matcher
module Insn = Gg_ir.Insn
module Mode = Gg_ir.Mode
module T = Tree

let nm s = T.Name (Dtype.Long, s)
let c n = T.Const (Dtype.Long, n)

let asm_of tree =
  List.filter_map
    (fun i -> match i with Insn.Comment _ -> None | _ -> Some (String.trim (Insn.assembly i)))
    (Driver.compile_tree tree)

let check_asm name expected tree =
  Alcotest.(check (list string)) name expected (asm_of tree)

(* the paper's Appendix expression: a := 27 + b (byte local b) *)
let appendix_tree =
  T.Assign
    ( Dtype.Long,
      nm "a",
      T.Binop
        ( Op.Plus, Dtype.Long,
          T.Const (Dtype.Byte, 27L),
          T.Conv
            ( Dtype.Long, Dtype.Byte,
              T.Indir
                ( Dtype.Byte,
                  T.Binop (Op.Plus, Dtype.Long, c (-4L),
                           T.Dreg (Dtype.Long, Regconv.fp)) ) ) ) )

let test_appendix_assembly () =
  check_asm "cvtbl then addl3"
    [ "cvtbl\t-4(fp),r6"; "addl3\t$27,r6,a" ]
    appendix_tree

let test_appendix_trace_shape () =
  let _, trace = Driver.compile_tree_traced appendix_tree in
  let shifts =
    List.filter_map
      (function Matcher.Sshift s -> Some s | _ -> None)
      trace
  in
  Alcotest.(check (list string)) "shift sequence"
    [ "Assign.l"; "Name.l"; "Plus.l"; "Const.b"; "Cvt.bl"; "Indir.b";
      "Plus.l"; "Const.l"; "Dreg.l" ]
    shifts;
  (match List.rev trace with
  | Matcher.Saccept :: _ -> ()
  | _ -> Alcotest.fail "no accept");
  let reduces =
    List.length (List.filter (function Matcher.Sreduce _ -> true | _ -> false) trace)
  in
  Alcotest.(check bool) "several reductions" true (reduces >= 8)

(* -- Fig. 3 idiom walkthrough ------------------------------------------------ *)

let test_add_three_address () =
  check_asm "addl3" [ "addl3\t$17,b,a" ]
    (T.Assign (Dtype.Long, nm "a", T.Binop (Op.Plus, Dtype.Long, c 17L, nm "b")))

let test_binding_idiom () =
  check_asm "addl2" [ "addl2\t$17,a" ]
    (T.Assign (Dtype.Long, nm "a", T.Binop (Op.Plus, Dtype.Long, nm "a", c 17L)))

let test_range_idiom_inc () =
  check_asm "incl" [ "incl\ta" ]
    (T.Assign (Dtype.Long, nm "a", T.Binop (Op.Plus, Dtype.Long, nm "a", c 1L)))

let test_range_idiom_dec () =
  check_asm "decl" [ "decl\ta" ]
    (T.Assign (Dtype.Long, nm "a", T.Binop (Op.Minus, Dtype.Long, nm "a", c 1L)))

let test_clr_idiom () =
  check_asm "clrl" [ "clrl\ta" ] (T.Assign (Dtype.Long, nm "a", c 0L))

let test_idioms_disabled () =
  let options = { Driver.default_options with Driver.idioms = false } in
  let insns =
    Driver.compile_tree ~options
      (T.Assign (Dtype.Long, nm "a", T.Binop (Op.Plus, Dtype.Long, nm "a", c 1L)))
  in
  (* without the idiom recogniser the full three-address form appears *)
  Alcotest.(check (list string)) "addl3 survives"
    [ "addl3\t$1,a,a" ]
    (List.map (fun i -> String.trim (Insn.assembly i)) insns)

let test_sub_operand_order () =
  (* subl3 subtrahend, minuend, dif *)
  check_asm "subl3" [ "subl3\tb,a,x" ]
    (T.Assign (Dtype.Long, nm "x", T.Binop (Op.Minus, Dtype.Long, nm "a", nm "b")))

let test_reverse_subtract () =
  (* Rminus a b computes b - a: operands arrive in evaluation order *)
  check_asm "reverse subl3" [ "subl3\ta,b,x" ]
    (T.Assign (Dtype.Long, nm "x", T.Binop (Op.Rminus, Dtype.Long, nm "a", nm "b")))

(* -- pseudo instructions ------------------------------------------------------- *)

let test_modulus_expansion () =
  check_asm "div/mul/sub" [ "divl3\tc,b,r6"; "mull2\tc,r6"; "subl3\tr6,b,a" ]
    (T.Assign (Dtype.Long, nm "a", T.Binop (Op.Mod, Dtype.Long, nm "b", nm "c")))

let test_and_with_mask () =
  check_asm "bic with complemented mask" [ "bicl3\t$-16,b,a" ]
    (T.Assign (Dtype.Long, nm "a", T.Binop (Op.And, Dtype.Long, nm "b", c 15L)))

let test_unsigned_division_library () =
  check_asm "library call"
    [ "pushl\tc"; "pushl\tb"; "calls\t$2,__udivl"; "movl\tr0,a" ]
    (T.Assign (Dtype.Long, nm "a", T.Binop (Op.Udiv, Dtype.Long, nm "b", nm "c")))

let test_right_shift_expansion () =
  check_asm "constant shift" [ "ashl\t$-3,b,a" ]
    (T.Assign (Dtype.Long, nm "a", T.Binop (Op.Rsh, Dtype.Long, nm "b", c 3L)))

(* -- addressing modes ----------------------------------------------------------- *)

let test_symbol_indexed () =
  check_asm "arr[rx]" [ "movl\ti,r6"; "movl\tarr[r6],x" ]
    (T.Assign (Dtype.Long, nm "x",
       T.Indir (Dtype.Long,
         T.Binop (Op.Plus, Dtype.Long, T.Addr (nm "arr"),
                  T.Binop (Op.Mul, Dtype.Long, c 4L, nm "i")))))

let test_disp_indexed_from_register () =
  check_asm "8(fp)[rx]" [ "movl\ti,r6"; "movl\t8(fp)[r6],x" ]
    (T.Assign (Dtype.Long, nm "x",
       T.Indir (Dtype.Long,
         T.Binop (Op.Plus, Dtype.Long, c 8L,
           T.Binop (Op.Plus, Dtype.Long, T.Dreg (Dtype.Long, Regconv.fp),
                    T.Binop (Op.Mul, Dtype.Long, c 4L, nm "i"))))))

let test_bridge_for_non_scale_multiplier () =
  (* 3 is not a hardware scale: the bridge production computes it *)
  check_asm "bridge" [ "mull3\t$3,i,r6"; "addl2\tp,r6"; "movl\t(r6),x" ]
    (T.Assign (Dtype.Long, nm "x",
       T.Indir (Dtype.Long,
         T.Binop (Op.Plus, Dtype.Long, nm "p",
                  T.Binop (Op.Mul, Dtype.Long, c 3L, nm "i")))))

let test_autoincrement_operands () =
  check_asm "both sides autoincrement" [ "addl3\t(r6)+,(r6)+,x" ]
    (T.Assign (Dtype.Long, nm "x",
       T.Binop (Op.Plus, Dtype.Long, T.Autoinc (Dtype.Long, 6),
                T.Autoinc (Dtype.Long, 6))))

(* -- branches (section 6.1) ------------------------------------------------------ *)

let test_compare_branch () =
  check_asm "cmp + jlss" [ "cmpl\ta,b"; "jlss\tL7" ]
    (T.Cbranch (Op.Lt, Dtype.Signed, Dtype.Long, nm "a", nm "b", 7))

let test_test_branch () =
  check_asm "tst + jneq" [ "tstl\ta"; "jneq\tL7" ]
    (T.Cbranch (Op.Ne, Dtype.Signed, Dtype.Long, nm "a", c 0L, 7))

let test_condition_codes_reused () =
  (* the computation sets the codes; no tst is emitted *)
  check_asm "add + jneq" [ "addl3\ta,b,r6"; "jneq\tL7" ]
    (T.Cbranch (Op.Ne, Dtype.Signed, Dtype.Long,
                T.Binop (Op.Plus, Dtype.Long, nm "a", nm "b"), c 0L, 7))

let test_dreg_needs_tst () =
  (* the reg <- Dreg chain emits no code, so the codes are stale: the
     dedicated-register bridge production forces a tst (section 6.2.1) *)
  check_asm "tst + jneq" [ "tstl\tr6"; "jneq\tL7" ]
    (T.Cbranch (Op.Ne, Dtype.Signed, Dtype.Long, T.Dreg (Dtype.Long, 6), c 0L, 7))

let test_unsigned_branch () =
  check_asm "jlssu" [ "cmpl\ta,b"; "jlssu\tL3" ]
    (T.Cbranch (Op.Lt, Dtype.Unsigned, Dtype.Long, nm "a", nm "b", 3))

let test_float_compare () =
  check_asm "cmpd" [ "cmpd\tx,$0f2.5"; "jgtr\tL1" ]
    (T.Cbranch (Op.Gt, Dtype.Signed, Dtype.Dbl, T.Name (Dtype.Dbl, "x"),
                T.Fconst (Dtype.Dbl, 2.5), 1))

(* -- conversions and moves --------------------------------------------------------- *)

let test_memory_to_memory_conversion () =
  check_asm "cvtwl direct" [ "cvtwl\tw,x" ]
    (T.Assign (Dtype.Long, nm "x",
               T.Conv (Dtype.Long, Dtype.Word, T.Name (Dtype.Word, "w"))))

let test_float_arith () =
  check_asm "subd2 via binding" [ "subd2\t$0f1.5,f" ]
    (T.Assign (Dtype.Dbl, T.Name (Dtype.Dbl, "f"),
       T.Binop (Op.Minus, Dtype.Dbl, T.Name (Dtype.Dbl, "f"),
                T.Fconst (Dtype.Dbl, 1.5))))

(* -- register management ------------------------------------------------------------ *)

let test_register_reuse () =
  (* sources are reclaimed for destinations: a deep chain should cycle
     through few registers *)
  let rec chain n = if n = 0 then nm "g" else
    T.Binop (Op.Plus, Dtype.Long, T.Binop (Op.Mul, Dtype.Long, nm "a", nm "b"), chain (n-1))
  in
  let insns = Driver.compile_tree (T.Assign (Dtype.Long, nm "x", chain 6)) in
  let regs_used =
    List.concat_map
      (fun i -> match i with
        | Insn.Insn (_, ops) -> List.concat_map Mode.registers ops
        | _ -> [])
      insns
    |> List.filter (fun r -> List.mem r Regconv.allocatable)
    |> List.sort_uniq Int.compare
  in
  Alcotest.(check bool) "at most 3 registers" true (List.length regs_used <= 3)

let test_spill_and_reload () =
  (* a balanced divide tree needs more than six registers: spills must
     appear and the result must still be correct under the simulator *)
  let rec balanced n =
    if n = 0 then T.Binop (Op.Div, Dtype.Long, nm "a", nm "b")
    else T.Binop (Op.Minus, Dtype.Long, balanced (n - 1), balanced (n - 1))
  in
  let tree = T.Assign (Dtype.Long, nm "x", balanced 4) in
  let insns = Driver.compile_tree tree in
  Alcotest.(check bool) "compiles" true (List.length insns > 10)

let test_statement_sequence_register_clean () =
  (* compiling a multi-statement function must not leak registers
     between statements (Driver asserts this internally) *)
  let body =
    List.init 10 (fun i ->
        T.Stree
          (T.Assign (Dtype.Long, nm "x",
             T.Binop (Op.Mul, Dtype.Long, nm "a", c (Int64.of_int i)))))
  in
  let f = { T.fname = "f"; formals = []; ret_type = Dtype.Long;
            locals_size = 0; body } in
  let cf = Driver.compile_func (Lazy.force Driver.default_tables) f in
  Alcotest.(check bool) "compiled" true (List.length cf.Driver.cf_insns >= 10)

(* The Appendix trace, golden: the full printed action sequence. *)
let test_appendix_trace_golden () =
  let _, trace = Driver.compile_tree_traced appendix_tree in
  let g =
    Driver.grammar (Lazy.force Driver.default_tables)
  in
  let printed =
    Fmt.str "%a" (Matcher.pp_trace g) trace
    |> String.split_on_char '\n' |> List.map String.trim
  in
  Alcotest.(check (list string)) "golden trace"
    [
      "shift  Assign.l";
      "shift  Name.l";
      "reduce mem.l <- Name.l  [mode:name]  ; a";
      "reduce lval.l <- mem.l  [chain]";
      "shift  Plus.l";
      "shift  Const.b";
      "reduce imm.l <- Const.b  [mode:imm]  ; widened immediate";
      "reduce rval.l <- imm.l  [chain]";
      "shift  Cvt.bl";
      "shift  Indir.b";
      "shift  Plus.l";
      "shift  Const.l";
      "shift  Dreg.l";
      "reduce reg.l <- Dreg.l  [mode:dreg]  ; rn (no code)";
      "reduce ea.b <- Plus.l Const.l reg.l  [mode:disp]  ; d(rn)";
      "reduce mem.b <- Indir.b ea.b  [mode:indir]  ; *ea";
      "reduce rval.b <- mem.b  [chain]";
      "reduce reg.l <- Cvt.bl rval.b  [emit:cvt.bl]  ; cvt s,r";
      "reduce rval.l <- reg.l  [chain]";
      "reduce stmt <- Assign.l lval.l Plus.l rval.l rval.l  [emit:add.l]  ; \
       three-address, memory destination";
      "accept";
    ]
    printed

(* Section 6.2.1's over-factoring bug, reproduced as a live
   miscompilation: without the dedicated-register branch production the
   matcher uses the general [Branch Cmp reg Zero] pattern for a register
   variable, whose chain reduction emits no code — so the branch
   observes the condition codes of whatever instruction came before. *)
let test_621_condition_code_bug () =
  let src =
    {|
int a; int b; int x;
int main() {
  register int r;
  r = 0;
  a = 6; b = 7;
  x = a * b;
  if (r != 0) print(1); else print(0);
  return 0;
}
|}
  in
  let prog = Gg_frontc.Sema.compile src in
  let reference = Gg_ir.Interp.run prog ~entry:"main" [] in
  let outputs gopts =
    let options = { Driver.default_options with Driver.grammar = gopts } in
    let tables = Driver.build_tables gopts in
    let c = Driver.compile_program ~options ~tables prog in
    (Gg_vaxsim.Machine.run_text c.Driver.assembly
       ~global_types:prog.Gg_ir.Tree.globals ~entry:"main" [])
      .Gg_vaxsim.Machine.output
  in
  Alcotest.(check (list string)) "fixed grammar is correct"
    reference.Gg_ir.Interp.output
    (outputs Gg_vax.Grammar_def.default);
  Alcotest.(check (list string)) "without the fix, the 1982 bug reappears"
    [ "1" ]
    (outputs
       { Gg_vax.Grammar_def.default with
         Gg_vax.Grammar_def.condition_code_fix = false })

let suite =
  [
    Alcotest.test_case "appendix assembly" `Quick test_appendix_assembly;
    Alcotest.test_case "appendix trace" `Quick test_appendix_trace_shape;
    Alcotest.test_case "three-address add" `Quick test_add_three_address;
    Alcotest.test_case "binding idiom addl2" `Quick test_binding_idiom;
    Alcotest.test_case "range idiom incl" `Quick test_range_idiom_inc;
    Alcotest.test_case "range idiom decl" `Quick test_range_idiom_dec;
    Alcotest.test_case "clr idiom" `Quick test_clr_idiom;
    Alcotest.test_case "idioms disabled ablation" `Quick test_idioms_disabled;
    Alcotest.test_case "sub operand order" `Quick test_sub_operand_order;
    Alcotest.test_case "reverse subtract" `Quick test_reverse_subtract;
    Alcotest.test_case "modulus expansion" `Quick test_modulus_expansion;
    Alcotest.test_case "and with mask" `Quick test_and_with_mask;
    Alcotest.test_case "unsigned division library call" `Quick
      test_unsigned_division_library;
    Alcotest.test_case "right shift expansion" `Quick
      test_right_shift_expansion;
    Alcotest.test_case "symbol indexed mode" `Quick test_symbol_indexed;
    Alcotest.test_case "displacement indexed mode" `Quick
      test_disp_indexed_from_register;
    Alcotest.test_case "bridge for non-scale multiplier" `Quick
      test_bridge_for_non_scale_multiplier;
    Alcotest.test_case "autoincrement operands" `Quick
      test_autoincrement_operands;
    Alcotest.test_case "compare branch" `Quick test_compare_branch;
    Alcotest.test_case "test branch" `Quick test_test_branch;
    Alcotest.test_case "condition codes reused" `Quick
      test_condition_codes_reused;
    Alcotest.test_case "dedicated register needs tst" `Quick
      test_dreg_needs_tst;
    Alcotest.test_case "unsigned branch" `Quick test_unsigned_branch;
    Alcotest.test_case "float compare" `Quick test_float_compare;
    Alcotest.test_case "memory-to-memory conversion" `Quick
      test_memory_to_memory_conversion;
    Alcotest.test_case "float arithmetic binding" `Quick test_float_arith;
    Alcotest.test_case "register reuse" `Quick test_register_reuse;
    Alcotest.test_case "spill handling" `Quick test_spill_and_reload;
    Alcotest.test_case "no register leaks across statements" `Quick
      test_statement_sequence_register_clean;
    Alcotest.test_case "section 6.2.1 condition-code bug" `Quick
      test_621_condition_code_bug;
    Alcotest.test_case "appendix trace golden" `Quick
      test_appendix_trace_golden;
  ]

