let () =
  Alcotest.run "ggcg"
    [
      ("ir", Suite_ir.suite);
      ("grammar", Suite_grammar.suite);
      ("tablegen", Suite_tablegen.suite);
      ("matcher", Suite_matcher.suite);
      ("transform", Suite_transform.suite);
      ("vax", Suite_vax.suite);
      ("risc", Suite_risc.suite);
      ("riscdiff", Suite_riscdiff.suite);
      ("ops", Suite_ops.suite);
      ("codegen", Suite_codegen.suite);
      ("vaxsim", Suite_vaxsim.suite);
      ("peephole", Suite_peephole.suite);
      ("regmgr", Suite_regmgr.suite);
      ("frontc", Suite_frontc.suite);
      ("pcc", Suite_pcc.suite);
      ("differential", Suite_diff.suite);
      ("packed", Suite_packed.suite);
      ("specialize", Suite_specialize.suite);
      ("fuzz", Suite_fuzz.suite);
      ("parallel", Suite_parallel.suite);
      ("telemetry", Suite_telemetry.suite);
      ("server", Suite_server.suite);
      ("regalloc", Suite_regalloc.suite);
    ]
