(* Tests for the VAX simulator: operand parsing (including a roundtrip
   property against the addressing-mode formatter), instruction
   execution, flags and branches, and the calls/ret convention. *)

open Gg_ir
open Gg_vaxsim
module Mode = Gg_ir.Mode

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let value = Alcotest.testable Interp.pp_value Interp.value_equal

(* -- operand parsing --------------------------------------------------------- *)

let test_parse_operands () =
  let roundtrip s =
    Alcotest.(check string) s s (Mode.assembly (Asmparse.parse_operand s))
  in
  List.iter roundtrip
    [ "r6"; "fp"; "sp"; "$42"; "$-7"; "a"; "-4(fp)"; "a+8(r6)"; "(r7)";
      "(r6)+"; "-(sp)"; "8(r6)[r7]"; "arr[r9]"; "512" ]

let mode = Alcotest.testable Mode.pp Mode.equal

let test_parse_specific () =
  Alcotest.check mode "deferred" (Mode.mem_deferred 7)
    (Asmparse.parse_operand "(r7)");
  Alcotest.check mode "float" (Mode.Fimm 1.5) (Asmparse.parse_operand "$0f1.5");
  Alcotest.check mode "indexed"
    (Mode.with_index (Mode.mem_disp 8L 6) 7)
    (Asmparse.parse_operand "8(r6)[r7]")

let prop_operand_roundtrip =
  (* every mode the compiler can emit must survive print -> parse *)
  let gen =
    let open QCheck.Gen in
    oneof
      [
        map (fun r -> Mode.reg (6 + (abs r mod 6))) int;
        map (fun n -> Mode.imm (Int64.of_int n)) (int_range (-5000) 5000);
        return (Mode.mem_sym "gv");
        map (fun (d, r) -> Mode.mem_disp (Int64.of_int d) (6 + (abs r mod 6)))
          (pair (int_range (-500) 500) int);
        map (fun (d, r) -> Mode.mem_disp ~sym:"gv" (Int64.of_int d) (6 + (abs r mod 6)))
          (pair (int_range 0 64) int);
        map (fun r -> Mode.mem_deferred (6 + (abs r mod 6))) int;
        map (fun r -> Mode.autoinc (6 + (abs r mod 6))) int;
        map (fun r -> Mode.autodec (6 + (abs r mod 6))) int;
        map (fun (d, r, x) ->
            Mode.with_index (Mode.mem_disp (Int64.of_int d) (6 + (abs r mod 3)))
              (9 + (abs x mod 3)))
          (triple (int_range (-100) 100) int int);
      ]
  in
  QCheck.Test.make ~name:"operand print/parse roundtrip" ~count:500
    (QCheck.make gen) (fun m ->
      Mode.equal m (Asmparse.parse_operand (Mode.assembly m)))

let test_parse_program_items () =
  let p = Asmparse.parse "\t.comm\tg,4\n\t.globl\tmain\nmain:\nL3:\n\tmovl\t$1,r6\n\tjbr\tL3\n\tret\n" in
  match p.Asmparse.items with
  | [ Asmparse.Comm ("g", 4); Asmparse.Globl "main"; Asmparse.Deflabel "main";
      Asmparse.Locallabel 3; Asmparse.Instruction _;
      Asmparse.Instruction (Gg_ir.Insn.Branch ("jbr", 3));
      Asmparse.Instruction Gg_ir.Insn.Ret ] ->
    ()
  | items -> Alcotest.failf "unexpected item shape (%d items)" (List.length items)

let test_parse_error_line () =
  match Asmparse.parse "\tmovl\t$1,r6\n\tbogus!!\t$1\n" with
  | exception Asmparse.Parse_error (2, _) -> ()
  | exception Asmparse.Parse_error (n, m) ->
    Alcotest.failf "wrong line %d: %s" n m
  | _ -> Alcotest.fail "junk accepted"

(* -- execution ----------------------------------------------------------------- *)

let run_asm ?(globals = []) ?(args = []) src =
  Machine.run_text ~global_types:globals src ~entry:"main" args

let test_simple_arith () =
  let out = run_asm "main:\n\tmovl\t$20,r6\n\taddl2\t$22,r6\n\tmovl\tr6,r0\n\tret\n" in
  Alcotest.check value "42" (Interp.VInt 42L) out.Machine.return_value

let test_memory_and_globals () =
  let out =
    run_asm ~globals:[ ("g", Dtype.Long, 4) ]
      "\t.comm\tg,4\nmain:\n\tmovl\t$7,g\n\tmull3\t$6,g,r0\n\tret\n"
  in
  Alcotest.check value "42" (Interp.VInt 42L) out.Machine.return_value;
  Alcotest.(check (list (pair string value))) "global" [ ("g", Interp.VInt 7L) ]
    out.Machine.globals

let test_byte_sign_extension () =
  let out =
    run_asm ~globals:[ ("b", Dtype.Byte, 1) ]
      "\t.comm\tb,1\nmain:\n\tmovb\t$-1,b\n\tcvtbl\tb,r0\n\tret\n"
  in
  Alcotest.check value "sign extended" (Interp.VInt (-1L)) out.Machine.return_value

let test_branches_signed_unsigned () =
  (* -1 < 1 signed, but 0xffffffff > 1 unsigned *)
  let src =
    "main:\n\tclrl\tr0\n\tcmpl\t$-1,$1\n\tjlss\tL1\n\tjbr\tL2\nL1:\n\tbisl2\t$1,r0\nL2:\n\tcmpl\t$-1,$1\n\tjgtru\tL3\n\tjbr\tL4\nL3:\n\tbisl2\t$2,r0\nL4:\n\tret\n"
  in
  let out = run_asm src in
  Alcotest.check value "both branch kinds" (Interp.VInt 3L) out.Machine.return_value

let test_autoincrement_execution () =
  let src =
    "\t.comm\ta,8\nmain:\n\tmovl\t$7,a\n\tmovl\t$9,a+4\n\tmoval\ta,r6\n\taddl3\t(r6)+,(r6)+,r0\n\tret\n"
  in
  let out = run_asm ~globals:[ ("a", Dtype.Long, 8) ] src in
  Alcotest.check value "7+9" (Interp.VInt 16L) out.Machine.return_value

let test_indexed_scaling () =
  (* [rx] scales by operand size: longs by 4 *)
  let src =
    "\t.comm\ta,8\nmain:\n\tmovl\t$5,a\n\tmovl\t$11,a+4\n\tmovl\t$1,r7\n\tmovl\ta[r7],r0\n\tret\n"
  in
  let out = run_asm ~globals:[ ("a", Dtype.Long, 8) ] src in
  Alcotest.check value "a[1]" (Interp.VInt 11L) out.Machine.return_value

let test_calls_and_ret () =
  let src =
    "\t.globl\tdouble\ndouble:\n\taddl3\t4(ap),4(ap),r0\n\tret\n\
     \t.globl\tmain\nmain:\n\tpushl\t$21\n\tcalls\t$1,double\n\tret\n"
  in
  let out = run_asm src in
  Alcotest.check value "42" (Interp.VInt 42L) out.Machine.return_value

let test_calls_preserves_registers () =
  let src =
    "\t.globl\tclobber\nclobber:\n\tmovl\t$99,r6\n\tmovl\t$99,r11\n\tret\n\
     \t.globl\tmain\nmain:\n\tmovl\t$5,r6\n\tmovl\t$6,r11\n\tcalls\t$0,clobber\n\taddl3\tr6,r11,r0\n\tret\n"
  in
  let out = run_asm src in
  Alcotest.check value "r6/r11 preserved" (Interp.VInt 11L) out.Machine.return_value

let test_udivl_builtin () =
  let src =
    "main:\n\tpushl\t$3\n\tpushl\t$-2\n\tcalls\t$2,__udivl\n\tret\n"
  in
  let out = run_asm src in
  (* 0xfffffffe / 3 = 0x55555554 *)
  Alcotest.check value "unsigned divide" (Interp.VInt 0x55555554L)
    out.Machine.return_value

let test_double_register_pairs () =
  (* movd into a register pair and back *)
  let src =
    "\t.comm\td,8\nmain:\n\tmovd\t$0f2.5,r6\n\taddd2\t$0f0.25,r6\n\tmovd\tr6,d\n\tclrl\tr0\n\tret\n"
  in
  let out = run_asm ~globals:[ ("d", Dtype.Dbl, 8) ] src in
  Alcotest.(check (list (pair string value))) "double global"
    [ ("d", Interp.VFloat 2.75) ]
    out.Machine.globals

let test_print_builtin () =
  let out = run_asm "main:\n\tpushl\t$-3\n\tcalls\t$1,print\n\tclrl\tr0\n\tret\n" in
  Alcotest.(check (list string)) "printed" [ "-3" ] out.Machine.output

let test_step_budget () =
  match run_asm "main:\nL1:\n\tjbr\tL1\n" with
  | exception Machine.Sim_error _ -> ()
  | _ -> Alcotest.fail "infinite loop not caught"

let test_division_by_zero () =
  match run_asm "main:\n\tclrl\tr6\n\tdivl3\tr6,$5,r0\n\tret\n" with
  | exception Machine.Sim_error _ -> ()
  | _ -> Alcotest.fail "division by zero not caught"

let test_cycles_accumulate () =
  let out = run_asm "main:\n\tmovl\t$2,r6\n\tmull2\t$3,r6\n\tmovl\tr6,r0\n\tret\n" in
  check_bool "cycles counted" true (out.Machine.cycles > 10);
  check_int "instructions" 4 out.Machine.insns_executed

let suite =
  [
    Alcotest.test_case "parse operands roundtrip" `Quick test_parse_operands;
    Alcotest.test_case "parse specific operands" `Quick test_parse_specific;
    QCheck_alcotest.to_alcotest prop_operand_roundtrip;
    Alcotest.test_case "parse program items" `Quick test_parse_program_items;
    Alcotest.test_case "parse error reports line" `Quick test_parse_error_line;
    Alcotest.test_case "simple arithmetic" `Quick test_simple_arith;
    Alcotest.test_case "memory and globals" `Quick test_memory_and_globals;
    Alcotest.test_case "byte sign extension" `Quick test_byte_sign_extension;
    Alcotest.test_case "signed and unsigned branches" `Quick
      test_branches_signed_unsigned;
    Alcotest.test_case "autoincrement execution" `Quick
      test_autoincrement_execution;
    Alcotest.test_case "indexed scaling" `Quick test_indexed_scaling;
    Alcotest.test_case "calls and ret" `Quick test_calls_and_ret;
    Alcotest.test_case "calls preserves registers" `Quick
      test_calls_preserves_registers;
    Alcotest.test_case "__udivl builtin" `Quick test_udivl_builtin;
    Alcotest.test_case "double register pairs" `Quick
      test_double_register_pairs;
    Alcotest.test_case "print builtin" `Quick test_print_builtin;
    Alcotest.test_case "step budget" `Quick test_step_budget;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "cycle accounting" `Quick test_cycles_accumulate;
  ]
