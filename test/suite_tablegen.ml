(* Tests for the table constructor: FIRST/FOLLOW, LR(0) automata,
   SLR tables with maximal-munch conflict resolution, naive-vs-optimised
   equivalence, and the static checks. *)

open Gg_grammar
open Gg_tablegen
module Dtype = Gg_ir.Dtype

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let term_id g name =
  match Symtab.find g.Grammar.symtab name with
  | Some (Symtab.T a) -> a
  | _ -> Alcotest.failf "terminal %s not in grammar" name

let nonterm_id g name =
  match Symtab.find g.Grammar.symtab name with
  | Some (Symtab.N n) -> n
  | _ -> Alcotest.failf "nonterminal %s not in grammar" name

(* -- FIRST / FOLLOW ------------------------------------------------------- *)

let test_first_sets () =
  let g = Toy.grammar in
  let f = First.compute g in
  let first_names n =
    List.map (Symtab.term_name g.Grammar.symtab) (First.first f n)
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "FIRST(stmt)" [ "Assign.l" ]
    (first_names (nonterm_id g "stmt"));
  Alcotest.(check (list string)) "FIRST(rval.l)"
    [ "Const.l"; "Dreg.l"; "Mul.l"; "Name.l"; "Plus.l" ]
    (first_names (nonterm_id g "rval.l"));
  Alcotest.(check (list string)) "FIRST(imm.l)" [ "Const.l" ]
    (first_names (nonterm_id g "imm.l"))

let test_follow_sets () =
  let g = Toy.grammar in
  let f = First.compute g in
  (* the start symbol is followed by eof *)
  check_bool "eof in FOLLOW(stmt)" true
    (First.mem_follow f (nonterm_id g "stmt") (First.eof f));
  (* an rval can be followed by the start of another rval (first operand
     position of the three-address adds) *)
  check_bool "Name.l in FOLLOW(rval.l)" true
    (First.mem_follow f (nonterm_id g "rval.l") (term_id g "Name.l"))

(* -- LR(0) construction --------------------------------------------------- *)

let test_lr0_has_states () =
  let auto = Lr0.build Toy.grammar in
  check_bool "more than 10 states" true (auto.Automaton.n_states > 10);
  (* state 0 kernel is the augmented item *)
  check_int "state 0 kernel size" 1 (Array.length auto.Automaton.kernels.(0))

let test_naive_equals_lr0 () =
  let a = Lr0.build Toy.grammar in
  let b = Naive.build Toy.grammar in
  check_int "same state count" a.Automaton.n_states b.Automaton.n_states;
  for s = 0 to a.Automaton.n_states - 1 do
    Alcotest.(check (array int))
      (Fmt.str "kernel of state %d" s)
      a.Automaton.kernels.(s) b.Automaton.kernels.(s);
    Alcotest.(check (list (pair int int)))
      (Fmt.str "term moves of state %d" s)
      a.Automaton.term_moves.(s) b.Automaton.term_moves.(s);
    Alcotest.(check (list (pair int int)))
      (Fmt.str "nonterm moves of state %d" s)
      a.Automaton.nonterm_moves.(s) b.Automaton.nonterm_moves.(s)
  done

(* -- SLR tables and maximal munch ----------------------------------------- *)

let tables = lazy (Tables.build Toy.grammar)

let test_tables_accept_entry () =
  let t = Lazy.force tables in
  (* after goto on the start symbol from state 0, eof must Accept *)
  let s1 = t.Tables.goto_.(0).(Toy.grammar.Grammar.start) in
  check_bool "goto on start defined" true (s1 >= 0);
  match t.Tables.action.(s1).(Tables.eof t) with
  | Tables.Accept -> ()
  | _ -> Alcotest.fail "no accept action"

let test_shift_preferred () =
  let t = Lazy.force tables in
  (* conflicts were resolved, and at least one shift/reduce conflict
     exists in this ambiguous grammar *)
  check_bool "some shift/reduce conflicts" true
    (t.Tables.conflicts.Tables.shift_reduce > 0)

let test_stats_consistent () =
  let t = Lazy.force tables in
  let s = Tables.stats t in
  check_int "states match automaton" t.Tables.automaton.Automaton.n_states
    s.Tables.states;
  check_bool "has action entries" true (s.Tables.action_entries > 0);
  check_bool "has goto entries" true (s.Tables.goto_entries > 0)

(* -- static checks -------------------------------------------------------- *)

let test_chain_cycles () =
  let report = Checks.chains Toy.grammar in
  (* reg.l <- rval.l (emit) and rval.l <- reg.l (chain) form an emitting
     cycle; there must be no silent cycle *)
  Alcotest.(check (list (list string))) "no silent cycles" []
    report.Checks.silent_cycles;
  check_bool "emitting cycle found" true
    (List.exists
       (fun cyc ->
         List.sort String.compare cyc = [ "reg.l"; "rval.l" ])
       report.Checks.emitting_cycles)

let test_silent_cycle_detected () =
  let g =
    Grammar.make_exn ~start:"s"
      [
        ("s", [ "a" ], Action.Chain, "");
        ("a", [ "b" ], Action.Chain, "");
        ("b", [ "a" ], Action.Chain, "");
        ("b", [ "X" ], Action.Chain, "");
      ]
  in
  let report = Checks.chains g in
  check_bool "cycle a<->b found" true
    (List.exists
       (fun cyc -> List.sort String.compare cyc = [ "a"; "b" ])
       report.Checks.silent_cycles)

(* Tree-language description for the toy grammar: arities of the
   operator terminals and the terminals that may begin the subtree at
   each (parent operator, child index) position. *)
let toy_arity = function
  | "Assign.l" | "Plus.l" | "Mul.l" -> 2
  | _ -> 0

let long_starts = [ "Plus.l"; "Mul.l"; "Const.l"; "Name.l"; "Dreg.l" ]

let toy_starts ~parent ~child =
  match (parent, child) with
  | None, _ -> [ "Assign.l" ]
  | Some "Assign.l", 0 -> [ "Name.l"; "Dreg.l" ] (* destinations are lvalues *)
  | Some ("Assign.l" | "Plus.l" | "Mul.l"), _ -> long_starts
  | Some _, _ -> []

let test_no_blocks_in_toy () =
  let t = Lazy.force tables in
  let blocks = Checks.blocks t ~arity:toy_arity ~starts:toy_starts in
  match blocks with
  | [] -> ()
  | b :: _ -> Alcotest.failf "unexpected block: %a" Checks.pp_block b

let test_block_detected_when_production_missing () =
  (* remove the general register add so that an operand position cannot
     accept Mul-rooted subtrees: the checker must flag it *)
  let specs =
    List.filter
      (fun (_, rhs, _, _) -> rhs <> [ "Mul.l"; "rval.l"; "rval.l" ])
      Toy.specs
  in
  let g = Grammar.make_exn ~start:"stmt" specs in
  let t = Tables.build g in
  let blocks = Checks.blocks t ~arity:toy_arity ~starts:toy_starts in
  check_bool "Mul.l blocks somewhere" true
    (List.exists (fun b -> b.Checks.terminal = "Mul.l") blocks)

(* -- packed tables --------------------------------------------------------- *)

let test_packed_roundtrip_toy () =
  let t = Lazy.force tables in
  let packed = Packed.pack t in
  let g = Toy.grammar in
  let nt = Symtab.n_terms g.Grammar.symtab in
  let nn = Symtab.n_nonterms g.Grammar.symtab in
  for s = 0 to Tables.n_states t - 1 do
    (* exact parity, error cells included: the validity bitset keeps
       default reductions from leaking into error entries *)
    for a = 0 to nt do
      if t.Tables.action.(s).(a) <> Packed.action packed s a then
        Alcotest.failf "action (%d, %d) differs" s a
    done;
    Alcotest.(check (list int))
      (Fmt.str "expected set of state %d" s)
      (Tables.expected t s) (Packed.expected packed s);
    for n = 0 to nn - 1 do
      if t.Tables.goto_.(s).(n) <> Packed.goto packed s n then
        Alcotest.failf "goto (%d, %d) differs" s n
    done
  done

let test_packed_vax_compression () =
  let t = Tables.build (Gg_vax.Grammar_def.grammar Gg_vax.Grammar_def.default) in
  let packed = Packed.pack t in
  let g = Tables.grammar t in
  let nt = Symtab.n_terms g.Grammar.symtab in
  (* spot-check exact equality (error cells included) on sampled columns *)
  for s = 0 to Tables.n_states t - 1 do
    for a = 0 to nt / 7 do
      let col = a * 7 mod (nt + 1) in
      if t.Tables.action.(s).(col) <> Packed.action packed s col then
        Alcotest.failf "action (%d, %d) differs" s col
    done
  done;
  let st = Packed.stats packed in
  check_bool
    (Fmt.str "compresses the VAX tables (ratio %.2f)" st.Packed.ratio)
    true (st.Packed.ratio < 0.7)

let test_packed_save_load () =
  let t = Lazy.force tables in
  let packed = Packed.pack t in
  let path = Filename.temp_file "ggcg" ".tbl" in
  Packed.save packed path;
  let loaded = Packed.load Toy.grammar path in
  Sys.remove path;
  let g = Toy.grammar in
  let nt = Symtab.n_terms g.Grammar.symtab in
  for s = 0 to Tables.n_states t - 1 do
    for a = 0 to nt do
      if Packed.action packed s a <> Packed.action loaded s a then
        Alcotest.failf "loaded action (%d, %d) differs" s a
    done
  done;
  (* loading against a different grammar is rejected *)
  Packed.save packed path;
  (match Packed.load (Gg_vax.Grammar_def.grammar Gg_vax.Grammar_def.default) path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "mismatched grammar accepted");
  Sys.remove path

let suite =
  [
    Alcotest.test_case "FIRST sets" `Quick test_first_sets;
    Alcotest.test_case "FOLLOW sets" `Quick test_follow_sets;
    Alcotest.test_case "LR(0) builds" `Quick test_lr0_has_states;
    Alcotest.test_case "naive == optimised automaton" `Quick
      test_naive_equals_lr0;
    Alcotest.test_case "accept entry" `Quick test_tables_accept_entry;
    Alcotest.test_case "shift preferred in conflicts" `Quick
      test_shift_preferred;
    Alcotest.test_case "stats consistent" `Quick test_stats_consistent;
    Alcotest.test_case "chain cycle classification" `Quick test_chain_cycles;
    Alcotest.test_case "silent chain cycle detected" `Quick
      test_silent_cycle_detected;
    Alcotest.test_case "no blocks in toy grammar" `Quick test_no_blocks_in_toy;
    Alcotest.test_case "missing production causes block" `Quick
      test_block_detected_when_production_missing;
    Alcotest.test_case "packed tables roundtrip" `Quick
      test_packed_roundtrip_toy;
    Alcotest.test_case "packed tables compress the VAX tables" `Quick
      test_packed_vax_compression;
    Alcotest.test_case "packed tables save/load" `Quick test_packed_save_load;
  ]
