(* Tests for the RISC target description: static safety of the machine
   grammar (chain cycles, syntactic blocks), the load/store discipline
   of the generated assembly, the instruction table, and the backend
   record wiring.  Execution-level parity with the interpreter and the
   VAX backend lives in suite_riscsim and suite_ops. *)

open Gg_ir
open Gg_risc
module Driver = Gg_codegen.Driver
module Tables = Gg_tablegen.Tables
module Checks = Gg_tablegen.Checks

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let risc_tables = lazy (Driver.build_tables ~backend:Target.backend Grammar_def.default)

(* -- static grammar checks -------------------------------------------------- *)

let test_no_silent_chain_cycles () =
  let report = Checks.chains (Lazy.force Grammar_def.default_grammar) in
  Alcotest.(check (list (list string))) "no silent cycles" []
    report.Checks.silent_cycles

let test_no_blocks () =
  (* the RISC grammar needs no bridges: [reg.l] derives every long
     value, so every address position can always be repaired through a
     register *)
  let o = Grammar_def.default in
  let t = Tables.build (Grammar_def.grammar o) in
  let tl = Grammar_def.treelang o in
  check_int "no blocks" 0
    (List.length
       (Checks.blocks t ~arity:tl.Treelang.arity ~starts:tl.Treelang.starts))

let test_no_blocks_no_reverse () =
  (* the tree-language description keeps [Rassign] even with reverse
     operators off (the ordering phase simply never produces it), so
     the only acceptable blocks are on Rassign at the root — the same
     caveat the VAX grammar has in this configuration *)
  let o = { Grammar_def.default with Gg_vax.Grammar_def.reverse_ops = false } in
  let t = Tables.build (Grammar_def.grammar o) in
  let tl = Grammar_def.treelang o in
  let blocks =
    Checks.blocks t ~arity:tl.Treelang.arity ~starts:tl.Treelang.starts
  in
  List.iter
    (fun b ->
      let prefix = "Rassign." in
      let n = String.length prefix in
      if
        not
          (String.length b.Checks.terminal > n
          && String.sub b.Checks.terminal 0 n = prefix)
      then
        Alcotest.failf "unexpected block on %s in state %d" b.Checks.terminal
          b.Checks.state)
    blocks

let test_grammar_smaller_than_vax () =
  (* fewer addressing modes means fewer productions, despite the extra
     immediate-operand ALU forms *)
  let risc =
    (Gg_grammar.Grammar.stats (Lazy.force Grammar_def.default_grammar))
      .Gg_grammar.Grammar.productions
  in
  let vax =
    (Gg_grammar.Grammar.stats (Lazy.force Gg_vax.Grammar_def.default_grammar))
      .Gg_grammar.Grammar.productions
  in
  check_bool "risc grammar smaller" true (risc < vax)

(* -- instruction table ------------------------------------------------------ *)

let test_mnemonics () =
  check_str "addl" "addl" (Insn_table.mn "add" Dtype.Long);
  check_str "addf" "addf" (Insn_table.mn "add" Dtype.Flt);
  check_str "remb" "remb" (Insn_table.mn "rem" Dtype.Byte)

let test_bcc () =
  check_str "signed lt" "blt" (Insn_table.bcc Op.Lt Dtype.Signed Dtype.Long);
  check_str "unsigned lt" "bltu" (Insn_table.bcc Op.Lt Dtype.Unsigned Dtype.Long);
  check_str "unsigned eq" "beq" (Insn_table.bcc Op.Eq Dtype.Unsigned Dtype.Long);
  check_str "float ge" "bge" (Insn_table.bcc Op.Ge Dtype.Signed Dtype.Dbl)

let test_render_call () =
  check_str "call" "\tcall\t$2,fib" (Insn_table.render (Insn.Call ("fib", 2)));
  check_str "plain insn unchanged" "\taddl\tr6,$1,r7"
    (Insn_table.render
       (Insn.insn "addl" [ Mode.reg 6; Mode.imm 1L; Mode.reg 7 ]))

let test_cycles () =
  check_int "alu" 1 (Insn_table.cycles (Insn.insn "addl" []));
  check_int "load" 2 (Insn_table.cycles (Insn.insn "ldl" []));
  check_int "div" 12 (Insn_table.cycles (Insn.insn "divl" []));
  check_int "label free" 0 (Insn_table.cycles (Insn.Lab 1))

(* -- generated assembly ----------------------------------------------------- *)

let risc_mnemonics_ok line =
  (* every instruction line must use a known RISC mnemonic; in
     particular nothing VAX-flavoured (mov*, jbr, calls, addl2/3) may
     leak through *)
  if String.length line = 0 || line.[0] <> '\t' then true
  else
    let rest = String.sub line 1 (String.length line - 1) in
    let mnemonic =
      match String.index_opt rest '\t' with
      | Some i -> String.sub rest 0 i
      | None -> rest
    in
    let prefixes =
      [ "li"; "ld"; "st"; "mv"; "la"; "add"; "sub"; "mul"; "div"; "rem";
        "and"; "or"; "xor"; "sll"; "sra"; "neg"; "not"; "cvt"; "cmp"; "b";
        "call"; "ret"; "#"; "." (* assembler directives *) ]
    in
    List.exists
      (fun p ->
        String.length mnemonic >= String.length p
        && String.sub mnemonic 0 (String.length p) = p)
      prefixes

let no_vax_modes line =
  (* no autoincrement, autodecrement or index syntax may appear *)
  let has sub =
    let n = String.length sub and m = String.length line in
    let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
    go 0
  in
  not (has ")+" || has "-(" || has "[r")

let compile_risc prog =
  (Driver.compile_program ~tables:(Lazy.force risc_tables) prog)
    .Driver.assembly

let test_corpus_assembly_shape () =
  List.iter
    (fun (name, src) ->
      let prog = Gg_frontc.Sema.compile src in
      let asm = compile_risc prog in
      String.split_on_char '\n' asm
      |> List.iter (fun line ->
             if not (risc_mnemonics_ok line) then
               Alcotest.failf "%s: non-RISC mnemonic in %S" name line;
             if not (no_vax_modes line) then
               Alcotest.failf "%s: VAX addressing mode in %S" name line))
    Gg_frontc.Corpus.fixed_programs

let test_random_assembly_shape () =
  for seed = 1 to 20 do
    let prog =
      Gg_frontc.Sema.lower_program
        (Gg_frontc.Corpus.program ~seed ~functions:2 ~stmts_per_function:8)
    in
    let asm = compile_risc prog in
    String.split_on_char '\n' asm
    |> List.iter (fun line ->
           if not (risc_mnemonics_ok line) then
             Alcotest.failf "seed %d: non-RISC mnemonic in %S" seed line;
           if not (no_vax_modes line) then
             Alcotest.failf "seed %d: VAX addressing mode in %S" seed line)
  done

let test_backend_record () =
  check_str "name" "risc" (Gg_codegen.Backend.name Target.backend);
  check_bool "no peephole" true (Target.backend.Gg_codegen.Backend.peephole = None);
  check_str "jump" "\tb\tL3"
    (Insn.assembly (Target.backend.Gg_codegen.Backend.jump 3));
  check_str "prologue" "\tsubl\tsp,$8,sp\n"
    (Target.backend.Gg_codegen.Backend.prologue 8)

let suite =
  [
    Alcotest.test_case "no silent chain cycles" `Quick
      test_no_silent_chain_cycles;
    Alcotest.test_case "no syntactic blocks" `Quick test_no_blocks;
    Alcotest.test_case "no blocks without reverse ops" `Quick
      test_no_blocks_no_reverse;
    Alcotest.test_case "grammar smaller than VAX" `Quick
      test_grammar_smaller_than_vax;
    Alcotest.test_case "mnemonics" `Quick test_mnemonics;
    Alcotest.test_case "branch table" `Quick test_bcc;
    Alcotest.test_case "call rendering" `Quick test_render_call;
    Alcotest.test_case "cycle model" `Quick test_cycles;
    Alcotest.test_case "corpus assembly shape" `Quick
      test_corpus_assembly_shape;
    Alcotest.test_case "random assembly shape" `Quick
      test_random_assembly_shape;
    Alcotest.test_case "backend record" `Quick test_backend_record;
  ]
