(* Benchmark harness: regenerates every measured claim of the paper's
   evaluation (section 8 and the quantified asides), one section per
   experiment.  EXPERIMENTS.md records paper-vs-measured for each.

   Absolute numbers differ from 1982 hardware by construction; the
   *shape* of each result (who wins, by what factor) is the target. *)

open Gg_ir
module Grammar = Gg_grammar.Grammar
module Tables = Gg_tablegen.Tables
module Naive = Gg_tablegen.Naive
module Lr0 = Gg_tablegen.Lr0
module Packed = Gg_tablegen.Packed
module Profile = Gg_profile.Profile
module Matcher = Gg_matcher.Matcher
module Transform = Gg_transform.Transform
module Phase1c = Gg_transform.Phase1c
module Grammar_def = Gg_vax.Grammar_def
module Insn = Gg_ir.Insn
module Driver = Gg_codegen.Driver
module Backend = Gg_codegen.Backend
module Targets = Gg_targets.Targets
module Simout = Gg_ir.Simout
module Pcc = Gg_pcc.Pcc
module Sema = Gg_frontc.Sema
module Corpus = Gg_frontc.Corpus
module Machine = Gg_vaxsim.Machine
module Server = Gg_server.Server
module Protocol = Gg_server.Protocol
module Client = Gg_server.Client
module Slog = Gg_server.Slog
module Metrics = Gg_profile.Metrics
module Parallel = Gg_codegen.Parallel

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

(* non-flag arguments select sections by key (e.g. `main.exe throughput`);
   no arguments runs everything *)
let selected =
  Array.to_list Sys.argv |> List.tl
  |> List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))

let want key = selected = [] || List.mem key selected

(* --trace-out=FILE / --metrics-out=FILE: arm the telemetry subsystem
   for the whole run and write the exports before exiting, so a bench
   session is inspectable in chrome://tracing like any ggcc compile *)
let flag_value name =
  let prefix = "--" ^ name ^ "=" in
  let n = String.length prefix in
  Array.to_list Sys.argv
  |> List.find_map (fun a ->
         if String.length a > n && String.sub a 0 n = prefix then
           Some (String.sub a n (String.length a - n))
         else None)

let trace_out = flag_value "trace-out"
let metrics_out = flag_value "metrics-out"

(* --target=vax|risc retargets the gg-backend measurements (the
   throughput section); the retarget section always measures both *)
let bench_target =
  match flag_value "target" with
  | None -> Gg_codegen.Backend.Vax
  | Some s -> (
    match Gg_targets.Targets.of_string s with
    | Some t -> t
    | None ->
      Fmt.epr "unknown --target=%s (vax or risc)@." s;
      exit 2)

let section title = Fmt.pr "@.=== %s ===@." title
let row fmt = Fmt.pr fmt

(* -- Bechamel helpers --------------------------------------------------------- *)

open Bechamel
open Toolkit

(* run named thunks under Bechamel; returns ns/run keyed by the name *)
let measure_ns tests =
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg
      ~limit:(if quick then 100 else 500)
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ()
  in
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) tests
  in
  let grouped = Test.make_grouped ~name:"bench" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> (name, ns) :: acc
      | _ -> acc)
    results []

(* best-of-[repeats] per test: on a shared box a single Bechamel pass
   can absorb scheduler noise; the minimum estimate is the least
   contaminated one *)
let measure_ns_best ~repeats tests =
  let all = List.concat (List.init repeats (fun _ -> measure_ns tests)) in
  List.sort_uniq compare (List.map fst all)
  |> List.map (fun name ->
         ( name,
           List.fold_left
             (fun acc (n, v) -> if n = name then Float.min acc v else acc)
             Float.infinity all ))

let lookup results key =
  (* grouped test names carry a prefix; match by suffix *)
  List.find_map
    (fun (name, v) ->
      let n = String.length name and k = String.length key in
      if n >= k && String.sub name (n - k) k = key then Some v else None)
    results

(* -- corpora ------------------------------------------------------------------ *)

let corpus_program =
  lazy
    (Sema.lower_program
       (Corpus.large_program ~seed:42
          ~target_stmts:(if quick then 150 else 600)))

let fixed_progs =
  lazy (List.map (fun (n, s) -> (n, Sema.compile s)) Corpus.fixed_programs)

(* ============================================================================ *)
(* T-GRAM: grammar and table statistics (section 8, first paragraph)            *)
(* ============================================================================ *)

let bench_grammar_stats () =
  section "T-GRAM: machine description and table statistics (paper section 8)";
  let o = Grammar_def.default in
  let schemas = Grammar_def.schemas o in
  let g = Grammar_def.grammar o in
  let gs = Grammar.stats g in
  let t = Tables.build g in
  let ts = Tables.stats t in
  row "generic schemas (pre-replication):    %d   (paper: 458)@."
    (List.length schemas);
  row "replicated productions:               %d   (paper: 1073)@."
    gs.Grammar.productions;
  row "terminals:                            %d   (paper: 219)@."
    gs.Grammar.terminals;
  row "non-terminals:                        %d   (paper: 148)@."
    gs.Grammar.nonterminals;
  row "parser states:                        %d   (paper: 2216)@."
    ts.Tables.states;
  row "replication growth factor:            %.2fx (paper: 2.34x)@."
    (float_of_int gs.Grammar.productions /. float_of_int (List.length schemas));
  row "conflicts: %d shift/reduce, %d reduce/reduce, %d semantic ties@."
    ts.Tables.conflicts.Tables.shift_reduce
    ts.Tables.conflicts.Tables.reduce_reduce
    ts.Tables.conflicts.Tables.semantic_ties

(* ============================================================================ *)
(* T-REV: the reverse-operator ablation (section 5.1.3)                         *)
(* ============================================================================ *)

let bench_reverse_ops () =
  section "T-REV: reverse binary operators ablation (paper section 5.1.3)";
  let with_r = Grammar_def.grammar Grammar_def.default in
  let without_r =
    Grammar_def.grammar
      { Grammar_def.default with Grammar_def.reverse_ops = false }
  in
  let p_with = (Grammar.stats with_r).Grammar.productions in
  let p_without = (Grammar.stats without_r).Grammar.productions in
  let t_with = Tables.stats (Tables.build with_r) in
  let t_without = Tables.stats (Tables.build without_r) in
  row "grammar size:  %d -> %d productions (+%.0f%%)   (paper: +25%%)@."
    p_without p_with
    (100. *. float_of_int (p_with - p_without) /. float_of_int p_without);
  row
    "table size:    %d -> %d states (+%.0f%%), %d -> %d action entries \
     (+%.0f%%)   (paper: +60%%)@."
    t_without.Tables.states t_with.Tables.states
    (100.
    *. float_of_int (t_with.Tables.states - t_without.Tables.states)
    /. float_of_int t_without.Tables.states)
    t_without.Tables.action_entries t_with.Tables.action_entries
    (100.
    *. float_of_int
         (t_with.Tables.action_entries - t_without.Tables.action_entries)
    /. float_of_int t_without.Tables.action_entries);
  (* The paper's metric is how often the swaps "affected register
     allocation": compare the left-to-right register usage of each
     statement tree before and after the ordering phase.  (Swaps that
     only rearrange free operands change nothing.) *)
  let rec lr_usage (t : Tree.t) =
    match t with
    | Tree.Const _ | Tree.Fconst _ | Tree.Name _ | Tree.Temp _ | Tree.Dreg _
    | Tree.Autoinc _ | Tree.Autodec _ ->
      0
    | Tree.Indir (_, a) -> lr_usage a
    | Tree.Addr _ -> 1
    | Tree.Unop (_, _, e) | Tree.Conv (_, _, e) | Tree.Arg (_, e) ->
      max 1 (lr_usage e)
    | Tree.Binop (_, _, a, b)
    | Tree.Assign (_, a, b)
    | Tree.Rassign (_, a, b)
    | Tree.Cbranch (_, _, _, a, b, _) ->
      let held = if Phase1c.register_need a > 0 then 1 else 0 in
      max (max (lr_usage a) (lr_usage b + held)) 1
    | Tree.Call _ | Tree.Land _ | Tree.Lor _ | Tree.Lnot _ | Tree.Select _
    | Tree.Relval _ ->
      6
  in
  let prog = Lazy.force corpus_program in
  let stmts = ref 0 in
  let affected = ref 0 in
  let swaps = ref 0 in
  List.iter
    (fun (f : Tree.func) ->
      let stats = Phase1c.fresh_stats () in
      let ctx = Gg_transform.Context.create f in
      let body = Gg_transform.Phase1a.run ctx f.Tree.body in
      let body = Gg_transform.Phase1b.run body in
      let before =
        List.filter_map
          (function Tree.Stree t -> Some t | _ -> None)
          body
      in
      let after =
        List.filter_map
          (function Tree.Stree t -> Some t | _ -> None)
          (Phase1c.run ~spill_guard:false ~stats ctx body)
      in
      stmts := !stmts + List.length before;
      swaps :=
        !swaps + stats.Phase1c.swapped_reverse + stats.Phase1c.reversed_assigns;
      List.iter2
        (fun b a -> if lr_usage b <> lr_usage a then incr affected)
        before after)
    prog.Tree.funcs;
  row "statements rewritten with reverse forms: %d of %d (%.1f%%)@." !swaps
    !stmts
    (100. *. float_of_int !swaps /. float_of_int (max 1 !stmts));
  row
    "statements whose register usage changed: %d of %d (%.2f%%)   (paper: \
     <1%% of expressions)@."
    !affected !stmts
    (100. *. float_of_int !affected /. float_of_int (max 1 !stmts))

(* ============================================================================ *)
(* T-TBLC: table construction time (sections 7 and 9)                            *)
(* ============================================================================ *)

let bench_table_construction () =
  section
    "T-TBLC: table construction, naive vs improved (paper: >2 CPU hours -> \
     10 minutes, ~12x)";
  let subset =
    Grammar_def.grammar
      {
        Grammar_def.default with
        Grammar_def.int_types = [ Dtype.Long ];
        float_types = [];
      }
  in
  let full = Grammar_def.grammar Grammar_def.default in
  let time_once f =
    (* monotonic wall time, not CPU time: CPU time double-counts worker
       domains and would hide any -j speedup *)
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_naive, auto_naive = time_once (fun () -> Naive.build subset) in
  let t_fast_subset, auto_fast = time_once (fun () -> Lr0.build subset) in
  let t_fast_full, tables_full = time_once (fun () -> Tables.build full) in
  assert (
    auto_naive.Gg_tablegen.Automaton.n_states
    = auto_fast.Gg_tablegen.Automaton.n_states);
  row "subset grammar (long only, as in the paper's daily iterations; %d states):@."
    auto_naive.Gg_tablegen.Automaton.n_states;
  row "  naive constructor:     %8.3f s@." t_naive;
  row "  improved constructor:  %8.3f s@." t_fast_subset;
  row "  speedup:               %8.1fx   (paper: ~12x on the full grammar)@."
    (t_naive /. max 1e-6 t_fast_subset);
  row "full grammar, improved constructor + SLR tables: %.3f s (%d states)@."
    t_fast_full (Tables.n_states tables_full);
  (* the production path: ggcc never reconstructs a cached grammar's
     tables — it loads the packed file keyed by grammar digest *)
  let t_pack, packed = time_once (fun () -> Packed.pack tables_full) in
  let file = Filename.temp_file "ggcg-bench" ".tbl" in
  Packed.save packed file;
  let loads = if quick then 5 else 20 in
  let t_load_total, () =
    time_once (fun () ->
        for _ = 1 to loads do
          ignore (Packed.load full file)
        done)
  in
  Sys.remove file;
  let t_load = t_load_total /. float_of_int loads in
  row "packing the full tables:                         %.3f s@." t_pack;
  row "cached load of the packed tables:                %.4f s (avg of %d)@."
    t_load loads;
  row
    "  speedup vs optimised construction:             %8.1fx   (acceptance: \
     >= 10x)@."
    (t_fast_full /. max 1e-6 t_load)

(* ============================================================================ *)
(* T-MEM: table size and compression (sections 2, 6.4, 9)                        *)
(* ============================================================================ *)

let bench_table_size () =
  section
    "T-MEM: table size (the CGGWS \"produced tables that were too large\", \
     section 2)";
  let t = Tables.build (Grammar_def.grammar Grammar_def.default) in
  let packed = Gg_tablegen.Packed.pack t in
  let st = Gg_tablegen.Packed.stats packed in
  row "%a@." Gg_tablegen.Packed.pp_stats st;
  row
    "(default reductions + comb packing: the period answer to the paper's \
     table-size concern; the type-replicated description pays for itself in \
     table rows, which is why section 9 reconsiders \"our decision to type \
     operands syntactically\")@."

(* ============================================================================ *)
(* FIG2: phase profile                                                           *)
(* ============================================================================ *)

let bench_phase_profile () =
  section "FIG2: time share of the pattern-matching phase (paper: ~50%)";
  let prog = Lazy.force corpus_program in
  let tables = Lazy.force Driver.default_tables in
  let transformed = List.map (fun f -> Transform.run f) prog.Tree.funcs in
  let null_cb : unit Matcher.callbacks =
    {
      Matcher.on_shift = (fun _ -> ());
      on_reduce = (fun _ _ -> ());
      choose = (fun _ _ -> 0);
    }
  in
  let match_only () =
    List.iter
      (fun tr ->
        List.iter
          (fun s ->
            match s with
            | Tree.Stree t -> ignore (Matcher.run_tree_engine (Driver.engine tables) null_cb t)
            | _ -> ())
          tr.Transform.func.Tree.body)
      transformed
  in
  let results =
    measure_ns
      [
        ( "transform",
          fun () -> List.iter (fun f -> ignore (Transform.run f)) prog.Tree.funcs
        );
        ("match", match_only);
        ("full", fun () -> ignore (Driver.compile_program ~tables prog));
      ]
  in
  (match
     (lookup results "transform", lookup results "match", lookup results "full")
   with
  | Some tr, Some m, Some full ->
    row "phase 1 (transform):            %6.2f ms@." (tr /. 1e6);
    row "phase 2 (pattern match only):   %6.2f ms@." (m /. 1e6);
    row "full pipeline:                  %6.2f ms@." (full /. 1e6);
    row "pattern matching share of full: %.0f%%   (paper: ~50%%)@."
      (100. *. m /. full)
  | _ -> row "measurement failed@.");
  (* the same claim from the standing gg_profile instrumentation (what
     ggcc -profile prints), one instrumented corpus compile *)
  let was = !Profile.enabled in
  let was_m = !Gg_profile.Metrics.enabled in
  Profile.enabled := true;
  Profile.reset ();
  Gg_profile.Metrics.enabled := true;
  Gg_profile.Metrics.reset ();
  ignore (Driver.compile_program ~tables prog);
  let t_transform = Profile.seconds "phase1.transform" in
  let t_match = Profile.seconds "phase2.match" in
  row
    "instrumented (-profile): transform %.2f ms, match+emit %.2f ms -> \
     matching %.0f%% of the two phases@."
    (t_transform *. 1e3) (t_match *. 1e3)
    (100. *. t_match /. max 1e-9 (t_transform +. t_match));
  let c = Profile.totals () in
  row "  matcher counters: %d runs, %d shifts, %d reduces, %d semantic ties@."
    c.Profile.matcher_runs c.Profile.shifts c.Profile.reduces
    c.Profile.semantic_choices;
  (* where that matching time goes: the distribution over trees *)
  row "%a" Gg_profile.Metrics.report ();
  (* keep accumulating when a global --metrics-out sidecar was asked for *)
  if metrics_out = None then begin
    Gg_profile.Metrics.enabled := was_m;
    Gg_profile.Metrics.reset ()
  end;
  Profile.enabled := was;
  Profile.reset ()

(* ============================================================================ *)
(* T-TIME: code generation speed, GG vs PCC (section 8)                         *)
(* ============================================================================ *)

let bench_codegen_time () =
  section
    "T-TIME: code generation time (paper section 8: 80.1s GG vs 55.4s PCC, \
     ratio 1.45)";
  let prog = Lazy.force corpus_program in
  let tables = Lazy.force Driver.default_tables in
  let results =
    measure_ns
      [
        ("ggbackend", fun () -> ignore (Driver.compile_program ~tables prog));
        ("pccbackend", fun () -> ignore (Pcc.compile_program prog));
      ]
  in
  match (lookup results "ggbackend", lookup results "pccbackend") with
  | Some gg, Some pcc ->
    row "table-driven backend:  %.2f ms/compile@." (gg /. 1e6);
    row "PCC-style backend:     %.2f ms/compile@." (pcc /. 1e6);
    row "ratio GG/PCC:          %.2f   (paper: 1.45, GG slower)@." (gg /. pcc)
  | _ -> row "measurement failed@."

(* ============================================================================ *)
(* T-SIZE: lines of assembly and code quality (section 8)                        *)
(* ============================================================================ *)

let bench_code_size () =
  section
    "T-SIZE: code size and quality (paper: 11385 GG vs 11309 PCC lines, \
     ratio 1.007)";
  let prog = Lazy.force corpus_program in
  let gg = Driver.compile_program prog in
  let pcc = Pcc.compile_program prog in
  let gl = Driver.total_lines gg and pl = Pcc.total_lines pcc in
  row "lines of assembly:  GG %d   PCC %d   ratio %.3f   (paper: 1.007)@." gl
    pl
    (float_of_int gl /. float_of_int pl);
  row "static cycles:      GG %d   PCC %d   ratio %.3f@."
    (Driver.total_cycles gg) (Pcc.total_cycles pcc)
    (float_of_int (Driver.total_cycles gg)
    /. float_of_int (Pcc.total_cycles pcc));
  row "dynamic cycles (simulator), fixed benchmark programs:@.";
  let total_gg = ref 0 and total_pcc = ref 0 in
  List.iter
    (fun (name, prog) ->
      let run asm =
        (Machine.run_text ~max_steps:40_000_000 asm
           ~global_types:prog.Tree.globals ~entry:"main" [])
          .Machine.cycles
      in
      let cg = run (Driver.compile_program prog).Driver.assembly in
      let cp = run (Pcc.compile_program prog).Pcc.assembly in
      total_gg := !total_gg + cg;
      total_pcc := !total_pcc + cp;
      row "  %-12s GG %7d   PCC %7d   ratio %.3f@." name cg cp
        (float_of_int cg /. float_of_int cp))
    (Lazy.force fixed_progs);
  row
    "  %-12s GG %7d   PCC %7d   ratio %.3f   (paper: GG as good or better in \
     almost all cases)@."
    "TOTAL" !total_gg !total_pcc
    (float_of_int !total_gg /. float_of_int !total_pcc)

(* ============================================================================ *)
(* FIG3: instruction table and idiom recognition                                 *)
(* ============================================================================ *)

let bench_idioms () =
  section "FIG3: idiom recognition (paper Fig. 3 and section 5.3.2)";
  let nm s = Tree.Name (Dtype.Long, s) in
  let c n = Tree.Const (Dtype.Long, n) in
  let show label tree =
    let asm =
      Driver.compile_tree tree
      |> List.map (fun i -> String.trim (Insn.assembly i))
      |> String.concat "; "
    in
    row "  %-24s ->  %s@." label asm
  in
  show "a = 17 + b"
    (Tree.Assign (Dtype.Long, nm "a", Tree.Binop (Op.Plus, Dtype.Long, c 17L, nm "b")));
  show "a = a + 17"
    (Tree.Assign (Dtype.Long, nm "a", Tree.Binop (Op.Plus, Dtype.Long, nm "a", c 17L)));
  show "a = a + 1"
    (Tree.Assign (Dtype.Long, nm "a", Tree.Binop (Op.Plus, Dtype.Long, nm "a", c 1L)));
  show "a = 0" (Tree.Assign (Dtype.Long, nm "a", c 0L));
  (* most idioms exchange a 3-operand for a 2-operand instruction, so
     the honest metric is operand/cycle cost, not line count *)
  let prog = Lazy.force corpus_program in
  let noidioms = { Driver.default_options with Driver.idioms = false } in
  let with_i = Driver.compile_program prog in
  let without_i = Driver.compile_program ~options:noidioms prog in
  row "corpus static cycles with idioms:    %d (%d lines)@."
    (Driver.total_cycles with_i) (Driver.total_lines with_i);
  row
    "corpus static cycles without idioms: %d (%d lines, +%.1f%% cycles; \
     still correct, as the paper notes)@."
    (Driver.total_cycles without_i)
    (Driver.total_lines without_i)
    (100.
    *. float_of_int (Driver.total_cycles without_i - Driver.total_cycles with_i)
    /. float_of_int (Driver.total_cycles with_i));
  let dyn options (name, prog) =
    let asm = (Driver.compile_program ~options prog).Driver.assembly in
    ignore name;
    (Machine.run_text ~max_steps:40_000_000 asm
       ~global_types:prog.Tree.globals ~entry:"main" [])
      .Machine.cycles
  in
  let fixed = Lazy.force fixed_progs in
  let d_with =
    List.fold_left (fun a p -> a + dyn Driver.default_options p) 0 fixed
  in
  let d_without = List.fold_left (fun a p -> a + dyn noidioms p) 0 fixed in
  row "fixed programs dynamic cycles: %d with idioms, %d without (+%.1f%%)@."
    d_with d_without
    (100. *. float_of_int (d_without - d_with) /. float_of_int d_with);
  (* how often the recogniser fires: count the short instruction forms *)
  let short_forms out =
    List.fold_left
      (fun acc (cf : Driver.compiled_func) ->
        List.fold_left
          (fun acc i ->
            match i with
            | Insn.Insn (m, _) ->
              let n = String.length m in
              let is p = n > String.length p && String.sub m 0 (String.length p) = p in
              if
                (n > 0 && m.[n - 1] = '2')
                || is "inc" || is "dec" || is "clr" || is "tst"
              then acc + 1
              else acc
            | _ -> acc)
          acc cf.Driver.cf_insns)
      0 out.Driver.funcs
  in
  row "short forms chosen by the idiom recogniser: %d of %d instructions \
       (vs %d without idioms)@."
    (short_forms with_i)
    (Driver.total_lines with_i)
    (short_forms without_i)

(* ============================================================================ *)
(* PEEP: the peephole alternative (section 6.1)                                   *)
(* ============================================================================ *)

let bench_peephole () =
  section
    "PEEP: pairing the code generators with a peephole optimizer (section \
     6.1's alternative organisation)";
  let fixed = Lazy.force fixed_progs in
  let dyn asm (prog : Tree.program) =
    (Machine.run_text ~max_steps:40_000_000 asm
       ~global_types:prog.Tree.globals ~entry:"main" [])
      .Machine.cycles
  in
  let totals = ref (0, 0, 0, 0) in
  List.iter
    (fun (_, prog) ->
      let gg = dyn (Driver.compile_program prog).Driver.assembly prog in
      let gg_p =
        dyn
          (Driver.compile_program
             ~options:{ Driver.default_options with Driver.peephole = true }
             prog)
            .Driver.assembly prog
      in
      let pcc = dyn (Pcc.compile_program prog).Pcc.assembly prog in
      let pcc_p = dyn (Pcc.compile_program ~peephole:true prog).Pcc.assembly prog in
      let a, b, c, d = !totals in
      totals := (a + gg, b + gg_p, c + pcc, d + pcc_p))
    fixed;
  let gg, gg_p, pcc, pcc_p = !totals in
  row "dynamic cycles over the fixed programs:@.";
  row "  table-driven:  %7d -> %7d with peephole (-%.1f%%)@." gg gg_p
    (100. *. float_of_int (gg - gg_p) /. float_of_int gg);
  row "  PCC-style:     %7d -> %7d with peephole (-%.1f%%)@." pcc pcc_p
    (100. *. float_of_int (pcc - pcc_p) /. float_of_int pcc);
  row
    "(the table-driven backend already avoids redundant tests via the \
     condition-code patterns of section 6.1, so the peephole finds less)@."

(* ============================================================================ *)
(* COV: production coverage of the corpus                                         *)
(* ============================================================================ *)

let bench_coverage () =
  section "COV: grammar production coverage (completeness check)";
  let tables = Lazy.force Driver.default_tables in
  let g = Driver.grammar tables in
  let used = Array.make (Grammar.n_productions g) false in
  let null_cb : unit Matcher.callbacks =
    {
      Matcher.on_shift = (fun _ -> ());
      on_reduce = (fun p _ -> used.(p.Grammar.id) <- true);
      choose = (fun _ _ -> 0);
    }
  in
  let feed prog =
    List.iter
      (fun (f : Tree.func) ->
        let tr = Transform.run f in
        List.iter
          (fun s ->
            match s with
            | Tree.Stree t -> ignore (Matcher.run_tree_engine (Driver.engine tables) null_cb t)
            | _ -> ())
          tr.Transform.func.Tree.body)
      prog.Tree.funcs
  in
  feed (Lazy.force corpus_program);
  List.iter (fun (_, p) -> feed p) (Lazy.force fixed_progs);
  for seed = 1 to 30 do
    feed
      (Sema.lower_program
         (Corpus.program ~seed ~functions:3 ~stmts_per_function:10))
  done;
  (* the typed-tree corpus reaches the byte/word/float and conversion
     productions C's promotion rules bypass *)
  for seed = 1 to 60 do
    feed (Gg_ir.Treegen.program ~seed ~stmts:30)
  done;
  let n_used = Array.fold_left (fun a b -> if b then a + 1 else a) 0 used in
  row "productions exercised by the corpus: %d of %d (%.0f%%)@." n_used
    (Grammar.n_productions g)
    (100. *. float_of_int n_used /. float_of_int (Grammar.n_productions g));
  let unused =
    List.filteri (fun i _ -> not used.(i))
      (List.init (Grammar.n_productions g) (Grammar.production g))
  in
  row "a sample of unexercised productions (dead weight or rare shapes):@.";
  List.iteri
    (fun i p ->
      if i < 8 then row "  %a@." (Grammar.pp_production g) p)
    unused

(* ============================================================================ *)
(* APPX: the Appendix shift/reduce trace                                          *)
(* ============================================================================ *)

let bench_appendix () =
  section "APPX: shift/reduce actions for the Appendix example (a := 27 + b)";
  let tree =
    Tree.Assign
      ( Dtype.Long,
        Tree.Name (Dtype.Long, "a"),
        Tree.Binop
          ( Op.Plus, Dtype.Long,
            Tree.Const (Dtype.Byte, 27L),
            Tree.Conv
              ( Dtype.Long, Dtype.Byte,
                Tree.Indir
                  ( Dtype.Byte,
                    Tree.Binop (Op.Plus, Dtype.Long,
                                Tree.Const (Dtype.Long, -4L),
                                Tree.Dreg (Dtype.Long, Regconv.fp)) ) ) ) )
  in
  let insns, trace = Driver.compile_tree_traced tree in
  let g = Driver.grammar (Lazy.force Driver.default_tables) in
  Fmt.pr "%a@." (Matcher.pp_trace g) trace;
  row "emitted code:@.";
  List.iter (fun i -> row "%s@." (Insn.assembly i)) insns

(* ============================================================================ *)
(* THRU: matcher hot-loop and multi-domain batch throughput                     *)
(* ============================================================================ *)

let bench_throughput () =
  section
    (Fmt.str
       "THRU: second-pass throughput, %s target (paper section 8: the \
        table-driven pass ran 1.45x slower than PCC; section 9 calls the gap \
        engineering)"
       (Targets.name bench_target));
  let prog = Lazy.force corpus_program in
  let transformed = List.map (fun f -> Transform.run f) prog.Tree.funcs in
  let n_stmts =
    List.fold_left
      (fun acc tr -> acc + List.length tr.Transform.func.Tree.body)
      0 transformed
  in
  (* linearise once up front: the single-thread measurement targets the
     shift/reduce loop itself *)
  let token_lists =
    List.concat_map
      (fun tr ->
        List.filter_map
          (function Tree.Stree t -> Some (Termname.linearize t) | _ -> None)
          tr.Transform.func.Tree.body)
      transformed
  in
  let n_trees = List.length token_lists in
  let b = Targets.backend_of bench_target in
  let g = Lazy.force b.Backend.default_grammar in
  let dense = Matcher.engine (Tables.build g) in
  let packed_tables = Targets.default_tables bench_target in
  let packed = Driver.engine packed_tables in
  let null_cb : unit Matcher.callbacks =
    {
      Matcher.on_shift = (fun _ -> ());
      on_reduce = (fun _ _ -> ());
      choose = (fun _ _ -> 0);
    }
  in
  let run_all runner e () =
    List.iter (fun toks -> ignore (runner e null_cb toks)) token_lists
  in
  let results =
    measure_ns_best
      ~repeats:(if quick then 1 else 3)
      [
        (* pre-PR loop (list stack, symtab lookup per action) on both
           table representations, vs the production interned loop *)
        ("m-dense", run_all Matcher.run_engine_reference dense);
        ("m-packed", run_all Matcher.run_engine_reference packed);
        ("m-interned", run_all (fun e cb t -> Matcher.run_engine e cb t) packed);
      ]
  in
  let rate ns = float_of_int n_trees *. 1e9 /. ns in
  let srate ns = float_of_int n_stmts *. 1e9 /. ns in
  let single =
    match
      ( lookup results "m-dense",
        lookup results "m-packed",
        lookup results "m-interned" )
    with
    | Some d, Some p, Some i ->
      row "corpus: %d functions, %d statements, %d matched trees@."
        (List.length prog.Tree.funcs)
        n_stmts n_trees;
      row "  dense + per-step lookup:    %9.0f trees/s  %9.0f stmts/s@."
        (rate d) (srate d);
      row "  packed + per-step lookup:   %9.0f trees/s  %9.0f stmts/s@."
        (rate p) (srate p);
      row "  packed + interned (prod.):  %9.0f trees/s  %9.0f stmts/s@."
        (rate i) (srate i);
      row
        "  interned-loop speedup over the pre-PR packed matcher: %.2fx \
         (acceptance: >= 1.5x)@."
        (p /. i);
      Some (d, p, i)
    | _ ->
      row "measurement failed@.";
      None
  in
  (* the root cause of the old negative scaling, kept as a standing
     measurement: one Domain.spawn+join round trip, which the first
     Parallel.map paid per worker per batch *)
  let spawn_us =
    let reps = if quick then 5 else 20 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      Domain.join (Domain.spawn (fun () -> ()))
    done;
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int reps
  in
  row "Domain.spawn+join round trip: %.0f us@." spawn_us;
  let jlist = [ 1; 2; 4; 8 ] in
  (* byte-identity is asserted through real multi-domain batches
     (oversubscribed past the clamp), so it holds on any host *)
  let asm j =
    (Driver.compile_program ~tables:packed_tables ~jobs:j ~oversubscribe:true prog)
      .Driver.assembly
  in
  let identical = asm 1 = asm 4 && asm 1 = asm 8 in
  row "-j determinism: 4- and 8-domain assembly byte-identical to 1: %b@."
    identical;
  let measure_jobs ~oversubscribe =
    let jresults =
      (* best-of-N: the first test of a single pass absorbs heap growth
         and page-fault warmup, which would charge -j1 (measured first)
         several times its steady-state cost *)
      measure_ns_best
        ~repeats:(if quick then 2 else 3)
        (List.map
           (fun j ->
             ( Fmt.str "batch-j%d" j,
               fun () ->
                 ignore
                   (Driver.compile_program ~tables:packed_tables ~jobs:j ~oversubscribe
                      prog) ))
           jlist)
    in
    List.filter_map
      (fun j ->
        Option.map (fun ns -> (j, ns)) (lookup jresults (Fmt.str "batch-j%d" j)))
      jlist
  in
  (* the production path: the persistent pool, clamped to the host's
     cores — what `ggcc -j N` actually runs.  Shut the pool down first:
     the determinism check above parked oversubscribed workers, and on
     a small host their stop-the-world participation would tax the
     clamped (possibly sequential) runs being measured *)
  Parallel.shutdown ();
  let scaling = measure_jobs ~oversubscribe:false in
  let ns1 = List.assoc_opt 1 scaling in
  let speedup ns1 ns = match ns1 with Some n1 -> n1 /. ns | None -> nan in
  row
    "batch compile of the corpus (%d functions, recommended domains: %d, \
     effective -j clamped to the core count):@."
    (List.length prog.Tree.funcs)
    (Gg_codegen.Parallel.available ());
  List.iter
    (fun (j, ns) ->
      row "  -j %d:  %8.2f ms/compile   speedup %.2fx@." j (ns /. 1e6)
        (speedup ns1 ns))
    scaling;
  (* the same batches forced through real domains past the clamp: on a
     multi-core host this matches the clamped curve; on a small host it
     prices the pure pool overhead (condvar handoff + stop-the-world
     GC across domains) that the clamp avoids paying *)
  Parallel.shutdown ();
  let pool_scaling = measure_jobs ~oversubscribe:true in
  let pool_ns1 = List.assoc_opt 1 pool_scaling in
  row "same batches, forced multi-domain (pool overhead measurement):@.";
  List.iter
    (fun (j, ns) ->
      row "  -j %d:  %8.2f ms/compile   speedup %.2fx@." j (ns /. 1e6)
        (speedup pool_ns1 ns))
    pool_scaling;
  (* persist the trajectory *)
  let oc = open_out "BENCH_throughput.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"corpus\": { \"functions\": %d, \"statements\": %d, \"trees\": %d },\n"
    (List.length prog.Tree.funcs)
    n_stmts n_trees;
  (match single with
  | Some (d, pk, i) ->
    p "  \"single_thread\": {\n";
    p "    \"dense\": { \"trees_per_sec\": %.0f, \"stmts_per_sec\": %.0f },\n"
      (rate d) (srate d);
    p "    \"packed\": { \"trees_per_sec\": %.0f, \"stmts_per_sec\": %.0f },\n"
      (rate pk) (srate pk);
    p
      "    \"packed_interned\": { \"trees_per_sec\": %.0f, \
       \"stmts_per_sec\": %.0f },\n"
      (rate i) (srate i);
    p "    \"speedup_interned_vs_packed\": %.3f\n" (pk /. i);
    p "  },\n"
  | None -> ());
  p "  \"parallel\": {\n";
  p "    \"recommended_domains\": %d,\n" (Gg_codegen.Parallel.available ());
  p "    \"domain_spawn_us\": %.1f,\n" spawn_us;
  p "    \"assembly_identical_j1_j4_j8\": %b,\n" identical;
  let scaling_rows key rows n1 last =
    p "    \"%s\": [\n" key;
    List.iteri
      (fun k (j, ns) ->
        p
          "      { \"jobs\": %d, \"ms_per_compile\": %.3f, \"speedup_vs_j1\": \
           %.3f }%s\n"
          j (ns /. 1e6) (speedup n1 ns)
          (if k = List.length rows - 1 then "" else ","))
      rows;
    p "    ]%s\n" (if last then "" else ",")
  in
  (* "scaling" is the production path (persistent pool, clamped to the
     core count); "pool_scaling" forces real domains past the clamp *)
  scaling_rows "scaling" scaling ns1 false;
  scaling_rows "pool_scaling" pool_scaling pool_ns1 true;
  p "  }\n";
  p "}\n";
  close_out oc;
  row "written: BENCH_throughput.json@."

(* ============================================================================ *)
(* SERVE: warm compile server vs per-process compilation                        *)
(* ============================================================================ *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))

(* -- open-loop load generation ------------------------------------------------ *)

(* per-request outcome codes for the open-loop run *)
let oc_ok = 0 (* assembly received *)
let oc_injected = 1 (* fail-injected request answered Error Internal *)
let oc_gave_up = 2 (* Retry_after retries exhausted *)
let oc_other = 3 (* anything else: a correctness problem *)

(* Arrivals follow a fixed schedule regardless of completions — the
   defining property of an open-loop generator: when the server falls
   behind, latency (not the offered rate) absorbs the lag, which is
   what N independent build jobs pointed at one daemon look like.  Each
   arrival is its own client thread (hundreds of concurrent clients at
   the tail), [burst] arrivals land at t=0 — more than the admission
   queue holds, so the Retry_after path is exercised deterministically
   — and every [fail_every]-th request carries fail-injection. *)
let open_loop ~socket ~requests ~burst ~rate_rps ~fail_every srcs =
  let retry_events = Atomic.make 0 in
  let in_flight = Atomic.make 0 in
  let max_in_flight = Atomic.make 0 in
  let lat_ms = Array.make requests nan in
  let outcome = Array.make requests oc_other in
  let one k =
    let injected = fail_every > 0 && k mod fail_every = fail_every - 1 in
    let src = srcs.(k mod Array.length srcs) in
    let req = Protocol.request ~fail_inject:injected src in
    let v = 1 + Atomic.fetch_and_add in_flight 1 in
    let rec bump () =
      let m = Atomic.get max_in_flight in
      if v > m && not (Atomic.compare_and_set max_in_flight m v) then bump ()
    in
    bump ();
    let t = Unix.gettimeofday () in
    let code =
      match
        Client.compile ~retries:8
          ~on_retry:(fun ~attempt:_ ~wait_ms:_ -> Atomic.incr retry_events)
          ~socket req
      with
      | Protocol.Asm _ -> if injected then oc_other else oc_ok
      | Protocol.Error (Protocol.Internal, _) ->
        if injected then oc_injected else oc_other
      | _ -> oc_other
      | exception Client.Server_error _ -> oc_gave_up
    in
    lat_ms.(k) <- (Unix.gettimeofday () -. t) *. 1e3;
    outcome.(k) <- code;
    ignore (Atomic.fetch_and_add in_flight (-1))
  in
  let threads = Array.make requests None in
  let t0 = Unix.gettimeofday () in
  for k = 0 to requests - 1 do
    if k >= burst then begin
      (* pace the post-burst arrivals; never wait for completions *)
      let due = t0 +. (float_of_int (k - burst) /. rate_rps) in
      let now = Unix.gettimeofday () in
      if due > now then Unix.sleepf (due -. now)
    end;
    threads.(k) <- Some (Thread.create one k)
  done;
  Array.iter (Option.iter Thread.join) threads;
  let wall = Unix.gettimeofday () -. t0 in
  ( lat_ms,
    outcome,
    wall,
    Atomic.get retry_events,
    Atomic.get max_in_flight )

let bench_serve () =
  section
    "SERVE: warm compile server vs per-process compilation (the paper's \
     table-reuse argument, amortised across processes)";
  (* the request corpus: examples/c when run from the repo root, else
     the built-in fixed programs *)
  let sources =
    let dir = "examples/c" in
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".c")
      |> List.sort compare
      |> List.map (fun f ->
             let file = Filename.concat dir f in
             let ic = open_in_bin file in
             let s = really_input_string ic (in_channel_length ic) in
             close_in ic;
             (file, s))
    else List.map (fun (n, s) -> (n ^ ".c", s)) Corpus.fixed_programs
  in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "ggccd-bench-%d.sock" (Unix.getpid ()))
  in
  let tables = Driver.cached_tables Driver.default_options.Driver.grammar in
  let workers = (Server.default_config ~socket_path:socket).Server.workers in
  let config =
    { (Server.default_config ~socket_path:socket) with Server.workers }
  in
  let server = Server.start ~config ~tables:(fun _ -> tables) () in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  (* correctness before speed: every served answer must be the bytes a
     direct compile produces *)
  let parity =
    List.for_all
      (fun (_, src) ->
        match Client.compile ~socket (Protocol.request src) with
        | Protocol.Asm asm ->
          asm
          = (Driver.compile_program ~tables (Sema.compile src)).Driver.assembly
        | _ -> false)
      sources
  in
  row "served output byte-identical to direct compilation: %b@." parity;
  let clients = 4 in
  let per_client = if quick then 25 else 150 in
  let srcs = Array.of_list (List.map snd sources) in
  (* closed-loop measurement, reused to price the ops plane below *)
  let closed_loop socket =
    let lats = Array.init clients (fun _ -> Array.make per_client 0.) in
    let t0 = Unix.gettimeofday () in
    let pool =
      Parallel.spawn_pool ~domains:clients (fun c ->
          for k = 0 to per_client - 1 do
            let src = srcs.((c + (k * clients)) mod Array.length srcs) in
            let t = Unix.gettimeofday () in
            (match Client.compile ~socket (Protocol.request src) with
            | Protocol.Asm _ -> ()
            | r ->
              ignore r;
              failwith "serve bench: unexpected response");
            lats.(c).(k) <- Unix.gettimeofday () -. t
          done)
    in
    Parallel.join_pool pool;
    let wall = Unix.gettimeofday () -. t0 in
    let all = Array.concat (Array.to_list lats) in
    Array.sort compare all;
    let n = Array.length all in
    ( n,
      wall,
      float_of_int n /. wall,
      percentile all 0.50 *. 1e3,
      percentile all 0.99 *. 1e3 )
  in
  (* -- the price of the ops plane: the same closed loop against a
     second server running full observability — info-level JSON logs to
     a file, the flight recorder, metrics histograms and slow-request
     detection.  The acceptance gate is < 3% throughput overhead.

     Measurement discipline: one discarded warm-up pass per server
     (domain ramp-up and allocator warm-up would otherwise masquerade
     as ops-plane overhead), then five measured passes per server,
     INTERLEAVED plain/observed.  Back-to-back blocks would hand
     whatever the machine does later — CPU-quota throttling, background
     load — entirely to the second configuration; alternating passes
     spreads drift across both, and the overhead is computed from the
     paired TOTALS (sum of wall times), which averages noise that a
     best-of or single-pass comparison amplifies.  Metrics.enabled is
     global, so it is flipped around each pass: off for the plain
     server, on for the observed one. *)
  let obs_socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "ggccd-bench-obs-%d.sock" (Unix.getpid ()))
  in
  let obs_log = Filename.temp_file "ggcg-bench-obs" ".log" in
  let obs_log_oc = open_out obs_log in
  let obs_config =
    {
      (Server.default_config ~socket_path:obs_socket) with
      Server.workers;
      logger = Slog.to_channel ~level:Slog.Info obs_log_oc;
      slow_ms = 500;
      flight_capacity = 64;
    }
  in
  let was_metrics = !Metrics.enabled in
  let plain_pass () =
    Metrics.enabled := false;
    closed_loop socket
  in
  let obs_server =
    Metrics.enabled := true;
    Server.start ~config:obs_config ~tables:(fun _ -> tables) ()
  in
  let obs_pass () =
    Metrics.enabled := true;
    closed_loop obs_socket
  in
  let best passes =
    List.fold_left
      (fun ((_, _, best_rps, _, _) as best) ((_, _, rps, _, _) as pass) ->
        if rps > best_rps then pass else best)
      (List.hd passes) (List.tl passes)
  in
  let plain_passes, obs_passes =
    Fun.protect ~finally:(fun () ->
        Server.stop obs_server;
        Metrics.enabled := was_metrics;
        close_out obs_log_oc;
        Sys.remove obs_log)
    @@ fun () ->
    ignore (plain_pass ());
    ignore (obs_pass ());
    let pairs = List.init 5 (fun _ -> (plain_pass (), obs_pass ())) in
    (List.map fst pairs, List.map snd pairs)
  in
  let total passes =
    List.fold_left
      (fun (n, wall) (pn, pwall, _, _, _) -> (n + pn, wall +. pwall))
      (0, 0.) passes
  in
  let n_server, wall_server, rps_server, p50_server, p99_server =
    best plain_passes
  in
  row
    "warm server (%d workers, %d client domains): %d requests in %.2f s = \
     %.0f requests/s,  p50 %.2f ms  p99 %.2f ms@."
    workers clients n_server wall_server rps_server p50_server p99_server;
  let n_obs, wall_obs, rps_obs, p50_obs, p99_obs = best obs_passes in
  let obs_overhead_pct =
    let n_plain, wall_plain = total plain_passes in
    let n_obs_t, wall_obs_t = total obs_passes in
    let rps_plain_t = float_of_int n_plain /. wall_plain in
    let rps_obs_t = float_of_int n_obs_t /. wall_obs_t in
    (rps_plain_t -. rps_obs_t) /. rps_plain_t *. 100.
  in
  row
    "ops plane on (JSON logs + flight recorder + metrics): %d requests in \
     %.2f s = %.0f requests/s,  p50 %.2f ms  p99 %.2f ms@."
    n_obs wall_obs rps_obs p50_obs p99_obs;
  row "observability overhead: %.1f%% of throughput   (acceptance: < 3%%)@."
    obs_overhead_pct;
  (* baseline: what a build system does without the daemon — one ggcc
     process per compile, each paying process start + table load from
     the (warm) cache *)
  let ggcc =
    let near =
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat ".." (Filename.concat "bin" "ggcc.exe"))
    in
    if Sys.file_exists near then near else "ggcc"
  in
  let files =
    List.map
      (fun (name, src) ->
        if Sys.file_exists name then name
        else begin
          let f =
            Filename.temp_file "ggcg-serve"
              ("-" ^ Filename.basename name)
          in
          let oc = open_out f in
          output_string oc src;
          close_out oc;
          f
        end)
      sources
    |> Array.of_list
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let run_one file =
    let pid =
      Unix.create_process ggcc
        [| ggcc; "compile"; file |]
        Unix.stdin null Unix.stderr
    in
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> failwith ("serve bench: " ^ ggcc ^ " failed on " ^ file)
  in
  let n_proc = if quick then 12 else 60 in
  let proc_lats = Array.make n_proc 0. in
  let t0 = Unix.gettimeofday () in
  for k = 0 to n_proc - 1 do
    let t = Unix.gettimeofday () in
    run_one files.(k mod Array.length files);
    proc_lats.(k) <- Unix.gettimeofday () -. t
  done;
  let wall_proc = Unix.gettimeofday () -. t0 in
  Unix.close null;
  Array.sort compare proc_lats;
  let rps_proc = float_of_int n_proc /. wall_proc in
  let p50_proc = percentile proc_lats 0.50 *. 1e3 in
  let p99_proc = percentile proc_lats 0.99 *. 1e3 in
  row
    "per-process ggcc (warm table cache):          %d compiles in %.2f s = \
     %.0f requests/s,  p50 %.2f ms  p99 %.2f ms@."
    n_proc wall_proc rps_proc p50_proc p99_proc;
  row "warm-server throughput vs per-process: %.1fx   (acceptance: > 1x)@."
    (rps_server /. rps_proc);
  (* -- open-loop worker sweep: the daemon under real load ------------------ *)
  let sweep_workers = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let requests = if quick then 150 else 400 in
  let burst = 64 in
  let rate = if quick then 150. else 300. in
  let fail_every = 37 in
  let queue_capacity = 16 in
  let p99_slo_ms = 250. in
  (* mixed request sizes: one-function snippets up to multi-KB programs *)
  let mixed_srcs =
    Array.of_list
      (List.concat_map
         (fun seed ->
           [
             Corpus.random_source ~seed ~functions:1 ~stmts_per_function:3;
             Corpus.random_source ~seed:(seed + 100) ~functions:3
               ~stmts_per_function:10;
             Corpus.random_source ~seed:(seed + 200) ~functions:6
               ~stmts_per_function:25;
           ])
         [ 1; 2; 3; 4 ])
  in
  let src_bytes = Array.map String.length mixed_srcs in
  let min_b = Array.fold_left min max_int src_bytes in
  let max_b = Array.fold_left max 0 src_bytes in
  row
    "open-loop sweep: %d requests per point (burst %d then %.0f req/s), \
     request sizes %d..%d B, fail-injection every %d, queue capacity %d:@."
    requests burst rate min_b max_b fail_every queue_capacity;
  let sweep =
    List.map
      (fun w ->
        let socket =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Fmt.str "ggccd-sweep-%d-w%d.sock" (Unix.getpid ()) w)
        in
        let config =
          {
            (Server.default_config ~socket_path:socket) with
            Server.workers = w;
            queue_capacity;
          }
        in
        let server = Server.start ~config ~tables:(fun _ -> tables) () in
        Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
        let lat, out, wall, retry_events, max_in_flight =
          open_loop ~socket ~requests ~burst ~rate_rps:rate ~fail_every
            mixed_srcs
        in
        let count c =
          Array.fold_left
            (fun acc o -> if o = c then acc + 1 else acc)
            0 out
        in
        let n_ok = count oc_ok in
        let n_injected = count oc_injected in
        let n_gave_up = count oc_gave_up in
        let n_other = count oc_other in
        let completed =
          Array.of_list
            (List.filteri
               (fun k _ -> out.(k) = oc_ok || out.(k) = oc_injected)
               (Array.to_list lat))
        in
        Array.sort compare completed;
        let p50 = percentile completed 0.50 in
        let p99 = percentile completed 0.99 in
        let achieved = float_of_int (n_ok + n_injected) /. wall in
        row
          "  workers %d: %d ok + %d injected errors, %d gave up, %d \
           unexpected; %d retry-after events, max %d in flight; %.0f req/s \
           achieved, p50 %.2f ms p99 %.2f ms%s@."
          w n_ok n_injected n_gave_up n_other retry_events max_in_flight
          achieved p50 p99
          (if p99 <= p99_slo_ms then "" else "  (p99 SLO MISSED)");
        (w, n_ok, n_injected, n_gave_up, n_other, retry_events, max_in_flight,
         wall, achieved, p50, p99))
      sweep_workers
  in
  let oc = open_out "BENCH_serve.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"sources\": %d,\n" (List.length sources);
  p "  \"parity_with_direct_compile\": %b,\n" parity;
  p "  \"closed_loop\": {\n";
  p "    \"workers\": %d,\n" workers;
  p "    \"client_domains\": %d,\n" clients;
  p "    \"requests\": %d,\n" n_server;
  p "    \"wall_s\": %.3f,\n" wall_server;
  p "    \"requests_per_sec\": %.1f,\n" rps_server;
  p "    \"p50_ms\": %.3f,\n" p50_server;
  p "    \"p99_ms\": %.3f\n" p99_server;
  p "  },\n";
  p "  \"per_process\": {\n";
  p "    \"requests\": %d,\n" n_proc;
  p "    \"wall_s\": %.3f,\n" wall_proc;
  p "    \"requests_per_sec\": %.1f,\n" rps_proc;
  p "    \"p50_ms\": %.3f,\n" p50_proc;
  p "    \"p99_ms\": %.3f\n" p99_proc;
  p "  },\n";
  p "  \"throughput_ratio\": %.2f,\n" (rps_server /. rps_proc);
  p "  \"observability\": {\n";
  p "    \"requests\": %d,\n" n_obs;
  p "    \"wall_s\": %.3f,\n" wall_obs;
  p "    \"requests_per_sec\": %.1f,\n" rps_obs;
  p "    \"p50_ms\": %.3f,\n" p50_obs;
  p "    \"p99_ms\": %.3f,\n" p99_obs;
  p "    \"overhead_pct_vs_closed_loop\": %.2f,\n" obs_overhead_pct;
  p "    \"overhead_target_pct\": 3.0\n";
  p "  },\n";
  p "  \"open_loop\": {\n";
  p "    \"requests_per_point\": %d,\n" requests;
  p "    \"burst\": %d,\n" burst;
  p "    \"offered_rps_after_burst\": %.0f,\n" rate;
  p "    \"queue_capacity\": %d,\n" queue_capacity;
  p "    \"fail_injected_every\": %d,\n" fail_every;
  p "    \"request_bytes\": { \"min\": %d, \"max\": %d },\n" min_b max_b;
  p "    \"p99_slo_ms\": %.0f,\n" p99_slo_ms;
  p "    \"sweep\": [\n";
  List.iteri
    (fun k
         (w, n_ok, n_injected, n_gave_up, n_other, retry_events, max_in_flight,
          wall, achieved, p50, p99) ->
      p
        "      { \"workers\": %d, \"completed_ok\": %d, \
         \"fail_injected_errors\": %d, \"gave_up\": %d, \"unexpected\": %d, \
         \"retry_after_events\": %d, \"max_in_flight\": %d, \"wall_s\": \
         %.3f, \"achieved_rps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
         \"p99_slo_met\": %b }%s\n"
        w n_ok n_injected n_gave_up n_other retry_events max_in_flight wall
        achieved p50 p99
        (p99 <= p99_slo_ms)
        (if k = List.length sweep - 1 then "" else ","))
    sweep;
  p "    ]\n";
  p "  }\n";
  p "}\n";
  close_out oc;
  row "written: BENCH_serve.json@."

(* ============================================================================ *)
(* RETARGET: the second machine description, measured against the first        *)
(* ============================================================================ *)

let bench_retarget () =
  section
    "RETARGET: second backend (the paper's thesis is that the machine \
     description is the only target-specific artifact)";
  (* the description's own footprint: grammar and table statistics per
     target, built by the same constructor *)
  List.iter
    (fun target ->
      let b = Targets.backend_of target in
      let g = Lazy.force b.Backend.default_grammar in
      let gs = Grammar.stats g in
      let ts = Tables.stats (Tables.build g) in
      row
        "%-5s %4d productions  %3d terminals  %3d non-terminals  %4d states@."
        (Targets.name target) gs.Grammar.productions gs.Grammar.terminals
        gs.Grammar.nonterminals ts.Tables.states)
    Targets.all;
  (* full-pipeline compile time over the same corpus, per target: the
     driver is shared, so the gap is the description's own doing *)
  let prog = Lazy.force corpus_program in
  let results =
    measure_ns_best
      ~repeats:(if quick then 1 else 3)
      (List.map
         (fun target ->
           let tables = Targets.default_tables target in
           ( "c-" ^ Targets.name target,
             fun () -> ignore (Driver.compile_program ~tables prog) ))
         Targets.all)
  in
  (match (lookup results "c-vax", lookup results "c-risc") with
  | Some v, Some r ->
    row "corpus compile: vax %.1f ms, risc %.1f ms (risc/vax %.2fx)@."
      (v /. 1e6) (r /. 1e6) (r /. v)
  | _ -> row "measurement failed@.");
  (* static and dynamic cost of the generated code on the fixed corpus,
     with every program executed under its target's simulator *)
  List.iter
    (fun target ->
      let tables = Targets.default_tables target in
      let bytes, insns, cycles =
        List.fold_left
          (fun (b, i, c) (_, p) ->
            let out = Driver.compile_program ~tables p in
            let sim =
              Targets.run_text ~target out.Driver.assembly
                ~global_types:p.Tree.globals ~entry:"main" []
            in
            ( b + String.length out.Driver.assembly,
              i + sim.Simout.insns_executed,
              c + sim.Simout.cycles ))
          (0, 0, 0) (Lazy.force fixed_progs)
      in
      row "%-5s fixed corpus: %6d asm bytes  %6d insns executed  %7d cycles@."
        (Targets.name target) bytes insns cycles)
    Targets.all

(* ============================================================================ *)
(* REGALLOC: graph coloring vs the stack discipline, cycle-model judged        *)
(* ============================================================================ *)

let bench_regalloc () =
  section
    "REGALLOC: graph-coloring allocation vs the paper's on-the-fly stack \
     discipline, judged by each target's cycle model";
  (* the judged corpus: examples/c when run from the repo root, else
     the built-in fixed programs *)
  let sources =
    let dir = "examples/c" in
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".c")
      |> List.sort compare
      |> List.map (fun f ->
             let file = Filename.concat dir f in
             let ic = open_in_bin file in
             let s = really_input_string ic (in_channel_length ic) in
             close_in ic;
             (Filename.remove_extension f, s))
    else Corpus.fixed_programs
  in
  let progs = List.map (fun (n, s) -> (n, Sema.compile s)) sources in
  let counter counters name =
    Option.value (List.assoc_opt name counters) ~default:0
  in
  (* per (target, allocator): total simulated cycles across the corpus,
     spill/reload counts from the metrics registry, and allocation-
     inclusive compile wall time *)
  let measure target regalloc =
    let tables = Targets.default_tables target in
    let options = { Driver.default_options with Driver.regalloc } in
    let was_enabled = !Gg_profile.Metrics.enabled in
    Gg_profile.Metrics.enabled := true;
    Gg_profile.Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    let outs =
      List.map
        (fun (n, p) -> (n, Driver.compile_program ~options ~tables p))
        progs
    in
    let compile_s = Unix.gettimeofday () -. t0 in
    let counters = Gg_profile.Metrics.named_counters () in
    let spills = counter counters "codegen.spills_total" in
    let reloads = counter counters "codegen.reloads_total" in
    Gg_profile.Metrics.reset ();
    Gg_profile.Metrics.enabled := was_enabled;
    let per_prog =
      List.map2
        (fun (n, p) (_, out) ->
          let sim =
            Targets.run_text ~target out.Driver.assembly
              ~global_types:p.Tree.globals ~entry:"main" []
          in
          (n, sim.Simout.cycles))
        progs outs
    in
    let cycles = List.fold_left (fun a (_, c) -> a + c) 0 per_prog in
    (cycles, spills, reloads, compile_s, per_prog)
  in
  let results =
    List.map
      (fun target ->
        let s_cyc, s_sp, s_rl, s_t, s_per = measure target Driver.Stack in
        let c_cyc, c_sp, c_rl, c_t, c_per = measure target Driver.Color in
        row "%-5s stack: %7d cycles  %3d spills  %3d reloads  %.1f ms@."
          (Targets.name target) s_cyc s_sp s_rl (s_t *. 1e3);
        row "%-5s color: %7d cycles  %3d spills  %3d reloads  %.1f ms@."
          (Targets.name target) c_cyc c_sp c_rl (c_t *. 1e3);
        row "%-5s color/stack cycles: %.4fx (%s)@." (Targets.name target)
          (float_of_int c_cyc /. float_of_int (max 1 s_cyc))
          (if c_cyc < s_cyc then "color wins"
           else if c_cyc = s_cyc then "tie"
           else "STACK WINS");
        (target, (s_cyc, s_sp, s_rl, s_t, s_per), (c_cyc, c_sp, c_rl, c_t, c_per)))
      Targets.all
  in
  let oc = open_out "BENCH_regalloc.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"programs\": %d,\n" (List.length progs);
  p "  \"targets\": [\n";
  List.iteri
    (fun k (target, (s_cyc, s_sp, s_rl, s_t, s_per), (c_cyc, c_sp, c_rl, c_t, c_per)) ->
      let alloc name (cyc, sp, rl, t, per) last =
        p "      \"%s\": {\n" name;
        p "        \"total_cycles\": %d,\n" cyc;
        p "        \"spills\": %d,\n" sp;
        p "        \"reloads\": %d,\n" rl;
        p "        \"compile_s\": %.4f,\n" t;
        p "        \"per_program\": { ";
        List.iteri
          (fun i (n, c) ->
            p "%s\"%s\": %d" (if i = 0 then "" else ", ") n c)
          per;
        p " }\n";
        p "      }%s\n" (if last then "" else ",")
      in
      p "    { \"target\": \"%s\",\n" (Targets.name target);
      alloc "stack" (s_cyc, s_sp, s_rl, s_t, s_per) false;
      alloc "color" (c_cyc, c_sp, c_rl, c_t, c_per) false;
      p "      \"color_strictly_wins\": %b\n" (c_cyc < s_cyc);
      p "    }%s\n" (if k = List.length results - 1 then "" else ","))
    results;
  p "  ]\n";
  p "}\n";
  close_out oc;
  row "written: BENCH_regalloc.json@."

(* ============================================================================ *)
(* SPECIALIZE: profile-guided table layout                                      *)
(* ============================================================================ *)

let bench_specialize () =
  section
    "SPECIALIZE: profile-guided table layout (hot states comb-packed first, \
     cold states behind an exact fallback; the assembly must stay \
     byte-identical — only probe locality changes)";
  (* the parity corpus: examples/c when run from the repo root, plus the
     built-in fixed suite and a generated fuzz corpus — every program is
     compiled with and without specialization and byte-compared *)
  let file_sources =
    let dir = "examples/c" in
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".c")
      |> List.sort compare
      |> List.map (fun f ->
             let file = Filename.concat dir f in
             let ic = open_in_bin file in
             let s = really_input_string ic (in_channel_length ic) in
             close_in ic;
             (file, s))
    else []
  in
  let fuzz_seeds = if quick then 40 else 200 in
  let parity_progs =
    List.map
      (fun (n, s) -> (n, Sema.compile s))
      (Corpus.fixed_programs @ file_sources)
    @ List.init fuzz_seeds (fun seed ->
          ( Fmt.str "fuzz-%d" seed,
            Sema.lower_program
              (Corpus.program ~seed ~functions:2 ~stmts_per_function:8) ))
  in
  let null_cb : unit Matcher.callbacks =
    {
      Matcher.on_shift = (fun _ -> ());
      on_reduce = (fun _ _ -> ());
      choose = (fun _ _ -> 0);
    }
  in
  let results =
    List.map
      (fun target ->
        let name = Targets.name target in
        let b = Targets.backend_of target in
        let g = Lazy.force b.Backend.default_grammar in
        (* the profile is the firing heat of the fixed corpus — the
           "hot" workload the layout is shaped around *)
        let profile = Targets.heat_profile target in
        let dense = Tables.build g in
        let packed = Packed.pack dense in
        let spec = Gg_specialize.Specialize.build ~profile dense in
        let verified =
          match Gg_specialize.Specialize.verify spec dense with
          | Ok () -> true
          | Error m ->
            row "  %s: VERIFICATION FAILED: %s@." name m;
            false
        in
        let baseline_tables =
          Driver.of_engine ~backend:b (Matcher.packed_engine ~grammar:g packed)
        in
        let spec_tables =
          Driver.of_engine ~backend:b
            (Gg_specialize.Specialize.engine ~grammar:g spec)
        in
        let identical =
          List.for_all
            (fun (_, prog) ->
              (Driver.compile_program ~tables:baseline_tables prog)
                .Driver.assembly
              = (Driver.compile_program ~tables:spec_tables prog)
                  .Driver.assembly)
            parity_progs
        in
        (* matcher speedup on the hot corpus: the same programs the
           profile was collected from, pre-linearised so the measurement
           targets the shift/reduce loop itself *)
        let token_lists =
          List.concat_map
            (fun (_, src) ->
              let prog = Sema.compile src in
              List.concat_map
                (fun f ->
                  let tr = Transform.run ~leaf_need:b.Backend.leaf_need f in
                  List.filter_map
                    (function
                      | Tree.Stree t -> Some (Termname.linearize t)
                      | _ -> None)
                    tr.Transform.func.Tree.body)
                prog.Tree.funcs)
            Corpus.fixed_programs
        in
        (* replicate the corpus so one timed pass is several times the
           timer/scheduler jitter, and take the best of many passes:
           the per-probe delta being measured is a few percent *)
        let rep_token_lists =
          List.concat (List.init 8 (fun _ -> token_lists))
        in
        let packed_engine = Matcher.packed_engine ~grammar:g packed in
        let spec_engine =
          Gg_specialize.Specialize.engine ~grammar:g spec
        in
        let run_all e () =
          List.iter
            (fun toks -> ignore (Matcher.run_engine e null_cb toks))
            rep_token_lists
        in
        let mres =
          measure_ns_best
            ~repeats:(if quick then 2 else 8)
            [
              ("m-packed-" ^ name, run_all packed_engine);
              ("m-spec-" ^ name, run_all spec_engine);
            ]
        in
        let ns_packed, ns_spec, speedup =
          match
            (lookup mres ("m-packed-" ^ name), lookup mres ("m-spec-" ^ name))
          with
          | Some p, Some s -> (p, s, p /. s)
          | _ -> (nan, nan, nan)
        in
        (* the measured hot/cold probe split on the training corpus *)
        let metrics_were = !Metrics.enabled in
        Metrics.enabled := true;
        Metrics.reset ();
        List.iter
          (fun toks -> ignore (Matcher.run_engine spec_engine null_cb toks))
          token_lists;
        let counter n =
          Option.value ~default:0 (List.assoc_opt n (Metrics.named_counters ()))
        in
        let hot_probes = counter "matcher.probe_hits_hot" in
        let cold_probes = counter "matcher.probe_hits_cold" in
        Metrics.reset ();
        Metrics.enabled := metrics_were;
        let pst = Packed.stats packed in
        let sst = Gg_specialize.Specialize.stats spec in
        row "[%s]@." name;
        row "  verified cell-for-cell:   %b@." verified;
        row "  assembly byte-identical:  %b  (%d programs)@." identical
          (List.length parity_progs);
        row "  hot states:               %d of %d@." sst.Gg_specialize.Specialize.hot_states
          sst.Gg_specialize.Specialize.states;
        row "  table bytes:              %d -> %d  (delta %+d)@."
          pst.Packed.packed_bytes sst.Gg_specialize.Specialize.spec_bytes
          (sst.Gg_specialize.Specialize.spec_bytes - pst.Packed.packed_bytes);
        row "  matcher, hot corpus:      %.2f ms packed, %.2f ms specialized, \
             speedup %.3fx@."
          (ns_packed /. 1e6) (ns_spec /. 1e6) speedup;
        row "  probe split:              %d hot, %d cold@." hot_probes
          cold_probes;
        ( name,
          verified,
          identical,
          pst,
          sst,
          (ns_packed, ns_spec, speedup),
          (hot_probes, cold_probes) ))
      Targets.all
  in
  let oc = open_out "BENCH_specialize.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"parity_programs\": %d,\n" (List.length parity_progs);
  p "  \"targets\": [\n";
  List.iteri
    (fun k
         ( name,
           verified,
           identical,
           pst,
           sst,
           (ns_packed, ns_spec, speedup),
           (hot_probes, cold_probes) ) ->
      p "    { \"target\": \"%s\",\n" name;
      p "      \"verified\": %b,\n" verified;
      p "      \"assembly_identical\": %b,\n" identical;
      p "      \"states\": %d,\n" sst.Gg_specialize.Specialize.states;
      p "      \"hot_states\": %d,\n" sst.Gg_specialize.Specialize.hot_states;
      p "      \"baseline_table_bytes\": %d,\n" pst.Packed.packed_bytes;
      p "      \"specialized_table_bytes\": %d,\n"
        sst.Gg_specialize.Specialize.spec_bytes;
      p "      \"table_bytes_delta\": %d,\n"
        (sst.Gg_specialize.Specialize.spec_bytes - pst.Packed.packed_bytes);
      p "      \"matcher_ms_packed\": %.3f,\n" (ns_packed /. 1e6);
      p "      \"matcher_ms_specialized\": %.3f,\n" (ns_spec /. 1e6);
      p "      \"matcher_speedup\": %.3f,\n" speedup;
      p "      \"probe_hits_hot\": %d,\n" hot_probes;
      p "      \"probe_hits_cold\": %d\n" cold_probes;
      p "    }%s\n" (if k = List.length results - 1 then "" else ","))
    results;
  p "  ]\n";
  p "}\n";
  close_out oc;
  row "written: BENCH_specialize.json@."

(* ============================================================================ *)

let () =
  Fmt.pr "Table-driven code generation: benchmark harness%s@."
    (if quick then " (quick mode)" else "");
  if trace_out <> None then begin
    Profile.enabled := true;
    Gg_profile.Trace.enabled := true;
    Gg_profile.Trace.reset ()
  end;
  if metrics_out <> None then begin
    Profile.enabled := true;
    Gg_profile.Metrics.enabled := true;
    Gg_profile.Metrics.reset ()
  end;
  let sections =
    [
      ("grammar", bench_grammar_stats);
      ("reverse", bench_reverse_ops);
      ("tblc", bench_table_construction);
      ("mem", bench_table_size);
      ("fig2", bench_phase_profile);
      ("time", bench_codegen_time);
      ("size", bench_code_size);
      ("idioms", bench_idioms);
      ("peephole", bench_peephole);
      ("coverage", bench_coverage);
      ("appendix", bench_appendix);
      ("throughput", bench_throughput);
      ("retarget", bench_retarget);
      ("serve", bench_serve);
      ("regalloc", bench_regalloc);
      ("specialize", bench_specialize);
    ]
  in
  (match
     List.filter (fun k -> not (List.mem_assoc k sections)) selected
   with
  | [] -> ()
  | unknown ->
    Fmt.epr "unknown section(s): %a; known: %a@."
      Fmt.(list ~sep:comma string)
      unknown
      Fmt.(list ~sep:comma string)
      (List.map fst sections);
    exit 2);
  List.iter (fun (key, f) -> if want key then f ()) sections;
  Option.iter
    (fun path ->
      Gg_profile.Trace.write path;
      Fmt.pr "trace written: %s@." path)
    trace_out;
  Option.iter
    (fun path ->
      Gg_profile.Metrics.write_json path;
      Fmt.pr "metrics written: %s@." path)
    metrics_out;
  Fmt.pr "@.done.@."
