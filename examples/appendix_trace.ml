(* The paper's Appendix, reproduced: the complete sequence of shift,
   reduce and accept actions the pattern matcher performs for the
   Pascal statement

       a := 27 + b

   where [a] is a long global and [b] is a byte local stored at the
   frame (the paper's tree: Assign_l Name_l Plus_l Const_b Indir_b
   Plus_l Const_l Dreg_l, with the byte-to-long conversion made
   explicit by our front end).

     dune exec examples/appendix_trace.exe *)

open Gg_ir

let appendix_tree =
  Tree.Assign
    ( Dtype.Long,
      Tree.Name (Dtype.Long, "a"),
      Tree.Binop
        ( Op.Plus,
          Dtype.Long,
          Tree.Const (Dtype.Byte, 27L),
          Tree.Conv
            ( Dtype.Long,
              Dtype.Byte,
              Tree.Indir
                ( Dtype.Byte,
                  Tree.Binop
                    ( Op.Plus,
                      Dtype.Long,
                      Tree.Const (Dtype.Long, -4L),
                      Tree.Dreg (Dtype.Long, Regconv.fp) ) ) ) ) )

let () =
  Fmt.pr "input tree (prefix linearised, as in the Appendix):@.  %a@.@."
    Tree.pp appendix_tree;
  let tokens = Termname.linearize appendix_tree in
  Fmt.pr "token string fed to the pattern matcher:@.  %a@.@."
    Fmt.(list ~sep:sp Termname.pp_token)
    tokens;
  let insns, trace = Gg_codegen.Driver.compile_tree_traced appendix_tree in
  let grammar =
    Gg_codegen.Driver.grammar (Lazy.force Gg_codegen.Driver.default_tables)
  in
  Fmt.pr "parser actions:@.%a@.@." (Gg_matcher.Matcher.pp_trace grammar) trace;
  Fmt.pr "emitted instructions:@.";
  List.iter (fun i -> Fmt.pr "%s@." (Gg_ir.Insn.assembly i)) insns
