(* A tour of the code-generator-generator workbench: build the VAX
   machine description, construct tables, inspect conflicts, and
   reproduce the paper's grammar-engineering stories — over-factoring
   (section 6.2.1) and missing bridge productions (sections 6.2.2/6.3).

     dune exec examples/grammar_workbench.exe *)

module Grammar = Gg_grammar.Grammar
module Tables = Gg_tablegen.Tables
module Checks = Gg_tablegen.Checks
module Grammar_def = Gg_vax.Grammar_def
module Treelang = Gg_ir.Treelang

let stats_of options =
  let g = Grammar_def.grammar options in
  let t = Tables.build g in
  (Grammar.stats g, Tables.stats t, g, t)

let () =
  Fmt.pr "=== the production VAX description ===@.";
  let gs, ts, g, t = stats_of Grammar_def.default in
  Fmt.pr "%a@.%a@." Grammar.pp_stats gs Tables.pp_stats ts;

  (* chain-rule report (section 3.2's looping configurations) *)
  let chains = Checks.chains g in
  Fmt.pr "chain cycles: %d silent (must be 0), %d through emitting productions@."
    (List.length chains.Checks.silent_cycles)
    (List.length chains.Checks.emitting_cycles);

  (* syntactic blocks: with and without the bridge productions *)
  let tl = Grammar_def.treelang Grammar_def.default in
  let blocks t =
    Checks.blocks t ~arity:tl.Treelang.arity ~starts:tl.Treelang.starts
  in
  Fmt.pr "potential syntactic blocks (with bridges): %d@."
    (List.length (blocks t));
  let _, _, _, t_nb =
    stats_of { Grammar_def.default with Grammar_def.with_bridges = false }
  in
  let bs = blocks t_nb in
  Fmt.pr "without the bridge productions: %d blocked (state, terminal) pairs@."
    (List.length bs);
  (match bs with
  | b :: _ ->
    Fmt.pr "first one (the section 6.3 scale-constant case):@.%a@."
      Checks.pp_block b
  | [] -> ());

  (* the over-factoring ablation: grouping Plus/Mul into an operator
     class shrinks the grammar but changes conflict structure *)
  Fmt.pr "@.=== over-factored variant (section 6.2.1) ===@.";
  let gs_of, ts_of, _, _ =
    stats_of { Grammar_def.default with Grammar_def.overfactored = true }
  in
  Fmt.pr "%a@.%a@." Grammar.pp_stats gs_of Tables.pp_stats ts_of;
  Fmt.pr
    "(the class non-terminal removes %d productions and %d states, which is \
     why the paper's authors tried it — and then spent section 6.2.1 undoing \
     it)@."
    (gs.Grammar.productions - gs_of.Grammar.productions)
    (ts.Tables.states - ts_of.Tables.states);

  (* the other 6.2.1 story: the condition-code assumption broken by the
     no-code chain production reg <- Dreg, demonstrated live *)
  Fmt.pr "@.=== the condition-code over-factoring bug (section 6.2.1) ===@.";
  let src =
    "int a; int b; int x;\n\
     int main() {\n\
    \  register int r;\n\
    \  r = 0; a = 6; b = 7;\n\
    \  x = a * b;\n\
    \  if (r != 0) print(1); else print(0);\n\
    \  return 0;\n\
     }\n"
  in
  let prog = Gg_frontc.Sema.compile src in
  let run gopts =
    let options =
      { Gg_codegen.Driver.default_options with Gg_codegen.Driver.grammar = gopts }
    in
    let tables = Gg_codegen.Driver.build_tables gopts in
    let c = Gg_codegen.Driver.compile_program ~options ~tables prog in
    (Gg_vaxsim.Machine.run_text c.Gg_codegen.Driver.assembly
       ~global_types:prog.Gg_ir.Tree.globals ~entry:"main" [])
      .Gg_vaxsim.Machine.output
  in
  Fmt.pr "r = 0; x = a*b; if (r != 0) ... should print 0@.";
  Fmt.pr "with the Branch-Cmp-Dreg production:    prints %a@."
    Fmt.(list string)
    (run Grammar_def.default);
  Fmt.pr "without it (the original bug):          prints %a@."
    Fmt.(list string)
    (run { Grammar_def.default with Grammar_def.condition_code_fix = false })
