double a; double b; double c; double d;
double e; double f; double g; double h;
double r;

int main() {
  register int i;
  int n;
  n = 0;
  a = 1.5; b = 2.5; c = 3.25; d = 0.5;
  e = 1.25; f = 2.0; g = 0.75; h = 1.0;
  for (i = 0; i < 50; i = i + 1) {
    r = (a * b + c * d) * (e * f + g * h) + (a * c - b * d) * (e * g - f * h);
    n = n + (int) r;
  }
  print(n);
  return n & 1023;
}
