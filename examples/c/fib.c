int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}

int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 15; i++) s += fib(i);
  print(s);
  return s & 255;
}
