int a[16]; int b[16]; int c[16];

int main() {
  int i; int j; int k; int s;
  for (i = 0; i < 16; i++) { a[i] = i + 1; b[i] = 16 - i; }
  for (i = 0; i < 4; i++)
    for (j = 0; j < 4; j++) {
      s = 0;
      for (k = 0; k < 4; k++) s += a[i*4+k] * b[k*4+j];
      c[i*4+j] = s;
    }
  s = 0;
  for (i = 0; i < 16; i++) s ^= c[i] * (i + 1);
  print(s);
  return s & 1023;
}
