int a[16];
int n;

int main() {
  int i; int j; int t; int sum;
  n = 16;
  for (i = 0; i < n; i++) a[i] = (n - i) * 7 % 23;
  for (i = 0; i < n - 1; i++)
    for (j = 0; j < n - 1 - i; j++)
      if (a[j] > a[j+1]) { t = a[j]; a[j] = a[j+1]; a[j+1] = t; }
  sum = 0;
  for (i = 0; i < n; i++) sum = sum * 2 + a[i];
  print(sum);
  return sum & 255;
}
