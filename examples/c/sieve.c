int flags[100];

int main() {
  int i; int j; int count;
  for (i = 0; i < 100; i++) flags[i] = 1;
  flags[0] = 0;
  flags[1] = 0;
  for (i = 2; i < 100; i++) {
    if (flags[i]) {
      j = i + i;
      while (j < 100) { flags[j] = 0; j += i; }
    }
  }
  count = 0;
  for (i = 0; i < 100; i++) count += flags[i];
  print(count);
  return count;
}
