(* ggccd — the persistent compile server.

   Loads the packed tables once (through the on-disk cache) and serves
   compile requests over a Unix-domain socket until SIGTERM/SIGINT,
   then drains gracefully.  `ggcc --server SOCK` is the matching
   client; `ggcc --server SOCK --spawn` starts this daemon on demand.

   The ops plane rides alongside: structured JSON logs with the v4
   request id on every line, an admin socket answering stats/health/
   metrics/flight/drain, periodic atomic metrics snapshots so SIGKILL
   loses at most one interval, and a flight recorder dumped on SIGQUIT
   or when the compile barrier catches a crash. *)

open Cmdliner
module Driver = Gg_codegen.Driver
module Backend = Gg_codegen.Backend
module Targets = Gg_targets.Targets
module Server = Gg_server.Server
module Admin = Gg_server.Admin
module Slog = Gg_server.Slog
module Protocol = Gg_server.Protocol
module Profile = Gg_profile.Profile
module Metrics = Gg_profile.Metrics
module Trace = Gg_profile.Trace

let shutdown = Atomic.make false

(* SIGQUIT asks for a state dump, not an exit: the handler only flips
   the flag, the main loop does the I/O *)
let dump_requested = Atomic.make false

let install_signals () =
  let handle = Sys.Signal_handle (fun _ -> Atomic.set shutdown true) in
  List.iter
    (fun s -> try Sys.set_signal s handle with Invalid_argument _ -> ())
    [ Sys.sigterm; Sys.sigint ];
  try
    Sys.set_signal Sys.sigquit
      (Sys.Signal_handle (fun _ -> Atomic.set dump_requested true))
  with Invalid_argument _ -> ()

let run socket admin_socket workers queue_capacity read_timeout log_path
    log_level slow_ms flight_size flight_dump snapshot_interval no_cache
    specialize metrics_out trace_out =
  let level =
    match Slog.level_of_string log_level with
    | Some l -> l
    | None ->
      Fmt.epr "error: --log-level must be debug, info or warn (got %s)@."
        log_level;
      exit 1
  in
  (* the daemon's output sinks must fail as one-line errors up front,
     not as Sys_error backtraces mid-serve *)
  let log_sink =
    match log_path with
    | None -> None
    | Some path -> (
      match open_out path with
      | oc -> Some (path, oc)
      | exception Sys_error m ->
        Fmt.epr "error: cannot open log file %s: %s@." path m;
        exit 1)
  in
  let check_sink what = function
    | None -> ()
    | Some path -> (
      (* probe writability now; the real write happens at shutdown *)
      match open_out_gen [ Open_append; Open_creat ] 0o644 path with
      | oc -> close_out oc
      | exception Sys_error m ->
        Fmt.epr "error: cannot write %s %s: %s@." what path m;
        exit 1)
  in
  check_sink "metrics file" metrics_out;
  check_sink "trace file" trace_out;
  let flight_dump =
    match flight_dump with Some p -> p | None -> socket ^ ".flight.json"
  in
  check_sink "flight dump" (Some flight_dump);
  let logger =
    match log_sink with
    | Some (_, oc) -> Slog.to_channel ~level oc
    | None -> Slog.to_channel ~level stderr
  in
  install_signals ();
  (* the serving instruments are always armed: a daemon exists to be
     observed, and the hot-loop cost is the gated one-load-and-branch *)
  Profile.enabled := true;
  Metrics.enabled := true;
  if trace_out <> None then Trace.enabled := true;
  (* Per-target tables, resolved on first request for that target and
     kept warm for the daemon's lifetime.  The mutex makes resolution
     safe from any worker domain (and keeps a shared lazy from being
     forced concurrently); the common case after the first request per
     target is one lock/lookup/unlock. *)
  let table_mutex = Mutex.create () in
  let table_memo : (Backend.target, Driver.tables) Hashtbl.t =
    Hashtbl.create 4
  in
  (* a file profile is target-specific (production ids are per-grammar),
     but loading it is cheap and validation happens inside the
     specializer; --specialize auto collects a per-target profile from
     the built-in corpus at resolution time *)
  let file_profile =
    match specialize with
    | Some spec when spec <> "auto" -> (
      match Gg_specialize.Heat.load spec with
      | p -> Some p
      | exception (Failure m | Sys_error m) ->
        Fmt.epr "error: cannot load profile %s: %s@." spec m;
        exit 1)
    | _ -> None
  in
  let tables target =
    Mutex.protect table_mutex (fun () ->
        match Hashtbl.find_opt table_memo target with
        | Some t -> t
        | None ->
          let t0 = Unix.gettimeofday () in
          let t =
            match specialize with
            | Some _ ->
              let profile =
                match file_profile with
                | Some p -> p
                | None -> Targets.heat_profile target
              in
              Targets.specialized_tables ~use_cache:(not no_cache) ~profile
                target
            | None ->
              if no_cache then Targets.default_tables target
              else
                Targets.cached_tables target
                  Driver.default_options.Driver.grammar
          in
          Slog.info logger ~event:"tables.ready"
            [
              Slog.str "target" (Targets.name target);
              Slog.str "specialized"
                (if specialize <> None then "true" else "false");
              Slog.int "load_us"
                (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
            ];
          Hashtbl.add table_memo target t;
          t)
  in
  (* warm the default target before accepting, like the old
     single-table daemon did *)
  ignore (tables Backend.Vax : Driver.tables);
  let config =
    let d = Server.default_config ~socket_path:socket in
    {
      d with
      Server.workers = (match workers with Some w -> w | None -> d.Server.workers);
      queue_capacity;
      read_timeout_s = float_of_int read_timeout /. 1e3;
      logger;
      slow_ms;
      flight_capacity = flight_size;
      crash_dump = Some flight_dump;
    }
  in
  let server =
    try Server.start ~config ~tables ()
    with Failure m | Sys_error m ->
      Fmt.epr "error: %s@." m;
      exit 1
  in
  let admin =
    match admin_socket with
    | None -> None
    | Some path -> (
      let handle =
        Admin.default_handler ~server ~drain:(fun () ->
            Atomic.set shutdown true)
      in
      match Admin.start ~socket_path:path ~handle with
      | admin ->
        Slog.info logger ~event:"admin.serving" [ Slog.str "socket" path ];
        Some admin
      | exception Failure m ->
        Server.stop server;
        Fmt.epr "error: %s@." m;
        exit 1)
  in
  let dump_flight () =
    match Gg_server.Flight.dump (Server.recorder server) flight_dump with
    | () ->
      Slog.info logger ~event:"flight.dumped" [ Slog.str "path" flight_dump ]
    | exception (Sys_error m | Failure m) ->
      Slog.warn logger ~event:"flight.dump_failed"
        [ Slog.str "path" flight_dump; Slog.str "error" m ]
  in
  let snapshot () =
    Option.iter
      (fun path ->
        try Metrics.write_json_atomic path
        with Sys_error m ->
          Slog.warn logger ~event:"snapshot.failed"
            [ Slog.str "path" path; Slog.str "error" m ])
      metrics_out
  in
  (* Crash-surviving telemetry: snapshot the metrics every interval
     with a tmp+rename write, so a SIGKILL or power cut loses at most
     one interval of counters instead of the whole serve session. *)
  let last_snapshot = ref (Unix.gettimeofday ()) in
  while not (Atomic.get shutdown) do
    (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    if Atomic.get dump_requested then begin
      Atomic.set dump_requested false;
      dump_flight ();
      snapshot ()
    end;
    if
      snapshot_interval > 0
      && (Unix.gettimeofday () -. !last_snapshot) *. 1e3
         >= float_of_int snapshot_interval
    then begin
      last_snapshot := Unix.gettimeofday ();
      snapshot ()
    end
  done;
  Slog.info logger ~event:"shutdown" [];
  Option.iter Admin.stop admin;
  Server.stop server;
  Option.iter (fun path -> Metrics.write_json_atomic path) metrics_out;
  Option.iter Trace.write trace_out;
  Option.iter (fun (_, oc) -> close_out oc) log_sink;
  exit 0

let socket_arg =
  Arg.(
    value
    & opt string (Gg_server.Protocol.default_socket ())
    & info [ "socket" ] ~docv:"SOCK"
        ~doc:
          "Unix-domain socket to serve on.  Default: \\$GGCG_SOCKET, else \
           a per-user socket in the temp directory.")

let admin_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "admin-socket" ] ~docv:"SOCK"
        ~doc:
          "Serve the ops plane on $(docv): line commands stats, health, \
           metrics (Prometheus text), flight and drain, one reply per \
           connection.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker domains draining the request queue (default: the \
           recommended domain count minus the accept thread, and at \
           least 2 so blocked requests never serialise the queue).")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-capacity" ] ~docv:"N"
        ~doc:
          "Accepted-but-unserved connection bound; beyond it new requests \
           are rejected with a retry-after response.")

let read_timeout_arg =
  Arg.(
    value & opt int 10_000
    & info [ "read-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Give up on a client that connects but never sends a full request \
           after $(docv) milliseconds.")

let log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Append one structured JSON log record per line to $(docv) \
           (default: stderr).")

let log_level_arg =
  Arg.(
    value & opt string "info"
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Log records below $(docv) (debug, info or warn) are dropped.")

let slow_ms_arg =
  Arg.(
    value & opt int 500
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Requests slower than $(docv) milliseconds end-to-end log \
           request.slow at warn level; 0 disables.")

let flight_size_arg =
  Arg.(
    value & opt int 64
    & info [ "flight-size" ] ~docv:"N"
        ~doc:"Flight-recorder capacity: the last $(docv) request summaries.")

let flight_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dump" ] ~docv:"FILE"
        ~doc:
          "Where SIGQUIT and the crash barrier dump the flight recorder \
           (default: the compile socket path plus .flight.json).")

let snapshot_interval_arg =
  Arg.(
    value & opt int 5_000
    & info [ "snapshot-interval-ms" ] ~docv:"MS"
        ~doc:
          "Rewrite --metrics-out atomically every $(docv) milliseconds \
           while serving, so a crash loses at most one interval of \
           telemetry; 0 writes only at shutdown.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Build the parse tables in-process; never touch the disk cache.")

let specialize_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "specialize" ] ~docv:"FILE|auto"
        ~doc:
          "Serve from profile-specialized parse tables: $(docv) is a heat \
           profile from $(b,mdgtool heat --json --out), or $(b,auto) to \
           collect one per target from the built-in corpus.  Output is \
           byte-identical to unspecialized serving; only matcher probe \
           locality changes.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the metric registry (request counters, queue-wait and \
           latency histograms) as JSON to $(docv) on shutdown and every \
           --snapshot-interval-ms while serving.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event timeline of the serve session to \
           $(docv) on shutdown — one track per worker domain, request \
           spans tagged with their request id.")

let () =
  let term =
    Term.(
      const run $ socket_arg $ admin_socket_arg $ workers_arg $ queue_arg
      $ read_timeout_arg $ log_arg $ log_level_arg $ slow_ms_arg
      $ flight_size_arg $ flight_dump_arg $ snapshot_interval_arg
      $ no_cache_arg $ specialize_arg $ metrics_out_arg $ trace_out_arg)
  in
  let info =
    Cmd.info "ggccd"
      ~doc:"Persistent mini-C compile server (the ggcc --server daemon)"
  in
  exit (Cmd.eval (Cmd.v info term))
