(* ggccd — the persistent compile server.

   Loads the packed tables once (through the on-disk cache) and serves
   compile requests over a Unix-domain socket until SIGTERM/SIGINT,
   then drains gracefully.  `ggcc --server SOCK` is the matching
   client; `ggcc --server SOCK --spawn` starts this daemon on demand. *)

open Cmdliner
module Driver = Gg_codegen.Driver
module Backend = Gg_codegen.Backend
module Targets = Gg_targets.Targets
module Server = Gg_server.Server
module Protocol = Gg_server.Protocol
module Profile = Gg_profile.Profile
module Metrics = Gg_profile.Metrics
module Trace = Gg_profile.Trace

let shutdown = Atomic.make false

let install_signals () =
  let handle = Sys.Signal_handle (fun _ -> Atomic.set shutdown true) in
  List.iter
    (fun s -> try Sys.set_signal s handle with Invalid_argument _ -> ())
    [ Sys.sigterm; Sys.sigint ]

let timestamp () =
  let t = Unix.localtime (Unix.gettimeofday ()) in
  Fmt.str "%02d:%02d:%02d" t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec

let run socket workers queue_capacity read_timeout log_path no_cache metrics_out
    trace_out =
  (* the daemon's output sinks must fail as one-line errors up front,
     not as Sys_error backtraces mid-serve *)
  let open_sink what = function
    | None -> None
    | Some path -> (
      match open_out path with
      | oc -> Some (path, oc)
      | exception Sys_error m ->
        Fmt.epr "error: cannot open %s %s: %s@." what path m;
        exit 1)
  in
  let log_sink = open_sink "log file" log_path in
  let check_sink what = function
    | None -> ()
    | Some path -> (
      (* probe writability now; the real write happens at shutdown *)
      match open_out_gen [ Open_append; Open_creat ] 0o644 path with
      | oc -> close_out oc
      | exception Sys_error m ->
        Fmt.epr "error: cannot write %s %s: %s@." what path m;
        exit 1)
  in
  check_sink "metrics file" metrics_out;
  check_sink "trace file" trace_out;
  let log_mutex = Mutex.create () in
  let log line =
    Mutex.protect log_mutex (fun () ->
        match log_sink with
        | Some (_, oc) ->
          output_string oc (Fmt.str "[%s] %s\n" (timestamp ()) line);
          flush oc
        | None -> Fmt.epr "[%s] ggccd: %s@." (timestamp ()) line)
  in
  install_signals ();
  (* the serving instruments are always armed: a daemon exists to be
     observed, and the hot-loop cost is the gated one-load-and-branch *)
  Profile.enabled := true;
  Metrics.enabled := true;
  if trace_out <> None then Trace.enabled := true;
  (* Per-target tables, resolved on first request for that target and
     kept warm for the daemon's lifetime.  The mutex makes resolution
     safe from any worker domain (and keeps a shared lazy from being
     forced concurrently); the common case after the first request per
     target is one lock/lookup/unlock. *)
  let table_mutex = Mutex.create () in
  let table_memo : (Backend.target, Driver.tables) Hashtbl.t =
    Hashtbl.create 4
  in
  let tables target =
    Mutex.protect table_mutex (fun () ->
        match Hashtbl.find_opt table_memo target with
        | Some t -> t
        | None ->
          let t0 = Unix.gettimeofday () in
          let t =
            if no_cache then Targets.default_tables target
            else
              Targets.cached_tables target Driver.default_options.Driver.grammar
          in
          log
            (Fmt.str "%s tables ready in %.3f s" (Targets.name target)
               (Unix.gettimeofday () -. t0));
          Hashtbl.add table_memo target t;
          t)
  in
  (* warm the default target before accepting, like the old
     single-table daemon did *)
  ignore (tables Backend.Vax : Driver.tables);
  let config =
    let d = Server.default_config ~socket_path:socket in
    {
      d with
      Server.workers = (match workers with Some w -> w | None -> d.Server.workers);
      queue_capacity;
      read_timeout_s = float_of_int read_timeout /. 1e3;
      log;
    }
  in
  let server =
    try Server.start ~config ~tables ()
    with Failure m | Sys_error m ->
      Fmt.epr "error: %s@." m;
      exit 1
  in
  while not (Atomic.get shutdown) do
    (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  log "shutdown requested; draining";
  Server.stop server;
  Option.iter Metrics.write_json metrics_out;
  Option.iter Trace.write trace_out;
  Option.iter (fun (_, oc) -> close_out oc) log_sink;
  exit 0

let socket_arg =
  Arg.(
    value
    & opt string (Gg_server.Protocol.default_socket ())
    & info [ "socket" ] ~docv:"SOCK"
        ~doc:
          "Unix-domain socket to serve on.  Default: \\$GGCG_SOCKET, else \
           a per-user socket in the temp directory.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker domains draining the request queue (default: the \
           recommended domain count minus the accept thread, and at \
           least 2 so blocked requests never serialise the queue).")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-capacity" ] ~docv:"N"
        ~doc:
          "Accepted-but-unserved connection bound; beyond it new requests \
           are rejected with a retry-after response.")

let read_timeout_arg =
  Arg.(
    value & opt int 10_000
    & info [ "read-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Give up on a client that connects but never sends a full request \
           after $(docv) milliseconds.")

let log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:"Append one line per request to $(docv) (default: stderr).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Build the parse tables in-process; never touch the disk cache.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the metric registry (request counters, queue-wait and \
           latency histograms) as JSON to $(docv) on shutdown.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event timeline of the serve session to \
           $(docv) on shutdown — one track per worker domain.")

let () =
  let term =
    Term.(
      const run $ socket_arg $ workers_arg $ queue_arg $ read_timeout_arg
      $ log_arg $ no_cache_arg $ metrics_out_arg $ trace_out_arg)
  in
  let info =
    Cmd.info "ggccd"
      ~doc:"Persistent mini-C compile server (the ggcc --server daemon)"
  in
  exit (Cmd.eval (Cmd.v info term))
