(* mdgtool — inspect the VAX machine description grammar and its parse
   tables: statistics, conflicts, chain cycles, syntactic blocks, and a
   production listing.  This is the workbench the paper's authors used
   over 225 times during development (section 7). *)

open Cmdliner
module Grammar = Gg_grammar.Grammar
module Tables = Gg_tablegen.Tables
module Checks = Gg_tablegen.Checks
module Lr0 = Gg_tablegen.Lr0
module Naive = Gg_tablegen.Naive
module Grammar_def = Gg_vax.Grammar_def
module Treelang = Gg_vax.Treelang
module Mdg = Gg_grammar.Mdg
module Schema = Gg_grammar.Schema

let options reverse_ops overfactored with_bridges =
  {
    Grammar_def.default with
    Grammar_def.reverse_ops;
    overfactored;
    with_bridges;
  }

let opts_term =
  let reverse =
    Arg.(
      value & opt bool true
      & info [ "reverse-ops" ] ~doc:"Include reverse-operator patterns.")
  in
  let overfactored =
    Arg.(
      value & flag
      & info [ "overfactored" ]
          ~doc:"Group Plus/Mul into the binop class (section 6.2.1 bug).")
  in
  let no_bridges =
    Arg.(
      value & flag
      & info [ "no-bridges" ] ~doc:"Omit the bridge productions.")
  in
  Term.(
    const (fun r o nb -> options r o (not nb)) $ reverse $ overfactored
    $ no_bridges)

let stats o =
  let schemas = Grammar_def.schemas o in
  let generic = List.length (Gg_grammar.Schema.expand_all schemas) in
  let n_schemas = List.length schemas in
  let g = Grammar_def.grammar o in
  let gs = Grammar.stats g in
  Fmt.pr "generic schemas:        %d@." n_schemas;
  Fmt.pr "replicated productions: %d@." generic;
  Fmt.pr "grammar: %a@." Grammar.pp_stats gs;
  let t = Tables.build g in
  Fmt.pr "tables:  %a@." Tables.pp_stats (Tables.stats t)

let conflicts o =
  let t = Tables.build (Grammar_def.grammar o) in
  Fmt.pr "%a@." Tables.pp_stats (Tables.stats t)

let chains o =
  let g = Grammar_def.grammar o in
  let report = Checks.chains g in
  Fmt.pr "silent chain cycles: %d@." (List.length report.Checks.silent_cycles);
  List.iter
    (fun cyc -> Fmt.pr "  LOOP: %a@." Fmt.(list ~sep:(any " -> ") string) cyc)
    report.Checks.silent_cycles;
  Fmt.pr "emitting chain cycles: %d@."
    (List.length report.Checks.emitting_cycles);
  List.iter
    (fun cyc -> Fmt.pr "  cycle: %a@." Fmt.(list ~sep:(any " -> ") string) cyc)
    report.Checks.emitting_cycles

let blocks o verbose =
  let g = Grammar_def.grammar o in
  let t = Tables.build g in
  let tl = Grammar_def.treelang o in
  let bs = Checks.blocks t ~arity:tl.Treelang.arity ~starts:tl.Treelang.starts in
  Fmt.pr "potential syntactic blocks: %d@." (List.length bs);
  let shown = if verbose then bs else List.filteri (fun i _ -> i < 20) bs in
  List.iter (fun b -> Fmt.pr "%a@." Checks.pp_block b) shown;
  if (not verbose) && List.length bs > 20 then
    Fmt.pr "... (%d more; use -v)@." (List.length bs - 20)

let print_grammar o =
  let g = Grammar_def.grammar o in
  Fmt.pr "%a@?" Grammar.pp g

(* export the built-in VAX description in the textual .mdg format *)
let export o =
  let mdg = Mdg.of_schemas ~start:"stmt" (Grammar_def.schemas o) in
  print_string (Mdg.print mdg)

(* statistics for an external .mdg file *)
let file_stats path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Mdg.parse text with
  | exception Mdg.Mdg_error (line, m) ->
    Fmt.epr "%s:%d: %s@." path line m;
    exit 1
  | mdg ->
    let g = Mdg.to_grammar mdg in
    Fmt.pr "schemas:  %d@." (List.length mdg.Mdg.schemas);
    Fmt.pr "grammar:  %a@." Grammar.pp_stats (Grammar.stats g);
    Fmt.pr "tables:   %a@." Tables.pp_stats (Tables.stats (Tables.build g))

(* the paper's Fig. 1: the terminal and non-terminal vocabulary *)
let vocabulary o =
  let g = Grammar_def.grammar o in
  let symtab = g.Grammar.symtab in
  Fmt.pr "terminals (%d):@." (Gg_grammar.Symtab.n_terms symtab);
  let terms =
    List.init (Gg_grammar.Symtab.n_terms symtab)
      (Gg_grammar.Symtab.term_name symtab)
    |> List.sort String.compare
  in
  List.iteri
    (fun i t ->
      Fmt.pr "%-14s%s" t (if i mod 6 = 5 then "\n" else ""))
    terms;
  Fmt.pr "@.non-terminals (%d):@." (Gg_grammar.Symtab.n_nonterms symtab);
  let nts =
    List.init (Gg_grammar.Symtab.n_nonterms symtab)
      (Gg_grammar.Symtab.nonterm_name symtab)
    |> List.sort String.compare
  in
  List.iteri
    (fun i t -> Fmt.pr "%-14s%s" t (if i mod 6 = 5 then "\n" else ""))
    nts;
  Fmt.pr "@."

let pack_stats o =
  let g = Grammar_def.grammar o in
  let t = Tables.build g in
  Fmt.pr "dense:  %a@." Tables.pp_stats (Tables.stats t);
  Fmt.pr "packed: %a@." Gg_tablegen.Packed.pp_stats
    (Gg_tablegen.Packed.stats (Gg_tablegen.Packed.pack t));
  Fmt.pr "grammar digest: %s@." (Grammar.digest g)

(* warm (or inspect) the on-disk table cache ggcc compiles from *)
let cache o dir clear =
  let g = Grammar_def.grammar o in
  let file = Gg_tablegen.Cache.path ?dir g in
  if clear then
    if Sys.file_exists file then begin
      Sys.remove file;
      Fmt.pr "removed %s@." file
    end
    else Fmt.pr "no cached tables (%s)@." file
  else begin
    let time_once f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (Unix.gettimeofday () -. t0, r)
    in
    (match Gg_tablegen.Cache.load ?dir g with
    | Some _ -> Fmt.pr "cache hit:  %s@." file
    | None ->
      let t_build, packed = time_once (fun () -> Gg_tablegen.Cache.build g) in
      if Gg_tablegen.Cache.store ?dir g packed then
        Fmt.pr "cache miss: built in %.3f s and stored %s@." t_build file
      else Fmt.pr "cache miss: built in %.3f s (store failed: %s)@." t_build file);
    let t_load, packed = time_once (fun () -> Gg_tablegen.Packed.load g file) in
    Fmt.pr "load time:  %.1f ms@." (t_load *. 1e3);
    Fmt.pr "tables:     %a@." Gg_tablegen.Packed.pp_stats
      (Gg_tablegen.Packed.stats packed);
    Fmt.pr "digest:     %s@." (Gg_tablegen.Packed.digest packed)
  end

let verbose_term =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show all results.")

let cmd_of name doc term = Cmd.v (Cmd.info name ~doc) term

let () =
  let cmds =
    [
      cmd_of "stats" "Grammar and table statistics (paper section 8)."
        Term.(const stats $ opts_term);
      cmd_of "conflicts" "Conflict-resolution statistics."
        Term.(const conflicts $ opts_term);
      cmd_of "chains" "Chain-production cycle report."
        Term.(const chains $ opts_term);
      cmd_of "blocks" "Potential syntactic blocks."
        Term.(const blocks $ opts_term $ verbose_term);
      cmd_of "print" "List all replicated productions."
        Term.(const print_grammar $ opts_term);
      cmd_of "export" "Write the VAX description in .mdg text format."
        Term.(const export $ opts_term);
      cmd_of "pack" "Table compression statistics."
        Term.(const pack_stats $ opts_term);
      cmd_of "cache"
        "Warm the on-disk packed-table cache (what ggcc compiles from)."
        Term.(
          const cache $ opts_term
          $ Arg.(
              value
              & opt (some string) None
              & info [ "dir" ] ~docv:"DIR" ~doc:"Cache directory override.")
          $ Arg.(
              value & flag
              & info [ "clear" ] ~doc:"Remove this grammar's cached tables."));
      cmd_of "vocabulary" "The terminal/non-terminal vocabulary (paper Fig. 1)."
        Term.(const vocabulary $ opts_term);
      cmd_of "file"
        "Statistics for an external .mdg machine description file."
        Term.(
          const file_stats
          $ Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mdg"));
    ]
  in
  let info = Cmd.info "mdgtool" ~doc:"VAX machine-description workbench" in
  exit (Cmd.eval (Cmd.group info cmds))
