(* mdgtool — inspect the VAX machine description grammar and its parse
   tables: statistics, conflicts, chain cycles, syntactic blocks, and a
   production listing.  This is the workbench the paper's authors used
   over 225 times during development (section 7). *)

open Cmdliner
module Grammar = Gg_grammar.Grammar
module Tables = Gg_tablegen.Tables
module Checks = Gg_tablegen.Checks
module Lr0 = Gg_tablegen.Lr0
module Naive = Gg_tablegen.Naive
module Grammar_def = Gg_vax.Grammar_def
module Treelang = Gg_ir.Treelang
module Mdg = Gg_grammar.Mdg
module Schema = Gg_grammar.Schema

let options reverse_ops overfactored with_bridges =
  {
    Grammar_def.default with
    Grammar_def.reverse_ops;
    overfactored;
    with_bridges;
  }

let opts_term =
  let reverse =
    Arg.(
      value & opt bool true
      & info [ "reverse-ops" ] ~doc:"Include reverse-operator patterns.")
  in
  let overfactored =
    Arg.(
      value & flag
      & info [ "overfactored" ]
          ~doc:"Group Plus/Mul into the binop class (section 6.2.1 bug).")
  in
  let no_bridges =
    Arg.(
      value & flag
      & info [ "no-bridges" ] ~doc:"Omit the bridge productions.")
  in
  Term.(
    const (fun r o nb -> options r o (not nb)) $ reverse $ overfactored
    $ no_bridges)

let stats o =
  let schemas = Grammar_def.schemas o in
  let generic = List.length (Gg_grammar.Schema.expand_all schemas) in
  let n_schemas = List.length schemas in
  let g = Grammar_def.grammar o in
  let gs = Grammar.stats g in
  Fmt.pr "generic schemas:        %d@." n_schemas;
  Fmt.pr "replicated productions: %d@." generic;
  Fmt.pr "grammar: %a@." Grammar.pp_stats gs;
  let t = Tables.build g in
  Fmt.pr "tables:  %a@." Tables.pp_stats (Tables.stats t)

let conflicts o =
  let t = Tables.build (Grammar_def.grammar o) in
  Fmt.pr "%a@." Tables.pp_stats (Tables.stats t)

let chains o =
  let g = Grammar_def.grammar o in
  let report = Checks.chains g in
  Fmt.pr "silent chain cycles: %d@." (List.length report.Checks.silent_cycles);
  List.iter
    (fun cyc -> Fmt.pr "  LOOP: %a@." Fmt.(list ~sep:(any " -> ") string) cyc)
    report.Checks.silent_cycles;
  Fmt.pr "emitting chain cycles: %d@."
    (List.length report.Checks.emitting_cycles);
  List.iter
    (fun cyc -> Fmt.pr "  cycle: %a@." Fmt.(list ~sep:(any " -> ") string) cyc)
    report.Checks.emitting_cycles

let blocks o verbose =
  let g = Grammar_def.grammar o in
  let t = Tables.build g in
  let tl = Grammar_def.treelang o in
  let bs = Checks.blocks t ~arity:tl.Treelang.arity ~starts:tl.Treelang.starts in
  Fmt.pr "potential syntactic blocks: %d@." (List.length bs);
  let shown = if verbose then bs else List.filteri (fun i _ -> i < 20) bs in
  List.iter (fun b -> Fmt.pr "%a@." Checks.pp_block b) shown;
  if (not verbose) && List.length bs > 20 then
    Fmt.pr "... (%d more; use -v)@." (List.length bs - 20)

let print_grammar o =
  let g = Grammar_def.grammar o in
  Fmt.pr "%a@?" Grammar.pp g

(* export the built-in VAX description in the textual .mdg format *)
let export o =
  let mdg = Mdg.of_schemas ~start:"stmt" (Grammar_def.schemas o) in
  print_string (Mdg.print mdg)

(* statistics for an external .mdg file *)
let file_stats path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Mdg.parse text with
  | exception Mdg.Mdg_error (line, m) ->
    Fmt.epr "%s:%d: %s@." path line m;
    exit 1
  | mdg ->
    let g = Mdg.to_grammar mdg in
    Fmt.pr "schemas:  %d@." (List.length mdg.Mdg.schemas);
    Fmt.pr "grammar:  %a@." Grammar.pp_stats (Grammar.stats g);
    Fmt.pr "tables:   %a@." Tables.pp_stats (Tables.stats (Tables.build g))

(* the paper's Fig. 1: the terminal and non-terminal vocabulary *)
let vocabulary o =
  let g = Grammar_def.grammar o in
  let symtab = g.Grammar.symtab in
  Fmt.pr "terminals (%d):@." (Gg_grammar.Symtab.n_terms symtab);
  let terms =
    List.init (Gg_grammar.Symtab.n_terms symtab)
      (Gg_grammar.Symtab.term_name symtab)
    |> List.sort String.compare
  in
  List.iteri
    (fun i t ->
      Fmt.pr "%-14s%s" t (if i mod 6 = 5 then "\n" else ""))
    terms;
  Fmt.pr "@.non-terminals (%d):@." (Gg_grammar.Symtab.n_nonterms symtab);
  let nts =
    List.init (Gg_grammar.Symtab.n_nonterms symtab)
      (Gg_grammar.Symtab.nonterm_name symtab)
    |> List.sort String.compare
  in
  List.iteri
    (fun i t -> Fmt.pr "%-14s%s" t (if i mod 6 = 5 then "\n" else ""))
    nts;
  Fmt.pr "@."

let pack_stats o =
  let g = Grammar_def.grammar o in
  let t = Tables.build g in
  Fmt.pr "dense:  %a@." Tables.pp_stats (Tables.stats t);
  Fmt.pr "packed: %a@." Gg_tablegen.Packed.pp_stats
    (Gg_tablegen.Packed.stats (Gg_tablegen.Packed.pack t));
  Fmt.pr "grammar digest: %s@." (Grammar.digest g)

(* warm (or inspect) the on-disk table cache ggcc compiles from.  The
   cache directory is shared by every target, so both warming and
   clearing walk the full live list: clearing the VAX entry must not
   leave a stale RISC one behind, and vice versa.  Specialized entries
   (grammar digest + profile digest) are listed distinctly and evicted
   unless their profile is declared live with --profile. *)
let cache o dir clear profiles =
  let live = Gg_targets.Targets.live_cache_entries o in
  let live_profiles =
    List.map (fun f -> Gg_specialize.Heat.digest (Gg_specialize.Heat.load f))
      profiles
  in
  if clear then begin
    List.iter
      (fun (target, g) ->
        let file = Gg_tablegen.Cache.path ?dir ~target g in
        if Sys.file_exists file then begin
          Sys.remove file;
          Fmt.pr "removed %s@." file
        end
        else Fmt.pr "no cached %s tables (%s)@." target file)
      live;
    (* also sweep entries matching no live (target, digest) pair —
       unreachable files an edited grammar leaves behind — and
       specialized entries whose profile was not kept alive *)
    match Gg_tablegen.Cache.clear_stale ?dir ~live_profiles live with
    | [] -> Fmt.pr "no stale entries@."
    | evicted ->
      List.iter
        (fun (f, bytes) -> Fmt.pr "evicted stale %s (%d bytes)@." f bytes)
        evicted;
      Fmt.pr "%d stale %s evicted@." (List.length evicted)
        (if List.length evicted = 1 then "entry" else "entries")
  end
  else
    let time_once f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (Unix.gettimeofday () -. t0, r)
    in
    List.iter
      (fun (target, g) ->
        let file = Gg_tablegen.Cache.path ?dir ~target g in
        Fmt.pr "[%s]@." target;
        (match Gg_tablegen.Cache.load ?dir ~target g with
        | Some _ -> Fmt.pr "cache hit:  %s@." file
        | None ->
          let t_build, packed =
            time_once (fun () -> Gg_tablegen.Cache.build g)
          in
          if Gg_tablegen.Cache.store ?dir ~target g packed then
            Fmt.pr "cache miss: built in %.3f s and stored %s@." t_build file
          else
            Fmt.pr "cache miss: built in %.3f s (store failed: %s)@." t_build
              file);
        let t_load, packed =
          time_once (fun () -> Gg_tablegen.Packed.load g file)
        in
        Fmt.pr "load time:  %.1f ms@." (t_load *. 1e3);
        Fmt.pr "tables:     %a@." Gg_tablegen.Packed.pp_stats
          (Gg_tablegen.Packed.stats packed);
        Fmt.pr "digest:     %s@." (Gg_tablegen.Packed.digest packed))
      live;
    (* specialized entries carry a third key component (the profile
       digest) and are listed apart from the baselines above *)
    match
      List.filter
        (fun e -> e.Gg_tablegen.Cache.e_profile_digest <> None)
        (Gg_tablegen.Cache.list ?dir ())
    with
    | [] -> Fmt.pr "@.specialized entries: none@."
    | specs ->
      Fmt.pr "@.specialized entries (%d):@." (List.length specs);
      List.iter
        (fun e ->
          Fmt.pr "  %s: grammar %s, profile %s, %d bytes@."
            e.Gg_tablegen.Cache.e_target e.Gg_tablegen.Cache.e_grammar_digest
            (Option.value ~default:"-" e.Gg_tablegen.Cache.e_profile_digest)
            e.Gg_tablegen.Cache.e_bytes)
        specs

(* which productions actually fire, and how hard: compile the fixed
   mini-C corpus (plus optional generated programs) with production
   coverage on and render the firing counts as a heat report.  This is
   the usage data Samuelsson-style table optimisation wants before
   reordering table rows. *)
let heat o target_name top seeds json out verbose =
  let target =
    match Gg_targets.Targets.of_string target_name with
    | Some t -> t
    | None ->
      Fmt.epr "error: unknown target %s@." target_name;
      exit 1
  in
  Gg_profile.Profile.coverage_enabled := true;
  Gg_profile.Profile.reset_coverage ();
  let tables = Gg_targets.Targets.build_tables target o in
  let g = Gg_codegen.Driver.grammar tables in
  let programs =
    List.map (fun (name, src) -> (name, Gg_frontc.Sema.compile src))
      Gg_frontc.Corpus.fixed_programs
    @ List.init seeds (fun seed ->
          ( Fmt.str "seed-%d" seed,
            Gg_frontc.Sema.lower_program
              (Gg_frontc.Corpus.program ~seed ~functions:3
                 ~stmts_per_function:12) ))
  in
  List.iter
    (fun (_, prog) ->
      ignore (Gg_codegen.Driver.compile_program ~tables prog))
    programs;
  let counts = Gg_profile.Profile.production_counts () in
  (* canonical form: duplicates merged, count desc then id asc — two
     runs over the same corpus render byte-identical profiles, so the
     profile digest (the specialized-table cache key) is stable *)
  let profile = Gg_specialize.Heat.of_counts counts in
  let total = profile.Gg_specialize.Heat.total in
  let sorted = profile.Gg_specialize.Heat.counts in
  (match out with
  | None -> ()
  | Some path ->
    Gg_specialize.Heat.save profile path;
    Fmt.pr "wrote %s (%d productions, profile digest %s)@." path
      (List.length sorted)
      (Gg_specialize.Heat.digest profile));
  if json then begin
    (* machine-readable firing counts: the spill-cost input of
       [ggcc --regalloc color --heat FILE] and the layout input of
       [mdgtool specialize] *)
    if out = None then print_string (Gg_specialize.Heat.to_json_string profile);
    exit 0
  end;
  if out <> None then exit 0;
  let n = Grammar.n_productions g in
  let fired = List.length sorted in
  Fmt.pr "corpus: %d programs, %d reductions, %d distinct productions@."
    (List.length programs) total fired;
  Fmt.pr "productions fired: %d of %d (%.1f%%); %d never fired@." fired n
    (100. *. float_of_int fired /. float_of_int (max 1 n))
    (n - fired);
  (* the smallest production set covering 50% / 90% of all reductions *)
  let covering share =
    let target = int_of_float (share *. float_of_int total) in
    let rec go k acc = function
      | (_, c) :: rest when acc < target -> go (k + 1) (acc + c) rest
      | _ -> k
    in
    go 0 0 sorted
  in
  if total > 0 then
    Fmt.pr "coverage: top %d productions fire 50%% of reductions, top %d \
            fire 90%%@."
      (covering 0.5) (covering 0.9);
  let max_count = match sorted with (_, c) :: _ -> c | [] -> 1 in
  let cum = ref 0 in
  Fmt.pr "@. count  share   cum  production@.";
  List.iteri
    (fun i (id, c) ->
      cum := !cum + c;
      if i < top then begin
        let width = max 1 (c * 30 / max 1 max_count) in
        Fmt.pr "%6d  %5.1f%% %5.1f%%  %a@.%15s%s@." c
          (100. *. float_of_int c /. float_of_int (max 1 total))
          (100. *. float_of_int !cum /. float_of_int (max 1 total))
          (Grammar.pp_production g) (Grammar.production g id) ""
          (String.make width '#')
      end)
    sorted;
  if List.length sorted > top then
    Fmt.pr "... (%d more; raise --top)@." (List.length sorted - top);
  if verbose then begin
    let fired_ids = List.map fst counts in
    Fmt.pr "@.never fired:@.";
    for id = 0 to n - 1 do
      if not (List.mem id fired_ids) then
        Fmt.pr "  %a@." (Grammar.pp_production g) (Grammar.production g id)
    done
  end

(* profile-guided table specialization: take a heat profile (mdgtool
   heat --json --out), reshape the packed tables around it, prove
   cell-for-cell parity against the dense tables, and report the layout
   before and after.  The result lands in the shared table cache keyed
   by (target, grammar digest, profile digest) — or in --out FILE as a
   ggcg-tables-v3 file. *)
let specialize o target_name profile_path coverage dir out =
  let target =
    match Gg_targets.Targets.of_string target_name with
    | Some t -> t
    | None ->
      Fmt.epr "error: unknown target %s@." target_name;
      exit 1
  in
  let profile =
    match Gg_specialize.Heat.load profile_path with
    | p -> p
    | exception (Failure m | Sys_error m) ->
      Fmt.epr "error: cannot load profile %s: %s@." profile_path m;
      exit 1
  in
  let b = Gg_targets.Targets.backend_of target in
  let g =
    if o = Grammar_def.default then
      Lazy.force b.Gg_codegen.Backend.default_grammar
    else b.Gg_codegen.Backend.grammar_of o
  in
  let dense = Tables.build g in
  let packed = Gg_tablegen.Packed.pack dense in
  let spec = Gg_specialize.Specialize.build ~coverage ~profile dense in
  (match Gg_specialize.Specialize.verify spec dense with
  | Ok () -> ()
  | Error m ->
    Fmt.epr "error: specialized tables failed verification: %s@." m;
    exit 1);
  let st = Gg_specialize.Specialize.stats spec in
  Fmt.pr "target:         %s@." target_name;
  Fmt.pr "profile:        %a@." Gg_specialize.Heat.pp profile;
  Fmt.pr "baseline:       %a@." Gg_tablegen.Packed.pp_stats
    (Gg_tablegen.Packed.stats packed);
  Fmt.pr "specialized:    %a@." Gg_specialize.Specialize.pp_stats st;
  Fmt.pr "verification:   ok (cell-for-cell parity with the dense tables)@.";
  match out with
  | Some path ->
    Gg_specialize.Specialize.save spec path;
    Fmt.pr "wrote %s@." path
  | None ->
    let target_name = Gg_targets.Targets.name target in
    if Gg_specialize.Specialize.cache_store ?dir ~target:target_name g spec
    then
      Fmt.pr "cached %s@."
        (Gg_tablegen.Cache.spec_path ?dir ~target:target_name
           ~profile_digest:(Gg_specialize.Heat.digest profile)
           g)
    else Fmt.epr "warning: could not store in the table cache@."

(* -- the ops plane: top + trace-merge ------------------------------------- *)

module Json = Gg_profile.Json

(* one admin conversation: connect, send the command line, read the
   whole reply (the daemon closes after answering) *)
let admin_query sock cmd =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (match Unix.connect fd (Unix.ADDR_UNIX sock) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    Fmt.epr "error: cannot connect to admin socket %s: %s@." sock
      (Unix.error_message e);
    exit 1);
  let line = cmd ^ "\n" in
  ignore (Unix.write_substring fd line 0 (String.length line) : int);
  let b = Buffer.create 1024 in
  let buf = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b buf 0 n;
      drain ()
    | exception Unix.Unix_error _ -> ()
  in
  drain ();
  Buffer.contents b

let counter stats name =
  Option.bind (Json.member "counters" stats) (Json.member name)
  |> Fun.flip Option.bind Json.to_int
  |> Option.value ~default:0

let histo stats name =
  match Option.bind (Json.member "histograms" stats) Json.to_list with
  | None -> None
  | Some hs ->
    List.find_opt
      (fun h ->
        Option.bind (Json.member "name" h) Json.to_str = Some name)
      hs

let histo_quantile stats name q =
  match Option.bind (histo stats name) (Json.member q) with
  | Some v -> Option.value ~default:0. (Json.to_float v)
  | None -> 0.

let top_cmd sock interval_ms count =
  let parse_stats () =
    match Json.parse (admin_query sock "stats") with
    | j -> j
    | exception Json.Parse_error m ->
      Fmt.epr "error: unreadable stats from %s: %s@." sock m;
      exit 1
  in
  Fmt.pr "%8s %8s %6s %6s %6s %6s %9s %9s %9s %9s@." "served" "rps" "ok"
    "err" "tmout" "rej" "q-depth" "wait-p99" "lat-p50" "lat-p99";
  let prev = ref None in
  let tick i =
    let stats = parse_stats () in
    let served = counter stats "server.requests_total" in
    let rps =
      match !prev with
      | Some p when served >= p ->
        Fmt.str "%.1f"
          (float_of_int (served - p) /. (float_of_int interval_ms /. 1e3))
      | _ -> "-"
    in
    prev := Some served;
    Fmt.pr "%8d %8s %6d %6d %6d %6d %9d %8.1fm %8.1fm %8.1fm@." served rps
      (counter stats "server.responses_ok")
      (counter stats "server.responses_error")
      (counter stats "server.timeouts_total")
      (counter stats "server.rejected_total")
      (counter stats "server.queue_depth")
      (histo_quantile stats "server.queue_wait_us" "p99" /. 1e3)
      (histo_quantile stats "server.request_latency_us" "p50" /. 1e3)
      (histo_quantile stats "server.request_latency_us" "p99" /. 1e3);
    if count = 0 || i + 1 < count then begin
      Unix.sleepf (float_of_int interval_ms /. 1e3);
      true
    end
    else false
  in
  let i = ref 0 in
  while tick !i do
    incr i
  done

(* Stitch a client trace and a server trace onto one timeline.  Each
   document's spans are stamped relative to its own process epoch; the
   exported epochUs rebases both onto absolute time, and the earlier
   epoch becomes the merged zero so timestamps stay small.  Each input
   keeps its events under its own pid with a process_name metadata row,
   so Perfetto shows "client" above "server" with the request-id args
   intact — the queue-wait gap is readable straight off the timeline. *)
let trace_merge_cmd traces out =
  let load path =
    match Json.parse_file path with
    | j ->
      let epoch =
        match Option.bind (Json.member "epochUs" j) Json.to_float with
        | Some e -> e
        | None ->
          Fmt.epr "error: %s has no epochUs (not a merged-trace input?)@." path;
          exit 1
      in
      let events =
        match Option.bind (Json.member "traceEvents" j) Json.to_list with
        | Some evs -> evs
        | None ->
          Fmt.epr "error: %s has no traceEvents@." path;
          exit 1
      in
      (path, epoch, events)
    | exception Json.Parse_error m ->
      Fmt.epr "error: cannot parse %s: %s@." path m;
      exit 1
    | exception Sys_error m ->
      Fmt.epr "error: %s@." m;
      exit 1
  in
  let loaded = List.map load traces in
  let base =
    List.fold_left (fun acc (_, e, _) -> Float.min acc e) Float.infinity loaded
  in
  let set k v obj =
    match obj with
    | Json.Obj members ->
      if List.mem_assoc k members then
        Json.Obj (List.map (fun (k', v') -> (k', if k' = k then v else v')) members)
      else Json.Obj (members @ [ (k, v) ])
    | other -> other
  in
  let rebase pid shift ev =
    let ev =
      match Option.bind (Json.member "ts" ev) Json.to_float with
      | Some ts -> set "ts" (Json.Num (ts +. shift)) ev
      | None -> ev
    in
    set "pid" (Json.Num (float_of_int pid)) ev
  in
  let merged =
    List.concat
      (List.mapi
         (fun i (path, epoch, events) ->
           let pid = i + 1 in
           let name = Filename.remove_extension (Filename.basename path) in
           Json.Obj
             [
               ("name", Json.Str "process_name");
               ("ph", Json.Str "M");
               ("pid", Json.Num (float_of_int pid));
               ("args", Json.Obj [ ("name", Json.Str name) ]);
             ]
           :: List.map (rebase pid (epoch -. base)) events)
         loaded)
  in
  let doc =
    Json.Obj
      [
        ("traceEvents", Json.Arr merged);
        ("displayTimeUnit", Json.Str "ms");
      ]
  in
  let write oc = output_string oc (Json.to_string doc ^ "\n") in
  match out with
  | None -> write stdout
  | Some path ->
    let oc = open_out path in
    write oc;
    close_out oc;
    Fmt.pr "merged %d events from %d traces into %s@."
      (List.length merged - List.length loaded)
      (List.length loaded) path

let verbose_term =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show all results.")

let cmd_of name doc term = Cmd.v (Cmd.info name ~doc) term

let () =
  let cmds =
    [
      cmd_of "stats" "Grammar and table statistics (paper section 8)."
        Term.(const stats $ opts_term);
      cmd_of "conflicts" "Conflict-resolution statistics."
        Term.(const conflicts $ opts_term);
      cmd_of "chains" "Chain-production cycle report."
        Term.(const chains $ opts_term);
      cmd_of "blocks" "Potential syntactic blocks."
        Term.(const blocks $ opts_term $ verbose_term);
      cmd_of "print" "List all replicated productions."
        Term.(const print_grammar $ opts_term);
      cmd_of "export" "Write the VAX description in .mdg text format."
        Term.(const export $ opts_term);
      cmd_of "pack" "Table compression statistics."
        Term.(const pack_stats $ opts_term);
      cmd_of "cache"
        "Warm the on-disk packed-table cache (what ggcc compiles from), \
         for every target."
        Term.(
          const cache $ opts_term
          $ Arg.(
              value
              & opt (some string) None
              & info [ "dir" ] ~docv:"DIR" ~doc:"Cache directory override.")
          $ Arg.(
              value & flag
              & info [ "clear" ]
                  ~doc:
                    "Remove every target's cached tables for this grammar and \
                     evict stale entries (tables whose target or grammar \
                     digest no longer matches, specialized tables whose \
                     profile is not kept live with $(b,--profile), orphaned \
                     temp files), reporting each eviction.")
          $ Arg.(
              value & opt_all file []
              & info [ "profile" ] ~docv:"FILE"
                  ~doc:
                    "With $(b,--clear): keep specialized entries whose \
                     profile digest matches $(docv) (repeatable)."));
      cmd_of "vocabulary" "The terminal/non-terminal vocabulary (paper Fig. 1)."
        Term.(const vocabulary $ opts_term);
      cmd_of "heat"
        "Production firing-count heat report over the mini-C corpus."
        Term.(
          const heat $ opts_term
          $ Arg.(
              value & opt string "vax"
              & info [ "target" ] ~docv:"TARGET"
                  ~doc:
                    "Collect the profile with this target's tables \
                     (production ids are grammar-specific).")
          $ Arg.(
              value & opt int 25
              & info [ "top" ] ~docv:"N"
                  ~doc:"Show the $(docv) hottest productions.")
          $ Arg.(
              value & opt int 0
              & info [ "seeds" ] ~docv:"N"
                  ~doc:
                    "Also compile $(docv) generated corpus programs \
                     besides the fixed suite.")
          $ Arg.(
              value & flag
              & info [ "json" ]
                  ~doc:
                    "Emit the firing counts as JSON \
                     ({\"total\": N, \"productions\": [{\"id\": I, \
                     \"count\": C}, ...]}) for $(b,ggcc --regalloc color \
                     --heat) and $(b,mdgtool specialize).")
          $ Arg.(
              value
              & opt (some string) None
              & info [ "out" ] ~docv:"FILE"
                  ~doc:
                    "Write the canonical JSON profile to $(docv); two runs \
                     over the same corpus write byte-identical files.")
          $ verbose_term);
      cmd_of "specialize"
        "Reshape the packed tables around a heat profile and prove \
         cell-for-cell parity (profile-guided specialization)."
        Term.(
          const specialize $ opts_term
          $ Arg.(
              value & opt string "vax"
              & info [ "target" ] ~docv:"TARGET"
                  ~doc:"Specialize this target's tables.")
          $ Arg.(
              required
              & pos 0 (some file) None
              & info [] ~docv:"PROFILE.json"
                  ~doc:"Heat profile from $(b,mdgtool heat --json --out).")
          $ Arg.(
              value
              & opt float Gg_specialize.Specialize.default_coverage
              & info [ "coverage" ] ~docv:"SHARE"
                  ~doc:
                    "Share of estimated probe heat the hot partition must \
                     cover.")
          $ Arg.(
              value
              & opt (some string) None
              & info [ "dir" ] ~docv:"DIR" ~doc:"Cache directory override.")
          $ Arg.(
              value
              & opt (some string) None
              & info [ "out" ] ~docv:"FILE"
                  ~doc:
                    "Write a ggcg-tables-v3 file to $(docv) instead of the \
                     table cache."));
      cmd_of "file"
        "Statistics for an external .mdg machine description file."
        Term.(
          const file_stats
          $ Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mdg"));
      cmd_of "top"
        "Live ggccd dashboard: poll the admin socket and print served, \
         rps, outcome counts, queue depth and latency quantiles."
        Term.(
          const top_cmd
          $ Arg.(
              required
              & pos 0 (some string) None
              & info [] ~docv:"ADMIN_SOCK"
                  ~doc:"The daemon's --admin-socket path.")
          $ Arg.(
              value & opt int 1000
              & info [ "interval-ms" ] ~docv:"MS"
                  ~doc:"Milliseconds between polls.")
          $ Arg.(
              value & opt int 0
              & info [ "count" ] ~docv:"N"
                  ~doc:"Stop after $(docv) polls (0: poll forever)."));
      cmd_of "trace-merge"
        "Merge Chrome traces from different processes (a ggcc client and \
         the ggccd daemon) onto one absolute timeline via their epochUs."
        Term.(
          const trace_merge_cmd
          $ Arg.(
              non_empty & pos_all file []
              & info [] ~docv:"TRACE.json"
                  ~doc:"Trace files written by --trace-out.")
          $ Arg.(
              value
              & opt (some string) None
              & info [ "o"; "output" ] ~docv:"FILE"
                  ~doc:"Write the merged trace to $(docv) (default: stdout)."));
    ]
  in
  let info = Cmd.info "mdgtool" ~doc:"VAX machine-description workbench" in
  exit (Cmd.eval (Cmd.group info cmds))
