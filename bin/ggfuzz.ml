(* ggfuzz — differential fuzzing of the code generators.

   Generates seed-driven control-flow IR programs and checks, for every
   seed, that the table-driven backend (dense and/or packed tables) and
   the PCC-style baseline agree with the reference interpreter on all
   observables.  Divergences are greedily shrunk and persisted to a
   corpus of re-runnable reproducers.  Production-coverage accounting
   reports which grammar productions the campaign exercised. *)

open Cmdliner
module Campaign = Gg_fuzz.Campaign
module Coverage = Gg_fuzz.Coverage
module Oracle = Gg_fuzz.Oracle
module Treegen = Gg_ir.Treegen
module Driver = Gg_codegen.Driver
module Backend = Gg_codegen.Backend

let parse_seeds s =
  match String.index_opt s '.' with
  | Some i
    when i + 1 < String.length s
         && s.[i + 1] = '.'
         && (match
               ( int_of_string_opt (String.sub s 0 i),
                 int_of_string_opt
                   (String.sub s (i + 2) (String.length s - i - 2)) )
             with
            | Some _, Some _ -> true
            | _ -> false) ->
    let lo = int_of_string (String.sub s 0 i) in
    let hi = int_of_string (String.sub s (i + 2) (String.length s - i - 2)) in
    if lo > hi then Error (`Msg "empty seed range") else Ok (lo, hi)
  | _ -> (
    match int_of_string_opt s with
    | Some n -> Ok (n, n)
    | None -> Error (`Msg "expected SEED or LO..HI"))

let seeds_conv =
  Arg.conv
    ( parse_seeds,
      fun ppf (lo, hi) -> Fmt.pf ppf "%d..%d" lo hi )

let seeds_arg =
  Arg.(
    value
    & opt seeds_conv (0, 100)
    & info [ "s"; "seeds" ] ~docv:"LO..HI"
        ~doc:"Inclusive seed range to fuzz (a single seed is also accepted).")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("dense", Campaign.Dense);
             ("packed", Campaign.Packed);
             ("both", Campaign.Both);
           ])
        Campaign.Both
    & info [ "e"; "engine" ]
        ~doc:"Table engine(s) for the gg backend: $(b,dense), $(b,packed) or \
              $(b,both).")

let regalloc_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("stack", Campaign.Rstack);
             ("color", Campaign.Rcolor);
             ("both", Campaign.Rboth);
           ])
        Campaign.Rstack
    & info [ "regalloc" ]
        ~doc:
          "Register allocator(s) under test: $(b,stack), $(b,color) or \
           $(b,both).  With $(b,both) every seed also compiles through \
           the graph-coloring allocator, so a stack/color disagreement \
           on any observable is a divergence.")

let target_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("vax", [ Backend.Vax ]);
             ("risc", [ Backend.Risc ]);
             ("both", [ Backend.Vax; Backend.Risc ]);
           ])
        [ Backend.Vax ]
    & info [ "t"; "target" ]
        ~doc:
          "Backend(s) under test: $(b,vax), $(b,risc) or $(b,both).  With \
           $(b,both) the oracle is differential across machine descriptions \
           as well as across table representations; the PCC baseline joins \
           only when the VAX is selected.")

let stmts_arg =
  Arg.(
    value
    & opt int Treegen.default_config.Treegen.stmts
    & info [ "stmts" ] ~doc:"Statement budget per function.")

let depth_arg =
  Arg.(
    value
    & opt int Treegen.default_config.Treegen.depth
    & info [ "depth" ] ~doc:"Maximum expression-tree depth.")

let nest_arg =
  Arg.(
    value
    & opt int Treegen.default_config.Treegen.max_nest
    & info [ "nest" ] ~doc:"Maximum if/while nesting depth.")

let functions_arg =
  Arg.(
    value
    & opt int Treegen.default_config.Treegen.functions
    & info [ "functions" ] ~doc:"Number of callee functions besides main.")

let straight_arg =
  Arg.(
    value & flag
    & info [ "straight-line" ]
        ~doc:"Generate straight-line assignment programs only (the pre-fuzzer \
              generator).")

let corpus_arg =
  Arg.(
    value
    & opt string Campaign.default_config.Campaign.corpus_dir
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Directory for divergence reproducers (empty string disables \
              persistence).")

let coverage_arg =
  Arg.(
    value & flag
    & info [ "coverage" ]
        ~doc:"Print the production-coverage report, compared against the \
              fixed-corpus baseline.")

let verbose_cov_arg =
  Arg.(
    value & flag
    & info [ "coverage-verbose" ]
        ~doc:"With $(b,--coverage): also list every never-fired production.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-divergence progress.")

let shrink_checks_arg =
  Arg.(
    value
    & opt int Campaign.default_config.Campaign.max_shrink_checks
    & info [ "shrink-checks" ] ~doc:"Oracle-check budget for the shrinker.")

let jobs_arg =
  Arg.(
    value
    & opt int Campaign.default_config.Campaign.jobs
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Compile each generated program's functions across $(docv) domains \
           (shrinking stays single-threaded).  Divergence results are \
           independent of $(docv): parallel assembly is byte-identical.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Print per-phase wall times and matcher counters for the whole \
              campaign to stderr.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event JSON timeline of the campaign's \
              compiles to $(docv).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the metric registry (counters and histograms) to stderr \
              after the campaign.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the metric registry as JSON to $(docv).")

let with_telemetry ~profile ~trace_out ~metrics ~metrics_out f =
  if profile || metrics || trace_out <> None || metrics_out <> None then begin
    Gg_profile.Profile.enabled := true;
    Gg_profile.Profile.reset ()
  end;
  if trace_out <> None then begin
    Gg_profile.Trace.enabled := true;
    Gg_profile.Trace.reset ()
  end;
  if metrics || metrics_out <> None then begin
    Gg_profile.Metrics.enabled := true;
    Gg_profile.Metrics.reset ()
  end;
  let r = f () in
  if profile then Fmt.epr "%a" Gg_profile.Profile.report ();
  if metrics then Fmt.epr "%a" Gg_profile.Metrics.report ();
  Option.iter Gg_profile.Metrics.write_json metrics_out;
  Option.iter Gg_profile.Trace.write trace_out;
  r

let fuzz_cmd (seed_lo, seed_hi) engine regalloc targets stmts depth max_nest
    functions straight_line corpus_dir coverage verbose_cov quiet shrink_checks
    jobs profile trace_out metrics metrics_out =
  (* run the campaign under the telemetry wrapper but exit after it, so
     a divergence still flushes the trace/metrics files *)
  let n_div =
    with_telemetry ~profile ~trace_out ~metrics ~metrics_out @@ fun () ->
  let cfg =
    {
      Campaign.seed_lo;
      seed_hi;
      gen = { Treegen.stmts; depth; max_nest; functions };
      engine;
      regalloc;
      targets;
      straight_line;
      corpus_dir;
      max_shrink_checks = shrink_checks;
      jobs;
      log = (if quiet then None else Some Fmt.string);
    }
  in
  let result = Campaign.run cfg in
  let n_div = List.length result.Campaign.divergences in
  Fmt.pr "ggfuzz: %d programs, %d divergence%s, %.1fs@."
    result.Campaign.programs n_div
    (if n_div = 1 then "" else "s")
    result.Campaign.seconds;
  List.iter
    (fun (d : Campaign.divergence) ->
      Fmt.pr "  seed %d: %a; reproducer has %d statement%s%a@."
        d.Campaign.seed Oracle.pp_failure d.Campaign.failure
        d.Campaign.shrunk_stmts
        (if d.Campaign.shrunk_stmts = 1 then "" else "s")
        Fmt.(option (fmt " (%s)"))
        d.Campaign.dump)
    result.Campaign.divergences;
  if coverage then begin
    (* production ids are per-grammar, so the coverage report is pinned
       to the first selected target's grammar *)
    let tables = Gg_targets.Targets.default_tables (List.hd targets) in
    let g = Driver.grammar tables in
    let baseline = Coverage.baseline tables in
    let report = Coverage.report g ~fired:result.Campaign.fired in
    Fmt.pr "%a" (Coverage.pp_report ~baseline ~verbose:verbose_cov g) report
  end;
  n_div
  in
  if n_div > 0 then exit 1

let replay_cmd path engine regalloc targets =
  match Campaign.replay ~engine ~regalloc ~targets path with
  | Ok outcome ->
    Fmt.pr "%s: all backends agree (return value %a)@." path
      Gg_ir.Interp.pp_value outcome.Gg_ir.Interp.return_value;
  | Error f ->
    Fmt.pr "%s: still diverges: %a@." path Oracle.pp_failure f;
    exit 1
  | exception Oracle.Invalid m ->
    Fmt.epr "%s: program no longer valid: %s@." path m;
    exit 2

let replay_path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DUMP.ir")

let () =
  let fuzz_term =
    Term.(
      const fuzz_cmd $ seeds_arg $ engine_arg $ regalloc_arg $ target_arg
      $ stmts_arg
      $ depth_arg $ nest_arg $ functions_arg $ straight_arg $ corpus_arg
      $ coverage_arg $ verbose_cov_arg $ quiet_arg $ shrink_checks_arg
      $ jobs_arg $ profile_arg $ trace_out_arg $ metrics_arg $ metrics_out_arg)
  in
  let fuzz =
    Cmd.v
      (Cmd.info "fuzz" ~doc:"Run a differential fuzz campaign over a seed range.")
      fuzz_term
  in
  let replay =
    Cmd.v
      (Cmd.info "replay"
         ~doc:"Re-run a persisted reproducer ($(b,.ir) dump) through the oracle.")
      Term.(
        const replay_cmd $ replay_path_arg $ engine_arg $ regalloc_arg
        $ target_arg)
  in
  let info =
    Cmd.info "ggfuzz"
      ~doc:"Differential fuzzing of the table-driven code generator"
  in
  exit (Cmd.eval (Cmd.group info ~default:fuzz_term [ fuzz; replay ]))
