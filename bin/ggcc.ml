(* ggcc — the mini-C compiler driver.

   Compiles mini-C source to assembly for a selected target machine
   (--target vax|risc) with either the table-driven Graham-Glanville
   backend (the paper's contribution) or the PCC-style baseline (VAX
   only), and can run the result under the target's simulator. *)

open Cmdliner
module Driver = Gg_codegen.Driver
module Backend = Gg_codegen.Backend
module Targets = Gg_targets.Targets
module Pcc = Gg_pcc.Pcc
module Sema = Gg_frontc.Sema
module Interp = Gg_ir.Interp
module Simout = Gg_ir.Simout
module Tree = Gg_ir.Tree
module Protocol = Gg_server.Protocol
module Client = Gg_server.Client

type backend = Gg | Pcc_backend

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Table acquisition for the gg backend, in order of preference: a
   profile-specialized table (--specialize FILE|auto), an explicit
   -tables file (created on first use), the per-user cache keyed by
   target and grammar digest, or an in-process build (--no-cache). *)
let gg_tables ~target ~tables_file ~no_cache ~specialize () =
  let b = Targets.backend_of target in
  match (specialize, tables_file) with
  | Some spec, None ->
    let profile =
      if spec = "auto" then Targets.heat_profile target
      else Gg_specialize.Heat.load spec
    in
    Targets.specialized_tables ~use_cache:(not no_cache) ~profile target
  | Some _, Some _ ->
    (* -tables names a v2 packed file; a specialized table is keyed and
       cached differently (v3), so the combination is ambiguous *)
    Fmt.epr "error: --specialize cannot be combined with --tables@.";
    exit 1
  | None, Some path ->
    let g = Lazy.force b.Backend.default_grammar in
    let packed =
      if Sys.file_exists path then
        Gg_profile.Trace.phase "tables.load" (fun () ->
            Gg_tablegen.Packed.load g path)
      else begin
        let p = Gg_tablegen.Cache.build g in
        Gg_tablegen.Packed.save p path;
        p
      end
    in
    Driver.of_engine ~backend:b (Gg_matcher.Matcher.packed_engine ~grammar:g packed)
  | None, None ->
    if no_cache then Targets.default_tables target
    else Targets.cached_tables target Driver.default_options.Driver.grammar

let compile_source backend ~idioms ~peephole ~regalloc ~heat ~jobs ~tables
    ~explain src =
  let prog = Gg_profile.Trace.phase "frontend" (fun () -> Sema.compile src) in
  match backend with
  | Gg ->
    let options =
      { Driver.default_options with Driver.idioms; peephole; regalloc; heat }
    in
    let tables = Lazy.force tables in
    let out = Driver.compile_program ~options ~tables ~jobs prog in
    let asm =
      if explain then Driver.render_explained tables out
      else out.Driver.assembly
    in
    (asm, prog)
  | Pcc_backend -> ((Pcc.compile_program ~peephole prog).Pcc.assembly, prog)

let handle_errors f =
  try f () with
  | Gg_frontc.Lexer.Lex_error (line, m) ->
    Fmt.epr "lexical error, line %d: %s@." line m;
    exit 1
  | Gg_frontc.Parser.Parse_error (line, m) ->
    Fmt.epr "syntax error, line %d: %s@." line m;
    exit 1
  | Sema.Semantic_error m ->
    Fmt.epr "error: %s@." m;
    exit 1
  | Gg_matcher.Matcher.Reject e ->
    Fmt.epr "code generator: %a@." Gg_matcher.Matcher.pp_error e;
    exit 2
  | Failure m ->
    (* bad/stale -tables files, unwritable outputs, ... *)
    Fmt.epr "error: %s@." m;
    exit 1
  | Sys_error m ->
    (* nonexistent/unwritable -o, --trace-out, --metrics-out, ... *)
    Fmt.epr "error: %s@." m;
    exit 1
  | Client.Server_error m ->
    Fmt.epr "error: %s@." m;
    exit 3
  | Targets.Sim_error m ->
    Fmt.epr "simulator error: %s@." m;
    exit 4
  | Targets.Parse_error (line, m) ->
    Fmt.epr "assembler parse error, line %d: %s@." line m;
    exit 4

(* Arm the requested instruments before compiling and flush their
   expositions afterwards.  The wall-clock timers come on for any of
   them: the trace needs them for nothing, but the metrics sidecar
   embeds the phase table, and --trace-out alongside --profile is the
   common case anyway. *)
let with_telemetry ?(trace_out = None) ?(metrics = false) ?(metrics_out = None)
    ?(explain = false) profile f =
  let any =
    profile || metrics || trace_out <> None || metrics_out <> None
  in
  if any then begin
    Gg_profile.Profile.enabled := true;
    Gg_profile.Profile.reset ()
  end;
  if trace_out <> None then begin
    Gg_profile.Trace.enabled := true;
    Gg_profile.Trace.reset ()
  end;
  if metrics || metrics_out <> None then begin
    Gg_profile.Metrics.enabled := true;
    Gg_profile.Metrics.reset ()
  end;
  if explain then Gg_profile.Profile.provenance_enabled := true;
  (* flush the sidecars even when the compile raises (reject, crash,
     deadline): a failing run is exactly the one whose telemetry the
     operator wants on disk; atomic writes so a crash mid-flush never
     leaves a torn document *)
  Fun.protect ~finally:(fun () ->
      Option.iter Gg_profile.Metrics.write_json_atomic metrics_out;
      Option.iter Gg_profile.Trace.write trace_out)
  @@ fun () ->
  let r = f () in
  if profile then Fmt.epr "%a" Gg_profile.Profile.report ();
  if metrics then Fmt.epr "%a" Gg_profile.Metrics.report ();
  r

let with_profile profile f = with_telemetry profile f

(* Route one compile through a ggccd daemon.  The server runs the same
   compile path with the same options, so the assembly (or the error
   text and exit code) is identical to compiling directly. *)
let server_compile ~socket ~spawn ~ggccd ~backend ~target ~regalloc ~idioms
    ~peephole ~jobs ~explain ~deadline_ms ~fail_inject ~sleep_ms src =
  ignore (Client.ensure ?ggccd ~socket ~spawn () : int option);
  let backend =
    match backend with Gg -> Protocol.Gg | Pcc_backend -> Protocol.Pcc
  in
  let req =
    Protocol.request ~backend ~target ~regalloc ~idioms ~peephole ~explain
      ~jobs ~deadline_ms ~fail_inject ~sleep_ms src
  in
  match Client.compile ~socket req with
  | Protocol.Asm asm -> asm
  | Protocol.Error ((Protocol.Lex | Protocol.Parse), m) ->
    Fmt.epr "%s@." m;
    exit 1
  | Protocol.Error (Protocol.Semantic, m) ->
    Fmt.epr "error: %s@." m;
    exit 1
  | Protocol.Error (Protocol.Reject, m) ->
    Fmt.epr "code generator: %s@." m;
    exit 2
  | Protocol.Error ((Protocol.Internal | Protocol.Bad_request), m) ->
    Fmt.epr "server error: %s@." m;
    exit 3
  | Protocol.Timeout ->
    Fmt.epr "server error: deadline exceeded@.";
    exit 3
  | Protocol.Retry_after _ ->
    (* unreachable: Client.compile turns retry exhaustion into
       Server_error; kept for match exhaustiveness *)
    Fmt.epr "server error: queue full, retries exhausted@.";
    exit 3

let compile_cmd path backend target regalloc heat_file specialize idioms
    peephole jobs output run args tables_file no_cache profile trace_out
    metrics metrics_out explain server spawn ggccd deadline_ms inject_fail
    inject_sleep_ms =
  handle_errors (fun () ->
      (* the baseline emits VAX assembly; refuse the cross pairing here
         rather than shipping it to a daemon that will refuse it too *)
      if backend = Pcc_backend && target <> Backend.Vax then begin
        Fmt.epr "error: the pcc backend targets the VAX only@.";
        exit 1
      end;
      if backend = Pcc_backend && regalloc <> Driver.Stack then begin
        Fmt.epr "error: the pcc backend has no graph-coloring allocator@.";
        exit 1
      end;
      (* heat tables are a local spill-cost input; the wire protocol
         does not carry them *)
      if heat_file <> None && server <> None then begin
        Fmt.epr "error: --heat cannot be combined with --server@.";
        exit 1
      end;
      (* table layout is a local concern; the daemon picks its own
         tables (ggccd --specialize) *)
      if specialize <> None && server <> None then begin
        Fmt.epr "error: --specialize cannot be combined with --server@.";
        exit 1
      end;
      if specialize <> None && backend = Pcc_backend then begin
        Fmt.epr "error: the pcc backend has no parse tables to specialize@.";
        exit 1
      end;
      let heat =
        match heat_file with
        | None -> []
        | Some path -> Gg_codegen.Color.load_heat path
      in
      with_telemetry ~trace_out ~metrics ~metrics_out ~explain profile
      @@ fun () ->
      let src = read_file path in
      let asm, globals =
        match server with
        | Some socket ->
          let asm =
            server_compile ~socket ~spawn ~ggccd ~backend ~target ~regalloc
              ~idioms ~peephole ~jobs ~explain ~deadline_ms
              ~fail_inject:inject_fail ~sleep_ms:inject_sleep_ms src
          in
          (* the simulator needs the global layout; the daemon answered
             Asm, so the local frontend cannot fail on the same source *)
          (asm, lazy (Sema.compile src).Tree.globals)
        | None ->
          let tables =
            lazy (gg_tables ~target ~tables_file ~no_cache ~specialize ())
          in
          let asm, prog =
            Gg_profile.Trace.span ~cat:"file" (Filename.basename path)
              (fun () ->
                compile_source backend ~idioms ~peephole ~regalloc ~heat ~jobs
                  ~tables ~explain src)
          in
          (asm, lazy prog.Tree.globals)
      in
      (match output with
      | Some out ->
        let oc = open_out out in
        output_string oc asm;
        close_out oc
      | None -> if not run then print_string asm);
      if run then begin
        let args = List.map (fun n -> Interp.VInt (Int64.of_int n)) args in
        let out =
          Targets.run_text ~target ~global_types:(Lazy.force globals) asm
            ~entry:"main" args
        in
        List.iter print_endline out.Simout.output;
        Fmt.pr "exit: %a   (%d instructions, %d cycles)@." Interp.pp_value
          out.Simout.return_value out.Simout.insns_executed out.Simout.cycles
      end)

let interp_cmd path args =
  handle_errors (fun () ->
      let prog = Sema.compile (read_file path) in
      let args = List.map (fun n -> Interp.VInt (Int64.of_int n)) args in
      let out = Interp.run prog ~entry:"main" args in
      List.iter print_endline out.Interp.output;
      Fmt.pr "exit: %a@." Interp.pp_value out.Interp.return_value)

let trace_cmd path target tables_file no_cache profile =
  handle_errors (fun () ->
      with_profile profile @@ fun () ->
      let prog = Sema.compile (read_file path) in
      let tables = gg_tables ~target ~tables_file ~no_cache ~specialize:None () in
      let b = Driver.backend tables in
      let g = Driver.grammar tables in
      List.iter
        (fun (f : Tree.func) ->
          Fmt.pr "=== %s ===@." f.Tree.fname;
          let tr =
            Gg_transform.Transform.run ~leaf_need:b.Backend.leaf_need f
          in
          let sem =
            Gg_codegen.Semantics.create ~allocatable:b.Backend.alloc_regs
              ?move:b.Backend.move
              (Gg_codegen.Frame.create ~locals_size:f.Tree.locals_size
                 ~temps:tr.Gg_transform.Transform.temps)
          in
          let cb = b.Backend.callbacks sem g in
          List.iter
            (fun s ->
              match s with
              | Tree.Stree t ->
                Fmt.pr "@.tree: %a@." Tree.pp t;
                let outcome =
                  Gg_matcher.Matcher.run_tree_engine ~trace:true (Driver.engine tables) cb t
                in
                Fmt.pr "%a@."
                  (Gg_matcher.Matcher.pp_trace g)
                  outcome.Gg_matcher.Matcher.trace
              | _ -> ())
            tr.Gg_transform.Transform.func.Tree.body)
        prog.Tree.funcs)

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("gg", Gg); ("pcc", Pcc_backend) ]) Gg
    & info [ "b"; "backend" ] ~doc:"Backend: table-driven (gg) or PCC-style (pcc).")

let target_arg =
  Arg.(
    value
    & opt (enum [ ("vax", Backend.Vax); ("risc", Backend.Risc) ]) Backend.Vax
    & info [ "t"; "target" ]
        ~doc:
          "Target machine description: $(b,vax) or $(b,risc).  Selects the \
           grammar, instruction table and simulator; the pcc backend is \
           VAX-only.")

let regalloc_arg =
  Arg.(
    value
    & opt (enum [ ("stack", Driver.Stack); ("color", Driver.Color) ]) Driver.Stack
    & info [ "regalloc" ]
        ~doc:
          "Register allocator (gg backend): $(b,stack) is the paper's \
           on-the-fly stack discipline; $(b,color) runs Chaitin/Briggs \
           graph coloring over the emitted stream — liveness, \
           interference, move coalescing, and spilling through frame \
           temporaries weighted by use count, loop depth and production \
           heat.")

let heat_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "heat" ] ~docv:"FILE"
        ~doc:
          "Production firing counts from $(b,mdgtool heat --json), used \
           by $(b,--regalloc color) to bias spill costs toward code \
           produced by hot productions.  Local compiles only.")

let specialize_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "specialize" ] ~docv:"FILE|auto"
        ~doc:
          "Compile with profile-specialized parse tables (gg backend): \
           hot states comb-packed first for locality, cold states behind \
           an exact fallback.  $(docv) is a heat profile from $(b,mdgtool \
           heat --json --out), or $(b,auto) to collect one from the \
           built-in corpus.  The assembly is byte-identical to an \
           unspecialized compile; only matcher probe locality changes.  \
           Specialized tables are cached by (target, grammar digest, \
           profile digest) unless $(b,--no-cache).  Local compiles only.")

let idioms_arg =
  Arg.(
    value & opt bool true
    & info [ "idioms" ] ~doc:"Run the idiom recogniser (gg backend).")

let peephole_arg =
  Arg.(
    value & flag
    & info [ "peephole" ] ~doc:"Run the peephole optimizer on the output.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Compile the program's functions across $(docv) domains (gg \
           backend).  The assembly is byte-identical to a single-domain \
           compile; the tables are shared read-only.")

let output_arg =
  Arg.(
    value & opt (some string) None & info [ "o" ] ~doc:"Write assembly to a file.")

let run_arg =
  Arg.(value & flag & info [ "r"; "run" ] ~doc:"Execute under the simulator.")

let args_arg =
  Arg.(value & opt (list int) [] & info [ "args" ] ~doc:"Integer arguments to main.")

let tables_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "T"; "tables" ] ~docv:"FILE"
        ~doc:
          "Load the packed parse tables from $(docv) (created on first use). \
           Default: the per-user cache keyed by grammar digest \
           (\\$GGCG_CACHE_DIR, \\$XDG_CACHE_HOME/ggcg or ~/.cache/ggcg).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Rebuild the parse tables in-process; never touch the disk.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print per-phase wall times and matcher/cache counters to stderr \
           (the paper's Fig. 2 instrumentation).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the compile to \
           $(docv) — one begin/end span per file, function, phase and \
           tree match, one track per domain under $(b,-j) N.  Load it in \
           chrome://tracing or Perfetto.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the metric registry to stderr after compiling: named \
           counters, the shift/reduce ratio, and histograms of per-tree \
           match time, reductions per tree, matcher stack high-water and \
           instructions per function.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the metric registry (plus per-phase wall times) as JSON \
           to $(docv).")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Annotate every emitted instruction with the source line and \
           the grammar production ids whose reductions produced it (gg \
           backend).  $(b,--peephole) rewrites the output and drops the \
           annotations.")

let server_arg =
  Arg.(
    value
    & opt ~vopt:(Some (Protocol.default_socket ())) (some string) None
    & info [ "server" ] ~docv:"SOCK"
        ~doc:
          "Compile through the persistent ggccd daemon listening on the \
           Unix-domain socket $(docv) (without a value: \\$GGCG_SOCKET, \
           else a per-user socket in the temp directory).  The daemon \
           holds the packed tables warm, so repeated compiles skip the \
           table load; the output is byte-identical to a direct compile.")

let spawn_arg =
  Arg.(
    value & flag
    & info [ "spawn" ]
        ~doc:
          "With $(b,--server): if no daemon answers on the socket, start \
           ggccd detached and wait for it to come up.")

let ggccd_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ggccd" ] ~docv:"BIN"
        ~doc:
          "Daemon binary for $(b,--spawn) (default: a ggccd next to this \
           executable, else \\$PATH).")

let deadline_arg =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "With $(b,--server): give up if the daemon has not answered \
           $(docv) milliseconds after accepting the request (0: no \
           deadline).  A missed deadline exits 3.")

let inject_fail_arg =
  Arg.(
    value & flag
    & info [ "inject-fail" ]
        ~doc:
          "Test hook, with $(b,--server): ask the daemon to crash inside \
           its compile barrier, exercising the error-response path.")

let inject_sleep_arg =
  Arg.(
    value & opt int 0
    & info [ "inject-sleep-ms" ] ~docv:"MS"
        ~doc:
          "Test hook, with $(b,--server): ask the worker to stall $(docv) \
           milliseconds before compiling (deterministic deadline tests).")

let () =
  let compile_term =
    Term.(
      const compile_cmd $ path_arg $ backend_arg $ target_arg $ regalloc_arg
      $ heat_arg $ specialize_arg $ idioms_arg
      $ peephole_arg $ jobs_arg $ output_arg $ run_arg $ args_arg $ tables_arg
      $ no_cache_arg $ profile_arg $ trace_out_arg $ metrics_arg
      $ metrics_out_arg $ explain_arg $ server_arg $ spawn_arg $ ggccd_arg
      $ deadline_arg $ inject_fail_arg $ inject_sleep_arg)
  in
  let compile =
    Cmd.v
      (Cmd.info "compile" ~doc:"Compile mini-C to the target's assembly.")
      compile_term
  in
  let interp =
    Cmd.v
      (Cmd.info "interp" ~doc:"Run a program under the IR interpreter.")
      Term.(const interp_cmd $ path_arg $ args_arg)
  in
  let trace =
    Cmd.v
      (Cmd.info "trace" ~doc:"Show the pattern matcher's shift/reduce actions.")
      Term.(
        const trace_cmd $ path_arg $ target_arg $ tables_arg $ no_cache_arg
        $ profile_arg)
  in
  let info =
    Cmd.info "ggcc"
      ~doc:"Mini-C compiler with a table-driven, retargetable code generator"
  in
  exit (Cmd.eval (Cmd.group info ~default:compile_term [ compile; interp; trace ]))
