(** Structured trace spans with Chrome [trace_event] JSON export.

    A span is a begin/end pair around a unit of compilation work — a
    file, a function, a leaf phase, one tree match.  Spans are recorded
    into per-domain shards (one timestamp read and one cons per edge,
    no synchronisation), and {!export} merges the shards into Chrome
    trace JSON with the recording domain's id as the thread id — so a
    [ggcc -j N] compile is visually inspectable as N parallel tracks in
    chrome://tracing or Perfetto ([ggcc --trace-out trace.json]).

    Everything is gated on {!enabled}: with tracing off, {!span} is the
    plain application [f ()] and the hot paths pay one load and branch. *)

type phase = B | E

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts : float;  (** microseconds since the trace epoch *)
  ev_track : int;  (** id of the recording domain *)
  ev_args : (string * string) list;
      (** span arguments, rendered as the Chrome event's [args] object
          — the request id a server span served, for example *)
}

(** Off by default; set by [--trace-out]. *)
val enabled : bool ref

(** [span ?cat ?args name f] runs [f] inside a [name] span when
    {!enabled}; transparent otherwise.  The end edge is recorded even
    if [f] raises; [args] ride on both edges. *)
val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [phase name f] = {!Profile.time}[ name] around {!span}[ name f]:
    the standing leaf-phase instrumentation records both the aggregate
    timer and the per-call span over the same interval, so the trace
    durations and [Profile.seconds] agree. *)
val phase : string -> (unit -> 'a) -> 'a

(** All recorded events, every track in record order (hence balanced
    and properly nested per track). *)
val events : unit -> event list

(** Microseconds since the trace epoch (the clock spans are stamped
    with). *)
val now_us : unit -> float

(** The trace epoch as absolute unix microseconds.  Exported in the
    trace document as [epochUs] so traces from different processes (a
    client and the daemon serving it) can be merged onto one absolute
    timeline. *)
val epoch_us : unit -> float

(** Drop all recorded events in every shard.  Call only while no other
    domain is recording. *)
val reset : unit -> unit

(** The Chrome [trace_event] JSON document for the recorded events. *)
val export : unit -> string

(** Escape a string for inclusion in a JSON string literal (shared by
    the trace and metrics expositions). *)
val json_escape : string -> string

val write : string -> unit

(** Total seconds covered by spans named [name] (summed across tracks);
    used to cross-check span durations against {!Profile.seconds}. *)
val span_seconds : string -> float
