(* The trailing [_pad] fields stretch each record past a cache line
   (16 words with the header vs the 64-byte lines of every machine we
   serve on), so two domains' counter records allocated back to back
   never share a line — the hot loop increments these fields millions
   of times per compile, and false sharing between shards would charge
   every increment a coherence miss. *)
type counters = {
  mutable shifts : int;
  mutable reduces : int;
  mutable semantic_choices : int;
  mutable matcher_runs : int;
  mutable rejects : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable _pad0 : int;
  mutable _pad1 : int;
  mutable _pad2 : int;
  mutable _pad3 : int;
  mutable _pad4 : int;
  mutable _pad5 : int;
  mutable _pad6 : int;
  mutable _pad7 : int;
}

let fresh_counters () =
  {
    shifts = 0;
    reduces = 0;
    semantic_choices = 0;
    matcher_runs = 0;
    rejects = 0;
    cache_hits = 0;
    cache_misses = 0;
    _pad0 = 0;
    _pad1 = 0;
    _pad2 = 0;
    _pad3 = 0;
    _pad4 = 0;
    _pad5 = 0;
    _pad6 = 0;
    _pad7 = 0;
  }

(* Every domain that touches the profiler gets its own shard: a counter
   record, a production-coverage table and a phase-timer table, all
   written without synchronisation from that domain only.  The shards
   are merged on read, so reports are exact once the writing domains
   have been joined (the {!Gg_codegen.Parallel} pool joins its workers
   before returning). *)
type shard = {
  c : counters;
  fired : (int, int) Hashtbl.t;
  (* phase name -> (accumulated seconds, number of calls).  Only leaf
     phases are timed, so the shares of the total are meaningful. *)
  timers : (string, float * int) Hashtbl.t;
}

let registry : shard list ref = ref []
let registry_lock = Mutex.create ()

let new_shard () =
  let s =
    { c = fresh_counters (); fired = Hashtbl.create 64; timers = Hashtbl.create 16 }
  in
  Mutex.protect registry_lock (fun () -> registry := s :: !registry);
  s

let shard_key = Domain.DLS.new_key new_shard
let shard () = Domain.DLS.get shard_key
let counters () = (shard ()).c

(* a snapshot of the registered shards; reading a shard that another
   domain is still writing yields momentarily stale integers, nothing
   worse, and all reporting paths read after the workers are joined *)
let shards () = Mutex.protect registry_lock (fun () -> !registry)

let totals () =
  let t = fresh_counters () in
  List.iter
    (fun s ->
      t.shifts <- t.shifts + s.c.shifts;
      t.reduces <- t.reduces + s.c.reduces;
      t.semantic_choices <- t.semantic_choices + s.c.semantic_choices;
      t.matcher_runs <- t.matcher_runs + s.c.matcher_runs;
      t.rejects <- t.rejects + s.c.rejects;
      t.cache_hits <- t.cache_hits + s.c.cache_hits;
      t.cache_misses <- t.cache_misses + s.c.cache_misses)
    (shards ());
  t

let enabled = ref false

(* Gates instruction provenance collection (Semantics records, per
   emitted instruction, the productions reduced since the previous
   one).  Lives here so the matcher/semantics layers need no extra
   dependency; read once per Semantics.create. *)
let provenance_enabled = ref false

(* -- production coverage ------------------------------------------------ *)

let coverage_enabled = ref false

let record_production pid =
  if !coverage_enabled then begin
    let fired = (shard ()).fired in
    Hashtbl.replace fired pid
      (1 + (try Hashtbl.find fired pid with Not_found -> 0))
  end

let production_counts () =
  let merged : (int, int) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun pid n ->
          Hashtbl.replace merged pid
            (n + (try Hashtbl.find merged pid with Not_found -> 0)))
        s.fired)
    (shards ());
  Hashtbl.fold (fun pid n acc -> (pid, n) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_coverage () =
  List.iter (fun s -> Hashtbl.reset s.fired) (shards ())

let reset () =
  List.iter
    (fun s ->
      s.c.shifts <- 0;
      s.c.reduces <- 0;
      s.c.semantic_choices <- 0;
      s.c.matcher_runs <- 0;
      s.c.rejects <- 0;
      s.c.cache_hits <- 0;
      s.c.cache_misses <- 0;
      Hashtbl.reset s.timers;
      Hashtbl.reset s.fired)
    (shards ())

let add_time name dt =
  let timers = (shard ()).timers in
  let total, calls = try Hashtbl.find timers name with Not_found -> (0., 0) in
  Hashtbl.replace timers name (total +. dt, calls + 1)

let time name f =
  if not !enabled then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> add_time name (Unix.gettimeofday () -. t0)) f
  end

let merged_timers () =
  let merged : (string, float * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun name (t, calls) ->
          let t0, c0 =
            try Hashtbl.find merged name with Not_found -> (0., 0)
          in
          Hashtbl.replace merged name (t0 +. t, c0 + calls))
        s.timers)
    (shards ());
  merged

let seconds name =
  try fst (Hashtbl.find (merged_timers ()) name) with Not_found -> 0.

let calls name =
  try snd (Hashtbl.find (merged_timers ()) name) with Not_found -> 0

let phases () =
  Hashtbl.fold (fun name (total, calls) acc -> (name, total, calls) :: acc)
    (merged_timers ()) []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

let report ppf () =
  let ps = phases () in
  let total = List.fold_left (fun acc (_, t, _) -> acc +. t) 0. ps in
  if ps <> [] then begin
    Fmt.pf ppf "phase timings:@.";
    List.iter
      (fun (name, t, calls) ->
        Fmt.pf ppf "  %-20s %8.2f ms  %5.1f%%  (%d calls)@." name (t *. 1e3)
          (if total > 0. then 100. *. t /. total else 0.)
          calls)
      ps;
    Fmt.pf ppf "  %-20s %8.2f ms@." "total" (total *. 1e3)
  end;
  let c = totals () in
  Fmt.pf ppf
    "matcher: %d runs, %d shifts, %d reduces, %d semantic choices, %d rejects@."
    c.matcher_runs c.shifts c.reduces c.semantic_choices c.rejects;
  Fmt.pf ppf "table cache: %d hits, %d misses@." c.cache_hits c.cache_misses
