type counters = {
  mutable shifts : int;
  mutable reduces : int;
  mutable semantic_choices : int;
  mutable matcher_runs : int;
  mutable rejects : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let counters =
  {
    shifts = 0;
    reduces = 0;
    semantic_choices = 0;
    matcher_runs = 0;
    rejects = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let enabled = ref false

(* -- production coverage ------------------------------------------------ *)

let coverage_enabled = ref false
let fired : (int, int) Hashtbl.t = Hashtbl.create 512

let record_production pid =
  if !coverage_enabled then
    Hashtbl.replace fired pid
      (1 + (try Hashtbl.find fired pid with Not_found -> 0))

let production_counts () =
  Hashtbl.fold (fun pid n acc -> (pid, n) :: acc) fired []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_coverage () = Hashtbl.reset fired

(* phase name -> (accumulated seconds, number of calls).  Only leaf
   phases are timed, so the shares of the total are meaningful. *)
let timers : (string, float * int) Hashtbl.t = Hashtbl.create 16

let reset () =
  counters.shifts <- 0;
  counters.reduces <- 0;
  counters.semantic_choices <- 0;
  counters.matcher_runs <- 0;
  counters.rejects <- 0;
  counters.cache_hits <- 0;
  counters.cache_misses <- 0;
  Hashtbl.reset timers;
  reset_coverage ()

let add_time name dt =
  let total, calls = try Hashtbl.find timers name with Not_found -> (0., 0) in
  Hashtbl.replace timers name (total +. dt, calls + 1)

let time name f =
  if not !enabled then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> add_time name (Unix.gettimeofday () -. t0)) f
  end

let seconds name =
  try fst (Hashtbl.find timers name) with Not_found -> 0.

let calls name = try snd (Hashtbl.find timers name) with Not_found -> 0

let phases () =
  Hashtbl.fold (fun name (total, calls) acc -> (name, total, calls) :: acc)
    timers []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

let report ppf () =
  let ps = phases () in
  let total = List.fold_left (fun acc (_, t, _) -> acc +. t) 0. ps in
  if ps <> [] then begin
    Fmt.pf ppf "phase timings:@.";
    List.iter
      (fun (name, t, calls) ->
        Fmt.pf ppf "  %-20s %8.2f ms  %5.1f%%  (%d calls)@." name (t *. 1e3)
          (if total > 0. then 100. *. t /. total else 0.)
          calls)
      ps;
    Fmt.pf ppf "  %-20s %8.2f ms@." "total" (total *. 1e3)
  end;
  Fmt.pf ppf
    "matcher: %d runs, %d shifts, %d reduces, %d semantic choices, %d rejects@."
    counters.matcher_runs counters.shifts counters.reduces
    counters.semantic_choices counters.rejects;
  Fmt.pf ppf "table cache: %d hits, %d misses@." counters.cache_hits
    counters.cache_misses
