(* Structured trace spans, exported as Chrome trace_event JSON.

   Like {!Profile}, every domain records into its own shard without
   synchronisation: a span begin/end is a timestamp read plus one list
   cons in the calling domain's buffer.  The export merges the shards;
   each shard keeps its domain's id as the Chrome thread id, so a
   [-j N] batch compile renders as N parallel tracks in
   chrome://tracing / Perfetto. *)

type phase = B | E

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts : float;  (** microseconds since the trace epoch *)
  ev_track : int;  (** domain id *)
  ev_args : (string * string) list;
      (** span arguments, e.g. the request id a server span served *)
}

type shard = { track : int; mutable events : event list }

let enabled = ref false

(* wall-clock relative to a process-start epoch: the same clock the
   phase timers use, so span durations and Profile.seconds agree *)
let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

(* the epoch as absolute unix microseconds: exported in the trace
   document so two processes' traces (a client and the daemon that
   served it) can be stitched onto one real-time axis by trace-merge *)
let epoch_us () = epoch *. 1e6

let registry : shard list ref = ref []
let registry_lock = Mutex.create ()

let new_shard () =
  let s = { track = (Domain.self () :> int); events = [] } in
  Mutex.protect registry_lock (fun () -> registry := s :: !registry);
  s

let shard_key = Domain.DLS.new_key new_shard
let shard () = Domain.DLS.get shard_key

let record ?(args = []) ph ~cat name =
  let s = shard () in
  s.events <-
    {
      ev_name = name;
      ev_cat = cat;
      ev_ph = ph;
      ev_ts = now_us ();
      ev_track = s.track;
      ev_args = args;
    }
    :: s.events

let span ?(cat = "") ?(args = []) name f =
  if not !enabled then f ()
  else begin
    record ~args B ~cat name;
    Fun.protect ~finally:(fun () -> record ~args E ~cat name) f
  end

(* one wrapper for the leaf phases so the span and the {!Profile} timer
   measure the same interval: the span nests just inside the timer, so
   their durations agree to within the two extra clock reads *)
let phase name f = Profile.time name (fun () -> span ~cat:"phase" name f)

let events () =
  (* registry is most-recent-first; shards never share a track (domain
     ids are unique for the process lifetime), so concatenating them
     keeps every track's events in record order once each is reversed *)
  let shards = Mutex.protect registry_lock (fun () -> !registry) in
  List.concat_map (fun s -> List.rev s.events) (List.rev shards)

let reset () =
  let shards = Mutex.protect registry_lock (fun () -> !registry) in
  List.iter (fun s -> s.events <- []) shards

(* -- Chrome trace_event JSON -------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let args_json args =
  if args = [] then ""
  else
    Fmt.str ",\"args\":{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) ->
              Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
            args))

let export () =
  let evs = events () in
  let b = Buffer.create 4096 in
  (* epochUs keys the whole document to absolute time; Chrome/Perfetto
     ignore unknown top-level members, trace-merge relies on it *)
  Buffer.add_string b (Printf.sprintf "{\"epochUs\":%.3f," (epoch_us ()));
  Buffer.add_string b "\"traceEvents\":[";
  let tracks = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace tracks e.ev_track ()) evs;
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b s
  in
  (* metadata rows naming each domain's track *)
  Hashtbl.iter
    (fun track () ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"domain %d\"}}"
           track track))
    tracks;
  List.iter
    (fun e ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\
            \"pid\":1,\"tid\":%d%s}"
           (json_escape e.ev_name)
           (json_escape (if e.ev_cat = "" then "span" else e.ev_cat))
           (match e.ev_ph with B -> "B" | E -> "E")
           e.ev_ts e.ev_track (args_json e.ev_args)))
    evs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write path =
  let oc = open_out path in
  output_string oc (export ());
  close_out oc

(* total seconds spent in spans named [name]; self-nested spans would
   double-count, but the instrumented phases never self-nest *)
let span_seconds name =
  let evs = events () in
  let by_track = Hashtbl.create 8 in
  let total = ref 0. in
  List.iter
    (fun e ->
      if e.ev_name = name then
        match e.ev_ph with
        | B -> Hashtbl.replace by_track e.ev_track e.ev_ts
        | E -> (
          match Hashtbl.find_opt by_track e.ev_track with
          | Some t0 ->
            Hashtbl.remove by_track e.ev_track;
            total := !total +. ((e.ev_ts -. t0) /. 1e6)
          | None -> ()))
    evs;
  !total
