(** Always-available, domain-safe phase instrumentation.

    The paper's Fig. 2 observation — "roughly one half of code
    generation time is spent pattern matching" — motivated much of its
    engineering; this module turns that one-off measurement into
    standing instrumentation.  Hot-path event counters (shifts, reduces,
    semantic tie choices, table-cache hits) are plain mutable ints and
    always on; wall-clock phase timers are gated on {!enabled} so the
    production path pays nothing when profiling is off (the [ggcc
    -profile] flag turns it on).

    Every domain writes to its own shard — counters, coverage and
    timers alike — without synchronisation, so the matcher hot loop is
    as cheap under [ggcc -j N] as single-threaded.  All reads
    ({!totals}, {!production_counts}, {!seconds}, {!phases}, {!report})
    merge the shards, which is exact once the worker domains have been
    joined (the {!Gg_codegen.Parallel} pool joins its workers before
    returning).

    Only {e leaf} phases are timed (front end, table load/build,
    transform, match, peephole), so the per-phase shares printed by
    {!report} sum to the whole. *)

type counters = {
  mutable shifts : int;
  mutable reduces : int;
  mutable semantic_choices : int;  (** ties resolved by [choose] *)
  mutable matcher_runs : int;  (** trees matched *)
  mutable rejects : int;  (** syntactic blocks raised *)
  mutable cache_hits : int;  (** packed tables loaded from disk *)
  mutable cache_misses : int;  (** packed tables rebuilt *)
  mutable _pad0 : int;
      (** the [_pad*] fields only stretch the record past a cache line,
          so per-domain shards never false-share; ignore them *)
  mutable _pad1 : int;
  mutable _pad2 : int;
  mutable _pad3 : int;
  mutable _pad4 : int;
  mutable _pad5 : int;
  mutable _pad6 : int;
  mutable _pad7 : int;
}

(** The calling domain's own event counters.  Hot paths fetch this once
    and increment the record's fields directly; the fields hold this
    domain's share, not the global totals — read those via {!totals}. *)
val counters : unit -> counters

(** The event counters summed over every domain that has recorded any. *)
val totals : unit -> counters

(** Gates the wall-clock timers (not the counters); off by default. *)
val enabled : bool ref

(** Gates instruction-provenance collection ([ggcc --explain]): when
    set, {!Gg_codegen.Semantics} attaches to every emitted instruction
    the production ids reduced since the previous one plus the current
    source line.  Read once per [Semantics.create], so toggle it before
    compiling.  Off by default. *)
val provenance_enabled : bool ref

(** {1 Production coverage}

    When {!coverage_enabled} is set, the matcher records every grammar
    production it reduces by, keyed by production id.  This is the
    instrument behind the fuzzer's grammar-coverage report (which table
    entries actually fire, after Samuelsson's example-based table
    measurement); it is off by default so the production compile path
    pays one load and branch per reduction. *)

val coverage_enabled : bool ref

(** Called by the matcher on every reduction; no-op unless
    {!coverage_enabled}.  Records into the calling domain's shard. *)
val record_production : int -> unit

(** Accumulated [(production id, reduction count)] pairs over all
    domains, sorted by id.  Cumulative since the last
    {!reset_coverage}/{!reset}. *)
val production_counts : unit -> (int * int) list

val reset_coverage : unit -> unit

(** [time name f] runs [f], accumulating its wall time under [name]
    when {!enabled}; transparent otherwise. *)
val time : string -> (unit -> 'a) -> 'a

(** Accumulated seconds / call count for a phase over all domains (0 if
    never timed). *)
val seconds : string -> float

val calls : string -> int

(** All timed phases as [(name, seconds, calls)], slowest first. *)
val phases : unit -> (string * float * int) list

(** Zero the counters, drop all timers and the coverage map, in every
    domain's shard.  Call only while no other domain is recording. *)
val reset : unit -> unit

(** Render timers (with shares of the timed total) and counters. *)
val report : Format.formatter -> unit -> unit
