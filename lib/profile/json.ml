(* A minimal JSON reader/writer for the telemetry sidecars.

   The ops tooling (mdgtool top, trace-merge) consumes documents this
   repo itself produces — admin stats, Chrome traces, flight-recorder
   dumps — so a small recursive-descent parser over the full JSON
   grammar is enough; no external dependency, no streaming.  Numbers
   are floats (Chrome trace timestamps are fractional microseconds);
   object member order is preserved so printing is stable. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* -- parsing -------------------------------------------------------------- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    c.pos <- c.pos + 1;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some got when got = ch -> c.pos <- c.pos + 1
  | got ->
    fail "expected '%c' at offset %d, got %s" ch c.pos
      (match got with Some g -> Fmt.str "'%c'" g | None -> "end of input")

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail "bad literal at offset %d" c.pos

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail "bad hex digit '%c'" ch

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some '"' -> Buffer.add_char b '"'
      | Some '\\' -> Buffer.add_char b '\\'
      | Some '/' -> Buffer.add_char b '/'
      | Some 'b' -> Buffer.add_char b '\b'
      | Some 'f' -> Buffer.add_char b '\012'
      | Some 'n' -> Buffer.add_char b '\n'
      | Some 'r' -> Buffer.add_char b '\r'
      | Some 't' -> Buffer.add_char b '\t'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.s then fail "truncated \\u escape";
        let v =
          (hex_digit c.s.[c.pos + 1] lsl 12)
          lor (hex_digit c.s.[c.pos + 2] lsl 8)
          lor (hex_digit c.s.[c.pos + 3] lsl 4)
          lor hex_digit c.s.[c.pos + 4]
        in
        c.pos <- c.pos + 4;
        (* encode the code point as UTF-8; surrogate pairs in the
           telemetry documents do not occur (we only escape control
           characters), so a lone surrogate is kept as-is *)
        if v < 0x80 then Buffer.add_char b (Char.chr v)
        else if v < 0x800 then begin
          Buffer.add_char b (Char.chr (0xc0 lor (v lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (v land 0x3f)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xe0 lor (v lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((v lsr 6) land 0x3f)));
          Buffer.add_char b (Char.chr (0x80 lor (v land 0x3f)))
        end
      | _ -> fail "bad escape at offset %d" c.pos);
      c.pos <- c.pos + 1;
      go ()
    | Some ch when Char.code ch < 0x20 -> fail "control character in string"
    | Some ch ->
      Buffer.add_char b ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    let rec go () =
      match peek c with
      | Some ch when pred ch ->
        c.pos <- c.pos + 1;
        go ()
      | _ -> ()
    in
    go ()
  in
  (match peek c with Some '-' -> c.pos <- c.pos + 1 | _ -> ());
  consume_while (function '0' .. '9' -> true | _ -> false);
  (match peek c with
  | Some '.' ->
    c.pos <- c.pos + 1;
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
    c.pos <- c.pos + 1;
    (match peek c with Some ('+' | '-') -> c.pos <- c.pos + 1 | _ -> ());
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  if c.pos = start then fail "expected a number at offset %d" start;
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some v -> v
  | None -> fail "bad number at offset %d" start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail "expected ',' or '}' at offset %d" c.pos
      in
      Obj (members [])
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail "expected ',' or ']' at offset %d" c.pos
      in
      Arr (elements [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    fail "%d trailing bytes after the document" (String.length s - c.pos);
  v

let parse_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse s

(* -- printing ------------------------------------------------------------- *)

let print_number b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else Buffer.add_string b (Printf.sprintf "%.6g" v)

let rec print_value b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v -> print_number b v
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (Trace.json_escape s);
    Buffer.add_char b '"'
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        print_value b v)
      vs;
    Buffer.add_char b ']'
  | Obj ms ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (Trace.json_escape k);
        Buffer.add_string b "\":";
        print_value b v)
      ms;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  print_value b v;
  Buffer.contents b

(* -- accessors ------------------------------------------------------------ *)

let member k = function
  | Obj ms -> List.assoc_opt k ms
  | _ -> None

let to_float = function
  | Num v -> Some v
  | _ -> None

let to_int v = Option.map int_of_float (to_float v)

let to_str = function
  | Str s -> Some s
  | _ -> None

let to_list = function
  | Arr vs -> Some vs
  | _ -> None
