(* A registry of named counters and fixed-bucket histograms over the
   compilation pipeline, sharded per domain like the {!Profile}
   counters and merged on read.

   Histograms have fixed integer bucket bounds chosen once at
   registration, so recording an observation is a short linear scan and
   an increment in the calling domain's shard — no allocation, no
   synchronisation.  This is the instrument Samuelsson-style table
   optimisation needs: the distribution of matcher work per tree, not
   just its total. *)

type histogram = {
  id : int;
  h_name : string;
  h_unit : string;
  bounds : int array;  (** strictly increasing inclusive upper bounds *)
}

let histograms : histogram list ref = ref []

let register ~unit:h_unit name bounds =
  let h = { id = List.length !histograms; h_name = name; h_unit; bounds } in
  histograms := !histograms @ [ h ];
  h

(* -- the standard instruments ------------------------------------------- *)

let tree_match_us =
  register ~unit:"us" "matcher.tree_match_us"
    [| 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 5000 |]

let tree_reductions =
  register ~unit:"reductions" "matcher.reductions_per_tree"
    [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 |]

let stack_high_water =
  register ~unit:"slots" "matcher.stack_high_water"
    [| 2; 4; 8; 16; 32; 64; 128; 256 |]

let insns_per_func =
  register ~unit:"insns" "codegen.insns_per_func"
    [| 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000 |]

let spills_per_func =
  register ~unit:"spills" "codegen.spills_per_func"
    [| 0; 1; 2; 5; 10; 20; 50 |]

(* the compile server's serving instruments: how long a request sat in
   the accept queue, and how long it took end to end (accept -> reply
   written).  Observed by Gg_server.Server from the worker domains. *)
let queue_wait_us =
  register ~unit:"us" "server.queue_wait_us"
    [| 10; 20; 50; 100; 200; 500; 1000; 2000; 5000; 10_000; 50_000 |]

let request_latency_us =
  register ~unit:"us" "server.request_latency_us"
    [| 100; 200; 500; 1000; 2000; 5000; 10_000; 20_000; 50_000; 100_000; 500_000 |]

(* -- per-domain shards --------------------------------------------------- *)

type shard = {
  buckets : int array array;  (** per histogram: |bounds|+1 (overflow last) *)
  totals : int array;
  sums : int array;
  maxs : int array;
  named : (string, int) Hashtbl.t;
}

let enabled = ref false
let registry : shard list ref = ref []
let registry_lock = Mutex.create ()

(* Slack appended to every shard array: the live prefix of the small
   hot arrays (totals/sums/maxs are ~7 ints) would otherwise pack two
   domains' counters into one cache line, and [observe] bumps them on
   every matched tree.  Only indices below the histogram count are
   ever read. *)
let shard_pad = 8

let new_shard () =
  (* the histogram set is fixed at module initialisation, before any
     shard exists, so sizing the arrays here is safe *)
  let n = List.length !histograms in
  let s =
    {
      buckets =
        Array.of_list
          (List.map
             (fun h -> Array.make (Array.length h.bounds + 1 + shard_pad) 0)
             !histograms);
      totals = Array.make (n + shard_pad) 0;
      sums = Array.make (n + shard_pad) 0;
      maxs = Array.make (n + shard_pad) 0;
      named = Hashtbl.create 16;
    }
  in
  Mutex.protect registry_lock (fun () -> registry := s :: !registry);
  s

let shard_key = Domain.DLS.new_key new_shard
let shard () = Domain.DLS.get shard_key
let shards () = Mutex.protect registry_lock (fun () -> !registry)

let bucket_index h v =
  let n = Array.length h.bounds in
  let rec go i = if i >= n || v <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let s = shard () in
  let counts = s.buckets.(h.id) in
  let i = bucket_index h v in
  counts.(i) <- counts.(i) + 1;
  s.totals.(h.id) <- s.totals.(h.id) + 1;
  s.sums.(h.id) <- s.sums.(h.id) + v;
  if v > s.maxs.(h.id) then s.maxs.(h.id) <- v

let incr ?(by = 1) name =
  let named = (shard ()).named in
  Hashtbl.replace named name
    (by + (try Hashtbl.find named name with Not_found -> 0))

(* -- merged reads -------------------------------------------------------- *)

let count h = List.fold_left (fun acc s -> acc + s.totals.(h.id)) 0 (shards ())
let sum h = List.fold_left (fun acc s -> acc + s.sums.(h.id)) 0 (shards ())
let max_value h = List.fold_left (fun acc s -> max acc s.maxs.(h.id)) 0 (shards ())

let buckets h =
  let n = Array.length h.bounds + 1 in
  let merged = Array.make n 0 in
  List.iter
    (fun s ->
      let b = s.buckets.(h.id) in
      for i = 0 to n - 1 do
        merged.(i) <- merged.(i) + b.(i)
      done)
    (shards ());
  List.init n (fun i ->
      ((if i < Array.length h.bounds then Some h.bounds.(i) else None), merged.(i)))

let name h = h.h_name
let unit_of h = h.h_unit
let all () = !histograms

let named_counters () =
  let merged : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace merged k
            (v + (try Hashtbl.find merged k with Not_found -> 0)))
        s.named)
    (shards ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset () =
  List.iter
    (fun s ->
      Array.iter (fun b -> Array.fill b 0 (Array.length b) 0) s.buckets;
      Array.fill s.totals 0 (Array.length s.totals) 0;
      Array.fill s.sums 0 (Array.length s.sums) 0;
      Array.fill s.maxs 0 (Array.length s.maxs) 0;
      Hashtbl.reset s.named)
    (shards ())

(* -- exposition ---------------------------------------------------------- *)

let mean h =
  let c = count h in
  if c = 0 then 0. else float_of_int (sum h) /. float_of_int c

(* Quantile estimate from the merged bucket counts: find the bucket the
   q-th observation falls in and interpolate linearly inside it (the
   overflow bucket's upper edge is the observed max).  Deterministic in
   the bucket counts, so a live admin snapshot and the shutdown-written
   JSON agree exactly when taken over the same observations. *)
let quantile h q =
  let total = count h in
  if total = 0 then 0.
  else begin
    let target = q *. float_of_int total in
    let bs = buckets h in
    let rec go lo before = function
      | [] -> float_of_int (max_value h)
      | (bound, n) :: rest ->
        let after = before + n in
        let hi =
          match bound with
          | Some b -> float_of_int b
          | None -> float_of_int (max_value h)
        in
        if float_of_int after >= target && n > 0 then
          lo +. ((target -. float_of_int before) /. float_of_int n *. (hi -. lo))
        else go hi after rest
    in
    Float.min (go 0. 0 bs) (float_of_int (max_value h))
  end

(* -- live snapshots ------------------------------------------------------- *)

(* The admin plane's read API: one coherent view of every counter and
   histogram, taken while worker domains keep observing.  Reading a
   shard another domain is writing yields momentarily stale integers,
   nothing worse (the arrays are fixed, the values immediate), so a
   snapshot is safe from any thread at any time; totals are exact once
   the writers have joined. *)
type histo_view = {
  hv_name : string;
  hv_unit : string;
  hv_count : int;
  hv_sum : int;
  hv_max : int;
  hv_buckets : (int option * int) list;
  hv_p50 : float;
  hv_p99 : float;
}

type view = {
  v_counters : (string * int) list;
  v_histograms : histo_view list;
}

(* the counter list every exposition shares: the Profile base counters
   first, then the named counters, in a stable order *)
let counter_list () =
  let c = Profile.totals () in
  [
    ("matcher.runs", c.Profile.matcher_runs);
    ("matcher.shifts", c.Profile.shifts);
    ("matcher.reduces", c.Profile.reduces);
    ("matcher.semantic_choices", c.Profile.semantic_choices);
    ("matcher.rejects", c.Profile.rejects);
    ("tables.cache_hits", c.Profile.cache_hits);
    ("tables.cache_misses", c.Profile.cache_misses);
  ]
  @ named_counters ()

let snapshot () =
  {
    v_counters = counter_list ();
    v_histograms =
      List.map
        (fun h ->
          {
            hv_name = h.h_name;
            hv_unit = h.h_unit;
            hv_count = count h;
            hv_sum = sum h;
            hv_max = max_value h;
            hv_buckets = buckets h;
            hv_p50 = quantile h 0.50;
            hv_p99 = quantile h 0.99;
          })
        (all ());
  }

let shift_reduce_ratio () =
  let c = Profile.totals () in
  if c.Profile.reduces = 0 then 0.
  else float_of_int c.Profile.shifts /. float_of_int c.Profile.reduces

let report ppf () =
  let c = Profile.totals () in
  Fmt.pf ppf "counters:@.";
  Fmt.pf ppf "  %-28s %10d@." "matcher.runs" c.Profile.matcher_runs;
  Fmt.pf ppf "  %-28s %10d@." "matcher.shifts" c.Profile.shifts;
  Fmt.pf ppf "  %-28s %10d@." "matcher.reduces" c.Profile.reduces;
  Fmt.pf ppf "  %-28s %10d@." "matcher.semantic_choices" c.Profile.semantic_choices;
  Fmt.pf ppf "  %-28s %10d@." "matcher.rejects" c.Profile.rejects;
  Fmt.pf ppf "  %-28s %10d@." "tables.cache_hits" c.Profile.cache_hits;
  Fmt.pf ppf "  %-28s %10d@." "tables.cache_misses" c.Profile.cache_misses;
  List.iter (fun (k, v) -> Fmt.pf ppf "  %-28s %10d@." k v) (named_counters ());
  Fmt.pf ppf "  %-28s %10.3f@." "matcher.shift_reduce_ratio"
    (shift_reduce_ratio ());
  List.iter
    (fun h ->
      let total = count h in
      Fmt.pf ppf "histogram %s (count %d, mean %.1f %s, max %d):@." h.h_name
        total (mean h) h.h_unit (max_value h);
      if total > 0 then
        List.iter
          (fun (le, n) ->
            let label =
              match le with
              | Some b -> Fmt.str "<= %d" b
              | None -> "overflow"
            in
            Fmt.pf ppf "  %-10s %10d  %5.1f%%  %s@." label n
              (100. *. float_of_int n /. float_of_int total)
              (String.make (min 60 (60 * n / total)) '#'))
          (buckets h))
    (all ())

let json_escape = Trace.json_escape

let to_json () =
  let b = Buffer.create 2048 in
  let snap = snapshot () in
  Buffer.add_string b "{\n  \"counters\": {\n";
  let base = snap.v_counters in
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": %d%s\n" (json_escape k) v
           (if i = List.length base - 1 then "" else ",")))
    base;
  Buffer.add_string b "  },\n";
  Buffer.add_string b
    (Printf.sprintf "  \"ratios\": { \"shift_reduce\": %.4f },\n"
       (shift_reduce_ratio ()));
  Buffer.add_string b "  \"phases\": [\n";
  let ps = Profile.phases () in
  List.iteri
    (fun i (pname, secs, calls) ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": \"%s\", \"seconds\": %.6f, \"calls\": %d }%s\n"
           (json_escape pname) secs calls
           (if i = List.length ps - 1 then "" else ",")))
    ps;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"histograms\": [\n";
  let hs = snap.v_histograms in
  List.iteri
    (fun i hv ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": \"%s\", \"unit\": \"%s\", \"count\": %d, \"sum\": \
            %d, \"max\": %d, \"p50\": %.3f, \"p99\": %.3f, \"buckets\": ["
           (json_escape hv.hv_name) (json_escape hv.hv_unit) hv.hv_count
           hv.hv_sum hv.hv_max hv.hv_p50 hv.hv_p99);
      let bs = hv.hv_buckets in
      List.iteri
        (fun j (le, n) ->
          Buffer.add_string b
            (Printf.sprintf "{ \"le\": %s, \"count\": %d }%s"
               (match le with Some v -> string_of_int v | None -> "null")
               n
               (if j = List.length bs - 1 then "" else ", ")))
        bs;
      Buffer.add_string b
        (Printf.sprintf "] }%s\n" (if i = List.length hs - 1 then "" else ","));
      ())
    hs;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_json path =
  let oc = open_out path in
  output_string oc (to_json ());
  close_out oc

(* Crash-surviving snapshot: write the whole document to a temp file in
   the target's directory and rename it into place, so a reader (or a
   crash) never sees a half-written JSON — the previous complete
   snapshot survives until the new one is durable. *)
let write_json_atomic path =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (match output_string oc (to_json ()) with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

(* -- Prometheus text exposition ------------------------------------------ *)

(* dots and slashes in instrument names become underscores; everything
   gets the ggcg_ namespace prefix *)
let prom_name name =
  "ggcg_"
  ^ String.map
      (fun ch ->
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch
        | _ -> '_')
      name

let to_prometheus () =
  let b = Buffer.create 2048 in
  let snap = snapshot () in
  List.iter
    (fun (k, v) ->
      let n = prom_name k in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    snap.v_counters;
  List.iter
    (fun hv ->
      let n = prom_name hv.hv_name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      (* Prometheus buckets are cumulative and end at +Inf *)
      let cum = ref 0 in
      List.iter
        (fun (le, cnt) ->
          cum := !cum + cnt;
          let label =
            match le with Some v -> string_of_int v | None -> "+Inf"
          in
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n label !cum))
        hv.hv_buckets;
      Buffer.add_string b (Printf.sprintf "%s_sum %d\n" n hv.hv_sum);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n hv.hv_count))
    snap.v_histograms;
  Buffer.contents b
