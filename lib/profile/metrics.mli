(** A registry of named counters and fixed-bucket histograms.

    The {!Profile} counters answer "how much work, in total"; the
    histograms here answer "how is it distributed" — per-tree match
    time, reductions per tree, matcher stack high-water, instructions
    per function.  That distribution is the instrument Samuelsson-style
    table optimisation (PAPERS.md) needs before table usage data can
    drive table layout.

    Observations are recorded into per-domain shards (a bounded linear
    scan plus three increments; no allocation, no synchronisation) and
    merged on read, so totals are exact under [ggcc -j N] once the
    worker domains have joined.  The standard histograms are registered
    at module initialisation; hot paths gate their observations on
    {!enabled}.

    Invariants the test suite locks in: the bucket counts of a
    histogram sum to its {!count}, [count tree_reductions] equals the
    {!Profile} [matcher_runs] counter and [sum tree_reductions] equals
    its [reduces] counter over the same instrumented run. *)

type histogram

(** Gates the hot-path observation sites (not {!observe} itself); off
    by default, set by [--metrics]/[--metrics-out]. *)
val enabled : bool ref

(** {1 The standard instruments} *)

(** Wall microseconds spent matching one tree. *)
val tree_match_us : histogram

(** Reductions performed while matching one tree. *)
val tree_reductions : histogram

(** Deepest parse-stack occupancy while matching one tree. *)
val stack_high_water : histogram

(** Instructions emitted per compiled function (before rendering). *)
val insns_per_func : histogram

(** Values spilled to frame temporaries per compiled function, under
    either register allocator. *)
val spills_per_func : histogram

(** Microseconds a compile-server request spent queued between accept
    and a worker picking it up ({!Gg_server.Server}). *)
val queue_wait_us : histogram

(** End-to-end microseconds from accepting a compile-server connection
    to its response being written. *)
val request_latency_us : histogram

(** {1 Recording} *)

(** [observe h v] adds observation [v] to [h] in the calling domain's
    shard.  Values beyond the last bound land in the overflow bucket. *)
val observe : histogram -> int -> unit

(** [incr ?by name] bumps the named counter in the calling domain's
    shard. *)
val incr : ?by:int -> string -> unit

(** {1 Merged reads} *)

val count : histogram -> int
val sum : histogram -> int
val max_value : histogram -> int

(** [(upper bound, count)] per bucket, in bound order; [None] is the
    overflow bucket.  Counts sum to {!count}. *)
val buckets : histogram -> (int option * int) list

val name : histogram -> string
val unit_of : histogram -> string
val all : unit -> histogram list
val named_counters : unit -> (string * int) list

(** Shifts per reduce over the merged {!Profile} counters; [0.] when
    nothing has been matched (never a division by zero). *)
val shift_reduce_ratio : unit -> float

(** Zero every histogram and named counter in every shard.  Call only
    while no other domain is recording. *)
val reset : unit -> unit

(** {1 Exposition} *)

(** Text dump: counters, the shift/reduce ratio, and one bar-rendered
    table per histogram ([ggcc --metrics]). *)
val report : Format.formatter -> unit -> unit

(** The machine-readable sidecar ([ggcc --metrics-out]): counters,
    phase timings and histograms as one JSON document, consumed by the
    bench harness. *)
val to_json : unit -> string

val write_json : string -> unit
