(** A registry of named counters and fixed-bucket histograms.

    The {!Profile} counters answer "how much work, in total"; the
    histograms here answer "how is it distributed" — per-tree match
    time, reductions per tree, matcher stack high-water, instructions
    per function.  That distribution is the instrument Samuelsson-style
    table optimisation (PAPERS.md) needs before table usage data can
    drive table layout.

    Observations are recorded into per-domain shards (a bounded linear
    scan plus three increments; no allocation, no synchronisation) and
    merged on read, so totals are exact under [ggcc -j N] once the
    worker domains have joined.  The standard histograms are registered
    at module initialisation; hot paths gate their observations on
    {!enabled}.

    Invariants the test suite locks in: the bucket counts of a
    histogram sum to its {!count}, [count tree_reductions] equals the
    {!Profile} [matcher_runs] counter and [sum tree_reductions] equals
    its [reduces] counter over the same instrumented run. *)

type histogram

(** Gates the hot-path observation sites (not {!observe} itself); off
    by default, set by [--metrics]/[--metrics-out]. *)
val enabled : bool ref

(** {1 The standard instruments} *)

(** Wall microseconds spent matching one tree. *)
val tree_match_us : histogram

(** Reductions performed while matching one tree. *)
val tree_reductions : histogram

(** Deepest parse-stack occupancy while matching one tree. *)
val stack_high_water : histogram

(** Instructions emitted per compiled function (before rendering). *)
val insns_per_func : histogram

(** Values spilled to frame temporaries per compiled function, under
    either register allocator. *)
val spills_per_func : histogram

(** Microseconds a compile-server request spent queued between accept
    and a worker picking it up ({!Gg_server.Server}). *)
val queue_wait_us : histogram

(** End-to-end microseconds from accepting a compile-server connection
    to its response being written. *)
val request_latency_us : histogram

(** {1 Recording} *)

(** [observe h v] adds observation [v] to [h] in the calling domain's
    shard.  Values beyond the last bound land in the overflow bucket. *)
val observe : histogram -> int -> unit

(** [incr ?by name] bumps the named counter in the calling domain's
    shard. *)
val incr : ?by:int -> string -> unit

(** {1 Merged reads} *)

val count : histogram -> int
val sum : histogram -> int
val max_value : histogram -> int

(** [(upper bound, count)] per bucket, in bound order; [None] is the
    overflow bucket.  Counts sum to {!count}. *)
val buckets : histogram -> (int option * int) list

val name : histogram -> string
val unit_of : histogram -> string
val all : unit -> histogram list
val named_counters : unit -> (string * int) list

(** Shifts per reduce over the merged {!Profile} counters; [0.] when
    nothing has been matched (never a division by zero). *)
val shift_reduce_ratio : unit -> float

(** [quantile h q] estimates the [q]-quantile (in [h]'s unit) from the
    merged bucket counts by linear interpolation inside the bucket the
    [q]-th observation falls in; the overflow bucket's upper edge is
    the observed max.  [0.] on an empty histogram.  Deterministic in
    the bucket counts, so a live snapshot and a shutdown sidecar taken
    over the same observations agree exactly. *)
val quantile : histogram -> float -> float

(** {1 Live snapshots — the admin plane's read API} *)

type histo_view = {
  hv_name : string;
  hv_unit : string;
  hv_count : int;
  hv_sum : int;
  hv_max : int;
  hv_buckets : (int option * int) list;
  hv_p50 : float;
  hv_p99 : float;
}

type view = {
  v_counters : (string * int) list;
      (** the {!Profile} base counters followed by the named counters *)
  v_histograms : histo_view list;
}

(** One coherent view of every counter and histogram, safe to take from
    any thread while worker domains keep observing (concurrent reads
    see momentarily stale integers, nothing worse); exact once the
    writing domains have joined.  This is what [ggccd]'s admin [stats]
    endpoint serves without restarting the daemon. *)
val snapshot : unit -> view

(** Zero every histogram and named counter in every shard.  Call only
    while no other domain is recording. *)
val reset : unit -> unit

(** {1 Exposition} *)

(** Text dump: counters, the shift/reduce ratio, and one bar-rendered
    table per histogram ([ggcc --metrics]). *)
val report : Format.formatter -> unit -> unit

(** The machine-readable sidecar ([ggcc --metrics-out]): counters,
    phase timings and histograms as one JSON document, consumed by the
    bench harness. *)
val to_json : unit -> string

val write_json : string -> unit

(** Like {!write_json} but crash-safe: the document is written to a
    [.tmp] sibling and renamed into place, so a reader (or a daemon
    killed mid-write) never sees a torn snapshot.  This is what
    [ggccd]'s periodic snapshot loop uses. *)
val write_json_atomic : string -> unit

(** Prometheus text exposition (version 0.0.4) of the same view
    {!to_json} serves: counters as [counter], histograms as native
    Prometheus histograms with cumulative [le] buckets, [_sum] and
    [_count].  Metric names are prefixed [ggcg_] and sanitised. *)
val to_prometheus : unit -> string
