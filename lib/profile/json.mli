(** A minimal JSON reader/writer for the telemetry sidecars.

    The ops tooling ([mdgtool top], [mdgtool trace-merge]) and the
    test suite consume JSON this repository itself produces — admin
    [stats] snapshots, Chrome traces, flight-recorder dumps — so this
    is a small, complete, dependency-free parser and printer, not a
    streaming library.  Numbers are [float]s (Chrome trace timestamps
    are fractional microseconds); object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Raises {!Parse_error} on any malformed input, including trailing
    bytes after the document. *)
val parse : string -> t

val parse_file : string -> t

(** Compact single-line rendering; integral floats print without a
    decimal point so round-tripped counters stay readable. *)
val to_string : t -> string

(** {1 Accessors} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
