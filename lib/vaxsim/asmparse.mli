open Import

(** Parser for the VAX assembly subset the code generators emit.

    The parser inverts {!Gg_ir.Insn.assembly} and the addressing-mode
    format table, recovering structured instructions so the simulator
    and the cost model operate on the same representation the compiler
    produced.  Local labels ([L7]) are scoped to their function; global
    symbols come from [.globl] and [.comm]. *)

type item =
  | Globl of string
  | Comm of string * int  (** name, size in bytes *)
  | Deflabel of string  (** function entry or other global label *)
  | Locallabel of Label.t
  | Instruction of Insn.t

type program = {
  items : item list;
  text : string;  (** original source, for error reporting *)
}

exception Parse_error of int * string  (** line number, message *)

val parse : string -> program

(** Parse a single operand (exposed for tests), e.g. ["-4(fp)[r6]"]. *)
val parse_operand : string -> Mode.t
