open Import

type outcome = Gg_ir.Simout.t = {
  return_value : Interp.value;
  globals : (string * Interp.value) list;
  output : string list;
  insns_executed : int;
  cycles : int;
}

exception Sim_error of string

let error fmt = Fmt.kstr (fun s -> raise (Sim_error s)) fmt

let mem_size = 1 lsl 20
let globals_base = 0x100

(* -- loaded program ------------------------------------------------------- *)

type image = {
  code : Insn.t array;
  func_of_pc : string array;  (** enclosing function of each instruction *)
  entries : (string, int) Hashtbl.t;  (** global label -> code index *)
  labels : (string * Label.t, int) Hashtbl.t;  (** (function, L) -> index *)
  symbols : (string, int) Hashtbl.t;  (** global name -> address *)
}

let load (p : Asmparse.program) =
  let code = ref [] in
  let n = ref 0 in
  let func_of = ref [] in
  let entries = Hashtbl.create 16 in
  let labels = Hashtbl.create 64 in
  let symbols = Hashtbl.create 16 in
  let current = ref "?" in
  let next_addr = ref globals_base in
  List.iter
    (fun (item : Asmparse.item) ->
      match item with
      | Asmparse.Globl _ -> ()
      | Asmparse.Comm (name, size) ->
        let align =
          if size mod 8 = 0 then 8
          else if size mod 4 = 0 then 4
          else if size mod 2 = 0 then 2
          else 1
        in
        next_addr := (!next_addr + align - 1) / align * align;
        Hashtbl.replace symbols name !next_addr;
        next_addr := !next_addr + size
      | Asmparse.Deflabel name ->
        current := name;
        Hashtbl.replace entries name !n
      | Asmparse.Locallabel l -> Hashtbl.replace labels (!current, l) !n
      | Asmparse.Instruction i ->
        code := i :: !code;
        func_of := !current :: !func_of;
        incr n)
    p.Asmparse.items;
  {
    code = Array.of_list (List.rev !code);
    func_of_pc = Array.of_list (List.rev !func_of);
    entries;
    labels;
    symbols;
  }

(* -- machine state -------------------------------------------------------- *)

type state = {
  image : image;
  mem : Bytes.t;
  regs : int64 array;  (** 32-bit values, sign-extended into int64 *)
  mutable flag_n : bool;
  mutable flag_z : bool;
  mutable flag_c : bool;
  out : Buffer.t;
  mutable pc : int;
  mutable depth : int;  (** call depth; ret at depth 0 stops execution *)
  mutable steps : int;
  mutable cycles : int;
  max_steps : int;
}

let wrap32 n = Int64.of_int32 (Int64.to_int32 n)

let reg_get st r = st.regs.(r)
let reg_set st r v = st.regs.(r) <- wrap32 v

let check_addr st addr size =
  if addr < 0 || addr + size > Bytes.length st.mem then
    error "memory access out of range: %d" addr

let load_bytes st addr size =
  check_addr st addr size;
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (Int64.logor (Int64.shift_left acc 8)
           (Int64.of_int (Char.code (Bytes.get st.mem (addr + i)))))
  in
  go (size - 1) 0L

let store_bytes st addr size v =
  check_addr st addr size;
  for i = 0 to size - 1 do
    Bytes.set st.mem (addr + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let push_long st v =
  reg_set st Regconv.sp (Int64.sub (reg_get st Regconv.sp) 4L);
  store_bytes st (Int64.to_int (reg_get st Regconv.sp)) 4 v

let pop_long st =
  let v = load_bytes st (Int64.to_int (reg_get st Regconv.sp)) 4 in
  reg_set st Regconv.sp (Int64.add (reg_get st Regconv.sp) 4L);
  Tree.wrap Dtype.Long v

(* -- operand access ------------------------------------------------------- *)

(* widths are 1, 2, 4 or 8 bytes; [fp_kind] distinguishes float access *)
type access = { width : int; float_ : bool }

let acc_of_type ty = { width = Dtype.size ty; float_ = Dtype.is_float ty }

let symbol_addr st s =
  match Hashtbl.find_opt st.image.symbols s with
  | Some a -> a
  | None -> error "undefined symbol %s" s

(* effective address of a memory operand; performs auto side effects *)
let effective_addr st (m : Mode.mem) access =
  match m.Mode.auto with
  | Some `Inc ->
    let base = match m.Mode.base with Some b -> b | None -> error "auto without base" in
    let addr = Int64.to_int (reg_get st base) in
    reg_set st base (Int64.add (reg_get st base) (Int64.of_int access.width));
    addr
  | Some `Dec ->
    let base = match m.Mode.base with Some b -> b | None -> error "auto without base" in
    reg_set st base (Int64.sub (reg_get st base) (Int64.of_int access.width));
    Int64.to_int (reg_get st base)
  | None ->
    let base =
      match m.Mode.base with
      | Some b -> Int64.to_int (reg_get st b)
      | None -> 0
    in
    let sym = match m.Mode.sym with Some s -> symbol_addr st s | None -> 0 in
    let index =
      match m.Mode.index with
      | Some rx -> Int64.to_int (reg_get st rx) * access.width
      | None -> 0
    in
    base + sym + Int64.to_int m.Mode.disp + index

let sign_extend width v =
  match width with
  | 1 -> Tree.wrap Dtype.Byte v
  | 2 -> Tree.wrap Dtype.Word v
  | 4 -> Tree.wrap Dtype.Long v
  | 8 -> v
  | _ -> assert false

(* read an integer operand *)
let read_int st (operand : Mode.t) access =
  match operand with
  | Mode.Imm n -> sign_extend access.width n
  | Mode.Fimm _ -> error "float literal in integer context"
  | Mode.Reg r ->
    if access.width = 8 then
      (* register pair rn/rn+1: rn low half, rn+1 high half *)
      Int64.logor
        (Int64.logand (reg_get st r) 0xffffffffL)
        (Int64.shift_left (reg_get st (r + 1)) 32)
    else sign_extend access.width (reg_get st r)
  | Mode.Mem m ->
    sign_extend access.width
      (load_bytes st (effective_addr st m access) access.width)

let write_int st (operand : Mode.t) access v =
  match operand with
  | Mode.Imm _ | Mode.Fimm _ -> error "store to an immediate"
  | Mode.Reg r ->
    if access.width = 8 then begin
      reg_set st r (Int64.logand v 0xffffffffL);
      reg_set st (r + 1) (Int64.shift_right v 32)
    end
    else reg_set st r (sign_extend access.width v)
  | Mode.Mem m -> store_bytes st (effective_addr st m access) access.width v

let read_float st (operand : Mode.t) access =
  match operand with
  | Mode.Fimm f -> f
  | Mode.Imm n -> Int64.to_float n
  | Mode.Reg _ | Mode.Mem _ ->
    let bits = read_int st operand access in
    if access.width = 4 then Int32.float_of_bits (Int64.to_int32 bits)
    else Int64.float_of_bits bits

let write_float st operand access f =
  let bits =
    if access.width = 4 then Int64.of_int32 (Int32.bits_of_float f)
    else Int64.bits_of_float f
  in
  write_int st operand access bits

(* -- flags ----------------------------------------------------------------- *)

let set_flags_int st ~width v =
  let v = sign_extend width v in
  st.flag_z <- Int64.equal v 0L;
  st.flag_n <- Int64.compare v 0L < 0;
  st.flag_c <- false

let set_flags_float st f =
  st.flag_z <- f = 0.0;
  st.flag_n <- f < 0.0;
  st.flag_c <- false

let unsigned_of_width width n =
  match width with
  | 1 -> Int64.logand n 0xffL
  | 2 -> Int64.logand n 0xffffL
  | 4 -> Int64.logand n 0xffffffffL
  | _ -> n

let set_flags_cmp_int st ~width a b =
  st.flag_z <- Int64.equal a b;
  st.flag_n <- Int64.compare a b < 0;
  st.flag_c <-
    Int64.unsigned_compare (unsigned_of_width width a) (unsigned_of_width width b)
    < 0

let set_flags_cmp_float st a b =
  st.flag_z <- a = b;
  st.flag_n <- a < b;
  st.flag_c <- false

let branch_taken st cc =
  match cc with
  | "jbr" -> true
  | "jeql" -> st.flag_z
  | "jneq" -> not st.flag_z
  | "jlss" -> st.flag_n
  | "jleq" -> st.flag_n || st.flag_z
  | "jgtr" -> not (st.flag_n || st.flag_z)
  | "jgeq" -> not st.flag_n
  | "jlssu" -> st.flag_c
  | "jlequ" -> st.flag_c || st.flag_z
  | "jgtru" -> not (st.flag_c || st.flag_z)
  | "jgequ" -> not st.flag_c
  | _ -> error "unknown branch %s" cc

(* -- instruction execution ------------------------------------------------- *)

let type_of_char = function
  | 'b' -> Dtype.Byte
  | 'w' -> Dtype.Word
  | 'l' -> Dtype.Long
  | 'f' -> Dtype.Flt
  | 'd' -> Dtype.Dbl
  | c -> error "unknown type suffix %c" c

(* saved state layout pushed by calls (beyond the argument list):
   argc, return pc, saved fp, saved ap, saved r2..r11 *)
let do_call st fname argc ret_pc =
  match fname with
  | "print" ->
    let sp = Int64.to_int (reg_get st Regconv.sp) in
    let line =
      if argc = 2 then
        Fmt.str "%g" (Int64.float_of_bits (load_bytes st sp 8))
      else Fmt.str "%Ld" (Tree.wrap Dtype.Long (load_bytes st sp 4))
    in
    Buffer.add_string st.out (line ^ "\n");
    reg_set st Regconv.sp
      (Int64.add (reg_get st Regconv.sp) (Int64.of_int (4 * argc)));
    st.pc <- ret_pc
  | "__udivl" | "__umodl" ->
    let sp = Int64.to_int (reg_get st Regconv.sp) in
    let a = unsigned_of_width 4 (load_bytes st sp 4) in
    let b = unsigned_of_width 4 (load_bytes st (sp + 4) 4) in
    if Int64.equal b 0L then error "unsigned division by zero";
    let r =
      if fname = "__udivl" then Int64.unsigned_div a b
      else Int64.unsigned_rem a b
    in
    reg_set st Regconv.r0 r;
    reg_set st Regconv.sp
      (Int64.add (reg_get st Regconv.sp) (Int64.of_int (4 * argc)));
    st.pc <- ret_pc
  | _ -> (
    match Hashtbl.find_opt st.image.entries fname with
    | None -> error "call to undefined function %s" fname
    | Some target ->
      push_long st (Int64.of_int argc);
      push_long st (Int64.of_int ret_pc);
      push_long st (reg_get st Regconv.fp);
      push_long st (reg_get st Regconv.ap);
      for r = 2 to 11 do
        push_long st (reg_get st r)
      done;
      (* ap points at the argument count; 4(ap) is the first argument *)
      reg_set st Regconv.ap
        (Int64.add (reg_get st Regconv.sp) (Int64.of_int (4 * 13)));
      reg_set st Regconv.fp (reg_get st Regconv.sp);
      st.depth <- st.depth + 1;
      st.pc <- target)

let do_ret st =
  reg_set st Regconv.sp (reg_get st Regconv.fp);
  for r = 11 downto 2 do
    reg_set st r (pop_long st)
  done;
  let ap = pop_long st in
  let fp = pop_long st in
  let ret_pc = pop_long st in
  let argc = pop_long st in
  reg_set st Regconv.ap ap;
  reg_set st Regconv.fp fp;
  reg_set st Regconv.sp
    (Int64.add (reg_get st Regconv.sp) (Int64.mul 4L argc));
  st.depth <- st.depth - 1;
  st.pc <- Int64.to_int ret_pc

let exec_general st mnemonic operands =
  let n = String.length mnemonic in
  let prefix k = if n >= k then String.sub mnemonic 0 k else "" in
  let op2 f_int f_float src dst tchar =
    let ty = type_of_char tchar in
    let a = acc_of_type ty in
    if Dtype.is_float ty then begin
      let v = f_float (read_float st src a) in
      write_float st dst a v;
      set_flags_float st v
    end
    else begin
      let v = f_int (read_int st src a) in
      let v = sign_extend a.width v in
      write_int st dst a v;
      set_flags_int st ~width:a.width v
    end
  in
  let arith f_int f_float tchar =
    (* 2-operand: dst := dst OP src; 3-operand: dst := a OP b.
       VAX operand order: add2 src,dst / add3 a,b,dst, where for
       sub/div the instruction computes (second OP first). *)
    let ty = type_of_char tchar in
    let a = acc_of_type ty in
    match operands with
    | [ src; dst ] ->
      if Dtype.is_float ty then begin
        let v = f_float (read_float st dst a) (read_float st src a) in
        write_float st dst a v;
        set_flags_float st v
      end
      else begin
        let v =
          sign_extend a.width (f_int (read_int st dst a) (read_int st src a))
        in
        write_int st dst a v;
        set_flags_int st ~width:a.width v
      end
    | [ x; y; dst ] ->
      if Dtype.is_float ty then begin
        let v = f_float (read_float st y a) (read_float st x a) in
        write_float st dst a v;
        set_flags_float st v
      end
      else begin
        let v =
          sign_extend a.width (f_int (read_int st y a) (read_int st x a))
        in
        write_int st dst a v;
        set_flags_int st ~width:a.width v
      end
    | _ -> error "%s: bad operand count" mnemonic
  in
  match () with
  | _ when prefix 3 = "mov" && n = 4 -> (
    match operands with
    | [ src; dst ] ->
      op2 (fun v -> v) (fun v -> v) src dst mnemonic.[3]
    | _ -> error "mov: bad operands")
  | _ when prefix 4 = "mova" -> (
    (* address of the operand, scaled for its datatype *)
    match operands with
    | [ Mode.Mem m; dst ] ->
      let ty = type_of_char mnemonic.[4] in
      let addr = effective_addr st m (acc_of_type ty) in
      write_int st dst (acc_of_type Dtype.Long) (Int64.of_int addr);
      set_flags_int st ~width:4 (Int64.of_int addr)
    | _ -> error "mova: bad operands")
  | _ when prefix 3 = "clr" -> (
    match operands with
    | [ dst ] ->
      let ty = type_of_char mnemonic.[3] in
      let a = acc_of_type ty in
      if Dtype.is_float ty then write_float st dst a 0.0
      else write_int st dst a 0L;
      st.flag_z <- true;
      st.flag_n <- false;
      st.flag_c <- false
    | _ -> error "clr: bad operands")
  | _ when prefix 4 = "push" -> (
    match operands with
    | [ src ] ->
      let v = read_int st src (acc_of_type Dtype.Long) in
      push_long st v;
      set_flags_int st ~width:4 v
    | _ -> error "push: bad operands")
  | _ when prefix 4 = "mneg" -> (
    match operands with
    | [ src; dst ] -> op2 Int64.neg (fun f -> -.f) src dst mnemonic.[4]
    | _ -> error "mneg: bad operands")
  | _ when prefix 4 = "mcom" -> (
    match operands with
    | [ src; dst ] ->
      op2 Int64.lognot (fun _ -> error "mcom on float") src dst mnemonic.[4]
    | _ -> error "mcom: bad operands")
  | _ when prefix 3 = "inc" -> (
    match operands with
    | [ dst ] ->
      let ty = type_of_char mnemonic.[3] in
      let a = acc_of_type ty in
      let v = sign_extend a.width (Int64.add (read_int st dst a) 1L) in
      write_int st dst a v;
      set_flags_int st ~width:a.width v
    | _ -> error "inc: bad operands")
  | _ when prefix 3 = "dec" -> (
    match operands with
    | [ dst ] ->
      let ty = type_of_char mnemonic.[3] in
      let a = acc_of_type ty in
      let v = sign_extend a.width (Int64.sub (read_int st dst a) 1L) in
      write_int st dst a v;
      set_flags_int st ~width:a.width v
    | _ -> error "dec: bad operands")
  | _ when prefix 3 = "add" -> arith Int64.add ( +. ) mnemonic.[3]
  | _ when prefix 3 = "sub" -> arith Int64.sub ( -. ) mnemonic.[3]
  | _ when prefix 3 = "mul" -> arith Int64.mul ( *. ) mnemonic.[3]
  | _ when prefix 3 = "div" ->
    arith
      (fun a b ->
        if Int64.equal b 0L then error "division by zero";
        Int64.div a b)
      (fun a b -> a /. b)
      mnemonic.[3]
  | _ when prefix 3 = "bis" ->
    arith Int64.logor (fun _ _ -> error "bis on float") mnemonic.[3]
  | _ when prefix 3 = "xor" ->
    arith Int64.logxor (fun _ _ -> error "xor on float") mnemonic.[3]
  | _ when prefix 3 = "bic" ->
    (* dst = second AND NOT first; arith applies (second OP first) *)
    arith
      (fun b a -> Int64.logand b (Int64.lognot a))
      (fun _ _ -> error "bic on float")
      mnemonic.[3]
  | _ when mnemonic = "ashl" -> (
    match operands with
    | [ cnt; src; dst ] ->
      let a4 = acc_of_type Dtype.Long in
      let c = Int64.to_int (read_int st cnt a4) in
      let v = read_int st src a4 in
      let r =
        if c >= 0 then Int64.shift_left v (min c 63)
        else Int64.shift_right v (min (-c) 63)
      in
      let r = sign_extend 4 r in
      write_int st dst a4 r;
      set_flags_int st ~width:4 r
    | _ -> error "ashl: bad operands")
  | _ when prefix 3 = "cvt" && n = 5 -> (
    match operands with
    | [ src; dst ] ->
      let fty = type_of_char mnemonic.[3] in
      let tty = type_of_char mnemonic.[4] in
      let fa = acc_of_type fty in
      let ta = acc_of_type tty in
      if Dtype.is_float fty && Dtype.is_float tty then begin
        let v = read_float st src fa in
        write_float st dst ta v;
        set_flags_float st v
      end
      else if Dtype.is_float fty then begin
        let v = Int64.of_float (read_float st src fa) in
        let v = sign_extend ta.width v in
        write_int st dst ta v;
        set_flags_int st ~width:ta.width v
      end
      else if Dtype.is_float tty then begin
        let v = Int64.to_float (read_int st src fa) in
        write_float st dst ta v;
        set_flags_float st v
      end
      else begin
        let v = sign_extend ta.width (read_int st src fa) in
        write_int st dst ta v;
        set_flags_int st ~width:ta.width v
      end
    | _ -> error "cvt: bad operands")
  | _ when prefix 3 = "tst" -> (
    match operands with
    | [ src ] ->
      let ty = type_of_char mnemonic.[3] in
      let a = acc_of_type ty in
      if Dtype.is_float ty then set_flags_cmp_float st (read_float st src a) 0.0
      else set_flags_cmp_int st ~width:a.width (read_int st src a) 0L
    | _ -> error "tst: bad operands")
  | _ when prefix 3 = "cmp" -> (
    match operands with
    | [ x; y ] ->
      let ty = type_of_char mnemonic.[3] in
      let a = acc_of_type ty in
      if Dtype.is_float ty then
        set_flags_cmp_float st (read_float st x a) (read_float st y a)
      else
        set_flags_cmp_int st ~width:a.width (read_int st x a)
          (read_int st y a)
    | _ -> error "cmp: bad operands")
  | _ -> error "unimplemented instruction %s" mnemonic

let step st =
  if st.steps >= st.max_steps then
    error "step budget exceeded (infinite loop?)";
  st.steps <- st.steps + 1;
  let insn = st.image.code.(st.pc) in
  st.cycles <- st.cycles + Insn.cycles insn;
  let next = st.pc + 1 in
  match insn with
  | Insn.Lab _ | Insn.Comment _ -> st.pc <- next
  | Insn.Insn (m, ops) ->
    exec_general st m ops;
    st.pc <- next
  | Insn.Branch (cc, l) ->
    if branch_taken st cc then begin
      let f = st.image.func_of_pc.(st.pc) in
      match Hashtbl.find_opt st.image.labels (f, l) with
      | Some target -> st.pc <- target
      | None -> error "undefined label L%d in %s" l f
    end
    else st.pc <- next
  | Insn.Call (f, argc) -> do_call st f argc next
  | Insn.Ret -> do_ret st

let run ?(max_steps = 2_000_000) ?(global_types = []) ?(ret_type = Dtype.Long)
    (p : Asmparse.program) ~entry args =
  let image = load p in
  let st =
    {
      image;
      mem = Bytes.make mem_size '\000';
      regs = Array.make 16 0L;
      flag_n = false;
      flag_z = false;
      flag_c = false;
      out = Buffer.create 256;
      pc = 0;
      depth = 0;
      steps = 0;
      cycles = 0;
      max_steps;
    }
  in
  reg_set st Regconv.sp (Int64.of_int mem_size);
  reg_set st Regconv.fp (Int64.of_int mem_size);
  (* push the entry arguments like a caller would *)
  let slots = ref 0 in
  List.iter
    (fun v ->
      match v with
      | Interp.VInt n ->
        push_long st n;
        incr slots
      | Interp.VFloat f ->
        let bits = Int64.bits_of_float f in
        push_long st (Int64.shift_right_logical bits 32);
        push_long st bits;
        slots := !slots + 2)
    (List.rev args);
  do_call st entry !slots (-1);
  if st.pc < 0 then error "entry %s is a builtin" entry;
  st.depth <- 1;
  while st.depth > 0 && st.pc >= 0 do
    step st
  done;
  let read_global (name, ty, total) =
    if total = Dtype.size ty then begin
      match Hashtbl.find_opt image.symbols name with
      | None -> None
      | Some addr ->
        let a = acc_of_type ty in
        if Dtype.is_float ty then
          Some
            ( name,
              Interp.VFloat
                (if a.width = 4 then
                   Int32.float_of_bits (Int64.to_int32 (load_bytes st addr 4))
                 else Int64.float_of_bits (load_bytes st addr 8)) )
        else
          Some (name, Interp.VInt (sign_extend a.width (load_bytes st addr a.width)))
    end
    else None
  in
  let return_value =
    let a = acc_of_type ret_type in
    if Dtype.is_float ret_type then
      Interp.VFloat (read_float st (Mode.Reg Regconv.r0) a)
    else Interp.VInt (read_int st (Mode.Reg Regconv.r0) a)
  in
  {
    return_value;
    globals = List.filter_map read_global global_types;
    output =
      Buffer.contents st.out |> String.split_on_char '\n'
      |> List.filter (fun s -> s <> "");
    insns_executed = st.steps;
    cycles = st.cycles;
  }

let run_text ?max_steps ?global_types ?ret_type text ~entry args =
  run ?max_steps ?global_types ?ret_type (Asmparse.parse text) ~entry args
