open Import

(** The VAX-subset simulator.

    Executes parsed assembly over a flat byte-addressable memory with
    the same calling convention, arithmetic semantics and observable
    state as {!Gg_ir.Interp} — the two are the two ends of the
    differential-testing harness.  Registers are 32 bits wide; doubles
    occupy register pairs rn/rn+1, as on the real machine.

    Builtins: [print] (one long or double argument, appended to the
    output), and [__udivl]/[__umodl], the unsigned division support
    routines the idiom recogniser calls, which modify no registers
    (paper section 5.3.2). *)

type outcome = Gg_ir.Simout.t = {
  return_value : Interp.value;
  globals : (string * Interp.value) list;
  output : string list;
  insns_executed : int;
  cycles : int;  (** accumulated {!Gg_ir.Insn.cycles} cost *)
}

exception Sim_error of string

(** [run program ~entry args] loads and executes.  [global_types] gives
    the element type of each global so scalar finals can be reported
    (pass the IR program's globals).  [ret_type] tells how to read r0
    at the end. *)
val run :
  ?max_steps:int ->
  ?global_types:(string * Dtype.t * int) list ->
  ?ret_type:Dtype.t ->
  Asmparse.program ->
  entry:string ->
  Interp.value list ->
  outcome

(** Parse and run assembly text in one step. *)
val run_text :
  ?max_steps:int ->
  ?global_types:(string * Dtype.t * int) list ->
  ?ret_type:Dtype.t ->
  string ->
  entry:string ->
  Interp.value list ->
  outcome
