open Import
open Ast

exception Semantic_error of string

let error fmt = Fmt.kstr (fun s -> raise (Semantic_error s)) fmt

let rec sizeof = function
  | Tchar -> 1
  | Tshort -> 2
  | Tint | Tuint | Tptr _ -> 4
  | Tfloat -> 4
  | Tdouble -> 8
  | Tarray (t, n) -> sizeof t * n

let dtype_of_cty = function
  | Tchar -> Dtype.Byte
  | Tshort -> Dtype.Word
  | Tint | Tuint | Tptr _ -> Dtype.Long
  | Tfloat -> Dtype.Flt
  | Tdouble -> Dtype.Dbl
  | Tarray _ -> Dtype.Long (* decays; the element type is used at access *)

(* the type of a C value once loaded into an expression *)
let promoted = function
  | Tchar | Tshort | Tint -> Tint
  | Tuint -> Tuint
  | Tfloat | Tdouble -> Tdouble
  | Tptr t -> Tptr t
  | Tarray (t, _) -> Tptr t

let is_integer_cty = function
  | Tint | Tuint | Tchar | Tshort -> true
  | Tfloat | Tdouble | Tptr _ | Tarray _ -> false

let is_float_cty = function Tfloat | Tdouble -> true | _ -> false

(* -- environment ------------------------------------------------------------- *)

type var =
  | Vglobal of cty
  | Vlocal of cty * int  (** fp offset (positive; stored at -offset) *)
  | Vparam of cty * int  (** ap offset *)
  | Vregister of cty * int  (** register variable in a dedicated register *)

type env = {
  vars : (string, var) Hashtbl.t;
  funcs : (string, cty * cty list) Hashtbl.t;
  mutable next_temp : int;
}

(* -- helpers ------------------------------------------------------------------- *)

let long_const n = Tree.Const (Dtype.Long, n)

let fp_address off =
  (* canonical shape: Plus Const Dreg, as in the paper's Appendix *)
  Tree.Binop
    (Op.Plus, Dtype.Long, long_const (Int64.of_int (-off)),
     Tree.Dreg (Dtype.Long, Regconv.fp))

let ap_address off =
  Tree.Binop
    (Op.Plus, Dtype.Long, long_const (Int64.of_int off),
     Tree.Dreg (Dtype.Long, Regconv.ap))

(* convert a tree of IR type [from] to IR type [to_] *)
let convert ~to_ tree =
  let from = Tree.dtype tree in
  if Dtype.equal from to_ then tree
  else
    match tree with
    | Tree.Const (_, n) when Dtype.is_integer to_ ->
      (* retype integer literals directly *)
      Tree.const to_ n
    | Tree.Const (_, n) -> Tree.Fconst (to_, Int64.to_float n)
    | Tree.Fconst (_, f) when Dtype.is_float to_ -> Tree.Fconst (to_, f)
    | _ -> Tree.Conv (to_, from, tree)

(* the common type of a binary operation, classic C rules *)
let unify a b =
  match (a, b) with
  | Tdouble, _ | _, Tdouble | Tfloat, _ | _, Tfloat -> Tdouble
  | Tptr t, _ -> Tptr t
  | _, Tptr t -> Tptr t
  | Tuint, _ | _, Tuint -> Tuint
  | _ -> Tint

(* -- expression lowering ------------------------------------------------------ *)

(* a checked expression: its C type and the IR tree of its value *)
type value = { cty : cty; tree : Tree.t }

let fresh_temp env ty =
  let i = env.next_temp in
  env.next_temp <- i + 1;
  Tree.Temp (ty, i)

let relop_of = function
  | Beq -> Op.Eq
  | Bne -> Op.Ne
  | Blt -> Op.Lt
  | Ble -> Op.Le
  | Bgt -> Op.Gt
  | Bge -> Op.Ge
  | _ -> assert false

let is_relational = function
  | Beq | Bne | Blt | Ble | Bgt | Bge -> true
  | _ -> false

let arith_op ~unsigned = function
  | Badd -> Op.Plus
  | Bsub -> Op.Minus
  | Bmul -> Op.Mul
  | Bdiv -> if unsigned then Op.Udiv else Op.Div
  | Bmod -> if unsigned then Op.Umod else Op.Mod
  | Band -> Op.And
  | Bor -> Op.Or
  | Bxor -> Op.Xor
  | Bshl -> Op.Lsh
  | Bshr -> Op.Rsh
  | _ -> assert false

let rec lower_lvalue env (e : expr) : value =
  match e with
  | Evar name -> (
    match Hashtbl.find_opt env.vars name with
    | None -> error "undefined variable %s" name
    | Some (Vglobal ((Tarray _ | _) as cty)) -> (
      match cty with
      | Tarray _ -> error "array %s is not assignable" name
      | _ -> { cty; tree = Tree.Name (dtype_of_cty cty, name) })
    | Some (Vlocal (cty, off)) -> (
      match cty with
      | Tarray _ -> error "array %s is not assignable" name
      | _ -> { cty; tree = Tree.Indir (dtype_of_cty cty, fp_address off) })
    | Some (Vparam (cty, off)) ->
      { cty; tree = Tree.Indir (dtype_of_cty cty, ap_address off) }
    | Some (Vregister (cty, r)) ->
      { cty; tree = Tree.Dreg (dtype_of_cty cty, r) })
  (* autoincrement recognition (paper section 6.1): only a dedicated
     register that is the destination of a postfix increment or prefix
     decrement qualifies *)
  | Ederef (Epostincr (true, Evar p))
    when is_register_pointer env p <> None -> (
    match is_register_pointer env p with
    | Some (elt, r) -> { cty = elt; tree = Tree.Autoinc (dtype_of_cty elt, r) }
    | None -> assert false)
  | Ederef (Epreincr (false, Evar p))
    when is_register_pointer env p <> None -> (
    match is_register_pointer env p with
    | Some (elt, r) -> { cty = elt; tree = Tree.Autodec (dtype_of_cty elt, r) }
    | None -> assert false)
  | Ederef p ->
    let pv = lower_rvalue env p in
    (match pv.cty with
    | Tptr elt when not (is_array elt) ->
      { cty = elt; tree = Tree.Indir (dtype_of_cty elt, pv.tree) }
    | Tptr _ -> error "dereference of pointer to array"
    | _ -> error "dereference of a non-pointer")
  | Eindex (a, i) ->
    let addr, elt = element_address env a i in
    { cty = elt; tree = Tree.Indir (dtype_of_cty elt, addr) }
  | _ -> error "expression is not an lvalue"

and is_array = function Tarray _ -> true | _ -> false

and is_register_pointer env name =
  match Hashtbl.find_opt env.vars name with
  | Some (Vregister (Tptr elt, r)) when not (is_array elt) -> Some (elt, r)
  | _ -> None

(* address of a[i] plus the element type *)
and element_address env a i : Tree.t * cty =
  let av = lower_rvalue env a in
  let iv = lower_rvalue env i in
  let elt =
    match av.cty with
    | Tptr elt -> elt
    | _ -> error "indexing a non-pointer"
  in
  if not (is_integer_cty iv.cty) then error "array index is not an integer";
  let size = sizeof elt in
  let scaled =
    if size = 1 then iv.tree
    else
      Tree.Binop
        (Op.Mul, Dtype.Long, long_const (Int64.of_int size), iv.tree)
  in
  (Tree.Binop (Op.Plus, Dtype.Long, av.tree, scaled), elt)

(* the address of an lvalue expression (for & and for op=) *)
and lower_address env (e : expr) : value =
  match e with
  | Evar name -> (
    match Hashtbl.find_opt env.vars name with
    | None -> error "undefined variable %s" name
    | Some (Vglobal (Tarray (elt, _))) ->
      { cty = Tptr elt; tree = Tree.Addr (Tree.Name (dtype_of_cty elt, name)) }
    | Some (Vglobal cty) ->
      { cty = Tptr cty; tree = Tree.Addr (Tree.Name (dtype_of_cty cty, name)) }
    | Some (Vlocal (Tarray (elt, _), off)) ->
      { cty = Tptr elt; tree = fp_address off }
    | Some (Vlocal (cty, off)) -> { cty = Tptr cty; tree = fp_address off }
    | Some (Vparam (cty, off)) -> { cty = Tptr cty; tree = ap_address off }
    | Some (Vregister _) -> error "address of a register variable")
  | Ederef p ->
    let pv = lower_rvalue env p in
    (match pv.cty with
    | Tptr elt -> { cty = Tptr elt; tree = pv.tree }
    | _ -> error "dereference of a non-pointer")
  | Eindex (a, i) ->
    let addr, elt = element_address env a i in
    { cty = Tptr elt; tree = addr }
  | _ -> error "cannot take the address of this expression"

and lower_rvalue env (e : expr) : value =
  match e with
  | Eint n -> { cty = Tint; tree = long_const (Tree.wrap Dtype.Long n) }
  | Efloat f -> { cty = Tdouble; tree = Tree.Fconst (Dtype.Dbl, f) }
  | Evar name -> (
    match Hashtbl.find_opt env.vars name with
    | None -> error "undefined variable %s" name
    | Some (Vglobal (Tarray _)) | Some (Vlocal (Tarray _, _)) ->
      lower_address env e
    | Some (Vregister _) | Some _ ->
      let lv = lower_lvalue env e in
      let p = promoted lv.cty in
      { cty = p; tree = convert ~to_:(dtype_of_cty p) lv.tree })
  | Ederef _ | Eindex (_, _) ->
    let lv = lower_lvalue env e in
    let p = promoted lv.cty in
    { cty = p; tree = convert ~to_:(dtype_of_cty p) lv.tree }
  | Eaddr e -> lower_address env e
  | Eun (Uneg, e) ->
    let v = lower_rvalue env e in
    if is_float_cty v.cty then
      { cty = Tdouble; tree = Tree.Unop (Op.Neg, Dtype.Dbl, v.tree) }
    else if is_integer_cty v.cty then
      { cty = promoted v.cty; tree = Tree.Unop (Op.Neg, Dtype.Long, v.tree) }
    else error "negation of a pointer"
  | Eun (Ucom, e) ->
    let v = lower_rvalue env e in
    if not (is_integer_cty v.cty) then error "~ of a non-integer";
    { cty = promoted v.cty; tree = Tree.Unop (Op.Com, Dtype.Long, v.tree) }
  | Eun (Unot, e) ->
    let v = lower_rvalue env e in
    { cty = Tint; tree = Tree.Lnot v.tree }
  | Ebin (Bland, a, b) ->
    let av = lower_rvalue env a in
    let bv = lower_rvalue env b in
    { cty = Tint; tree = Tree.Land (av.tree, bv.tree) }
  | Ebin (Blor, a, b) ->
    let av = lower_rvalue env a in
    let bv = lower_rvalue env b in
    { cty = Tint; tree = Tree.Lor (av.tree, bv.tree) }
  | Ebin (op, a, b) when is_relational op ->
    let av = lower_rvalue env a in
    let bv = lower_rvalue env b in
    let common = unify av.cty bv.cty in
    let ty = dtype_of_cty common in
    let sg = if common = Tuint then Dtype.Unsigned else Dtype.Signed in
    {
      cty = Tint;
      tree =
        Tree.Relval
          (relop_of op, sg, ty, convert ~to_:ty av.tree, convert ~to_:ty bv.tree);
    }
  | Ebin (op, a, b) ->
    let av = lower_rvalue env a in
    let bv = lower_rvalue env b in
    lower_arith env op av bv
  | Eassign (lhs, rhs) ->
    let lv = lower_lvalue env lhs in
    let rv = lower_rvalue env rhs in
    check_assignable lv.cty rv.cty;
    let ty = dtype_of_cty lv.cty in
    {
      cty = lv.cty;
      tree = Tree.Assign (ty, lv.tree, convert ~to_:ty rv.tree);
    }
  | Eopassign (op, lhs, rhs) ->
    (* a op= b rewrites to a = a op b (paper section 6.5); impure
       destinations compute their address once through a temporary *)
    lower_rvalue env (expand_opassign env op lhs rhs)
  | Epreincr (up, lhs) ->
    lower_rvalue env
      (Eopassign ((if up then Badd else Bsub), lhs, Eint 1L))
  | Epostincr (up, lhs) ->
    (* x++ == (x = x + 1) - 1: the embedded assignment is extracted by
       Phase 1a with the stored value in a temporary *)
    let one = Eint 1L in
    if up then
      lower_rvalue env (Ebin (Bsub, Eopassign (Badd, lhs, one), one))
    else lower_rvalue env (Ebin (Badd, Eopassign (Bsub, lhs, one), one))
  | Econd (c, a, b) ->
    let cv = lower_rvalue env c in
    let av = lower_rvalue env a in
    let bv = lower_rvalue env b in
    let common = unify av.cty bv.cty in
    let ty = dtype_of_cty common in
    {
      cty = common;
      tree =
        Tree.Select
          (ty, cv.tree, convert ~to_:ty av.tree, convert ~to_:ty bv.tree);
    }
  | Ecall (name, args) ->
    let ret, formals =
      match Hashtbl.find_opt env.funcs name with
      | Some sig_ -> sig_
      | None when name = "print" -> (Tint, [ Tint ])
      | None -> error "call to undefined function %s" name
    in
    if name <> "print" && List.length args <> List.length formals then
      error "wrong number of arguments to %s" name;
    let lowered =
      List.map
        (fun arg ->
          let v = lower_rvalue env arg in
          (* arguments pass as longs or doubles *)
          if is_float_cty v.cty then convert ~to_:Dtype.Dbl v.tree
          else convert ~to_:Dtype.Long v.tree)
        args
    in
    { cty = promoted ret; tree = Tree.Call (dtype_of_cty (promoted ret), name, lowered) }
  | Ecast (to_cty, e) ->
    let v = lower_rvalue env e in
    let target = promoted to_cty in
    { cty = target; tree = convert ~to_:(dtype_of_cty target) v.tree }

and check_assignable lcty rcty =
  match (lcty, rcty) with
  | (Tchar | Tshort | Tint | Tuint | Tfloat | Tdouble),
    (Tchar | Tshort | Tint | Tuint | Tfloat | Tdouble) ->
    ()
  | Tptr _, (Tptr _ | Tint | Tuint) -> ()
  | (Tint | Tuint), Tptr _ -> ()
  | _ -> error "incompatible assignment"

and lower_arith env op (av : value) (bv : value) : value =
  match (av.cty, bv.cty, op) with
  | Tptr elt, _, (Badd | Bsub) when is_integer_cty bv.cty ->
    let size = sizeof elt in
    let scaled =
      if size = 1 then bv.tree
      else
        Tree.Binop (Op.Mul, Dtype.Long, long_const (Int64.of_int size), bv.tree)
    in
    let op = if op = Badd then Op.Plus else Op.Minus in
    { cty = Tptr elt; tree = Tree.Binop (op, Dtype.Long, av.tree, scaled) }
  | _, Tptr _, Badd when is_integer_cty av.cty ->
    lower_arith env op bv av
  | Tptr _, Tptr _, _ -> error "pointer arithmetic between two pointers"
  | _, _, _ ->
    let common = unify av.cty bv.cty in
    let ty = dtype_of_cty common in
    if is_float_cty common then begin
      (match op with
      | Badd | Bsub | Bmul | Bdiv -> ()
      | _ -> error "operator undefined on floats");
      {
        cty = Tdouble;
        tree =
          Tree.Binop
            (arith_op ~unsigned:false op, ty, convert ~to_:ty av.tree,
             convert ~to_:ty bv.tree);
      }
    end
    else begin
      let unsigned = common = Tuint in
      match (op, unsigned, bv.tree) with
      | Bshr, true, Tree.Const (_, k) when k >= 0L && k < 32L ->
        (* unsigned right shift by a constant: arithmetic shift then
           mask off the copied sign bits *)
        let shifted =
          Tree.Binop (Op.Rsh, Dtype.Long, convert ~to_:Dtype.Long av.tree,
                      long_const k)
        in
        let mask =
          Int64.shift_right_logical 0xffffffffL (Int64.to_int k)
        in
        {
          cty = Tuint;
          tree = Tree.Binop (Op.And, Dtype.Long, shifted, long_const (Tree.wrap Dtype.Long mask));
        }
      | _ ->
        {
          cty = common;
          tree =
            Tree.Binop
              (arith_op ~unsigned op, ty, convert ~to_:ty av.tree,
               convert ~to_:ty bv.tree);
        }
    end

(* rewrite a op= b into a = a op b, computing impure destination
   addresses only once *)
and expand_opassign env op lhs rhs : expr =
  let rec pure = function
    | Evar _ | Eint _ | Efloat _ -> true
    | Eindex (a, i) -> pure a && pure i
    | Ederef p -> pure p
    | Eaddr e -> pure e
    | Ebin (_, a, b) -> pure a && pure b
    | Eun (_, e) -> pure e
    | Ecast (_, e) -> pure e
    | _ -> false
  in
  ignore env;
  if pure lhs then Eassign (lhs, Ebin (op, lhs, rhs))
  else
    error
      "op-assign destination with side effects is not supported (assign the \
       address to a pointer first)"

(* -- statements ---------------------------------------------------------------- *)

type loop_labels = { l_break : Label.t; l_continue : Label.t }

type fctx = {
  env : env;
  labels : Label.gen;
  ret_cty : cty;
  mutable loops : loop_labels list;
}

let zero ty =
  if Dtype.is_float ty then Tree.Fconst (ty, 0.0) else Tree.Const (ty, 0L)

let lower_cond fc e ~target ~jump_if =
  (* branch to [target] when e is true (jump_if) or false *)
  let v = lower_rvalue fc.env e in
  let ty = Tree.dtype v.tree in
  let rel = if jump_if then Op.Ne else Op.Eq in
  [ Tree.Stree (Tree.Cbranch (rel, Dtype.Signed, ty, v.tree, zero ty, target)) ]

let rec lower_stmt fc (s : Ast.stmt) : Tree.stmt list =
  match s with
  | Sexpr (Epostincr (up, lhs)) | Sexpr (Epreincr (up, lhs)) ->
    (* in statement position the old value is dead: a plain op= avoids
       the temporary machinery and exposes the inc/dec idioms *)
    lower_stmt fc (Sexpr (Eopassign ((if up then Badd else Bsub), lhs, Eint 1L)))
  | Sexpr e -> (
    let v = lower_rvalue fc.env e in
    match v.tree with
    | Tree.Assign _ | Tree.Rassign _ | Tree.Call _ -> [ Tree.Stree v.tree ]
    | tree when tree_has_effects tree -> [ Tree.Stree (assign_to_scratch fc tree) ]
    | _ -> [] (* a pure expression statement computes nothing observable *))
  | Sblock body -> lower_stmts fc body
  | Sif (cond, then_, else_) ->
    let l_else = Label.fresh fc.labels in
    let test = lower_cond fc cond ~target:l_else ~jump_if:false in
    let then_code = lower_stmts fc then_ in
    if else_ = [] then test @ then_code @ [ Tree.Slabel l_else ]
    else begin
      let l_end = Label.fresh fc.labels in
      test @ then_code
      @ [ Tree.Sjump l_end; Tree.Slabel l_else ]
      @ lower_stmts fc else_
      @ [ Tree.Slabel l_end ]
    end
  | Swhile (cond, body) ->
    let l_top = Label.fresh fc.labels in
    let l_end = Label.fresh fc.labels in
    fc.loops <- { l_break = l_end; l_continue = l_top } :: fc.loops;
    let code =
      [ Tree.Slabel l_top ]
      @ lower_cond fc cond ~target:l_end ~jump_if:false
      @ lower_stmts fc body
      @ [ Tree.Sjump l_top; Tree.Slabel l_end ]
    in
    fc.loops <- List.tl fc.loops;
    code
  | Sdo (body, cond) ->
    let l_top = Label.fresh fc.labels in
    let l_cont = Label.fresh fc.labels in
    let l_end = Label.fresh fc.labels in
    fc.loops <- { l_break = l_end; l_continue = l_cont } :: fc.loops;
    let code =
      [ Tree.Slabel l_top ]
      @ lower_stmts fc body
      @ [ Tree.Slabel l_cont ]
      @ lower_cond fc cond ~target:l_top ~jump_if:true
      @ [ Tree.Slabel l_end ]
    in
    fc.loops <- List.tl fc.loops;
    code
  | Sfor (init, cond, step, body) ->
    let l_top = Label.fresh fc.labels in
    let l_cont = Label.fresh fc.labels in
    let l_end = Label.fresh fc.labels in
    let init_code =
      match init with None -> [] | Some e -> lower_stmt fc (Sexpr e)
    in
    let test =
      match cond with
      | None -> []
      | Some e -> lower_cond fc e ~target:l_end ~jump_if:false
    in
    let step_code =
      match step with None -> [] | Some e -> lower_stmt fc (Sexpr e)
    in
    fc.loops <- { l_break = l_end; l_continue = l_cont } :: fc.loops;
    let code =
      init_code
      @ [ Tree.Slabel l_top ]
      @ test
      @ lower_stmts fc body
      @ [ Tree.Slabel l_cont ]
      @ step_code
      @ [ Tree.Sjump l_top; Tree.Slabel l_end ]
    in
    fc.loops <- List.tl fc.loops;
    code
  | Sreturn None -> [ Tree.Sret ]
  | Sreturn (Some e) ->
    let v = lower_rvalue fc.env e in
    let rty = dtype_of_cty (promoted fc.ret_cty) in
    [
      Tree.Stree
        (Tree.Assign (rty, Tree.Dreg (rty, Regconv.r0), convert ~to_:rty v.tree));
      Tree.Sret;
    ]
  | Sbreak -> (
    match fc.loops with
    | { l_break; _ } :: _ -> [ Tree.Sjump l_break ]
    | [] -> error "break outside a loop")
  | Scontinue -> (
    match fc.loops with
    | { l_continue; _ } :: _ -> [ Tree.Sjump l_continue ]
    | [] -> error "continue outside a loop")
  | Sline n -> [ Tree.Sline n ]

and lower_stmts fc body = List.concat_map (lower_stmt fc) body

and tree_has_effects tree =
  Tree.fold
    (fun acc t ->
      acc
      ||
      match t with
      | Tree.Assign _ | Tree.Rassign _ | Tree.Call _ | Tree.Autoinc _
      | Tree.Autodec _ ->
        true
      | Tree.Binop ((Op.Div | Op.Mod | Op.Udiv | Op.Umod), _, _, _) ->
        true (* may trap *)
      | _ -> false)
    false tree

and assign_to_scratch fc tree =
  let ty = Tree.dtype tree in
  let tmp = fresh_temp fc.env ty in
  Tree.Assign (ty, tmp, tree)

(* -- program -------------------------------------------------------------------- *)

let align n a = (n + a - 1) / a * a

let lower_func env (f : Ast.func) : Tree.func =
  let saved_vars = Hashtbl.copy env.vars in
  (* float parameters arrive as doubles (K&R) *)
  let params =
    List.map
      (fun (name, cty) ->
        match cty with
        | Tfloat -> (name, Tdouble)
        | Tarray (elt, _) -> (name, Tptr elt)
        | other -> (name, other))
      f.params
  in
  let ap_off = ref 4 in
  List.iter
    (fun (name, cty) ->
      Hashtbl.replace env.vars name (Vparam (cty, !ap_off));
      ap_off := !ap_off + (if sizeof cty > 4 then 8 else 4))
    params;
  let fp_off = ref 0 in
  (* register variables: a small pool of dedicated registers, assigned
     first come first served to 4-byte scalars declared [register]
     (PCC's conventions, paper section 5.3.3); the rest fall back to
     ordinary frame slots *)
  let reg_pool = ref [ 11; 10 ] in
  List.iter
    (fun (name, cty, storage) ->
      let as_local () =
        let size = sizeof cty in
        let a = if size >= 8 then 8 else if size >= 4 then 4 else size in
        fp_off := align !fp_off a + size;
        Hashtbl.replace env.vars name (Vlocal (cty, !fp_off))
      in
      match (storage, cty, !reg_pool) with
      | Ast.Register, (Tint | Tuint | Tptr _), r :: rest ->
        reg_pool := rest;
        Hashtbl.replace env.vars name (Vregister (cty, r))
      | _ -> as_local ())
    f.locals;
  let fc =
    { env; labels = Label.gen (); ret_cty = f.ret; loops = [] }
  in
  let body = lower_stmts fc f.body in
  Hashtbl.reset env.vars;
  Hashtbl.iter (fun k v -> Hashtbl.replace env.vars k v) saved_vars;
  {
    Tree.fname = f.fname;
    formals =
      List.map (fun (n, cty) -> (n, dtype_of_cty (promoted cty))) params;
    ret_type = dtype_of_cty (promoted f.ret);
    locals_size = align !fp_off 4;
    body;
  }

let lower_program (decls : Ast.program) : Tree.program =
  let env =
    { vars = Hashtbl.create 64; funcs = Hashtbl.create 16; next_temp = 0 }
  in
  (* two passes so functions can call forward *)
  List.iter
    (fun d ->
      match d with
      | Dglobal (name, cty) ->
        if Hashtbl.mem env.vars name then error "duplicate global %s" name;
        Hashtbl.replace env.vars name (Vglobal cty)
      | Dfunc f ->
        if Hashtbl.mem env.funcs f.fname then
          error "duplicate function %s" f.fname;
        Hashtbl.replace env.funcs f.fname
          (f.ret, List.map snd f.params))
    decls;
  let globals =
    List.filter_map
      (fun d ->
        match d with
        | Dglobal (name, cty) ->
          let elt =
            match cty with Tarray (e, _) -> e | other -> other
          in
          Some (name, dtype_of_cty elt, sizeof cty)
        | Dfunc _ -> None)
      decls
  in
  let funcs =
    List.filter_map
      (fun d ->
        match d with Dfunc f -> Some (lower_func env f) | Dglobal _ -> None)
      decls
  in
  { Tree.globals; funcs }

let compile src = lower_program (Parser.parse_program src)
