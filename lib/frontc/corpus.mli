(** Deterministic random-program generator.

    The paper's measurements ran the two code generators over large C
    programs (section 8: 11k lines of assembly).  This module generates
    arbitrarily large, terminating, trap-free mini-C programs from a
    seed: every division has a provably non-zero divisor, every array
    index is masked into bounds, all loops have constant bounds, and
    recursion is depth-bounded — so the differential harness can run
    them to completion under both the interpreter and the simulator. *)

(** [program ~seed ~functions ~stmts_per_function] — a complete program
    whose [main] exercises every generated function and prints
    observable results. *)
val program : seed:int -> functions:int -> stmts_per_function:int -> Ast.program

(** A small fixed benchmark suite of hand-written programs (sort,
    matrix, string-less checksum, float accumulation, recursion), used
    by the benchmarks alongside the random corpus. *)
val fixed_programs : (string * string) list

(** Concatenated random programs totalling roughly [target_stmts]
    statements — the "particular large C program" stand-in. *)
val large_program : seed:int -> target_stmts:int -> Ast.program

(** Print a program back to parseable mini-C source.  Every expression
    is fully parenthesized and declarators are limited to what the
    generator produces (base type, stars, one array dimension) —
    anything fancier is [Invalid_argument].  The compile server takes
    source text, so the differential tests feed it rendered programs:
    what matters is that the two compile paths see the same bytes. *)
val render : Ast.program -> string

(** [render (program ~seed ...)] — a random program as source text. *)
val random_source :
  seed:int -> functions:int -> stmts_per_function:int -> string
