open Ast

exception Parse_error of int * string

let error lx fmt =
  Fmt.kstr (fun s -> raise (Parse_error (Lexer.line lx, s))) fmt

let expect lx (tok : Lexer.token) =
  let line = Lexer.line lx in
  let got = Lexer.next lx in
  if got <> tok then
    raise
      (Parse_error
         ( line,
           Fmt.str "expected %a but found %a" Lexer.pp_token tok Lexer.pp_token
             got ))

let expect_punct lx p = expect lx (Lexer.PUNCT p)

let accept_punct lx p =
  if Lexer.peek lx = Lexer.PUNCT p then begin
    ignore (Lexer.next lx);
    true
  end
  else false

let ident lx =
  let line = Lexer.line lx in
  match Lexer.next lx with
  | Lexer.IDENT s -> s
  | got ->
    raise
      (Parse_error
         (line, Fmt.str "expected an identifier, found %a" Lexer.pp_token got))

(* -- types ----------------------------------------------------------------- *)

let is_type_kw = function
  | "char" | "short" | "int" | "long" | "unsigned" | "float" | "double"
  | "register" | "void" ->
    true
  | _ -> false

let starts_type lx =
  match Lexer.peek lx with Lexer.KW k -> is_type_kw k | _ -> false

(* [long] is a synonym for [int]; [void] is only meaningful as a return
   type.  Returns the storage class alongside the type. *)
let parse_base_type_storage lx =
  let rec words acc =
    match Lexer.peek lx with
    | Lexer.KW k when is_type_kw k ->
      ignore (Lexer.next lx);
      words (k :: acc)
    | _ -> List.rev acc
  in
  let ws = words [] in
  let storage = if List.mem "register" ws then Register else Auto in
  let ty =
    match List.filter (fun w -> w <> "register") ws with
  | [ "char" ] -> Tchar
  | [ "short" ] | [ "short"; "int" ] -> Tshort
  | [ "int" ] | [ "long" ] | [ "long"; "int" ] -> Tint
  | [ "unsigned" ] | [ "unsigned"; "int" ] | [ "unsigned"; "long" ] -> Tuint
  | [ "float" ] -> Tfloat
  | [ "double" ] -> Tdouble
    | [ "void" ] -> Tint (* void functions: return value unused *)
    | ws -> error lx "unsupported type: %s" (String.concat " " ws)
  in
  (ty, storage)

let parse_base_type lx = fst (parse_base_type_storage lx)

let parse_declarator lx base =
  let rec stars ty = if accept_punct lx "*" then stars (Tptr ty) else ty in
  let ty = stars base in
  let name = ident lx in
  let ty =
    if accept_punct lx "[" then begin
      match Lexer.next lx with
      | Lexer.INT n ->
        expect_punct lx "]";
        Tarray (ty, Int64.to_int n)
      | got -> error lx "expected an array size, found %a" Lexer.pp_token got
    end
    else ty
  in
  (name, ty)

(* -- expressions ------------------------------------------------------------ *)

let binop_of_punct = function
  | "+" -> Some Badd
  | "-" -> Some Bsub
  | "*" -> Some Bmul
  | "/" -> Some Bdiv
  | "%" -> Some Bmod
  | "&" -> Some Band
  | "|" -> Some Bor
  | "^" -> Some Bxor
  | "<<" -> Some Bshl
  | ">>" -> Some Bshr
  | _ -> None

let rec parse_expr_top lx = parse_assignment lx

and parse_assignment lx =
  let lhs = parse_cond lx in
  match Lexer.peek lx with
  | Lexer.PUNCT "=" ->
    ignore (Lexer.next lx);
    Eassign (lhs, parse_assignment lx)
  | Lexer.PUNCT p
    when String.length p >= 2
         && p.[String.length p - 1] = '='
         && binop_of_punct (String.sub p 0 (String.length p - 1)) <> None ->
    ignore (Lexer.next lx);
    let op = Option.get (binop_of_punct (String.sub p 0 (String.length p - 1))) in
    Eopassign (op, lhs, parse_assignment lx)
  | _ -> lhs

and parse_cond lx =
  let c = parse_lor lx in
  if accept_punct lx "?" then begin
    let a = parse_expr_top lx in
    expect_punct lx ":";
    let b = parse_cond lx in
    Econd (c, a, b)
  end
  else c

and parse_lor lx =
  let rec go acc =
    if accept_punct lx "||" then go (Ebin (Blor, acc, parse_land lx)) else acc
  in
  go (parse_land lx)

and parse_land lx =
  let rec go acc =
    if accept_punct lx "&&" then go (Ebin (Bland, acc, parse_bitor lx))
    else acc
  in
  go (parse_bitor lx)

and parse_bitor lx =
  let rec go acc =
    if accept_punct lx "|" then go (Ebin (Bor, acc, parse_bitxor lx)) else acc
  in
  go (parse_bitxor lx)

and parse_bitxor lx =
  let rec go acc =
    if accept_punct lx "^" then go (Ebin (Bxor, acc, parse_bitand lx))
    else acc
  in
  go (parse_bitand lx)

and parse_bitand lx =
  let rec go acc =
    if accept_punct lx "&" then go (Ebin (Band, acc, parse_equality lx))
    else acc
  in
  go (parse_equality lx)

and parse_equality lx =
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.PUNCT "==" ->
      ignore (Lexer.next lx);
      go (Ebin (Beq, acc, parse_relational lx))
    | Lexer.PUNCT "!=" ->
      ignore (Lexer.next lx);
      go (Ebin (Bne, acc, parse_relational lx))
    | _ -> acc
  in
  go (parse_relational lx)

and parse_relational lx =
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.PUNCT "<" ->
      ignore (Lexer.next lx);
      go (Ebin (Blt, acc, parse_shift lx))
    | Lexer.PUNCT "<=" ->
      ignore (Lexer.next lx);
      go (Ebin (Ble, acc, parse_shift lx))
    | Lexer.PUNCT ">" ->
      ignore (Lexer.next lx);
      go (Ebin (Bgt, acc, parse_shift lx))
    | Lexer.PUNCT ">=" ->
      ignore (Lexer.next lx);
      go (Ebin (Bge, acc, parse_shift lx))
    | _ -> acc
  in
  go (parse_shift lx)

and parse_shift lx =
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.PUNCT "<<" ->
      ignore (Lexer.next lx);
      go (Ebin (Bshl, acc, parse_additive lx))
    | Lexer.PUNCT ">>" ->
      ignore (Lexer.next lx);
      go (Ebin (Bshr, acc, parse_additive lx))
    | _ -> acc
  in
  go (parse_additive lx)

and parse_additive lx =
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.PUNCT "+" ->
      ignore (Lexer.next lx);
      go (Ebin (Badd, acc, parse_multiplicative lx))
    | Lexer.PUNCT "-" ->
      ignore (Lexer.next lx);
      go (Ebin (Bsub, acc, parse_multiplicative lx))
    | _ -> acc
  in
  go (parse_multiplicative lx)

and parse_multiplicative lx =
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.PUNCT "*" ->
      ignore (Lexer.next lx);
      go (Ebin (Bmul, acc, parse_unary lx))
    | Lexer.PUNCT "/" ->
      ignore (Lexer.next lx);
      go (Ebin (Bdiv, acc, parse_unary lx))
    | Lexer.PUNCT "%" ->
      ignore (Lexer.next lx);
      go (Ebin (Bmod, acc, parse_unary lx))
    | _ -> acc
  in
  go (parse_unary lx)

and parse_unary lx =
  match Lexer.peek lx with
  | Lexer.PUNCT "-" ->
    ignore (Lexer.next lx);
    Eun (Uneg, parse_unary lx)
  | Lexer.PUNCT "~" ->
    ignore (Lexer.next lx);
    Eun (Ucom, parse_unary lx)
  | Lexer.PUNCT "!" ->
    ignore (Lexer.next lx);
    Eun (Unot, parse_unary lx)
  | Lexer.PUNCT "&" ->
    ignore (Lexer.next lx);
    Eaddr (parse_unary lx)
  | Lexer.PUNCT "*" ->
    ignore (Lexer.next lx);
    Ederef (parse_unary lx)
  | Lexer.PUNCT "++" ->
    ignore (Lexer.next lx);
    Epreincr (true, parse_unary lx)
  | Lexer.PUNCT "--" ->
    ignore (Lexer.next lx);
    Epreincr (false, parse_unary lx)
  | _ -> parse_postfix lx

and parse_postfix lx =
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.PUNCT "[" ->
      ignore (Lexer.next lx);
      let i = parse_expr_top lx in
      expect_punct lx "]";
      go (Eindex (acc, i))
    | Lexer.PUNCT "++" ->
      ignore (Lexer.next lx);
      go (Epostincr (true, acc))
    | Lexer.PUNCT "--" ->
      ignore (Lexer.next lx);
      go (Epostincr (false, acc))
    | _ -> acc
  in
  go (parse_primary lx)

and parse_primary lx =
  let line = Lexer.line lx in
  match Lexer.next lx with
  | Lexer.INT n -> Eint n
  | Lexer.FLOAT f -> Efloat f
  | Lexer.IDENT name ->
    if accept_punct lx "(" then begin
      let args =
        if Lexer.peek lx = Lexer.PUNCT ")" then []
        else
          let rec go acc =
            let e = parse_assignment lx in
            if accept_punct lx "," then go (e :: acc) else List.rev (e :: acc)
          in
          go []
      in
      expect_punct lx ")";
      Ecall (name, args)
    end
    else Evar name
  | Lexer.PUNCT "(" ->
    if starts_type lx then begin
      (* cast *)
      let base = parse_base_type lx in
      let rec stars ty = if accept_punct lx "*" then stars (Tptr ty) else ty in
      let ty = stars base in
      expect_punct lx ")";
      Ecast (ty, parse_unary lx)
    end
    else begin
      let e = parse_expr_top lx in
      expect_punct lx ")";
      e
    end
  | got ->
    raise
      (Parse_error
         (line, Fmt.str "unexpected token %a in expression" Lexer.pp_token got))

(* -- statements -------------------------------------------------------------- *)

(* Every parsed statement is preceded by an [Sline] marker so the code
   generators can attribute emitted instructions to source lines
   ([ggcc --explain]).  Empty statements produce no marker. *)
let rec parse_stmt lx locals : stmt list =
  let line = Lexer.line lx in
  match parse_stmt_unmarked lx locals with
  | [] -> []
  | stmts -> Sline line :: stmts

and parse_stmt_unmarked lx locals : stmt list =
  match Lexer.peek lx with
  | Lexer.PUNCT "{" -> [ Sblock (parse_block lx locals) ]
  | Lexer.PUNCT ";" ->
    ignore (Lexer.next lx);
    []
  | Lexer.KW "if" ->
    ignore (Lexer.next lx);
    expect_punct lx "(";
    let cond = parse_expr_top lx in
    expect_punct lx ")";
    let then_ = parse_stmt lx locals in
    let else_ =
      if Lexer.peek lx = Lexer.KW "else" then begin
        ignore (Lexer.next lx);
        parse_stmt lx locals
      end
      else []
    in
    [ Sif (cond, then_, else_) ]
  | Lexer.KW "while" ->
    ignore (Lexer.next lx);
    expect_punct lx "(";
    let cond = parse_expr_top lx in
    expect_punct lx ")";
    [ Swhile (cond, parse_stmt lx locals) ]
  | Lexer.KW "do" ->
    ignore (Lexer.next lx);
    let body = parse_stmt lx locals in
    (match Lexer.next lx with
    | Lexer.KW "while" -> ()
    | got -> error lx "expected while after do, found %a" Lexer.pp_token got);
    expect_punct lx "(";
    let cond = parse_expr_top lx in
    expect_punct lx ")";
    expect_punct lx ";";
    [ Sdo (body, cond) ]
  | Lexer.KW "for" ->
    ignore (Lexer.next lx);
    expect_punct lx "(";
    let init =
      if Lexer.peek lx = Lexer.PUNCT ";" then None else Some (parse_expr_top lx)
    in
    expect_punct lx ";";
    let cond =
      if Lexer.peek lx = Lexer.PUNCT ";" then None else Some (parse_expr_top lx)
    in
    expect_punct lx ";";
    let step =
      if Lexer.peek lx = Lexer.PUNCT ")" then None else Some (parse_expr_top lx)
    in
    expect_punct lx ")";
    [ Sfor (init, cond, step, parse_stmt lx locals) ]
  | Lexer.KW "return" ->
    ignore (Lexer.next lx);
    let e =
      if Lexer.peek lx = Lexer.PUNCT ";" then None else Some (parse_expr_top lx)
    in
    expect_punct lx ";";
    [ Sreturn e ]
  | Lexer.KW "break" ->
    ignore (Lexer.next lx);
    expect_punct lx ";";
    [ Sbreak ]
  | Lexer.KW "continue" ->
    ignore (Lexer.next lx);
    expect_punct lx ";";
    [ Scontinue ]
  | _ ->
    let e = parse_expr_top lx in
    expect_punct lx ";";
    [ Sexpr e ]

and parse_block lx locals : stmt list =
  expect_punct lx "{";
  let stmts = ref [] in
  (* declarations first, then statements; further declarations are also
     tolerated between statements and hoisted to function scope *)
  let rec go () =
    match Lexer.peek lx with
    | Lexer.PUNCT "}" -> ignore (Lexer.next lx)
    | _ when starts_type lx ->
      let line = Lexer.line lx in
      let base, storage = parse_base_type_storage lx in
      let rec decls () =
        let name, ty = parse_declarator lx base in
        locals := (name, ty, storage) :: !locals;
        (* an optional initialiser desugars to an assignment *)
        if accept_punct lx "=" then begin
          let v = parse_assignment lx in
          stmts := Sexpr (Eassign (Evar name, v)) :: Sline line :: !stmts
        end;
        if accept_punct lx "," then decls ()
      in
      decls ();
      expect_punct lx ";";
      go ()
    | _ ->
      List.iter (fun s -> stmts := s :: !stmts) (parse_stmt lx locals);
      go ()
  in
  go ();
  List.rev !stmts

(* -- top level ---------------------------------------------------------------- *)

let parse_program src =
  let lx = Lexer.create src in
  let decls = ref [] in
  let rec go () =
    match Lexer.peek lx with
    | Lexer.EOF -> ()
    | _ ->
      let base = parse_base_type lx in
      let name, ty = parse_declarator lx base in
      if Lexer.peek lx = Lexer.PUNCT "(" then begin
        ignore (Lexer.next lx);
        let params =
          if Lexer.peek lx = Lexer.PUNCT ")" then []
          else
            let rec go acc =
              let pbase = parse_base_type lx in
              let pname, pty = parse_declarator lx pbase in
              if accept_punct lx "," then go ((pname, pty) :: acc)
              else List.rev ((pname, pty) :: acc)
            in
            go []
        in
        expect_punct lx ")";
        let locals = ref [] in
        let body = parse_block lx locals in
        decls :=
          Dfunc
            { fname = name; ret = ty; params; locals = List.rev !locals; body }
          :: !decls;
        go ()
      end
      else begin
        decls := Dglobal (name, ty) :: !decls;
        let rec more () =
          if accept_punct lx "," then begin
            let name2, ty2 = parse_declarator lx base in
            decls := Dglobal (name2, ty2) :: !decls;
            more ()
          end
        in
        more ();
        expect_punct lx ";";
        go ()
      end
  in
  go ();
  List.rev !decls

let parse_expr src =
  let lx = Lexer.create src in
  let e = parse_expr_top lx in
  (match Lexer.peek lx with
  | Lexer.EOF -> ()
  | got -> error lx "trailing input: %a" Lexer.pp_token got);
  e
