type cty =
  | Tchar
  | Tshort
  | Tint
  | Tuint
  | Tfloat
  | Tdouble
  | Tptr of cty
  | Tarray of cty * int

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Band | Bor | Bxor | Bshl | Bshr
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Bland | Blor

type unop = Uneg | Ucom | Unot

type expr =
  | Eint of int64
  | Efloat of float
  | Evar of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eassign of expr * expr
  | Eopassign of binop * expr * expr
  | Epreincr of bool * expr
  | Epostincr of bool * expr
  | Econd of expr * expr * expr
  | Ecall of string * expr list
  | Eindex of expr * expr
  | Ederef of expr
  | Eaddr of expr
  | Ecast of cty * expr

type stmt =
  | Sexpr of expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of expr option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sline of int

type storage = Auto | Register

type func = {
  fname : string;
  ret : cty;
  params : (string * cty) list;
  locals : (string * cty * storage) list;
  body : stmt list;
}

type decl = Dglobal of string * cty | Dfunc of func

type program = decl list

let rec pp_cty ppf = function
  | Tchar -> Fmt.string ppf "char"
  | Tshort -> Fmt.string ppf "short"
  | Tint -> Fmt.string ppf "int"
  | Tuint -> Fmt.string ppf "unsigned"
  | Tfloat -> Fmt.string ppf "float"
  | Tdouble -> Fmt.string ppf "double"
  | Tptr t -> Fmt.pf ppf "%a*" pp_cty t
  | Tarray (t, n) -> Fmt.pf ppf "%a[%d]" pp_cty t n
