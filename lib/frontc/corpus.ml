open Ast

(* a small deterministic PRNG (xorshift) so corpora are reproducible *)
type rng = { mutable s : int64 }

let rng seed = { s = Int64.of_int ((seed * 2654435761) lor 1) }

let next r =
  let x = r.s in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.s <- x;
  Int64.to_int (Int64.logand x 0x3fffffffL)

let pick r xs = List.nth xs (next r mod List.length xs)
let range r lo hi = lo + (next r mod (hi - lo + 1))

(* -- expression generation ---------------------------------------------- *)

(* integer variables in scope plus the global arrays.

   Calls never appear inside larger expressions and loop counters are
   never assigned by loop bodies: the first keeps evaluation order
   observable-equivalent between the reference interpreter and the
   compiled code (C leaves the order unspecified, and Phase 1a hoists
   embedded calls), the second guarantees termination. *)
type genv = {
  ivars : string list;  (** readable int variables *)
  assignable : string list;  (** assignment targets *)
  dvars : string list;  (** double-valued variables *)
  arrays : (string * int) list;  (** int arrays with their sizes *)
  callables : (string * int) list;  (** functions and their int arity *)
  counters : string list;  (** loop counters still available *)
}

let lit r = Eint (Int64.of_int (range r (-40) 100))

(* an in-bounds index: (e & (size-1)) for power-of-two sizes *)
let bounded_index r env depth size =
  let base =
    if depth <= 0 || env.ivars = [] then lit r
    else Evar (pick r env.ivars)
  in
  Ebin (Band, base, Eint (Int64.of_int (size - 1)))

let rec int_expr r env depth =
  if depth <= 0 then
    match (env.ivars, next r mod 3) with
    | v :: _, 0 -> Evar (pick r (v :: env.ivars))
    | _, _ -> lit r
  else
    match next r mod 14 with
    | 0 | 1 ->
      Ebin
        ( pick r [ Badd; Bsub; Bmul ],
          int_expr r env (depth - 1),
          int_expr r env (depth - 1) )
    | 2 ->
      (* safe division: divisor = (e & 15) + 1 *)
      Ebin
        ( pick r [ Bdiv; Bmod ],
          int_expr r env (depth - 1),
          Ebin (Badd, Ebin (Band, int_expr r env (depth - 1), Eint 15L), Eint 1L)
        )
    | 3 -> Ebin (pick r [ Band; Bor; Bxor ], int_expr r env (depth - 1),
                 int_expr r env (depth - 1))
    | 4 ->
      Ebin
        ( pick r [ Bshl; Bshr ],
          int_expr r env (depth - 1),
          Eint (Int64.of_int (range r 0 7)) )
    | 5 ->
      Ebin
        ( pick r [ Beq; Bne; Blt; Ble; Bgt; Bge ],
          int_expr r env (depth - 1),
          int_expr r env (depth - 1) )
    | 6 when env.arrays <> [] ->
      let name, size = pick r env.arrays in
      Eindex (Evar name, bounded_index r env (depth - 1) size)
    | 7 -> Eun (pick r [ Uneg; Ucom ], int_expr r env (depth - 1))
    | 8 ->
      Ebin
        ( pick r [ Bland; Blor ],
          int_expr r env (depth - 1),
          int_expr r env (depth - 1) )
    | 9 ->
      Econd
        ( int_expr r env (depth - 1),
          int_expr r env (depth - 1),
          int_expr r env (depth - 1) )
    | 11 when env.dvars <> [] ->
      (* a double clamped into int range *)
      Ecast (Tint, Ebin (Bmul, Efloat 0.5,
                         Ecast (Tdouble, int_expr r env (depth - 1))))
    | _ -> int_expr r env 0

let double_expr r env depth =
  if env.dvars = [] || depth <= 0 then Efloat (float_of_int (range r 0 20) /. 4.)
  else
    Ebin
      ( pick r [ Badd; Bsub; Bmul ],
        Evar (pick r env.dvars),
        Efloat (float_of_int (range r 1 8) /. 2.) )

(* -- statements ----------------------------------------------------------- *)

let rec stmts r env budget : stmt list =
  if budget <= 0 then []
  else begin
    let s, cost =
      match next r mod 12 with
      | 0 | 1 | 2 ->
        (Sexpr (Eassign (Evar (pick r env.assignable), int_expr r env 3)), 1)
      | 3 when env.arrays <> [] ->
        let name, size = pick r env.arrays in
        ( Sexpr
            (Eassign
               (Eindex (Evar name, bounded_index r env 1 size),
                int_expr r env 2)),
          1 )
      | 4 ->
        let v = pick r env.assignable in
        ( Sexpr
            (Eopassign (pick r [ Badd; Bsub; Bxor ], Evar v, int_expr r env 2)),
          1 )
      | 5 ->
        let v = pick r env.assignable in
        (Sexpr (Epostincr (next r mod 2 = 0, Evar v)), 1)
      | 6 ->
        let body = stmts r env (min 3 (budget - 1)) in
        (Sif (int_expr r env 2, body, stmts r env (min 2 (budget - 2))), 3)
      | 7 when env.counters <> [] ->
        (* a bounded counting loop over a reserved counter the body can
           read but never assign *)
        let v = List.hd env.counters in
        let inner = { env with counters = List.tl env.counters } in
        let n = range r 2 8 in
        let body = stmts r inner (min 3 (budget - 1)) in
        ( Sfor
            ( Some (Eassign (Evar v, Eint 0L)),
              Some (Ebin (Blt, Evar v, Eint (Int64.of_int n))),
              Some (Epostincr (true, Evar v)),
              body ),
          4 )
      | 8 when env.dvars <> [] ->
        (Sexpr (Eassign (Evar (pick r env.dvars), double_expr r env 2)), 1)
      | 9 -> (Sexpr (Ecall ("print", [ int_expr r env 2 ])), 1)
      | 10 when env.callables <> [] ->
        (* calls only as whole statements: x = f(pure args) *)
        let f, arity = pick r env.callables in
        ( Sexpr
            (Eassign
               (Evar (pick r env.assignable),
                Ecall (f, List.init arity (fun _ -> int_expr r env 2)))),
          2 )
      | _ ->
        (Sexpr (Eassign (Evar (pick r env.assignable), int_expr r env 4)), 2)
    in
    s :: stmts r env (budget - cost)
  end

(* -- programs ---------------------------------------------------------------- *)

let function_names n = List.init n (fun i -> Fmt.str "f%d" i)

let program ~seed ~functions ~stmts_per_function =
  let r = rng seed in
  let globals =
    [
      Dglobal ("g0", Tint); Dglobal ("g1", Tint); Dglobal ("g2", Tint);
      Dglobal ("gu", Tuint); Dglobal ("gd", Tdouble);
      Dglobal ("arr", Tarray (Tint, 16)); Dglobal ("bytes", Tarray (Tchar, 8));
      Dglobal ("shorts", Tarray (Tshort, 8));
    ]
  in
  let arrays = [ ("arr", 16); ("bytes", 8); ("shorts", 8) ] in
  let fnames = function_names functions in
  let funcs =
    List.mapi
      (fun i name ->
        let params = [ ("a", Tint); ("b", Tint) ] in
        let k0_storage = if i mod 2 = 0 then Register else Auto in
        let locals =
          [ ("x", Tint, Auto); ("y", Tint, Auto); ("k0", Tint, k0_storage);
            ("k1", Tint, Auto) ]
        in
        let env =
          {
            ivars = [ "a"; "b"; "x"; "y"; "k0"; "k1"; "g0"; "g1"; "g2" ];
            assignable = [ "a"; "b"; "x"; "y"; "g0"; "g1"; "g2" ];
            dvars = [ "gd" ];
            arrays;
            (* may call earlier functions only: no unbounded recursion *)
            callables =
              List.filteri (fun j _ -> j < i) fnames
              |> List.map (fun f -> (f, 2));
            counters = [ "k0"; "k1" ];
          }
        in
        let body =
          (* initialise every local: uninitialised reads are undefined
             behaviour the differential harness cannot tolerate *)
          [ Sexpr (Eassign (Evar "x", Eint 1L));
            Sexpr (Eassign (Evar "y", Eint 2L));
            Sexpr (Eassign (Evar "k0", Eint 0L));
            Sexpr (Eassign (Evar "k1", Eint 0L)) ]
          @ stmts r env stmts_per_function
          @ [ Sreturn (Some (int_expr r env 2)) ]
        in
        Dfunc { fname = name; ret = Tint; params; locals; body })
      fnames
  in
  let main_env =
    {
      ivars = [ "i"; "j"; "t"; "g0"; "g1"; "g2" ];
      assignable = [ "t"; "g0"; "g1"; "g2" ];
      dvars = [ "gd" ];
      arrays;
      callables = List.map (fun f -> (f, 2)) fnames;
      counters = [ "i"; "j" ];
    }
  in
  let main_body =
    [
      Sexpr (Eassign (Evar "t", Eint 0L));
      Sexpr (Eassign (Evar "i", Eint 0L));
      Sexpr (Eassign (Evar "j", Eint 0L));
      Sexpr (Eassign (Evar "g0", Eint 3L));
      Sexpr (Eassign (Evar "g1", Eint 5L));
      Sexpr (Eassign (Evar "g2", Eint 7L));
    ]
    @ stmts r main_env (3 * stmts_per_function)
    @ List.map
        (fun f ->
          Sexpr (Eassign (Evar "t",
                          Ebin (Badd, Evar "t",
                                Ecall (f, [ Evar "g0"; Evar "g1" ])))))
        fnames
    @ [
        Sexpr (Ecall ("print", [ Evar "t" ]));
        Sexpr (Ecall ("print", [ Evar "g0" ]));
        Sreturn (Some (Ebin (Band, Evar "t", Eint 0xffffL)));
      ]
  in
  globals @ funcs
  @ [
      Dfunc
        {
          fname = "main";
          ret = Tint;
          params = [];
          locals = [ ("i", Tint, Auto); ("j", Tint, Auto); ("t", Tint, Auto) ];
          body = main_body;
        };
    ]

(* -- rendering back to source --------------------------------------------- *)

(* The server compiles source text, not ASTs, so the differential
   tests need generated programs *as text*.  Rendering fully
   parenthesizes every expression: parity between two compiles of the
   same printed text is what matters, not prettiness. *)

let binop_str = function
  | Badd -> "+" | Bsub -> "-" | Bmul -> "*" | Bdiv -> "/" | Bmod -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Bshl -> "<<" | Bshr -> ">>"
  | Beq -> "==" | Bne -> "!=" | Blt -> "<" | Ble -> "<=" | Bgt -> ">"
  | Bge -> ">=" | Bland -> "&&" | Blor -> "||"

let unop_str = function Uneg -> "-" | Ucom -> "~" | Unot -> "!"

(* the lexer only reads [digits.digits] — no exponent form *)
let float_lit f =
  if f <> f || f = infinity || f = neg_infinity then "0.0"
  else
    let a = Float.abs f in
    let s = Fmt.str "%.17g" a in
    let s =
      if String.contains s 'e' || not (String.contains s '.') then
        Fmt.str "%.6f" a
      else s
    in
    if f < 0. then "(-" ^ s ^ ")" else s

let int_lit n =
  if n = Int64.min_int then "0x8000000000000000"
  else if Int64.compare n 0L < 0 then Fmt.str "(-%Ld)" (Int64.neg n)
  else Fmt.str "%Ld" n

let base_name = function
  | Tchar -> "char" | Tshort -> "short" | Tint -> "int"
  | Tuint -> "unsigned" | Tfloat -> "float" | Tdouble -> "double"
  | Tptr _ | Tarray _ -> invalid_arg "Corpus.render: not a base type"

(* declarators limited to base + stars + name + one [n] — all the
   generator produces *)
let decl_str ty name =
  let rec stars ty acc =
    match ty with Tptr t -> stars t (acc ^ "*") | t -> (t, acc)
  in
  match stars ty "" with
  | Tarray (elt, n), "" ->
    let b, inner = stars elt "" in
    (match b with
    | Tarray _ -> invalid_arg "Corpus.render: nested arrays"
    | b -> Fmt.str "%s %s%s[%d]" (base_name b) inner name n)
  | Tarray _, _ -> invalid_arg "Corpus.render: pointer to array"
  | b, ptrs -> Fmt.str "%s %s%s" (base_name b) ptrs name

let cast_str ty =
  let rec stars ty acc =
    match ty with Tptr t -> stars t (acc ^ "*") | t -> (t, acc)
  in
  match stars ty "" with
  | Tarray _, _ -> invalid_arg "Corpus.render: cast to array"
  | b, "" -> base_name b
  | b, ptrs -> base_name b ^ " " ^ ptrs

let rec expr_str e =
  match e with
  | Eint n -> int_lit n
  | Efloat f -> float_lit f
  | Evar v -> v
  | Ebin (op, a, b) ->
    Fmt.str "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Eun (op, a) -> Fmt.str "(%s%s)" (unop_str op) (expr_str a)
  | Eassign (l, v) -> Fmt.str "(%s = %s)" (expr_str l) (expr_str v)
  | Eopassign (op, l, v) ->
    Fmt.str "(%s %s= %s)" (expr_str l) (binop_str op) (expr_str v)
  | Epreincr (up, l) -> Fmt.str "(%s%s)" (if up then "++" else "--") (expr_str l)
  | Epostincr (up, l) ->
    Fmt.str "(%s%s)" (expr_str l) (if up then "++" else "--")
  | Econd (c, a, b) ->
    Fmt.str "(%s ? %s : %s)" (expr_str c) (expr_str a) (expr_str b)
  | Ecall (f, args) ->
    Fmt.str "%s(%s)" f (String.concat ", " (List.map expr_str args))
  | Eindex (a, i) -> Fmt.str "(%s[%s])" (atom_str a) (expr_str i)
  | Ederef a -> Fmt.str "(*%s)" (expr_str a)
  | Eaddr a -> Fmt.str "(&%s)" (expr_str a)
  | Ecast (ty, a) -> Fmt.str "((%s)%s)" (cast_str ty) (expr_str a)

(* postfix [ ] needs a primary on its left; anything beyond a name gets
   its own parentheses *)
and atom_str e = match e with Evar v -> v | e -> "(" ^ expr_str e ^ ")"

let rec stmt_lines ind s =
  let pad = String.make ind ' ' in
  match s with
  | Sexpr e -> [ pad ^ expr_str e ^ ";" ]
  | Sreturn (Some e) -> [ pad ^ "return " ^ expr_str e ^ ";" ]
  | Sreturn None -> [ pad ^ "return;" ]
  | Sbreak -> [ pad ^ "break;" ]
  | Scontinue -> [ pad ^ "continue;" ]
  | Sline _ -> []
  | Sblock body -> (pad ^ "{") :: block_lines ind body @ [ pad ^ "}" ]
  | Sif (c, t, []) ->
    (pad ^ Fmt.str "if (%s) {" (expr_str c))
    :: block_lines ind t
    @ [ pad ^ "}" ]
  | Sif (c, t, e) ->
    (pad ^ Fmt.str "if (%s) {" (expr_str c))
    :: block_lines ind t
    @ [ pad ^ "} else {" ]
    @ block_lines ind e
    @ [ pad ^ "}" ]
  | Swhile (c, body) ->
    (pad ^ Fmt.str "while (%s) {" (expr_str c))
    :: block_lines ind body
    @ [ pad ^ "}" ]
  | Sdo (body, c) ->
    (pad ^ "do {")
    :: block_lines ind body
    @ [ pad ^ Fmt.str "} while (%s);" (expr_str c) ]
  | Sfor (init, cond, step, body) ->
    let part = function Some e -> expr_str e | None -> "" in
    (pad ^ Fmt.str "for (%s; %s; %s) {" (part init) (part cond) (part step))
    :: block_lines ind body
    @ [ pad ^ "}" ]

and block_lines ind body = List.concat_map (stmt_lines (ind + 2)) body

let render (prog : program) =
  let buf = Buffer.create 4096 in
  let line s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  List.iter
    (fun decl ->
      (match decl with
      | Dglobal (name, ty) -> line (decl_str ty name ^ ";")
      | Dfunc f ->
        let params =
          match f.params with
          | [] -> ""
          | ps -> String.concat ", " (List.map (fun (n, t) -> decl_str t n) ps)
        in
        line (Fmt.str "%s(%s) {" (decl_str f.ret f.fname) params);
        List.iter
          (fun (n, t, storage) ->
            let reg = match storage with Register -> "register " | Auto -> "" in
            line ("  " ^ reg ^ decl_str t n ^ ";"))
          f.locals;
        List.iter (fun s -> List.iter line (stmt_lines 2 s)) f.body;
        line "}");
      line "")
    prog;
  Buffer.contents buf

let random_source ~seed ~functions ~stmts_per_function =
  render (program ~seed ~functions ~stmts_per_function)

let large_program ~seed ~target_stmts =
  let per = 12 in
  let functions = max 2 (target_stmts / (2 * per)) in
  program ~seed ~functions ~stmts_per_function:per

let fixed_programs =
  [
    ( "bubble_sort",
      {|
int a[16];
int n;

int main() {
  int i; int j; int t; int sum;
  n = 16;
  for (i = 0; i < n; i++) a[i] = (n - i) * 3 % 17;
  for (i = 0; i < n - 1; i++)
    for (j = 0; j < n - 1 - i; j++)
      if (a[j] > a[j+1]) { t = a[j]; a[j] = a[j+1]; a[j+1] = t; }
  sum = 0;
  for (i = 0; i < n; i++) sum = sum * 2 + a[i];
  print(sum);
  return sum & 255;
}
|} );
    ( "matrix3",
      {|
int a[9]; int b[9]; int c[9];

int main() {
  int i; int j; int k; int s;
  for (i = 0; i < 9; i++) { a[i] = i + 1; b[i] = 9 - i; }
  for (i = 0; i < 3; i++)
    for (j = 0; j < 3; j++) {
      s = 0;
      for (k = 0; k < 3; k++) s += a[i*3+k] * b[k*3+j];
      c[i*3+j] = s;
    }
  s = 0;
  for (i = 0; i < 9; i++) s ^= c[i] * (i + 1);
  print(s);
  return s & 1023;
}
|} );
    ( "checksum",
      {|
char buf[64];
unsigned h;

int main() {
  int i;
  for (i = 0; i < 64; i++) buf[i] = (i * 7 + 3) % 127;
  h = 5381;
  for (i = 0; i < 64; i++) h = h * 33 + buf[i];
  h = h % 65521;
  print(h);
  return h & 32767;
}
|} );
    ( "floats",
      {|
double acc;
float ratio;

double step(double x, int k) {
  if (k % 2) return x * 1.5 - 0.25;
  return x / 2.0 + 3.0;
}

int main() {
  int i;
  acc = 1.0;
  ratio = 0.5;
  for (i = 0; i < 10; i++) acc = step(acc, i) + ratio;
  print(acc);
  return (int) acc;
}
|} );
    ( "recursion",
      {|
int calls;

int ack(int m, int n) {
  calls++;
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}

int gcd(int a, int b) {
  if (b == 0) return a;
  return gcd(b, a % b);
}

int main() {
  int r;
  calls = 0;
  r = ack(2, 3) * 100 + gcd(252, 105);
  print(r);
  print(calls);
  return r & 4095;
}
|} );
    ( "register_autoinc",
      {|
int data[8];
int total;

int main() {
  register int *p;
  register int i;
  int k;
  for (k = 0; k < 8; k++) data[k] = k * 3 + 1;
  total = 0;
  p = &data[0];
  for (i = 0; i < 8; i++) total += *p++;
  p = &data[8];
  for (i = 0; i < 8; i++) total += *--p;
  print(total);
  return total;
}
|} );
    ( "pointers",
      {|
int data[8];
int total;

int main() {
  int i; int *p;
  for (i = 0; i < 8; i++) data[i] = i * i + 1;
  total = 0;
  p = &data[0];
  for (i = 0; i < 8; i++) total += *(p + i);
  for (i = 0; i < 8; i++) if (data[i] % 2 == 0) total -= data[i] / 2;
  print(total);
  return total;
}
|} );
  ]
