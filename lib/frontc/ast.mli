(** Abstract syntax of the mini-C language.

    The language is the K&R-flavoured subset needed to exercise the code
    generator the way PCC's first pass did: integer types of three
    sizes, unsigned ints, floats and doubles, pointers and arrays,
    the full expression grammar including short-circuit operators,
    selection, compound assignment and increment/decrement, and
    structured control flow. *)

type cty =
  | Tchar
  | Tshort
  | Tint
  | Tuint  (** unsigned int *)
  | Tfloat  (** stored as F_floating; promoted to double in expressions *)
  | Tdouble
  | Tptr of cty
  | Tarray of cty * int

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Band | Bor | Bxor | Bshl | Bshr
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Bland | Blor  (** short-circuit *)

type unop = Uneg | Ucom | Unot

type expr =
  | Eint of int64
  | Efloat of float
  | Evar of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eassign of expr * expr  (** lvalue = value *)
  | Eopassign of binop * expr * expr  (** lvalue op= value *)
  | Epreincr of bool * expr  (** true = increment, false = decrement *)
  | Epostincr of bool * expr
  | Econd of expr * expr * expr
  | Ecall of string * expr list
  | Eindex of expr * expr  (** a[i] *)
  | Ederef of expr
  | Eaddr of expr
  | Ecast of cty * expr

type stmt =
  | Sexpr of expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of expr option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sline of int
      (** source-line marker inserted by the parser before each parsed
          statement; lowered to {!Gg_ir.Tree.Sline} for instruction
          provenance.  Generated code (the random corpus) omits them. *)

(** Storage class of a local declaration; [Register] asks for a
    dedicated register (a hint, as in C: ignored when no register is
    available or the type does not fit one). *)
type storage = Auto | Register

type func = {
  fname : string;
  ret : cty;
  params : (string * cty) list;
  locals : (string * cty * storage) list;
      (** all block-scoped declarations *)
  body : stmt list;
}

type decl = Dglobal of string * cty | Dfunc of func

type program = decl list

val pp_cty : cty Fmt.t
