(** Machine description grammars.

    A grammar is a set of attributed productions over interned symbols
    plus a distinguished start non-terminal (the paper's sentential
    symbol).  Right-hand sides are the prefix linearisations of
    computation trees, or single symbols for factoring productions
    (paper section 4). *)

type production = {
  id : int;
  lhs : int;  (** non-terminal index *)
  rhs : Symtab.sym array;  (** never empty *)
  action : Action.t;
  note : string;
      (** documentation: typically the assembly template of the
          instruction the production describes *)
}

type t = private {
  symtab : Symtab.t;
  start : int;
  prods : production array;
  by_lhs : int array array;  (** production ids per lhs non-terminal *)
}

(** A production before interning: lhs, rhs, action, note. *)
type spec = string * string list * Action.t * string

(** Build a grammar.  Errors on: empty right-hand side, a terminal used
    as lhs, an undefined non-terminal (appears in a rhs but never as a
    lhs), or duplicate identical productions. *)
val make : start:string -> spec list -> (t, string) result

(** Like {!make} but raises [Invalid_argument]. *)
val make_exn : start:string -> spec list -> t

val n_productions : t -> int
val production : t -> int -> production

(** Chain productions (single non-terminal rhs, paper section 3.2). *)
val is_chain : production -> bool

(** Well-formedness report beyond {!make}'s hard errors: non-terminals
    unreachable from the start symbol and non-terminals that derive no
    terminal string. *)
type report = { unreachable : string list; unproductive : string list }

val check : t -> report

type stats = {
  productions : int;
  terminals : int;
  nonterminals : int;
  chain_productions : int;
  max_rhs : int;
}

val stats : t -> stats

(** A stable hex digest of the complete grammar content: symbol tables,
    start symbol, and every production with its action and note.  Two
    grammars with the same symbol counts but different productions get
    different digests — this keys the on-disk table cache and stale-file
    rejection in {!Gg_tablegen.Packed}. *)
val digest : t -> string

val pp_production : t -> production Fmt.t
val pp_stats : stats Fmt.t
val pp : t Fmt.t
