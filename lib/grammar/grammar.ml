type production = {
  id : int;
  lhs : int;
  rhs : Symtab.sym array;
  action : Action.t;
  note : string;
}

type t = {
  symtab : Symtab.t;
  start : int;
  prods : production array;
  by_lhs : int array array;
}

type spec = string * string list * Action.t * string

let make ~start specs =
  let symtab = Symtab.create () in
  let exception Bad of string in
  let bad fmt = Fmt.kstr (fun s -> raise (Bad s)) fmt in
  try
    let start_idx =
      match Symtab.intern symtab start with
      | Symtab.N i -> i
      | Symtab.T _ -> bad "start symbol %s is a terminal" start
    in
    let seen = Hashtbl.create 512 in
    let prods =
      List.mapi
        (fun id (lhs, rhs, action, note) ->
          if rhs = [] then bad "production %d (%s): empty right-hand side" id lhs;
          let lhs_idx =
            match Symtab.intern symtab lhs with
            | Symtab.N i -> i
            | Symtab.T _ -> bad "terminal %s used as a left-hand side" lhs
          in
          let rhs = Array.of_list (List.map (Symtab.intern symtab) rhs) in
          let key = (lhs_idx, rhs) in
          if Hashtbl.mem seen key then
            bad "duplicate production: %s <- %s" lhs
              (String.concat " " (Array.to_list (Array.map (Symtab.name symtab) rhs)));
          Hashtbl.replace seen key ();
          { id; lhs = lhs_idx; rhs; action; note })
        specs
      |> Array.of_list
    in
    (* every non-terminal mentioned must have at least one production *)
    let defined = Array.make (Symtab.n_nonterms symtab) false in
    Array.iter (fun p -> defined.(p.lhs) <- true) prods;
    defined.(start_idx) <- true;
    Array.iter
      (fun p ->
        Array.iter
          (function
            | Symtab.N i when not defined.(i) ->
              bad "undefined non-terminal %s" (Symtab.nonterm_name symtab i)
            | Symtab.N _ | Symtab.T _ -> ())
          p.rhs)
      prods;
    let by_lhs =
      Array.init (Symtab.n_nonterms symtab) (fun n ->
          Array.of_seq
            (Seq.filter_map
               (fun p -> if p.lhs = n then Some p.id else None)
               (Array.to_seq prods)))
    in
    Ok { symtab; start = start_idx; prods; by_lhs }
  with Bad msg -> Error msg

let make_exn ~start specs =
  match make ~start specs with
  | Ok g -> g
  | Error msg -> invalid_arg ("Grammar.make: " ^ msg)

let n_productions g = Array.length g.prods
let production g i = g.prods.(i)

let is_chain p =
  Array.length p.rhs = 1
  && match p.rhs.(0) with Symtab.N _ -> true | Symtab.T _ -> false

type report = { unreachable : string list; unproductive : string list }

let check g =
  let nn = Symtab.n_nonterms g.symtab in
  (* reachability from the start symbol *)
  let reachable = Array.make nn false in
  let rec reach n =
    if not reachable.(n) then begin
      reachable.(n) <- true;
      Array.iter
        (fun pid ->
          Array.iter
            (function Symtab.N m -> reach m | Symtab.T _ -> ())
            g.prods.(pid).rhs)
        g.by_lhs.(n)
    end
  in
  reach g.start;
  (* productivity: fixed point over "derives some terminal string" *)
  let productive = Array.make nn false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun p ->
        if not productive.(p.lhs) then
          let all_ok =
            Array.for_all
              (function Symtab.N m -> productive.(m) | Symtab.T _ -> true)
              p.rhs
          in
          if all_ok then begin
            productive.(p.lhs) <- true;
            changed := true
          end)
      g.prods
  done;
  let collect pred =
    List.filter_map
      (fun i -> if pred i then Some (Symtab.nonterm_name g.symtab i) else None)
      (List.init nn Fun.id)
  in
  {
    unreachable = collect (fun i -> not reachable.(i));
    unproductive = collect (fun i -> reachable.(i) && not productive.(i));
  }

type stats = {
  productions : int;
  terminals : int;
  nonterminals : int;
  chain_productions : int;
  max_rhs : int;
}

let stats g =
  {
    productions = Array.length g.prods;
    terminals = Symtab.n_terms g.symtab;
    nonterminals = Symtab.n_nonterms g.symtab;
    chain_productions =
      Array.fold_left (fun n p -> if is_chain p then n + 1 else n) 0 g.prods;
    max_rhs = Array.fold_left (fun n p -> max n (Array.length p.rhs)) 0 g.prods;
  }

let pp_production g ppf p =
  Fmt.pf ppf "%s <- %s  [%a]%s"
    (Symtab.nonterm_name g.symtab p.lhs)
    (String.concat " " (Array.to_list (Array.map (Symtab.name g.symtab) p.rhs)))
    Action.pp p.action
    (if p.note = "" then "" else "  ; " ^ p.note)

let pp_stats ppf s =
  Fmt.pf ppf
    "%d productions, %d terminals, %d nonterminals (%d chain productions, \
     longest rhs %d)"
    s.productions s.terminals s.nonterminals s.chain_productions s.max_rhs

let pp ppf g =
  Array.iter (fun p -> Fmt.pf ppf "%a@\n" (pp_production g) p) g.prods

let digest g =
  let buf = Buffer.create 8192 in
  (* the symbol tables, so renamings that keep the counts equal still
     change the digest *)
  Buffer.add_string buf "terms:";
  for a = 0 to Symtab.n_terms g.symtab - 1 do
    Buffer.add_string buf (Symtab.term_name g.symtab a);
    Buffer.add_char buf '\x00'
  done;
  Buffer.add_string buf "nonterms:";
  for n = 0 to Symtab.n_nonterms g.symtab - 1 do
    Buffer.add_string buf (Symtab.nonterm_name g.symtab n);
    Buffer.add_char buf '\x00'
  done;
  Buffer.add_string buf "start:";
  Buffer.add_string buf (string_of_int g.start);
  Buffer.add_char buf '\x00';
  (* every production in full: lhs, rhs, semantic action, and the note
     (the assembly template / cost annotation).  Raw fields, not the
     pretty-printer: [load] recomputes this on every cache hit, so it
     sits on the compiler's start-up path. *)
  Array.iter
    (fun p ->
      Buffer.add_string buf (string_of_int p.lhs);
      Buffer.add_string buf "<-";
      Array.iter
        (fun sym ->
          (match sym with
          | Symtab.T a ->
            Buffer.add_char buf 'T';
            Buffer.add_string buf (string_of_int a)
          | Symtab.N n ->
            Buffer.add_char buf 'N';
            Buffer.add_string buf (string_of_int n));
          Buffer.add_char buf ' ')
        p.rhs;
      (match p.action with
      | Action.Chain -> Buffer.add_string buf "chain"
      | Action.Start -> Buffer.add_string buf "accept"
      | Action.Mode m ->
        Buffer.add_string buf "mode:";
        Buffer.add_string buf m
      | Action.Emit e ->
        Buffer.add_string buf "emit:";
        Buffer.add_string buf e);
      Buffer.add_char buf ';';
      Buffer.add_string buf p.note;
      Buffer.add_char buf '\x00')
    g.prods;
  Digest.to_hex (Digest.string (Buffer.contents buf))
