(** Interned grammar symbols.

    Machine description grammars are large (the paper's replicated VAX
    grammar has 219 terminals and 148 non-terminals), and the table
    constructor indexes arrays by symbol, so symbols are interned to
    dense integers: terminals and non-terminals each get their own
    index space.

    Following the paper's convention, terminal names begin with an upper
    case letter and non-terminal names with a lower case letter; the
    classification of a name is fixed by its spelling. *)

type t

type sym =
  | T of int  (** terminal index *)
  | N of int  (** non-terminal index *)

val create : unit -> t

(** Intern a name, classifying by its first character.  Idempotent. *)
val intern : t -> string -> sym

(** Look up without interning. *)
val find : t -> string -> sym option

(** [term_id t s] is the terminal index of [s], or [-1] when [s] is
    unknown or a non-terminal.  Equivalent to {!find} but allocation
    free — the matcher interns every token of every tree through
    this. *)
val term_id : t -> string -> int

val name : t -> sym -> string
val term_name : t -> int -> string
val nonterm_name : t -> int -> string
val n_terms : t -> int
val n_nonterms : t -> int

(** [is_terminal_name s] — does [s] spell a terminal (leading upper
    case)? *)
val is_terminal_name : string -> bool

val sym_equal : sym -> sym -> bool
val pp_sym : t -> sym Fmt.t
