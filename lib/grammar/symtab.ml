type sym = T of int | N of int

type t = {
  by_name : (string, sym) Hashtbl.t;
  mutable term_names : string array;
  mutable n_terms : int;
  mutable nonterm_names : string array;
  mutable n_nonterms : int;
}

let create () =
  {
    by_name = Hashtbl.create 256;
    term_names = Array.make 64 "";
    n_terms = 0;
    nonterm_names = Array.make 64 "";
    n_nonterms = 0;
  }

let is_terminal_name s =
  String.length s > 0
  &&
  match s.[0] with
  | 'A' .. 'Z' -> true
  | _ -> false

let push names n v =
  let names =
    if n >= Array.length names then begin
      let bigger = Array.make (2 * Array.length names) "" in
      Array.blit names 0 bigger 0 n;
      bigger
    end
    else names
  in
  names.(n) <- v;
  names

let intern t s =
  match Hashtbl.find_opt t.by_name s with
  | Some sym -> sym
  | None ->
    if s = "" then invalid_arg "Symtab.intern: empty symbol name";
    let sym =
      if is_terminal_name s then begin
        t.term_names <- push t.term_names t.n_terms s;
        let sym = T t.n_terms in
        t.n_terms <- t.n_terms + 1;
        sym
      end
      else begin
        t.nonterm_names <- push t.nonterm_names t.n_nonterms s;
        let sym = N t.n_nonterms in
        t.n_nonterms <- t.n_nonterms + 1;
        sym
      end
    in
    Hashtbl.replace t.by_name s sym;
    sym

let find t s = Hashtbl.find_opt t.by_name s

let term_id t s =
  match Hashtbl.find t.by_name s with
  | T i -> i
  | N _ -> -1
  | exception Not_found -> -1

let term_name t i =
  assert (i >= 0 && i < t.n_terms);
  t.term_names.(i)

let nonterm_name t i =
  assert (i >= 0 && i < t.n_nonterms);
  t.nonterm_names.(i)

let name t = function T i -> term_name t i | N i -> nonterm_name t i
let n_terms t = t.n_terms
let n_nonterms t = t.n_nonterms

let sym_equal a b =
  match (a, b) with
  | T x, T y | N x, N y -> Int.equal x y
  | T _, N _ | N _, T _ -> false

let pp_sym t ppf sym = Fmt.string ppf (name t sym)
