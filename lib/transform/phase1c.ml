open Import

type stats = {
  mutable swapped_commutative : int;
  mutable swapped_reverse : int;
  mutable reversed_assigns : int;
  mutable spill_splits : int;
}

let fresh_stats () =
  {
    swapped_commutative = 0;
    swapped_reverse = 0;
    reversed_assigns = 0;
    spill_splits = 0;
  }

(* Sethi–Ullman labelling adapted to our selector.  [leaf_need] is the
   target's weight for a leaf operand: on the VAX leaves and memory
   operands can be instruction operands directly (0 registers held
   across the sibling); on a load/store machine every leaf is
   materialised into a register first (1).  An operator always needs a
   register for its result. *)
let rec need ~leaf_need (t : Tree.t) =
  match t with
  | Tree.Const _ | Tree.Fconst _ | Tree.Name _ | Tree.Temp _ | Tree.Dreg _
  | Tree.Autoinc _ | Tree.Autodec _ ->
    leaf_need
  | Tree.Indir (_, addr) -> max leaf_need (need ~leaf_need addr)
  | Tree.Addr _ -> 1
  | Tree.Unop (_, _, e) | Tree.Conv (_, _, e) | Tree.Arg (_, e) ->
    max 1 (need ~leaf_need e)
  | Tree.Binop (_, _, a, b)
  | Tree.Assign (_, a, b)
  | Tree.Rassign (_, a, b)
  | Tree.Cbranch (_, _, _, a, b, _) ->
    let na = need ~leaf_need a in
    let nb = need ~leaf_need b in
    if na = nb then na + 1 else max na nb
  | Tree.Call _ | Tree.Land _ | Tree.Lor _ | Tree.Lnot _ | Tree.Select _
  | Tree.Relval _ ->
    (* these never survive Phase 1a *)
    6

let register_need t = need ~leaf_need:0 t

let swap_heavier ~reverse_ops stats t =
  let go (t : Tree.t) =
    match t with
    | Tree.Binop (op, ty, a, b)
      when Tree.size b > Tree.size a
           && Tree.size a > 1
           (* leaves are instruction operands, not computations: moving
              them right saves nothing and can destroy the canonical
              address shapes of Phase 1b *)
           && not (Phase1b.address_shaped a) -> (
      if Op.binop_commutative op then begin
        stats.swapped_commutative <- stats.swapped_commutative + 1;
        Tree.Binop (op, ty, b, a)
      end
      else
        match if reverse_ops then Op.reverse_binop op else None with
        | Some rop ->
          stats.swapped_reverse <- stats.swapped_reverse + 1;
          Tree.Binop (rop, ty, b, a)
        | None -> t)
    | Tree.Assign (ty, dst, src)
      when reverse_ops
           && Tree.size dst > 1
           && Tree.size src > Tree.size dst ->
      stats.reversed_assigns <- stats.reversed_assigns + 1;
      Tree.Rassign (ty, src, dst)
    | other -> other
  in
  Tree.map_bottom_up go t

(* Factor register-hungry subtrees into temporaries so the stack-
   discipline register manager cannot run dry (paper: "the code
   selector will never run out of registers").  The limit shrinks when
   register variables occupy part of the allocatable bank. *)
let default_spill_limit = 5

let rec split_spills ~limit ~leaf_need ctx stats (t : Tree.t) :
    Tree.stmt list * Tree.t =
  let register_need t = need ~leaf_need t in
  if register_need t <= limit then ([], t)
  else begin
    (* extract the heaviest subtree in a *value* position into a
       temporary; an assignment's destination is a location, not a
       value, so only the address inside it is a candidate *)
    let candidates =
      match t with
      | Tree.Assign (_, dst, src) -> (
        match dst with
        | Tree.Indir (_, addr) -> [ addr; src ]
        | _ -> [ src ])
      | Tree.Rassign (_, src, dst) -> (
        match dst with
        | Tree.Indir (_, addr) -> [ src; addr ]
        | _ -> [ src ])
      | _ -> Tree.children t
    in
    match candidates with
    | [] -> ([], t)
    | _ ->
      let heaviest =
        List.fold_left
          (fun best c ->
            match best with
            | None -> Some c
            | Some b ->
              if register_need c > register_need b then Some c else Some b)
          None candidates
        |> Option.get
      in
      if register_need heaviest = 0 then ([], t)
        (* nothing extractable reduces the pressure; leave it to the
           register manager's dynamic spilling *)
      else
      let pre_inner, heaviest' =
        split_spills ~limit ~leaf_need ctx stats heaviest
      in
      let ty = Tree.dtype heaviest' in
      let tmp = Context.fresh_temp ctx ty in
      stats.spill_splits <- stats.spill_splits + 1;
      (* replace exactly one occurrence (the first, top-down) of the
         chosen subtree by the temporary *)
      let replaced = ref false in
      let rec replace node =
        if (not !replaced) && Tree.equal node heaviest then begin
          replaced := true;
          tmp
        end
        else
          match (node : Tree.t) with
          | Const _ | Fconst _ | Name _ | Temp _ | Dreg _ | Autoinc _
          | Autodec _ ->
            node
          | Indir (ty, e) -> Indir (ty, replace e)
          | Addr e -> Addr (replace e)
          | Unop (op, ty, e) -> Unop (op, ty, replace e)
          | Binop (op, ty, a, b) ->
            let a = replace a in
            Binop (op, ty, a, replace b)
          | Conv (to_, from, e) -> Conv (to_, from, replace e)
          | Assign (ty, a, b) ->
            let a = replace a in
            Assign (ty, a, replace b)
          | Rassign (ty, a, b) ->
            let a = replace a in
            Rassign (ty, a, replace b)
          | Cbranch (r, sg, ty, a, b, l) ->
            let a = replace a in
            Cbranch (r, sg, ty, a, replace b, l)
          | Arg (ty, e) -> Arg (ty, replace e)
          | Call (ty, f, args) -> Call (ty, f, List.map replace args)
          | Land (a, b) ->
            let a = replace a in
            Land (a, replace b)
          | Lor (a, b) ->
            let a = replace a in
            Lor (a, replace b)
          | Lnot e -> Lnot (replace e)
          | Select (ty, c, a, b) ->
            let c = replace c in
            let a = replace a in
            Select (ty, c, a, replace b)
          | Relval (r, sg, ty, a, b) ->
            let a = replace a in
            Relval (r, sg, ty, a, replace b)
      in
      let t' = replace t in
      assert !replaced;
      let pre_rest, t'' = split_spills ~limit ~leaf_need ctx stats t' in
      ( pre_inner
        @ [ Tree.Stree (Tree.Assign (ty, tmp, heaviest')) ]
        @ pre_rest,
        t'' )
  end

let run ?(reverse_ops = true) ?(spill_guard = true)
    ?(spill_limit = default_spill_limit) ?(leaf_need = 0) ?stats ctx body =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  List.concat_map
    (fun s ->
      match s with
      | Tree.Stree t ->
        let t = swap_heavier ~reverse_ops stats t in
        if spill_guard then begin
          let pre, t' =
            split_spills ~limit:spill_limit ~leaf_need ctx stats t
          in
          pre @ [ Tree.Stree t' ]
        end
        else [ Tree.Stree t ]
      | Tree.Slabel _ | Tree.Sjump _ | Tree.Sret | Tree.Scall _
      | Tree.Scomment _ | Tree.Sline _ ->
        [ s ])
    body
