open Import

type t = {
  labels : Label.gen;
  mutable next_temp : int;
  mutable temps : (int * Dtype.t) list;
}

let scan_func (f : Tree.func) =
  let max_label = ref 0 in
  let max_temp = ref (-1) in
  let temps = ref [] in
  let scan_tree t =
    Tree.fold
      (fun () node ->
        match node with
        | Tree.Temp (ty, i) ->
          if not (List.mem_assoc i !temps) then temps := (i, ty) :: !temps;
          if i > !max_temp then max_temp := i
        | Tree.Cbranch (_, _, _, _, _, l) ->
          if l > !max_label then max_label := l
        | _ -> ())
      () t
  in
  List.iter
    (fun s ->
      match s with
      | Tree.Stree t -> scan_tree t
      | Tree.Slabel l | Tree.Sjump l -> if l > !max_label then max_label := l
      | Tree.Sret | Tree.Scall _ | Tree.Scomment _ | Tree.Sline _ -> ())
    f.Tree.body;
  (!max_label, !max_temp, !temps)

let create f =
  let max_label, max_temp, temps = scan_func f in
  {
    labels = Label.gen ~first:(max_label + 1) ();
    next_temp = max_temp + 1;
    temps;
  }

let fresh_label t = Label.fresh t.labels

let fresh_temp t ty =
  let i = t.next_temp in
  t.next_temp <- i + 1;
  t.temps <- (i, ty) :: t.temps;
  Tree.Temp (ty, i)

let temp_types t = List.rev t.temps
