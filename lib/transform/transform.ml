open Import

type options = { reverse_ops : bool; reorder : bool; spill_guard : bool }

let default_options = { reverse_ops = true; reorder = true; spill_guard = true }

type result = {
  func : Tree.func;
  temps : (int * Dtype.t) list;
  ordering_stats : Phase1c.stats;
}

let run ?(options = default_options) ?spill_limit ?leaf_need (f : Tree.func) =
  let ctx = Context.create f in
  let stats = Phase1c.fresh_stats () in
  let body = Phase1a.run ctx f.Tree.body in
  let body = Phase1b.run body in
  let body =
    if options.reorder then
      Phase1c.run ~reverse_ops:options.reverse_ops
        ~spill_guard:options.spill_guard ?spill_limit ?leaf_need ~stats ctx
        body
    else body
  in
  {
    func = { f with Tree.body };
    temps = Context.temp_types ctx;
    ordering_stats = stats;
  }

let run_program ?options (p : Tree.program) =
  List.map (fun f -> (f, run ?options f)) p.Tree.funcs
