open Import

(* Subtrees that the addressing-mode productions expect on the left of
   [Plus]/[Mul]: constants and symbol addresses. *)
let address_shaped (t : Tree.t) =
  match t with
  | Tree.Const _ -> true
  | Tree.Addr (Tree.Name _) | Tree.Addr (Tree.Temp _) -> true
  | _ -> false

let rewrite (t : Tree.t) : Tree.t =
  match t with
  (* left shift by a small constant -> multiply by a power of two *)
  | Tree.Binop (Op.Lsh, ty, x, Tree.Const (_, k))
    when Dtype.is_integer ty && Int64.compare k 0L >= 0 && Int64.compare k 30L <= 0 ->
    Tree.Binop (Op.Mul, ty, Tree.const ty (Int64.shift_left 1L (Int64.to_int k)), x)
  (* subtraction of a constant -> addition of its negation *)
  | Tree.Binop (Op.Minus, ty, x, Tree.Const (_, k)) when Dtype.is_integer ty ->
    Tree.Binop (Op.Plus, ty, Tree.const ty (Int64.neg k), x)
  (* commutativity ordering: constants / symbol addresses to the left *)
  | Tree.Binop ((Op.Plus | Op.Mul) as op, ty, x, y)
    when address_shaped y && not (address_shaped x) ->
    Tree.Binop (op, ty, y, x)
  (* additive and multiplicative identities *)
  | Tree.Binop (Op.Plus, ty, Tree.Const (_, 0L), x) when Dtype.is_integer ty -> x
  | Tree.Binop (Op.Mul, _, Tree.Const (_, 1L), x) -> x
  (* address algebra *)
  | Tree.Addr (Tree.Indir (_, e)) -> e
  | Tree.Indir (ty, Tree.Addr lv) when Dtype.equal (Tree.dtype lv) ty -> lv
  | other -> other

(* One rewrite can expose another at the same node (moving a constant
   left exposes the plus-zero identity), so iterate to a fixed point at
   each node; children are already rewritten when the node is visited. *)
let rec fixpoint n t =
  let t' = rewrite t in
  if n = 0 || t' == t then t' else fixpoint (n - 1) t'

let rewrite_tree t = Tree.map_bottom_up (fixpoint 8) t

let run body =
  List.map
    (fun s ->
      match s with
      | Tree.Stree t -> Tree.Stree (rewrite_tree t)
      | Tree.Slabel _ | Tree.Sjump _ | Tree.Sret | Tree.Scall _
      | Tree.Scomment _ | Tree.Sline _ ->
        s)
    body
