open Import

(** The complete first phase of the code generator: tree transformation
    (paper section 5.1 and Fig. 2).

    Runs Phases 1a, 1b and 1c over a function body and returns the
    rewritten function together with the types of all compiler
    temporaries (the code generator allocates frame slots for them). *)

type options = {
  reverse_ops : bool;  (** allow operand swapping via reverse operators *)
  reorder : bool;  (** run the evaluation-ordering heuristic at all *)
  spill_guard : bool;  (** factor register-hungry subtrees into temps *)
}

val default_options : options

type result = {
  func : Tree.func;
  temps : (int * Dtype.t) list;  (** temporary id -> type *)
  ordering_stats : Phase1c.stats;
}

(** [spill_limit] overrides the register budget of the spill guard
    (reduce it when register variables occupy allocatable registers);
    [leaf_need] is the target's leaf weight for the guard's labelling
    (see {!Phase1c.run}). *)
val run :
  ?options:options -> ?spill_limit:int -> ?leaf_need:int -> Tree.func -> result

(** Transform every function of a program. *)
val run_program : ?options:options -> Tree.program -> (Tree.func * result) list
