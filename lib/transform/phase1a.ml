open Import

let zero_of ty =
  if Dtype.is_float ty then Tree.Fconst (ty, 0.0) else Tree.Const (ty, 0L)

(* Argument slots: everything narrower than Long is pushed as a Long,
   floats as doubles (the VAX calls layout; paper section 5.1.1 extracts
   calls so that "context switching does not occur within expression
   trees"). *)
let promote_arg e =
  match Tree.dtype e with
  | Dtype.Byte | Dtype.Word as ty -> (Tree.Conv (Dtype.Long, ty, e), 1)
  | Dtype.Long -> (e, 1)
  | Dtype.Flt -> (Tree.Conv (Dtype.Dbl, Dtype.Flt, e), 2)
  | Dtype.Dbl -> (e, 2)
  | Dtype.Quad -> (e, 2)

let rec lower_value ctx (t : Tree.t) : Tree.stmt list * Tree.t =
  match t with
  | Const _ | Fconst _ | Name _ | Temp _ | Dreg _ | Autoinc _ | Autodec _ ->
    ([], t)
  | Indir (ty, e) ->
    let pre, e' = lower_value ctx e in
    (pre, Indir (ty, e'))
  | Addr e ->
    let pre, e' = lower_value ctx e in
    (pre, Addr e')
  | Unop (op, ty, e) ->
    let pre, e' = lower_value ctx e in
    (pre, Unop (op, ty, e'))
  | Binop (op, ty, a, b) ->
    let pa, a' = lower_value ctx a in
    let pb, b' = lower_value ctx b in
    (pa @ pb, Binop (op, ty, a', b'))
  | Conv (to_, from, e) ->
    let pre, e' = lower_value ctx e in
    (pre, Conv (to_, from, e'))
  | Assign (ty, dst, src) ->
    (* an embedded assignment: the grammar only has statement-level
       assignment patterns, so extract it, remembering the stored value
       in a temporary (the value of the whole expression) *)
    let pd, dst' = lower_value ctx dst in
    let ps, src' = lower_value ctx src in
    let tmp = Context.fresh_temp ctx ty in
    ( pd @ ps
      @ [
          Tree.Stree (Tree.Assign (ty, tmp, src'));
          Tree.Stree (Tree.Assign (ty, dst', tmp));
        ],
      tmp )
  | Rassign (ty, src, dst) ->
    let ps, src' = lower_value ctx src in
    let pd, dst' = lower_value ctx dst in
    let tmp = Context.fresh_temp ctx ty in
    ( ps @ pd
      @ [
          Tree.Stree (Tree.Assign (ty, tmp, src'));
          Tree.Stree (Tree.Assign (ty, dst', tmp));
        ],
      tmp )
  | Call (ty, f, args) ->
    let pre, stmts = lower_call ctx ty f args in
    let tmp = Context.fresh_temp ctx ty in
    ( pre @ stmts
      @ [ Tree.Stree (Tree.Assign (ty, tmp, Tree.Dreg (ty, Regconv.r0))) ],
      tmp )
  | Land _ | Lor _ | Lnot _ | Relval _ ->
    let tmp = Context.fresh_temp ctx Dtype.Long in
    let l_false = Context.fresh_label ctx in
    let l_end = Context.fresh_label ctx in
    let test = branch_false ctx t l_false in
    ( test
      @ [
          Tree.Stree (Tree.Assign (Dtype.Long, tmp, Tree.Const (Dtype.Long, 1L)));
          Tree.Sjump l_end;
          Tree.Slabel l_false;
          Tree.Stree (Tree.Assign (Dtype.Long, tmp, Tree.Const (Dtype.Long, 0L)));
          Tree.Slabel l_end;
        ],
      tmp )
  | Select (ty, cond, a, b) ->
    let tmp = Context.fresh_temp ctx ty in
    let l_else = Context.fresh_label ctx in
    let l_end = Context.fresh_label ctx in
    let test = branch_false ctx cond l_else in
    let pa, a' = lower_value ctx a in
    let pb, b' = lower_value ctx b in
    ( test
      @ pa
      @ [
          Tree.Stree (Tree.Assign (ty, tmp, a'));
          Tree.Sjump l_end;
          Tree.Slabel l_else;
        ]
      @ pb
      @ [ Tree.Stree (Tree.Assign (ty, tmp, b')); Tree.Slabel l_end ],
      tmp )
  | Cbranch _ -> invalid_arg "Phase1a.lower_value: Cbranch in value position"
  | Arg _ -> invalid_arg "Phase1a.lower_value: Arg in value position"

(* Lower a call: returns (argument preludes, pushes + Scall). *)
and lower_call ctx ty f args : Tree.stmt list * Tree.stmt list =
  let lowered = List.map (lower_value ctx) args in
  let pre = List.concat_map fst lowered in
  let promoted = List.map (fun (_, e) -> promote_arg e) lowered in
  let slots = List.fold_left (fun acc (_, s) -> acc + s) 0 promoted in
  (* push right to left so the first argument ends up lowest *)
  let pushes =
    List.rev_map
      (fun (e, _) -> Tree.Stree (Tree.Arg (Tree.dtype e, e)))
      promoted
  in
  (pre, pushes @ [ Tree.Scall (f, slots, ty) ])

(* [branch_true ctx t target]: statements that branch to [target] when
   [t] is true (non-zero), and fall through otherwise. *)
and branch_true ctx (t : Tree.t) target : Tree.stmt list =
  match t with
  | Land (a, b) ->
    let l_skip = Context.fresh_label ctx in
    branch_false ctx a l_skip @ branch_true ctx b target
    @ [ Tree.Slabel l_skip ]
  | Lor (a, b) -> branch_true ctx a target @ branch_true ctx b target
  | Lnot e -> branch_false ctx e target
  | Relval (rel, sg, ty, a, b) ->
    let pa, a' = lower_value ctx a in
    let pb, b' = lower_value ctx b in
    pa @ pb @ [ Tree.Stree (Tree.Cbranch (rel, sg, ty, a', b', target)) ]
  | e ->
    let pre, e' = lower_value ctx e in
    let ty = Tree.dtype e' in
    pre
    @ [ Tree.Stree (Tree.Cbranch (Op.Ne, Dtype.Signed, ty, e', zero_of ty, target)) ]

and branch_false ctx (t : Tree.t) target : Tree.stmt list =
  match t with
  | Land (a, b) -> branch_false ctx a target @ branch_false ctx b target
  | Lor (a, b) ->
    let l_taken = Context.fresh_label ctx in
    branch_true ctx a l_taken @ branch_false ctx b target
    @ [ Tree.Slabel l_taken ]
  | Lnot e -> branch_true ctx e target
  | Relval (rel, sg, ty, a, b) ->
    let pa, a' = lower_value ctx a in
    let pb, b' = lower_value ctx b in
    pa @ pb
    @ [ Tree.Stree (Tree.Cbranch (Op.negate_relop rel, sg, ty, a', b', target)) ]
  | e ->
    let pre, e' = lower_value ctx e in
    let ty = Tree.dtype e' in
    pre
    @ [ Tree.Stree (Tree.Cbranch (Op.Eq, Dtype.Signed, ty, e', zero_of ty, target)) ]

let lower_stmt ctx (s : Tree.stmt) : Tree.stmt list =
  match s with
  | Tree.Slabel _ | Tree.Sjump _ | Tree.Sret | Tree.Scall _ | Tree.Scomment _
  | Tree.Sline _ ->
    [ s ]
  | Tree.Stree (Tree.Cbranch (rel, sg, ty, a, Tree.Const (cty, 0L), l))
    when rel = Op.Ne && sg = Dtype.Signed ->
    ignore (ty, cty);
    (* [if (e) goto l] — route through branch_true so short-circuit
       operators in [e] expand into branch structure, not into a
       materialised 0/1 value *)
    branch_true ctx a l
  | Tree.Stree (Tree.Cbranch (rel, sg, ty, a, Tree.Const (cty, 0L), l))
    when rel = Op.Eq && sg = Dtype.Signed ->
    ignore (ty, cty);
    branch_false ctx a l
  | Tree.Stree (Tree.Cbranch (rel, sg, ty, a, b, l)) ->
    let pa, a' = lower_value ctx a in
    let pb, b' = lower_value ctx b in
    pa @ pb @ [ Tree.Stree (Tree.Cbranch (rel, sg, ty, a', b', l)) ]
  | Tree.Stree (Tree.Call (ty, f, args)) ->
    (* result discarded *)
    let pre, call = lower_call ctx ty f args in
    pre @ call
  | Tree.Stree (Tree.Assign (ty, dst, Tree.Call (cty, f, args))) ->
    (* store the call result directly from r0, avoiding a temporary *)
    let pd, dst' = lower_value ctx dst in
    let pre, call = lower_call ctx cty f args in
    pd @ pre @ call
    @ [ Tree.Stree (Tree.Assign (ty, dst', Tree.Dreg (cty, Regconv.r0))) ]
  | Tree.Stree (Tree.Assign (ty, dst, src)) ->
    (* a root assignment is the grammar's statement form: keep it *)
    let pd, dst' = lower_value ctx dst in
    let ps, src' = lower_value ctx src in
    pd @ ps @ [ Tree.Stree (Tree.Assign (ty, dst', src')) ]
  | Tree.Stree (Tree.Rassign (ty, src, dst)) ->
    let ps, src' = lower_value ctx src in
    let pd, dst' = lower_value ctx dst in
    ps @ pd @ [ Tree.Stree (Tree.Rassign (ty, src', dst')) ]
  | Tree.Stree t ->
    let pre, t' = lower_value ctx t in
    pre @ [ Tree.Stree t' ]

let run ctx body = List.concat_map (lower_stmt ctx) body
