open Import

(** Phase 1c — evaluation ordering (paper section 5.1.3).

    The instruction selector walks trees left to right with no backup,
    so a right-heavy tree can waste registers.  This phase:

    - swaps the operands of a binary operator when the right subtree has
      more nodes, substituting the {e reverse} operator when the
      operation is not commutative (and [reverse_ops] permits it);
      address-shaped left operands (constants, symbol addresses) are
      exempt so Phase 1b's canonical forms survive;
    - turns [Assign] into [Rassign] when the source is more complex than
      the destination;
    - predicts register exhaustion with a Sethi–Ullman-style labelling
      and factors over-demanding subtrees into compiler temporaries so
      the selector never runs out of registers mid-expression.

    [stats] counts how many operators were actually swapped, the
    paper's "<1% of expressions" measurement. *)

type stats = {
  mutable swapped_commutative : int;
  mutable swapped_reverse : int;
  mutable reversed_assigns : int;
  mutable spill_splits : int;
}

(** [leaf_need] is the target's Sethi–Ullman weight for a leaf operand
    (see {!register_need}); 0 for the VAX, 1 for a load/store target. *)
val run :
  ?reverse_ops:bool ->
  ?spill_guard:bool ->
  ?spill_limit:int ->
  ?leaf_need:int ->
  ?stats:stats ->
  Context.t ->
  Tree.stmt list ->
  Tree.stmt list

val default_spill_limit : int

val fresh_stats : unit -> stats

(** Sethi–Ullman register need of a tree under our selector (exposed for
    tests). *)
val register_need : Tree.t -> int
