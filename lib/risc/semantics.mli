open Import

(** The RISC semantic dispatchers.

    The shared {!Gg_codegen.Semantics} machinery supplies the callback
    skeleton, the register manager and the output buffer; this module
    plugs in the target-specific parts: the mode builder for the RISC's
    small addressing repertoire, the Emit dispatcher that spells out
    load/operate/store sequences, and the operand mover. *)

(** The register manager's operand mover: load ([li]/[ld]/[mv]) into a
    register destination, store ([st]) a register into memory. *)
val move : Dtype.t -> src:Mode.t -> dst:Mode.t -> Insn.t list

(** Matcher callbacks bound to a semantics state and the RISC
    grammar. *)
val callbacks :
  Gg_codegen.Semantics.t -> Grammar.t -> Desc.sval Matcher.callbacks
