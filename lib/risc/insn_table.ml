open Import

(* The RISC instruction table: mnemonic construction, the branch
   table, assembly rendering and the cycle model.

   There are no clusters, binding idioms or pseudo-instructions here —
   on a three-address load/store machine every Emit action maps to a
   fixed instruction shape, so the table degenerates to mnemonic
   spelling plus costs.  That degeneration is itself a result of the
   retargeting experiment: the idiom machinery the VAX needs simply has
   nothing to do. *)

let sfx = Dtype.suffix

(* "add" + Long -> "addl"; floats get "addf"/"addd" the same way. *)
let mn base ty = base ^ sfx ty

(* Conditional branch mnemonic.  [cmp] is the only flag-setting
   instruction; the branch encodes the relation and the signedness
   (floats compare as signed reals and use the signed spellings). *)
let bcc rel (sg : Dtype.signedness) ty =
  let signed = function
    | Op.Eq -> "beq"
    | Op.Ne -> "bne"
    | Op.Lt -> "blt"
    | Op.Le -> "ble"
    | Op.Gt -> "bgt"
    | Op.Ge -> "bge"
  in
  if Dtype.is_float ty then signed rel
  else
    match sg with
    | Dtype.Signed -> signed rel
    | Dtype.Unsigned -> (
      match rel with
      | Op.Eq | Op.Ne -> signed rel
      | Op.Lt -> "bltu"
      | Op.Le -> "bleu"
      | Op.Gt -> "bgtu"
      | Op.Ge -> "bgeu")

(* Function frames are carved with an ordinary subtract; there is no
   dedicated frame-allocation instruction. *)
let prologue size = Fmt.str "\tsubl\tsp,$%d,sp\n" size

let prologue_cycles = 1

(* Calls render as [call $n,f] (argument count first, as on the VAX,
   so the simulator can pop the actuals); everything else prints like
   the shared renderer. *)
let render = function
  | Insn.Call (f, n) -> Fmt.str "\tcall\t$%d,%s" n f
  | i -> Insn.assembly i

(* A flat cost model: single-cycle ALU, two-cycle memory traffic and
   taken-or-not branches, multi-cycle multiply and divide.  Operands
   contribute nothing — there are no indexed or deferred modes to
   charge for. *)
let base_cost m =
  let has_prefix p =
    String.length m >= String.length p && String.sub m 0 (String.length p) = p
  in
  if has_prefix "div" || has_prefix "rem" then 12
  else if has_prefix "mul" then 4
  else if has_prefix "ld" || has_prefix "st" then 2
  else if has_prefix "cvt" then 2
  else 1 (* li, mv, la, add, sub, logicals, shifts, neg, not, cmp *)

let cycles = function
  | Insn.Insn (m, _) -> base_cost m
  | Insn.Branch _ -> 2
  | Insn.Call (_, n) -> 6 + n
  | Insn.Ret -> 6
  | Insn.Lab _ | Insn.Comment _ -> 0
