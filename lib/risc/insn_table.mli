open Import

(** The RISC instruction table.

    On a three-address load/store machine every [Emit] action maps to a
    fixed instruction shape, so the table reduces to mnemonic spelling,
    the branch table, rendering and a cycle model — none of the
    cluster/idiom machinery the VAX table needs. *)

(** [mn "add" Long] is ["addl"]; float types yield ["addf"]/["addd"]. *)
val mn : string -> Dtype.t -> string

(** Conditional branch mnemonic for a relation: [cmp] sets the flags,
    the branch encodes relation and signedness ([bltu] etc. for
    unsigned integer comparisons; floats use the signed spellings). *)
val bcc : Op.relop -> Dtype.signedness -> Dtype.t -> string

(** Frame allocation line, an ordinary [subl sp,$n,sp]. *)
val prologue : int -> string

val prologue_cycles : int

(** Assembly rendering; differs from the shared renderer only for
    [Call], which prints [call $n,f]. *)
val render : Insn.t -> string

(** Flat cost model: 1-cycle ALU, 2-cycle loads/stores/branches,
    multi-cycle multiply and divide; operands are free. *)
val cycles : Insn.t -> int
