(** The RISC backend, ready to hand to {!Gg_codegen.Driver}. *)
val backend : Gg_codegen.Backend.t
