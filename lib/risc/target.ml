open Import

(* The RISC backend record: the complete answer to "what besides the
   machine description changes when the machine changes".  No peephole
   pass exists for this target; the flat instruction set leaves it
   nothing to collapse. *)
let backend =
  {
    Backend.target = Backend.Risc;
    grammar_of = Grammar_def.grammar;
    default_grammar = Grammar_def.default_grammar;
    move = Some Semantics.move;
    callbacks = Semantics.callbacks;
    jump = (fun l -> Insn.Branch ("b", l));
    prologue = Insn_table.prologue;
    prologue_cycles = Insn_table.prologue_cycles;
    render_insn = Insn_table.render;
    insn_cycles = Insn_table.cycles;
    peephole = None;
    (* the load/store discipline keeps every live value in a register,
       so the RISC's bank extends past PCC's r6-r11 into r2-r5 (saved
       and restored around calls like the rest; r0/r1 stay reserved for
       function results) *)
    alloc_regs = [ 6; 7; 8; 9; 10; 11; 2; 3; 4; 5 ];
    leaf_need = 1;
    (* stores and compares read every operand; every other mnemonic
       (ld/li/mv/la, cvt, the three-address ALU forms) writes its last.
       No memory-operand ALU, so spills must go through reloads. *)
    regalloc =
      {
        Backend.ra_dst =
          (fun m ->
            let pre p =
              String.length m >= String.length p
              && String.sub m 0 (String.length p) = p
            in
            if pre "st" || pre "cmp" then Backend.Dst_none
            else Backend.Dst_write);
        ra_spill_in_place = false;
      };
  }
