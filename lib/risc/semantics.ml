open Import
module S = Gg_codegen.Semantics

(* The RISC semantic dispatchers.

   The callback skeleton (shift/reduce/choose), the register manager,
   the output buffer and the provenance bookkeeping are all the shared
   {!Gg_codegen.Semantics} machinery; this module supplies only the two
   target-specific dispatchers — the mode builder for the RISC's small
   addressing repertoire and the Emit dispatcher that spells out
   load/store instruction sequences — plus the operand mover the
   register manager uses for spills and reloads. *)

let sfx = Dtype.suffix

(* -- the operand mover --------------------------------------------------- *)

(* Moving a value is not one instruction on a load/store machine: the
   mnemonic depends on where the value comes from and goes to.  The
   register manager calls this for spill stores, reloads and
   materialisations; the store dispatcher reuses it. *)
let move ty ~(src : Mode.t) ~(dst : Mode.t) =
  match dst with
  | Mode.Reg _ ->
    let m =
      match src with
      | Mode.Imm _ | Mode.Fimm _ -> "li"
      | Mode.Mem _ -> "ld"
      | Mode.Reg _ -> "mv"
    in
    [ Insn.insn (m ^ sfx ty) [ src; dst ] ]
  | Mode.Mem _ -> (
    match src with
    | Mode.Reg _ -> [ Insn.insn ("st" ^ sfx ty) [ src; dst ] ]
    | _ ->
      Fmt.failwith "risc mover: store source %s is not a register"
        (Mode.assembly src))
  | Mode.Imm _ | Mode.Fimm _ ->
    Fmt.failwith "risc mover: immediate destination"

(* -- the mode builder ----------------------------------------------------- *)

let compose_mem t ~owned ty operand =
  Regmgr.compose (S.regmgr t) (Desc.make ~owned ty operand)

let build_mode t g name (p : Grammar.production) (args : Desc.sval array) :
    Desc.sval =
  let ty () =
    match S.lhs_type g p with
    | Some ty -> ty
    | None -> Fmt.failwith "mode %s on untyped non-terminal" name
  in
  let as_reg i =
    let d = Regmgr.as_register (S.regmgr t) (Desc.desc args.(i)) in
    match d.Desc.operand with
    | Mode.Reg r -> (r, d)
    | _ -> assert false
  in
  match (name, args) with
  | "imm", [| Node (Tree.Const (cty, n)) |] ->
    Desc.D (Desc.make cty (Mode.Imm n))
  | "name", [| Node (Tree.Name (nty, s)) |] ->
    Desc.D (Desc.make nty (Mode.mem_sym s))
  | "temp", [| Node (Tree.Temp (tty, i)) |] ->
    Desc.D (Desc.make tty (Frame.temp_mode (S.frame t) i tty))
  | "dreg", [| Node (Tree.Dreg (rty, r)) |] ->
    Desc.D (Desc.make rty (Mode.Reg r))
  | "indir", [| Node (Tree.Indir (ity, _)); D ea |] ->
    Desc.D (compose_mem t ~owned:ea.Desc.owned ity ea.Desc.operand)
  | "deferred", [| D _ |] ->
    let r, d = as_reg 0 in
    Desc.D (compose_mem t ~owned:d.Desc.owned (ty ()) (Mode.mem_deferred r))
  | "absolute", [| Node (Tree.Const (_, n)) |] ->
    Desc.D
      (Desc.make (ty ())
         (Mode.Mem
            { base = None; sym = None; disp = n; index = None; auto = None }))
  | "disp", [| Node _; Node (Tree.Const (_, d)); D _ |] ->
    let r, rd = as_reg 2 in
    Desc.D (compose_mem t ~owned:rd.Desc.owned (ty ()) (Mode.mem_disp d r))
  | "symdisp", [| Node _; Node _; Node (Tree.Name (_, s)); D _ |] ->
    let r, rd = as_reg 3 in
    Desc.D
      (compose_mem t ~owned:rd.Desc.owned (ty ()) (Mode.mem_disp ~sym:s 0L r))
  | _, _ ->
    Fmt.failwith "mode builder %s: unexpected production %s <- ... (%d args)"
      name
      (Symtab.nonterm_name g.Grammar.symtab p.lhs)
      (Array.length args)

(* -- the Emit dispatcher -------------------------------------------------- *)

let emit_insn t _g key (_p : Grammar.production) (args : Desc.sval array) :
    Desc.sval =
  let regs = S.regmgr t in
  let emit i = S.emit t i in
  let release d = Regmgr.release regs d in
  let as_register d = Regmgr.as_register regs d in
  (* a source that may stay an immediate in the instruction *)
  let as_source d =
    match d.Desc.operand with
    | Mode.Imm _ | Mode.Fimm _ -> d
    | _ -> as_register d
  in
  let base, suffix = S.parse_key key in
  let ty_of_suffix () =
    match suffix with
    | Some s -> (
      match Dtype.of_suffix s with
      | Some ty -> ty
      | None -> Fmt.failwith "emit key %s: bad type suffix" key)
    | None -> Fmt.failwith "emit key %s: missing type suffix" key
  in
  match (base, args) with
  (* ---- loads into registers ---- *)
  | "li", [| Node (Tree.Fconst (fty, f)) |] ->
    let d = Regmgr.alloc regs fty in
    emit (Insn.insn ("li" ^ sfx fty) [ Mode.Fimm f; d.Desc.operand ]);
    Desc.D d
  | "ld", [| D src |] ->
    release src;
    let ty = ty_of_suffix () in
    let d = Regmgr.alloc regs ty in
    List.iter emit (move ty ~src:src.Desc.operand ~dst:d.Desc.operand);
    Desc.D d
  | "ldinc", [| Node (Tree.Autoinc (aty, r)) |] ->
    let d = Regmgr.alloc regs aty in
    emit (Insn.insn ("ld" ^ sfx aty) [ Mode.mem_deferred r; d.Desc.operand ]);
    emit
      (Insn.insn "addl"
         [ Mode.Reg r; Mode.Imm (Int64.of_int (Dtype.size aty)); Mode.Reg r ]);
    Desc.D d
  | "lddec", [| Node (Tree.Autodec (aty, r)) |] ->
    emit
      (Insn.insn "subl"
         [ Mode.Reg r; Mode.Imm (Int64.of_int (Dtype.size aty)); Mode.Reg r ]);
    let d = Regmgr.alloc regs aty in
    emit (Insn.insn ("ld" ^ sfx aty) [ Mode.mem_deferred r; d.Desc.operand ]);
    Desc.D d
  (* ---- stores ---- *)
  | "st", [| Node _; D dst; D src |] | "st_r", [| Node _; D src; D dst |] ->
    let ty = ty_of_suffix () in
    let src =
      match dst.Desc.operand with
      | Mode.Mem _ -> as_register src
      | _ -> src
    in
    List.iter emit (move ty ~src:src.Desc.operand ~dst:dst.Desc.operand);
    release src;
    release dst;
    Desc.Done
  | "stinc", [| Node _; Node (Tree.Autoinc (aty, r)); D src |]
  | "stinc", [| Node _; D src; Node (Tree.Autoinc (aty, r)) |] ->
    let src = as_register src in
    emit (Insn.insn ("st" ^ sfx aty) [ src.Desc.operand; Mode.mem_deferred r ]);
    emit
      (Insn.insn "addl"
         [ Mode.Reg r; Mode.Imm (Int64.of_int (Dtype.size aty)); Mode.Reg r ]);
    release src;
    Desc.Done
  | "stdec", [| Node _; Node (Tree.Autodec (aty, r)); D src |]
  | "stdec", [| Node _; D src; Node (Tree.Autodec (aty, r)) |] ->
    let src = as_register src in
    emit
      (Insn.insn "subl"
         [ Mode.Reg r; Mode.Imm (Int64.of_int (Dtype.size aty)); Mode.Reg r ]);
    emit (Insn.insn ("st" ^ sfx aty) [ src.Desc.operand; Mode.mem_deferred r ]);
    release src;
    Desc.Done
  (* ---- unary operators ---- *)
  | ("neg" | "not"), [| Node _; D src |] ->
    let src = as_register src in
    release src;
    let ty = ty_of_suffix () in
    let d = Regmgr.alloc regs ty in
    emit (Insn.insn (base ^ sfx ty) [ src.Desc.operand; d.Desc.operand ]);
    Desc.D d
  (* ---- conversions ---- *)
  | "cvt", [| Node _; D src |] ->
    let src = as_register src in
    release src;
    let to_ty =
      match suffix with
      | Some s when String.length s = 2 ->
        Option.get (Dtype.of_suffix (String.make 1 s.[1]))
      | _ -> Fmt.failwith "cvt key %s" key
    in
    let d = Regmgr.alloc regs to_ty in
    emit
      (Insn.insn ("cvt" ^ Option.get suffix)
         [ src.Desc.operand; d.Desc.operand ]);
    Desc.D d
  (* ---- compare and branch ---- *)
  | "cmpbr", [| Node cb; Node _; D a; D b; Node _ |] ->
    let rel, sg, bty, label = S.branch_of_node cb in
    let a = as_register a in
    Regmgr.pin regs a;
    let b = as_source b in
    Regmgr.unpin regs a;
    emit
      (Insn.insn ("cmp" ^ sfx (ty_of_suffix ()))
         [ a.Desc.operand; b.Desc.operand ]);
    release a;
    release b;
    emit (Insn.Branch (Insn_table.bcc rel sg bty, label));
    Desc.Done
  (* ---- argument pushes ---- *)
  | "push", [| Node _; D v |] ->
    let ty = ty_of_suffix () in
    let v = as_register v in
    emit
      (Insn.insn "subl"
         [
           Mode.Reg Regconv.sp;
           Mode.Imm (Int64.of_int (Dtype.size ty));
           Mode.Reg Regconv.sp;
         ]);
    emit
      (Insn.insn ("st" ^ sfx ty)
         [ v.Desc.operand; Mode.mem_deferred Regconv.sp ]);
    release v;
    Desc.Done
  (* ---- address-of ---- *)
  | "la", [| Node _; Node leaf |] ->
    let operand =
      match leaf with
      | Tree.Name (_, s) -> Mode.mem_sym s
      | Tree.Temp (tty, i) -> Frame.temp_mode (S.frame t) i tty
      | _ -> Fmt.failwith "la of unexpected leaf"
    in
    let d = Regmgr.alloc regs Dtype.Long in
    emit (Insn.insn "la" [ operand; d.Desc.operand ]);
    Desc.D d
  | "la", [| Node _; Node _; D ea |] ->
    release ea;
    let d = Regmgr.alloc regs Dtype.Long in
    emit (Insn.insn "la" [ ea.Desc.operand; d.Desc.operand ]);
    Desc.D d
  (* ---- three-address arithmetic ---- *)
  | _, [| Node opnode; D a; D b |] ->
    let op = S.binop_of_node opnode in
    let ty = ty_of_suffix () in
    (* reverse operators carry their operands in evaluation order *)
    let s1, s2 = if Op.is_reverse op then (b, a) else (a, b) in
    (* pin the first source while the second is materialised: its
       reload may otherwise spill the register we just ensured *)
    let s1 = as_register s1 in
    Regmgr.pin regs s1;
    let s2 = as_source s2 in
    Regmgr.unpin regs s1;
    release s1;
    release s2;
    let d = Regmgr.alloc regs ty in
    emit
      (Insn.insn (base ^ sfx ty)
         [ s1.Desc.operand; s2.Desc.operand; d.Desc.operand ]);
    Desc.D d
  | _, _ ->
    Fmt.failwith "emit %s: unexpected production shape (%d args)" key
      (Array.length args)

(* -- matcher callbacks ---------------------------------------------------- *)

let callbacks t g = S.make_callbacks t ~mode:build_mode ~emit:emit_insn g
