open Import

(* The RISC machine description (the retargeting experiment).

   A small load/store machine in the style of the early RISC designs:
   three-address register-register arithmetic (with an immediate
   allowed as the second source of the integer forms), explicit loads
   and stores as the only memory traffic, a register-pair convention
   for 8-byte values, and compare-and-branch as the only
   condition-code use.  Everything else — the table constructor, the
   matcher, the register manager, the driver — is the shared machinery
   the VAX description drives; only this grammar, the instruction
   table, and the semantic dispatchers are new.

   Addressing is deliberately poor next to the VAX: a memory operand
   is a symbol, a displacement off a register, a register indirect or
   an absolute address.  There are no autoincrement, index or
   memory-destination forms, so trees the VAX folds into one
   instruction expand into load / operate / store sequences here. *)

(* The options record is shared with the driver (it is the VAX module's
   type); the RISC grammar honours the IR-level fields — [int_types],
   [float_types], [reverse_ops] — and ignores the VAX-specific knobs
   ([overfactored], [with_bridges], [condition_code_fix]). *)
type options = Vax_options.options

let default = Vax_options.default

(* The instruction-table key base for a binary operator. *)
let key_of_binop op =
  match Op.unreverse op with
  | Op.Plus -> "add"
  | Op.Minus -> "sub"
  | Op.Mul -> "mul"
  | Op.Div -> "div"
  | Op.Mod -> "rem"
  | Op.And -> "and"
  | Op.Or -> "or"
  | Op.Xor -> "xor"
  | Op.Lsh -> "sll"
  | Op.Rsh -> "sra"
  | Op.Udiv -> "divu"
  | Op.Umod -> "remu"
  | Op.Rminus | Op.Rdiv | Op.Rmod | Op.Rlsh | Op.Rrsh -> assert false

let schemas (o : options) =
  let all = o.Vax_options.int_types @ o.Vax_options.float_types in
  let ints = o.Vax_options.int_types in
  let flts = o.Vax_options.float_types in
  let acc = ref [] in
  let push s = acc := s :: !acc in
  let typed ?note tys lhs rhs action =
    push (Schema.typed ?note tys lhs rhs action)
  in
  let literal ?note lhs rhs action =
    push (Schema.literal ?note lhs rhs action)
  in
  let pairs ?note ps lhs rhs action =
    push (Schema.pairs ?note ps lhs rhs action)
  in

  (* ---- immediates ---- *)
  typed ints "imm.$t" [ "Const.$t" ] (Action.Mode "imm") ~note:"immediate";
  List.iter
    (fun k ->
      typed ints "imm.$t" [ k ^ ".$t" ] (Action.Mode "imm") ~note:"immediate")
    [ "Zero"; "One"; "Two"; "Four"; "Eight" ];
  pairs
    [ (Dtype.Byte, Dtype.Word); (Dtype.Byte, Dtype.Long);
      (Dtype.Word, Dtype.Long) ]
    "imm.$t" [ "Const.$f" ] (Action.Mode "imm") ~note:"widened immediate";
  (* a float literal exists only in a register *)
  typed flts "reg.$t" [ "Fconst.$t" ] (Action.Emit "li.$t")
    ~note:"float literal load";

  (* ---- memory operands (the whole addressing repertoire) ---- *)
  typed all "mem.$t" [ "Name.$t" ] (Action.Mode "name") ~note:"a";
  typed all "mem.$t" [ "Temp.$t" ] (Action.Mode "temp") ~note:"T(fp)";
  typed all "mem.$t" [ "Indir.$t"; "ea.$t" ] (Action.Mode "indir") ~note:"*ea";

  typed all "ea.$t" [ "reg.l" ] (Action.Mode "deferred") ~note:"(rn)";
  typed all "ea.$t" [ "Const.l" ] (Action.Mode "absolute") ~note:"n";
  typed all "ea.$t"
    [ "Plus.l"; "Const.l"; "reg.l" ]
    (Action.Mode "disp") ~note:"d(rn)";
  List.iter
    (fun k ->
      typed all "ea.$t"
        [ "Plus.l"; k ^ ".l"; "reg.l" ]
        (Action.Mode "disp") ~note:"d(rn), special-constant d")
    [ "One"; "Two"; "Four"; "Eight" ];
  typed all "ea.$t"
    [ "Plus.l"; "Addr.$t"; "Name.$t"; "reg.l" ]
    (Action.Mode "symdisp") ~note:"a(rn)";

  (* ---- registers ---- *)
  typed all "reg.$t" [ "Dreg.$t" ] (Action.Mode "dreg") ~note:"rn (no code)";
  typed all "reg.$t" [ "rval.$t" ] (Action.Emit "ld.$t")
    ~note:"li/ld/mv into a register";
  (* autoincrement and autodecrement exist in the IR (register-variable
     pointers); the RISC expands them to a load/store plus an explicit
     pointer adjustment *)
  typed all "reg.$t" [ "Autoinc.$t" ] (Action.Emit "ldinc.$t")
    ~note:"ld (rn),r; add rn";
  typed all "reg.$t" [ "Autodec.$t" ] (Action.Emit "lddec.$t")
    ~note:"sub rn; ld (rn),r";

  (* ---- value and lvalue chains ---- *)
  typed ints "rval.$t" [ "imm.$t" ] Action.Chain;
  typed all "rval.$t" [ "mem.$t" ] Action.Chain;
  typed all "rval.$t" [ "reg.$t" ] Action.Chain;
  typed all "lval.$t" [ "mem.$t" ] Action.Chain;
  typed all "lval.$t" [ "Dreg.$t" ] (Action.Mode "dreg");

  (* ---- stores (the only way memory is written) ---- *)
  typed all "stmt" [ "Assign.$t"; "lval.$t"; "reg.$t" ]
    (Action.Emit "st.$t") ~note:"st r,d / mv r,rd";
  if o.Vax_options.reverse_ops then
    typed all "stmt" [ "Rassign.$t"; "reg.$t"; "lval.$t" ]
      (Action.Emit "st_r.$t") ~note:"st r,d (source first)";
  typed all "stmt" [ "Assign.$t"; "Autoinc.$t"; "reg.$t" ]
    (Action.Emit "stinc.$t") ~note:"st r,(rn); add rn";
  typed all "stmt" [ "Assign.$t"; "Autodec.$t"; "reg.$t" ]
    (Action.Emit "stdec.$t") ~note:"sub rn; st r,(rn)";
  if o.Vax_options.reverse_ops then begin
    typed all "stmt" [ "Rassign.$t"; "reg.$t"; "Autoinc.$t" ]
      (Action.Emit "stinc.$t") ~note:"st r,(rn); add rn (source first)";
    typed all "stmt" [ "Rassign.$t"; "reg.$t"; "Autodec.$t" ]
      (Action.Emit "stdec.$t") ~note:"sub rn; st r,(rn) (source first)"
  end;

  (* ---- three-address arithmetic, registers only ---- *)
  let emit_binop_schemas ~with_imm ty_class binops =
    List.iter
      (fun op ->
        let op_t = Op.binop_name op ^ ".$t" in
        let key = Action.Emit (key_of_binop op ^ ".$t") in
        if Op.is_reverse op then begin
          if o.Vax_options.reverse_ops then
            typed ty_class "reg.$t" [ op_t; "reg.$t"; "reg.$t" ] key
              ~note:"reverse operand order"
        end
        else begin
          typed ty_class "reg.$t" [ op_t; "reg.$t"; "reg.$t" ] key
            ~note:"three-address, register sources";
          if with_imm then
            typed ty_class "reg.$t" [ op_t; "reg.$t"; "imm.$t" ] key
              ~note:"immediate second source"
        end)
      binops
  in
  let int_common =
    [ Op.Plus; Op.Minus; Op.Mul; Op.Div; Op.Mod; Op.And; Op.Or; Op.Xor ]
    @ if o.Vax_options.reverse_ops then [ Op.Rminus; Op.Rdiv; Op.Rmod ]
      else []
  in
  emit_binop_schemas ~with_imm:true ints int_common;
  let long_only =
    [ Op.Lsh; Op.Rsh; Op.Udiv; Op.Umod ]
    @ if o.Vax_options.reverse_ops then [ Op.Rlsh; Op.Rrsh ] else []
  in
  emit_binop_schemas ~with_imm:true [ Dtype.Long ] long_only;
  emit_binop_schemas ~with_imm:false flts
    ([ Op.Plus; Op.Minus; Op.Mul; Op.Div ]
    @ if o.Vax_options.reverse_ops then [ Op.Rminus; Op.Rdiv ] else []);

  (* ---- unary operators ---- *)
  typed all "reg.$t" [ "Neg.$t"; "reg.$t" ] (Action.Emit "neg.$t")
    ~note:"neg s,r";
  typed ints "reg.$t" [ "Com.$t"; "reg.$t" ] (Action.Emit "not.$t")
    ~note:"not s,r";

  (* ---- conversions ---- *)
  let pairs_list =
    List.concat_map
      (fun from ->
        List.filter_map
          (fun to_ -> if Dtype.equal from to_ then None else Some (from, to_))
          all)
      all
  in
  pairs pairs_list "reg.$t" [ "Cvt.$f$t"; "reg.$f" ]
    (Action.Emit "cvt.$f$t") ~note:"cvt s,r";

  (* ---- compare and branch ---- *)
  typed all "stmt" [ "Cbranch"; "Cmp.$t"; "reg.$t"; "reg.$t"; "Label" ]
    (Action.Emit "cmpbr.$t") ~note:"cmp a,b; bCC L";
  typed ints "stmt" [ "Cbranch"; "Cmp.$t"; "reg.$t"; "imm.$t"; "Label" ]
    (Action.Emit "cmpbr.$t") ~note:"cmp a,k; bCC L";

  (* ---- argument pushes and address-of ---- *)
  literal "stmt" [ "Arg.l"; "reg.l" ] (Action.Emit "push.l")
    ~note:"sub sp; st r,(sp)";
  if List.mem Dtype.Dbl flts then
    literal "stmt" [ "Arg.d"; "reg.d" ] (Action.Emit "push.d")
      ~note:"sub sp; std r,(sp)";
  typed all "reg.l" [ "Addr.$t"; "Name.$t" ] (Action.Emit "la.$t")
    ~note:"la a,r";
  typed all "reg.l" [ "Addr.$t"; "Temp.$t" ] (Action.Emit "la.$t")
    ~note:"la T(fp),r";
  typed all "reg.l" [ "Addr.$t"; "Indir.$t"; "ea.$t" ]
    (Action.Emit "la.$t") ~note:"la ea,r";

  List.rev !acc

let grammar o = Grammar.make_exn ~start:"stmt" (Schema.expand_all (schemas o))

let default_grammar = lazy (grammar default)

let treelang (o : options) =
  Treelang.description ~int_types:o.Vax_options.int_types
    ~float_types:o.Vax_options.float_types
    ~reverse_ops:o.Vax_options.reverse_ops ()
