type t =
  | Const of Dtype.t * int64
  | Fconst of Dtype.t * float
  | Name of Dtype.t * string
  | Temp of Dtype.t * int
  | Dreg of Dtype.t * int
  | Autoinc of Dtype.t * int
  | Autodec of Dtype.t * int
  | Indir of Dtype.t * t
  | Addr of t
  | Unop of Op.unop * Dtype.t * t
  | Binop of Op.binop * Dtype.t * t * t
  | Conv of Dtype.t * Dtype.t * t
  | Assign of Dtype.t * t * t
  | Rassign of Dtype.t * t * t
  | Cbranch of Op.relop * Dtype.signedness * Dtype.t * t * t * Label.t
  | Call of Dtype.t * string * t list
  | Arg of Dtype.t * t
  | Land of t * t
  | Lor of t * t
  | Lnot of t
  | Select of Dtype.t * t * t * t
  | Relval of Op.relop * Dtype.signedness * Dtype.t * t * t

type stmt =
  | Stree of t
  | Slabel of Label.t
  | Sjump of Label.t
  | Sret
  | Scall of string * int * Dtype.t
  | Scomment of string
  | Sline of int

type func = {
  fname : string;
  formals : (string * Dtype.t) list;
  ret_type : Dtype.t;
  locals_size : int;
  body : stmt list;
}

type program = {
  globals : (string * Dtype.t * int) list;
  funcs : func list;
}

let dtype = function
  | Const (ty, _)
  | Fconst (ty, _)
  | Name (ty, _)
  | Temp (ty, _)
  | Dreg (ty, _)
  | Autoinc (ty, _)
  | Autodec (ty, _)
  | Indir (ty, _)
  | Unop (_, ty, _)
  | Binop (_, ty, _, _)
  | Conv (ty, _, _)
  | Assign (ty, _, _)
  | Rassign (ty, _, _)
  | Call (ty, _, _)
  | Arg (ty, _)
  | Select (ty, _, _, _) ->
    ty
  | Addr _ | Land _ | Lor _ | Lnot _ | Relval _ -> Dtype.Long
  | Cbranch _ -> Dtype.Long

let children = function
  | Const _ | Fconst _ | Name _ | Temp _ | Dreg _ | Autoinc _ | Autodec _ -> []
  | Indir (_, e) | Addr e | Unop (_, _, e) | Conv (_, _, e) | Arg (_, e)
  | Lnot e ->
    [ e ]
  | Binop (_, _, a, b)
  | Assign (_, a, b)
  | Rassign (_, a, b)
  | Cbranch (_, _, _, a, b, _)
  | Land (a, b)
  | Lor (a, b)
  | Relval (_, _, _, a, b) ->
    [ a; b ]
  | Select (_, c, a, b) -> [ c; a; b ]
  | Call (_, _, args) -> args

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 (children t)

let rec equal a b =
  match (a, b) with
  | Const (ta, va), Const (tb, vb) -> Dtype.equal ta tb && Int64.equal va vb
  | Fconst (ta, va), Fconst (tb, vb) -> Dtype.equal ta tb && Float.equal va vb
  | Name (ta, na), Name (tb, nb) -> Dtype.equal ta tb && String.equal na nb
  | Temp (ta, na), Temp (tb, nb) | Dreg (ta, na), Dreg (tb, nb)
  | Autoinc (ta, na), Autoinc (tb, nb) | Autodec (ta, na), Autodec (tb, nb) ->
    Dtype.equal ta tb && Int.equal na nb
  | Indir (ta, ea), Indir (tb, eb) -> Dtype.equal ta tb && equal ea eb
  | Addr ea, Addr eb -> equal ea eb
  | Unop (oa, ta, ea), Unop (ob, tb, eb) ->
    oa = ob && Dtype.equal ta tb && equal ea eb
  | Binop (oa, ta, xa, ya), Binop (ob, tb, xb, yb) ->
    oa = ob && Dtype.equal ta tb && equal xa xb && equal ya yb
  | Conv (ta, fa, ea), Conv (tb, fb, eb) ->
    Dtype.equal ta tb && Dtype.equal fa fb && equal ea eb
  | Assign (ta, xa, ya), Assign (tb, xb, yb)
  | Rassign (ta, xa, ya), Rassign (tb, xb, yb) ->
    Dtype.equal ta tb && equal xa xb && equal ya yb
  | Cbranch (ra, sa, ta, xa, ya, la), Cbranch (rb, sb, tb, xb, yb, lb) ->
    ra = rb && sa = sb && Dtype.equal ta tb && equal xa xb && equal ya yb
    && Label.equal la lb
  | Call (ta, na, aa), Call (tb, nb, ab) ->
    Dtype.equal ta tb && String.equal na nb
    && List.length aa = List.length ab
    && List.for_all2 equal aa ab
  | Arg (ta, ea), Arg (tb, eb) -> Dtype.equal ta tb && equal ea eb
  | Land (xa, ya), Land (xb, yb) | Lor (xa, ya), Lor (xb, yb) ->
    equal xa xb && equal ya yb
  | Lnot ea, Lnot eb -> equal ea eb
  | Select (ta, ca, xa, ya), Select (tb, cb, xb, yb) ->
    Dtype.equal ta tb && equal ca cb && equal xa xb && equal ya yb
  | Relval (ra, sa, ta, xa, ya), Relval (rb, sb, tb, xb, yb) ->
    ra = rb && sa = sb && Dtype.equal ta tb && equal xa xb && equal ya yb
  | ( ( Const _ | Fconst _ | Name _ | Temp _ | Dreg _ | Autoinc _ | Autodec _
      | Indir _ | Addr _ | Unop _ | Binop _ | Conv _ | Assign _ | Rassign _
      | Cbranch _ | Call _ | Arg _ | Land _ | Lor _ | Lnot _ | Select _
      | Relval _ ),
      _ ) ->
    false

let is_lvalue = function
  | Name _ | Temp _ | Dreg _ | Indir _ | Autoinc _ | Autodec _ -> true
  | Const _ | Fconst _ | Addr _ | Unop _ | Binop _ | Conv _ | Assign _
  | Rassign _ | Cbranch _ | Call _ | Arg _ | Land _ | Lor _ | Lnot _
  | Select _ | Relval _ ->
    false

let wrap ty n =
  match ty with
  | Dtype.Byte -> Int64.of_int (Int64.to_int n land 0xff |> fun v ->
      if v >= 0x80 then v - 0x100 else v)
  | Dtype.Word -> Int64.of_int (Int64.to_int n land 0xffff |> fun v ->
      if v >= 0x8000 then v - 0x10000 else v)
  | Dtype.Long ->
    Int64.of_int32 (Int64.to_int32 n)
  | Dtype.Quad | Dtype.Flt | Dtype.Dbl -> n

let const ty n = Const (ty, wrap ty n)

let check ?(after_phase1 = false) tree =
  let exception Bad of string in
  let bad fmt = Fmt.kstr (fun s -> raise (Bad s)) fmt in
  let rec go ~root t =
    (match t with
    | Assign (ty, dst, src) | Rassign (ty, src, dst) ->
      if not (is_lvalue dst) then
        bad "assignment destination is not an lvalue";
      if not (Dtype.equal (dtype dst) ty) then
        bad "assignment destination type mismatch";
      ignore src
    | Indir (_, addr) ->
      if not (Dtype.equal (dtype addr) Dtype.Long) then
        bad "Indir address is not Long"
    | Addr e -> if not (is_lvalue e) then bad "Addr of a non-lvalue"
    | Conv (to_, from, e) ->
      if not (Dtype.equal (dtype e) from) then bad "Conv source type mismatch";
      if Dtype.equal to_ from then bad "Conv to identical type"
    | Call _ ->
      if after_phase1 && not root then
        bad "embedded Call survives Phase 1a"
    | Cbranch _ ->
      if not root then bad "Cbranch below the root"
    | Arg _ ->
      if not root then bad "Arg below the root"
    | Land _ | Lor _ | Lnot _ | Select _ | Relval _ ->
      if after_phase1 then
        bad "short-circuit/selection/comparison value survives Phase 1a"
    | Const _ | Fconst _ | Name _ | Temp _ | Dreg _ | Autoinc _ | Autodec _
    | Unop _ | Binop _ ->
      ());
    (* An Assign root may directly store a Call result (Phase 1a's own
       output), so its source child keeps root-like status for calls. *)
    let child_root =
      match t with Assign _ | Rassign _ -> true | _ -> false
    in
    List.iter (go ~root:child_root) (children t)
  in
  match go ~root:true tree with
  | () -> Ok ()
  | exception Bad msg -> Error msg

let rec pp ppf t =
  let sfx ty = Dtype.suffix ty in
  match t with
  | Const (ty, n) -> Fmt.pf ppf "Const.%s(%Ld)" (sfx ty) n
  | Fconst (ty, f) -> Fmt.pf ppf "Fconst.%s(%g)" (sfx ty) f
  | Name (ty, s) -> Fmt.pf ppf "Name.%s(%s)" (sfx ty) s
  | Temp (ty, i) -> Fmt.pf ppf "Temp.%s(T%d)" (sfx ty) i
  | Dreg (ty, r) -> Fmt.pf ppf "Dreg.%s(r%d)" (sfx ty) r
  | Autoinc (ty, r) -> Fmt.pf ppf "Autoinc.%s(r%d)" (sfx ty) r
  | Autodec (ty, r) -> Fmt.pf ppf "Autodec.%s(r%d)" (sfx ty) r
  | Indir (ty, e) -> Fmt.pf ppf "Indir.%s %a" (sfx ty) pp e
  | Addr e -> Fmt.pf ppf "Addr %a" pp e
  | Unop (op, ty, e) -> Fmt.pf ppf "%s.%s %a" (Op.unop_name op) (sfx ty) pp e
  | Binop (op, ty, a, b) ->
    Fmt.pf ppf "%s.%s %a %a" (Op.binop_name op) (sfx ty) pp a pp b
  | Conv (to_, from, e) ->
    Fmt.pf ppf "Cvt.%s%s %a" (sfx from) (sfx to_) pp e
  | Assign (ty, d, s) -> Fmt.pf ppf "Assign.%s %a %a" (sfx ty) pp d pp s
  | Rassign (ty, s, d) -> Fmt.pf ppf "Rassign.%s %a %a" (sfx ty) pp s pp d
  | Cbranch (r, sg, ty, a, b, l) ->
    Fmt.pf ppf "Cbranch Cmp%s.%s(%s) %a %a %a"
      (match sg with Dtype.Unsigned -> "u" | Dtype.Signed -> "")
      (sfx ty) (Op.relop_name r) pp a pp b Label.pp l
  | Call (ty, f, args) ->
    Fmt.pf ppf "Call.%s(%s)[%a]" (sfx ty) f (Fmt.list ~sep:Fmt.comma pp) args
  | Arg (ty, e) -> Fmt.pf ppf "Arg.%s %a" (sfx ty) pp e
  | Land (a, b) -> Fmt.pf ppf "Land %a %a" pp a pp b
  | Lor (a, b) -> Fmt.pf ppf "Lor %a %a" pp a pp b
  | Lnot e -> Fmt.pf ppf "Lnot %a" pp e
  | Select (ty, c, a, b) ->
    Fmt.pf ppf "Select.%s %a %a %a" (sfx ty) pp c pp a pp b
  | Relval (r, sg, ty, a, b) ->
    Fmt.pf ppf "Relval.%s%s(%s) %a %a"
      (match sg with Dtype.Unsigned -> "u" | Dtype.Signed -> "")
      (sfx ty) (Op.relop_name r) pp a pp b

let pp_stmt ppf = function
  | Stree t -> Fmt.pf ppf "  %a" pp t
  | Slabel l -> Fmt.pf ppf "%a:" Label.pp l
  | Sjump l -> Fmt.pf ppf "  jbr %a" Label.pp l
  | Sret -> Fmt.pf ppf "  ret"
  | Scall (f, n, ty) -> Fmt.pf ppf "  calls $%d,%s ; result %s" n f (Dtype.name ty)
  | Scomment s -> Fmt.pf ppf "  # %s" s
  | Sline n -> Fmt.pf ppf "  # line %d" n

let pp_func ppf f =
  Fmt.pf ppf "func %s(%a) locals=%d@\n%a" f.fname
    Fmt.(list ~sep:comma (pair ~sep:(any ":") string Dtype.pp))
    f.formals f.locals_size
    Fmt.(list ~sep:(any "@\n") pp_stmt)
    f.body

let to_string t = Fmt.str "%a" pp t

let rec map_bottom_up f t =
  let go = map_bottom_up f in
  let t' =
    match t with
    | Const _ | Fconst _ | Name _ | Temp _ | Dreg _ | Autoinc _ | Autodec _ ->
      t
    | Indir (ty, e) -> Indir (ty, go e)
    | Addr e -> Addr (go e)
    | Unop (op, ty, e) -> Unop (op, ty, go e)
    | Binop (op, ty, a, b) -> Binop (op, ty, go a, go b)
    | Conv (to_, from, e) -> Conv (to_, from, go e)
    | Assign (ty, a, b) -> Assign (ty, go a, go b)
    | Rassign (ty, a, b) -> Rassign (ty, go a, go b)
    | Cbranch (r, sg, ty, a, b, l) -> Cbranch (r, sg, ty, go a, go b, l)
    | Call (ty, name, args) -> Call (ty, name, List.map go args)
    | Arg (ty, e) -> Arg (ty, go e)
    | Land (a, b) -> Land (go a, go b)
    | Lor (a, b) -> Lor (go a, go b)
    | Lnot e -> Lnot (go e)
    | Select (ty, c, a, b) -> Select (ty, go c, go a, go b)
    | Relval (r, sg, ty, a, b) -> Relval (r, sg, ty, go a, go b)
  in
  f t'

let rec fold f acc t = List.fold_left (fold f) (f acc t) (children t)
