(** The observable outcome of running a compiled program under a target
    simulator.

    Every target simulator (vaxsim, riscsim, ...) reports exactly this
    record, and the reference interpreter's {!Interp.outcome} carries
    the same observables — return value, final scalar globals, print
    output — so the differential oracle can compare any backend against
    the interpreter and against any other backend without conversion. *)

type t = {
  return_value : Interp.value;
  globals : (string * Interp.value) list;
  output : string list;
  insns_executed : int;
  cycles : int;  (** accumulated cost under the target's cycle model *)
}
