

(** Emitted VAX instructions.

    An instruction is a mnemonic plus operand list; {!assembly} prints
    UNIX [as] syntax.  {!cycles} is a coarse VAX-11/780 cost model used
    by the benchmarks to compare code quality between backends (it does
    not claim cycle accuracy; only relative weight matters). *)

type t =
  | Insn of string * Mode.t list  (** ordinary instruction *)
  | Branch of string * Label.t  (** conditional or unconditional jump *)
  | Call of string * int  (** [calls $n, f] *)
  | Ret
  | Lab of Label.t
  | Comment of string

val insn : string -> Mode.t list -> t

(** Assembler line (labels are rendered flush left, instructions
    indented). *)
val assembly : t -> string

(** Cost in (approximate) cycles: base cost by mnemonic class plus
    addressing cost of each operand; labels and comments are free. *)
val cycles : t -> int

(** Does this instruction set the condition codes from its result?
    (Nearly every VAX instruction does; branches, calls and labels do
    not.) *)
val sets_cc : t -> bool

val pp : t Fmt.t
val pp_program : t list Fmt.t

(** Number of assembly lines (excluding comments) — the paper's
    "lines of assembly code" metric (section 8). *)
val count_lines : t list -> int

val total_cycles : t list -> int
