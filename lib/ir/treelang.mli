

(** Description of the tree language the front ends produce — which
    terminals exist, their arities in prefix-linearised form, and which
    terminals may begin the subtree at each position.

    This is what the syntactic-block checker needs to decide whether an
    error entry in the tables is reachable on legal input (paper
    section 3.2), and what documentation tools use to enumerate the
    terminal vocabulary (paper Fig. 1). *)

type t = {
  arity : string -> int;
  starts : parent:string option -> child:int -> string list;
  stmt_starts : string list;
  value_starts : Dtype.t -> string list;
  lvalue_starts : Dtype.t -> string list;
}

(** [description ~int_types ~float_types ~reverse_ops ()] builds the
    tree-language description matching a grammar built with the same
    options.  When [reverse_ops] is false the reverse operators are
    excluded from the language (the evaluation-ordering phase must then
    be run without operand swapping). *)
val description :
  ?int_types:Dtype.t list ->
  ?float_types:Dtype.t list ->
  ?reverse_ops:bool ->
  unit ->
  t

(** The integer binary operators implemented for a given type (shifts
    and unsigned division only exist at Long, following PCC's
    promotion rules). *)
val int_binops : Dtype.t -> reverse_ops:bool -> Op.binop list

val float_binops : reverse_ops:bool -> Op.binop list
