type value = VInt of int64 | VFloat of float

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type outcome = {
  return_value : value;
  globals : (string * value) list;
  output : string list;
  steps : int;
}

let pp_value ppf = function
  | VInt n -> Fmt.pf ppf "%Ld" n
  | VFloat f -> Fmt.pf ppf "%g" f

let value_equal a b =
  match (a, b) with
  | VInt x, VInt y -> Int64.equal x y
  | VFloat x, VFloat y -> Float.equal x y
  | VInt _, VFloat _ | VFloat _, VInt _ -> false

(* -- machine state ------------------------------------------------------ *)

type state = {
  mem : Bytes.t;
  regs : int64 array;
  mutable temps : (int, value) Hashtbl.t;
  globals_layout : (string, int * Dtype.t * int) Hashtbl.t;
  global_order : (string * Dtype.t * int) list;
  funcs : (string, Tree.func) Hashtbl.t;
  out : Buffer.t;
  mutable steps : int;
  max_steps : int;
}

let mem_size = 1 lsl 20
let globals_base = 0x100

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then error "step budget exceeded (infinite loop?)"

(* -- memory access ------------------------------------------------------ *)

let check_addr st addr size =
  if addr < 0 || addr + size > Bytes.length st.mem then
    error "memory access out of range: %d (size %d)" addr size

let load_bytes st addr size =
  check_addr st addr size;
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (Int64.logor (Int64.shift_left acc 8)
           (Int64.of_int (Char.code (Bytes.get st.mem (addr + i)))))
  in
  go (size - 1) 0L

let store_bytes st addr size v =
  check_addr st addr size;
  for i = 0 to size - 1 do
    Bytes.set st.mem (addr + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let load st ty addr =
  match ty with
  | Dtype.Byte | Dtype.Word | Dtype.Long | Dtype.Quad ->
    VInt (Tree.wrap ty (load_bytes st addr (Dtype.size ty)))
  | Dtype.Flt ->
    VFloat (Int32.float_of_bits (Int64.to_int32 (load_bytes st addr 4)))
  | Dtype.Dbl -> VFloat (Int64.float_of_bits (load_bytes st addr 8))

let store st ty addr v =
  match (ty, v) with
  | (Dtype.Byte | Dtype.Word | Dtype.Long | Dtype.Quad), VInt n ->
    store_bytes st addr (Dtype.size ty) n
  | Dtype.Flt, VFloat f ->
    store_bytes st addr 4 (Int64.of_int32 (Int32.bits_of_float f))
  | Dtype.Dbl, VFloat f -> store_bytes st addr 8 (Int64.bits_of_float f)
  | _, _ -> error "store: value kind does not match type %s" (Dtype.name ty)

let reg_get st ty r =
  match ty with
  | Dtype.Byte | Dtype.Word | Dtype.Long | Dtype.Quad ->
    VInt (Tree.wrap ty st.regs.(r))
  | Dtype.Flt -> VFloat (Int32.float_of_bits (Int64.to_int32 st.regs.(r)))
  | Dtype.Dbl -> VFloat (Int64.float_of_bits st.regs.(r))

let reg_set st ty r v =
  match (ty, v) with
  | (Dtype.Byte | Dtype.Word | Dtype.Long | Dtype.Quad), VInt n ->
    st.regs.(r) <- Tree.wrap ty n
  | Dtype.Flt, VFloat f -> st.regs.(r) <- Int64.of_int32 (Int32.bits_of_float f)
  | Dtype.Dbl, VFloat f -> st.regs.(r) <- Int64.bits_of_float f
  | _, _ -> error "register store: value kind mismatch"

(* -- arithmetic --------------------------------------------------------- *)

let as_int = function
  | VInt n -> n
  | VFloat _ -> error "integer operand expected"

let as_float = function
  | VFloat f -> f
  | VInt _ -> error "float operand expected"

let unsigned_of ty n =
  match ty with
  | Dtype.Byte -> Int64.logand n 0xffL
  | Dtype.Word -> Int64.logand n 0xffffL
  | Dtype.Long -> Int64.logand n 0xffffffffL
  | Dtype.Quad -> n
  | Dtype.Flt | Dtype.Dbl -> error "unsigned_of on float type"

let int_binop ty op a b =
  let wrap n = Tree.wrap ty n in
  match (op : Op.binop) with
  | Plus -> wrap (Int64.add a b)
  | Minus -> wrap (Int64.sub a b)
  | Rminus -> wrap (Int64.sub b a)
  | Mul -> wrap (Int64.mul a b)
  | Div | Rdiv ->
    let x, y = if op = Op.Div then (a, b) else (b, a) in
    if Int64.equal y 0L then error "division by zero";
    wrap (Int64.div x y)
  | Mod | Rmod ->
    let x, y = if op = Op.Mod then (a, b) else (b, a) in
    if Int64.equal y 0L then error "modulus by zero";
    wrap (Int64.rem x y)
  | Udiv ->
    if Int64.equal b 0L then error "division by zero";
    wrap (Int64.unsigned_div (unsigned_of ty a) (unsigned_of ty b))
  | Umod ->
    if Int64.equal b 0L then error "modulus by zero";
    wrap (Int64.unsigned_rem (unsigned_of ty a) (unsigned_of ty b))
  | And -> wrap (Int64.logand a b)
  | Or -> wrap (Int64.logor a b)
  | Xor -> wrap (Int64.logxor a b)
  | Lsh | Rlsh ->
    let x, c = if op = Op.Lsh then (a, b) else (b, a) in
    let c = Int64.to_int c land 63 in
    wrap (Int64.shift_left x c)
  | Rsh | Rrsh ->
    let x, c = if op = Op.Rsh then (a, b) else (b, a) in
    let c = Int64.to_int c land 63 in
    wrap (Int64.shift_right x c)

(* VAX F-float operations round every result to single precision; a
   typed-[Flt] node must not carry extra double-precision bits *)
let fround ty f =
  if Dtype.equal ty Dtype.Flt then Int32.float_of_bits (Int32.bits_of_float f)
  else f

let float_binop op a b =
  match (op : Op.binop) with
  | Plus -> a +. b
  | Minus -> a -. b
  | Rminus -> b -. a
  | Mul -> a *. b
  | Div -> a /. b
  | Rdiv -> b /. a
  | Mod | Rmod | Udiv | Umod | And | Or | Xor | Lsh | Rsh | Rlsh | Rrsh ->
    error "operator %s undefined on floats" (Op.binop_name op)

let convert ~to_ ~from v =
  match (Dtype.is_float from, Dtype.is_float to_, v) with
  | false, false, VInt n -> VInt (Tree.wrap to_ n)
  | false, true, VInt n -> VFloat (fround to_ (Int64.to_float n))
  | true, false, VFloat f ->
    (* VAX cvt: truncation toward zero *)
    VInt (Tree.wrap to_ (Int64.of_float f))
  | true, true, VFloat f -> VFloat (fround to_ f)
  | _, _, _ -> error "conversion value kind mismatch"

(* -- expression evaluation ---------------------------------------------- *)

type loc = Lmem of Dtype.t * int | Lreg of Dtype.t * int | Ltemp of Dtype.t * int

(* shared comparison semantics for Cbranch and Relval *)
let compare_values _st rel sg ty va vb =
  if Dtype.is_float ty then
    let x = as_float va and y = as_float vb in
    match (rel : Op.relop) with
    | Op.Eq -> Float.equal x y
    | Op.Ne -> not (Float.equal x y)
    | Op.Lt -> x < y
    | Op.Le -> x <= y
    | Op.Gt -> x > y
    | Op.Ge -> x >= y
  else
    let x = as_int va and y = as_int vb in
    let x, y =
      match sg with
      | Dtype.Signed -> (x, y)
      | Dtype.Unsigned ->
        ( Int64.add (unsigned_of ty x) Int64.min_int,
          Int64.add (unsigned_of ty y) Int64.min_int )
    in
    Op.eval_relop rel x y

let global_addr st name =
  match Hashtbl.find_opt st.globals_layout name with
  | Some (addr, _, _) -> addr
  | None -> error "unknown global %s" name

let rec eval st (t : Tree.t) : value =
  match t with
  | Const (_, n) -> VInt n
  | Fconst (ty, f) -> VFloat (fround ty f)
  | Name _ | Temp _ | Dreg _ | Indir _ | Autoinc _ | Autodec _ ->
    load_loc st (eval_loc st t)
  | Addr e -> (
    match eval_loc st e with
    | Lmem (_, addr) -> VInt (Int64.of_int addr)
    | Lreg _ -> error "Addr of a register"
    | Ltemp _ -> error "Addr of a compiler temporary")
  | Unop (op, ty, e) -> (
    let v = eval st e in
    match (op, Dtype.is_float ty) with
    | Op.Neg, false -> VInt (Tree.wrap ty (Int64.neg (as_int v)))
    | Op.Neg, true -> VFloat (fround ty (-.as_float v))
    | Op.Com, false -> VInt (Tree.wrap ty (Int64.lognot (as_int v)))
    | Op.Com, true -> error "complement of a float")
  | Binop (op, ty, a, b) ->
    let va = eval st a in
    let vb = eval st b in
    if Dtype.is_float ty then
      VFloat (fround ty (float_binop op (as_float va) (as_float vb)))
    else VInt (int_binop ty op (as_int va) (as_int vb))
  | Conv (to_, from, e) -> convert ~to_ ~from (eval st e)
  | Assign (_, dst, src) ->
    let l = eval_loc st dst in
    let v = eval st src in
    store_loc st l v;
    v
  | Rassign (_, src, dst) ->
    let v = eval st src in
    let l = eval_loc st dst in
    store_loc st l v;
    v
  | Cbranch _ -> error "Cbranch evaluated as an expression"
  | Arg _ -> error "Arg evaluated as an expression"
  | Land (a, b) ->
    if Int64.equal (as_int (eval st a)) 0L then VInt 0L
    else VInt (if Int64.equal (as_int (eval st b)) 0L then 0L else 1L)
  | Lor (a, b) ->
    if not (Int64.equal (as_int (eval st a)) 0L) then VInt 1L
    else VInt (if Int64.equal (as_int (eval st b)) 0L then 0L else 1L)
  | Lnot e -> VInt (if Int64.equal (as_int (eval st e)) 0L then 1L else 0L)
  | Select (_, c, a, b) ->
    if Int64.equal (as_int (eval st c)) 0L then eval st b else eval st a
  | Relval (rel, sg, ty, a, b) ->
    let va = eval st a in
    let vb = eval st b in
    let taken = compare_values st rel sg ty va vb in
    VInt (if taken then 1L else 0L)
  | Call (ty, f, args) -> call st ty f args

and eval_loc st (t : Tree.t) : loc =
  match t with
  | Name (ty, n) -> Lmem (ty, global_addr st n)
  | Temp (ty, i) -> Ltemp (ty, i)
  | Dreg (ty, r) -> Lreg (ty, r)
  | Indir (ty, addr) -> Lmem (ty, Int64.to_int (as_int (eval st addr)))
  | Autoinc (ty, r) ->
    let addr = Int64.to_int st.regs.(r) in
    st.regs.(r) <- Int64.add st.regs.(r) (Int64.of_int (Dtype.size ty));
    Lmem (ty, addr)
  | Autodec (ty, r) ->
    st.regs.(r) <- Int64.sub st.regs.(r) (Int64.of_int (Dtype.size ty));
    Lmem (ty, Int64.to_int st.regs.(r))
  | Const _ | Fconst _ | Addr _ | Unop _ | Binop _ | Conv _ | Assign _
  | Rassign _ | Cbranch _ | Call _ | Arg _ | Land _ | Lor _ | Lnot _
  | Select _ | Relval _ ->
    error "not an lvalue: %s" (Tree.to_string t)

and load_loc st = function
  | Lmem (ty, addr) -> load st ty addr
  | Lreg (ty, r) -> reg_get st ty r
  | Ltemp (ty, i) -> (
    match Hashtbl.find_opt st.temps i with
    | Some v -> v
    | None -> error "read of undefined temporary T%d (%s)" i (Dtype.name ty))

and store_loc st l v =
  match l with
  | Lmem (ty, addr) -> store st ty addr v
  | Lreg (ty, r) -> reg_set st ty r v
  | Ltemp (_, i) -> Hashtbl.replace st.temps i v

(* -- calls and statement execution -------------------------------------- *)

and push_slot st ty v =
  (* Arguments occupy 4-byte longword slots; doubles occupy two slots
     (VAX calls layout). *)
  let size = if Dtype.size ty > 4 then 8 else 4 in
  st.regs.(Regconv.sp) <- Int64.sub st.regs.(Regconv.sp) (Int64.of_int size);
  let addr = Int64.to_int st.regs.(Regconv.sp) in
  let sty =
    match ty with
    | Dtype.Byte | Dtype.Word | Dtype.Long | Dtype.Flt -> Dtype.Long
    | (Dtype.Quad | Dtype.Dbl) as wide -> wide
  in
  let v =
    match (ty, v) with
    | Dtype.Flt, VFloat f ->
      (* a float pushed as a longword keeps its 32-bit pattern *)
      VInt (Int64.of_int32 (Int32.bits_of_float f))
    | _, VInt n -> VInt (Tree.wrap Dtype.Long n)
    | _ -> v
  in
  store st sty addr v

and slots_of_type ty = if Dtype.size ty > 4 then 2 else 1

(* [invoke] runs [fname] assuming its arguments have already been pushed
   (lowest-addressed slot = first argument), mirroring VAX calls/ret. *)
and invoke st ~ret_ty fname ~slots : value =
  match fname with
  | "print" ->
    let sp = Int64.to_int st.regs.(Regconv.sp) in
    let v =
      if slots = 2 then load st Dtype.Dbl sp else load st Dtype.Long sp
    in
    Buffer.add_string st.out (Fmt.str "%a\n" pp_value v);
    st.regs.(Regconv.sp) <-
      Int64.add st.regs.(Regconv.sp) (Int64.of_int (4 * slots));
    VInt 0L
  | _ -> (
    match Hashtbl.find_opt st.funcs fname with
    | None -> error "call to unknown function %s" fname
    | Some f ->
      let saved_regs = Array.copy st.regs in
      let saved_temps = st.temps in
      st.temps <- Hashtbl.create 16;
      (* push the longword count, point ap (and fp) at it *)
      st.regs.(Regconv.sp) <- Int64.sub st.regs.(Regconv.sp) 4L;
      store st Dtype.Long
        (Int64.to_int st.regs.(Regconv.sp))
        (VInt (Int64.of_int slots));
      st.regs.(Regconv.ap) <- st.regs.(Regconv.sp);
      st.regs.(Regconv.fp) <- st.regs.(Regconv.sp);
      st.regs.(Regconv.sp) <-
        Int64.sub st.regs.(Regconv.sp) (Int64.of_int (f.locals_size + 512));
      exec_body st f;
      let result = reg_get st ret_ty Regconv.r0 in
      (* ret preserves r2-r11 and the frame registers, and pops the
         argument list *)
      let arg_base = st.regs.(Regconv.ap) in
      Array.blit saved_regs 2 st.regs 2 12;
      st.regs.(Regconv.sp) <- Int64.add arg_base (Int64.of_int (4 * (slots + 1)));
      st.temps <- saved_temps;
      result)

and call st ty fname args : value =
  let f_formals =
    match Hashtbl.find_opt st.funcs fname with
    | Some f -> Some (List.map snd f.formals)
    | None -> None
  in
  let values = List.map (eval st) args in
  let types =
    match f_formals with
    | Some tys when List.length tys = List.length values -> tys
    | Some _ -> error "arity mismatch calling %s" fname
    | None -> List.map Tree.dtype args
  in
  (* push right to left so the first argument has the lowest address *)
  List.iter2 (push_slot st) (List.rev types) (List.rev values);
  let slots = List.fold_left (fun acc t -> acc + slots_of_type t) 0 types in
  invoke st ~ret_ty:ty fname ~slots

and exec_body st (f : Tree.func) =
  let body = Array.of_list f.body in
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun i s ->
      match s with Tree.Slabel l -> Hashtbl.replace labels l i | _ -> ())
    body;
  let goto l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> error "undefined label %a in %s" Label.pp l f.fname
  in
  let rec run i =
    if i < Array.length body then begin
      tick st;
      match body.(i) with
      | Tree.Slabel _ | Tree.Scomment _ | Tree.Sline _ -> run (i + 1)
      | Tree.Sjump l -> run (goto l)
      | Tree.Sret -> ()
      | Tree.Scall (fname, slots, ret_ty) ->
        ignore (invoke st ~ret_ty fname ~slots);
        run (i + 1)
      | Tree.Stree (Tree.Arg (ty, e)) ->
        let v = eval st e in
        push_slot st ty v;
        run (i + 1)
      | Tree.Stree (Tree.Cbranch (rel, sg, ty, a, b, l)) ->
        let va = eval st a in
        let vb = eval st b in
        if compare_values st rel sg ty va vb then run (goto l)
        else run (i + 1)
      | Tree.Stree t ->
        ignore (eval st t);
        run (i + 1)
    end
  in
  run 0

(* -- program setup ------------------------------------------------------ *)

let layout_globals (p : Tree.program) =
  let tbl = Hashtbl.create 16 in
  let next = ref globals_base in
  List.iter
    (fun (name, ty, total) ->
      let align = Dtype.size ty in
      next := (!next + align - 1) / align * align;
      Hashtbl.replace tbl name (!next, ty, total);
      next := !next + total)
    p.globals;
  tbl

let run ?(max_steps = 1_000_000) (p : Tree.program) ~entry args =
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Tree.func) -> Hashtbl.replace funcs f.fname f) p.funcs;
  let st =
    {
      mem = Bytes.make mem_size '\000';
      regs = Array.make 16 0L;
      temps = Hashtbl.create 16;
      globals_layout = layout_globals p;
      global_order = p.globals;
      funcs;
      out = Buffer.create 256;
      steps = 0;
      max_steps;
    }
  in
  st.regs.(Regconv.sp) <- Int64.of_int mem_size;
  st.regs.(Regconv.fp) <- Int64.of_int mem_size;
  let entry_fn =
    match Hashtbl.find_opt funcs entry with
    | Some f -> f
    | None -> error "entry function %s not found" entry
  in
  let arg_trees =
    List.map
      (fun v ->
        match v with
        | VInt n -> Tree.Const (Dtype.Long, n)
        | VFloat f -> Tree.Fconst (Dtype.Dbl, f))
      args
  in
  let return_value = call st entry_fn.ret_type entry arg_trees in
  ignore entry_fn;
  let globals =
    List.filter_map
      (fun (name, ty, total) ->
        if total = Dtype.size ty then
          Some (name, load st ty (global_addr st name))
        else None)
      st.global_order
  in
  let output =
    Buffer.contents st.out |> String.split_on_char '\n'
    |> List.filter (fun s -> s <> "")
  in
  { return_value; globals; output; steps = st.steps }

let eval_tree t =
  let st =
    {
      mem = Bytes.make 4096 '\000';
      regs = Array.make 16 0L;
      temps = Hashtbl.create 16;
      globals_layout = Hashtbl.create 1;
      global_order = [];
      funcs = Hashtbl.create 1;
      out = Buffer.create 16;
      steps = 0;
      max_steps = 100_000;
    }
  in
  st.regs.(Regconv.sp) <- 4096L;
  st.regs.(Regconv.fp) <- 4096L;
  eval st t
