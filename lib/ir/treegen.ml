(* A generator of random *typed IR programs* for differential testing.

   The mini-C corpus only exercises Long arithmetic (C promotes), so the
   byte/word instruction patterns and the conversion cross-product of
   the machine grammar (section 6.4) are reached only through memory
   accesses.  This generator builds IR directly: arithmetic at every
   integer width, float/double arithmetic, and conversions between all
   of them — all trap-free by construction. *)

type rng = { mutable s : int64 }

let rng seed = { s = Int64.of_int ((seed * 69069) lor 1) }

let next r =
  let x = r.s in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.s <- x;
  Int64.to_int (Int64.logand x 0x3fffffffL)

let pick r xs = List.nth xs (next r mod List.length xs)
let range r lo hi = lo + (next r mod (hi - lo + 1))

let int_types = [ Dtype.Byte; Dtype.Word; Dtype.Long ]
let float_types = [ Dtype.Flt; Dtype.Dbl ]
let all_types = int_types @ float_types

let global_of ty =
  match ty with
  | Dtype.Byte -> "gb"
  | Dtype.Word -> "gw"
  | Dtype.Long -> "gl"
  | Dtype.Flt -> "gf"
  | Dtype.Dbl -> "gd"
  | Dtype.Quad -> assert false

let globals =
  List.map (fun ty -> (global_of ty, ty, Dtype.size ty)) all_types

(* a value of [ty], depth-bounded, trap-free *)
let rec value r ty depth : Tree.t =
  if depth <= 0 then leaf r ty
  else if Dtype.is_float ty then
    match next r mod 6 with
    | 0 | 1 ->
      Tree.Binop
        (pick r [ Op.Plus; Op.Minus; Op.Mul ], ty, value r ty (depth - 1),
         value r ty (depth - 1))
    | 2 ->
      (* conversion in from any other type *)
      let from = pick r (List.filter (fun t -> t <> ty) all_types) in
      Tree.Conv (ty, from, value r from (depth - 1))
    | 3 -> Tree.Unop (Op.Neg, ty, value r ty (depth - 1))
    | _ -> leaf r ty
  else
    match next r mod 10 with
    | 0 | 1 | 2 ->
      Tree.Binop
        (pick r [ Op.Plus; Op.Minus; Op.Mul; Op.And; Op.Or; Op.Xor ], ty,
         value r ty (depth - 1), value r ty (depth - 1))
    | 3 ->
      (* division by a non-zero constant *)
      Tree.Binop
        (pick r [ Op.Div; Op.Mod ], ty, value r ty (depth - 1),
         Tree.const ty (Int64.of_int (range r 1 13)))
    | 4 ->
      let from =
        pick r (List.filter (fun t -> t <> ty) int_types)
      in
      Tree.Conv (ty, from, value r from (depth - 1))
    | 5 when ty = Dtype.Long ->
      (* float to int conversions only at long, with a bounded operand
         so truncation semantics, not range overflow, is what we test *)
      let from = pick r float_types in
      Tree.Conv
        (ty, from,
         Tree.Binop (Op.Mul, from, leaf r from, Tree.Fconst (from, 0.125)))
    | 6 -> Tree.Unop (pick r [ Op.Neg; Op.Com ], ty, value r ty (depth - 1))
    | 7 when ty = Dtype.Long ->
      Tree.Binop
        (pick r [ Op.Lsh; Op.Rsh ], ty, value r ty (depth - 1),
         Tree.const ty (Int64.of_int (range r 0 7)))
    | _ -> leaf r ty

and leaf r ty : Tree.t =
  if Dtype.is_float ty then
    match next r mod 2 with
    | 0 -> Tree.Fconst (ty, float_of_int (range r (-40) 40) /. 8.)
    | _ -> Tree.Name (ty, global_of ty)
  else
    match next r mod 3 with
    | 0 -> Tree.const ty (Int64.of_int (range r (-100) 100))
    | 1 -> Tree.Name (ty, global_of ty)
    | _ ->
      (* a read of a differently-typed global, converted *)
      let from = pick r (List.filter (fun t -> t <> ty) int_types) in
      Tree.Conv (ty, from, Tree.Name (from, global_of from))

let statement r : Tree.stmt =
  let ty = pick r all_types in
  Tree.Stree
    (Tree.Assign (ty, Tree.Name (ty, global_of ty), value r ty (range r 1 4)))

(* checksum: fold the integer globals into the return value *)
let checksum : Tree.stmt list =
  [
    Tree.Stree
      (Tree.Assign
         ( Dtype.Long,
           Tree.Dreg (Dtype.Long, Regconv.r0),
           Tree.Binop
             ( Op.And,
               Dtype.Long,
               Tree.Binop
                 ( Op.Plus,
                   Dtype.Long,
                   Tree.Conv (Dtype.Long, Dtype.Byte, Tree.Name (Dtype.Byte, "gb")),
                   Tree.Binop
                     ( Op.Xor,
                       Dtype.Long,
                       Tree.Conv (Dtype.Long, Dtype.Word, Tree.Name (Dtype.Word, "gw")),
                       Tree.Name (Dtype.Long, "gl") ) ),
               Tree.Const (Dtype.Long, 0xffffL) ) ));
    Tree.Sret;
  ]

let program ~seed ~stmts : Tree.program =
  let r = rng seed in
  let body = List.init stmts (fun _ -> statement r) @ checksum in
  {
    Tree.globals;
    funcs =
      [
        {
          Tree.fname = "main";
          formals = [];
          ret_type = Dtype.Long;
          locals_size = 0;
          body;
        };
      ];
  }

(* -- control-flow programs ---------------------------------------------- *)

(* Beyond straight-line assignments: if/while with bounded nesting,
   short-circuit boolean expressions, comparisons feeding truth values,
   and multi-function programs with calls and arguments — still
   trap-free and terminating by construction.  Loops count down a
   dedicated counter global per nesting level; nothing else writes
   those counters except loop headers (which always store a small
   positive constant that the loop then decrements to zero), so every
   loop terminates even when its body calls functions that run loops of
   their own. *)

type config = {
  stmts : int;  (** statements per function body *)
  depth : int;  (** expression depth bound *)
  max_nest : int;  (** if/while nesting bound *)
  functions : int;  (** callee functions besides [main] *)
}

let default_config = { stmts = 12; depth = 3; max_nest = 2; functions = 2 }

let counter_global d = Fmt.str "gc%d" d

let control_globals cfg =
  globals
  @ List.init cfg.max_nest (fun d -> (counter_global d, Dtype.Long, 4))

let callee_name i = Fmt.str "f%d" i

(* [List.init] whose side effects provably run left to right, so the
   rng stream (and thus every generated program) is reproducible *)
let init_seq n f =
  let rec go i = if i >= n then [] else  let x = f i in x :: go (i + 1) in
  go 0

(* argument slots start at 4(ap); doubles occupy two longwords *)
let formal_tree formals i : Tree.t =
  let rec off j acc =
    if j >= i then acc
    else off (j + 1) (acc + if Dtype.size (List.nth formals j) > 4 then 8 else 4)
  in
  let base = off 0 4 in
  let ty = List.nth formals i in
  Tree.Indir
    ( ty,
      Tree.Binop
        ( Op.Plus,
          Dtype.Long,
          Tree.Const (Dtype.Long, Int64.of_int base),
          Tree.Dreg (Dtype.Long, Regconv.ap) ) )

(* a 0/1 boolean tree (Relval / Land / Lor / Lnot), depth-bounded *)
let rec bool_expr r cfg depth : Tree.t =
  if depth <= 0 then relval r cfg 1
  else
    match next r mod 8 with
    | 0 | 1 -> Tree.Land (bool_expr r cfg (depth - 1), bool_expr r cfg (depth - 1))
    | 2 | 3 -> Tree.Lor (bool_expr r cfg (depth - 1), bool_expr r cfg (depth - 1))
    | 4 -> Tree.Lnot (bool_expr r cfg (depth - 1))
    | 5 -> value r Dtype.Long 1
    | _ -> relval r cfg depth

and relval r cfg depth : Tree.t =
  let ty = pick r all_types in
  let sg =
    if Dtype.is_float ty then Dtype.Signed
    else pick r [ Dtype.Signed; Dtype.Signed; Dtype.Unsigned ]
  in
  let d = min (depth - 1) (cfg.depth - 1) |> max 0 in
  Tree.Relval (pick r Op.all_relops, sg, ty, value r ty d, value r ty d)

(* one statement; [nest] bounds remaining if/while nesting, [callees]
   lists callable functions as (name, formal types) *)
let rec control_stmts r cfg ~labels ~nest ~callees n : Tree.stmt list =
  List.concat (init_seq n (fun _ -> control_stmt r cfg ~labels ~nest ~callees))

and control_stmt r cfg ~labels ~nest ~callees : Tree.stmt list =
  match next r mod 12 with
  | (0 | 1) when nest > 0 -> if_stmt r cfg ~labels ~nest ~callees
  | 2 when nest > 0 -> while_stmt r cfg ~labels ~nest ~callees
  | 3 ->
    (* a comparison (or short-circuit chain) materialised as 0/1 *)
    let dst = pick r int_types in
    let b = bool_expr r cfg 2 in
    let src = if dst = Dtype.Long then b else Tree.Conv (dst, Dtype.Long, b) in
    [ Tree.Stree (Tree.Assign (dst, Tree.Name (dst, global_of dst), src)) ]
  | 4 ->
    let ty = pick r all_types in
    let d = max 0 (cfg.depth - 1) in
    [
      Tree.Stree
        (Tree.Assign
           ( ty,
             Tree.Name (ty, global_of ty),
             Tree.Select (ty, bool_expr r cfg 1, value r ty d, value r ty d) ));
    ]
  | (5 | 6) when callees <> [] -> call_stmt r cfg ~callees
  | _ -> [ statement_depth r cfg ]

and statement_depth r cfg : Tree.stmt =
  let ty = pick r all_types in
  Tree.Stree
    (Tree.Assign
       (ty, Tree.Name (ty, global_of ty), value r ty (range r 1 (max 1 cfg.depth))))

and call_stmt r cfg ~callees : Tree.stmt list =
  let fname, formals = pick r callees in
  let arg ty =
    if ty = Dtype.Dbl then value r Dtype.Dbl (min 2 cfg.depth)
    else value r Dtype.Long (min 2 cfg.depth)
  in
  let call = Tree.Call (Dtype.Long, fname, List.map arg formals) in
  match next r mod 3 with
  | 0 ->
    (* result discarded *)
    [ Tree.Stree call ]
  | 1 ->
    [ Tree.Stree (Tree.Assign (Dtype.Long, Tree.Name (Dtype.Long, "gl"), call)) ]
  | _ ->
    (* the call embedded in a larger expression: Phase 1a must extract
       it so "context switching does not occur within expression trees" *)
    [
      Tree.Stree
        (Tree.Assign
           ( Dtype.Long,
             Tree.Name (Dtype.Long, "gl"),
             Tree.Binop (Op.Plus, Dtype.Long, call, value r Dtype.Long 1) ));
    ]

and if_stmt r cfg ~labels ~nest ~callees : Tree.stmt list =
  let l_else = Label.fresh labels in
  let l_end = Label.fresh labels in
  let guard =
    (* two flavours: a direct comparison branch, and a boolean tree that
       Phase 1a expands into short-circuit branch structure *)
    if next r mod 2 = 0 then
      let ty = pick r all_types in
      let sg =
        if Dtype.is_float ty then Dtype.Signed
        else pick r [ Dtype.Signed; Dtype.Signed; Dtype.Unsigned ]
      in
      let d = max 0 (cfg.depth - 1) in
      Tree.Stree
        (Tree.Cbranch
           ( Op.negate_relop (pick r Op.all_relops),
             sg,
             ty,
             value r ty d,
             value r ty d,
             l_else ))
    else
      Tree.Stree
        (Tree.Cbranch
           ( Op.Eq,
             Dtype.Signed,
             Dtype.Long,
             bool_expr r cfg 2,
             Tree.Const (Dtype.Long, 0L),
             l_else ))
  in
  let then_ =
    control_stmts r cfg ~labels ~nest:(nest - 1) ~callees (range r 1 3)
  in
  if next r mod 2 = 0 then
    (* no else part *)
    (guard :: then_) @ [ Tree.Slabel l_else ]
  else
    let else_ =
      control_stmts r cfg ~labels ~nest:(nest - 1) ~callees (range r 1 2)
    in
    (guard :: then_)
    @ [ Tree.Sjump l_end; Tree.Slabel l_else ]
    @ else_
    @ [ Tree.Slabel l_end ]

and while_stmt r cfg ~labels ~nest ~callees : Tree.stmt list =
  (* counter globals are indexed by remaining nesting depth, so an inner
     loop never clobbers the counter of the loop enclosing it *)
  let c = Tree.Name (Dtype.Long, counter_global (nest - 1)) in
  let l_top = Label.fresh labels in
  let l_exit = Label.fresh labels in
  let body =
    control_stmts r cfg ~labels ~nest:(nest - 1) ~callees (range r 1 3)
  in
  [
    Tree.Stree
      (Tree.Assign (Dtype.Long, c, Tree.const Dtype.Long (Int64.of_int (range r 1 4))));
    Tree.Slabel l_top;
    Tree.Stree
      (Tree.Cbranch
         (Op.Le, Dtype.Signed, Dtype.Long, c, Tree.Const (Dtype.Long, 0L), l_exit));
  ]
  @ body
  @ [
      Tree.Stree
        (Tree.Assign
           ( Dtype.Long,
             c,
             Tree.Binop (Op.Minus, Dtype.Long, c, Tree.Const (Dtype.Long, 1L)) ));
      Tree.Sjump l_top;
      Tree.Slabel l_exit;
    ]

let callee r cfg i : Tree.func * (string * Dtype.t list) =
  let formals =
    init_seq (next r mod 3) (fun _ -> pick r [ Dtype.Long; Dtype.Long; Dtype.Dbl ])
  in
  let labels = Label.gen () in
  (* leaf functions: no further calls, so call depth (and hence
     termination) is bounded by construction *)
  let stmts =
    control_stmts r cfg ~labels ~nest:cfg.max_nest ~callees:[]
      (max 1 (cfg.stmts / 2))
  in
  (* fold the formals into the result so argument passing is observable *)
  let use_formal acc i ty =
    let f = formal_tree formals i in
    let f =
      if ty = Dtype.Dbl then
        Tree.Conv
          ( Dtype.Long,
            Dtype.Dbl,
            Tree.Binop (Op.Mul, Dtype.Dbl, f, Tree.Fconst (Dtype.Dbl, 0.25)) )
      else f
    in
    Tree.Binop (Op.Xor, Dtype.Long, acc, f)
  in
  let result =
    List.fold_left
      (fun (acc, i) ty -> (use_formal acc i ty, i + 1))
      (Tree.Name (Dtype.Long, "gl"), 0)
      formals
    |> fst
  in
  let body =
    stmts
    @ [
        Tree.Stree
          (Tree.Assign (Dtype.Long, Tree.Dreg (Dtype.Long, Regconv.r0), result));
        Tree.Sret;
      ]
  in
  ( {
      Tree.fname = callee_name i;
      formals = List.mapi (fun j ty -> (Fmt.str "p%d" j, ty)) formals;
      ret_type = Dtype.Long;
      locals_size = 0;
      body;
    },
    (callee_name i, formals) )

let control_program ~seed cfg : Tree.program =
  let r = rng seed in
  let funcs_and_sigs = init_seq cfg.functions (callee r cfg) in
  let callees = List.map snd funcs_and_sigs in
  let labels = Label.gen () in
  let body =
    control_stmts r cfg ~labels ~nest:cfg.max_nest ~callees cfg.stmts @ checksum
  in
  {
    Tree.globals = control_globals cfg;
    funcs =
      List.map fst funcs_and_sigs
      @ [
          {
            Tree.fname = "main";
            formals = [];
            ret_type = Dtype.Long;
            locals_size = 0;
            body;
          };
        ];
  }
