

type mem = {
  base : int option;
  sym : string option;
  disp : int64;
  index : int option;
  auto : [ `Inc | `Dec ] option;
}

type t = Reg of int | Imm of int64 | Fimm of float | Mem of mem

let plain_mem = { base = None; sym = None; disp = 0L; index = None; auto = None }

let reg r = Reg r
let imm n = Imm n
let mem_sym s = Mem { plain_mem with sym = Some s }
let mem_disp ?sym disp base = Mem { plain_mem with sym; disp; base = Some base }
let mem_deferred r = Mem { plain_mem with base = Some r }
let autoinc r = Mem { plain_mem with base = Some r; auto = Some `Inc }
let autodec r = Mem { plain_mem with base = Some r; auto = Some `Dec }

let with_index t rx =
  match t with
  | Mem ({ auto = None; index = None; _ } as m) -> Mem { m with index = Some rx }
  | Mem _ -> invalid_arg "Mode.with_index: operand already indexed or auto"
  | Reg _ | Imm _ | Fimm _ -> invalid_arg "Mode.with_index: not a memory operand"

let equal a b =
  match (a, b) with
  | Reg x, Reg y -> Int.equal x y
  | Imm x, Imm y -> Int64.equal x y
  | Fimm x, Fimm y -> Float.equal x y
  | Mem x, Mem y ->
    x.base = y.base && x.sym = y.sym
    && Int64.equal x.disp y.disp
    && x.index = y.index && x.auto = y.auto
  | (Reg _ | Imm _ | Fimm _ | Mem _), _ -> false

let registers = function
  | Reg r -> [ r ]
  | Imm _ | Fimm _ -> []
  | Mem m -> (
    match (m.base, m.index) with
    | Some b, Some x -> [ b; x ]
    | Some b, None -> [ b ]
    | None, Some x -> [ x ]
    | None, None -> [])

let is_register = function Reg _ -> true | Imm _ | Fimm _ | Mem _ -> false
let is_memory = function Mem _ -> true | Reg _ | Imm _ | Fimm _ -> false
let is_immediate = function Imm _ | Fimm _ -> true | Reg _ | Mem _ -> false
let immediate = function Imm n -> Some n | Reg _ | Fimm _ | Mem _ -> None

(* The addressing mode format table (paper phase 4). *)
let assembly = function
  | Reg r -> Regconv.name r
  | Imm n -> Fmt.str "$%Ld" n
  | Fimm f -> Fmt.str "$0f%g" f
  | Mem m -> (
    let base = Option.map Regconv.name m.base in
    let index = match m.index with None -> "" | Some rx -> Fmt.str "[%s]" (Regconv.name rx) in
    match m.auto with
    | Some `Inc -> Fmt.str "(%s)+" (Option.value base ~default:"?")
    | Some `Dec -> Fmt.str "-(%s)" (Option.value base ~default:"?")
    | None ->
      let disp =
        match (m.sym, m.disp) with
        | None, d -> if d = 0L && base <> None then "" else Fmt.str "%Ld" d
        | Some s, 0L -> s
        | Some s, d when d > 0L -> Fmt.str "%s+%Ld" s d
        | Some s, d -> Fmt.str "%s%Ld" s d
      in
      let base_part =
        match base with None -> "" | Some b -> Fmt.str "(%s)" b
      in
      let body = disp ^ base_part in
      let body = if body = "" then "0" else body in
      body ^ index)

let cost = function
  | Reg _ | Imm _ | Fimm _ -> 0
  | Mem m ->
    let base_cost =
      match m.auto with
      | Some _ -> 2
      | None -> (
        match (m.base, m.sym, m.disp) with
        | Some _, None, 0L -> 1 (* register deferred *)
        | _ -> 1 (* displacement or absolute *))
    in
    base_cost + (match m.index with Some _ -> 2 | None -> 0)

let pp ppf t = Fmt.string ppf (assembly t)
