

type t =
  | Insn of string * Mode.t list
  | Branch of string * Label.t
  | Call of string * int
  | Ret
  | Lab of Label.t
  | Comment of string

let insn m ops = Insn (m, ops)

let assembly = function
  | Insn (m, ops) ->
    Fmt.str "\t%s\t%s" m (String.concat "," (List.map Mode.assembly ops))
  | Branch (m, l) -> Fmt.str "\t%s\t%s" m (Label.name l)
  | Call (f, n) -> Fmt.str "\tcalls\t$%d,%s" n f
  | Ret -> "\tret"
  | Lab l -> Label.name l ^ ":"
  | Comment s -> "\t# " ^ s

(* coarse VAX-11/780-flavoured base costs by mnemonic prefix *)
let base_cost m =
  let has_prefix p =
    String.length m >= String.length p && String.sub m 0 (String.length p) = p
  in
  if has_prefix "mul" then 12
  else if has_prefix "div" then 18
  else if has_prefix "emul" || has_prefix "ediv" then 20
  else if has_prefix "ash" then 5
  else if has_prefix "mov" || has_prefix "clr" || has_prefix "push" then 2
  else if has_prefix "cvt" then 4
  else if has_prefix "tst" || has_prefix "cmp" then 2
  else 3 (* add, sub, logicals, inc/dec, mneg, mcom, ... *)

let cycles = function
  | Insn (m, ops) ->
    base_cost m + List.fold_left (fun acc o -> acc + Mode.cost o) 0 ops
  | Branch _ -> 4
  | Call (_, n) -> 12 + n
  | Ret -> 10
  | Lab _ | Comment _ -> 0

let sets_cc = function
  | Insn (m, _) ->
    (* mova/pusha compute addresses but do set cc from the address; the
       distinction does not matter to our use (result-producing
       instructions preceding a branch) *)
    not (String.length m >= 4 && String.sub m 0 4 = "push")
  | Branch _ | Call _ | Ret | Lab _ | Comment _ -> false

let pp ppf t = Fmt.string ppf (assembly t)

let pp_program ppf insns =
  List.iter (fun i -> Fmt.pf ppf "%s@\n" (assembly i)) insns

let count_lines insns =
  List.fold_left
    (fun acc i -> match i with Comment _ -> acc | _ -> acc + 1)
    0 insns

let total_cycles insns =
  List.fold_left (fun acc i -> acc + cycles i) 0 insns
