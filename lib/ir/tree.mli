(** Intermediate-representation expression trees.

    This is the interface between compiler front ends (PCC's first pass
    in the paper; {!Gg_frontc} here) and the code generator: a forest of
    typed expression trees built from generic operators, interspersed
    with labels and jumps (paper section 2).

    Every interior node carries the {!Dtype.t} of the value it produces;
    leaves denote memory operands ([Name], [Temp], locals written as
    [Indir (Plus (Const off) (Dreg fp))]), constants, or dedicated
    registers. *)

type t =
  | Const of Dtype.t * int64
      (** integer constant (value wrapped to the type's width) *)
  | Fconst of Dtype.t * float  (** floating constant *)
  | Name of Dtype.t * string   (** global variable as a memory operand *)
  | Temp of Dtype.t * int      (** compiler-generated temporary *)
  | Dreg of Dtype.t * int      (** dedicated register (fp, ap, sp, register vars) *)
  | Autoinc of Dtype.t * int
      (** [*(r++)] on dedicated register [r]; the type is the element type
          and the register advances by its size (paper section 6.1) *)
  | Autodec of Dtype.t * int   (** [*(--r)] *)
  | Indir of Dtype.t * t       (** memory fetch; the child computes a Long address *)
  | Addr of t                  (** address of an addressable tree; value type Long *)
  | Unop of Op.unop * Dtype.t * t
  | Binop of Op.binop * Dtype.t * t * t
  | Conv of Dtype.t * Dtype.t * t  (** [Conv (to_, from, e)] type conversion *)
  | Assign of Dtype.t * t * t      (** [Assign (ty, dest, src)]; dest first *)
  | Rassign of Dtype.t * t * t
      (** [Rassign (ty, src, dest)] — reverse assignment produced by
          evaluation ordering; children appear in evaluation order, so
          the source subtree comes first (paper section 5.1.3) *)
  | Cbranch of Op.relop * Dtype.signedness * Dtype.t * t * t * Label.t
      (** conditional branch on a comparison (paper: Cbranch over Cmp) *)
  | Call of Dtype.t * string * t list
      (** function call; after Phase 1a these occur only at tree roots *)
  | Arg of Dtype.t * t
      (** argument push, produced by Phase 1a when lowering calls; the
          operand has already been promoted to Long or Dbl *)
  | Land of t * t
      (** C [&&]: implicit control flow, eliminated by Phase 1a
          (paper section 5.1.1); value type Long *)
  | Lor of t * t  (** C [||], likewise *)
  | Lnot of t  (** C [!], likewise *)
  | Select of Dtype.t * t * t * t
      (** selection operator [cond ? a : b], eliminated by Phase 1a *)
  | Relval of Op.relop * Dtype.signedness * Dtype.t * t * t
      (** a comparison used as a 0/1 value; the VAX has no instruction
          for this, so Phase 1a rewrites it into tests, jumps and
          assignments (paper section 5.1.1); value type Long *)

(** Statements of the forest handed to the code generator. *)
type stmt =
  | Stree of t          (** generate code for one expression tree *)
  | Slabel of Label.t
  | Sjump of Label.t
  | Sret                (** branch to the function epilogue *)
  | Scall of string * int * Dtype.t
      (** [calls $n, f] after the arguments have been pushed (Phase 1a
          output); the result is left in r0 *)
  | Scomment of string
  | Sline of int
      (** source-line marker: statements that follow (until the next
          marker) came from this line of the compiled source.  Carries
          no code; the code generators use it for instruction
          provenance ([ggcc --explain]) *)

type func = {
  fname : string;
  formals : (string * Dtype.t) list;
  ret_type : Dtype.t;
  locals_size : int;  (** bytes of locals below the frame pointer *)
  body : stmt list;
}

type program = {
  globals : (string * Dtype.t * int) list;
      (** name, element type, total byte size (size > elt size ⟹ array) *)
  funcs : func list;
}

(** {1 Observers} *)

(** Type of the value computed by a tree. *)
val dtype : t -> Dtype.t

(** Number of nodes; the evaluation-ordering heuristic's complexity
    measure (paper section 5.1.3). *)
val size : t -> int

val equal : t -> t -> bool

(** Trees that may appear as assignment destinations / operands fetched
    from memory. *)
val is_lvalue : t -> bool

(** Structural well-formedness: lvalues in destination positions, child
    types consistent with conversions; when [after_phase1] is set, also
    that no embedded calls, short-circuit operators, selections or
    comparison values survive.  Returns an error message for the first
    violation found. *)
val check : ?after_phase1:bool -> t -> (unit, string) result

(** {1 Building} *)

(** [const ty n] wraps [n] to [ty]'s width. *)
val const : Dtype.t -> int64 -> t

(** Sign-extend / wrap [n] to the width of [ty] (what a fetch of a
    signed value of that type yields). *)
val wrap : Dtype.t -> int64 -> int64

(** {1 Printing} *)

(** Linearised prefix form with type suffixes, matching the paper's
    Appendix, e.g. [Assign.l Name.l(a) Plus.l Const.b(27) ...]. *)
val pp : t Fmt.t

val pp_stmt : stmt Fmt.t
val pp_func : func Fmt.t
val to_string : t -> string

(** {1 Traversal} *)

val children : t -> t list

(** Bottom-up rewriting: children first, then the node itself. *)
val map_bottom_up : (t -> t) -> t -> t

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
