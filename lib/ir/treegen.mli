(** A generator of random typed IR programs for differential testing
    and grammar-coverage measurement.

    The mini-C corpus only exercises Long arithmetic (C promotes), so
    the byte/word instruction patterns and the conversion cross-product
    of the machine grammar (paper section 6.4) are reached only through
    memory accesses.  This generator builds IR directly: arithmetic at
    every integer width, float/double arithmetic, and conversions
    between all of them — trap-free by construction, deterministic per
    seed. *)

(** The scalar globals every generated program uses (one per type). *)
val globals : (string * Dtype.t * int) list

(** [program ~seed ~stmts] — a [main] of [stmts] random assignments
    followed by a checksum return. *)
val program : seed:int -> stmts:int -> Tree.program

(** {1 Control-flow programs}

    Full control flow on top of the straight-line generator: if/while
    with bounded nesting, short-circuit boolean expressions ([Land],
    [Lor], [Lnot]), comparisons materialised as truth values ([Relval],
    [Select]), and multi-function programs with calls and arguments.
    Every loop counts a dedicated counter global down from a small
    constant, so all programs terminate; all arithmetic is trap-free by
    the same constructions as the straight-line generator. *)

type config = {
  stmts : int;  (** statements per function body *)
  depth : int;  (** expression depth bound *)
  max_nest : int;  (** if/while nesting bound *)
  functions : int;  (** callee functions besides [main] *)
}

val default_config : config

(** The globals of a control-flow program: {!globals} plus one loop
    counter per nesting level. *)
val control_globals : config -> (string * Dtype.t * int) list

(** [control_program ~seed cfg] — deterministic per seed. *)
val control_program : seed:int -> config -> Tree.program
