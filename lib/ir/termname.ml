(* The name set is small and fixed, so every name is built exactly once
   at module initialisation and each emission returns the same shared
   string.  Linearisation then allocates nothing per node for the name,
   and the matcher's interning cache can recognise a name by pointer
   (see {!Gg_matcher.Matcher}). *)

let dtype_index = function
  | Dtype.Byte -> 0
  | Dtype.Word -> 1
  | Dtype.Long -> 2
  | Dtype.Quad -> 3
  | Dtype.Flt -> 4
  | Dtype.Dbl -> 5

let dtypes = Array.of_list Dtype.all

let family base =
  Array.map (fun ty -> base ^ "." ^ Dtype.suffix ty) dtypes

let typed_tbl base =
  let a = family base in
  fun ty -> Array.unsafe_get a (dtype_index ty)

let binop =
  let families =
    List.map (fun op -> (op, family (Op.binop_name op))) Op.all_binops
  in
  fun op ty -> Array.unsafe_get (List.assq op families) (dtype_index ty)

let unop =
  let families =
    List.map (fun op -> (op, family (Op.unop_name op))) Op.all_unops
  in
  fun op ty -> Array.unsafe_get (List.assq op families) (dtype_index ty)

let assign = typed_tbl "Assign"
let rassign = typed_tbl "Rassign"
let indir = typed_tbl "Indir"
let name_ = typed_tbl "Name"
let temp = typed_tbl "Temp"
let dreg = typed_tbl "Dreg"
let autoinc = typed_tbl "Autoinc"
let autodec = typed_tbl "Autodec"
let const = typed_tbl "Const"
let fconst = typed_tbl "Fconst"
let addr = typed_tbl "Addr"

let cvt =
  let tbl =
    Array.map
      (fun from ->
        Array.map
          (fun to_ -> "Cvt." ^ Dtype.suffix from ^ Dtype.suffix to_)
          dtypes)
      dtypes
  in
  fun ~from ~to_ ->
    Array.unsafe_get (Array.unsafe_get tbl (dtype_index from))
      (dtype_index to_)

let cbranch = "Cbranch"
let cmp = typed_tbl "Cmp"
let label = "Label"
let arg = typed_tbl "Arg"

let special_const =
  (* prebuilt [Some] families so the lineariser's hit path is
     allocation free *)
  let opt_family base = Array.map Option.some (family base) in
  let zero = opt_family "Zero"
  and one = opt_family "One"
  and two = opt_family "Two"
  and four = opt_family "Four"
  and eight = opt_family "Eight" in
  fun ty n ->
    if Dtype.is_float ty then None
    else
      let pick a = Array.unsafe_get a (dtype_index ty) in
      match Int64.to_int n with
      | 0 -> pick zero
      | 1 -> pick one
      | 2 -> pick two
      | 4 -> pick four
      | 8 -> pick eight
      | _ -> None

type token = { term : string; node : Tree.t }

let linearize ?(special_constants = true) tree =
  let buf = ref [] in
  let emit term node = buf := { term; node } :: !buf in
  let rec go (t : Tree.t) =
    (match t with
    | Const (ty, n) -> (
      match if special_constants then special_const ty n else None with
      | Some s -> emit s t
      | None -> emit (const ty) t)
    | Fconst (ty, _) -> emit (fconst ty) t
    | Name (ty, _) -> emit (name_ ty) t
    | Temp (ty, _) -> emit (temp ty) t
    | Dreg (ty, _) -> emit (dreg ty) t
    | Autoinc (ty, _) -> emit (autoinc ty) t
    | Autodec (ty, _) -> emit (autodec ty) t
    | Indir (ty, _) -> emit (indir ty) t
    | Addr e -> emit (addr (Tree.dtype e)) t
    | Unop (op, ty, _) -> emit (unop op ty) t
    | Binop (op, ty, _, _) -> emit (binop op ty) t
    | Conv (to_, from, _) -> emit (cvt ~from ~to_) t
    | Assign (ty, _, _) -> emit (assign ty) t
    | Rassign (ty, _, _) -> emit (rassign ty) t
    | Cbranch (_, _, ty, _, _, _) ->
      emit cbranch t;
      emit (cmp ty) t
    | Call _ ->
      invalid_arg "Termname.linearize: Call trees are lowered before matching"
    | Land _ | Lor _ | Lnot _ | Select _ | Relval _ ->
      invalid_arg
        "Termname.linearize: short-circuit/selection operators are rewritten \
         by Phase 1a before matching"
    | Arg (ty, _) -> emit (arg ty) t);
    List.iter go (Tree.children t);
    match t with Cbranch _ -> emit label t | _ -> ()
  in
  go tree;
  List.rev !buf

let pp_token ppf { term; node = _ } = Fmt.string ppf term
