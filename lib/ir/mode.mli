(** VAX addressing modes.

    A {!t} is the semantic descriptor the pattern matcher's reductions
    build up (paper section 5.2): how an operand is referenced in an
    instruction.  {!assembly} is the hand-written addressing-mode format
    table of paper section 5.4. *)

type mem = {
  base : int option;  (** base register, printed [(rn)] *)
  sym : string option;  (** symbolic part of the displacement *)
  disp : int64;  (** numeric displacement *)
  index : int option;  (** index register [\[rx\]], scaled by operand size *)
  auto : [ `Inc | `Dec ] option;
      (** autoincrement [(rn)+] / autodecrement [-(rn)]; excludes
          displacement and index *)
}

type t =
  | Reg of int  (** register direct *)
  | Imm of int64  (** immediate / literal, [$n] *)
  | Fimm of float  (** floating literal, [$0f1.5] *)
  | Mem of mem

val reg : int -> t
val imm : int64 -> t
val mem_sym : string -> t

(** [mem_disp ?sym disp base] — [d(rn)]. *)
val mem_disp : ?sym:string -> int64 -> int -> t

val mem_deferred : int -> t  (** [(rn)] *)

val autoinc : int -> t
val autodec : int -> t

(** Attach an index register to a memory operand.  Raises
    [Invalid_argument] on non-memory or auto modes. *)
val with_index : t -> int -> t

val equal : t -> t -> bool

(** Registers read when this operand is evaluated (for register
    reclamation). *)
val registers : t -> int list

val is_register : t -> bool
val is_memory : t -> bool
val is_immediate : t -> bool

(** The immediate value, if the operand is one. *)
val immediate : t -> int64 option

(** Assembler syntax, e.g. [Mem {sym = Some "a"; disp = 4; base = Some 13; _}]
    prints as ["a+4(fp)"]. *)
val assembly : t -> string

(** Addressing-cost contribution of the operand in cycles (a coarse
    model: literals and registers are free, displacements cost 1,
    indexing and autoincrement cost 2). *)
val cost : t -> int

val pp : t Fmt.t
