

type t = {
  arity : string -> int;
  starts : parent:string option -> child:int -> string list;
  stmt_starts : string list;
  value_starts : Dtype.t -> string list;
  lvalue_starts : Dtype.t -> string list;
}

let int_binops ty ~reverse_ops =
  let base = [ Op.Plus; Op.Minus; Op.Mul; Op.Div; Op.Mod ] in
  let logical = [ Op.And; Op.Or; Op.Xor ] in
  let long_only =
    if ty = Dtype.Long then [ Op.Lsh; Op.Rsh; Op.Udiv; Op.Umod ] else []
  in
  let rev =
    if not reverse_ops then []
    else
      [ Op.Rminus; Op.Rdiv; Op.Rmod ]
      @ if ty = Dtype.Long then [ Op.Rlsh; Op.Rrsh ] else []
  in
  base @ logical @ long_only @ rev

let float_binops ~reverse_ops =
  [ Op.Plus; Op.Minus; Op.Mul; Op.Div ]
  @ if reverse_ops then [ Op.Rminus; Op.Rdiv ] else []

let split_name name =
  match String.rindex_opt name '.' with
  | None -> (name, "")
  | Some i ->
    (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))

let description ?(int_types = [ Dtype.Byte; Dtype.Word; Dtype.Long ])
    ?(float_types = [ Dtype.Flt; Dtype.Dbl ]) ?(reverse_ops = true) () =
  let all_types = int_types @ float_types in
  let arity name =
    let base, _ = split_name name in
    match base with
    | "Assign" | "Rassign" | "Plus" | "Minus" | "Mul" | "Div" | "Mod" | "And"
    | "Or" | "Xor" | "Lsh" | "Rsh" | "Udiv" | "Umod" | "Rminus" | "Rdiv"
    | "Rmod" | "Rlsh" | "Rrsh" ->
      2
    | "Neg" | "Com" | "Indir" | "Cvt" | "Arg" | "Addr" | "Cbranch" -> 1
    | "Cmp" -> 3 (* two operands and the Label *)
    | _ -> 0
  in
  let lvalue_starts ty =
    let s = Dtype.suffix ty in
    [ "Name." ^ s; "Temp." ^ s; "Indir." ^ s; "Dreg." ^ s; "Autoinc." ^ s;
      "Autodec." ^ s ]
  in
  let value_starts ty =
    let s = Dtype.suffix ty in
    let leaves =
      if Dtype.is_integer ty then
        [ "Const." ^ s; "Zero." ^ s; "One." ^ s; "Two." ^ s; "Four." ^ s;
          "Eight." ^ s ]
      else [ "Fconst." ^ s ]
    in
    let ops =
      if Dtype.is_integer ty then
        List.map (fun op -> Termname.binop op ty) (int_binops ty ~reverse_ops)
        @ [ Termname.unop Op.Neg ty; Termname.unop Op.Com ty ]
      else
        List.map (fun op -> Termname.binop op ty) (float_binops ~reverse_ops)
        @ [ Termname.unop Op.Neg ty ]
    in
    let conversions =
      List.filter_map
        (fun from ->
          if Dtype.equal from ty then None
          else Some (Termname.cvt ~from ~to_:ty))
        all_types
    in
    let addr =
      if ty = Dtype.Long then List.map Termname.addr all_types else []
    in
    leaves @ lvalue_starts ty @ ops @ conversions @ addr
  in
  let stmt_starts =
    List.concat_map
      (fun ty -> [ Termname.assign ty; Termname.rassign ty ])
      all_types
    @ [ Termname.cbranch; Termname.arg Dtype.Long; Termname.arg Dtype.Dbl ]
  in
  let starts ~parent ~child =
    match parent with
    | None -> stmt_starts
    | Some name -> (
      let base, sfx = split_name name in
      let ty = Dtype.of_suffix sfx in
      match (base, ty, child) with
      | "Assign", Some ty, 0 -> lvalue_starts ty
      | "Assign", Some ty, 1 -> value_starts ty
      | "Rassign", Some ty, 0 -> value_starts ty
      | "Rassign", Some ty, 1 -> lvalue_starts ty
      | ( ( "Plus" | "Minus" | "Mul" | "Div" | "Mod" | "And" | "Or" | "Xor"
          | "Lsh" | "Rsh" | "Udiv" | "Umod" | "Rminus" | "Rdiv" | "Rmod"
          | "Rlsh" | "Rrsh" | "Neg" | "Com" ),
          Some ty,
          _ ) ->
        value_starts ty
      | "Indir", Some _, 0 -> value_starts Dtype.Long
      | "Arg", Some ty, 0 -> value_starts ty
      | "Addr", Some ty, 0 ->
        (* addresses are taken of named or computed memory locations *)
        let s = Dtype.suffix ty in
        [ "Name." ^ s; "Temp." ^ s; "Indir." ^ s ]
      | "Cvt", None, 0 when String.length sfx = 2 -> (
        match Dtype.of_suffix (String.make 1 sfx.[0]) with
        | Some from -> value_starts from
        | None -> [])
      | "Cmp", Some ty, (0 | 1) -> value_starts ty
      | "Cmp", Some _, 2 -> [ Termname.label ]
      | "Cbranch", None, 0 ->
        List.map (fun ty -> Termname.cmp ty) all_types
      | _ -> [])
  in
  { arity; starts; stmt_starts; value_starts; lvalue_starts }
