open Import

(* Chaitin/Briggs graph-coloring register allocation over the emitted
   instruction stream of one function.

   The stream arrives referencing virtual registers (allocated by
   {!Regmgr} in virtual mode, numbered from [vinfo.vs_base]).  Each
   round: solve liveness, build the interference graph, coalesce
   register-to-register moves (Briggs conservative test), simplify and
   select against the backend's register bank, and either assign colors
   or rewrite the spilled live ranges through {!Frame} temporaries and
   try again.  Everything is deterministic — arrays, stream order,
   lowest-index tie-breaks — so colored output is byte-identical under
   any [-j]. *)

type stats = {
  rounds : int;
  coalesced : int;
  self_moves_deleted : int;
  spilled_ranges : int;
  spill_stores : int;
  spill_reloads : int;
}

(* -- backend probing ----------------------------------------------------- *)

(* the mover's register-to-register spellings, one per data type *)
let probe_move_mnemonics move =
  List.filter_map
    (fun ty ->
      match move ty ~src:(Mode.Reg 0) ~dst:(Mode.Reg 1) with
      | [ Insn.Insn (m, [ _; _ ]) ] -> Some m
      | _ -> None)
    Dtype.all
  |> List.sort_uniq compare

(* the unconditional-branch mnemonic, from the backend's jump builder *)
let is_jump_fn (backend : Backend.t) =
  let g = Label.gen () in
  match backend.Backend.jump (Label.fresh g) with
  | Insn.Branch (m, _) -> fun m' -> String.equal m' m
  | _ -> fun _ -> false

(* -- heat input ---------------------------------------------------------- *)

(* Parse the output of [mdgtool heat --json]: any JSON containing
   objects with "id" and "count" number fields.  A hand-rolled scanner
   keeps the dependency footprint at zero. *)
let parse_heat s =
  let n = String.length s in
  let out = ref [] in
  let rec skip_ws i = if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r') then skip_ws (i + 1) else i in
  let num i =
    let j = ref i in
    while !j < n && (match s.[!j] with '0' .. '9' | '-' -> true | _ -> false) do incr j done;
    if !j = i then None else Some (int_of_string (String.sub s i (!j - i)), !j)
  in
  let field name i =
    (* at [i] sits '"': match "name" : <int> *)
    let q = "\"" ^ name ^ "\"" in
    let ql = String.length q in
    if i + ql <= n && String.sub s i ql = q then
      let j = skip_ws (i + ql) in
      if j < n && s.[j] = ':' then num (skip_ws (j + 1)) else None
    else None
  in
  let id = ref None in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '{' -> id := None
    | '}' -> id := None
    | '"' -> (
      match field "id" !i with
      | Some (v, j) ->
        id := Some v;
        i := j - 1
      | None -> (
        match field "count" !i with
        | Some (c, j) ->
          (match !id with Some v -> out := (v, c) :: !out | None -> ());
          id := None;
          i := j - 1
        | None -> ()))
    | _ -> ());
    incr i
  done;
  List.rev !out

let load_heat path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_heat (really_input_string ic (in_channel_length ic)))

(* -- the allocator ------------------------------------------------------- *)

let max_rounds = 16

let run ~(backend : Backend.t) ~(bank : int list) ~(frame : Frame.t)
    ~(vinfo : Regmgr.vreg_summary) ~(heat : (int * int) list)
    ~(prov : (int * int list * string) list) (insns0 : Insn.t list) =
  let ra = backend.Backend.regalloc in
  let move = Option.value backend.Backend.move ~default:Regmgr.default_move in
  let move_mnemonics = probe_move_mnemonics move in
  let is_jump = is_jump_fn backend in
  let vbase = vinfo.Regmgr.vs_base in
  let have_prov = prov <> [] in
  (* growable per-vreg metadata (spill rewriting mints fresh temps) *)
  let types = ref vinfo.Regmgr.vs_types in
  let kinds = ref vinfo.Regmgr.vs_kinds in
  let provs = ref vinfo.Regmgr.vs_prov in
  let nospill = ref (Array.make (Array.length vinfo.Regmgr.vs_types) false) in
  let add_vreg ty p =
    let v = vbase + Array.length !types in
    types := Array.append !types [| ty |];
    kinds := Array.append !kinds [| Regmgr.Vsingle |];
    provs := Array.append !provs [| p |];
    nospill := Array.append !nospill [| true |];
    v
  in
  let insns = ref (Array.of_list insns0) in
  let prov_a = ref (Array.of_list prov) in
  let st_coalesced = ref 0 in
  let st_self_moves = ref 0 in
  let st_spilled = ref 0 in
  let st_stores = ref 0 in
  let st_reloads = ref 0 in
  let result = ref None in
  let round = ref 0 in
  while !result = None do
    incr round;
    if !round > max_rounds then
      failwith "register allocator: coloring failed to converge";
    let nv = Array.length !types in
    let lv =
      Liveness.analyze ~ra ~is_jump ~vbase ~nvregs:nv !insns
    in
    let g = Interference.build ~move_mnemonics ~heat ~prov:!prov_a lv in
    (* -- coalescing: union-find over virtual-register nodes ------------- *)
    let parent = Array.init nv (fun i -> i) in
    let rec find i =
      if parent.(i) = i then i
      else begin
        let r = find parent.(i) in
        parent.(i) <- r;
        r
      end
    in
    let members = Array.init nv (fun i -> [ i ]) in
    (* neighbour sets per class representative, over original node ids *)
    let nbr =
      Array.init nv (fun i ->
          let b = Liveness.Bits.make nv in
          List.iter (fun j -> Liveness.Bits.set b j) g.Interference.adj.(i);
          b)
    in
    let interferes_cls a b =
      List.exists (fun m -> Liveness.Bits.get nbr.(a) m) members.(b)
    in
    let width r = if (!kinds).(r) = Regmgr.Vpair_base then 2 else 1 in
    let forbid_cls r =
      List.fold_left (fun acc m -> acc lor g.Interference.forbid.(m)) 0 members.(r)
    in
    (* classes coalesced into a physical register (a register variable
       or a call-result register): colored up front, never simplified,
       never spilled.  Their colors sit outside [bank] — the bank
       registers never appear in a virtual-mode stream — so they do not
       shrink anyone's palette, only pin the move ends together. *)
    let pre = Array.make nv (-1) in
    let bank_mask = List.fold_left (fun a p -> a lor (1 lsl p)) 0 bank in
    let color_bits r p =
      (1 lsl p)
      lor (if (!kinds).(r) = Regmgr.Vpair_base then 1 lsl (p + 1) else 0)
    in
    let class_color_bits c = if pre.(c) < 0 then 0 else color_bits c pre.(c) in
    let scratch = Array.make nv false in
    let neighbor_classes r =
      let out = ref [] in
      Liveness.Bits.iter
        (fun j ->
          let c = find j in
          if c <> r && not scratch.(c) then begin
            scratch.(c) <- true;
            out := c :: !out
          end)
        nbr.(r);
      List.iter (fun c -> scratch.(c) <- false) !out;
      List.rev !out
    in
    (* forbidden physical registers, including precolored neighbours *)
    let eff_forbid r =
      List.fold_left
        (fun acc c -> acc lor class_color_bits c)
        (forbid_cls r) (neighbor_classes r)
    in
    (* usable colors under a forbid mask: singles count free bank regs,
       pairs count disjoint usable rn/rn+1 pairs (so one neighbour color
       of width w kills at most w of them) *)
    let avail_colors r =
      let forbid = forbid_cls r in
      let free p = List.mem p bank && forbid land (1 lsl p) = 0 in
      if (!kinds).(r) = Regmgr.Vpair_base then begin
        let k = ref 0 in
        let prev = ref (-2) in
        List.iter
          (fun p ->
            if p > !prev + 1 && free p && free (p + 1) && List.mem (p + 1) bank
            then begin
              incr k;
              prev := p
            end)
          (List.sort compare bank);
        !k
      end
      else List.length (List.filter free bank)
    in
    let deg_of r =
      (* precolored neighbours hold colors outside the bank: they pin
         registers but never shrink a node's palette *)
      List.fold_left
        (fun a c -> if pre.(c) >= 0 then a else a + width c)
        0 (neighbor_classes r)
    in
    let briggs_ok a b =
      let k =
        (* conservative: colors available to the merged class *)
        min (avail_colors a) (avail_colors b)
      in
      let combined =
        let na = neighbor_classes a and nb = neighbor_classes b in
        List.sort_uniq compare (na @ nb)
      in
      let significant =
        List.fold_left
          (fun acc c ->
            if c = a || c = b || pre.(c) >= 0 then acc
            else if deg_of c >= avail_colors c then acc + width c
            else acc)
          0 combined
      in
      significant + width a - 1 < k
    in
    let merge a b =
      let keep = min a b and lose = max a b in
      parent.(lose) <- keep;
      members.(keep) <- members.(keep) @ members.(lose);
      Liveness.Bits.union_into ~src:nbr.(lose) ~dst:nbr.(keep);
      pre.(keep) <- max pre.(keep) pre.(lose)
    in
    (* precoloring class [v] to physical [p] is safe when they do not
       interfere; when [p] lies inside the bank (it never does today)
       the George test additionally protects v's neighbours *)
    let precolor_ok v pm =
      eff_forbid v land pm = 0
      && (pm land bank_mask = 0
          || List.for_all
               (fun c ->
                 pre.(c) >= 0
                 || forbid_cls c land pm <> 0
                 || deg_of c < avail_colors c)
               (neighbor_classes v))
    in
    List.iter
      (fun (_, ns, nd) ->
        let virt n = n >= Liveness.nphys in
        match (virt ns, virt nd) with
        | true, true ->
          let a = find (ns - Liveness.nphys)
          and b = find (nd - Liveness.nphys) in
          let pre_compat =
            if pre.(a) >= 0 && pre.(b) >= 0 then pre.(a) = pre.(b)
            else if pre.(a) >= 0 then eff_forbid b land color_bits a pre.(a) = 0
            else if pre.(b) >= 0 then eff_forbid a land color_bits b pre.(b) = 0
            else true
          in
          if
            a <> b
            && (!kinds).(a) = (!kinds).(b)
            && pre_compat
            && not (interferes_cls a b)
            && briggs_ok a b
          then begin
            merge a b;
            incr st_coalesced
          end
        | true, false | false, true ->
          let v = find ((if virt ns then ns else nd) - Liveness.nphys) in
          let p = if virt ns then nd else ns in
          let pm = color_bits v p in
          if
            pre.(v) < 0
            && ((!kinds).(v) <> Regmgr.Vpair_base || p + 1 < Liveness.nphys)
            && precolor_ok v pm
          then begin
            pre.(v) <- p;
            incr st_coalesced
          end
        | false, false -> ())
      g.Interference.moves;
    (* -- simplify ------------------------------------------------------- *)
    let reps =
      List.filter
        (fun i ->
          find i = i && (!kinds).(i) <> Regmgr.Vpair_second && pre.(i) < 0)
        (List.init nv Fun.id)
    in
    let removed = Array.make nv false in
    let active_deg r =
      (* precolored neighbours, like removed ones, never take a bank
         register away from [r] *)
      List.fold_left
        (fun a c -> if removed.(c) || pre.(c) >= 0 then a else a + width c)
        0 (neighbor_classes r)
    in
    let weight_cls r =
      if List.exists (fun m -> (!nospill).(m)) members.(r) then infinity
      else List.fold_left (fun a m -> a +. g.Interference.weight.(m)) 0.0 members.(r)
    in
    let stack = ref [] in
    let remaining = ref (List.length reps) in
    while !remaining > 0 do
      match
        List.find_opt
          (fun r -> (not removed.(r)) && active_deg r < avail_colors r)
          reps
      with
      | Some r ->
        removed.(r) <- true;
        stack := r :: !stack;
        decr remaining
      | None ->
        (* potential spill: cheapest cost per unit of pressure relieved *)
        let best =
          List.fold_left
            (fun best r ->
              if removed.(r) then best
              else
                let p = weight_cls r /. float_of_int (1 + active_deg r) in
                match best with
                | Some (_, bp) when bp <= p -> best
                | _ -> Some (r, p))
            None reps
        in
        let r, _ = Option.get best in
        removed.(r) <- true;
        stack := r :: !stack;
        decr remaining
    done;
    (* -- select --------------------------------------------------------- *)
    let color = Array.make nv (-1) in
    Array.iteri
      (fun i p -> if p >= 0 && find i = i then color.(i) <- p)
      pre;
    let spills = ref [] in
    List.iter
      (fun r ->
        let used = ref (forbid_cls r) in
        List.iter
          (fun c ->
            if color.(c) >= 0 then begin
              used := !used lor (1 lsl color.(c));
              if (!kinds).(c) = Regmgr.Vpair_base then
                used := !used lor (1 lsl (color.(c) + 1))
            end)
          (neighbor_classes r);
        let free p = !used land (1 lsl p) = 0 in
        let pick =
          if (!kinds).(r) = Regmgr.Vpair_base then
            List.find_opt (fun p -> List.mem (p + 1) bank && free p && free (p + 1)) bank
          else List.find_opt free bank
        in
        match pick with
        | Some p -> color.(r) <- p
        | None -> spills := r :: !spills)
      !stack;
    let spills = List.sort compare !spills in
    if spills = [] then begin
      (* -- assign and clean up ------------------------------------------ *)
      let map_reg r =
        if r >= vbase then begin
          let p = color.(find (r - vbase)) in
          assert (p >= 0);
          p
        end
        else r
      in
      let map_mode = function
        | Mode.Reg r -> Mode.Reg (map_reg r)
        | Mode.Mem m ->
          Mode.Mem
            {
              m with
              Mode.base = Option.map map_reg m.Mode.base;
              index = Option.map map_reg m.Mode.index;
            }
        | (Mode.Imm _ | Mode.Fimm _) as o -> o
      in
      let move_at = Array.make (Array.length !insns) false in
      List.iter (fun (i, _, _) -> move_at.(i) <- true) g.Interference.moves;
      (* deleting a now-redundant register self-move is unsafe only if
         the next instruction is a conditional branch reading the
         condition codes the move would have set *)
      let cc_needed i =
        let n = Array.length !insns in
        let rec next j =
          if j >= n then false
          else
            match (!insns).(j) with
            | Insn.Comment _ -> next (j + 1)
            | Insn.Branch (m, _) -> not (is_jump m)
            | _ -> false
        in
        next (i + 1)
      in
      let out = ref [] and outp = ref [] in
      Array.iteri
        (fun i insn ->
          let keep insn' =
            out := insn' :: !out;
            if have_prov then outp := (!prov_a).(i) :: !outp
          in
          match insn with
          | Insn.Insn (m, ops) ->
            let ops' = List.map map_mode ops in
            let self_move =
              move_at.(i)
              &&
              match ops' with
              | [ Mode.Reg a; Mode.Reg b ] -> a = b
              | _ -> false
            in
            if self_move && not (cc_needed i) then incr st_self_moves
            else keep (Insn.Insn (m, ops'))
          | _ -> keep insn)
        !insns;
      (* no virtual register survives assignment *)
      List.iter
        (fun insn ->
          match insn with
          | Insn.Insn (_, ops) ->
            List.iter
              (fun o ->
                List.iter (fun r -> assert (r < vbase)) (Mode.registers o))
              ops
          | _ -> ())
        !out;
      result := Some (List.rev !out, List.rev !outp)
    end
    else begin
      (* -- spill rewrite ------------------------------------------------ *)
      st_spilled := !st_spilled + List.length spills;
      let slot_of = Hashtbl.create 8 in
      List.iter
        (fun r ->
          let ty =
            List.fold_left
              (fun acc m ->
                if Dtype.size (!types).(m) > Dtype.size acc then (!types).(m)
                else acc)
              (!types).(List.hd members.(r))
              members.(r)
          in
          Hashtbl.replace slot_of r (Frame.alloc_virtual frame ty, ty))
        spills;
      let spilled r =
        if r >= vbase then Hashtbl.find_opt slot_of (find (r - vbase)) |> Option.map (fun s -> (find (r - vbase), s))
        else None
      in
      let out = ref [] and outp = ref [] in
      let push ?p insn =
        out := insn :: !out;
        if have_prov then
          outp :=
            (match p with Some e -> e | None -> (0, [], "")) :: !outp
      in
      Array.iteri
        (fun i insn ->
          let orig_p = if have_prov then (!prov_a).(i) else (0, [], "") in
          match insn with
          | Insn.Insn (m, ops) ->
            let n = List.length ops in
            let kind = if n = 0 then Backend.Dst_none else ra.Backend.ra_dst m in
            (* fresh temps for this instruction, one per spilled class *)
            let rmap = ref [] in
            let mark_of rep suffix =
              let line, pids = (!provs).(rep) in
              (line, pids, suffix)
            in
            let reload rep (slot, ty) =
              match List.assoc_opt rep !rmap with
              | Some v -> v
              | None ->
                let v = add_vreg ty (!provs).(rep) in
                incr st_reloads;
                List.iter
                  (fun mi -> push ~p:(mark_of rep "reload") mi)
                  (move ty ~src:slot ~dst:(Mode.Reg v));
                rmap := (rep, v) :: !rmap;
                v
            in
            let stores = ref [] in
            let store_after rep (slot, ty) v =
              stores := (rep, slot, ty, v) :: !stores
            in
            let in_place = ra.Backend.ra_spill_in_place in
            let ops' =
              List.mapi
                (fun idx o ->
                  let is_dst = idx = n - 1 && kind <> Backend.Dst_none in
                  match o with
                  | Mode.Reg r -> (
                    match spilled r with
                    | None -> o
                    | Some (rep, (slot, ty)) ->
                      if in_place then slot
                      else if is_dst && kind = Backend.Dst_write then begin
                        (* rename the definition, store it afterwards *)
                        let v = add_vreg ty (!provs).(rep) in
                        store_after rep (slot, ty) v;
                        Mode.Reg v
                      end
                      else Mode.Reg (reload rep (slot, ty)))
                  | Mode.Mem mm ->
                    (* address registers must be reloaded on any target *)
                    let sub part =
                      match part with
                      | Some r -> (
                        match spilled r with
                        | None -> part
                        | Some (rep, s) -> Some (reload rep s))
                      | None -> None
                    in
                    let base' = sub mm.Mode.base in
                    (match (mm.Mode.auto, mm.Mode.base, base') with
                    | Some _, Some b, Some b' when b <> b' ->
                      (* side-effecting base: write the bumped value back *)
                      (match spilled b with
                      | Some (rep, (slot, ty)) -> store_after rep (slot, ty) b'
                      | None -> ())
                    | _ -> ());
                    Mode.Mem { mm with Mode.base = base'; index = sub mm.Mode.index }
                  | Mode.Imm _ | Mode.Fimm _ -> o)
                ops
            in
            push ~p:orig_p (Insn.Insn (m, ops'));
            List.iter
              (fun (rep, slot, ty, v) ->
                incr st_stores;
                List.iter
                  (fun mi -> push ~p:(mark_of rep "spill") mi)
                  (move ty ~src:(Mode.Reg v) ~dst:slot))
              (List.rev !stores)
          | _ -> push ~p:orig_p insn)
        !insns;
      insns := Array.of_list (List.rev !out);
      prov_a := Array.of_list (List.rev !outp)
    end
  done;
  let insns', prov' = Option.get !result in
  if !Metrics.enabled then begin
    if !st_spilled > 0 then
      Metrics.incr ~by:!st_spilled "codegen.spills_total";
    if !st_reloads > 0 then
      Metrics.incr ~by:!st_reloads "codegen.reloads_total"
  end;
  ( insns',
    prov',
    {
      rounds = !round;
      coalesced = !st_coalesced;
      self_moves_deleted = !st_self_moves;
      spilled_ranges = !st_spilled;
      spill_stores = !st_stores;
      spill_reloads = !st_reloads;
    } )
