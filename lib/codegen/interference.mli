(** Interference graph over virtual registers for {!Color}, built from
    a {!Liveness} solution.  Move-aware (the source of a register move
    does not conflict with its destination) and weighted: each node's
    spill cost accumulates [use_count x 10^loop_depth x (1 + heat)],
    heat coming from the production firing counts of the provenance at
    each site. *)

type t = {
  nv : int;
  adj : int list array;
  matrix : Bytes.t;
  forbid : int array;
      (** per-node bitmask of physical registers it must not receive *)
  moves : (int * int * int) list;
      (** coalescable moves in stream order: (instruction index,
          source, destination) as {!Liveness} node indices; an end
          below [Liveness.nphys] is a physical register *)
  weight : float array;
  occurrences : int array;
}

val interferes : t -> int -> int -> bool
val add_edge : t -> int -> int -> unit

val build :
  move_mnemonics:string list ->
  heat:(int * int) list ->
  prov:(int * int list * string) array ->
  Liveness.t ->
  t
