open Import

(** The semantic actions of the code generator: what happens at each
    reduction of the pattern matcher (paper sections 5.2-5.4).

    Reductions with [Mode] actions condense the matched phrase into an
    operand descriptor; [Emit] actions select an instruction from the
    instruction table, run the idiom recogniser (binding idioms, range
    idioms, pseudo-instruction expansion — section 5.3.2), call the
    register manager, and append assembly to the output buffer. *)

type t

(** [create ~idioms ~reserved frame] — [idioms:false] disables the
    idiom recogniser (the paper notes it is optional: correct but worse
    code results); [reserved] registers hold register variables and are
    withheld from the register manager; [allocatable] is the target's
    register bank and [move] its operand mover (both default to the
    VAX, see {!Regmgr.create}).  [explain] overrides
    [Profile.provenance_enabled] (the colorer's heat weighting needs
    provenance without the user asking for --explain); [vreg_base]
    puts the register manager in virtual mode for the coloring
    allocator. *)
val create :
  ?idioms:bool ->
  ?explain:bool ->
  ?reserved:int list ->
  ?allocatable:int list ->
  ?move:(Dtype.t -> src:Mode.t -> dst:Mode.t -> Insn.t list) ->
  ?vreg_base:int ->
  Frame.t ->
  t

(** Matcher callbacks bound to this state and grammar, with the VAX
    mode builder and Emit dispatcher. *)
val callbacks : t -> Grammar.t -> Desc.sval Matcher.callbacks

(** The target-independent callback skeleton: shift wraps the terminal
    node, reduce dispatches [Chain]/[Start] to the first argument and
    [Mode]/[Emit] to the supplied dispatchers (with provenance
    bookkeeping), choose ranks equal-length candidates mode < chain <
    emit < start, then grammar order.  A second backend supplies its
    own dispatchers and inherits everything else. *)
val make_callbacks :
  t ->
  mode:(t -> Grammar.t -> string -> Grammar.production -> Desc.sval array -> Desc.sval) ->
  emit:(t -> Grammar.t -> string -> Grammar.production -> Desc.sval array -> Desc.sval) ->
  Grammar.t ->
  Desc.sval Matcher.callbacks

(** Instructions emitted so far, in order. *)
val output : t -> Insn.t list

(** Append an instruction directly (used by the driver for labels,
    jumps, calls and returns). *)
val emit : t -> Insn.t -> unit

val regmgr : t -> Regmgr.t
val frame : t -> Frame.t

(** Whether the idiom recogniser was enabled at [create]. *)
val idioms_enabled : t -> bool

(** {2 Helpers shared by backend semantic dispatchers} *)

(** The data type encoded in a production's lhs non-terminal suffix
    ([reg.l] -> [Long]), if any. *)
val lhs_type : Grammar.t -> Grammar.production -> Dtype.t option

(** Materialise a descriptor whose operand carries autoincrement side
    effects into a register so it can be referenced more than once
    (paper section 6.1); any other descriptor is returned unchanged. *)
val stable : t -> Desc.t -> Desc.t

(** The immediate value of a descriptor's operand, if it is one. *)
val immediate_value : Desc.t -> int64 option

(** Split an [Emit] key ["st.l"] into [("st", Some "l")]. *)
val parse_key : string -> string * string option

(** Destructure the [Cbranch] node of a branch production. *)
val branch_of_node : Tree.t -> Op.relop * Dtype.signedness * Dtype.t * Label.t

(** Destructure the [Binop] node of an operator production. *)
val binop_of_node : Tree.t -> Op.binop

(** {2 Instruction provenance}

    When [Profile.provenance_enabled] was true at [create] time, every
    emitted instruction is paired with the source line current at the
    time of emission and the grammar production ids reduced since the
    previous emission.  Outside of explain mode these are no-ops and
    the emit path allocates nothing extra. *)

(** Set the current source line (from a [Tree.Sline] marker). *)
val set_line : t -> int -> unit

(** Mark the end of a statement tree: instructions emitted after this
    point and before the next reduction carry no production ids. *)
val end_tree : t -> unit

(** [(line, production ids, marker)] for each instruction of [output],
    in order.  The marker is [""] for ordinary instructions, ["spill"]
    or ["reload"] for register-manager traffic (which carries the
    provenance of the value being moved, not of the current
    reduction).  Empty unless provenance was enabled at [create]. *)
val provenance : t -> (int * int list * string) list
