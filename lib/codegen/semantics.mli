open Import

(** The semantic actions of the code generator: what happens at each
    reduction of the pattern matcher (paper sections 5.2-5.4).

    Reductions with [Mode] actions condense the matched phrase into an
    operand descriptor; [Emit] actions select an instruction from the
    instruction table, run the idiom recogniser (binding idioms, range
    idioms, pseudo-instruction expansion — section 5.3.2), call the
    register manager, and append assembly to the output buffer. *)

type t

(** [create ~idioms ~reserved frame] — [idioms:false] disables the
    idiom recogniser (the paper notes it is optional: correct but worse
    code results); [reserved] registers hold register variables and are
    withheld from the register manager. *)
val create : ?idioms:bool -> ?reserved:int list -> Frame.t -> t

(** Matcher callbacks bound to this state and grammar. *)
val callbacks : t -> Grammar.t -> Desc.sval Matcher.callbacks

(** Instructions emitted so far, in order. *)
val output : t -> Insn.t list

(** Append an instruction directly (used by the driver for labels,
    jumps, calls and returns). *)
val emit : t -> Insn.t -> unit

val regmgr : t -> Regmgr.t

(** {2 Instruction provenance}

    When [Profile.provenance_enabled] was true at [create] time, every
    emitted instruction is paired with the source line current at the
    time of emission and the grammar production ids reduced since the
    previous emission.  Outside of explain mode these are no-ops and
    the emit path allocates nothing extra. *)

(** Set the current source line (from a [Tree.Sline] marker). *)
val set_line : t -> int -> unit

(** Mark the end of a statement tree: instructions emitted after this
    point and before the next reduction carry no production ids. *)
val end_tree : t -> unit

(** [(line, production ids)] for each instruction of [output], in
    order.  Empty unless provenance was enabled at [create]. *)
val provenance : t -> (int * int list) list
