(** Domain-based worker pool for batch compilation.

    The paper's headline defect is second-pass throughput (section 8:
    the table-driven pass ran ~1.45x slower than PCC's); beyond the
    matcher's own hot loop, the remaining lever is compiling the
    functions of a program across cores.  The packed tables are
    immutable and shared read-only; all per-function state
    ({!Semantics}, {!Regmgr}, {!Frame}) lives inside the worker; and
    {!Gg_profile.Profile} shards its counters per domain, so [--profile]
    and fuzz coverage stay exact under parallelism. *)

(** [Domain.recommended_domain_count ()] — the useful upper bound for
    [jobs]. *)
val available : unit -> int

(** [map ~jobs f xs] applies [f] to every element of [xs] on a pool of
    [jobs] domains (the calling domain is one of them; [jobs <= 1]
    degenerates to [List.map]).  Results preserve input order
    regardless of scheduling, so batch output is deterministic.  If any
    application raises, the exception of the {e earliest} failing
    element is re-raised after all workers have been joined. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
