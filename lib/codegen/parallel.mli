(** Domain-based worker pool for batch compilation.

    The paper's headline defect is second-pass throughput (section 8:
    the table-driven pass ran ~1.45x slower than PCC's); beyond the
    matcher's own hot loop, the remaining lever is compiling the
    functions of a program across cores.  The packed tables are
    immutable and shared read-only; all per-function state
    ({!Semantics}, {!Regmgr}, {!Frame}) lives inside the worker; and
    {!Gg_profile.Profile} shards its counters per domain, so [--profile]
    and fuzz coverage stay exact under parallelism. *)

(** [Domain.recommended_domain_count ()] — the useful upper bound for
    [jobs]. *)
val available : unit -> int

(** [map ~jobs f xs] applies [f] to every element of [xs] on a pool of
    [jobs] domains (the calling domain is one of them; [jobs <= 1]
    degenerates to [List.map]).  Results preserve input order
    regardless of scheduling, so batch output is deterministic.  If any
    application raises, the exception of the {e earliest} failing
    element is re-raised after all workers have been joined. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** {1 Persistent pools}

    Long-lived worker domains for serving workloads
    ({!Gg_server.Server}): where {!map} spawns and joins a pool per
    batch, [spawn_pool] keeps the domains alive until their body
    returns — the body loops over a shared work source (a queue) and
    decides for itself when to stop. *)

type pool

(** [spawn_pool ~domains body] starts [max 1 domains] domains, each
    running [body i] (with [i] the worker index) to completion. *)
val spawn_pool : domains:int -> (int -> unit) -> pool

(** Joins every member; if any body raised, re-raises the first such
    exception (in worker order) after all have been joined. *)
val join_pool : pool -> unit

(** Worker domains currently running (spawned by {!map} or
    {!spawn_pool} and not yet finished).  Zero once every pool is
    joined — the invariant the shutdown tests assert. *)
val live_domains : unit -> int
