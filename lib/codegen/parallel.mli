(** Domain-based worker pool for batch compilation.

    The paper's headline defect is second-pass throughput (section 8:
    the table-driven pass ran ~1.45x slower than PCC's); beyond the
    matcher's own hot loop, the remaining lever is compiling the
    functions of a program across cores.  The packed tables are
    immutable and shared read-only; all per-function state
    ({!Semantics}, {!Regmgr}, {!Frame}) lives inside the worker; and
    {!Gg_profile.Profile} shards its counters per domain, so [--profile]
    and fuzz coverage stay exact under parallelism.

    {!map} runs its batches on one process-wide {e persistent} pool:
    worker domains are spawned on first use and parked on a condition
    variable between batches, because [Domain.spawn] costs milliseconds
    — comparable to compiling the whole corpus — and spawning per batch
    made [-j 2] measurably slower than [-j 1]. *)

(** [Domain.recommended_domain_count ()] — the useful upper bound for
    [jobs]. *)
val available : unit -> int

(** [map ~jobs f xs] applies [f] to every element of [xs] on up to
    [jobs] domains (the calling domain is one of them; an effective
    count of 1 degenerates to [List.map]).  Results preserve input
    order regardless of scheduling, so batch output is deterministic.
    If any application raises, the exception of the {e earliest}
    failing element is re-raised after the batch has completed.

    The effective domain count is clamped to [available ()] — extra
    domains on a smaller machine only add stop-the-world GC
    synchronisation — so [-j 8] on one core runs sequentially rather
    than 7x slower.  [~oversubscribe:true] lifts the clamp (to the
    pool's parked-worker cap) so tests and benchmarks can exercise real
    multi-domain batches on any box; it is never the production path.

    Batches run one at a time on the shared pool; a [map] issued while
    another is in flight (including a nested [map] from inside [f])
    runs inline and sequentially, with identical observable
    behaviour. *)
val map : ?oversubscribe:bool -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** Joins every parked map-pool worker (waiting first for an in-flight
    batch).  The pool respawns lazily on the next [map]; registered
    with [at_exit], so explicit calls are only needed by tests. *)
val shutdown : unit -> unit

(** {1 Persistent pools}

    Long-lived worker domains for serving workloads
    ({!Gg_server.Server}): where {!map}'s pool parks between batches,
    [spawn_pool] members run one body until it returns — the body loops
    over a shared work source (a queue) and decides for itself when to
    stop. *)

type pool

(** [spawn_pool ~domains body] starts [max 1 domains] domains, each
    running [body i] (with [i] the worker index) to completion. *)
val spawn_pool : domains:int -> (int -> unit) -> pool

(** Joins every member; if any body raised, re-raises the first such
    exception (in worker order) after all have been joined. *)
val join_pool : pool -> unit

(** Domains currently executing work: {!spawn_pool} members for their
    lifetime, map-pool workers only while participating in a batch
    (parked workers are not counted).  Zero once every pool is joined
    and no batch is in flight — the invariant the shutdown tests
    assert. *)
val live_domains : unit -> int
