open Import

(** A target backend: everything outside the machine description that
    still depends on the machine.

    The paper's thesis is that the machine description (grammar +
    instruction table + semantic dispatchers) is the only
    target-specific artifact.  This record is the test of that claim:
    it gathers every machine-dependent decision the driver makes —
    which grammar to build tables from, how to move values for the
    register manager, which callbacks to run at reductions, the
    unconditional jump, the function prologue, assembly rendering, the
    cycle model — so {!Driver} itself stays target-independent. *)

type target = Vax | Risc

val target_name : target -> string
val target_of_string : string -> target option
val all_targets : target list

(** How an [Insn] treats its last operand: [Dst_none] — every operand
    is a source (compares, tests, pushes, stores on a load/store
    machine); [Dst_write] — the last operand is overwritten;
    [Dst_readwrite] — the last operand is both read and overwritten
    (the VAX '2'-suffix forms). *)
type dst_kind = Dst_none | Dst_write | Dst_readwrite

(** What the graph-coloring register allocator needs to know about the
    instruction set beyond the shared [move]/[alloc_regs] seams:
    [ra_dst] classifies a mnemonic's last operand, and
    [ra_spill_in_place] says whether a spilled register operand can be
    replaced by its frame slot directly (the VAX ALU takes memory
    operands; a load/store machine must insert reloads and stores
    instead). *)
type regalloc_info = {
  ra_dst : string -> dst_kind;
  ra_spill_in_place : bool;
}

type t = {
  target : target;
  grammar_of : Grammar_def.options -> Grammar.t;
      (** grammar for the shared option record; a non-VAX backend
          honours the IR-level fields (types, reverse operators) and
          ignores the VAX-specific ones *)
  default_grammar : Grammar.t Lazy.t;
  move : (Dtype.t -> src:Mode.t -> dst:Mode.t -> Insn.t list) option;
      (** register-manager operand mover; [None] uses the VAX default *)
  callbacks : Semantics.t -> Grammar.t -> Desc.sval Matcher.callbacks;
  jump : Label.t -> Insn.t;  (** unconditional branch for [Tree.Sjump] *)
  prologue : int -> string;
      (** frame-allocation line(s) for a positive frame size *)
  prologue_cycles : int;  (** static cost charged per function entry *)
  render_insn : Insn.t -> string;
  insn_cycles : Insn.t -> int;
  peephole : (Insn.t list -> Insn.t list) option;
      (** [None] when no peephole pass exists for this target;
          [Driver] then ignores [options.peephole] *)
  alloc_regs : int list;
      (** registers the register manager may allocate, in allocation
          order.  The VAX follows PCC (r6-r11); a load/store target
          needs a wider bank because every operand is materialised *)
  leaf_need : int;
      (** Sethi-Ullman weight of a leaf operand for the phase 1c spill
          guard: 0 when the ALU takes memory operands directly (VAX),
          1 when every leaf must be loaded into a register first *)
  regalloc : regalloc_info;
      (** instruction-set facts for the coloring allocator *)
}

val name : t -> string

(** The original backend of this compiler. *)
val vax : t
