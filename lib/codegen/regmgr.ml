open Import

type slot = {
  mutable owner : Desc.t;
  mutable pinned : bool;
  s_prov : int * int list;  (* provenance of the value at allocation *)
}

type vreg_kind = Vsingle | Vpair_base | Vpair_second

type vreg_summary = {
  vs_base : int;
  vs_types : Dtype.t array;
  vs_kinds : vreg_kind array;
  vs_prov : (int * int list) array;
}

type t = {
  slots : (int, slot) Hashtbl.t;  (* register number -> live slot *)
  allocatable : int list;  (* the target's register bank, allocation order *)
  vbase : int option;  (* Some b: virtual mode, fresh registers from b *)
  mutable next_vreg : int;
  mutable vrecs : (Dtype.t * vreg_kind * (int * int list)) list;  (* reversed *)
  mutable stack : int list;  (* allocation order, most recent first *)
  mutable free : int list;  (* most recently freed first *)
  frame : Frame.t;
  emit : Insn.t -> unit;
  move : Dtype.t -> src:Mode.t -> dst:Mode.t -> Insn.t list;
  prov_of : unit -> int * int list;
  marked : mark:string -> prov:(int * int list) -> (unit -> unit) -> unit;
  mutable spill_modes : (Mode.t * (int * int list)) list;
      (* frame slots created by spills, so a later materialisation can
         be recognised (and tagged) as a reload *)
  mutable spills : int;
  mutable reloads : int;
}

let is_allocatable t r =
  match t.vbase with
  | Some b -> r >= b
  | None -> List.mem r t.allocatable

(* doubles and quads live in consecutive register pairs rn/rn+1 *)
let needs_pair ty = Dtype.size ty = 8

(* the VAX mover: one mov<sfx> handles any src/dst operand pair *)
let vax_move ty ~src ~dst = [ Insn.insn ("mov" ^ Dtype.suffix ty) [ src; dst ] ]

let default_move = vax_move

let create ?(reserved = []) ?(allocatable = Regconv.allocatable)
    ?(move = vax_move) ?vreg_base ?(prov_of = fun () -> (0, []))
    ?(marked = fun ~mark:_ ~prov:_ f -> f ()) ~emit frame =
  {
    slots = Hashtbl.create 16;
    allocatable;
    vbase = vreg_base;
    next_vreg = Option.value vreg_base ~default:0;
    vrecs = [];
    stack = [];
    free =
      (match vreg_base with
      | Some _ -> []  (* virtual mode draws from the fresh counter *)
      | None -> List.filter (fun r -> not (List.mem r reserved)) allocatable);
    frame;
    emit;
    move;
    prov_of;
    marked;
    spill_modes = [];
    spills = 0;
    reloads = 0;
  }

let free_reg t r =
  Hashtbl.remove t.slots r;
  t.stack <- List.filter (fun x -> x <> r) t.stack;
  (* virtual registers are never recycled: reuse would glue two
     distinct live ranges into one and corrupt pair widths *)
  if t.vbase = None && not (List.mem r t.free) then t.free <- r :: t.free

let release t (d : Desc.t) =
  List.iter (fun r -> if is_allocatable t r then free_reg t r) d.Desc.owned;
  d.Desc.owned <- []

(* Spill the register nearest the bottom of the stack whose owner can be
   redirected (operand is exactly that register, not pinned inside a
   composite operand). *)
let spill_one t =
  let rec find = function
    | [] -> failwith "register manager: out of registers (all pinned)"
    | r :: rest -> (
      match Hashtbl.find_opt t.slots r with
      | Some { pinned = false; owner; _ }
        when owner.Desc.operand = Mode.Reg r ->
        (r, owner)
      | _ -> find rest)
  in
  (* bottom of the stack = least recently allocated = end of list *)
  let r, owner = find (List.rev t.stack) in
  let prov =
    match Hashtbl.find_opt t.slots r with
    | Some s -> s.s_prov
    | None -> (0, [])
  in
  let vslot = Frame.alloc_virtual t.frame owner.Desc.ty in
  t.spills <- t.spills + 1;
  if !Metrics.enabled then Metrics.incr "codegen.spills_total";
  t.spill_modes <- (vslot, prov) :: t.spill_modes;
  t.marked ~mark:"spill" ~prov (fun () ->
      List.iter t.emit (t.move owner.Desc.ty ~src:(Mode.Reg r) ~dst:vslot);
      t.emit (Insn.Comment (Fmt.str "spill %s" (Regconv.name r))));
  owner.Desc.operand <- vslot;
  release t owner

let take t r owner =
  Hashtbl.replace t.slots r { owner; pinned = false; s_prov = t.prov_of () };
  t.free <- List.filter (fun x -> x <> r) t.free;
  t.stack <- r :: t.stack

let fresh t ty kind =
  let r = t.next_vreg in
  t.next_vreg <- r + 1;
  t.vrecs <- (ty, kind, t.prov_of ()) :: t.vrecs;
  r

let rec alloc t ty : Desc.t =
  if needs_pair ty then alloc_pair t ty
  else
    match t.vbase with
    | Some _ ->
      let r = fresh t ty Vsingle in
      let d = Desc.make ~owned:[ r ] ty (Mode.Reg r) in
      take t r d;
      d
    | None -> (
      match t.free with
      | r :: _ ->
        let d = Desc.make ~owned:[ r ] ty (Mode.Reg r) in
        take t r d;
        d
      | [] ->
        spill_one t;
        alloc t ty)

(* consecutive pair rn/rn+1, both allocatable and free *)
and alloc_pair t ty : Desc.t =
  match t.vbase with
  | Some _ ->
    let r = fresh t ty Vpair_base in
    let r2 = fresh t ty Vpair_second in
    assert (r2 = r + 1);
    let d = Desc.make ~owned:[ r; r + 1 ] ty (Mode.Reg r) in
    take t r d;
    take t (r + 1) d;
    d
  | None -> (
    let pair_free r =
      is_allocatable t r && is_allocatable t (r + 1)
      && List.mem r t.free && List.mem (r + 1) t.free
    in
    match List.find_opt pair_free t.allocatable with
    | Some r ->
      let d = Desc.make ~owned:[ r; r + 1 ] ty (Mode.Reg r) in
      take t r d;
      take t (r + 1) d;
      d
    | None ->
      spill_one t;
      alloc_pair t ty)

let as_register t (d : Desc.t) =
  match d.Desc.operand with
  | Mode.Reg _ -> d
  | operand ->
    let reload =
      List.find_opt (fun (m, _) -> Mode.equal m operand) t.spill_modes
    in
    release t d;
    let rd = alloc t d.Desc.ty in
    let emit_moves () =
      List.iter t.emit (t.move d.Desc.ty ~src:operand ~dst:rd.Desc.operand)
    in
    (match reload with
    | Some (_, prov) ->
      t.reloads <- t.reloads + 1;
      if !Metrics.enabled then Metrics.incr "codegen.reloads_total";
      t.marked ~mark:"reload" ~prov emit_moves
    | None -> emit_moves ());
    rd

let set_pinned t (d : Desc.t) flag =
  List.iter
    (fun r ->
      if is_allocatable t r then
        match Hashtbl.find_opt t.slots r with
        | Some s when s.owner == d -> s.pinned <- flag
        | _ -> ())
    d.Desc.owned

let pin t d = set_pinned t d true
let unpin t d = set_pinned t d false

let compose t (d : Desc.t) =
  List.iter
    (fun r ->
      if is_allocatable t r then
        match Hashtbl.find_opt t.slots r with
        | Some s ->
          s.owner <- d;
          s.pinned <- true
        | None ->
          (* ownership arrived from a descriptor already released; take
             the register back *)
          take t r d;
          (match Hashtbl.find_opt t.slots r with
          | Some s -> s.pinned <- true
          | None -> assert false))
    d.Desc.owned;
  d

let in_use t = List.length t.stack

let spills t = t.spills
let reloads t = t.reloads

let vreg_summary t =
  match t.vbase with
  | None -> None
  | Some vb ->
    let recs = Array.of_list (List.rev t.vrecs) in
    Some
      {
        vs_base = vb;
        vs_types = Array.map (fun (ty, _, _) -> ty) recs;
        vs_kinds = Array.map (fun (_, k, _) -> k) recs;
        vs_prov = Array.map (fun (_, _, p) -> p) recs;
      }

let assert_clean t =
  if t.stack <> [] then
    failwith
      (Fmt.str "register manager: registers %a still in use between statements"
         Fmt.(list ~sep:comma (of_to_string Regconv.name))
         t.stack)
