open Import

type slot = Free | InUse of { mutable owner : Desc.t; mutable pinned : bool }

type t = {
  slots : slot array;  (* indexed by register number; only allocatable used *)
  allocatable : int list;  (* the target's register bank, allocation order *)
  mutable stack : int list;  (* allocation order, most recent first *)
  mutable free : int list;  (* most recently freed first *)
  frame : Frame.t;
  emit : Insn.t -> unit;
  move : Dtype.t -> src:Mode.t -> dst:Mode.t -> Insn.t list;
}

let is_allocatable t r = List.mem r t.allocatable

(* doubles and quads live in consecutive register pairs rn/rn+1 *)
let needs_pair ty = Dtype.size ty = 8

(* the VAX mover: one mov<sfx> handles any src/dst operand pair *)
let vax_move ty ~src ~dst = [ Insn.insn ("mov" ^ Dtype.suffix ty) [ src; dst ] ]

let create ?(reserved = []) ?(allocatable = Regconv.allocatable)
    ?(move = vax_move) ~emit frame =
  {
    slots = Array.make 16 Free;
    allocatable;
    stack = [];
    free = List.filter (fun r -> not (List.mem r reserved)) allocatable;
    frame;
    emit;
    move;
  }

let free_reg t r =
  t.slots.(r) <- Free;
  t.stack <- List.filter (fun x -> x <> r) t.stack;
  if not (List.mem r t.free) then t.free <- r :: t.free

let release t (d : Desc.t) =
  List.iter (fun r -> if is_allocatable t r then free_reg t r) d.Desc.owned;
  d.Desc.owned <- []

(* Spill the register nearest the bottom of the stack whose owner can be
   redirected (operand is exactly that register, not pinned inside a
   composite operand). *)
let spill_one t =
  let rec find = function
    | [] -> failwith "register manager: out of registers (all pinned)"
    | r :: rest -> (
      match t.slots.(r) with
      | InUse { pinned = false; owner } when owner.Desc.operand = Mode.Reg r ->
        (r, owner)
      | _ -> find rest)
  in
  (* bottom of the stack = least recently allocated = end of list *)
  let r, owner = find (List.rev t.stack) in
  let vslot = Frame.alloc_virtual t.frame owner.Desc.ty in
  List.iter t.emit (t.move owner.Desc.ty ~src:(Mode.Reg r) ~dst:vslot);
  t.emit (Insn.Comment (Fmt.str "spill %s" (Regconv.name r)));
  owner.Desc.operand <- vslot;
  release t owner

let take t r owner =
  t.slots.(r) <- InUse { owner; pinned = false };
  t.free <- List.filter (fun x -> x <> r) t.free;
  t.stack <- r :: t.stack

let rec alloc t ty : Desc.t =
  if needs_pair ty then alloc_pair t ty
  else
    match t.free with
    | r :: _ ->
      let d = Desc.make ~owned:[ r ] ty (Mode.Reg r) in
      take t r d;
      d
    | [] ->
      spill_one t;
      alloc t ty

(* consecutive pair rn/rn+1, both allocatable and free *)
and alloc_pair t ty : Desc.t =
  let pair_free r =
    is_allocatable t r && is_allocatable t (r + 1)
    && List.mem r t.free && List.mem (r + 1) t.free
  in
  match List.find_opt pair_free t.allocatable with
  | Some r ->
    let d = Desc.make ~owned:[ r; r + 1 ] ty (Mode.Reg r) in
    take t r d;
    take t (r + 1) d;
    d
  | None ->
    spill_one t;
    alloc_pair t ty

let as_register t (d : Desc.t) =
  match d.Desc.operand with
  | Mode.Reg _ -> d
  | operand ->
    release t d;
    let rd = alloc t d.Desc.ty in
    List.iter t.emit (t.move d.Desc.ty ~src:operand ~dst:rd.Desc.operand);
    rd

let set_pinned t (d : Desc.t) flag =
  List.iter
    (fun r ->
      if is_allocatable t r then
        match t.slots.(r) with
        | InUse s when s.owner == d -> s.pinned <- flag
        | _ -> ())
    d.Desc.owned

let pin t d = set_pinned t d true
let unpin t d = set_pinned t d false

let compose t (d : Desc.t) =
  List.iter
    (fun r ->
      if is_allocatable t r then
        match t.slots.(r) with
        | InUse s ->
          s.owner <- d;
          s.pinned <- true
        | Free ->
          (* ownership arrived from a descriptor already released; take
             the register back *)
          take t r d;
          (match t.slots.(r) with
          | InUse s -> s.pinned <- true
          | Free -> assert false))
    d.Desc.owned;
  d

let in_use t = List.length t.stack

let assert_clean t =
  if t.stack <> [] then
    failwith
      (Fmt.str "register manager: registers %a still in use between statements"
         Fmt.(list ~sep:comma (of_to_string Regconv.name))
         t.stack)
