open Import

(** Def/use and liveness over the emitted instruction stream of one
    function, computed for {!Color}.  Registers (physical and virtual)
    are mapped to dense node indices: 0..15 physical, 16.. the virtual
    registers in allocation order. *)

module Bits : sig
  type t

  val make : int -> t
  val get : t -> int -> bool
  val set : t -> int -> unit
  val clear : t -> int -> unit
  val copy : t -> t
  val equal : t -> t -> bool
  val union_into : src:t -> dst:t -> unit
  val iter : (int -> unit) -> t -> unit
end

val nphys : int

type block = {
  first : int;
  last : int;  (** inclusive *)
  mutable succs : int list;
  mutable preds : int list;
  mutable depth : int;  (** loop nesting depth, 0 outside any loop *)
}

type t = {
  insns : Insn.t array;
  vbase : int;
  nnodes : int;
  blocks : block array;
  block_of : int array;
  def_use : (int list * int list) array;
  live_out : Bits.t array;
}

val node_of : t -> int -> int
val reg_of : t -> int -> int
val is_virtual_node : int -> bool

(** Registers written and read by one instruction, given the backend's
    last-operand classifier.  Exposed for unit tests. *)
val insn_def_use : Backend.regalloc_info -> Insn.t -> int list * int list

(** [analyze ~ra ~is_jump ~vbase ~nvregs insns] builds basic blocks
    (with loop depths from DFS back edges) and solves backward liveness
    to a fixpoint.  [is_jump] says whether a branch mnemonic is
    unconditional. *)
val analyze :
  ra:Backend.regalloc_info ->
  is_jump:(string -> bool) ->
  vbase:int ->
  nvregs:int ->
  Insn.t array ->
  t

(** Loop depth of the block containing instruction [i]. *)
val depth_at : t -> int -> int
