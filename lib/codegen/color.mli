open Import

(** Chaitin/Briggs graph-coloring register allocation (the [--regalloc
    color] path).  Runs on the virtual-register instruction stream of
    one function, after matching and before the peephole pass.
    Deterministic: colored output is byte-identical under any [-j]. *)

type stats = {
  rounds : int;  (** build/coalesce/color iterations until success *)
  coalesced : int;  (** moves merged by the Briggs conservative test *)
  self_moves_deleted : int;
  spilled_ranges : int;  (** live ranges rewritten through the frame *)
  spill_stores : int;  (** store instructions inserted *)
  spill_reloads : int;  (** reload instructions inserted *)
}

(** [run ~backend ~bank ~frame ~vinfo ~heat ~prov insns] colors the
    virtual registers of [insns] against [bank] (the backend's
    [alloc_regs] minus this function's reserved register variables) and
    returns the rewritten stream, its provenance (empty iff [prov]
    was), and allocation statistics.  [heat] is the optional
    production-id -> firing-count table weighting spill costs.
    Raises [Failure] if coloring does not converge. *)
val run :
  backend:Backend.t ->
  bank:int list ->
  frame:Frame.t ->
  vinfo:Regmgr.vreg_summary ->
  heat:(int * int) list ->
  prov:(int * int list * string) list ->
  Insn.t list ->
  Insn.t list * (int * int list * string) list * stats

(** Parse a [mdgtool heat --json] file into (production id, firing
    count) pairs. *)
val load_heat : string -> (int * int) list

(** Exposed for tests. *)
val parse_heat : string -> (int * int) list
