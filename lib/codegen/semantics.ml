open Import

type t = {
  regs : Regmgr.t;
  frame : Frame.t;
  mutable out_rev : Insn.t list;
  idioms : bool;
  explain : bool;
  mutable line : int;
  mutable prov_last : int;
  mutable prov_pending : int list;
  mutable prov_override : ((int * int list) * string) option;
  mutable prov_rev : (int * int list * string) list;
}

let current_prov t =
  if not t.explain then (0, [])
  else
    let pids =
      match t.prov_pending with
      | [] -> if t.prov_last >= 0 then [ t.prov_last ] else []
      | ps -> List.rev ps
    in
    (t.line, pids)

(* Spill stores and reloads describe a value allocated earlier, not the
   production being reduced right now; the register manager replays the
   value's own provenance (plus a marker) around their emission. *)
let with_mark t ~mark ~prov f =
  if not t.explain then f ()
  else begin
    t.prov_override <- Some (prov, mark);
    Fun.protect ~finally:(fun () -> t.prov_override <- None) f
  end

let emit t i =
  t.out_rev <- i :: t.out_rev;
  if t.explain then begin
    (* instructions emitted between reductions (register-manager
       spills, cluster tails) inherit the production that triggered
       the most recent reduction *)
    let entry =
      match t.prov_override with
      | Some ((line, pids), mark) -> (line, pids, mark)
      | None ->
        let line, pids = current_prov t in
        (line, pids, "")
    in
    t.prov_rev <- entry :: t.prov_rev
  end

let create ?(idioms = true) ?explain ?reserved ?allocatable ?move ?vreg_base
    frame =
  let explain =
    match explain with Some e -> e | None -> !Profile.provenance_enabled
  in
  let rec t =
    lazy
      {
        regs =
          Regmgr.create ?reserved ?allocatable ?move ?vreg_base
            ~prov_of:(fun () -> current_prov (Lazy.force t))
            ~marked:(fun ~mark ~prov f -> with_mark (Lazy.force t) ~mark ~prov f)
            ~emit:(fun i -> emit (Lazy.force t) i)
            frame;
        frame;
        out_rev = [];
        idioms;
        explain;
        line = 0;
        prov_last = -1;
        prov_pending = [];
        prov_override = None;
        prov_rev = [];
      }
  in
  Lazy.force t

let output t = List.rev t.out_rev
let regmgr t = t.regs
let frame t = t.frame
let idioms_enabled t = t.idioms
let set_line t n = t.line <- n

let end_tree t =
  t.prov_pending <- [];
  t.prov_last <- -1

let provenance t = List.rev t.prov_rev

let sfx ty = Dtype.suffix ty

(* -- small helpers ------------------------------------------------------- *)

let lhs_type g (p : Grammar.production) =
  let name = Symtab.nonterm_name g.Grammar.symtab p.lhs in
  match String.rindex_opt name '.' with
  | None -> None
  | Some i ->
    Dtype.of_suffix (String.sub name (i + 1) (String.length name - i - 1))

let has_auto (m : Mode.t) =
  match m with Mode.Mem { auto = Some _; _ } -> true | _ -> false

(* Descriptors whose operands carry autoincrement side effects must not
   be referenced twice (paper section 6.1); materialise them before a
   multi-use expansion. *)
let stable t (d : Desc.t) =
  if has_auto d.Desc.operand then Regmgr.as_register t.regs d else d

let immediate_value (d : Desc.t) = Mode.immediate d.Desc.operand

(* -- idiom-driven cluster emission (paper Fig. 3, section 5.3.2) -------- *)

(* VAX spells "dif = min - sub" as [sub3 sub,min,dif] and division
   likewise, so the two sources swap in the assembly for those
   clusters. *)
let vax_swapped mnemonic =
  String.length mnemonic >= 3
  &&
  match String.sub mnemonic 0 3 with "sub" | "div" -> true | _ -> false

(* Walk the cluster rows applying binding and range idioms, then emit.
   [sources] has one entry fewer than the first row's operand count
   (the destination is separate). *)
(* type suffix of a mnemonic like "addl2" or "movb" *)
let suffix_of mnemonic =
  let n = String.length mnemonic in
  let c = if n > 0 && (mnemonic.[n - 1] = '2' || mnemonic.[n - 1] = '3')
          then mnemonic.[n - 2] else mnemonic.[n - 1] in
  String.make 1 c

let apply_cluster t (cluster : Insn_table.cluster) ~(dst : Mode.t)
    (sources : Mode.t list) =
  let rec go rows sources =
    match (rows, sources) with
    | [], _ -> ()
    | [ row ], _ -> emit_row row sources
    | row :: rest, [ s1; s2 ] when row.Insn_table.nops = 3 ->
      if
        t.idioms && row.Insn_table.binding && Mode.equal s1 dst
        && not (has_auto s1)
      then go rest [ s2 ]
      else if
        t.idioms && row.Insn_table.binding && row.Insn_table.commutes
        && Mode.equal s2 dst
        && not (has_auto s2)
      then go rest [ s1 ]
      else emit_row row sources
    | row :: _, [ s ] -> (
      match row.Insn_table.range with
      | Some key when t.idioms -> (
        (* the range idiom function picks the final instruction *)
        match Insn_table.range_apply key (suffix_of row.Insn_table.print) s with
        | Some replacement -> emit t (Insn.insn replacement [ dst ])
        | None -> emit_row row sources)
      | Some _ | None -> emit_row row sources)
    | row :: _, _ -> emit_row row sources
  and emit_row (row : Insn_table.entry) sources =
    let operands =
      match (row.Insn_table.nops, sources) with
      | 3, [ s1; s2 ] ->
        if vax_swapped row.Insn_table.print then [ s2; s1; dst ]
        else [ s1; s2; dst ]
      | 2, [ s ] -> [ s; dst ]
      | 1, [] -> [ dst ]
      | _, _ ->
        Fmt.failwith "instruction table: row %s expects %d operands"
          row.Insn_table.print row.Insn_table.nops
    in
    emit t (Insn.insn row.Insn_table.print operands)
  in
  go cluster sources

(* -- pseudo-instruction expansion (paper section 5.3.2) ------------------ *)

(* [expand_pseudo] emits the multi-instruction sequences for operators
   the VAX lacks.  It owns the release discipline for its sources. *)
let expand_pseudo t mnemonic ty ~alloc_dst (s1 : Desc.t) (s2 : Desc.t) :
    Mode.t =
  let s = sfx ty in
  match mnemonic with
  | _ when String.length mnemonic >= 4 && String.sub mnemonic 0 4 = "_and" -> (
    (* x & y: bic with a complemented mask *)
    match (immediate_value s1, immediate_value s2) with
    | _, Some k ->
      Regmgr.release t.regs s1;
      Regmgr.release t.regs s2;
      let dst = alloc_dst () in
      emit t
        (Insn.insn ("bic" ^ s ^ "3")
           [ Mode.Imm (Tree.wrap ty (Int64.lognot k)); s1.Desc.operand; dst ]);
      dst
    | Some k, _ ->
      Regmgr.release t.regs s1;
      Regmgr.release t.regs s2;
      let dst = alloc_dst () in
      emit t
        (Insn.insn ("bic" ^ s ^ "3")
           [ Mode.Imm (Tree.wrap ty (Int64.lognot k)); s2.Desc.operand; dst ]);
      dst
    | None, None ->
      let s1 = stable t s1 in
      let rt = Regmgr.alloc t.regs ty in
      emit t (Insn.insn ("mcom" ^ s) [ s2.Desc.operand; rt.Desc.operand ]);
      Regmgr.release t.regs s2;
      Regmgr.release t.regs s1;
      Regmgr.release t.regs rt;
      let dst = alloc_dst () in
      emit t
        (Insn.insn ("bic" ^ s ^ "3")
           [ rt.Desc.operand; s1.Desc.operand; dst ]);
      dst)
  | _ when String.length mnemonic >= 4 && String.sub mnemonic 0 4 = "_mod" ->
    (* signed modulus "requires a register to hold an intermediate
       result": q = s1 / s2; q *= s2; dst = s1 - q *)
    let s1 = stable t s1 in
    let s2 = stable t s2 in
    let rt = Regmgr.alloc t.regs ty in
    emit t
      (Insn.insn ("div" ^ s ^ "3")
         [ s2.Desc.operand; s1.Desc.operand; rt.Desc.operand ]);
    emit t (Insn.insn ("mul" ^ s ^ "2") [ s2.Desc.operand; rt.Desc.operand ]);
    Regmgr.release t.regs s2;
    Regmgr.release t.regs s1;
    Regmgr.release t.regs rt;
    let dst = alloc_dst () in
    emit t
      (Insn.insn ("sub" ^ s ^ "3") [ rt.Desc.operand; s1.Desc.operand; dst ]);
    dst
  | "_udivl" | "_umodl" ->
    (* unsigned division "requires a call to a library function that is
       known not to modify any registers" *)
    let fn = if mnemonic = "_udivl" then "__udivl" else "__umodl" in
    emit t (Insn.insn "pushl" [ s2.Desc.operand ]);
    emit t (Insn.insn "pushl" [ s1.Desc.operand ]);
    emit t (Insn.Call (fn, 2));
    Regmgr.release t.regs s1;
    Regmgr.release t.regs s2;
    let dst = alloc_dst () in
    emit t (Insn.insn "movl" [ Mode.Reg Regconv.r0; dst ]);
    dst
  | "_lshl" ->
    Regmgr.release t.regs s1;
    Regmgr.release t.regs s2;
    let dst = alloc_dst () in
    emit t (Insn.insn "ashl" [ s2.Desc.operand; s1.Desc.operand; dst ]);
    dst
  | "_rshl" -> (
    match immediate_value s2 with
    | Some k ->
      Regmgr.release t.regs s1;
      Regmgr.release t.regs s2;
      let dst = alloc_dst () in
      emit t
        (Insn.insn "ashl" [ Mode.Imm (Int64.neg k); s1.Desc.operand; dst ]);
      dst
    | None ->
      let s1 = stable t s1 in
      let rt = Regmgr.alloc t.regs Dtype.Long in
      emit t (Insn.insn "mnegl" [ s2.Desc.operand; rt.Desc.operand ]);
      Regmgr.release t.regs s2;
      Regmgr.release t.regs s1;
      Regmgr.release t.regs rt;
      let dst = alloc_dst () in
      emit t (Insn.insn "ashl" [ rt.Desc.operand; s1.Desc.operand; dst ]);
      dst)
  | _ -> Fmt.failwith "unknown pseudo-instruction %s" mnemonic

(* -- mode builders (paper phase 2 encapsulation) ------------------------- *)

let compose_mem t ~owned ty operand =
  Regmgr.compose t.regs (Desc.make ~owned ty operand)

let build_mode t g name (p : Grammar.production) (args : Desc.sval array) :
    Desc.sval =
  let ty () =
    match lhs_type g p with
    | Some ty -> ty
    | None -> Fmt.failwith "mode %s on untyped non-terminal" name
  in
  let as_reg i =
    let d = Regmgr.as_register t.regs (Desc.desc args.(i)) in
    match d.Desc.operand with
    | Mode.Reg r -> (r, d)
    | _ -> assert false
  in
  match (name, args) with
  | "imm", [| Node (Tree.Const (cty, n)) |] ->
    Desc.D (Desc.make cty (Mode.Imm n))
  | "fimm", [| Node (Tree.Fconst (fty, f)) |] ->
    Desc.D (Desc.make fty (Mode.Fimm f))
  | "name", [| Node (Tree.Name (nty, s)) |] ->
    Desc.D (Desc.make nty (Mode.mem_sym s))
  | "temp", [| Node (Tree.Temp (tty, i)) |] ->
    Desc.D (Desc.make tty (Frame.temp_mode t.frame i tty))
  | "dreg", [| Node (Tree.Dreg (rty, r)) |] ->
    Desc.D (Desc.make rty (Mode.Reg r))
  | "autoinc", [| Node (Tree.Autoinc (aty, r)) |] ->
    Desc.D (Desc.make aty (Mode.autoinc r))
  | "autodec", [| Node (Tree.Autodec (aty, r)) |] ->
    Desc.D (Desc.make aty (Mode.autodec r))
  | "indir", [| Node (Tree.Indir (ity, _)); D ea |] ->
    Desc.D (compose_mem t ~owned:ea.Desc.owned ity ea.Desc.operand)
  | "deferred", [| D _ |] ->
    let r, d = as_reg 0 in
    Desc.D (compose_mem t ~owned:d.Desc.owned (ty ()) (Mode.mem_deferred r))
  | "absolute", [| Node (Tree.Const (_, n)) |] ->
    Desc.D
      (Desc.make (ty ())
         (Mode.Mem
            { base = None; sym = None; disp = n; index = None; auto = None }))
  | "disp", [| Node _; Node (Tree.Const (_, d)); D _ |] ->
    let r, rd = as_reg 2 in
    Desc.D
      (compose_mem t ~owned:rd.Desc.owned (ty ()) (Mode.mem_disp d r))
  | "symdisp", [| Node _; Node _; Node (Tree.Name (_, s)); D _ |] ->
    let r, rd = as_reg 3 in
    Desc.D
      (compose_mem t ~owned:rd.Desc.owned (ty ()) (Mode.mem_disp ~sym:s 0L r))
  | "index", [| Node _; D _; Node _; Node _; D _ |] ->
    let rb, db = as_reg 1 in
    let rx, dx = as_reg 4 in
    Desc.D
      (compose_mem t
         ~owned:(db.Desc.owned @ dx.Desc.owned)
         (ty ())
         (Mode.with_index (Mode.mem_deferred rb) rx))
  | "index", [| Node _; D _; D _ |] ->
    let rb, db = as_reg 1 in
    let rx, dx = as_reg 2 in
    Desc.D
      (compose_mem t
         ~owned:(db.Desc.owned @ dx.Desc.owned)
         (ty ())
         (Mode.with_index (Mode.mem_deferred rb) rx))
  | "dispindex", [| Node _; Node (Tree.Const (_, d)); Node _; D _; Node _; Node _; D _ |]
    ->
    let rb, db = as_reg 3 in
    let rx, dx = as_reg 6 in
    Desc.D
      (compose_mem t
         ~owned:(db.Desc.owned @ dx.Desc.owned)
         (ty ())
         (Mode.with_index (Mode.mem_disp d rb) rx))
  | "dispindex", [| Node _; Node (Tree.Const (_, d)); Node _; D _; D _ |] ->
    let rb, db = as_reg 3 in
    let rx, dx = as_reg 4 in
    Desc.D
      (compose_mem t
         ~owned:(db.Desc.owned @ dx.Desc.owned)
         (ty ())
         (Mode.with_index (Mode.mem_disp d rb) rx))
  | "symindex", [| Node _; Node _; Node (Tree.Name (_, s)); Node _; Node _; D _ |]
    ->
    let rx, dx = as_reg 5 in
    Desc.D
      (compose_mem t ~owned:dx.Desc.owned (ty ())
         (Mode.with_index (Mode.mem_sym s) rx))
  | _, _ ->
    Fmt.failwith "mode builder %s: unexpected production %s <- ... (%d args)"
      name
      (Symtab.nonterm_name g.Grammar.symtab p.lhs)
      (Array.length args)

(* -- branches ------------------------------------------------------------ *)

let branch_of_node (node : Tree.t) =
  match node with
  | Tree.Cbranch (rel, sg, ty, _, _, label) -> (rel, sg, ty, label)
  | _ -> invalid_arg "branch pattern without a Cbranch node"

let jcc rel sg ty =
  if Dtype.is_float ty then "j" ^ Op.relop_vax rel
  else
    match sg with
    | Dtype.Signed -> "j" ^ Op.relop_vax rel
    | Dtype.Unsigned -> "j" ^ Op.relop_vax_unsigned rel

(* -- the Emit dispatcher -------------------------------------------------- *)

let parse_key key =
  match String.rindex_opt key '.' with
  | None -> (key, None)
  | Some i ->
    ( String.sub key 0 i,
      Some (String.sub key (i + 1) (String.length key - i - 1)) )

let cluster_for_op op suffix =
  let base =
    match Op.unreverse op with
    | Op.Plus -> "add"
    | Op.Minus -> "sub"
    | Op.Mul -> "mul"
    | Op.Div -> "div"
    | Op.Mod -> "mod"
    | Op.And -> "and"
    | Op.Or -> "or"
    | Op.Xor -> "xor"
    | Op.Lsh -> "lsh"
    | Op.Rsh -> "rsh"
    | Op.Udiv -> "udiv"
    | Op.Umod -> "umod"
    | _ -> assert false
  in
  base ^ "." ^ suffix

(* Emit a binary operation.  [dst] is [`Alloc] for register-destination
   productions or [`Into of Desc.t] for memory destinations. *)
let emit_binop t key op ty (a : Desc.t) (b : Desc.t) dst : Desc.sval =
  (* reverse operators carry their operands in evaluation order: the
     first evaluated child is the original right operand *)
  let s1, s2 = if Op.is_reverse op then (b, a) else (a, b) in
  let cluster = Insn_table.find_exn key in
  let first_row = List.hd cluster in
  let is_pseudo =
    String.length first_row.Insn_table.print > 0
    && first_row.Insn_table.print.[0] = '_'
  in
  if is_pseudo then begin
    match dst with
    | `Alloc ->
      let result = ref None in
      let alloc_dst () =
        let d = Regmgr.alloc t.regs ty in
        result := Some d;
        d.Desc.operand
      in
      ignore (expand_pseudo t first_row.Insn_table.print ty ~alloc_dst s1 s2);
      Desc.D (Option.get !result)
    | `Into d ->
      let alloc_dst () = d.Desc.operand in
      ignore (expand_pseudo t first_row.Insn_table.print ty ~alloc_dst s1 s2);
      Regmgr.release t.regs d;
      Desc.Done
  end
  else begin
    match dst with
    | `Alloc ->
      Regmgr.release t.regs s1;
      Regmgr.release t.regs s2;
      let d = Regmgr.alloc t.regs ty in
      apply_cluster t cluster ~dst:d.Desc.operand
        [ s1.Desc.operand; s2.Desc.operand ];
      Desc.D d
    | `Into d ->
      apply_cluster t cluster ~dst:d.Desc.operand
        [ s1.Desc.operand; s2.Desc.operand ];
      Regmgr.release t.regs s1;
      Regmgr.release t.regs s2;
      Regmgr.release t.regs d;
      Desc.Done
  end

let binop_of_node (node : Tree.t) =
  match node with
  | Tree.Binop (op, _, _, _) -> op
  | _ -> invalid_arg "operator pattern without a Binop node"

let emit_insn t g key (p : Grammar.production) (args : Desc.sval array) :
    Desc.sval =
  let base, suffix = parse_key key in
  let ty_of_suffix () =
    match suffix with
    | Some s -> (
      match Dtype.of_suffix s with
      | Some ty -> ty
      | None -> Fmt.failwith "emit key %s: bad type suffix" key)
    | None -> Fmt.failwith "emit key %s: missing type suffix" key
  in
  match (base, args) with
  (* ---- bridges: multi-instruction address repairs (section 6.2.2) ---- *)
  | "bridge_ixmul", [| Node _; D base_d; Node _; D a; D b |] ->
    let a = stable t a and b = stable t b in
    let rbase = Regmgr.as_register t.regs base_d in
    let rt = Regmgr.alloc t.regs Dtype.Long in
    emit t
      (Insn.insn "mull3" [ a.Desc.operand; b.Desc.operand; rt.Desc.operand ]);
    Regmgr.release t.regs a;
    Regmgr.release t.regs b;
    emit t (Insn.insn "addl2" [ rbase.Desc.operand; rt.Desc.operand ]);
    Regmgr.release t.regs rbase;
    Desc.D
      (compose_mem t ~owned:rt.Desc.owned
         (Option.value (lhs_type g p) ~default:Dtype.Long)
         (Mode.mem_deferred
            (match rt.Desc.operand with Mode.Reg r -> r | _ -> assert false)))
  | "bridge_dxmul", [| Node _; Node (Tree.Const (_, d)); Node _; D base_d; Node _; D a; D b |]
    ->
    let a = stable t a and b = stable t b in
    let rbase = Regmgr.as_register t.regs base_d in
    let rt = Regmgr.alloc t.regs Dtype.Long in
    emit t
      (Insn.insn "mull3" [ a.Desc.operand; b.Desc.operand; rt.Desc.operand ]);
    Regmgr.release t.regs a;
    Regmgr.release t.regs b;
    emit t (Insn.insn "addl2" [ rbase.Desc.operand; rt.Desc.operand ]);
    Regmgr.release t.regs rbase;
    let r = match rt.Desc.operand with Mode.Reg r -> r | _ -> assert false in
    Desc.D
      (compose_mem t ~owned:rt.Desc.owned
         (Option.value (lhs_type g p) ~default:Dtype.Long)
         (Mode.mem_disp d r))
  | "bridge_symmul", [| Node _; Node _; Node (Tree.Name (_, s)); Node _; D a; D b |]
    ->
    let a = stable t a and b = stable t b in
    let rt = Regmgr.alloc t.regs Dtype.Long in
    emit t
      (Insn.insn "mull3" [ a.Desc.operand; b.Desc.operand; rt.Desc.operand ]);
    Regmgr.release t.regs a;
    Regmgr.release t.regs b;
    let r = match rt.Desc.operand with Mode.Reg r -> r | _ -> assert false in
    Desc.D
      (compose_mem t ~owned:rt.Desc.owned
         (Option.value (lhs_type g p) ~default:Dtype.Long)
         (Mode.mem_disp ~sym:s 0L r))
  (* ---- branches (section 6.1) ---- *)
  | "cmpbr", [| Node cb; Node _; D a; D b; Node _ |] ->
    let rel, sg, bty, label = branch_of_node cb in
    let cluster = Insn_table.find_exn key in
    (match cluster with
    | [ cmp_row; tst_row ] ->
      let replaced =
        if not t.idioms then None
        else
          match cmp_row.Insn_table.range with
          | Some k ->
            Insn_table.range_apply k (suffix_of cmp_row.Insn_table.print)
              b.Desc.operand
          | None -> None
      in
      (match replaced with
      | Some tst ->
        ignore tst_row;
        emit t (Insn.insn tst [ a.Desc.operand ])
      | None ->
        emit t
          (Insn.insn cmp_row.Insn_table.print
             [ a.Desc.operand; b.Desc.operand ]))
    | _ -> assert false);
    Regmgr.release t.regs a;
    Regmgr.release t.regs b;
    emit t (Insn.Branch (jcc rel sg bty, label));
    Desc.Done
  | "tstbr", [| Node cb; Node _; D a; Node _; Node _ |] ->
    let rel, sg, bty, label = branch_of_node cb in
    emit t (Insn.insn ("tst" ^ sfx (ty_of_suffix ())) [ a.Desc.operand ]);
    Regmgr.release t.regs a;
    emit t (Insn.Branch (jcc rel sg bty, label));
    Desc.Done
  | "tstbr_reg", [| Node cb; Node _; Node (Tree.Dreg (_, r)); Node _; Node _ |]
    ->
    let rel, sg, bty, label = branch_of_node cb in
    emit t (Insn.insn ("tst" ^ sfx (ty_of_suffix ())) [ Mode.Reg r ]);
    emit t (Insn.Branch (jcc rel sg bty, label));
    Desc.Done
  | "ccbr", [| Node cb; Node _; D a; Node _; Node _ |] ->
    (* the instruction that computed [a] into a register has just been
       emitted and set the condition codes: no test needed *)
    let rel, sg, bty, label = branch_of_node cb in
    Regmgr.release t.regs a;
    emit t (Insn.Branch (jcc rel sg bty, label));
    Desc.Done
  (* ---- pushes and address-of ---- *)
  | "push", [| Node _; D v |] -> (
    match ty_of_suffix () with
    | Dtype.Long ->
      emit t (Insn.insn "pushl" [ v.Desc.operand ]);
      Regmgr.release t.regs v;
      Desc.Done
    | Dtype.Dbl ->
      emit t (Insn.insn "movd" [ v.Desc.operand; Mode.autodec Regconv.sp ]);
      Regmgr.release t.regs v;
      Desc.Done
    | _ -> Fmt.failwith "push of unexpected type")
  | "mova", [| Node _; Node leaf |] ->
    let operand =
      match leaf with
      | Tree.Name (_, s) -> Mode.mem_sym s
      | Tree.Temp (tty, i) -> Frame.temp_mode t.frame i tty
      | _ -> Fmt.failwith "mova of unexpected leaf"
    in
    let d = Regmgr.alloc t.regs Dtype.Long in
    emit t
      (Insn.insn ("mova" ^ sfx (ty_of_suffix ())) [ operand; d.Desc.operand ]);
    Desc.D d
  | "mova", [| Node _; Node _; D ea |] ->
    Regmgr.release t.regs ea;
    let d = Regmgr.alloc t.regs Dtype.Long in
    emit t
      (Insn.insn ("mova" ^ sfx (ty_of_suffix ()))
         [ ea.Desc.operand; d.Desc.operand ]);
    Desc.D d
  (* ---- moves (including conversions) ---- *)
  | "mov", [| D src |] ->
    (* load into a register *)
    Regmgr.release t.regs src;
    let d = Regmgr.alloc t.regs (ty_of_suffix ()) in
    apply_cluster t (Insn_table.find_exn key) ~dst:d.Desc.operand
      [ src.Desc.operand ];
    Desc.D d
  | "cvt", [| Node _; D src |] ->
    (* reg.t <- Cvt rval *)
    Regmgr.release t.regs src;
    let to_ty =
      match suffix with
      | Some s when String.length s = 2 ->
        Option.get (Dtype.of_suffix (String.make 1 s.[1]))
      | _ -> Fmt.failwith "cvt key %s" key
    in
    let d = Regmgr.alloc t.regs to_ty in
    apply_cluster t (Insn_table.find_exn key) ~dst:d.Desc.operand
      [ src.Desc.operand ];
    Desc.D d
  | "mov", [| Node _; D dst; D src |] ->
    (* stmt <- Assign lval rval *)
    apply_cluster t (Insn_table.find_exn key) ~dst:dst.Desc.operand
      [ src.Desc.operand ];
    Regmgr.release t.regs src;
    Regmgr.release t.regs dst;
    Desc.Done
  | "mov_r", [| Node _; D src; D dst |] ->
    apply_cluster t (Insn_table.find_exn ("mov." ^ Option.get suffix))
      ~dst:dst.Desc.operand [ src.Desc.operand ];
    Regmgr.release t.regs src;
    Regmgr.release t.regs dst;
    Desc.Done
  | "cvt", [| Node _; D dst; Node _; D src |] ->
    (* stmt <- Assign lval Cvt rval *)
    apply_cluster t (Insn_table.find_exn key) ~dst:dst.Desc.operand
      [ src.Desc.operand ];
    Regmgr.release t.regs src;
    Regmgr.release t.regs dst;
    Desc.Done
  (* ---- unary operators ---- *)
  | ("neg" | "com"), [| Node _; D src |] ->
    Regmgr.release t.regs src;
    let d = Regmgr.alloc t.regs (ty_of_suffix ()) in
    apply_cluster t (Insn_table.find_exn key) ~dst:d.Desc.operand
      [ src.Desc.operand ];
    Desc.D d
  | ("neg" | "com"), [| Node _; D dst; Node _; D src |] ->
    apply_cluster t (Insn_table.find_exn key) ~dst:dst.Desc.operand
      [ src.Desc.operand ];
    Regmgr.release t.regs src;
    Regmgr.release t.regs dst;
    Desc.Done
  (* ---- binary operators ---- *)
  | _, [| Node opnode; D a; D b |] ->
    (* reg.t <- OP rval rval *)
    let op = binop_of_node opnode in
    let ty = ty_of_suffix () in
    let key =
      if base = "class" then cluster_for_op op (Option.get suffix) else key
    in
    emit_binop t key op ty a b `Alloc
  | _, [| Node _; D dst; Node opnode; D a; D b |] ->
    (* stmt <- Assign lval OP rval rval *)
    let op = binop_of_node opnode in
    let ty = ty_of_suffix () in
    let key =
      if base = "class" then cluster_for_op op (Option.get suffix) else key
    in
    emit_binop t key op ty a b (`Into dst)
  | _, [| Node _; Node opnode; D a; D b; D dst |] ->
    (* stmt <- Rassign OP rval rval lval *)
    let op = binop_of_node opnode in
    let ty = ty_of_suffix () in
    emit_binop t key op ty a b (`Into dst)
  | _, _ ->
    Fmt.failwith "emit %s: unexpected production shape %s" key
      (Fmt.str "%a" (Grammar.pp_production g) p)

(* -- matcher callbacks ---------------------------------------------------- *)

let action_rank = function
  | Action.Mode _ -> 0
  | Action.Chain -> 1
  | Action.Emit _ -> 2
  | Action.Start -> 3

(* The callback skeleton is target-independent: shift wraps the node,
   reduce dispatches on the production's action and keeps the
   provenance bookkeeping, choose ranks equal-length candidates.  Only
   the [mode] and [emit] dispatchers differ per target. *)
let make_callbacks t ~mode ~emit:emit_d g : Desc.sval Matcher.callbacks =
  {
    Matcher.on_shift = (fun tok -> Desc.Node tok.Termname.node);
    on_reduce =
      (fun p args ->
        if t.explain then begin
          t.prov_pending <- p.Grammar.id :: t.prov_pending;
          t.prov_last <- p.Grammar.id
        end;
        let v =
          match p.Grammar.action with
          | Action.Chain | Action.Start -> args.(0)
          | Action.Mode name -> mode t g name p args
          | Action.Emit key -> emit_d t g key p args
        in
        (if t.explain then
           match p.Grammar.action with
           | Action.Emit _ -> t.prov_pending <- []
           | Action.Mode _ | Action.Chain | Action.Start -> ());
        v);
    choose =
      (fun candidates _argss ->
        (* semantic choice among equal-length reductions: prefer
           encapsulation over glue over emission, then grammar order —
           this never re-enters the reg/rval chain cycle *)
        let best = ref 0 in
        Array.iteri
          (fun i p ->
            if
              action_rank p.Grammar.action
              < action_rank candidates.(!best).Grammar.action
            then best := i)
          candidates;
        !best);
  }

let callbacks t g = make_callbacks t ~mode:build_mode ~emit:emit_insn g
