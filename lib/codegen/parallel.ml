(* A Domain-based worker pool for batch compilation.

   The packed tables are immutable int arrays shared read-only across
   domains; Semantics/Regmgr/Frame state is created per function inside
   the worker; Gg_profile shards its counters per domain — so functions
   compile embarrassingly parallel.  Results are stored by input index,
   which makes the output order (and hence the emitted assembly)
   independent of scheduling: [-j 8] is byte-identical to [-j 1]. *)

let available () = Domain.recommended_domain_count ()

(* Spawned worker domains (map's and pool's alike) are counted in and
   out, so tests — and the compile server's drain path — can assert
   that shutdown left nothing running. *)
let live = Atomic.make 0

let counted f () =
  Atomic.incr live;
  Fun.protect ~finally:(fun () -> Atomic.decr live) f

let live_domains () = Atomic.get live

type 'b cell = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ~jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then List.map f xs
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    (* workers pull indices off a shared counter (dynamic load
       balancing: function sizes are very uneven) and never raise —
       exceptions travel in the result cell so that the first failure
       in *input* order is re-raised, deterministically *)
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <-
          (try Done (f items.(i))
           with e -> Failed (e, Printexc.get_raw_backtrace ()));
        worker ()
      end
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn (counted worker)) in
    (* the calling domain is the pool's first worker *)
    worker ();
    List.iter Domain.join domains;
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      results;
    List.init n (fun i ->
        match results.(i) with
        | Done r -> r
        | Pending | Failed _ -> assert false)
  end

(* -- persistent pools ----------------------------------------------------- *)

(* [map] tears its domains down per call; a serving process wants the
   opposite: domains that outlive any one request and block on a shared
   queue.  The pool is deliberately dumb — each domain just runs the
   given body to completion; the body owns its work-source (typically a
   Squeue) and its exception handling.  A body that raises terminates
   only its own domain; [join_pool] re-raises the first such exception
   (in worker order) after every domain has been joined, mirroring
   [map]'s earliest-failure contract. *)

type pool = { members : unit Domain.t list }

let spawn_pool ~domains body =
  let domains = max 1 domains in
  { members = List.init domains (fun i -> Domain.spawn (counted (fun () -> body i))) }

let join_pool { members } =
  let failure =
    List.fold_left
      (fun acc d ->
        match Domain.join d with
        | () -> acc
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          if acc = None then Some (e, bt) else acc)
      None members
  in
  match failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()
