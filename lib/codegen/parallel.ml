(* A Domain-based worker pool for batch compilation.

   The packed tables are immutable int arrays shared read-only across
   domains; Semantics/Regmgr/Frame state is created per function inside
   the worker; Gg_profile shards its counters per domain — so functions
   compile embarrassingly parallel.  Results are stored by input index,
   which makes the output order (and hence the emitted assembly)
   independent of scheduling: [-j 8] is byte-identical to [-j 1]. *)

let available () = Domain.recommended_domain_count ()

type 'b cell = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ~jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then List.map f xs
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    (* workers pull indices off a shared counter (dynamic load
       balancing: function sizes are very uneven) and never raise —
       exceptions travel in the result cell so that the first failure
       in *input* order is re-raised, deterministically *)
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <-
          (try Done (f items.(i))
           with e -> Failed (e, Printexc.get_raw_backtrace ()));
        worker ()
      end
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* the calling domain is the pool's first worker *)
    worker ();
    List.iter Domain.join domains;
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      results;
    List.init n (fun i ->
        match results.(i) with
        | Done r -> r
        | Pending | Failed _ -> assert false)
  end
