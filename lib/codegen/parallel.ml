(* A Domain-based worker pool for batch compilation.

   The packed tables are immutable int arrays shared read-only across
   domains; Semantics/Regmgr/Frame state is created per function inside
   the worker; Gg_profile shards its counters per domain — so functions
   compile embarrassingly parallel.  Results are stored by input index,
   which makes the output order (and hence the emitted assembly)
   independent of scheduling: [-j 8] is byte-identical to [-j 1].

   Two lessons are baked into [map], both learned from a measured
   regression (-j2 ran at 0.61x of -j1):

   - [Domain.spawn] is expensive — milliseconds, comparable to an
     entire corpus compile — so spawning per batch, as the first
     version did, loses more than parallelism gains.  Workers are
     spawned once, parked on a condition variable between batches, and
     reused by every subsequent [map] in the process.  Parking also
     bounds the profiler shard registry: ephemeral domains each
     registered a fresh shard, so a long-lived server leaked one shard
     set per parallel batch.

   - Oversubscription is never profitable: a domain per requested job
     on a box with fewer cores just adds stop-the-world GC
     synchronisation and scheduler churn.  [map] clamps the effective
     domain count to [available ()], so [-j 8] on a 1-core container
     degrades to the sequential loop instead of running 7x slower.
     Tests and benchmarks can force real domains past the clamp with
     [~oversubscribe:true]. *)

let available () = Domain.recommended_domain_count ()

(* Domains currently executing work — spawn_pool members for their
   lifetime, parked map workers only while participating in a batch —
   so tests and the compile server's drain path can assert that
   shutdown (or a completed map) left nothing running. *)
let live = Atomic.make 0

let counted f () =
  Atomic.incr live;
  Fun.protect ~finally:(fun () -> Atomic.decr live) f

let live_domains () = Atomic.get live

type 'b cell = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

(* -- the shared map pool --------------------------------------------------- *)

(* One process-wide pool, guarded by [pool_mutex].  A batch is
   installed by bumping [gen]; parked workers wake on [work], the first
   [target] of them participate, and the submitter waits on [donec]
   until [active] returns to zero.  Only one batch runs at a time
   ([submit_lock]); a concurrent or nested [map] falls back to the
   inline sequential loop, which preserves every observable contract. *)

let pool_mutex = Mutex.create ()
let work = Condition.create ()
let donec = Condition.create ()
let members : unit Domain.t list ref = ref []
let size = ref 0
let gen = ref 0
let stopping = ref false
let job : (unit -> unit) option ref = ref None
let target = ref 0
let active = ref 0
let submit_lock = Mutex.create ()

(* more parked domains than this never helps; [max 8] keeps the pool
   exercisable (tests, oversubscribed benchmarks) on small boxes *)
let pool_cap () = max (available ()) 8

let rec worker_loop i last =
  Mutex.lock pool_mutex;
  while !gen = last && not !stopping do
    Condition.wait work pool_mutex
  done;
  if !stopping then Mutex.unlock pool_mutex
  else begin
    let g = !gen in
    let participate = i < !target in
    let pull = !job in
    Mutex.unlock pool_mutex;
    if participate then begin
      Atomic.incr live;
      (match pull with Some f -> f () | None -> ());
      (* decrement [live] before [active]: the submitter observes
         [active = 0] under the mutex, which orders it after this
         domain's decrement — live_domains() is exactly 0 when map
         returns *)
      Atomic.decr live;
      Mutex.lock pool_mutex;
      decr active;
      if !active = 0 then Condition.broadcast donec;
      Mutex.unlock pool_mutex
    end;
    worker_loop i g
  end

(* under [pool_mutex] *)
let ensure_spawned n =
  if !size < n then begin
    let g0 = !gen in
    for i = !size to n - 1 do
      members := Domain.spawn (fun () -> worker_loop i g0) :: !members
    done;
    size := n
  end

(* caller holds [submit_lock]; [workers >= 1] *)
let run_batch ~workers pull =
  Mutex.lock pool_mutex;
  ensure_spawned workers;
  job := Some pull;
  target := workers;
  active := workers;
  incr gen;
  Condition.broadcast work;
  Mutex.unlock pool_mutex;
  (* the calling domain is the batch's extra worker *)
  pull ();
  Mutex.lock pool_mutex;
  while !active > 0 do
    Condition.wait donec pool_mutex
  done;
  job := None;
  Mutex.unlock pool_mutex

let shutdown () =
  (* waits for an in-flight batch, then joins every parked worker *)
  Mutex.lock submit_lock;
  Mutex.lock pool_mutex;
  stopping := true;
  Condition.broadcast work;
  let ms = !members in
  members := [];
  size := 0;
  Mutex.unlock pool_mutex;
  List.iter Domain.join ms;
  Mutex.lock pool_mutex;
  stopping := false;
  Mutex.unlock pool_mutex;
  Mutex.unlock submit_lock

let () = at_exit shutdown

let map ?(oversubscribe = false) ~jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let limit = if oversubscribe then pool_cap () + 1 else available () in
  let jobs = max 1 (min jobs (min n limit)) in
  if jobs = 1 then List.map f xs
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    (* workers pull indices off a shared counter (dynamic load
       balancing: function sizes are very uneven) and never raise —
       exceptions travel in the result cell so that the first failure
       in *input* order is re-raised, deterministically *)
    let pull () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            (try Done (f items.(i))
             with e -> Failed (e, Printexc.get_raw_backtrace ()));
          go ()
        end
      in
      go ()
    in
    if Mutex.try_lock submit_lock then begin
      Fun.protect
        ~finally:(fun () -> Mutex.unlock submit_lock)
        (fun () -> run_batch ~workers:(jobs - 1) pull);
      Array.iter
        (function
          | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
          | Pending | Done _ -> ())
        results;
      List.init n (fun i ->
          match results.(i) with
          | Done r -> r
          | Pending | Failed _ -> assert false)
    end
    else
      (* the pool is serving another batch (or this is a nested map):
         run inline — sequential evaluation trivially preserves order
         and raises the earliest failure *)
      List.map f xs
  end

(* -- persistent pools ----------------------------------------------------- *)

(* [map]'s pool parks between batches; a serving process wants domains
   that block on its own shared queue instead.  This pool is
   deliberately dumb — each domain just runs the given body to
   completion; the body owns its work-source (typically a Squeue) and
   its exception handling.  A body that raises terminates only its own
   domain; [join_pool] re-raises the first such exception (in worker
   order) after every domain has been joined, mirroring [map]'s
   earliest-failure contract. *)

type pool = { pool_members : unit Domain.t list }

let spawn_pool ~domains body =
  let domains = max 1 domains in
  {
    pool_members =
      List.init domains (fun i -> Domain.spawn (counted (fun () -> body i)));
  }

let join_pool { pool_members } =
  let failure =
    List.fold_left
      (fun acc d ->
        match Domain.join d with
        | () -> acc
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          if acc = None then Some (e, bt) else acc)
      None pool_members
  in
  match failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()
