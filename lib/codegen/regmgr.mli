open Import

(** The register manager (paper section 5.3.3).

    "Extremely simple and unsophisticated" by design: allocatable
    registers (r6-r11 under PCC conventions) are assigned and freed with
    a stack discipline.  When a register is requested as a destination,
    the manager first reclaims registers dying with the instruction's
    source operands.  When no register is free, the register at the
    bottom of the stack is spilled to a compiler temporary (a "virtual
    register") and the descriptor that owned it is redirected there.

    A second, virtual mode exists for the graph-coloring allocator:
    created with [vreg_base], the manager hands out fresh virtual
    registers (numbered from the base, never recycled) instead of
    cycling the physical bank, and never spills.  The emitted stream
    then references virtual registers that {!Color} later assigns to
    the bank. *)

type t

(** Width class of a virtual register: 8-byte values occupy a
    [Vpair_base]/[Vpair_second] pair (the stream only ever references
    the base). *)
type vreg_kind = Vsingle | Vpair_base | Vpair_second

(** What the colorer needs to know about the virtual registers a
    function used: numbering base, per-register type, pair structure,
    and the provenance (source line, production ids) captured when each
    was allocated. *)
type vreg_summary = {
  vs_base : int;
  vs_types : Dtype.t array;
  vs_kinds : vreg_kind array;
  vs_prov : (int * int list) array;
}

(** [reserved] registers (register variables) are excluded from the
    allocatable pool for this function.  [allocatable] is the target's
    register bank in allocation order (default {!Regconv.allocatable},
    the PCC/VAX bank).  [move] renders a value transfer between two
    operands (spill store, reload, materialising an operand into a
    register); the default is the VAX mover, a single
    [mov<sfx> src,dst].  A load/store target supplies a mover that
    dispatches on the operand kinds instead.

    [vreg_base] switches the manager into virtual mode (see above).
    [prov_of] supplies the current provenance when a register is
    allocated; [marked] wraps the emission of spill stores and reloads
    so the caller can tag them (defaults run the thunk unadorned). *)
val create :
  ?reserved:int list ->
  ?allocatable:int list ->
  ?move:(Dtype.t -> src:Mode.t -> dst:Mode.t -> Insn.t list) ->
  ?vreg_base:int ->
  ?prov_of:(unit -> int * int list) ->
  ?marked:(mark:string -> prov:(int * int list) -> (unit -> unit) -> unit) ->
  emit:(Insn.t -> unit) ->
  Frame.t ->
  t

(** The VAX mover (the [?move] default): one [mov<sfx> src,dst]. *)
val default_move : Dtype.t -> src:Mode.t -> dst:Mode.t -> Insn.t list

(** Consume a descriptor: its owned registers become reclaimable. *)
val release : t -> Desc.t -> unit

(** Allocate a register for a value of the given type and return its
    descriptor.  May emit a spill. *)
val alloc : t -> Dtype.t -> Desc.t

(** Ensure the descriptor's operand is a plain register (reloading a
    spilled virtual register, or loading a memory/immediate operand).
    Used where the machine requires a register, e.g. address bases and
    index registers. *)
val as_register : t -> Desc.t -> Desc.t

(** Transfer ownership of the registers inside a composite (memory)
    operand to a new descriptor and pin them: pinned registers are never
    chosen for spilling because the operand that embeds them could not
    be repaired. *)
val compose : t -> Desc.t -> Desc.t

(** Pin / unpin the registers a descriptor owns.  A load/store target
    pins the first source of a multi-source instruction while the
    remaining sources are materialised: reloading one source must not
    spill another, because a memory operand cannot take its place in
    the instruction.  (The VAX emitter never needs this — its ALU
    accepts memory operands, so a spilled source is still valid.) *)
val pin : t -> Desc.t -> unit

val unpin : t -> Desc.t -> unit

(** Number of registers currently in use (diagnostics). *)
val in_use : t -> int

(** Spill stores emitted so far (stack mode; always 0 in virtual
    mode). *)
val spills : t -> int

(** Reloads of previously spilled values emitted so far. *)
val reloads : t -> int

(** Virtual-register bookkeeping, [None] unless created with
    [vreg_base]. *)
val vreg_summary : t -> vreg_summary option

(** Raise [Failure] if any allocatable register is still in use — the
    between-statements invariant. *)
val assert_clean : t -> unit
