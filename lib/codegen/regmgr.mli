open Import

(** The register manager (paper section 5.3.3).

    "Extremely simple and unsophisticated" by design: allocatable
    registers (r6-r11 under PCC conventions) are assigned and freed with
    a stack discipline.  When a register is requested as a destination,
    the manager first reclaims registers dying with the instruction's
    source operands.  When no register is free, the register at the
    bottom of the stack is spilled to a compiler temporary (a "virtual
    register") and the descriptor that owned it is redirected there. *)

type t

(** [reserved] registers (register variables) are excluded from the
    allocatable pool for this function.  [allocatable] is the target's
    register bank in allocation order (default {!Regconv.allocatable},
    the PCC/VAX bank).  [move] renders a value transfer between two
    operands (spill store, reload, materialising an operand into a
    register); the default is the VAX mover, a single
    [mov<sfx> src,dst].  A load/store target supplies a mover that
    dispatches on the operand kinds instead. *)
val create :
  ?reserved:int list ->
  ?allocatable:int list ->
  ?move:(Dtype.t -> src:Mode.t -> dst:Mode.t -> Insn.t list) ->
  emit:(Insn.t -> unit) ->
  Frame.t ->
  t

(** Consume a descriptor: its owned registers become reclaimable. *)
val release : t -> Desc.t -> unit

(** Allocate a register for a value of the given type and return its
    descriptor.  May emit a spill. *)
val alloc : t -> Dtype.t -> Desc.t

(** Ensure the descriptor's operand is a plain register (reloading a
    spilled virtual register, or loading a memory/immediate operand).
    Used where the machine requires a register, e.g. address bases and
    index registers. *)
val as_register : t -> Desc.t -> Desc.t

(** Transfer ownership of the registers inside a composite (memory)
    operand to a new descriptor and pin them: pinned registers are never
    chosen for spilling because the operand that embeds them could not
    be repaired. *)
val compose : t -> Desc.t -> Desc.t

(** Pin / unpin the registers a descriptor owns.  A load/store target
    pins the first source of a multi-source instruction while the
    remaining sources are materialised: reloading one source must not
    spill another, because a memory operand cannot take its place in
    the instruction.  (The VAX emitter never needs this — its ALU
    accepts memory operands, so a spilled source is still valid.) *)
val pin : t -> Desc.t -> unit

val unpin : t -> Desc.t -> unit

(** Number of registers currently in use (diagnostics). *)
val in_use : t -> int

(** Raise [Failure] if any allocatable register is still in use — the
    between-statements invariant. *)
val assert_clean : t -> unit
