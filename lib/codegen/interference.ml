open Import

(* The interference graph over virtual registers, move-aware, with
   spill costs weighted by use count × loop depth × production heat.

   Nodes are virtual-register indices (0..nv-1, i.e. the liveness node
   minus {!Liveness.nphys}).  Physical registers never become nodes: a
   conflict between a virtual register and a machine register is
   recorded as a forbidden-color bit instead. *)

type t = {
  nv : int;
  adj : int list array;  (* distinct neighbours, most recent first *)
  matrix : Bytes.t;  (* nv×nv bit matrix backing [adj] *)
  forbid : int array;  (* bitmask of conflicting physical registers *)
  moves : (int * int * int) list;
      (* coalescable reg-to-reg moves in stream order:
         (instruction index, source, destination) as liveness node
         indices — an end below Liveness.nphys is a physical register
         (a register variable, or r0/r1 holding a call result) *)
  weight : float array;  (* spill cost per node *)
  occurrences : int array;  (* def/use sites per node *)
}

let interferes t a b =
  a <> b
  &&
  let i = (a * t.nv) + b in
  Char.code (Bytes.get t.matrix (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit t a b =
  let i = (a * t.nv) + b in
  Bytes.set t.matrix (i lsr 3)
    (Char.chr (Char.code (Bytes.get t.matrix (i lsr 3)) lor (1 lsl (i land 7))))

let add_edge t a b =
  if a <> b && not (interferes t a b) then begin
    set_bit t a b;
    set_bit t b a;
    t.adj.(a) <- b :: t.adj.(a);
    t.adj.(b) <- a :: t.adj.(b)
  end

let rec pow10 n = if n <= 0 then 1.0 else 10.0 *. pow10 (n - 1)

(* [prov] is the per-instruction provenance (possibly shorter than the
   stream, possibly empty); [heat] is the production-id -> firing-count
   table from [mdgtool heat --json].  An instruction's heat factor is
   its productions' total count normalised by the hottest production,
   so heat scales costs by at most 2x and never overrides loop depth. *)
let heat_factor ~heat ~prov =
  match heat with
  | [] -> fun _ -> 0.0
  | heat ->
    let counts = Hashtbl.create 64 in
    List.iter (fun (pid, c) -> Hashtbl.replace counts pid c) heat;
    let hottest =
      float_of_int (List.fold_left (fun a (_, c) -> max a c) 1 heat)
    in
    fun i ->
      if i >= Array.length prov then 0.0
      else
        let _, pids, _ = prov.(i) in
        let total =
          List.fold_left
            (fun a pid ->
              a + Option.value (Hashtbl.find_opt counts pid) ~default:0)
            0 pids
        in
        min 1.0 (float_of_int total /. hottest)

let build ~(move_mnemonics : string list) ~(heat : (int * int) list)
    ~(prov : (int * int list * string) array) (lv : Liveness.t) =
  let nv = lv.Liveness.nnodes - Liveness.nphys in
  let t =
    {
      nv;
      adj = Array.make nv [];
      matrix = Bytes.make (((nv * nv) + 7) / 8) '\000';
      forbid = Array.make nv 0;
      moves = [];
      weight = Array.make nv 0.0;
      occurrences = Array.make nv 0;
    }
  in
  let vnode r = Liveness.node_of lv r - Liveness.nphys in
  let conflict a b =
    (* liveness node indices: either side may be physical *)
    match (Liveness.is_virtual_node a, Liveness.is_virtual_node b) with
    | true, true -> add_edge t (a - Liveness.nphys) (b - Liveness.nphys)
    | true, false ->
      t.forbid.(a - Liveness.nphys) <- t.forbid.(a - Liveness.nphys) lor (1 lsl b)
    | false, true ->
      t.forbid.(b - Liveness.nphys) <- t.forbid.(b - Liveness.nphys) lor (1 lsl a)
    | false, false -> ()
  in
  let hf = heat_factor ~heat ~prov in
  let moves = ref [] in
  Array.iteri
    (fun b (blk : Liveness.block) ->
      ignore b;
      let live = Liveness.Bits.copy lv.Liveness.live_out.(b) in
      for i = blk.Liveness.last downto blk.Liveness.first do
        let defs, uses = lv.Liveness.def_use.(i) in
        (* a coalescable move: plain reg to reg, at least one end
           virtual; a physical end must be a general register (never
           ap/fp/sp/pc) *)
        let move_src =
          let ok_end r = r >= lv.Liveness.vbase || r < 12 in
          match lv.Liveness.insns.(i) with
          | Insn.Insn (m, [ Mode.Reg a; Mode.Reg b ])
            when (a >= lv.Liveness.vbase || b >= lv.Liveness.vbase)
                 && ok_end a && ok_end b
                 && List.mem m move_mnemonics ->
            moves :=
              (i, Liveness.node_of lv a, Liveness.node_of lv b) :: !moves;
            Some (Liveness.node_of lv a)
          | _ -> None
        in
        (* spill-cost weight of this site *)
        let w =
          (1.0 +. hf i) *. pow10 (min 8 (Liveness.depth_at lv i))
        in
        List.iter
          (fun r ->
            if r >= lv.Liveness.vbase then begin
              let v = vnode r in
              t.weight.(v) <- t.weight.(v) +. w;
              t.occurrences.(v) <- t.occurrences.(v) + 1
            end)
          (defs @ uses);
        (* the destination interferes with everything live across it,
           except the source of a move (they may share a register) *)
        let def_nodes = List.map (Liveness.node_of lv) defs in
        List.iter
          (fun dn ->
            Liveness.Bits.iter
              (fun l -> if Some l <> move_src then conflict dn l)
              live;
            List.iter (fun dn' -> conflict dn dn') def_nodes)
          def_nodes;
        List.iter (fun dn -> Liveness.Bits.clear live dn) def_nodes;
        List.iter (fun r -> Liveness.Bits.set live (Liveness.node_of lv r)) uses
      done)
    lv.Liveness.blocks;
  { t with moves = List.sort compare !moves }
