open Import

(** The complete Graham-Glanville code generator: transform, match,
    select, allocate, print (paper Fig. 2).

    The table-driven backend replaces PCC's second pass: it consumes the
    same IR forests as {!Gg_pcc} and produces VAX assembly text plus the
    structured instruction lists the benchmarks analyse. *)

(** Which register allocator assigns the bank: [Stack] is the paper's
    5.3.3 stack-discipline manager; [Color] matches and emits into
    virtual registers, then runs Chaitin/Briggs graph coloring
    ({!Color}) over the stream before rendering. *)
type regalloc = Stack | Color

val regalloc_name : regalloc -> string
val regalloc_of_string : string -> regalloc option

type options = {
  grammar : Grammar_def.options;
  transform : Transform.options;
  idioms : bool;  (** run the idiom recogniser (section 5.3.2) *)
  peephole : bool;
      (** run the peephole pass over the emitted code (the section 6.1
          alternative organisation); off by default, as in the paper *)
  regalloc : regalloc;  (** default [Stack] *)
  heat : (int * int) list;
      (** production-id -> firing-count table ({!Color.load_heat}, from
          [mdgtool heat --json]) weighting the colorer's spill costs;
          ignored under [Stack] *)
}

val default_options : options

(** First virtual-register number in color mode. *)
val vreg_base : int

(** The driver's table handle: a {!Matcher.engine} paired with the
    {!Backend.t} whose grammar built it, so every downstream consumer
    (driver, oracle, server) renders, prices and simulates with the
    right target.  The production representation is comb-packed
    ({!Gg_tablegen.Packed}); wrap dense tables with {!of_engine} for
    differential runs. *)
type tables = { t_engine : Matcher.engine; t_backend : Backend.t }

val engine : tables -> Matcher.engine
val backend : tables -> Backend.t
val grammar : tables -> Grammar.t

(** Pair an already-built engine (for example a dense one) with its
    backend. *)
val of_engine : backend:Backend.t -> Matcher.engine -> tables

(** Build packed tables in-process for the given options and backend
    (default VAX); building is expensive, so build once and reuse
    (callers share {!default_tables}). *)
val build_tables : ?backend:Backend.t -> Grammar_def.options -> tables

(** Like {!build_tables} but through the on-disk cache
    ({!Gg_tablegen.Cache}, keyed by target and grammar digest): a warm
    cache loads the replicated tables in milliseconds instead of
    reconstructing them. *)
val cached_tables :
  ?dir:string -> ?backend:Backend.t -> Grammar_def.options -> tables

(** The default VAX tables. *)
val default_tables : tables Lazy.t

type compiled_func = {
  cf_name : string;
  cf_insns : Insn.t list;  (** body, without prologue/epilogue *)
  cf_frame_size : int;
  cf_prov : (int * int list * string) list;
      (** per-instruction provenance, parallel to [cf_insns]: the
          source line current at emission, the grammar production
          ids reduced since the previous emission, and a marker
          ([""] normally, ["spill"]/["reload"] on register-allocator
          traffic, which carries the provenance of the value being
          moved).  Empty unless
          {!Gg_profile.Profile.provenance_enabled} was set when the
          function was compiled, or when the peephole pass rewrote the
          instruction list. *)
}

type output = {
  assembly : string;  (** complete assembler file *)
  funcs : compiled_func list;
  program : Tree.program;
}

(** Compile one function (already transformed trees are not required:
    the driver runs Phase 1 itself).  Phase 1 and the match phase are
    timed under ["phase1.transform"] / ["phase2.match"] when
    {!Gg_profile.Profile.enabled}. *)
val compile_func : ?options:options -> tables -> Tree.func -> compiled_func

(** Compile a whole program.  [jobs] > 1 distributes the functions over
    the persistent {!Parallel} pool (clamped to the core count; see
    {!Parallel.map}); output order is the program's function order
    regardless of scheduling, so the assembly is byte-identical to a
    [jobs:1] run.  [oversubscribe] forwards to {!Parallel.map} — a
    test/benchmark knob forcing real multi-domain batches even on a
    single-core host. *)
val compile_program :
  ?options:options ->
  ?tables:tables ->
  ?jobs:int ->
  ?oversubscribe:bool ->
  Tree.program ->
  output

(** Render an output with per-instruction provenance comments
    ([# L<line> p<id>,... ; <production note>]) — the [--explain]
    assembly listing.  Functions compiled without provenance render as
    plain assembly. *)
val render_explained : tables -> output -> string

(** Compile a single statement tree against the default tables and
    return the instructions — convenient for tests and examples. *)
val compile_tree : ?options:options -> ?tables:tables -> Tree.t -> Insn.t list

(** Like {!compile_tree} but also returns the matcher trace (for the
    paper's Appendix example). *)
val compile_tree_traced :
  ?options:options ->
  ?tables:tables ->
  Tree.t ->
  Insn.t list * Matcher.step list

(** Total static cycles / line counts over an output (code-quality
    metrics for the benchmarks), under the backend's cycle model
    (default VAX). *)
val total_cycles : ?backend:Backend.t -> output -> int

val total_lines : output -> int
